// Package encoder implements a from-scratch MPEG-2 Main Profile video
// encoder producing exactly the stream subset the decoder in internal/mpeg2
// supports: progressive frame pictures, frame prediction/DCT, 4:2:0, I/P/B
// GOPs, optional alternate scan, nonlinear quantiser scale and intra VLC
// format. It exists because the paper's test content (movie clips, HDTV
// camera footage, visualisation flybys) is not redistributable; the
// generators in internal/video plus this encoder reproduce each stream
// class's resolution, bit rate and motion structure (DESIGN.md §2).
//
// The encoder is closed-loop: every macroblock is reconstructed through the
// same dequantisation, IDCT and motion compensation code the decoder uses,
// so encoder and decoder reference frames match bit for bit.
package encoder

import "math"

// dctMat[u][x] = c(u)/2 * cos((2x+1)u*pi/16), the 1-D DCT-II basis used for
// the separable forward transform.
var dctMat [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = math.Sqrt2 / 2
		}
		for x := 0; x < 8; x++ {
			dctMat[u][x] = cu / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
}

// fdct computes the 8x8 forward DCT of blk in place (raster order),
// rounding to the nearest integer. Separable row-column evaluation.
func fdct(blk *[64]int32) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < 8; y++ {
		row := blk[y*8 : y*8+8]
		for u := 0; u < 8; u++ {
			m := &dctMat[u]
			tmp[y*8+u] = m[0]*float64(row[0]) + m[1]*float64(row[1]) +
				m[2]*float64(row[2]) + m[3]*float64(row[3]) +
				m[4]*float64(row[4]) + m[5]*float64(row[5]) +
				m[6]*float64(row[6]) + m[7]*float64(row[7])
		}
	}
	// Columns.
	for x := 0; x < 8; x++ {
		var col [8]float64
		for y := 0; y < 8; y++ {
			col[y] = tmp[y*8+x]
		}
		for v := 0; v < 8; v++ {
			m := &dctMat[v]
			s := m[0]*col[0] + m[1]*col[1] + m[2]*col[2] + m[3]*col[3] +
				m[4]*col[4] + m[5]*col[5] + m[6]*col[6] + m[7]*col[7]
			blk[v*8+x] = int32(math.Round(s))
		}
	}
}
