package recovery

import (
	"tiledwall/internal/metrics"
)

// Hooks is the recovery wiring every supervised worker receives: its tuned
// configuration, the lease it must renew, the run-wide counters, and the
// chaos plan (inert for respawned incarnations — each injected kill fires
// once).
type Hooks struct {
	Cfg   Config
	Lease *Lease
	Rec   *metrics.Recovery
	Chaos ChaosPlan
}

// Renew renews the lease, if any (nil-safe for unsupervised use).
func (h *Hooks) Renew() {
	if h != nil && h.Lease != nil {
		h.Lease.Renew()
	}
}

// DecoderHooks wires one tile decoder incarnation. A respawned incarnation
// resumes at its emission frontier (pdec.Decoder.ResumeAt) and starts in
// concealment until an I picture re-anchors it; the resume state rides on
// the serve layer (pdec.ServeRecovery), not here.
type DecoderHooks struct {
	Hooks
}
