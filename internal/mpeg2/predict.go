package mpeg2

// PredictMacroblock fills pY (16×16) and pCb/pCr (8×8) with the motion-
// compensated prediction of the macroblock at luma position (x, y) from ref
// with vector mv in half-sample units. It is the exact prediction the
// decoder applies, exported so the closed-loop encoder computes residuals
// against identical samples.
func PredictMacroblock(ref *PixelBuf, x, y int, mv [2]int32, pY *[256]uint8, pCb, pCr *[64]uint8) error {
	var rc Reconstructor
	return rc.predict(ref, x, y, mv, pY, pCb, pCr)
}

// AveragePrediction combines two predictions with the standard rounding,
// in place into the first set of buffers.
func AveragePrediction(pY *[256]uint8, pCb, pCr *[64]uint8, qY *[256]uint8, qCb, qCr *[64]uint8) {
	for i := range pY {
		pY[i] = uint8((int32(pY[i]) + int32(qY[i]) + 1) >> 1)
	}
	for i := range pCb {
		pCb[i] = uint8((int32(pCb[i]) + int32(qCb[i]) + 1) >> 1)
		pCr[i] = uint8((int32(pCr[i]) + int32(qCr[i]) + 1) >> 1)
	}
}
