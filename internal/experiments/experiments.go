// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): the granularity comparison (Table 1), the stream
// characteristics (Table 4), one-level vs two-level frame rates (Table 5 /
// Figure 6), the decoder runtime breakdown (Figure 7), resolution
// scalability (Table 6 / Figure 8) and per-node bandwidth (Figure 9). The
// cmd/benchwall binary and the repository benchmarks drive these functions.
//
// Absolute numbers differ from the paper's 550-733 MHz Pentium III cluster;
// what reproduces is the shape: where the one-level splitter saturates,
// how the hierarchy removes it, how pixel rate scales with nodes, and how
// low and balanced the bandwidth stays (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"
	"sync"

	"tiledwall/internal/catalog"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/system"
)

// Options tunes experiment scale.
type Options struct {
	// Frames per generated stream (the paper uses 240).
	Frames int
	// Scale divides stream resolutions (1 = paper scale).
	Scale int
	// Seed parameterises the content generators so every experiment is
	// reproducible from its reported options; 0 means the default seed 1
	// (the catalogue default, keeping historical numbers comparable).
	Seed int64
	// Verbose prints progress notes.
	Verbose bool
	Log     io.Writer
}

func (o *Options) defaults() {
	if o.Frames == 0 {
		o.Frames = 48
	}
	if o.Scale == 0 {
		o.Scale = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
}

// streamCache avoids re-encoding a stream for several experiments.
type streamCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

var cache = &streamCache{m: map[string][]byte{}}

func (c *streamCache) get(spec catalog.StreamSpec, opts catalog.GenOptions) ([]byte, error) {
	key := fmt.Sprintf("%d/%d/%d/%v/%d", spec.ID, opts.Frames, opts.Scale, opts.ClosedGOP, opts.Seed)
	c.mu.Lock()
	if b, ok := c.m[key]; ok {
		c.mu.Unlock()
		return b, nil
	}
	c.mu.Unlock()
	b, err := spec.Generate(opts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.m[key] = b
	c.mu.Unlock()
	return b, nil
}

// Stream generates (or fetches) a catalogue stream at the experiment scale.
func Stream(id int, o Options, closedGOP bool) ([]byte, catalog.StreamSpec, error) {
	o.defaults()
	spec, err := catalog.ByID(id)
	if err != nil {
		return nil, spec, err
	}
	b, err := cache.get(spec, catalog.GenOptions{Frames: o.Frames, Scale: o.Scale, ClosedGOP: closedGOP, Seed: o.Seed})
	return b, spec, err
}

// --- Table 4 ----------------------------------------------------------------

// Table4Row mirrors the columns of the paper's Table 4.
type Table4Row struct {
	ID           int
	Name         string
	W, H         int
	AvgFrameSize float64 // bytes
	BitsPerPixel float64
}

// Table4 generates every catalogue stream and reports its characteristics.
func Table4(o Options) ([]Table4Row, error) {
	o.defaults()
	var rows []Table4Row
	for _, spec := range catalog.Streams {
		fmt.Fprintf(o.Log, "table4: generating stream %d (%s)\n", spec.ID, spec.Name)
		data, err := cache.get(spec, catalog.GenOptions{Frames: o.Frames, Scale: o.Scale, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		s, err := mpeg2.ParseStream(data)
		if err != nil {
			return nil, err
		}
		avg := float64(len(data)) / float64(len(s.Pictures))
		rows = append(rows, Table4Row{
			ID: spec.ID, Name: spec.Name,
			W: s.Seq.Width, H: s.Seq.Height,
			AvgFrameSize: avg,
			BitsPerPixel: avg * 8 / float64(s.Seq.Width*s.Seq.Height),
		})
	}
	return rows, nil
}

// PrintTable4 writes the rows in the paper's layout.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4. Characteristics of Test Video Streams\n")
	fmt.Fprintf(w, "%-3s %-8s %-11s %14s %10s\n", "#", "name", "resolution", "avg frame (B)", "bit/pixel")
	for _, r := range rows {
		fmt.Fprintf(w, "%-3d %-8s %4dx%-6d %14.0f %10.3f\n", r.ID, r.Name, r.W, r.H, r.AvgFrameSize, r.BitsPerPixel)
	}
}

// --- Table 5 / Figure 6 ------------------------------------------------------

// ScalingPoint is one configuration's measured frame rate.
type ScalingPoint struct {
	K, M, N int
	Nodes   int
	FPS     float64
}

// Table5Configs lists the screen configurations of the paper's Table 5.
var Table5Configs = [][2]int{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {3, 3}, {4, 3}, {4, 4}}

// Table5 runs a stream through every configuration, one-level and two-level
// (with k chosen by calibration as in §5.4: increase k until the frame rate
// stops increasing, here via the ts/td formula).
func Table5(streamID int, o Options) (oneLevel, twoLevel []ScalingPoint, err error) {
	o.defaults()
	data, _, err := Stream(streamID, o, false)
	if err != nil {
		return nil, nil, err
	}
	for _, c := range Table5Configs {
		m, n := c[0], c[1]
		fmt.Fprintf(o.Log, "table5: stream %d one-level 1-(%d,%d)\n", streamID, m, n)
		res, err := system.Run(data, system.Config{K: 0, M: m, N: n})
		if err != nil {
			return nil, nil, err
		}
		oneLevel = append(oneLevel, ScalingPoint{K: 0, M: m, N: n, Nodes: res.Config.NumNodes(), FPS: res.Modeled().FPS()})

		cal, err := system.Calibrate(data, m, n, 0, min(12, o.Frames))
		if err != nil {
			return nil, nil, err
		}
		k := cal.RecommendedK(0)
		if k == 0 {
			k = 1
		}
		fmt.Fprintf(o.Log, "table5: stream %d two-level 1-%d-(%d,%d) (ts=%v td=%v)\n", streamID, k, m, n, cal.TS, cal.TD)
		res, err = system.Run(data, system.Config{K: k, M: m, N: n})
		if err != nil {
			return nil, nil, err
		}
		twoLevel = append(twoLevel, ScalingPoint{K: k, M: m, N: n, Nodes: res.Config.NumNodes(), FPS: res.Modeled().FPS()})
	}
	return oneLevel, twoLevel, nil
}

// PrintTable5 writes both halves of Table 5 side by side.
func PrintTable5(w io.Writer, label string, one, two []ScalingPoint) {
	fmt.Fprintf(w, "Table 5. Frame Rate of One-Level and Two-Level Systems — %s\n", label)
	fmt.Fprintf(w, "%-12s %8s    %-14s %8s\n", "one-level", "fps", "two-level", "fps")
	for i := range one {
		o, t := one[i], two[i]
		fmt.Fprintf(w, "1-(%d,%d)%-5s %8.1f    1-%d-(%d,%d)%-5s %8.1f\n",
			o.M, o.N, "", o.FPS, t.K, t.M, t.N, "", t.FPS)
	}
}

// --- Figure 7 ----------------------------------------------------------------

// BreakdownRow is one decoder's per-picture phase costs in milliseconds.
type BreakdownRow struct {
	Decoder int
	Ms      map[metrics.Phase]float64
}

// Fig7 profiles decoder runtime for a stream on a given two-level
// configuration, as the paper does for stream 8 on 1-2-(2,2) and 1-5-(4,4).
func Fig7(streamID, k, m, n int, o Options) ([]BreakdownRow, error) {
	o.defaults()
	data, _, err := Stream(streamID, o, false)
	if err != nil {
		return nil, err
	}
	res, err := system.Run(data, system.Config{K: k, M: m, N: n})
	if err != nil {
		return nil, err
	}
	var rows []BreakdownRow
	for i, d := range res.Decoders {
		row := BreakdownRow{Decoder: i, Ms: map[metrics.Phase]float64{}}
		for _, p := range metrics.Phases() {
			row.Ms[p] = d.Breakdown.PerPicture(p)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig7 writes the runtime breakdown with a trailing average row.
func PrintFig7(w io.Writer, label string, rows []BreakdownRow) {
	fmt.Fprintf(w, "Figure 7. Runtime Breakdown of Decoders — %s (ms per picture)\n", label)
	fmt.Fprintf(w, "%-8s", "decoder")
	for _, p := range metrics.Phases() {
		fmt.Fprintf(w, "%9s", p)
	}
	fmt.Fprintln(w)
	avg := map[metrics.Phase]float64{}
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d", r.Decoder)
		for _, p := range metrics.Phases() {
			fmt.Fprintf(w, "%9.2f", r.Ms[p])
			avg[p] += r.Ms[p]
		}
		fmt.Fprintln(w)
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "%-8s", "avg")
		for _, p := range metrics.Phases() {
			fmt.Fprintf(w, "%9.2f", avg[p]/float64(len(rows)))
		}
		fmt.Fprintln(w)
	}
}

// --- Table 6 / Figure 8 -------------------------------------------------------

// Table6Row is one stream's result in its matched configuration.
type Table6Row struct {
	ID        int
	Name      string
	K, M, N   int
	Nodes     int
	FPS       float64
	PixelRate float64 // Mpixel/s
}

// Table6 plays every catalogue stream on its Table 6 configuration.
func Table6(o Options) ([]Table6Row, error) {
	o.defaults()
	var rows []Table6Row
	for _, spec := range catalog.Streams {
		data, err := cache.get(spec, catalog.GenOptions{Frames: o.Frames, Scale: o.Scale, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(o.Log, "table6: stream %d (%s) on 1-%d-(%d,%d)\n", spec.ID, spec.Name, spec.K, spec.M, spec.N)
		res, err := system.Run(data, system.Config{K: spec.K, M: spec.M, N: spec.N})
		if err != nil {
			return nil, fmt.Errorf("stream %d: %w", spec.ID, err)
		}
		mt := res.Modeled()
		rows = append(rows, Table6Row{
			ID: spec.ID, Name: spec.Name,
			K: spec.K, M: spec.M, N: spec.N,
			Nodes:     res.Config.NumNodes(),
			FPS:       mt.FPS(),
			PixelRate: mt.PixelRate(),
		})
	}
	return rows, nil
}

// PrintTable6 writes the rows in the paper's layout (also the data series of
// Figure 8: pixel rate vs node count).
func PrintTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintf(w, "Table 6. Frame Rate of All Streams in Two-Level System\n")
	fmt.Fprintf(w, "%-3s %-8s %-12s %6s %10s %12s\n", "#", "name", "config", "nodes", "fps", "Mpixel/s")
	for _, r := range rows {
		cfg := fmt.Sprintf("1-%d-(%d,%d)", r.K, r.M, r.N)
		if r.K == 0 {
			cfg = fmt.Sprintf("1-(%d,%d)", r.M, r.N)
		}
		fmt.Fprintf(w, "%-3d %-8s %-12s %6d %10.1f %12.1f\n", r.ID, r.Name, cfg, r.Nodes, r.FPS, r.PixelRate)
	}
}

// --- Figure 9 ----------------------------------------------------------------

// BandwidthRow is one node's send/receive bandwidth in MB/s.
type BandwidthRow struct {
	Node     string
	SendMBps float64
	RecvMBps float64
}

// Fig9 measures per-node send/receive bandwidth decoding a stream on a
// 1-k-(m,n) system (the paper: stream 16 on 1-4-(4,4)).
func Fig9(streamID, k, m, n int, o Options) ([]BandwidthRow, error) {
	o.defaults()
	data, _, err := Stream(streamID, o, false)
	if err != nil {
		return nil, err
	}
	res, err := system.Run(data, system.Config{K: k, M: m, N: n})
	if err != nil {
		return nil, err
	}
	// Bandwidth is bytes over the modelled playback time, matching the fps
	// the other experiments report.
	secs := res.Modeled().Elapsed.Seconds()
	var rows []BandwidthRow
	add := func(name string, id int) {
		st := res.NodeStats[id]
		rows = append(rows, BandwidthRow{
			Node:     name,
			SendMBps: float64(st.BytesSent) / secs / 1e6,
			RecvMBps: float64(st.BytesRecv) / secs / 1e6,
		})
	}
	for i, id := range res.DecoderNodeIDs {
		add(fmt.Sprintf("D%d", i), id)
	}
	for i, id := range res.SplitterNodeIDs {
		add(fmt.Sprintf("S%d", i), id)
	}
	add("root", res.RootNodeID)
	return rows, nil
}

// PrintFig9 writes the bandwidth bars.
func PrintFig9(w io.Writer, label string, rows []BandwidthRow) {
	fmt.Fprintf(w, "Figure 9. Send and Receive Bandwidth of Each Node — %s (MB/s)\n", label)
	fmt.Fprintf(w, "%-6s %10s %10s\n", "node", "recv", "send")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10.2f %10.2f\n", r.Node, r.RecvMBps, r.SendMBps)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
