package splitter

import (
	"fmt"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/recovery"
	"tiledwall/internal/subpic"
	"tiledwall/internal/wall"
)

// ServeConfig wires one resident second-level splitter node: a long-lived
// server multiplexing sessions, each with its own sequence header, geometry
// and macroblock splitter.
type ServeConfig struct {
	// Index is this splitter's position among the k resident splitters.
	Index int
	// M, N, Overlap describe the wall grid; per-session geometry is derived
	// from them and the session's own picture dimensions.
	M, N, Overlap int
	// DecoderNodes maps tile index to decoder node id; RootNode is the
	// resident root.
	DecoderNodes []int
	RootNode     int

	Pooled       bool
	SplitWorkers int

	// OnResult receives the splitter-side result when a session's final
	// marker has been forwarded.
	OnResult func(session, index int, res *SecondResult)

	// Recovery, when non-nil, switches the server to the fault-masking
	// protocol: leases are renewed per message, chaos kills surface as
	// recovery.ErrKilled, root replays are deduplicated and shipped with
	// FlagReplay, the decoder-ack gate is deadline-bounded, and a corrupt
	// picture fails its session alone (SessionFailSeq notice to the root)
	// instead of killing the wall.
	Recovery *ServeRecovery
}

// ServeRecovery wires fault masking into one resident splitter server
// incarnation.
type ServeRecovery struct {
	Cfg   recovery.Config
	Lease *recovery.Lease
	Chaos recovery.ChaosPlan
	// Rec returns the recovery counters to charge for a session's
	// interventions (must not return nil).
	Rec func(session int) *metrics.Recovery
	// OnOpen reports session opens for the service registry.
	OnOpen func(session int, header []byte)
	// Resume lists the sessions a respawned incarnation must re-join. Their
	// opens are re-forwarded to the decoders (deduplicated there) so the
	// session survives even if every splitter died before forwarding it.
	Resume []ResumeSession
}

// ResumeSession re-opens one session on a respawned splitter server.
type ResumeSession struct {
	ID     int
	Header []byte
}

// splitSession is one session's splitter-side state.
type splitSession struct {
	ms  *MBSplitter
	res *SecondResult
	// seen records processed picture seqs under recovery: root replays after
	// a respawn overlap the node queue the dead incarnation left behind, and
	// a replayed picture may be older than originals already processed (the
	// consumed-but-unshipped loss), so a high-watermark is not enough.
	seen map[int]bool
	// live and trick hold the session's subscription state, applied by the
	// root's FlagSubscribe broadcasts at I-picture boundaries. The zero
	// TileSet is the full subscription (today's behaviour, byte-identical).
	live  wall.TileSet
	trick TrickMode
	roi   ROIScratch
}

func (ss *splitSession) marshal(sp *subpic.SubPicture, pooled bool) []byte {
	t0 := time.Now()
	var payload []byte
	if pooled {
		payload = sp.AppendTo(cluster.GetSlab(sp.WireSize()))
	} else {
		payload = sp.Marshal()
	}
	ss.res.Split.Add(metrics.SplitSerialize, time.Since(t0))
	return payload
}

// ServeSecond runs the resident splitter loop until a FlagShutdown message
// arrives or the transport aborts. The data path per session is RunSecond's:
// ack the root on receipt (credit), split, gate on nd decoder acks (skipped
// only for the wall's globally first picture), ship with the ANID the root
// announced. The control path adds session opens (forwarded to every decoder
// before any of this splitter's sub-pictures, by sender FIFO) and session
// finals (the batch end marker, per session).
func ServeSecond(port cluster.Port, cfg ServeConfig) error {
	sessions := map[int]*splitSession{}
	nd := len(cfg.DecoderNodes)
	rh := cfg.Recovery
	if rh != nil {
		rh.Cfg = rh.Cfg.WithDefaults()
		for _, rs := range rh.Resume {
			// Re-forward each resumed open: the decoders deduplicate, and a
			// session whose open every splitter lost stays reachable.
			_ = openSession(port, cfg, sessions, rs.ID, rs.Header)
		}
	}
	for {
		t0 := time.Now()
		msg := port.Recv(cluster.MsgPicture)
		wait := time.Since(t0)
		if msg == nil {
			return fmt.Errorf("splitter %d: fabric aborted", cfg.Index)
		}
		if rh != nil && rh.Lease != nil {
			rh.Lease.Renew()
		}
		switch {
		case msg.Flags&cluster.FlagShutdown != 0:
			for _, ss := range sessions {
				ss.ms.Close()
			}
			return nil
		case msg.Flags&cluster.FlagSessionOpen != 0:
			if sessions[msg.Session] != nil {
				continue
			}
			if err := openSession(port, cfg, sessions, msg.Session, msg.Payload); err != nil {
				if rh != nil {
					continue // broken session, not a broken wall
				}
				return err
			}
		case msg.Flags&cluster.FlagSubscribe != 0:
			ss := sessions[msg.Session]
			if ss == nil {
				continue
			}
			trick, live, err := ParseSubscribe(msg.Payload)
			if err != nil {
				// A malformed control frame must not corrupt the session's
				// materialization state; keep the previous subscription.
				continue
			}
			ss.trick, ss.live = trick, live
		case msg.Flags&cluster.FlagSessionFinal != 0:
			ss := sessions[msg.Session]
			if ss == nil {
				continue
			}
			ss.res.Breakdown.Add(metrics.PhaseReceive, wait)
			// Forward the end marker to every decoder; Tag carries the
			// session's total picture count so a decoder that sees an early
			// final keeps decoding until it has them all.
			for t := 0; t < nd; t++ {
				sp := &subpic.SubPicture{Final: true}
				sp.Pic.Index = int32(msg.Tag)
				port.Send(cfg.DecoderNodes[t], &cluster.Message{
					Kind:    cluster.MsgSubPicture,
					Seq:     -1,
					Tag:     port.ID(),
					Flags:   cluster.FlagSessionFinal,
					Session: msg.Session,
					Payload: ss.marshal(sp, cfg.Pooled),
				})
			}
			ss.res.FoldSplit(ss.ms)
			ss.ms.Close()
			delete(sessions, msg.Session)
			if cfg.OnResult != nil {
				cfg.OnResult(msg.Session, cfg.Index, ss.res)
			}
			// The root closes the session only after a drain ack from every
			// splitter and every decoder, so results are published before a
			// waiting Session.Close can read them.
			port.Send(cfg.RootNode, &cluster.Message{
				Kind:    cluster.MsgAck,
				Seq:     cluster.DrainAckSeq,
				Session: msg.Session,
			})
		default:
			ss := sessions[msg.Session]
			if ss == nil {
				if rh != nil {
					// Session failed or completed; drop quietly, releasing
					// this delivery's reference to the payload.
					if cfg.Pooled {
						cluster.PutSlab(msg.Payload)
					}
					continue
				}
				return fmt.Errorf("splitter %d: picture for unknown session %d", cfg.Index, msg.Session)
			}
			if err := splitOne(port, cfg, ss, msg, wait, nd); err != nil {
				return err
			}
		}
	}
}

// openSession creates one session's splitter state and forwards the open to
// every decoder. The payload is shared and read-only on the receiving side,
// so one copy serves all.
func openSession(port cluster.Port, cfg ServeConfig, sessions map[int]*splitSession, session int, header []byte) error {
	if sessions[session] != nil {
		return nil
	}
	seq, err := mpeg2.ParseSequenceHeaderBytes(header)
	if err != nil {
		return fmt.Errorf("splitter %d: session %d open: %w", cfg.Index, session, err)
	}
	geo, err := wall.NewGeometry(seq.MBWidth()*16, seq.MBHeight()*16, cfg.M, cfg.N, cfg.Overlap)
	if err != nil {
		return fmt.Errorf("splitter %d: session %d open: %w", cfg.Index, session, err)
	}
	ss := &splitSession{
		ms:  NewMBSplitterOpts(seq, geo, SplitOptions{Workers: cfg.SplitWorkers, Reuse: cfg.Pooled}),
		res: &SecondResult{},
	}
	if rh := cfg.Recovery; rh != nil {
		ss.seen = map[int]bool{}
		if rh.OnOpen != nil {
			rh.OnOpen(session, header)
		}
	}
	sessions[session] = ss
	for t := 0; t < len(cfg.DecoderNodes); t++ {
		port.Send(cfg.DecoderNodes[t], &cluster.Message{
			Kind:    cluster.MsgSubPicture,
			Flags:   cluster.FlagSessionOpen,
			Session: session,
			Payload: header,
		})
	}
	return nil
}

// splitOne handles one data picture: the body of RunSecond's loop, keyed to
// the message's session.
func splitOne(port cluster.Port, cfg ServeConfig, ss *splitSession, msg *cluster.Message, wait time.Duration, nd int) error {
	rh := cfg.Recovery
	replay := msg.Flags&cluster.FlagReplay != 0
	if rh != nil {
		if ss.seen[msg.Seq] {
			// Root replay overlapping the surviving node queue. Each delivery
			// carries its own slab reference (the root acquires one per replay
			// send), so the duplicate's reference is released here.
			if cfg.Pooled {
				cluster.PutSlab(msg.Payload)
			}
			return nil
		}
		ss.seen[msg.Seq] = true
		// Injected crash before the receipt ack: the picture is consumed but
		// unacknowledged, so the root must both time the credit out and
		// replay it to the next incarnation.
		if !replay && rh.Chaos.SplitterDies(cfg.Index, msg.Seq) {
			return recovery.ErrKilled
		}
	}
	b := &ss.res.Breakdown
	b.Add(metrics.PhaseReceive, wait)
	// Ack the root immediately: the posted buffer is recycled (flow-control
	// credit) and the service releases one of the session's in-flight tokens.
	// Replays are never acked — the original ack or the root's credit timeout
	// already settled the ledger.
	if !replay {
		b.Timed(metrics.PhaseAck, func() {
			port.Send(cfg.RootNode, &cluster.Message{Kind: cluster.MsgAck, Seq: msg.Seq, Session: msg.Session})
		})
	}
	ss.res.InputBytes += int64(len(msg.Payload))

	var sps []*subpic.SubPicture
	var err error
	b.Timed(metrics.PhaseWork, func() { sps, err = ss.ms.Split(msg.Payload, msg.Seq) })
	if err != nil {
		// This consumer is done with the picture payload; the root's retainer
		// may still hold its own reference, in which case the release only
		// drops this delivery's.
		if cfg.Pooled {
			cluster.PutSlab(msg.Payload)
		}
		if rh != nil {
			// A corrupt picture unit fails its session alone: notify the
			// root (which surfaces a typed error to the feeder) and keep
			// serving the other sessions. Nothing is shipped, so the
			// decoders conceal the gap.
			port.Send(cfg.RootNode, &cluster.Message{
				Kind:    cluster.MsgAck,
				Seq:     cluster.SessionFailSeq,
				Session: msg.Session,
				Payload: []byte(err.Error()),
			})
			return nil
		}
		return fmt.Errorf("splitter %d: %w", cfg.Index, err)
	}

	// Wait for the go-ahead from every decoder (redirected acks), except for
	// the wall's globally first picture. Every ack arriving at a splitter
	// node is a go-ahead — drain acks go to the root only — so counting
	// without inspecting the session is exactly the batch protocol. Under
	// recovery the wait is deadline-bounded (a dead decoder's ack never
	// comes) and skipped for replays (their go-aheads were consumed by the
	// dead incarnation, or will never be sent — replayed sub-pictures are
	// not acked).
	if msg.Flags&cluster.FlagFirstPicture == 0 && !replay {
		aborted := false
		b.Timed(metrics.PhaseWaitMB, func() {
			for i := 0; i < nd; i++ {
				if rh != nil {
					m, timedOut := port.RecvTimeout(cluster.MsgAck, rh.Cfg.PictureDeadline)
					if timedOut {
						rh.Rec(msg.Session).AddAckTimeout()
						return
					}
					if m == nil {
						aborted = true
						return
					}
					continue
				}
				if port.Recv(cluster.MsgAck) == nil {
					aborted = true
					return
				}
			}
		})
		if aborted {
			return fmt.Errorf("splitter %d: fabric aborted while waiting for decoder acks", cfg.Index)
		}
	}

	// Partial subscription: rewrite what ships per tile (skip markers for
	// unmaterialized tiles, SEND-only shells for halo sources, NoEmit stamps
	// on unwatched anchors). The full-subscription path returns sps as-is.
	ship, nSkipped := ss.roi.Apply(sps, ss.live, ss.trick == TrickIOnly)
	ss.res.SkippedSubPics += int64(nSkipped)

	anid := msg.Tag // root told us who handles the next picture
	var spFlags uint8
	if replay {
		spFlags = cluster.FlagReplay // decoders deduplicate and do not ack
	}
	b.Timed(metrics.PhaseServe, func() {
		for t := 0; t < nd; t++ {
			payload := ss.marshal(ship[t], cfg.Pooled)
			ss.res.SPBytes += int64(len(payload))
			port.Send(cfg.DecoderNodes[t], &cluster.Message{
				Kind:    cluster.MsgSubPicture,
				Seq:     msg.Seq,
				Tag:     anid,
				Flags:   spFlags,
				Session: msg.Session,
				Payload: payload,
			})
		}
	})
	ss.res.Pictures++
	b.Pictures++
	// The sub-pictures aliased the picture payload until serialisation; this
	// delivery's reference can now be released (the root's retainer still
	// holds its own until the receipt ack above lands).
	if cfg.Pooled {
		cluster.PutSlab(msg.Payload)
	}
	return nil
}
