package service

import (
	"bytes"
	"fmt"
	"testing"

	"tiledwall/internal/bits"
)

// buildStream assembles a synthetic elementary stream from unit payloads: a
// header prefix (sequence header + GOP), then one picture unit per payload,
// and a sequence end code. Returns the stream and the expected picture units.
func buildStream(payloads ...[]byte) (stream []byte, header []byte, units [][]byte) {
	sc := func(code byte) []byte { return []byte{0, 0, 1, code} }
	header = append(header, sc(bits.SequenceHeaderCod)...)
	header = append(header, 0xAA, 0xBB)
	header = append(header, sc(bits.GroupStartCode)...)
	header = append(header, 0xCC)
	stream = append(stream, header...)
	for _, p := range payloads {
		var u []byte
		u = append(u, sc(bits.PictureStartCode)...)
		u = append(u, p...)
		units = append(units, u)
		stream = append(stream, u...)
	}
	stream = append(stream, sc(bits.SequenceEndCode)...)
	return stream, header, units
}

// scanCollect feeds the stream to a fresh scanner in fixed-size chunks and
// returns what came out of the callbacks.
func scanCollect(t *testing.T, stream []byte, chunkSize int) (header []byte, units [][]byte) {
	t.Helper()
	sc := newUnitScanner()
	onHeader := func(b []byte) error {
		header = append([]byte(nil), b...)
		return nil
	}
	onUnit := func(b []byte) error {
		units = append(units, append([]byte(nil), b...))
		return nil
	}
	for off := 0; off < len(stream); off += chunkSize {
		end := off + chunkSize
		if end > len(stream) {
			end = len(stream)
		}
		if err := sc.feed(stream[off:end], onHeader, onUnit); err != nil {
			t.Fatalf("feed: %v", err)
		}
	}
	if err := sc.flush(onUnit); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return header, units
}

// TestUnitScannerChunking pins the scanner's invariance over pathological
// chunkings: every chunk size — including 1-byte feeds, where every start
// code straddles chunk boundaries — must yield the identical header prefix
// and picture units.
func TestUnitScannerChunking(t *testing.T) {
	stream, wantHeader, wantUnits := buildStream(
		[]byte{0x10, 0x20, 0x30},
		[]byte{0x40},
		[]byte{}, // empty picture body: two adjacent start codes
		[]byte{0x50, 0x60, 0x00, 0x00, 0x02, 0x70}, // almost-a-start-code bytes
	)
	for _, size := range []int{1, 2, 3, 4, 5, 7, len(stream), len(stream) + 100} {
		t.Run(fmt.Sprintf("chunk=%d", size), func(t *testing.T) {
			header, units := scanCollect(t, stream, size)
			if !bytes.Equal(header, wantHeader) {
				t.Fatalf("header = %x, want %x", header, wantHeader)
			}
			if len(units) != len(wantUnits) {
				t.Fatalf("got %d units, want %d", len(units), len(wantUnits))
			}
			for i := range units {
				if !bytes.Equal(units[i], wantUnits[i]) {
					t.Fatalf("unit %d = %x, want %x", i, units[i], wantUnits[i])
				}
			}
		})
	}
}

// TestUnitScannerTrailingPartialUnit pins Close-time flush behaviour: a
// stream cut mid-picture (no trailing end code) must still emit the open
// unit, exactly once, with every byte that arrived.
func TestUnitScannerTrailingPartialUnit(t *testing.T) {
	stream, _, wantUnits := buildStream([]byte{1, 2, 3}, []byte{4, 5})
	// Drop the sequence end code: the last unit stays open until flush.
	stream = stream[:len(stream)-4]
	for _, size := range []int{1, 3, len(stream)} {
		header, units := scanCollect(t, stream, size)
		if header == nil {
			t.Fatalf("chunk=%d: header never delivered", size)
		}
		if len(units) != len(wantUnits) {
			t.Fatalf("chunk=%d: got %d units, want %d", size, len(units), len(wantUnits))
		}
		for i := range units {
			if !bytes.Equal(units[i], wantUnits[i]) {
				t.Fatalf("chunk=%d: unit %d = %x, want %x", size, i, units[i], wantUnits[i])
			}
		}
	}
}

// TestUnitScannerFlushIdempotent pins that flush after flush (or after a
// stream with no open unit) emits nothing.
func TestUnitScannerFlushIdempotent(t *testing.T) {
	stream, _, _ := buildStream([]byte{1, 2})
	sc := newUnitScanner()
	var units int
	onUnit := func([]byte) error { units++; return nil }
	if err := sc.feed(stream, func([]byte) error { return nil }, onUnit); err != nil {
		t.Fatal(err)
	}
	first := units
	if err := sc.flush(onUnit); err != nil {
		t.Fatal(err)
	}
	if units != first {
		t.Fatalf("flush emitted %d extra units after a terminated stream", units-first)
	}
	if err := sc.flush(onUnit); err != nil {
		t.Fatal(err)
	}
	if units != first {
		t.Fatal("second flush emitted a unit")
	}
}

// TestUnitScannerHeaderOnly pins that a stream that ends before its first
// picture start code delivers no header and no units (the session surfaces
// "no sequence header" at Close), even under 1-byte feeds.
func TestUnitScannerHeaderOnly(t *testing.T) {
	prefix := []byte{0, 0, 1, bits.SequenceHeaderCod, 0xAA, 0, 0, 1, bits.GroupStartCode}
	sc := newUnitScanner()
	headerCalls, unitCalls := 0, 0
	for i := range prefix {
		err := sc.feed(prefix[i:i+1],
			func([]byte) error { headerCalls++; return nil },
			func([]byte) error { unitCalls++; return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.flush(func([]byte) error { unitCalls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if headerCalls != 0 || unitCalls != 0 {
		t.Fatalf("prefix-only stream produced header=%d units=%d callbacks", headerCalls, unitCalls)
	}
}
