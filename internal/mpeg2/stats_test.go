package mpeg2

import (
	"strings"
	"testing"
)

func TestCollectPictureStats(t *testing.T) {
	data := buildTinyStream(t, 64, 48, []uint8{40, 0}, []PictureType{PictureI, PictureP})
	s, err := ParseStream(data)
	if err != nil {
		t.Fatal(err)
	}
	iStats, err := CollectPictureStats(s.Seq, s.Pictures[0])
	if err != nil {
		t.Fatal(err)
	}
	if iStats.Type != PictureI || iStats.Intra != 12 || iStats.Inter != 0 || iStats.Skipped != 0 {
		t.Fatalf("I stats: %+v", iStats)
	}
	if iStats.Slices != 3 || iStats.Coded != 12 {
		t.Fatalf("I slices/coded: %+v", iStats)
	}
	if iStats.Bits <= 0 {
		t.Fatal("no bits counted")
	}
	pStats, err := CollectPictureStats(s.Seq, s.Pictures[1])
	if err != nil {
		t.Fatal(err)
	}
	if pStats.Type != PictureP || pStats.Inter != 12 || pStats.Intra != 0 {
		t.Fatalf("P stats: %+v", pStats)
	}
	if pStats.MaxMV != 0 {
		t.Fatalf("pure-copy P has MaxMV %d", pStats.MaxMV)
	}
}

func TestCollectStreamStats(t *testing.T) {
	data := buildTinyStream(t, 64, 48,
		[]uint8{40, 0, 0}, []PictureType{PictureI, PictureP, PictureB})
	s, err := ParseStream(data)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := CollectStreamStats(s)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Pictures[PictureI] != 1 || ss.Pictures[PictureP] != 1 || ss.Pictures[PictureB] != 1 {
		t.Fatalf("picture counts %+v", ss.Pictures)
	}
	out := ss.Format()
	for _, want := range []string{"type", "I", "P", "B", "kbits/pic"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted stats missing %q:\n%s", want, out)
		}
	}
}
