package conformance

import (
	"fmt"
	"sync"
	"time"

	"tiledwall/internal/fleet"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/service"
	"tiledwall/internal/wall"
)

// FleetMatrixResult is one session's verdict against the serial oracle in
// RunFleetMatrix: which wall the fleet routed it to, and whether that wall's
// decode diverged.
type FleetMatrixResult struct {
	Session    int
	Wall       int
	Grid       string
	Err        error
	Divergence *Divergence
}

// FleetMatrixWalls is the heterogeneous farm the fleet conformance axis
// routes over: one-level walls from single tile to quad plus a two-level
// quad, so the same stream is decoded under four different tilings depending
// on where the router lands it.
func FleetMatrixWalls(sessions int) []service.Config {
	// Aggregate capacity stays below the session count, so some sessions
	// always queue for admission.
	per := sessions / 6
	if per < 1 {
		per = 1
	}
	mk := func(k, m, n, sw int) service.Config {
		return service.Config{
			K: k, M: m, N: n,
			SplitWorkers:  sw,
			CollectFrames: true,
			// Well under the session count, so the admission queue is part
			// of what conformance exercises.
			MaxSessions: per,
		}
	}
	return []service.Config{
		mk(0, 1, 1, 0),
		mk(0, 2, 2, 0),
		mk(1, 2, 1, 0),
		mk(2, 2, 2, 1),
	}
}

// RunFleetMatrix is the fleet conformance axis: `sessions` concurrent
// chunk-fed copies of the stream are admitted through one fleet front door
// over the heterogeneous FleetMatrixWalls farm. Each session must decode
// byte-identical to the serial reference under whichever wall geometry the
// router picked for it — the oracle RunSessionMatrix holds one wall to,
// applied across the routing and admission-queue layer.
func RunFleetMatrix(stream []byte, sessions int) ([]FleetMatrixResult, error) {
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		return nil, fmt.Errorf("conformance: serial parse: %w", err)
	}
	ref, err := dec.DecodeAll()
	if err != nil {
		return nil, fmt.Errorf("conformance: serial decode: %w", err)
	}
	picW, picH := dec.Seq().MBWidth()*16, dec.Seq().MBHeight()*16

	walls := FleetMatrixWalls(sessions)
	f, err := fleet.New(fleet.Config{
		Walls:        walls,
		OpenDeadline: 120 * time.Second,
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: fleet: %w", err)
	}
	out := make([]FleetMatrixResult, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &out[i]
			r.Session = i
			s, err := f.Open(fmt.Sprintf("fleet-conformance-%d", i), fleet.OpenOptions{
				Priority: fleet.Priority(i % 3),
			})
			if err != nil {
				r.Wall = -1
				r.Err = err
				return
			}
			cfg := walls[s.Wall()]
			r.Wall = s.Wall()
			r.Grid = fmt.Sprintf("1-%d-(%d,%d)", cfg.K, cfg.M, cfg.N)
			size := 64<<(i%5) + 7*i + 1
			for off := 0; off < len(stream); off += size {
				end := off + size
				if end > len(stream) {
					end = len(stream)
				}
				if err := s.Feed(stream[off:end]); err != nil {
					s.Close()
					r.Err = err
					return
				}
			}
			res, err := s.Close()
			if err != nil {
				r.Err = err
				return
			}
			geo, gerr := wall.NewGeometry(picW, picH, cfg.M, cfg.N, cfg.Overlap)
			if gerr != nil {
				geo = nil
			}
			r.Divergence = Diff(ref, res.Frames, geo)
		}()
	}
	wg.Wait()
	if cerr := f.Close(); cerr != nil {
		return nil, fmt.Errorf("conformance: fleet close: %w", cerr)
	}
	return out, nil
}
