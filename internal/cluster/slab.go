package cluster

import (
	"math/bits"
	"sync"
)

// Message slab pool. Every sub-picture and block bundle that crosses the
// fabric is serialised into a fresh []byte; at wall frame rates that is
// hundreds of multi-kilobyte allocations per second per node. The pool
// recycles payload slabs in power-of-two size classes.
//
// Ownership follows the fabric's zero-copy contract: a sender that Sends a
// pooled slab gives it up; only the final consumer of the message may
// PutSlab it, and only once nothing aliases the payload (recovery retainers
// keep payloads alive indefinitely, which is why pooling is forced off when
// recovery is enabled).
//
// The implementation is mutex-guarded per-class free stacks rather than
// sync.Pool: Put-ting a []byte into a sync.Pool boxes the slice header on
// every call, which would itself defeat the zero-allocation goal.

const (
	slabMinBits = 6  // 64 B — below this, pooling costs more than it saves
	slabMaxBits = 24 // 16 MiB — beyond this, hold no cache
	// slabMaxFree bounds each class's free stack so a burst cannot pin
	// unbounded memory.
	slabMaxFree = 64
)

var slabClasses [slabMaxBits + 1]struct {
	mu   sync.Mutex
	free [][]byte
}

// slabClass returns the size-class exponent for a payload of n bytes, or -1
// when n is outside the pooled range.
func slabClass(n int) int {
	if n <= 0 || n > 1<<slabMaxBits {
		return -1
	}
	c := bits.Len(uint(n - 1)) // smallest power of two >= n
	if c < slabMinBits {
		c = slabMinBits
	}
	return c
}

// GetSlab returns a zero-length slice with capacity >= n, drawn from the
// pool when a slab of the right class is free. Appending up to n bytes will
// not reallocate.
func GetSlab(n int) []byte {
	c := slabClass(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	cl := &slabClasses[c]
	cl.mu.Lock()
	if len(cl.free) > 0 {
		s := cl.free[len(cl.free)-1]
		cl.free[len(cl.free)-1] = nil
		cl.free = cl.free[:len(cl.free)-1]
		cl.mu.Unlock()
		return s[:0]
	}
	cl.mu.Unlock()
	return make([]byte, 0, 1<<c)
}

// PutSlab returns a slab to the pool. Only slabs whose capacity is an exact
// class size are accepted (i.e. slabs that came from GetSlab); anything else
// — including slices of foreign provenance — is left to the garbage
// collector. The caller must not touch b afterwards.
func PutSlab(b []byte) {
	c := slabClass(cap(b))
	if c < 0 || cap(b) != 1<<c {
		return
	}
	cl := &slabClasses[c]
	cl.mu.Lock()
	if len(cl.free) < slabMaxFree {
		cl.free = append(cl.free, b[:0])
	}
	cl.mu.Unlock()
}
