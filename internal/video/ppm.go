package video

import (
	"fmt"
	"io"

	"tiledwall/internal/mpeg2"
)

// PPM export: turn decoded 4:2:0 YCbCr frames into viewable images (binary
// P6, no external codecs needed). Used by `playwall -snapshot` to show what
// the wall displays, including blended overlap composites.

// YCbCrToRGB converts one BT.601 sample triplet.
func YCbCrToRGB(y, cb, cr uint8) (r, g, b uint8) {
	yy := int32(y) << 16
	ccb := int32(cb) - 128
	ccr := int32(cr) - 128
	clip := func(v int32) uint8 {
		v >>= 16
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return uint8(v)
	}
	r = clip(yy + 91881*ccr)
	g = clip(yy - 22554*ccb - 46802*ccr)
	b = clip(yy + 116130*ccb)
	return
}

// WritePPM writes the window as a binary PPM (P6) image. Chroma is
// upsampled by sample replication.
func WritePPM(w io.Writer, buf *mpeg2.PixelBuf) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", buf.W, buf.H); err != nil {
		return err
	}
	cw := buf.W / 2
	row := make([]byte, buf.W*3)
	for y := 0; y < buf.H; y++ {
		for x := 0; x < buf.W; x++ {
			yy := buf.Y[y*buf.W+x]
			ci := (y/2)*cw + x/2
			r, g, b := YCbCrToRGB(yy, buf.Cb[ci], buf.Cr[ci])
			row[x*3], row[x*3+1], row[x*3+2] = r, g, b
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}
