package recovery

import (
	"sync/atomic"
	"time"
)

// Lease is one node's heartbeat: the worker renews it on every unit of
// progress (at least once per picture), the supervisor reads it. A lease
// that stops being renewed for Config.LeaseExpiry marks its node dead.
type Lease struct {
	last int64 // unix nanos of the latest renewal, atomic
}

// NewLease returns a freshly-renewed lease.
func NewLease() *Lease {
	l := &Lease{}
	l.Renew()
	return l
}

// Renew stamps the lease with the current time.
func (l *Lease) Renew() { atomic.StoreInt64(&l.last, time.Now().UnixNano()) }

// Expired reports whether the lease has not been renewed for at least d.
func (l *Lease) Expired(d time.Duration) bool {
	return time.Since(time.Unix(0, atomic.LoadInt64(&l.last))) >= d
}
