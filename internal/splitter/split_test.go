package splitter

import (
	"testing"

	"tiledwall/internal/bits"
	"tiledwall/internal/encoder"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/subpic"
	"tiledwall/internal/video"
	"tiledwall/internal/wall"
)

func makeStream(t testing.TB, w, h, frames int) (*mpeg2.Stream, []byte) {
	t.Helper()
	cfg := encoder.Config{Width: w, Height: h, GOPSize: 6, BSpacing: 3, InitialQScale: 6}
	src := video.NewSource(video.SceneFilm, w, h, 5)
	e, err := encoder.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if err := e.Push(src.Frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	data := e.Bytes()
	s, err := mpeg2.ParseStream(data)
	if err != nil {
		t.Fatal(err)
	}
	return s, data
}

func geometry(t testing.TB, s *mpeg2.Stream, m, n, overlap int) *wall.Geometry {
	t.Helper()
	geo, err := wall.NewGeometry(s.Seq.MBWidth()*16, s.Seq.MBHeight()*16, m, n, overlap)
	if err != nil {
		t.Fatal(err)
	}
	return geo
}

// TestSplitCoverage: for every picture, every macroblock of every tile's
// rectangle is delivered exactly once to that tile (as a coded macroblock or
// as a leading/interior/trailing skip).
func TestSplitCoverage(t *testing.T) {
	s, _ := makeStream(t, 192, 128, 9)
	for _, tc := range []struct{ m, n, ov int }{{2, 2, 0}, {3, 2, 0}, {2, 2, 16}, {4, 1, 0}} {
		geo := geometry(t, s, tc.m, tc.n, tc.ov)
		ms := NewMBSplitter(s.Seq, geo)
		for pi, unit := range s.Pictures {
			sps, err := ms.Split(unit, pi)
			if err != nil {
				t.Fatal(err)
			}
			for tile, sp := range sps {
				counted := countTileMBs(t, s.Seq, geo, tile, sp)
				x0, x1, y0, y1 := geo.MBSpan(tile)
				want := (x1 - x0 + 1) * (y1 - y0 + 1)
				if counted != want {
					t.Fatalf("m=%d n=%d ov=%d pic %d tile %d: %d macroblocks delivered, want %d",
						tc.m, tc.n, tc.ov, pi, tile, counted, want)
				}
			}
		}
	}
}

// countTileMBs decodes the sub-picture structure (without pixels) and counts
// delivered macroblocks.
func countTileMBs(t *testing.T, seq *mpeg2.SequenceHeader, geo *wall.Geometry, tile int, sp *subpic.SubPicture) int {
	t.Helper()
	ph := sp.Pic.Header()
	ctx, err := mpeg2.NewPictureContext(seq, ph)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := range sp.Pieces {
		p := &sp.Pieces[i]
		count += int(p.LeadingSkip) + int(p.TrailingSkip)
		if p.CodedCount == 0 {
			continue
		}
		r := pieceReader(p)
		sd := mpeg2.NewPartialSliceDecoder(ctx, r, p.State(), p.Prev, int(p.FirstAddr), int(p.CodedCount))
		sd.SetParseOnly(true)
		var mb mpeg2.Macroblock
		for {
			ok, err := sd.Next(&mb)
			if err != nil {
				t.Fatalf("tile %d piece %d: %v", tile, i, err)
			}
			if !ok {
				break
			}
			count += 1 + mb.SkippedBefore
			// Every delivered macroblock must lie in the tile's rectangle.
			if !geo.TileHasMB(tile, mb.Addr%ctx.MBW, mb.Addr/ctx.MBW) {
				t.Fatalf("tile %d received macroblock %d outside its rectangle", tile, mb.Addr)
			}
		}
	}
	return count
}

// TestSplitMEISymmetry: every RECV instruction has a matching SEND on the
// owner tile, senders own their cells, and I pictures carry no MEIs.
func TestSplitMEISymmetry(t *testing.T) {
	s, _ := makeStream(t, 192, 128, 9)
	geo := geometry(t, s, 2, 2, 0)
	ms := NewMBSplitter(s.Seq, geo)
	for pi, unit := range s.Pictures {
		sps, err := ms.Split(unit, pi)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := mpeg2.PeekPictureType(unit)
		if err != nil {
			t.Fatal(err)
		}
		type key struct {
			from, to int
			ref      subpic.RefSel
			x, y     uint16
		}
		sends := map[key]int{}
		recvs := map[key]int{}
		for tile, sp := range sps {
			if pt == mpeg2.PictureI && len(sp.MEI) != 0 {
				t.Fatalf("pic %d (I) tile %d has %d MEIs", pi, tile, len(sp.MEI))
			}
			for _, in := range sp.MEI {
				switch in.Kind {
				case subpic.MEISend:
					if !geo.TileHasMB(tile, int(in.MBX), int(in.MBY)) {
						t.Fatalf("pic %d tile %d SEND of cell (%d,%d) it does not own", pi, tile, in.MBX, in.MBY)
					}
					sends[key{tile, int(in.Peer), in.Ref, in.MBX, in.MBY}]++
				case subpic.MEIRecv:
					recvs[key{int(in.Peer), tile, in.Ref, in.MBX, in.MBY}]++
				}
			}
		}
		if len(sends) != len(recvs) {
			t.Fatalf("pic %d: %d sends vs %d recvs", pi, len(sends), len(recvs))
		}
		for k, n := range sends {
			if n != 1 {
				t.Fatalf("pic %d: duplicate send %+v", pi, k)
			}
			if recvs[k] != 1 {
				t.Fatalf("pic %d: send %+v without matching recv", pi, k)
			}
		}
	}
}

// TestSplitPayloadAliasesUnit: piece payloads are zero-copy sub-slices of
// the picture unit, and their bit ranges decode the advertised macroblocks.
func TestSplitPayloadAliasesUnit(t *testing.T) {
	s, _ := makeStream(t, 128, 64, 3)
	geo := geometry(t, s, 2, 1, 0)
	ms := NewMBSplitter(s.Seq, geo)
	unit := s.Pictures[0]
	sps, err := ms.Split(unit, 0)
	if err != nil {
		t.Fatal(err)
	}
	for tile, sp := range sps {
		for _, p := range sp.Pieces {
			if p.CodedCount == 0 {
				continue
			}
			if len(p.Payload) == 0 {
				t.Fatalf("tile %d: empty payload with %d coded macroblocks", tile, p.CodedCount)
			}
			if !sameBacking(unit, p.Payload) {
				t.Fatalf("tile %d: payload was copied, expected zero-copy aliasing", tile)
			}
			if p.SkipBits > 7 {
				t.Fatalf("tile %d: skip bits %d", tile, p.SkipBits)
			}
		}
	}
}

func pieceReader(p *subpic.Piece) *bits.Reader {
	r := bits.NewReader(p.Payload)
	r.Skip(int(p.SkipBits))
	return r
}

func sameBacking(whole, part []byte) bool {
	if len(part) == 0 {
		return true
	}
	for i := range whole {
		if &whole[i] == &part[0] {
			return true
		}
	}
	return false
}

// TestOnePiecePerSliceWithoutOverlap: the paper notes each row of
// macroblocks in a sub-picture needs only one header.
func TestOnePiecePerSliceWithoutOverlap(t *testing.T) {
	s, _ := makeStream(t, 192, 128, 3)
	geo := geometry(t, s, 2, 2, 0)
	ms := NewMBSplitter(s.Seq, geo)
	sps, err := ms.Split(s.Pictures[0], 0) // I picture: no skips possible
	if err != nil {
		t.Fatal(err)
	}
	for tile, sp := range sps {
		_, _, y0, y1 := geo.MBSpan(tile)
		rows := y1 - y0 + 1
		if len(sp.Pieces) != rows {
			t.Errorf("tile %d: %d pieces for %d slice rows", tile, len(sp.Pieces), rows)
		}
	}
}

// TestRootSplitterScan: the root's picture segmentation matches ParseStream.
func TestRootSplitterScan(t *testing.T) {
	s, data := makeStream(t, 128, 64, 9)
	// Reuse the root's scan logic through the full system is heavier; here
	// just compare counts using the shared indexer.
	units := mpeg2.IndexPictureUnits(data)
	if len(units) != len(s.Pictures) {
		t.Fatalf("indexed %d units, stream has %d", len(units), len(s.Pictures))
	}
	for i := range units {
		if len(units[i]) != len(s.Pictures[i]) {
			t.Errorf("unit %d length %d vs %d", i, len(units[i]), len(s.Pictures[i]))
		}
	}
}
