package recovery

import (
	"tiledwall/internal/metrics"
)

// Hooks is the recovery wiring every supervised worker receives: its tuned
// configuration, the lease it must renew, the run-wide counters, and the
// chaos plan (inert for respawned incarnations — each injected kill fires
// once).
type Hooks struct {
	Cfg   Config
	Lease *Lease
	Rec   *metrics.Recovery
	Chaos ChaosPlan
}

// Renew renews the lease, if any (nil-safe for unsupervised use).
func (h *Hooks) Renew() {
	if h != nil && h.Lease != nil {
		h.Lease.Renew()
	}
}

// DecoderHooks wires one tile decoder incarnation.
type DecoderHooks struct {
	Hooks
	// Checkpoint survives incarnations; Resume marks a respawn, which starts
	// in concealment (freeze-last-frame) until an I picture re-anchors it.
	Checkpoint *Checkpoint
	Resume     bool
}

// SplitterHooks wires one second-level splitter incarnation.
type SplitterHooks struct {
	Hooks
	// Retainer receives every sub-picture this splitter ships, for replay to
	// respawned decoders.
	Retainer *SubPicRetainer
	// Resume marks a respawned incarnation, which must not claim the
	// stream's first-picture credit exemption.
	Resume bool
}

// RootHooks wires the root splitter.
type RootHooks struct {
	Cfg Config
	Rec *metrics.Recovery
	// Retainer holds sent pictures until the assignee's ack releases them.
	Retainer *PictureRetainer
}
