// Package wall models the tiled display: the mapping from picture pixels to
// projector tiles (including projector overlap for edge blending), the
// macroblock-to-tile assignment used by the splitters, and the virtual
// framebuffer assembly used to verify parallel output against the serial
// decoder.
package wall

import (
	"fmt"

	"tiledwall/internal/mpeg2"
)

// Rect is a half-open pixel rectangle [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// W returns the rectangle width.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Contains reports whether the pixel (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Intersects reports whether two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1
}

// Intersect returns the intersection of two rectangles; ok is false when
// they do not overlap.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	out := Rect{max(r.X0, o.X0), max(r.Y0, o.Y0), min(r.X1, o.X1), min(r.Y1, o.Y1)}
	if out.X0 >= out.X1 || out.Y0 >= out.Y1 {
		return Rect{}, false
	}
	return out, true
}

// Geometry maps an m×n tiled wall onto a picture. Tile rectangles are
// macroblock aligned and adjacent tiles share Overlap pixels (before
// alignment), modelling projector edge blending: macroblocks in the shared
// band are sent to every tile that displays them (paper §5.1).
type Geometry struct {
	M, N       int // tiles across and down
	PicW, PicH int // coded picture size (multiples of 16)
	Overlap    int

	tiles  []Rect
	owners []uint8 // canonical owner tile per macroblock
	mbW    int
	mbH    int
}

// NewGeometry builds the tiling. picW and picH must be multiples of 16;
// every tile must end up non-empty.
func NewGeometry(picW, picH, m, n, overlap int) (*Geometry, error) {
	if picW%16 != 0 || picH%16 != 0 || picW <= 0 || picH <= 0 {
		return nil, fmt.Errorf("wall: picture %dx%d must be positive multiples of 16", picW, picH)
	}
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("wall: invalid tiling %dx%d", m, n)
	}
	if picW < m*16 || picH < n*16 {
		return nil, fmt.Errorf("wall: %dx%d picture cannot give every tile of a %dx%d wall a macroblock", picW, picH, m, n)
	}
	if overlap < 0 {
		return nil, fmt.Errorf("wall: negative overlap")
	}
	g := &Geometry{M: m, N: n, PicW: picW, PicH: picH, Overlap: overlap,
		mbW: picW / 16, mbH: picH / 16}

	alignDown := func(v int) int { return v &^ 15 }
	alignUp := func(v int) int { return (v + 15) &^ 15 }
	span := func(k, count, size int) (int, int) {
		// Ideal seams at k*size/count, expanded by half the overlap on
		// interior edges, then aligned outward to macroblock boundaries.
		lo := k * size / count
		hi := (k + 1) * size / count
		if k > 0 {
			lo -= overlap / 2
		}
		if k < count-1 {
			hi += (overlap + 1) / 2
		}
		lo, hi = alignDown(lo), alignUp(hi)
		if lo < 0 {
			lo = 0
		}
		if hi > size {
			hi = size
		}
		return lo, hi
	}
	for row := 0; row < n; row++ {
		y0, y1 := span(row, n, picH)
		for col := 0; col < m; col++ {
			x0, x1 := span(col, m, picW)
			if x0 >= x1 || y0 >= y1 {
				return nil, fmt.Errorf("wall: tile (%d,%d) is empty for %dx%d over %dx%d", col, row, picW, picH, m, n)
			}
			g.tiles = append(g.tiles, Rect{x0, y0, x1, y1})
		}
	}
	// Canonical owners by macroblock centre against the un-overlapped seams.
	g.owners = make([]uint8, g.mbW*g.mbH)
	for mby := 0; mby < g.mbH; mby++ {
		cy := mby*16 + 8
		row := cy * n / picH
		if row >= n {
			row = n - 1
		}
		for mbx := 0; mbx < g.mbW; mbx++ {
			cx := mbx*16 + 8
			col := cx * m / picW
			if col >= m {
				col = m - 1
			}
			g.owners[mby*g.mbW+mbx] = uint8(row*m + col)
		}
	}
	return g, nil
}

// NumTiles returns m*n.
func (g *Geometry) NumTiles() int { return g.M * g.N }

// Tile returns the pixel rectangle of tile t (index row*M+col).
func (g *Geometry) Tile(t int) Rect { return g.tiles[t] }

// TileIndex returns the tile index for (col, row).
func (g *Geometry) TileIndex(col, row int) int { return row*g.M + col }

// MBRect returns the pixel rectangle of macroblock (mbx, mby).
func MBRect(mbx, mby int) Rect {
	return Rect{mbx * 16, mby * 16, mbx*16 + 16, mby*16 + 16}
}

// TilesForMB appends to dst the indices of every tile whose rectangle
// contains any pixel of macroblock (mbx, mby) and returns the result. With
// zero overlap this is exactly one tile.
func (g *Geometry) TilesForMB(mbx, mby int, dst []int) []int {
	mr := MBRect(mbx, mby)
	for t, tr := range g.tiles {
		if tr.Intersects(mr) {
			dst = append(dst, t)
		}
	}
	return dst
}

// Owner returns the canonical owner tile of macroblock (mbx, mby): the tile
// whose un-overlapped core region contains the macroblock centre. The owner
// always has the macroblock in its rectangle; MEI SENDs are addressed to
// owners so each remote macroblock has a single authoritative source.
func (g *Geometry) Owner(mbx, mby int) int {
	return int(g.owners[mby*g.mbW+mbx])
}

// TileHasMB reports whether tile t's rectangle covers macroblock (mbx, mby).
func (g *Geometry) TileHasMB(t, mbx, mby int) bool {
	return g.tiles[t].Intersects(MBRect(mbx, mby))
}

// MBSpan returns the inclusive range of macroblock columns of tile t.
func (g *Geometry) MBSpan(t int) (mbx0, mbx1, mby0, mby1 int) {
	r := g.tiles[t]
	return r.X0 / 16, (r.X1 - 1) / 16, r.Y0 / 16, (r.Y1 - 1) / 16
}

// Assemble composites per-tile windows into a full picture, taking each
// pixel from its owner tile. The result is bit-exact with a serial decode
// when every tile decoded correctly.
func (g *Geometry) Assemble(tiles []*mpeg2.PixelBuf) (*mpeg2.PixelBuf, error) {
	if len(tiles) != g.NumTiles() {
		return nil, fmt.Errorf("wall: %d tile buffers for %d tiles", len(tiles), g.NumTiles())
	}
	out := mpeg2.NewPixelBuf(0, 0, g.PicW, g.PicH)
	for mby := 0; mby < g.mbH; mby++ {
		for mbx := 0; mbx < g.mbW; mbx++ {
			t := g.Owner(mbx, mby)
			if tiles[t] == nil {
				return nil, fmt.Errorf("wall: missing buffer for tile %d", t)
			}
			out.CopyMacroblock(tiles[t], mbx, mby)
		}
	}
	return out, nil
}

// CoverageCheck verifies the partition invariants: every macroblock has at
// least one tile, its owner covers it, and tile rectangles tile the picture.
func (g *Geometry) CoverageCheck() error {
	var scratch []int
	for mby := 0; mby < g.mbH; mby++ {
		for mbx := 0; mbx < g.mbW; mbx++ {
			scratch = g.TilesForMB(mbx, mby, scratch[:0])
			if len(scratch) == 0 {
				return fmt.Errorf("wall: macroblock (%d,%d) not covered", mbx, mby)
			}
			owner := g.Owner(mbx, mby)
			if !g.TileHasMB(owner, mbx, mby) {
				return fmt.Errorf("wall: owner %d does not cover macroblock (%d,%d)", owner, mbx, mby)
			}
		}
	}
	return nil
}
