// Package splitter implements the two splitter levels of the paper's
// hierarchical decoder: the root splitter that scans the stream at picture
// level (start codes only) and the second-level splitter that performs full
// variable-length parsing, sorts macroblocks into per-tile sub-pictures with
// State Propagation Headers, and pre-calculates the macroblock exchange
// instructions (MEI) that replace on-demand remote fetches (§4.2-§4.3).
// It also provides the coarse-granularity baseline splitters of Table 1.
//
// The second-level splitter is slice-parallel: MPEG-2 slices are
// independently parseable (each slice header resets the DC and motion vector
// predictors and the quantiser scale, ISO 13818-2 §6.3.16), so Split can fan
// a picture's slices out to a worker pool and merge the per-slice results in
// slice order. The merged output is byte-identical to a serial split — the
// paper's ts term shrinks with core count instead of requiring more splitter
// PCs (DESIGN.md §10).
package splitter

import (
	"fmt"
	"runtime"
	"time"

	"tiledwall/internal/bits"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/subpic"
	"tiledwall/internal/wall"
)

// SplitOptions tunes an MBSplitter beyond its stream/geometry pair.
type SplitOptions struct {
	// Workers is the slice-parallel fan-out inside Split: 0 selects
	// GOMAXPROCS, 1 is the serial path. Any value produces byte-identical
	// sub-pictures; the conformance matrix holds parallel splits to the
	// serial oracle.
	Workers int
	// Reuse makes Split return sub-pictures owned by the splitter: the
	// SubPicture values and their Pieces/MEI backing arrays are recycled on
	// the next Split call. Callers that serialise every sub-picture before
	// splitting the next picture (the Pooled pipelines) get a
	// zero-allocation steady state; everyone else leaves Reuse off and
	// receives fresh copies.
	Reuse bool
}

// MBSplitter splits picture units into per-tile sub-pictures. It is not safe
// for concurrent use; one splitter per splitting goroutine. A splitter with
// Workers > 1 owns a lazily started goroutine pool — call Close when done
// with it (Close is cheap and safe for serial splitters too).
type MBSplitter struct {
	seq     *mpeg2.SequenceHeader
	geo     *wall.Geometry
	workers int
	reuse   bool

	// Per-picture scratch, reused across pictures.
	ph     mpeg2.PictureHeader
	ctx    mpeg2.PictureContext
	r      bits.Reader
	slices []mpeg2.SliceRef
	accs   []sliceAcc
	seen   meiSeen // merge-level dedup, one epoch per picture
	outPcs [][]subpic.Piece
	outMEI [][]subpic.MEIInstr
	sps    []*subpic.SubPicture // Reuse-mode output storage

	stats metrics.SplitBreakdown

	// Worker pool. ws[0] runs on the Split caller; ws[1:] have goroutines,
	// started on first parallel Split. curUnit is published to the workers by
	// the start-channel sends and read back at the done-channel receives, so
	// all worker writes happen-before the merge.
	ws      []*sliceWorker
	started bool
	curUnit []byte
	start   []chan struct{}
	done    chan struct{}
	quit    chan struct{}
}

// sliceAcc accumulates one slice's split products: per-tile piece lists plus
// the slice's MEI discovery sequence. Slots are indexed by slice, so workers
// write without sharing; the merge walks them in slice order.
type sliceAcc struct {
	pcs [][]subpic.Piece
	mei []meiRecord
}

// meiRecord is one deduplicated (within its slice) MEI discovery. The merge
// expands it into the SEND/RECV pair, after picture-level dedup.
type meiRecord struct {
	tile, owner uint16
	mbx, mby    uint16
	ref         subpic.RefSel
}

type openPiece struct {
	active   bool
	sph      subpic.SPH
	startBit int
	endBit   int
	lastAddr int
}

// NewMBSplitter creates a serial splitter for one stream/geometry pair
// (Workers 1, fresh output copies) — the paper's second-level splitter.
func NewMBSplitter(seq *mpeg2.SequenceHeader, geo *wall.Geometry) *MBSplitter {
	return NewMBSplitterOpts(seq, geo, SplitOptions{Workers: 1})
}

// NewMBSplitterOpts creates a splitter with explicit options.
func NewMBSplitterOpts(seq *mpeg2.SequenceHeader, geo *wall.Geometry, opt SplitOptions) *MBSplitter {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	nt := geo.NumTiles()
	mbs := seq.MBWidth() * seq.MBHeight()
	s := &MBSplitter{
		seq:     seq,
		geo:     geo,
		workers: w,
		reuse:   opt.Reuse,
		outPcs:  make([][]subpic.Piece, nt),
		outMEI:  make([][]subpic.MEIInstr, nt),
		ws:      make([]*sliceWorker, w),
	}
	s.seen.init(nt, mbs)
	for i := range s.ws {
		k := &sliceWorker{sp: s, open: make([]openPiece, nt)}
		k.seen.init(nt, mbs)
		s.ws[i] = k
	}
	return s
}

// Workers returns the resolved slice-parallel fan-out.
func (s *MBSplitter) Workers() int { return s.workers }

// Breakdown returns the accumulated splitter-phase timings (scan, parse,
// merge; serialization is the caller's).
func (s *MBSplitter) Breakdown() metrics.SplitBreakdown { return s.stats }

// Close stops the worker pool's goroutines. The splitter must not be used
// after Close. No-op for serial splitters and before the first parallel
// Split.
func (s *MBSplitter) Close() {
	if s.started {
		close(s.quit)
		s.started = false
	}
}

// startPool launches the persistent worker goroutines (ws[1:]; ws[0] runs
// inline on the Split caller).
func (s *MBSplitter) startPool() {
	if s.started {
		return
	}
	s.started = true
	s.quit = make(chan struct{})
	s.done = make(chan struct{}, s.workers)
	s.start = make([]chan struct{}, s.workers)
	for w := 1; w < s.workers; w++ {
		w := w
		s.start[w] = make(chan struct{}, 1)
		go func() {
			for {
				select {
				case <-s.quit:
					return
				case <-s.start[w]:
					s.ws[w].run(w)
					s.done <- struct{}{}
				}
			}
		}()
	}
}

// Split parses one picture unit and produces one sub-picture per tile.
// The returned sub-pictures alias unit's bytes (zero copy); under
// SplitOptions.Reuse they additionally alias splitter-owned accumulators and
// are only valid until the next Split call.
func (s *MBSplitter) Split(unit []byte, picIndex int) ([]*subpic.SubPicture, error) {
	// Scan: headers plus the byte-aligned slice index.
	t0 := time.Now()
	s.r.Reset(unit)
	sliceOff, err := mpeg2.ParsePictureUnitInto(&s.r, unit, &s.ph)
	if err != nil {
		return nil, err
	}
	if err := s.ctx.Init(s.seq, &s.ph); err != nil {
		return nil, err
	}
	s.slices = mpeg2.IndexSlices(s.seq, unit, sliceOff, s.slices[:0])
	s.stats.Add(metrics.SplitScan, time.Since(t0))

	// Parse: every slice through a re-entrant slice VLD, into its own
	// accumulator slot. Workers take contiguous slice blocks, so slots are
	// disjoint and adjacent accumulators stay on one worker's cache lines.
	t0 = time.Now()
	nt := s.geo.NumTiles()
	s.growAccs(len(s.slices), nt)
	if s.workers > 1 && len(s.slices) > 1 {
		s.startPool()
		s.curUnit = unit
		for w := 1; w < s.workers; w++ {
			s.start[w] <- struct{}{}
		}
		s.ws[0].run(0)
		for w := 1; w < s.workers; w++ {
			<-s.done
		}
	} else {
		s.curUnit = unit
		s.ws[0].runSerial()
	}
	// Fold the lanes: the stage's critical path is the slowest worker (what
	// a core-per-worker splitter PC spends); wall time is what this host
	// spent, inflated by timesharing when cores are scarce. Errors resolve
	// to the lowest slice index so failure reports match the serial split.
	errIdx := -1
	var werr error
	var critical time.Duration
	for _, k := range s.ws {
		if k.busy > critical {
			critical = k.busy
		}
		k.busy = 0
		if k.err != nil && (errIdx < 0 || k.errSlice < errIdx) {
			errIdx, werr = k.errSlice, k.err
		}
		k.err = nil
	}
	s.stats.Add(metrics.SplitParse, critical)
	s.stats.ParseWall += time.Since(t0)
	if werr != nil {
		return nil, fmt.Errorf("picture %d slice row %d: %w", picIndex, s.slices[errIdx].VPos, werr)
	}

	// Merge: stitch piece lists in slice order and expand the MEI discovery
	// sequences with picture-level dedup. Both reproduce the serial append
	// order exactly — pieces never span slices and serial dedup also keeps
	// only the first occurrence of a key.
	t0 = time.Now()
	for t := 0; t < nt; t++ {
		s.outPcs[t] = s.outPcs[t][:0]
		s.outMEI[t] = s.outMEI[t][:0]
	}
	s.seen.begin()
	for i := range s.slices {
		acc := &s.accs[i]
		for t := 0; t < nt; t++ {
			s.outPcs[t] = append(s.outPcs[t], acc.pcs[t]...)
		}
		for _, m := range acc.mei {
			t, owner := int(m.tile), int(m.owner)
			if s.seen.seen(t, int(m.mby)*s.ctx.MBW+int(m.mbx), m.ref) {
				continue
			}
			s.outMEI[owner] = append(s.outMEI[owner], subpic.MEIInstr{
				Kind: subpic.MEISend, Ref: m.ref, MBX: m.mbx, MBY: m.mby, Peer: m.tile,
			})
			s.outMEI[t] = append(s.outMEI[t], subpic.MEIInstr{
				Kind: subpic.MEIRecv, Ref: m.ref, MBX: m.mbx, MBY: m.mby, Peer: m.owner,
			})
		}
	}
	out := s.emit(picIndex)
	s.stats.Add(metrics.SplitSort, time.Since(t0))
	s.stats.Pictures++
	return out, nil
}

// growAccs sizes the per-slice accumulators and resets them for a picture.
func (s *MBSplitter) growAccs(n, nt int) {
	for len(s.accs) < n {
		s.accs = append(s.accs, sliceAcc{pcs: make([][]subpic.Piece, nt)})
	}
	for i := 0; i < n; i++ {
		acc := &s.accs[i]
		for t := 0; t < nt; t++ {
			acc.pcs[t] = acc.pcs[t][:0]
		}
		acc.mei = acc.mei[:0]
	}
}

// emit builds the per-tile sub-pictures from the merged accumulators.
func (s *MBSplitter) emit(picIndex int) []*subpic.SubPicture {
	nt := s.geo.NumTiles()
	if s.reuse {
		if s.sps == nil {
			s.sps = make([]*subpic.SubPicture, nt)
			for t := range s.sps {
				s.sps[t] = &subpic.SubPicture{}
			}
		}
		for t := 0; t < nt; t++ {
			sp := s.sps[t]
			sp.Final = false
			sp.Pieces = s.outPcs[t]
			sp.MEI = s.outMEI[t]
			sp.Pic.FromHeader(picIndex, &s.ph)
		}
		return s.sps
	}
	out := make([]*subpic.SubPicture, nt)
	for t := 0; t < nt; t++ {
		sp := &subpic.SubPicture{
			Pieces: append([]subpic.Piece(nil), s.outPcs[t]...),
			MEI:    append([]subpic.MEIInstr(nil), s.outMEI[t]...),
		}
		sp.Pic.FromHeader(picIndex, &s.ph)
		out[t] = sp
	}
	return out
}

// sliceWorker is one lane of the slice-parallel splitter: a re-entrant slice
// VLD with its own bit reader, piece state and skip-routing scratch. ws[0]
// doubles as the serial path's engine, so serial and parallel splits share
// one code path and bit-exactness between them is structural, not tested-in.
type sliceWorker struct {
	sp *MBSplitter

	r  bits.Reader
	sd mpeg2.SliceDecoder
	mb mpeg2.Macroblock

	open     []openPiece
	tileSet  []int
	skipSet  []int
	orphans  []int
	meiTiles []int
	seen     meiSeen // worker-local dedup, one epoch per slice

	busy     time.Duration
	err      error
	errSlice int
}

// run parses this worker's contiguous block of the picture's slices. A
// worker's whole block runs far below the scheduler's preemption quantum,
// so busy approximates the lane's genuine work even when lanes timeshare
// one core.
func (k *sliceWorker) run(w int) {
	t0 := time.Now()
	s := k.sp
	n := len(s.slices)
	lo, hi := w*n/s.workers, (w+1)*n/s.workers
	for i := lo; i < hi; i++ {
		if err := k.splitSlice(s.curUnit, s.slices[i], &s.accs[i]); err != nil {
			k.err, k.errSlice = err, i
			break
		}
	}
	k.busy = time.Since(t0)
}

// runSerial parses every slice in order on the caller's goroutine.
func (k *sliceWorker) runSerial() {
	t0 := time.Now()
	s := k.sp
	for i := range s.slices {
		if err := k.splitSlice(s.curUnit, s.slices[i], &s.accs[i]); err != nil {
			k.err, k.errSlice = err, i
			break
		}
	}
	k.busy = time.Since(t0)
}

// splitSlice parses one slice in parse-only mode, routing macroblocks to
// tiles and recording exchange instructions into acc.
func (k *sliceWorker) splitSlice(unit []byte, ref mpeg2.SliceRef, acc *sliceAcc) error {
	ctx := &k.sp.ctx
	geo := k.sp.geo
	if err := k.sd.ResetFullAt(ctx, &k.r, unit, ref); err != nil {
		return err
	}
	k.sd.SetParseOnly(true)
	k.seen.begin()
	picType := ctx.Pic.PicType

	// The parser leaves fields of directions a macroblock does not code
	// untouched, and SPH.Prev serialises all of MotionInfo — so the scratch
	// macroblock must start each slice zeroed, exactly like the serial
	// splitter's per-slice stack variable did.
	mb := &k.mb
	*mb = mpeg2.Macroblock{}
	for {
		ok, err := k.sd.Next(mb)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		mbx, mby := mb.Addr%ctx.MBW, mb.Addr/ctx.MBW
		k.tileSet = geo.TilesForMB(mbx, mby, k.tileSet[:0])

		// Route the preceding skipped run. Tiles covering skipped
		// macroblocks but not this coded one get leading/trailing
		// bookkeeping; skipped B macroblocks also generate MEIs since they
		// inherit the previous macroblock's (possibly boundary-crossing)
		// motion.
		if mb.SkippedBefore > 0 {
			k.routeSkipped(ctx, acc, mb, mbx, mby)
		}

		for _, t := range k.tileSet {
			p := &k.open[t]
			if !p.active {
				p.active = true
				p.startBit = mb.BitStart
				p.sph = subpic.SPH{
					SkipBits:   uint8(mb.BitStart & 7),
					FirstAddr:  int32(mb.Addr),
					CodedCount: 0,
					Prev:       mb.PrevMotion,
				}
				p.sph.SetState(mb.StateBefore)
				// Leading skips covered by this tile (suffix of the run).
				if mb.SkippedBefore > 0 {
					p.sph.LeadingSkip = k.countSkipsIn(t, mb, mbx, mby)
				}
			}
			p.sph.CodedCount++
			p.endBit = mb.BitEnd
			p.lastAddr = mb.Addr
		}
		// Close pieces of tiles whose run has ended (open but not covering
		// this coded macroblock): the part of the skipped run they cover
		// becomes their trailing count.
		for t := range k.open {
			p := &k.open[t]
			if !p.active || covers(k.tileSet, t) {
				continue
			}
			trailing := int32(0)
			if mb.SkippedBefore > 0 {
				trailing = k.countSkipsIn(t, mb, mbx, mby)
			}
			k.closePiece(acc, t, unit, trailing)
		}

		// Exchange instructions for this coded macroblock.
		if picType != mpeg2.PictureI && !mb.Intra() {
			k.addMEIForMB(ctx, acc, mbx, mby, mb.Motion(), picType)
		}
	}
	// Slice end: close everything (a conformant slice ends with a coded
	// macroblock, so there are no trailing skips here).
	for t := range k.open {
		if k.open[t].active {
			k.closePiece(acc, t, unit, 0)
		}
	}
	return nil
}

func covers(set []int, t int) bool {
	for _, v := range set {
		if v == t {
			return true
		}
	}
	return false
}

// countSkipsIn counts the skipped macroblocks before mb that tile t covers.
func (k *sliceWorker) countSkipsIn(t int, mb *mpeg2.Macroblock, mbx, mby int) int32 {
	var n int32
	for i := 1; i <= mb.SkippedBefore; i++ {
		if k.sp.geo.TileHasMB(t, mbx-i, mby) {
			n++
		}
	}
	return n
}

// routeSkipped handles tiles that cover part of a skipped run:
//
//   - tiles that also cover the following coded macroblock count the skips
//     as LeadingSkip when their piece opens (done by the caller);
//   - tiles with an open piece count them as TrailingSkip when the run
//     leaves them (done by the caller's close path);
//   - tiles covering only skipped macroblocks of this slice get a
//     self-contained empty piece (CodedCount 0) carrying just the count.
//
// Skipped B macroblocks also generate MEIs, since they inherit the previous
// macroblock's possibly boundary-crossing motion; skipped P macroblocks are
// zero-vector co-located copies that never reference remote data.
func (k *sliceWorker) routeSkipped(ctx *mpeg2.PictureContext, acc *sliceAcc, mb *mpeg2.Macroblock, mbx, mby int) {
	geo := k.sp.geo
	k.orphans = k.orphans[:0]
	for i := 1; i <= mb.SkippedBefore; i++ {
		sx := mbx - i
		k.skipSet = geo.TilesForMB(sx, mby, k.skipSet[:0])
		for _, t := range k.skipSet {
			if k.open[t].active || covers(k.tileSet, t) || covers(k.orphans, t) {
				continue
			}
			k.orphans = append(k.orphans, t)
		}
		if ctx.Pic.PicType == mpeg2.PictureB {
			k.addMEIForMB(ctx, acc, sx, mby, mb.PrevMotion, mpeg2.PictureB)
		}
	}
	for _, t := range k.orphans {
		// Decoders reconstruct leading skips at [FirstAddr-LeadingSkip,
		// FirstAddr), so FirstAddr points one past the tile's last owned
		// skipped macroblock (the tile's coverage is a contiguous column
		// interval, so its owned skips are contiguous).
		lastOwned := -1
		for a := mb.Addr - mb.SkippedBefore; a < mb.Addr; a++ {
			if geo.TileHasMB(t, a%ctx.MBW, mby) {
				lastOwned = a
			}
		}
		sph := subpic.SPH{
			FirstAddr:   int32(lastOwned + 1),
			LeadingSkip: k.countSkipsIn(t, mb, mbx, mby),
			Prev:        mb.PrevMotion,
		}
		sph.SetState(mb.StateBefore)
		acc.pcs[t] = append(acc.pcs[t], subpic.Piece{SPH: sph})
	}
}

// closePiece finalises tile t's open piece, extracting the payload bytes.
func (k *sliceWorker) closePiece(acc *sliceAcc, t int, unit []byte, trailing int32) {
	p := &k.open[t]
	p.active = false
	p.sph.TrailingSkip = trailing
	var payload []byte
	if p.sph.CodedCount > 0 {
		start := p.startBit >> 3
		end := (p.endBit + 7) >> 3
		payload = unit[start:end:end]
	}
	acc.pcs[t] = append(acc.pcs[t], subpic.Piece{SPH: p.sph, Payload: payload})
}

// addMEIForMB computes the reference cells needed by the macroblock at
// (mbx, mby) with motion m, for every tile that will decode it, and records
// a discovery for cells outside the tile. The worker-local dedup only
// filters within-slice repeats; cross-slice dedup happens at the merge,
// where the global first-occurrence order is known.
func (k *sliceWorker) addMEIForMB(ctx *mpeg2.PictureContext, acc *sliceAcc, mbx, mby int, m mpeg2.MotionInfo, picType mpeg2.PictureType) {
	if !m.Fwd && !m.Bwd && picType == mpeg2.PictureP {
		// Parser guarantees P macroblocks always carry a forward prediction
		// ("no MC" becomes a zero vector), but be safe.
		m.Fwd = true
	}
	k.meiTiles = k.sp.geo.TilesForMB(mbx, mby, k.meiTiles[:0])
	if m.Fwd {
		k.addMEIForVector(ctx, acc, mbx, mby, m.MVFwd, subpic.RefFwd)
	}
	if m.Bwd {
		k.addMEIForVector(ctx, acc, mbx, mby, m.MVBwd, subpic.RefBwd)
	}
}

func (k *sliceWorker) addMEIForVector(ctx *mpeg2.PictureContext, acc *sliceAcc, mbx, mby int, mv [2]int32, ref subpic.RefSel) {
	geo := k.sp.geo
	// Luma reference footprint (the chroma footprint is contained within the
	// same macroblock cells; see recon.go).
	x0 := mbx*16 + int(mv[0]>>1)
	y0 := mby*16 + int(mv[1]>>1)
	x1 := x0 + 16 + int(mv[0]&1) - 1
	y1 := y0 + 16 + int(mv[1]&1) - 1
	cx0, cx1 := x0>>4, x1>>4
	cy0, cy1 := y0>>4, y1>>4
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	maxX, maxY := ctx.MBW-1, ctx.MBH-1
	if cx1 > maxX {
		cx1 = maxX
	}
	if cy1 > maxY {
		cy1 = maxY
	}
	for _, t := range k.meiTiles {
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				if geo.TileHasMB(t, cx, cy) {
					continue // available locally
				}
				if k.seen.seen(t, cy*ctx.MBW+cx, ref) {
					continue
				}
				acc.mei = append(acc.mei, meiRecord{
					tile: uint16(t), owner: uint16(geo.Owner(cx, cy)),
					mbx: uint16(cx), mby: uint16(cy), ref: ref,
				})
			}
		}
	}
}
