// Package tiledwall is a from-scratch Go reproduction of "A Parallel
// Ultra-High Resolution MPEG-2 Video Decoder for PC Cluster Based Tiled
// Display Systems" (Chen, Li, Wei — IPDPS 2002): a hierarchical 1-k-(m,n)
// parallel MPEG-2 decoder in which a root splitter distributes pictures to k
// macroblock-level splitters feeding an m×n grid of tile decoders, plus
// every substrate the paper depends on — an MPEG-2 MP video codec, a
// GM/Myrinet-like message fabric, the tiled-wall geometry, the
// coarse-granularity baseline systems of Table 1, and the full benchmark
// harness for the paper's evaluation.
//
// This file is the façade over the implementation packages:
//
//	internal/mpeg2       MPEG-2 bitstream syntax, VLD, IDCT, MC, serial decoder
//	internal/encoder     closed-loop MPEG-2 encoder (test content generation)
//	internal/video       synthetic scene generators (Table 4 analogues)
//	internal/catalog     the 16-stream catalogue and wall configurations
//	internal/cluster     in-process message fabric with GM semantics
//	internal/wall        tile geometry, overlap, frame assembly
//	internal/subpic      sub-pictures: SPH headers and MEI instructions
//	internal/splitter    root + second-level splitters, bit-exact SP cutting
//	internal/pdec        tile decoders (MEI execution, halo windows)
//	internal/system      pipeline assembly, baselines, §4.6 calibration
//	internal/service     resident wall service, session multiplexing
//	internal/experiments the Table/Figure regeneration harness
//
// Quick start (see examples/quickstart for the runnable version):
//
//	stream, _ := tiledwall.GenerateStream(8, tiledwall.GenOptions{Frames: 48})
//	res, _ := tiledwall.Play(stream, tiledwall.WallConfig{K: 2, M: 2, N: 2})
//	fmt.Printf("%.1f fps\n", res.Throughput.FPS())
package tiledwall

import (
	"tiledwall/internal/catalog"
	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/recovery"
	"tiledwall/internal/service"
	"tiledwall/internal/system"
	"tiledwall/internal/wall"
)

// Typed sentinels for the failure modes the pipeline promises to bound.
// Callers match them with errors.Is, without importing internal packages.
var (
	// ErrStalled is returned when fabric traffic dries up while nodes are
	// still blocked — a protocol deadlock, converted by the stall watchdog
	// into a clean, attributable error instead of a hang.
	ErrStalled = cluster.ErrStalled
	// ErrCorruptStream wraps every syntax-level decode failure on malformed
	// input.
	ErrCorruptStream = mpeg2.ErrCorruptStream
	// ErrUnsupported wraps failures on syntax that is valid MPEG-2 but
	// outside the profile this reproduction implements.
	ErrUnsupported = mpeg2.ErrUnsupported
)

// RecoveryConfig tunes the fault-tolerance layer (WallConfig.Recovery):
// heartbeat leases, retransmission backoff, the per-picture concealment
// deadline, and the restart budget. The zero value leaves recovery off;
// setting Enabled with zero fields picks sensible defaults.
type RecoveryConfig = recovery.Config

// RecoverySnapshot reports the fault-tolerance interventions of a run
// (WallResult.Recovery): retransmits, restarts, replays, concealments.
type RecoverySnapshot = metrics.RecoverySnapshot

// WallConfig selects a 1-k-(m,n) configuration (K = 0 for one-level).
type WallConfig = system.Config

// WallResult reports a pipeline run.
type WallResult = system.Result

// GenOptions controls catalogue stream generation.
type GenOptions = catalog.GenOptions

// StreamSpec describes one catalogue stream (paper Table 4).
type StreamSpec = catalog.StreamSpec

// Streams lists the 16 catalogue streams.
func Streams() []StreamSpec { return catalog.Streams }

// GenerateStream renders and encodes catalogue stream id (1..16).
func GenerateStream(id int, opts GenOptions) ([]byte, error) {
	spec, err := catalog.ByID(id)
	if err != nil {
		return nil, err
	}
	return spec.Generate(opts)
}

// Play decodes an MPEG-2 elementary stream on a simulated tiled wall.
func Play(stream []byte, cfg WallConfig) (*WallResult, error) {
	return system.Run(stream, cfg)
}

// ErrTooManySessions is returned by Wall.Open/Wall.Play when the wall's
// MaxSessions admission bound is reached. The concrete error is a
// *TooManySessionsError carrying a RetryAfter hint; see that type for the
// caller backoff contract.
var ErrTooManySessions = service.ErrTooManySessions

// TooManySessionsError is the concrete admission-rejection error: Active and
// Max report the bound that was hit, RetryAfter is the wall's estimate of
// when a slot frees up (derived from observed session durations and the
// oldest active session's progress).
//
// Backoff contract: sleep RetryAfter, then retry; on repeated rejection,
// multiply the wait (e.g. 1.5–2×) and cap it — RetryAfter is a hint, not a
// reservation, so concurrent openers may still race for the freed slot.
// errors.Is(err, ErrTooManySessions) matches it.
type TooManySessionsError = service.TooManySessionsError

// Typed sentinels for session-isolated recovery failures on a resident wall.
var (
	// ErrSessionFailed wraps errors from sessions that failed in isolation
	// (e.g. a corrupt stream poisoning its own splitter) while the wall and
	// its other sessions kept running.
	ErrSessionFailed = service.ErrSessionFailed
	// ErrSessionDisrupted wraps errors from sessions torn down because a
	// fault exhausted the recovery budget mid-session (e.g. a node dead past
	// its restart budget, a drain that never completed).
	ErrSessionDisrupted = service.ErrSessionDisrupted
)

// Health is a resident wall's fault-tolerance state: Healthy (all node loops
// live), Recovering (a node loop died and is being respawned), Degraded (all
// loops live again, but a session closed unclean since — concealed or lost
// frames were served). A clean session close returns the wall to Healthy.
type Health = service.Health

// Health states, re-exported for switch statements.
const (
	Healthy    = service.Healthy
	Recovering = service.Recovering
	Degraded   = service.Degraded
)

// Wall is a resident decoding service: the pipeline is built once by NewWall
// and serves any number of streams — sequentially or concurrently — until
// Close. Play on a warm wall skips the per-run pipeline construction that
// dominates short batch runs.
type Wall struct {
	w *system.ResidentWall
}

// Session is an incrementally-fed stream on a resident wall (Wall.Open).
type Session = service.Session

// TileSet is a session subscription: the set of tiles whose output the
// session wants (Session.Subscribe). The zero value subscribes every tile.
// Build partial sets with NewTileSet/Add or RectTileSet.
type TileSet = wall.TileSet

// NewTileSet returns an empty subscription over n tiles (n = M*N); add tiles
// with Add (row-major index row*M+col).
func NewTileSet(n int) TileSet { return wall.NewTileSet(n) }

// RectTileSet subscribes the inclusive tile rectangle rows r0..r1 × columns
// c0..c1 of an M-column, N-row wall.
func RectTileSet(m, n, r0, c0, r1, c1 int) (TileSet, error) {
	return wall.RectTileSet(m, n, r0, c0, r1, c1)
}

// TrickMode selects a session's trick-play drop ladder
// (Session.SetTrickMode): dropped pictures never reach the splitters.
type TrickMode = service.TrickMode

// Trick-play modes: TrickNone ships every picture, TrickDropB ships I and P
// only (fast forward at full reference fidelity), TrickIOnly ships I only
// (seek/scrub preview).
const (
	TrickNone  = service.TrickNone
	TrickIOnly = service.TrickIOnly
	TrickDropB = service.TrickDropB
)

// SubscriptionEvent records one subscription/trick activation on a session
// (SessionResult.Subscriptions): the change took effect at shipped picture
// index Picture, always an I-picture boundary.
type SubscriptionEvent = service.SubscriptionEvent

// NewWall builds a resident wall for the configuration. With
// WallConfig.Recovery enabled the wall is fault-tolerant as a service:
// crashed splitter/decoder loops are respawned and their sessions resumed
// (replay + concealment), a corrupt stream fails only its own session
// (ErrSessionFailed), faults past the budget disrupt rather than hang
// (ErrSessionDisrupted), and Wall.Health reports the state machine.
func NewWall(cfg WallConfig) (*Wall, error) {
	w, err := system.NewResidentWall(cfg)
	if err != nil {
		return nil, err
	}
	return &Wall{w: w}, nil
}

// Play decodes one complete stream as one session on the resident wall.
// Safe to call from concurrent goroutines, up to the wall's MaxSessions.
func (w *Wall) Play(stream []byte) (*WallResult, error) { return w.w.Play(stream) }

// Open starts a session for incremental feeding: Session.Feed accepts chunks
// split at arbitrary byte boundaries, Session.Close drains and reports.
func (w *Wall) Open(name string) (*Session, error) { return w.w.Open(name) }

// Close drains open sessions, shuts the pipeline down, and reports the abort
// cause if any node failed.
func (w *Wall) Close() error { return w.w.Close() }

// Health reports the wall's fault-tolerance state (always Healthy when
// Recovery is disabled).
func (w *Wall) Health() Health { return w.w.Health() }

// Decode runs the serial reference decoder, returning pictures in display
// order.
func Decode(stream []byte) ([]mpeg2.DecodedPicture, error) {
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		return nil, err
	}
	return dec.DecodeAll()
}

// Calibrate measures the §4.6 split/decode costs and recommends k.
func Calibrate(stream []byte, m, n, overlap, maxPics int) (*system.Calibration, error) {
	return system.Calibrate(stream, m, n, overlap, maxPics)
}
