package mpeg2

// PredState is the within-slice prediction state of the macroblock decoder:
// DC coefficient predictors, motion vector predictors and the current
// quantiser scale code. The second-level splitter snapshots this state at a
// macroblock boundary and ships it in a State Propagation Header so that a
// decoder can pick up decoding in the middle of a slice (paper §4.3).
type PredState struct {
	// DCPred holds the intra DC predictors for Y, Cb, Cr.
	DCPred [3]int32
	// PMV[r][s][t]: motion vector predictors; r = first/second vector
	// (always updated in tandem under frame prediction), s = forward/
	// backward, t = horizontal/vertical. Units are half-samples.
	PMV [2][2][2]int32
	// QuantCode is the current quantiser_scale_code (1..31).
	QuantCode int
}

// ResetDC resets the DC predictors for the given intra_dc_precision.
func (s *PredState) ResetDC(intraDCPrecision int) {
	v := int32(1) << uint(7+intraDCPrecision)
	s.DCPred[0], s.DCPred[1], s.DCPred[2] = v, v, v
}

// ResetMV zeroes all motion vector predictors.
func (s *PredState) ResetMV() {
	s.PMV = [2][2][2]int32{}
}

// MotionInfo summarises the prediction of a macroblock: which directions are
// used and the reconstructed vectors (half-sample units). It is what a
// skipped B macroblock inherits from its predecessor, so the splitter ships
// it in the SPH when the predecessor lives on a different decoder.
type MotionInfo struct {
	Fwd, Bwd bool
	MVFwd    [2]int32
	MVBwd    [2]int32
}

// Macroblock is the result of parsing one coded macroblock.
type Macroblock struct {
	// Addr is the macroblock address (row * mbWidth + col).
	Addr int
	// SkippedBefore counts skipped macroblocks between the previous coded
	// macroblock and this one.
	SkippedBefore int
	// Flags holds the MB* macroblock_type flags.
	Flags int
	// QuantCode is the quantiser_scale_code in effect for this macroblock.
	QuantCode int
	// CBP is the coded block pattern (bit 5 = block 0 ... bit 0 = block 5);
	// for intra macroblocks it is 63.
	CBP int
	// MVFwd/MVBwd are reconstructed motion vectors in half-sample units.
	MVFwd, MVBwd [2]int32
	// BitStart/BitEnd delimit the macroblock in the source bitstream,
	// including its address increment (and any escapes). Used by the
	// splitter's bit-exact sub-picture copy.
	BitStart, BitEnd int
	// StateBefore is the prediction state immediately before this
	// macroblock was parsed (after any skipped-run resets). It is exactly
	// what an SPH needs for a piece beginning at this macroblock.
	StateBefore PredState
	// PrevMotion is the motion summary of the previous coded macroblock,
	// used to reconstruct skipped B macroblocks at a piece boundary.
	PrevMotion MotionInfo
	// Blocks holds dequantised coefficients in raster order; nil when the
	// parser runs in parse-only (splitter) mode.
	Blocks *[6][64]int32
	// ACMask holds, per block, the conservative nonzero-row mask driving the
	// fast IDCT dispatch (see IDCTFast): bit r set when a coefficient at
	// raster positions 8r..8r+7 — excluding the DC term at position 0 — may
	// be nonzero. Meaningless in parse-only mode.
	ACMask [6]uint8
}

// Intra reports whether the macroblock is intra coded.
func (m *Macroblock) Intra() bool { return m.Flags&MBIntra != 0 }

// Motion returns the macroblock's motion summary.
func (m *Macroblock) Motion() MotionInfo {
	return MotionInfo{
		Fwd:   m.Flags&MBMotionFwd != 0,
		Bwd:   m.Flags&MBMotionBwd != 0,
		MVFwd: m.MVFwd,
		MVBwd: m.MVBwd,
	}
}
