// Command mpeg2info inspects an MPEG-2 video elementary stream: sequence
// parameters, picture counts by type, average frame size and bits per pixel
// (the columns of the paper's Table 4).
//
// Usage:
//
//	mpeg2info file.m2v [file2.m2v ...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/mpegps"
)

func main() {
	verbose := flag.Bool("v", false, "per-picture listing")
	stats := flag.Bool("stats", false, "macroblock-level statistics (full VLD parse)")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("mpeg2info: pass at least one stream file")
	}
	for _, path := range flag.Args() {
		if err := inspect(path, *verbose, *stats); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
	}
}

func inspect(path string, verbose, stats bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if mpegps.IsProgramStream(data) {
		es, err := mpegps.Demux(data)
		if err != nil {
			return fmt.Errorf("program stream demux: %w", err)
		}
		fmt.Printf("%s: MPEG-2 program stream (%d bytes), video ES %d bytes", path, len(data), len(es))
		if pts, ok := mpegps.ParsePTS(data); ok {
			fmt.Printf(", first PTS %d (90 kHz)", pts)
		}
		fmt.Println()
		data = es
	}
	s, err := mpeg2.ParseStream(data)
	if err != nil {
		return err
	}
	seq := s.Seq
	fmt.Printf("%s:\n", path)
	fmt.Printf("  sequence: %dx%d, %.3f fps, chroma 4:2:0, profile/level %#02x, progressive=%v\n",
		seq.Width, seq.Height, mpeg2.FrameRate(seq.FrameRateCode), seq.ProfileLevel, seq.Progressive)
	fmt.Printf("  declared bit rate: %.2f Mbit/s, vbv %d\n", float64(seq.BitRate)*400/1e6, seq.VBVBufferSize)

	counts := map[mpeg2.PictureType]int{}
	var totalBytes int64
	for i, unit := range s.Pictures {
		pt, err := mpeg2.PeekPictureType(unit)
		if err != nil {
			return fmt.Errorf("picture %d: %w", i, err)
		}
		counts[pt]++
		totalBytes += int64(len(unit))
		if verbose {
			fmt.Printf("  pic %4d: %s %8d bytes\n", i, pt, len(unit))
		}
	}
	n := len(s.Pictures)
	avg := float64(len(data)) / float64(n)
	fmt.Printf("  pictures: %d (I:%d P:%d B:%d)\n", n,
		counts[mpeg2.PictureI], counts[mpeg2.PictureP], counts[mpeg2.PictureB])
	fmt.Printf("  avg frame size: %.0f bytes, %.3f bit/pixel\n",
		avg, avg*8/float64(seq.Width*seq.Height))
	fmt.Printf("  stream rate at %.3f fps: %.2f Mbit/s\n",
		mpeg2.FrameRate(seq.FrameRateCode),
		avg*8*mpeg2.FrameRate(seq.FrameRateCode)/1e6)
	if stats {
		ss, err := mpeg2.CollectStreamStats(s)
		if err != nil {
			return err
		}
		fmt.Printf("  macroblock statistics:\n")
		for _, line := range splitLines(ss.Format()) {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
