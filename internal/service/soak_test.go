// Soak tests for the resident wall: many sessions, mixed streams, ragged
// chunk feeding, wall reuse across rounds — all byte-verified against the
// serial reference decoder. The package is external (service_test) so it can
// use the conformance stream generator, which depends on system and hence on
// service. CI runs this file under -race as the multi-session soak.
package service_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/conformance"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/service"
	"tiledwall/internal/system"
	"tiledwall/internal/video"
)

// soakStream is one generated stream plus its serial reference decode.
type soakStream struct {
	data []byte
	ref  []mpeg2.DecodedPicture
}

func genStreams(t *testing.T, seeds []int64) []soakStream {
	t.Helper()
	out := make([]soakStream, len(seeds))
	for i, seed := range seeds {
		data, err := conformance.ParamsForSeed(seed).Generate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dec, err := mpeg2.NewDecoder(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := dec.DecodeAll()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out[i] = soakStream{data: data, ref: ref}
	}
	return out
}

// feedChunked drives one stream through an open session in ragged chunks and
// returns the assembled frames.
func feedChunked(w *system.ResidentWall, st soakStream, name string, chunk int) ([]*mpeg2.PixelBuf, error) {
	sess, err := w.Open(name)
	if err != nil {
		return nil, err
	}
	for off := 0; off < len(st.data); off += chunk {
		end := off + chunk
		if end > len(st.data) {
			end = len(st.data)
		}
		if err := sess.Feed(st.data[off:end]); err != nil {
			sess.Close()
			return nil, err
		}
	}
	res, err := sess.Close()
	if err != nil {
		return nil, err
	}
	return res.Frames, nil
}

func verifyFrames(ref []mpeg2.DecodedPicture, got []*mpeg2.PixelBuf) error {
	if len(ref) != len(got) {
		return fmt.Errorf("frame count: serial %d, session %d", len(ref), len(got))
	}
	for i := range ref {
		if !video.Equal(ref[i].Buf, got[i]) {
			return fmt.Errorf("frame %d differs from serial decode", i)
		}
	}
	return nil
}

// TestSoakMultiSession opens one resident wall per geometry and pushes two
// rounds of concurrent mixed-stream sessions through it: round two reuses a
// warm pipeline, so per-session state isolation (not just construction) is
// what keeps the decodes bit-exact.
func TestSoakMultiSession(t *testing.T) {
	streams := genStreams(t, []int64{1, 3, 8, 11})
	walls := []system.Config{
		{K: 0, M: 2, N: 2},
		{K: 2, M: 2, N: 2},
		{K: 3, M: 2, N: 2, Overlap: 16, Pooled: true},
		{K: 1, M: 3, N: 1, SplitWorkers: 2, DynamicBalance: true},
	}
	for wi, cfg := range walls {
		wi, cfg := wi, cfg
		t.Run(fmt.Sprintf("1-%d-(%d,%d)ov%d", cfg.K, cfg.M, cfg.N, cfg.Overlap), func(t *testing.T) {
			t.Parallel()
			cfg.CollectFrames = true
			cfg.MaxSessions = len(streams)
			w, err := system.NewResidentWall(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := w.Close(); err != nil {
					t.Fatalf("wall close: %v", err)
				}
			}()
			for round := 0; round < 2; round++ {
				var wg sync.WaitGroup
				errs := make([]error, len(streams))
				for si, st := range streams {
					si, st := si, st
					wg.Add(1)
					go func() {
						defer wg.Done()
						chunk := 128<<(si%4) + 31*si + 17*wi + round + 1
						frames, err := feedChunked(w, st, fmt.Sprintf("soak-%d-%d", round, si), chunk)
						if err == nil {
							err = verifyFrames(st.ref, frames)
						}
						errs[si] = err
					}()
				}
				wg.Wait()
				for si, err := range errs {
					if err != nil {
						t.Fatalf("round %d stream %d: %v", round, si, err)
					}
				}
			}
		})
	}
}

// TestSoakTCPLoopback reuses the multi-session soak over the TCP socket
// transport: one resident wall per geometry, every hop crossing real loopback
// sockets through the hub, two rounds of concurrent mixed-stream sessions —
// byte-verified against the serial reference like the fabric soak above.
func TestSoakTCPLoopback(t *testing.T) {
	streams := genStreams(t, []int64{3, 11})
	walls := []system.Config{
		{K: 0, M: 2, N: 2, Transport: "tcp"},
		{K: 2, M: 2, N: 2, Pooled: true, SplitWorkers: 2, Transport: "tcp"},
	}
	for wi, cfg := range walls {
		wi, cfg := wi, cfg
		t.Run(fmt.Sprintf("1-%d-(%d,%d)", cfg.K, cfg.M, cfg.N), func(t *testing.T) {
			t.Parallel()
			cfg.CollectFrames = true
			cfg.MaxSessions = len(streams)
			w, err := system.NewResidentWall(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := w.Close(); err != nil {
					t.Fatalf("wall close: %v", err)
				}
			}()
			for round := 0; round < 2; round++ {
				var wg sync.WaitGroup
				errs := make([]error, len(streams))
				for si, st := range streams {
					si, st := si, st
					wg.Add(1)
					go func() {
						defer wg.Done()
						chunk := 96<<(si%4) + 29*si + 13*wi + round + 1
						frames, err := feedChunked(w, st, fmt.Sprintf("tcp-soak-%d-%d", round, si), chunk)
						if err == nil {
							err = verifyFrames(st.ref, frames)
						}
						errs[si] = err
					}()
				}
				wg.Wait()
				for si, err := range errs {
					if err != nil {
						t.Fatalf("round %d stream %d: %v", round, si, err)
					}
				}
			}
		})
	}
}

// TestSoakTCPPeerKill is the seeded kill-the-TCP-peer property test: a wall
// on the socket transport loses one seeded node's connection (RST, not FIN)
// at a seeded point mid-stream. The property, for every seed: the pipeline
// never hangs, and the abort cause that surfaces is one of the typed link
// faults — ErrLinkLost from the broken connection or ErrStalled from the
// watchdog that backs it up — never a silent success or an untyped error.
func TestSoakTCPPeerKill(t *testing.T) {
	p := conformance.ParamsForSeed(5)
	stream, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := service.Config{K: 2, M: 2, N: 2, MaxSessions: 1}
	nn := cfg.NumNodes()
	for seed := 0; seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			ids := make([]int, nn)
			for i := range ids {
				ids[i] = i
			}
			tr, err := cluster.ListenTCP("127.0.0.1:0", cluster.TCPConfig{
				NumNodes:     nn,
				LocalNodes:   ids,
				Grid:         cluster.Grid{K: cfg.K, M: cfg.M, N: cfg.N},
				StallTimeout: 2 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			scfg := cfg
			scfg.Transport = tr
			w, err := service.New(scfg)
			if err != nil {
				tr.Abort(err)
				t.Fatal(err)
			}
			// Seeded fault plan: which node's link dies, and where in the
			// stream it dies (between 1/8 and 1/2 of the bytes fed).
			victim := (seed * 2654435761) % nn
			if victim < 0 {
				victim += nn
			}
			killAt := len(stream) * (1 + seed%4) / 8
			done := make(chan struct{})
			go func() {
				defer close(done)
				sess, err := w.Open(fmt.Sprintf("kill-%d", seed))
				if err != nil {
					return
				}
				killed := false
				for off := 0; off < len(stream); off += 1024 {
					if !killed && off >= killAt {
						tr.InjectLinkFailure(victim)
						killed = true
					}
					end := off + 1024
					if end > len(stream) {
						end = len(stream)
					}
					if err := sess.Feed(stream[off:end]); err != nil {
						break
					}
				}
				if !killed {
					tr.InjectLinkFailure(victim)
				}
				sess.Close() // error expected; the cause is checked below
				w.Close()
				tr.Shutdown()
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatalf("victim %d killAt %d: pipeline hung after link kill", victim, killAt)
			}
			cause := tr.AbortCause()
			if cause == nil {
				t.Fatalf("victim %d killAt %d: no abort after link kill", victim, killAt)
			}
			if !errors.Is(cause, cluster.ErrLinkLost) && !errors.Is(cause, cluster.ErrStalled) {
				t.Fatalf("victim %d killAt %d: abort cause %v is not a typed link fault", victim, killAt, cause)
			}
		})
	}
}

// TestAdmissionControl pins the service's bounds: Open beyond MaxSessions is
// rejected with the typed sentinel, a slot frees on session close, and a
// closed wall admits nothing.
func TestAdmissionControl(t *testing.T) {
	w, err := system.NewResidentWall(system.Config{K: 1, M: 1, N: 1, MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := w.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := w.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Open("c"); !errors.Is(err, service.ErrTooManySessions) {
		t.Fatalf("third open: got %v, want ErrTooManySessions", err)
	}
	// Closing a session (even an empty, failed one) frees its slot.
	if _, err := s1.Close(); err == nil {
		t.Fatal("closing an empty session should report the missing sequence header")
	}
	s3, err := w.Open("c")
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if _, err := s2.Close(); err == nil {
		t.Fatal("closing an empty session should report the missing sequence header")
	}
	if _, err := s3.Close(); err == nil {
		t.Fatal("closing an empty session should report the missing sequence header")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("wall close: %v", err)
	}
	if _, err := w.Open("d"); !errors.Is(err, service.ErrWallClosed) {
		t.Fatalf("open on closed wall: got %v, want ErrWallClosed", err)
	}
}
