// Package conformance is the differential-decode oracle for the parallel
// decoder: deterministic, seed-parameterised streams are decoded by the
// serial reference decoder and by a matrix of 1-(m,n) / 1-k-(m,n) parallel
// configurations, and the outputs must agree byte for byte. When they do
// not, the harness minimises the divergence to the first differing picture,
// macroblock and owning tile so the failure names the protocol component
// (splitter SPH state, MEI exchange, tile assembly) most likely at fault.
//
// The package also houses the structured corruption injector used to check
// that hostile inputs produce bounded errors — never panics — end to end.
package conformance

import (
	"fmt"

	"tiledwall/internal/encoder"
	"tiledwall/internal/video"
)

// StreamParams describes one synthetic conformance stream. Every field is
// derived deterministically from Seed by ParamsForSeed, so a failing stream
// is reproducible from its seed alone.
type StreamParams struct {
	Seed   int64
	Scene  video.SceneKind
	Width  int
	Height int
	Frames int

	GOPSize       int
	BSpacing      int
	ClosedGOP     bool
	InitialQScale int

	QScaleType     bool // nonlinear quantiser scale
	IntraVLCFormat bool // intra table B-15
	AlternateScan  bool
	FCode          int // motion vector range / halo width driver
}

func (p StreamParams) String() string {
	return fmt.Sprintf("seed=%d %s %dx%d f=%d gop=%d/%d closed=%v q=%d qst=%v b15=%v alt=%v fcode=%d",
		p.Seed, p.Scene, p.Width, p.Height, p.Frames, p.GOPSize, p.BSpacing,
		p.ClosedGOP, p.InitialQScale, p.QScaleType, p.IntraVLCFormat, p.AlternateScan, p.FCode)
}

// xorshift64 is the same tiny deterministic generator the video sources use;
// it keeps the sweep independent of math/rand's version-dependent streams.
type xorshift64 uint64

func newXorshift(seed int64) *xorshift64 {
	x := xorshift64(seed)
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	return &x
}

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// intn returns a value in [0, n).
func (x *xorshift64) intn(n int) int { return int(x.next() % uint64(n)) }

func (x *xorshift64) flag() bool { return x.next()&1 == 1 }

// ParamsForSeed expands a seed into stream parameters sweeping the coding
// dimensions the parallel protocol is sensitive to: GOP structure (SPH
// anchor/predictor state), quantiser scale type and intra VLC table (VLD
// state carried across partial-slice boundaries), alternate scan (coefficient
// ordering) and f_code (motion locality, hence MEI halo pressure).
func ParamsForSeed(seed int64) StreamParams {
	rng := newXorshift(seed)
	scenes := []video.SceneKind{video.SceneFilm, video.SceneAnimation, video.SceneFishTank, video.SceneBroadcast, video.SceneFlyby}
	gops := []struct{ n, m int }{{6, 3}, {6, 2}, {9, 3}, {4, 1}, {12, 3}}
	g := gops[rng.intn(len(gops))]
	p := StreamParams{
		Seed:   seed,
		Scene:  scenes[rng.intn(len(scenes))],
		Width:  (10 + rng.intn(4)) * 16, // 160..208
		Height: (6 + rng.intn(3)) * 16,  // 96..128
		Frames: 8 + rng.intn(6),         // 8..13: at least one full GOP + tail

		GOPSize:       g.n,
		BSpacing:      g.m,
		ClosedGOP:     rng.flag(),
		InitialQScale: 4 + rng.intn(8),

		QScaleType:     rng.flag(),
		IntraVLCFormat: rng.flag(),
		AlternateScan:  rng.flag(),
		FCode:          1 + rng.intn(3), // ±8 .. ±32 px
	}
	return p
}

// Generate encodes the stream described by p. The content source and the
// encoder are both fully deterministic, so equal params yield equal bytes.
func (p StreamParams) Generate() ([]byte, error) {
	cfg := encoder.Config{
		Width:            p.Width,
		Height:           p.Height,
		GOPSize:          p.GOPSize,
		BSpacing:         p.BSpacing,
		ClosedGOP:        p.ClosedGOP,
		InitialQScale:    p.InitialQScale,
		QScaleType:       p.QScaleType,
		IntraVLCFormat:   p.IntraVLCFormat,
		AlternateScan:    p.AlternateScan,
		FCode:            p.FCode,
		IntraDCPrecision: int(uint64(p.Seed) % 3), // 8..10 bit
	}
	src := video.NewSource(p.Scene, p.Width, p.Height, p.Seed)
	e, err := encoder.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", p, err)
	}
	for i := 0; i < p.Frames; i++ {
		if err := e.Push(src.Frame(i)); err != nil {
			return nil, fmt.Errorf("conformance: %s frame %d: %w", p, i, err)
		}
	}
	if err := e.Flush(); err != nil {
		return nil, fmt.Errorf("conformance: %s flush: %w", p, err)
	}
	return e.Bytes(), nil
}
