package metrics

import (
	"fmt"
	"time"
)

// SplitPhase identifies one stage of the second-level splitter's per-picture
// work. PhaseWork on a splitter Breakdown is the wall time of the whole
// splitting stage; SplitBreakdown resolves it into the stages that matter for
// the paper's ts term, so the continuous-bench reports show where slice
// parallelism buys its reduction.
type SplitPhase int

const (
	// SplitScan is header parsing plus the byte-aligned slice start-code
	// index (serial, cheap).
	SplitScan SplitPhase = iota
	// SplitParse is the full VLD of the slices — the parallel region, and
	// the dominant share of ts.
	SplitParse
	// SplitSort is the deterministic merge: stitching per-slice piece lists
	// in slice order and deduplicating MEIs globally.
	SplitSort
	// SplitSerialize is sub-picture wire encoding (counted by the node
	// runner, not by MBSplitter).
	SplitSerialize
	numSplitPhases
)

func (p SplitPhase) String() string {
	switch p {
	case SplitScan:
		return "Scan"
	case SplitParse:
		return "Parse"
	case SplitSort:
		return "Sort"
	case SplitSerialize:
		return "Serialize"
	}
	return fmt.Sprintf("SplitPhase(%d)", int(p))
}

// SplitPhases lists all splitter phases in display order.
func SplitPhases() []SplitPhase {
	return []SplitPhase{SplitScan, SplitParse, SplitSort, SplitSerialize}
}

// SplitBreakdown accumulates splitter-stage time. Like Breakdown, it is
// written by the owning goroutine and read after the pipeline finishes.
//
// SplitParse is the stage's critical path: the longest single worker's parse
// time per picture, which is what a splitter PC with one core per worker
// spends on the stage. ParseWall is the same region in simulation-host wall
// time; the two coincide when the host has a core per worker and diverge
// when workers timeshare — the exact situation Breakdown.Busy's modeled
// methodology exists for (see EXPERIMENTS.md).
type SplitBreakdown struct {
	Durations [numSplitPhases]time.Duration
	ParseWall time.Duration
	Pictures  int
}

// Add accrues d into phase p.
func (b *SplitBreakdown) Add(p SplitPhase, d time.Duration) { b.Durations[p] += d }

// Merge accrues another breakdown (phase durations and picture count).
func (b *SplitBreakdown) Merge(o SplitBreakdown) {
	for i := range b.Durations {
		b.Durations[i] += o.Durations[i]
	}
	b.ParseWall += o.ParseWall
	b.Pictures += o.Pictures
}

// Total returns the sum over phases.
func (b *SplitBreakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.Durations {
		t += d
	}
	return t
}

// PerPicture returns the mean time per picture in phase p, in milliseconds.
func (b *SplitBreakdown) PerPicture(p SplitPhase) float64 {
	if b.Pictures == 0 {
		return 0
	}
	return b.Durations[p].Seconds() * 1000 / float64(b.Pictures)
}

func (b *SplitBreakdown) String() string {
	s := ""
	for _, p := range SplitPhases() {
		s += fmt.Sprintf("%s=%.2fms ", p, b.PerPicture(p))
	}
	return s
}
