package mpeg2

import "fmt"

// Reconstructor turns parsed macroblocks into pixels: IDCT, motion
// compensation with half-sample interpolation, and skipped-macroblock
// reconstruction. One Reconstructor per decoding goroutine; it holds scratch
// prediction buffers to avoid per-macroblock allocation.
type Reconstructor struct {
	pic *PictureHeader

	predY          [256]uint8
	predCb, predCr [64]uint8
	aY             [256]uint8
	aCb, aCr       [64]uint8
}

// NewReconstructor returns a Reconstructor for pictures described by pic.
func NewReconstructor(pic *PictureHeader) *Reconstructor {
	return &Reconstructor{pic: pic}
}

// Reset repoints the Reconstructor at a new picture, keeping its scratch
// buffers. Lets pooled decode paths reuse one Reconstructor per goroutine
// across pictures without reallocating.
func (rc *Reconstructor) Reset(pic *PictureHeader) {
	rc.pic = pic
}

func clip255(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// blockOffsets maps block index 0..3 to the luma offset within a macroblock.
var blockOffsets = [4][2]int{{0, 0}, {8, 0}, {0, 8}, {8, 8}}

// Macroblock reconstructs mb into dst. fwd and bwd are the forward and
// backward reference windows (bwd may be nil outside B pictures). The
// macroblock position is derived from mb.Addr and mbWidth.
func (rc *Reconstructor) Macroblock(dst, fwd, bwd *PixelBuf, mb *Macroblock, mbWidth int) error {
	mbx := mb.Addr % mbWidth
	mby := mb.Addr / mbWidth
	if mb.Intra() {
		rc.intra(dst, mbx, mby, mb.Blocks, &mb.ACMask)
		return nil
	}
	return rc.inter(dst, fwd, bwd, mbx, mby, mb.Motion(), mb.CBP, mb.Blocks, &mb.ACMask)
}

// Skipped reconstructs one skipped macroblock at (mbx, mby). In P pictures a
// skipped macroblock is a zero-vector forward copy; in B pictures it repeats
// the previous macroblock's prediction (prev).
func (rc *Reconstructor) Skipped(dst, fwd, bwd *PixelBuf, mbx, mby int, prev MotionInfo) error {
	m := MotionInfo{Fwd: true}
	if rc.pic.PicType == PictureB {
		m = prev
		if !m.Fwd && !m.Bwd {
			return syntaxErrf("skipped B macroblock after intra at (%d,%d)", mbx, mby)
		}
	}
	return rc.inter(dst, fwd, bwd, mbx, mby, m, 0, nil, nil)
}

func (rc *Reconstructor) intra(dst *PixelBuf, mbx, mby int, blocks *[6][64]int32, masks *[6]uint8) {
	x, y := mbx*16, mby*16
	for i := 0; i < 4; i++ {
		blk := &blocks[i]
		IDCTFast(blk, masks[i])
		bx, by := x+blockOffsets[i][0], y+blockOffsets[i][1]
		for r := 0; r < 8; r++ {
			di := dst.lumaIndex(bx, by+r)
			dy := dst.Y[di : di+8 : di+8]
			src := blk[r*8 : r*8+8 : r*8+8]
			for c := 0; c < 8; c++ {
				dy[c] = clip255(src[c])
			}
		}
	}
	cx, cy := x/2, y/2
	for i := 4; i < 6; i++ {
		blk := &blocks[i]
		IDCTFast(blk, masks[i])
		plane := dst.Cb
		if i == 5 {
			plane = dst.Cr
		}
		for r := 0; r < 8; r++ {
			di := dst.chromaIndex(cx, cy+r)
			dp := plane[di : di+8 : di+8]
			src := blk[r*8 : r*8+8 : r*8+8]
			for c := 0; c < 8; c++ {
				dp[c] = clip255(src[c])
			}
		}
	}
}

func (rc *Reconstructor) inter(dst, fwd, bwd *PixelBuf, mbx, mby int, m MotionInfo, cbp int, blocks *[6][64]int32, masks *[6]uint8) error {
	x, y := mbx*16, mby*16
	switch {
	case m.Fwd && m.Bwd:
		if err := rc.predict(fwd, x, y, m.MVFwd, &rc.predY, &rc.predCb, &rc.predCr); err != nil {
			return err
		}
		if err := rc.predict(bwd, x, y, m.MVBwd, &rc.aY, &rc.aCb, &rc.aCr); err != nil {
			return err
		}
		avgBytes(rc.predY[:], rc.aY[:])
		avgBytes(rc.predCb[:], rc.aCb[:])
		avgBytes(rc.predCr[:], rc.aCr[:])
	case m.Fwd:
		if err := rc.predict(fwd, x, y, m.MVFwd, &rc.predY, &rc.predCb, &rc.predCr); err != nil {
			return err
		}
	case m.Bwd:
		if err := rc.predict(bwd, x, y, m.MVBwd, &rc.predY, &rc.predCb, &rc.predCr); err != nil {
			return err
		}
	default:
		return syntaxErrf("inter macroblock with no prediction at (%d,%d)", mbx, mby)
	}

	// Store prediction plus residual.
	for i := 0; i < 4; i++ {
		bx, by := x+blockOffsets[i][0], y+blockOffsets[i][1]
		coded := cbp&(1<<uint(5-i)) != 0
		var blk *[64]int32
		if coded {
			blk = &blocks[i]
			IDCTFast(blk, masks[i])
		}
		for r := 0; r < 8; r++ {
			di := dst.lumaIndex(bx, by+r)
			pi := (blockOffsets[i][1]+r)*16 + blockOffsets[i][0]
			if coded {
				res := blk[r*8 : r*8+8 : r*8+8]
				pr := rc.predY[pi : pi+8 : pi+8]
				dy := dst.Y[di : di+8 : di+8]
				for c := 0; c < 8; c++ {
					dy[c] = clip255(int32(pr[c]) + res[c])
				}
			} else {
				copy(dst.Y[di:di+8], rc.predY[pi:pi+8])
			}
		}
	}
	cx, cy := x/2, y/2
	for i := 4; i < 6; i++ {
		plane, pred := dst.Cb, &rc.predCb
		if i == 5 {
			plane, pred = dst.Cr, &rc.predCr
		}
		coded := cbp&(1<<uint(5-i)) != 0
		var blk *[64]int32
		if coded {
			blk = &blocks[i]
			IDCTFast(blk, masks[i])
		}
		for r := 0; r < 8; r++ {
			di := dst.chromaIndex(cx, cy+r)
			if coded {
				res := blk[r*8 : r*8+8 : r*8+8]
				pr := pred[r*8 : r*8+8 : r*8+8]
				dp := plane[di : di+8 : di+8]
				for c := 0; c < 8; c++ {
					dp[c] = clip255(int32(pr[c]) + res[c])
				}
			} else {
				copy(plane[di:di+8], pred[r*8:r*8+8])
			}
		}
	}
	return nil
}

// predict fills the 16×16 luma and 8×8 chroma prediction buffers from ref
// for the macroblock at luma position (x, y) with motion vector mv in
// half-sample units.
func (rc *Reconstructor) predict(ref *PixelBuf, x, y int, mv [2]int32, py *[256]uint8, pcb, pcr *[64]uint8) error {
	if ref == nil {
		return syntaxErrf("missing reference picture")
	}
	// Luma.
	sx := x + int(mv[0]>>1)
	sy := y + int(mv[1]>>1)
	hx := int(mv[0] & 1)
	hy := int(mv[1] & 1)
	if !ref.Contains(sx, sy, 16+hx, 16+hy) {
		return fmt.Errorf("%w: motion vector (%d,%d) at (%d,%d) leaves reference window [%d,%d %dx%d]",
			errSyntax, mv[0], mv[1], x, y, ref.X0, ref.Y0, ref.W, ref.H)
	}
	samplePlane(py[:], 16, 16, ref.Y, ref.W, ref.lumaIndex(sx, sy), hx, hy)

	// Chroma: vectors are halved with truncation toward zero (§7.6.3.7).
	cmvx := mv[0] / 2
	cmvy := mv[1] / 2
	csx := x/2 + int(cmvx>>1)
	csy := y/2 + int(cmvy>>1)
	chx := int(cmvx & 1)
	chy := int(cmvy & 1)
	cw := ref.W / 2
	ci := ref.chromaIndex(csx, csy)
	samplePlane(pcb[:], 8, 8, ref.Cb, cw, ci, chx, chy)
	samplePlane(pcr[:], 8, 8, ref.Cr, cw, ci, chx, chy)
	return nil
}

// mv/2 truncation toward zero for negative values is what Go's integer
// division provides, matching the spec's "/" operator.
var _ = func() bool {
	if -3/2 != -1 {
		panic("integer division semantics changed")
	}
	return true
}()
