package subpic

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"tiledwall/internal/mpeg2"
)

func randSPH(rng *rand.Rand) SPH {
	h := SPH{
		SkipBits:     uint8(rng.Intn(8)),
		FirstAddr:    int32(rng.Intn(1 << 20)),
		CodedCount:   int32(rng.Intn(1000)),
		LeadingSkip:  int32(rng.Intn(10)),
		TrailingSkip: int32(rng.Intn(10)),
		QuantCode:    uint8(rng.Intn(31) + 1),
	}
	for i := range h.DCPred {
		h.DCPred[i] = int32(rng.Intn(4096))
	}
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			for t := 0; t < 2; t++ {
				h.PMV[r][s][t] = int32(rng.Intn(257) - 128)
			}
		}
	}
	h.Prev = mpeg2.MotionInfo{
		Fwd:   rng.Intn(2) == 0,
		Bwd:   rng.Intn(2) == 0,
		MVFwd: [2]int32{int32(rng.Intn(65) - 32), int32(rng.Intn(65) - 32)},
		MVBwd: [2]int32{int32(rng.Intn(65) - 32), int32(rng.Intn(65) - 32)},
	}
	return h
}

func randSubPicture(rng *rand.Rand) *SubPicture {
	sp := &SubPicture{}
	sp.Pic = PicInfo{
		Index:       int32(rng.Intn(10000)),
		TemporalRef: int32(rng.Intn(1024)),
		PicType:     uint8(rng.Intn(3) + 1),
		Flags:       uint8(rng.Intn(8)),
		DCPrecision: uint8(rng.Intn(4)),
	}
	for s := 0; s < 2; s++ {
		for t := 0; t < 2; t++ {
			sp.Pic.FCode[s][t] = uint8(rng.Intn(9) + 1)
		}
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		payload := make([]byte, rng.Intn(200))
		rng.Read(payload)
		sp.Pieces = append(sp.Pieces, Piece{SPH: randSPH(rng), Payload: payload})
	}
	for i, n := 0, rng.Intn(8); i < n; i++ {
		sp.MEI = append(sp.MEI, MEIInstr{
			Kind: MEIKind(rng.Intn(2)),
			Ref:  RefSel(rng.Intn(2)),
			MBX:  uint16(rng.Intn(4096)),
			MBY:  uint16(rng.Intn(4096)),
			Peer: uint16(rng.Intn(64)),
		})
	}
	return sp
}

func equalSP(a, b *SubPicture) bool {
	if a.Final != b.Final || a.Pic != b.Pic || len(a.Pieces) != len(b.Pieces) || len(a.MEI) != len(b.MEI) {
		return false
	}
	for i := range a.Pieces {
		if a.Pieces[i].SPH != b.Pieces[i].SPH || !bytes.Equal(a.Pieces[i].Payload, b.Pieces[i].Payload) {
			return false
		}
	}
	for i := range a.MEI {
		if a.MEI[i] != b.MEI[i] {
			return false
		}
	}
	return true
}

func TestSubPictureRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := randSubPicture(rng)
		got, err := Unmarshal(sp.Marshal())
		if err != nil {
			return false
		}
		return equalSP(sp, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFinalMarker(t *testing.T) {
	sp := &SubPicture{Final: true}
	got, err := Unmarshal(sp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Final {
		t.Error("final flag lost")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sp := randSubPicture(rng)
	sp.Pieces = append(sp.Pieces, Piece{SPH: randSPH(rng), Payload: []byte{1, 2, 3}})
	full := sp.Marshal()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := Unmarshal(full[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
}

func TestPicInfoHeaderRoundTrip(t *testing.T) {
	ph := &mpeg2.PictureHeader{
		TemporalRef:      77,
		PicType:          mpeg2.PictureB,
		FCode:            [2][2]int{{3, 2}, {4, 1}},
		IntraDCPrecision: 2,
		PictureStructure: 3,
		FramePredDCT:     true,
		QScaleType:       true,
		AlternateScan:    true,
		ProgressiveFrame: true,
	}
	var pi PicInfo
	pi.FromHeader(42, ph)
	got := pi.Header()
	if got.TemporalRef != 77 || got.PicType != mpeg2.PictureB || got.FCode != ph.FCode {
		t.Errorf("picture fields lost: %+v", got)
	}
	if !got.QScaleType || got.IntraVLCFormat || !got.AlternateScan || got.IntraDCPrecision != 2 {
		t.Errorf("flags lost: %+v", got)
	}
	if pi.Index != 42 {
		t.Errorf("index = %d", pi.Index)
	}
}

func TestSPHState(t *testing.T) {
	var st mpeg2.PredState
	st.DCPred = [3]int32{1, 2, 3}
	st.PMV[1][0][1] = -17
	st.QuantCode = 13
	var h SPH
	h.SetState(st)
	if h.State() != st {
		t.Error("state round-trip broken")
	}
}

func TestBlockBundleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(5)
		b := &BlockBundle{PicIndex: int32(rng.Intn(100))}
		for i := 0; i < n; i++ {
			b.Cells = append(b.Cells, BlockCell{
				Ref: RefSel(rng.Intn(2)),
				MBX: uint16(rng.Intn(256)),
				MBY: uint16(rng.Intn(256)),
			})
		}
		b.Pixels = make([]byte, n*mpeg2.MacroblockBytes)
		rng.Read(b.Pixels)
		got, err := UnmarshalBlocks(b.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got.PicIndex != b.PicIndex || len(got.Cells) != n || !bytes.Equal(got.Pixels, b.Pixels) {
			t.Fatal("bundle round-trip broken")
		}
		for i := range got.Cells {
			if got.Cells[i] != b.Cells[i] {
				t.Fatal("cell mismatch")
			}
		}
	}
}

func TestBlockBundleRejectsBadPixelLength(t *testing.T) {
	b := &BlockBundle{Cells: []BlockCell{{MBX: 1}}, Pixels: make([]byte, 10)}
	if _, err := UnmarshalBlocks(b.Marshal()); err == nil {
		t.Error("bad pixel payload accepted")
	}
}
