package mpegps

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMuxDemuxRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 100, maxPESPayload, maxPESPayload + 1, 300_000} {
		es := make([]byte, size)
		rng.Read(es)
		ps := Mux(es, MuxOptions{})
		if !IsProgramStream(ps) {
			t.Fatalf("size %d: mux output not detected as PS", size)
		}
		got, err := Demux(ps)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, es) {
			t.Fatalf("size %d: demux does not round-trip (%d bytes out)", size, len(got))
		}
	}
}

func TestMuxDemuxQuick(t *testing.T) {
	f := func(es []byte, rate uint32) bool {
		ps := Mux(es, MuxOptions{MuxRateBps: int(rate%50_000_000) + 1_000_000})
		got, err := Demux(ps)
		return err == nil && bytes.Equal(got, es)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPTSPresent(t *testing.T) {
	es := make([]byte, 10*maxPESPayload)
	ps := Mux(es, MuxOptions{FrameRate: 30})
	pts, ok := ParsePTS(ps)
	if !ok {
		t.Fatal("no PTS found")
	}
	if pts != 3000 { // one frame at 30 fps in 90 kHz units
		t.Errorf("first PTS = %d, want 3000", pts)
	}
}

func TestDemuxRejectsGarbage(t *testing.T) {
	if _, err := Demux([]byte{1, 2, 3, 4}); err == nil {
		t.Error("garbage accepted")
	}
	// A valid pack header followed by junk must report lost sync.
	ps := Mux([]byte("hello"), MuxOptions{})
	ps = ps[:len(ps)-4] // drop end code
	ps = append(ps, 0xDE, 0xAD, 0xBE, 0xEF)
	if _, err := Demux(ps); err == nil {
		t.Error("lost sync not detected")
	}
}

func TestDemuxTruncation(t *testing.T) {
	ps := Mux(make([]byte, 100_000), MuxOptions{})
	for cut := 4; cut < len(ps); cut += 997 {
		// Either a clean error or a prefix of the ES — never a panic.
		got, err := Demux(ps[:cut])
		if err == nil && len(got) > 100_000 {
			t.Fatalf("cut %d: demux invented data", cut)
		}
	}
}

func TestDemuxSkipsForeignStreams(t *testing.T) {
	es := []byte("video payload")
	ps := Mux(es, MuxOptions{})
	// Splice in an audio PES (stream 0xC0) before the end code.
	audio := []byte{0x00, 0x00, 0x01, 0xC0, 0x00, 0x08, 0x80, 0x00, 0x00, 'a', 'u', 'd', 'i', 'o'}
	spliced := append(append([]byte{}, ps[:len(ps)-4]...), audio...)
	spliced = append(spliced, ps[len(ps)-4:]...)
	got, err := Demux(spliced)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, es) {
		t.Errorf("foreign stream leaked into video ES: %q", got)
	}
}

func TestIsProgramStream(t *testing.T) {
	if IsProgramStream([]byte{0, 0, 1, 0xB3}) {
		t.Error("elementary stream detected as PS")
	}
	if !IsProgramStream(Mux(nil, MuxOptions{})) {
		t.Error("PS not detected")
	}
}
