package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCP transport: the cluster.Transport seam implemented over real sockets,
// so the root, splitters and decoders can run as separate OS processes or
// hosts (DESIGN.md §12).
//
// Topology is a star: the root process listens (ListenTCP) and runs a hub
// that routes frames between links; every node — including the nodes local
// to the hub process — dials the hub and handshakes. One uniform path means
// the conformance matrix exercises the full wire format even in a single
// process, and a port's traffic crosses exactly two links regardless of
// where its peer lives.
//
// The invariants the pipeline protocols rely on survive by construction:
//
//   - per-sender FIFO: a sender's frames traverse one ordered byte stream to
//     the hub, the hub routes them in arrival order into one ordered
//     per-destination queue, and the destination dispatches in stream order;
//   - no transport-level deadlock: receive queues are unbounded (the credit
//     protocol, not the transport, bounds memory), so a full queue can never
//     create a cross-kind dependency the protocols don't know about;
//   - single abort domain: any link failure aborts the local transport,
//     which broadcasts an abort frame carrying the cause class, so every
//     process observes the same errors.Is-matchable cause.

// TCPConfig configures one process's share of a TCP-transported wall.
type TCPConfig struct {
	// NumNodes is the wall's total port count (1 root + k + m*n); every
	// process of the wall must agree (enforced by the handshake).
	NumNodes int
	// LocalNodes lists the node ids this process drives. The hub process may
	// include any subset (typically node 0); dialing processes must name at
	// least one.
	LocalNodes []int
	// Grid is the wall shape carried in the handshake so mismatched
	// processes fail fast instead of deadlocking mid-stream.
	Grid Grid
	// HandshakeTimeout bounds each link's hello/accept exchange (default 10s).
	HandshakeTimeout time.Duration
	// DialTimeout bounds connection establishment. Dialing retries until the
	// deadline, so the wall's processes can be started in any order
	// (default 15s).
	DialTimeout time.Duration
	// StallTimeout arms the same watchdog as the in-process fabric: if no
	// local traffic moves for this long, the transport aborts with
	// ErrStalled. Each process watches independently, so a dead peer
	// eventually terminates every survivor.
	StallTimeout time.Duration

	// DialRetryBase and DialRetryMax shape the capped exponential backoff
	// between dial attempts (initial connect and recoverable redial): the
	// sleep doubles from Base up to Max, with ±50% jitter so a wall's worth
	// of workers does not retry in lockstep (defaults 25ms and 1s).
	DialRetryBase time.Duration
	DialRetryMax  time.Duration

	// Recoverable keeps the transport alive through individual link failures
	// instead of aborting the wall. A port whose connection dies redials the
	// hub with the capped backoff above (bounded by RedialTimeout) and
	// resumes; the hub re-admits the reconnecting node — replacing its dead
	// inbound link and resuming its queued outbound window on the new
	// connection — instead of rejecting it as a duplicate. Frames in flight
	// on the dead connection may be lost or (when a broken batch is re-sent
	// whole) duplicated; repairing that is the job of the recovery layer
	// above (deadline concealment, replay windows, duplicate-tolerant
	// receivers), so Recoverable is meant for recovery-enabled walls.
	Recoverable bool
	// RedialTimeout bounds one port's reconnection window in Recoverable
	// mode; past it the transport aborts with ErrLinkLost (default
	// DialTimeout).
	RedialTimeout time.Duration
	// OnLinkState, when set, observes recoverable link transitions:
	// up=false when a local port loses its connection, up=true when its
	// redial completes. Called from transport goroutines — must not block.
	OnLinkState func(node int, up bool)
}

func (c *TCPConfig) defaults() {
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 15 * time.Second
	}
	if c.DialRetryBase <= 0 {
		c.DialRetryBase = 25 * time.Millisecond
	}
	if c.DialRetryMax <= 0 {
		c.DialRetryMax = time.Second
	}
	if c.RedialTimeout <= 0 {
		c.RedialTimeout = c.DialTimeout
	}
}

// TCPTransport implements Transport over TCP links through a hub.
type TCPTransport struct {
	cfg   TCPConfig
	addr  string     // hub address every local port dialed (redial target)
	ports []*tcpPort // by node id; nil for non-local nodes
	hub   *hub       // non-nil on the listening process

	stats []LinkStats
	pair  []int64

	sessMu    sync.Mutex
	sessBytes map[int]int64

	done     chan struct{}
	abortErr error
	abort1   sync.Once

	activity int64
	stop     chan struct{}
	stop1    sync.Once

	closing atomic.Bool
	shut1   sync.Once
}

var _ Transport = (*TCPTransport)(nil)

// ListenTCP starts the hub process's transport: a listener at addr (use
// ":0"/"127.0.0.1:0" for an ephemeral port, then Addr), plus a dialed,
// handshaken port for every node in cfg.LocalNodes.
func ListenTCP(addr string, cfg TCPConfig) (*TCPTransport, error) {
	cfg.defaults()
	if err := cfg.check(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	t := newTCPTransport(cfg)
	t.hub = newHub(t, ln)
	go t.hub.acceptLoop()
	if err := t.connectLocal(ln.Addr().String()); err != nil {
		t.Abort(err)
		return nil, err
	}
	t.armWatchdog()
	return t, nil
}

// DialTCP starts a worker process's transport: one dialed, handshaken link
// per node in cfg.LocalNodes, connected to a ListenTCP hub at addr.
func DialTCP(addr string, cfg TCPConfig) (*TCPTransport, error) {
	cfg.defaults()
	if err := cfg.check(); err != nil {
		return nil, err
	}
	if len(cfg.LocalNodes) == 0 {
		return nil, fmt.Errorf("cluster: DialTCP needs at least one local node")
	}
	t := newTCPTransport(cfg)
	if err := t.connectLocal(addr); err != nil {
		t.Abort(err)
		return nil, err
	}
	t.armWatchdog()
	return t, nil
}

func (c TCPConfig) check() error {
	if c.NumNodes < 1 || c.NumNodes > 0xffff {
		return fmt.Errorf("cluster: TCP transport NumNodes %d out of range", c.NumNodes)
	}
	seen := map[int]bool{}
	for _, id := range c.LocalNodes {
		if id < 0 || id >= c.NumNodes {
			return fmt.Errorf("cluster: local node %d out of range [0,%d)", id, c.NumNodes)
		}
		if seen[id] {
			return fmt.Errorf("cluster: duplicate local node %d", id)
		}
		seen[id] = true
	}
	return nil
}

func newTCPTransport(cfg TCPConfig) *TCPTransport {
	return &TCPTransport{
		cfg:   cfg,
		ports: make([]*tcpPort, cfg.NumNodes),
		stats: make([]LinkStats, cfg.NumNodes),
		pair:  make([]int64, cfg.NumNodes*cfg.NumNodes),
		done:  make(chan struct{}),
		stop:  make(chan struct{}),
	}
}

func (t *TCPTransport) connectLocal(addr string) error {
	t.addr = addr
	for _, id := range t.cfg.LocalNodes {
		p, err := t.dialPort(addr, id)
		if err != nil {
			return err
		}
		t.ports[id] = p
	}
	// Start the I/O loops only once every local port is handshaken, so a
	// construction failure never leaves half-wired readers behind.
	for _, id := range t.cfg.LocalNodes {
		p := t.ports[id]
		go p.reader()
		go p.writer()
	}
	return nil
}

func (t *TCPTransport) armWatchdog() {
	if t.cfg.StallTimeout > 0 {
		go t.watchdog(t.cfg.StallTimeout)
	}
}

// watchdog mirrors Fabric.watchdog: two consecutive quiet half-timeout
// checks abort the transport with ErrStalled.
func (t *TCPTransport) watchdog(timeout time.Duration) {
	tick := time.NewTicker(timeout / 2)
	defer tick.Stop()
	last := atomic.LoadInt64(&t.activity)
	quiet := 0
	for {
		select {
		case <-tick.C:
			now := atomic.LoadInt64(&t.activity)
			if now == last {
				quiet++
				if quiet >= 2 {
					t.Abort(ErrStalled)
					return
				}
			} else {
				quiet = 0
				last = now
			}
		case <-t.done:
			return
		case <-t.stop:
			return
		}
	}
}

// Addr returns the hub's listen address ("" on a dialing transport); use it
// to recover the concrete port after ListenTCP(":0", ...).
func (t *TCPTransport) Addr() string {
	if t.hub != nil {
		return t.hub.ln.Addr().String()
	}
	return ""
}

// NumNodes returns the wall's total port count.
func (t *TCPTransport) NumNodes() int { return t.cfg.NumNodes }

// Port returns the local port of node id; it panics for nodes that live in
// another process, which would be a wiring bug.
func (t *TCPTransport) Port(id int) Port {
	if id < 0 || id >= len(t.ports) || t.ports[id] == nil {
		panic(fmt.Sprintf("cluster: node %d is not local to this TCP transport", id))
	}
	return t.ports[id]
}

// Stats snapshots per-node traffic counters. Each process accounts every
// message exactly once: at send when the sender is local, at receive
// otherwise, so a single-process wall matches the in-process fabric counter
// for counter and a multi-process wall reports the traffic this process
// participated in.
func (t *TCPTransport) Stats() []LinkStats {
	out := make([]LinkStats, len(t.stats))
	for i := range t.stats {
		out[i] = LinkStats{
			BytesSent: atomic.LoadInt64(&t.stats[i].BytesSent),
			BytesRecv: atomic.LoadInt64(&t.stats[i].BytesRecv),
			MsgsSent:  atomic.LoadInt64(&t.stats[i].MsgsSent),
			MsgsRecv:  atomic.LoadInt64(&t.stats[i].MsgsRecv),
		}
	}
	return out
}

// PairBytes returns bytes sent from node a to node b, as seen by this
// process.
func (t *TCPTransport) PairBytes(a, b int) int64 {
	return atomic.LoadInt64(&t.pair[a*t.cfg.NumNodes+b])
}

func (t *TCPTransport) addSessionBytes(session int, n int64) {
	t.sessMu.Lock()
	if t.sessBytes == nil {
		t.sessBytes = map[int]int64{}
	}
	t.sessBytes[session] += n
	t.sessMu.Unlock()
}

// SessionBytes returns wire bytes accounted to one resident session by this
// process.
func (t *TCPTransport) SessionBytes(session int) int64 {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	return t.sessBytes[session]
}

// Done is closed when the transport aborts.
func (t *TCPTransport) Done() <-chan struct{} { return t.done }

// Abort records the first cause, unblocks every pending operation, and
// broadcasts an abort frame so remote processes observe the same cause.
func (t *TCPTransport) Abort(cause error) {
	t.abort1.Do(func() {
		t.abortErr = cause
		close(t.done)
		go t.abortTeardown(cause)
	})
}

// AbortCause returns the error passed to Abort, if any.
func (t *TCPTransport) AbortCause() error {
	select {
	case <-t.done:
		return t.abortErr
	default:
		return nil
	}
}

func (t *TCPTransport) aborted() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// abortTeardown pushes an abort frame down every link, gives writers a
// bounded window to flush it, then force-closes every connection.
func (t *TCPTransport) abortTeardown(cause error) {
	t.stop1.Do(func() { close(t.stop) })
	frame := AppendAbortFrame(nil, cause)
	for _, p := range t.ports {
		if p == nil {
			continue
		}
		p.wq.put(outItem{raw: frame})
		p.wq.close()
	}
	if t.hub != nil {
		t.hub.abort(frame)
	}
	deadline := time.Now().Add(time.Second)
	conns := t.allConns()
	for _, c := range conns {
		c.SetWriteDeadline(deadline)
	}
	for _, p := range t.ports {
		if p != nil {
			<-p.writerDone
		}
	}
	if t.hub != nil {
		t.hub.waitWriters()
	}
	for _, c := range conns {
		c.Close()
	}
	t.closePumps()
}

func (t *TCPTransport) allConns() []*net.TCPConn {
	var conns []*net.TCPConn
	for _, p := range t.ports {
		if p != nil {
			if c := p.currentConn(); c != nil {
				conns = append(conns, c)
			}
		}
	}
	if t.hub != nil {
		conns = append(conns, t.hub.conns()...)
	}
	return conns
}

func (t *TCPTransport) closePumps() {
	for _, p := range t.ports {
		if p == nil {
			continue
		}
		for k := range p.pumps {
			p.pumps[k].close()
		}
	}
}

// Shutdown tears a cleanly-drained transport down: flush and half-close
// every local write side, wait for the hub to route what those links
// carried, flush and half-close the hub's outbound sides, stop accepting.
// Half-closes (FIN, not RST) let the peer consume everything in flight —
// remote processes see a quiet EOF, never an abort. Safe to call multiple
// times; after an abort it is a no-op because the abort teardown owns the
// connections.
func (t *TCPTransport) Shutdown() {
	t.stop1.Do(func() { close(t.stop) })
	t.shut1.Do(func() {
		if t.aborted() {
			return
		}
		t.closing.Store(true)
		for _, p := range t.ports {
			if p != nil {
				p.wq.close()
			}
		}
		for _, p := range t.ports {
			if p != nil {
				<-p.writerDone
			}
		}
		if t.hub != nil {
			t.hub.shutdown()
		}
		t.closePumps()
	})
}

// InjectLinkFailure hard-kills node's connection (RST via linger 0),
// simulating a peer crash for fault-injection tests. On a Recoverable
// transport the victim's port notices, redials the hub and resumes — the
// recoverable-mode soak's link-loss axis.
func (t *TCPTransport) InjectLinkFailure(node int) {
	if node >= 0 && node < len(t.ports) && t.ports[node] != nil {
		if c := t.ports[node].currentConn(); c != nil {
			c.SetLinger(0)
			c.Close()
		}
		return
	}
	if t.hub != nil {
		t.hub.killLink(node)
	}
}

// linkError classifies a link-level I/O failure: quiet during an orderly
// close or after an abort, otherwise a transport-wide ErrLinkLost abort.
func (t *TCPTransport) linkError(what string, node int, err error) {
	if t.closing.Load() || t.aborted() {
		return
	}
	t.Abort(fmt.Errorf("%w: node %d %s: %v", ErrLinkLost, node, what, err))
}

// ---------------------------------------------------------------------------
// Ports

// tcpPort is one node's endpoint: a dialed link to the hub, a batching
// writer, and a reader dispatching inbound messages into per-kind pumps.
// conn and br are guarded by mu: in Recoverable mode either I/O goroutine
// may replace them by redialing after a link failure.
type tcpPort struct {
	id int
	t  *TCPTransport

	mu   sync.Mutex
	conn *net.TCPConn
	br   *bufio.Reader

	wq         *outQueue
	writerDone chan struct{}
	pumps      [numKinds]*pump
}

var _ Port = (*tcpPort)(nil)

func (t *TCPTransport) dialPort(addr string, id int) (*tcpPort, error) {
	conn, err := dialRetry(addr, t.cfg.DialTimeout, t.cfg.DialRetryBase, t.cfg.DialRetryMax)
	if err != nil {
		return nil, err
	}
	br, err := t.handshake(conn, id)
	if err != nil {
		return nil, err
	}
	p := &tcpPort{
		id:         id,
		t:          t,
		conn:       conn,
		br:         br,
		wq:         newOutQueue(),
		writerDone: make(chan struct{}),
	}
	for k := range p.pumps {
		p.pumps[k] = newPump(t.done)
	}
	return p, nil
}

// handshake runs the hello/accept exchange for node id on a fresh
// connection; on failure the connection is closed.
func (t *TCPTransport) handshake(conn *net.TCPConn, id int) (*bufio.Reader, error) {
	conn.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	hello := AppendHelloFrame(nil, Hello{
		Version:  WireVersion,
		Node:     id,
		NumNodes: t.cfg.NumNodes,
		Grid:     t.cfg.Grid,
	})
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: node %d hello: %v", ErrHandshake, id, err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	fr, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: node %d: %v", ErrHandshake, id, err)
	}
	switch fr.Type {
	case frameAccept:
		if fr.Accept.Version != WireVersion || fr.Accept.NumNodes != t.cfg.NumNodes {
			conn.Close()
			return nil, fmt.Errorf("%w: node %d: hub accepted version %d / %d nodes, want %d / %d",
				ErrHandshake, id, fr.Accept.Version, fr.Accept.NumNodes, WireVersion, t.cfg.NumNodes)
		}
	case frameAbort:
		conn.Close()
		return nil, fr.Abort
	default:
		conn.Close()
		return nil, fmt.Errorf("%w: node %d: unexpected frame %#x instead of accept", ErrHandshake, id, fr.Type)
	}
	conn.SetDeadline(time.Time{})
	return br, nil
}

// dialRetry redials until the deadline so the wall's processes can start in
// any order (a decoder may come up before the root is listening), backing
// off exponentially with jitter between attempts.
func dialRetry(addr string, timeout, base, max time.Duration) (*net.TCPConn, error) {
	deadline := time.Now().Add(timeout)
	for attempt := 0; ; attempt++ {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return c.(*net.TCPConn), nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: dial %s: %v", ErrHandshake, addr, err)
		}
		backoffSleep(attempt, base, max)
	}
}

// backoffSleep sleeps the attempt-th capped exponential backoff step with
// ±50% jitter, so a wall's worth of redialing processes spreads out instead
// of retrying in lockstep.
func backoffSleep(attempt int, base, max time.Duration) {
	d := max
	if attempt < 30 {
		if step := base << uint(attempt); step < max {
			d = step
		}
	}
	// Jitter to 50–150% of the nominal step.
	d = d/2 + time.Duration(rand.Int63n(int64(d)+1))
	time.Sleep(d)
}

// currentConn returns the port's live connection (nil after a failed
// recoverable redial gave up).
func (p *tcpPort) currentConn() *net.TCPConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn
}

// reconnect re-establishes the port's link after old died (Recoverable
// mode). The first caller owns the redial; a concurrent caller blocks on the
// mutex and inherits the fresh connection. Returns (nil, nil) when the
// transport is closing, aborted, or the redial window expired (which aborts
// with ErrLinkLost).
func (p *tcpPort) reconnect(old *net.TCPConn) (*net.TCPConn, *bufio.Reader) {
	t := p.t
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != old {
		return p.conn, p.br // the other I/O goroutine already redialed
	}
	old.Close()
	p.conn, p.br = nil, nil
	if t.cfg.OnLinkState != nil {
		t.cfg.OnLinkState(p.id, false)
	}
	deadline := time.Now().Add(t.cfg.RedialTimeout)
	for attempt := 0; ; attempt++ {
		if t.closing.Load() || t.aborted() {
			return nil, nil
		}
		conn, err := net.DialTimeout("tcp", t.addr, time.Second)
		if err == nil {
			br, herr := t.handshake(conn.(*net.TCPConn), p.id)
			if herr != nil {
				// The hub answered and refused: a real wiring error, not a
				// transient outage worth retrying through.
				t.linkError("redial handshake", p.id, herr)
				return nil, nil
			}
			p.conn, p.br = conn.(*net.TCPConn), br
			atomic.AddInt64(&t.activity, 1)
			if t.cfg.OnLinkState != nil {
				t.cfg.OnLinkState(p.id, true)
			}
			return p.conn, p.br
		}
		if time.Now().After(deadline) {
			t.linkError("redial", p.id, err)
			return nil, nil
		}
		atomic.AddInt64(&t.activity, 1) // redialing counts as liveness
		backoffSleep(attempt, t.cfg.DialRetryBase, t.cfg.DialRetryMax)
	}
}

func (p *tcpPort) ID() int { return p.id }

// Send frames the message onto this port's link. The write itself happens on
// the port's writer goroutine, which coalesces whatever is queued into one
// syscall — Send never blocks on the network. Accounting matches the
// in-process fabric byte for byte (wireBytes: payload + 16-byte header
// equivalent).
func (p *tcpPort) Send(to int, msg *Message) {
	t := p.t
	msg.From = p.id
	msg.To = to
	if t.aborted() {
		return
	}
	atomic.AddInt64(&t.activity, 1)
	bytes := msg.wireBytes()
	atomic.AddInt64(&t.stats[p.id].BytesSent, bytes)
	atomic.AddInt64(&t.stats[p.id].MsgsSent, 1)
	atomic.AddInt64(&t.stats[to].BytesRecv, bytes)
	atomic.AddInt64(&t.stats[to].MsgsRecv, 1)
	atomic.AddInt64(&t.pair[p.id*t.cfg.NumNodes+to], bytes)
	if msg.Session != 0 {
		t.addSessionBytes(msg.Session, bytes)
	}
	p.wq.put(outItem{msg: msg})
}

// Recv blocks until a message of the given kind arrives; nil after abort.
func (p *tcpPort) Recv(kind MsgKind) *Message {
	select {
	case m := <-p.pumps[kind].ch:
		atomic.AddInt64(&p.t.activity, 1)
		return m
	case <-p.t.done:
		return nil
	}
}

// TryRecv returns a dispatched message of the given kind, if any.
func (p *tcpPort) TryRecv(kind MsgKind) (*Message, bool) {
	select {
	case m := <-p.pumps[kind].ch:
		return m, true
	default:
		return nil, false
	}
}

// RecvTimeout waits up to d for a message of the given kind; see Net.
func (p *tcpPort) RecvTimeout(kind MsgKind, d time.Duration) (*Message, bool) {
	if m, ok := p.TryRecv(kind); ok {
		atomic.AddInt64(&p.t.activity, 1)
		return m, false
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case m := <-p.pumps[kind].ch:
		atomic.AddInt64(&p.t.activity, 1)
		return m, false
	case <-timer.C:
		return nil, true
	case <-p.t.done:
		return nil, false
	}
}

// Queue exposes the dispatch channel for one kind; combine with Done.
func (p *tcpPort) Queue(kind MsgKind) <-chan *Message { return p.pumps[kind].ch }

// Done is closed when the transport aborts.
func (p *tcpPort) Done() <-chan struct{} { return p.t.done }

// writer drains the outbound queue, encoding every pending frame into one
// buffer and writing it with a single syscall — the batching that keeps many
// small credit/ack messages from costing a syscall each. The flush policy is
// write-on-idle: a batch is cut exactly when the previous write finished and
// the queue has something, so an idle link flushes immediately and a busy
// link coalesces automatically.
func (p *tcpPort) writer() {
	defer close(p.writerDone)
	var batch []outItem
	var buf []byte
	for {
		var done bool
		batch, done = p.wq.drain(batch[:0])
		buf = buf[:0]
		for _, it := range batch {
			if it.raw != nil {
				buf = append(buf, it.raw...)
				if it.pooled {
					PutSlab(it.raw)
				}
				continue
			}
			var err error
			if buf, err = AppendMessageFrame(buf, it.msg); err != nil {
				p.t.Abort(err)
				return
			}
		}
		if len(buf) > 0 {
			if err := p.write(buf); err != nil {
				p.t.linkError("write", p.id, err)
				p.wq.closeDiscard()
				return
			}
		}
		if done {
			if c := p.currentConn(); c != nil {
				c.CloseWrite()
			}
			return
		}
		// A batch can be arbitrarily large (a burst of sub-pictures); don't
		// pin its buffer forever.
		if cap(buf) > 4<<20 {
			buf = nil
		}
	}
}

// write puts one encoded batch on the wire. In Recoverable mode a failed
// write redials and re-sends the whole batch on the new connection: the hub
// discards any partial frame the dead connection delivered (its stream
// breaks mid-frame), so the worst case is a duplicated leading frame, which
// the layers above absorb (acks are idempotent, data receivers deduplicate).
func (p *tcpPort) write(buf []byte) error {
	for {
		conn := p.currentConn()
		if conn == nil {
			return fmt.Errorf("link down")
		}
		_, err := conn.Write(buf)
		if err == nil {
			return nil
		}
		t := p.t
		if !t.cfg.Recoverable || t.closing.Load() || t.aborted() {
			return err
		}
		if nc, _ := p.reconnect(conn); nc == nil {
			return err
		}
	}
}

// reader decodes inbound frames and dispatches messages into the per-kind
// pumps. Message payloads were read into slab-pool slices by readFrame, so
// the consumer's PutSlab keeps the receive path zero-alloc in steady state.
func (p *tcpPort) reader() {
	t := p.t
	for {
		p.mu.Lock()
		conn, br := p.conn, p.br
		p.mu.Unlock()
		if conn == nil {
			return // recoverable redial gave up; the abort is already raised
		}
		fr, err := readFrame(br)
		if err != nil {
			if err == io.EOF {
				conn.Close() // orderly close from the hub side
				return
			}
			if t.cfg.Recoverable && !t.closing.Load() && !t.aborted() {
				if nc, _ := p.reconnect(conn); nc != nil {
					continue
				}
			}
			p.t.linkError("read", p.id, err)
			return
		}
		switch fr.Type {
		case frameMessage:
			m := fr.Msg
			if m.To != p.id || m.From < 0 || m.From >= t.cfg.NumNodes {
				t.Abort(fmt.Errorf("%w: misrouted frame %d->%d at port %d", ErrFrameCorrupt, m.From, m.To, p.id))
				return
			}
			atomic.AddInt64(&t.activity, 1)
			if t.ports[m.From] == nil {
				// Remote sender: this process's only sight of the message,
				// so account it here (local senders were accounted in Send).
				bytes := m.wireBytes()
				atomic.AddInt64(&t.stats[m.From].BytesSent, bytes)
				atomic.AddInt64(&t.stats[m.From].MsgsSent, 1)
				atomic.AddInt64(&t.stats[p.id].BytesRecv, bytes)
				atomic.AddInt64(&t.stats[p.id].MsgsRecv, 1)
				atomic.AddInt64(&t.pair[m.From*t.cfg.NumNodes+p.id], bytes)
				if m.Session != 0 {
					t.addSessionBytes(m.Session, bytes)
				}
			}
			p.pumps[m.Kind].put(m)
		case frameAbort:
			t.Abort(fr.Abort)
			return
		default:
			t.Abort(fmt.Errorf("%w: unexpected frame %#x after handshake at port %d", ErrHandshake, fr.Type, p.id))
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Hub

// hub is the root-process router: one inbound reader per link moving raw
// frames into per-destination queues, one batching writer per link draining
// them. Frames are routed by the fixed-offset destination field without
// decoding, into slab-pool buffers released after the forwarding write.
type hub struct {
	t  *TCPTransport
	ln net.Listener

	mu    sync.Mutex
	links map[int]*hubLink
	dests []*hubDest // by node id
}

type hubLink struct {
	node       int
	conn       *net.TCPConn
	readerDone chan struct{}
}

// hubDest is one node's outbound side at the hub. conn and writerDone are
// guarded by mu; cond signals a (re)attach so a recoverable-mode writer
// parked on a dead link resumes when the node redials.
type hubDest struct {
	q          *outQueue
	mu         sync.Mutex
	cond       sync.Cond
	conn       *net.TCPConn // set when the destination's link attaches
	writerDone chan struct{}
}

func newHub(t *TCPTransport, ln net.Listener) *hub {
	h := &hub{t: t, ln: ln, links: map[int]*hubLink{}, dests: make([]*hubDest, t.cfg.NumNodes)}
	for i := range h.dests {
		h.dests[i] = &hubDest{q: newOutQueue()}
		h.dests[i].cond.L = &h.dests[i].mu
	}
	return h
}

func (d *hubDest) current() *net.TCPConn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.conn
}

func (h *hub) acceptLoop() {
	for {
		c, err := h.ln.Accept()
		if err != nil {
			return // listener closed by shutdown/abort
		}
		go h.serve(c.(*net.TCPConn))
	}
}

// serve handshakes one inbound connection. Rejections (bad magic, version or
// geometry mismatch, duplicate or out-of-range node id) answer with an abort
// frame and close that connection only — a stray dialer must not kill the
// wall.
func (h *hub) serve(c *net.TCPConn) {
	c.SetDeadline(time.Now().Add(h.t.cfg.HandshakeTimeout))
	reject := func(cause error) {
		c.Write(AppendAbortFrame(nil, cause))
		c.Close()
	}
	br := bufio.NewReaderSize(c, 64<<10)
	fr, err := readFrame(br)
	if err != nil {
		reject(fmt.Errorf("%w: %v", ErrHandshake, err))
		return
	}
	if fr.Type != frameHello {
		reject(fmt.Errorf("%w: frame %#x instead of hello", ErrHandshake, fr.Type))
		return
	}
	hl := fr.Hello
	switch {
	case hl.Version != WireVersion:
		reject(fmt.Errorf("%w: peer speaks wire version %d, hub wants %d", ErrHandshake, hl.Version, WireVersion))
		return
	case hl.NumNodes != h.t.cfg.NumNodes || hl.Grid != h.t.cfg.Grid:
		reject(fmt.Errorf("%w: peer wall %d nodes %+v, hub wall %d nodes %+v",
			ErrHandshake, hl.NumNodes, hl.Grid, h.t.cfg.NumNodes, h.t.cfg.Grid))
		return
	case hl.Node < 0 || hl.Node >= h.t.cfg.NumNodes:
		reject(fmt.Errorf("%w: node id %d out of range", ErrHandshake, hl.Node))
		return
	}
	l := &hubLink{node: hl.Node, conn: c, readerDone: make(chan struct{})}
	h.mu.Lock()
	if old := h.links[hl.Node]; old != nil {
		if !h.t.cfg.Recoverable {
			h.mu.Unlock()
			reject(fmt.Errorf("%w: node %d already connected", ErrHandshake, hl.Node))
			return
		}
		// Takeover: the node is redialing after a link loss its old
		// connection hasn't surfaced here yet. Kill the stale connection (its
		// reader detaches quietly in recoverable mode) and re-admit the node
		// on the fresh one.
		old.conn.Close()
	}
	h.links[hl.Node] = l
	h.mu.Unlock()
	// The accept must be on the wire before the destination writer can touch
	// the new connection: the redialing port reads exactly one frame as its
	// handshake answer, and a queued data frame slipping ahead of the accept
	// would fail it.
	if _, err := c.Write(AppendAcceptFrame(nil, Accept{Version: WireVersion, NumNodes: h.t.cfg.NumNodes})); err != nil {
		h.detachLink(l)
		c.Close()
		return
	}
	c.SetDeadline(time.Time{})
	h.mu.Lock()
	current := h.links[hl.Node] == l // a still-newer redial may have taken over already
	d := h.dests[hl.Node]
	start := false
	if current {
		d.mu.Lock()
		// One persistent writer per destination: started at first attach; in
		// recoverable mode it survives link swaps, resuming the queued
		// outbound window on the new connection — the replayed window a
		// reconnecting node is owed.
		start = d.writerDone == nil
		if start {
			d.writerDone = make(chan struct{})
		}
		d.conn = c
		d.cond.Broadcast()
		d.mu.Unlock()
	}
	h.mu.Unlock()
	if start {
		go h.destWriter(d)
	}
	go h.linkReader(l, br)
}

// detachLink removes a dead inbound link (if still current) and marks its
// destination's outbound side down so the writer parks until the node
// redials.
func (h *hub) detachLink(l *hubLink) {
	h.mu.Lock()
	if h.links[l.node] == l {
		delete(h.links, l.node)
	}
	d := h.dests[l.node]
	h.mu.Unlock()
	d.mu.Lock()
	if d.conn == l.conn {
		d.conn = nil
	}
	d.mu.Unlock()
	l.conn.Close()
}

// linkReader moves raw frames from one link into the destination queues.
// Frames are not decoded: the length prefix is validated, the body lands in
// a slab, and the destination is read at its fixed offset.
func (h *hub) linkReader(l *hubLink, br *bufio.Reader) {
	defer close(l.readerDone)
	t := h.t
	// In recoverable mode a link-level read failure detaches this link
	// quietly — partial frames die with the connection — and the node's
	// redial re-admits it; only frame corruption still aborts the wall.
	linkDown := func(err error) {
		if t.cfg.Recoverable && !t.closing.Load() && !t.aborted() {
			h.detachLink(l)
			return
		}
		t.linkError("hub read", l.node, err)
	}
	var hdr [frameLenBytes]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return // orderly close; the link's outbound side flushes separately
			}
			linkDown(err)
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if err := checkFrameLen(n); err != nil {
			t.Abort(fmt.Errorf("link from node %d: %w", l.node, err))
			return
		}
		raw := GetSlab(frameLenBytes + int(n))[:frameLenBytes+int(n)]
		copy(raw, hdr[:])
		if _, err := io.ReadFull(br, raw[frameLenBytes:]); err != nil {
			PutSlab(raw)
			linkDown(truncOrIO(err))
			return
		}
		switch raw[rawTypeOff] {
		case frameMessage:
			if int(n) < 1+msgHeaderWireBytes {
				PutSlab(raw)
				t.Abort(fmt.Errorf("%w: short message frame from node %d", ErrFrameCorrupt, l.node))
				return
			}
			dest := int(raw[rawDestOff])<<8 | int(raw[rawDestOff+1])
			if dest >= t.cfg.NumNodes {
				PutSlab(raw)
				t.Abort(fmt.Errorf("%w: frame from node %d to unknown node %d", ErrFrameCorrupt, l.node, dest))
				return
			}
			atomic.AddInt64(&t.activity, 1)
			if !h.dests[dest].q.put(outItem{raw: raw, pooled: true}) {
				PutSlab(raw)
			}
		case frameAbort:
			fr, err := decodeFrameBody(raw[rawTypeOff], raw[rawTypeOff+1:])
			PutSlab(raw)
			if err != nil {
				t.Abort(fmt.Errorf("link from node %d: %w", l.node, err))
			} else {
				t.Abort(fr.Abort)
			}
			return
		default:
			PutSlab(raw)
			t.Abort(fmt.Errorf("%w: frame %#x from node %d after handshake", ErrHandshake, raw[rawTypeOff], l.node))
			return
		}
	}
}

// destWriter coalesces a destination's queued frames into single writes,
// releasing each routed slab after it is on the wire. In recoverable mode
// the writer is persistent: a write failure parks it until the node's redial
// reattaches a connection, then the batch is re-sent whole.
func (h *hub) destWriter(d *hubDest) {
	defer close(d.writerDone)
	var batch []outItem
	var buf []byte
	for {
		var done bool
		batch, done = d.q.drain(batch[:0])
		buf = buf[:0]
		for _, it := range batch {
			buf = append(buf, it.raw...)
			if it.pooled {
				PutSlab(it.raw)
			}
		}
		if len(buf) > 0 {
			if err := h.writeDest(d, buf); err != nil {
				if !h.t.cfg.Recoverable {
					h.t.linkError("hub write", -1, err)
				}
				d.q.closeDiscard()
				return
			}
		}
		if done {
			if c := d.current(); c != nil {
				c.CloseWrite()
			}
			return
		}
		if cap(buf) > 4<<20 {
			buf = nil
		}
	}
}

// writeDest writes one batch to the destination's current connection. In
// recoverable mode a dead link parks the writer on the dest's cond until the
// node redials (or the transport unwinds), then retries the whole batch —
// this is how a reconnecting node's queued window survives the outage.
func (h *hub) writeDest(d *hubDest, buf []byte) error {
	t := h.t
	for {
		d.mu.Lock()
		conn := d.conn
		for conn == nil && t.cfg.Recoverable && !t.closing.Load() && !t.aborted() {
			d.cond.Wait()
			conn = d.conn
		}
		d.mu.Unlock()
		if conn == nil {
			return fmt.Errorf("destination link down")
		}
		_, err := conn.Write(buf)
		if err == nil {
			return nil
		}
		if !t.cfg.Recoverable || t.closing.Load() || t.aborted() {
			return err
		}
		d.mu.Lock()
		if d.conn == conn {
			d.conn = nil
		}
		d.mu.Unlock()
		conn.Close()
	}
}

// shutdown performs the hub's half of a clean teardown. Call order matters:
// the local ports' write sides are already flushed and half-closed, so (1)
// their link readers drain to EOF — every locally-originated frame is now
// routed; (2) destination queues flush and half-close, delivering everything
// (including shutdown broadcasts) to remote processes; (3) stop accepting.
func (h *hub) shutdown() {
	h.mu.Lock()
	links := make([]*hubLink, 0, len(h.links))
	for _, l := range h.links {
		links = append(links, l)
	}
	dests := append([]*hubDest(nil), h.dests...)
	h.mu.Unlock()
	local := map[int]bool{}
	for _, id := range h.t.cfg.LocalNodes {
		local[id] = true
	}
	for _, l := range links {
		if local[l.node] {
			<-l.readerDone
		}
	}
	for _, d := range dests {
		d.mu.Lock()
		started := d.writerDone != nil
		d.cond.Broadcast() // wake a writer parked on a dead link; closing is set
		d.mu.Unlock()
		if started {
			d.q.close()
		} else {
			d.q.closeDiscard()
		}
	}
	for _, d := range dests {
		d.mu.Lock()
		done := d.writerDone
		d.mu.Unlock()
		if done != nil {
			<-done
		}
	}
	h.ln.Close()
}

// abort pushes the abort frame at every attached destination and stops
// accepting; the transport-level teardown owns deadlines and final closes.
func (h *hub) abort(frame []byte) {
	h.ln.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, d := range h.dests {
		d.mu.Lock()
		started := d.writerDone != nil
		d.cond.Broadcast() // wake a writer parked on a dead link; done is closed
		d.mu.Unlock()
		if started {
			d.q.put(outItem{raw: frame})
			d.q.close()
		} else {
			d.q.closeDiscard()
		}
	}
}

func (h *hub) waitWriters() {
	h.mu.Lock()
	dests := append([]*hubDest(nil), h.dests...)
	h.mu.Unlock()
	for _, d := range dests {
		d.mu.Lock()
		done := d.writerDone
		d.mu.Unlock()
		if done != nil {
			<-done
		}
	}
}

func (h *hub) conns() []*net.TCPConn {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []*net.TCPConn
	for _, l := range h.links {
		out = append(out, l.conn)
	}
	return out
}

func (h *hub) killLink(node int) {
	h.mu.Lock()
	l := h.links[node]
	h.mu.Unlock()
	if l != nil {
		l.conn.SetLinger(0)
		l.conn.Close()
	}
}

// ---------------------------------------------------------------------------
// Queues and pumps

// outItem is one queued outbound frame: either a Message to encode or a
// pre-encoded raw frame (hub routing, abort broadcast).
type outItem struct {
	msg    *Message
	raw    []byte
	pooled bool // raw came from the slab pool; release after writing
}

// outQueue is an unbounded, closable MPSC queue feeding a link writer.
// Unbounded is deliberate: the pipeline's credit protocol bounds what can be
// in flight, and a bounded transport queue would introduce blocking edges
// the deadlock-freedom argument doesn't account for.
type outQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	items  []outItem
	closed bool
}

func newOutQueue() *outQueue {
	q := &outQueue{}
	q.cond.L = &q.mu
	return q
}

// put enqueues an item; false (nothing queued) after close.
func (q *outQueue) put(it outItem) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	q.mu.Unlock()
	return true
}

// drain blocks until items are queued or the queue is closed, then takes
// everything. done reports that the queue is closed and fully drained.
func (q *outQueue) drain(into []outItem) (batch []outItem, done bool) {
	q.mu.Lock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	into = append(into, q.items...)
	for i := range q.items {
		q.items[i] = outItem{}
	}
	q.items = q.items[:0]
	done = q.closed
	q.mu.Unlock()
	return into, done
}

// close marks the queue closed; the writer drains what remains and exits.
func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// closeDiscard closes the queue and releases what nobody will write.
func (q *outQueue) closeDiscard() {
	q.mu.Lock()
	q.closed = true
	items := q.items
	q.items = nil
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, it := range items {
		if it.pooled {
			PutSlab(it.raw)
		}
	}
}

// pump is the unbounded buffer between a port's reader and one receive-kind
// channel. The reader never blocks on a slow consumer of one kind while
// another kind is waited on — the head-of-line hazard a single TCP stream
// would otherwise add over the fabric's per-kind queues.
type pump struct {
	mu     sync.Mutex
	cond   sync.Cond
	buf    []*Message
	closed bool
	ch     chan *Message
	done   <-chan struct{}
}

func newPump(done <-chan struct{}) *pump {
	p := &pump{ch: make(chan *Message, 1), done: done}
	p.cond.L = &p.mu
	go p.run()
	return p
}

func (p *pump) put(m *Message) {
	p.mu.Lock()
	if !p.closed {
		p.buf = append(p.buf, m)
		p.cond.Signal()
	}
	p.mu.Unlock()
}

func (p *pump) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *pump) run() {
	for {
		p.mu.Lock()
		for len(p.buf) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.buf) == 0 {
			p.mu.Unlock()
			return
		}
		m := p.buf[0]
		p.buf[0] = nil
		p.buf = p.buf[1:]
		if len(p.buf) == 0 {
			p.buf = nil // let a drained burst's backing array go
		}
		p.mu.Unlock()
		select {
		case p.ch <- m:
		case <-p.done:
			return
		}
	}
}
