package system

import (
	"fmt"
	"time"

	"tiledwall/internal/bits"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/pdec"
	"tiledwall/internal/splitter"
	"tiledwall/internal/subpic"
	"tiledwall/internal/wall"
)

// Calibration holds the measured per-picture costs of §4.6: ts, the time a
// second-level splitter needs to split one picture at macroblock level, and
// td, the time a decoder needs to decode and display its sub-picture.
// The achievable frame rate of a 1-k-(m,n) system is
//
//	F = min(k/ts, 1/td)
//
// so the splitters stop being the bottleneck at k >= ts/td.
type Calibration struct {
	TS, TD   time.Duration
	Pictures int
}

// RecommendedK returns the smallest k that keeps the decoders busy
// (ceil(ts/td)), the paper's optimum; 0 when a one-level system suffices.
// With targetFPS > 0, k is capped at what that frame rate requires
// (k/ts >= F), the automation the paper's §6 proposes as future work.
func (c Calibration) RecommendedK(targetFPS float64) int {
	if c.TD <= 0 {
		return 0
	}
	k := int((c.TS + c.TD - 1) / c.TD)
	if targetFPS > 0 {
		needed := int(targetFPS*c.TS.Seconds()) + 1
		if needed < k {
			k = needed
		}
	}
	if k <= 1 {
		return 0 // a 1-(m,n) system: the root splits alone (§4.6)
	}
	return k
}

// PredictedFPS evaluates the paper's frame-rate formula for a given k
// (k = 0 is the one-level system, equivalent to k = 1 splitting capacity).
func (c Calibration) PredictedFPS(k int) float64 {
	if c.TS <= 0 || c.TD <= 0 {
		return 0
	}
	kk := float64(k)
	if k == 0 {
		kk = 1
	}
	split := kk / c.TS.Seconds()
	dec := 1 / c.TD.Seconds()
	if split < dec {
		return split
	}
	return dec
}

// Calibrate measures ts and td over the first maxPics pictures of the
// stream for the given wall geometry, exactly as the paper's empirical
// configuration procedure does: split each picture (parse-only full VLD),
// then decode the resulting sub-pictures on single-tile decoders.
func Calibrate(stream []byte, m, n, overlap, maxPics int) (*Calibration, error) {
	s, err := mpeg2.ParseStream(stream)
	if err != nil {
		return nil, err
	}
	picW, picH := s.Seq.MBWidth()*16, s.Seq.MBHeight()*16
	geo, err := wall.NewGeometry(picW, picH, m, n, overlap)
	if err != nil {
		return nil, err
	}
	if maxPics <= 0 || maxPics > len(s.Pictures) {
		maxPics = len(s.Pictures)
	}

	ms := splitter.NewMBSplitter(s.Seq, geo)
	cal := &Calibration{Pictures: maxPics}

	// Standalone tile decode: run the sub-pictures of each tile through the
	// piece decoder without a fabric, timing the slowest tile per picture
	// (synchronised decoders run at the speed of the slowest, §5.5).
	decs := make([]*offlineTileDecoder, geo.NumTiles())
	for t := range decs {
		decs[t] = newOfflineTileDecoder(s.Seq, geo, t)
	}

	for i := 0; i < maxPics; i++ {
		t0 := time.Now()
		sps, err := ms.Split(s.Pictures[i], i)
		if err != nil {
			return nil, err
		}
		cal.TS += time.Since(t0)

		var worst time.Duration
		for t, sp := range sps {
			t1 := time.Now()
			if err := decs[t].decode(sp); err != nil {
				return nil, fmt.Errorf("calibrate tile %d picture %d: %w", t, i, err)
			}
			if d := time.Since(t1); d > worst {
				worst = d
			}
		}
		cal.TD += worst
	}
	cal.TS /= time.Duration(maxPics)
	cal.TD /= time.Duration(maxPics)
	return cal, nil
}

// offlineTileDecoder decodes a tile's sub-pictures outside any fabric by
// satisfying MEI RECVs directly from the peer decoders' windows. It exists
// for calibration and for splitter unit tests.
type offlineTileDecoder struct {
	seq  *mpeg2.SequenceHeader
	geo  *wall.Geometry
	tile int
	rect wall.Rect

	bufs            []*mpeg2.PixelBuf
	cur, refA, refB int
}

func newOfflineTileDecoder(seq *mpeg2.SequenceHeader, geo *wall.Geometry, tile int) *offlineTileDecoder {
	rect := geo.Tile(tile)
	halo := pdec.HaloForFCode(3)
	x0, y0 := rect.X0-halo, rect.Y0-halo
	x1, y1 := rect.X1+halo, rect.Y1+halo
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > geo.PicW {
		x1 = geo.PicW
	}
	if y1 > geo.PicH {
		y1 = geo.PicH
	}
	d := &offlineTileDecoder{seq: seq, geo: geo, tile: tile, rect: rect, cur: 0, refA: -1, refB: -1}
	for i := 0; i < 3; i++ {
		d.bufs = append(d.bufs, mpeg2.NewPixelBuf(x0, y0, x1-x0, y1-y0))
	}
	return d
}

// decode processes one sub-picture. MEI RECV cells are not actually
// transferred: calibration measures only this tile's decode cost, and the
// motion-compensation cost is independent of the halo's contents (the
// window geometry guarantees every access stays in bounds). The fabric
// pipeline in pdec is authoritative for pixel correctness.
func (d *offlineTileDecoder) decode(sp *subpic.SubPicture) error {
	ph := sp.Pic.Header()
	ctx, err := mpeg2.NewPictureContext(d.seq, ph)
	if err != nil {
		return err
	}
	rc := mpeg2.NewReconstructor(ph)
	cur := d.bufs[d.cur]
	var fwd, bwd *mpeg2.PixelBuf
	switch ph.PicType {
	case mpeg2.PictureP:
		if d.refB < 0 {
			return fmt.Errorf("system: calibration P picture before anchor")
		}
		fwd = d.bufs[d.refB]
	case mpeg2.PictureB:
		if d.refA < 0 || d.refB < 0 {
			return fmt.Errorf("system: calibration B picture without two anchors")
		}
		fwd, bwd = d.bufs[d.refA], d.bufs[d.refB]
	}
	if err := decodeSubPicture(ctx, rc, sp, cur, fwd, bwd); err != nil {
		return err
	}
	if ph.PicType != mpeg2.PictureB {
		old := d.refA
		d.refA, d.refB = d.refB, d.cur
		if old >= 0 {
			d.cur = old
		} else {
			for i := 0; i < 3; i++ {
				if i != d.refA && i != d.refB {
					d.cur = i
				}
			}
		}
	}
	return nil
}

// decodeSubPicture runs the piece decode loop shared with pdec (duplicated
// here in simplified form for offline use).
func decodeSubPicture(ctx *mpeg2.PictureContext, rc *mpeg2.Reconstructor, sp *subpic.SubPicture, cur, fwd, bwd *mpeg2.PixelBuf) error {
	skipped := func(addr int, prev mpeg2.MotionInfo) error {
		return rc.Skipped(cur, fwd, bwd, addr%ctx.MBW, addr/ctx.MBW, prev)
	}
	for pi := range sp.Pieces {
		p := &sp.Pieces[pi]
		for k := int(p.LeadingSkip); k > 0; k-- {
			if err := skipped(int(p.FirstAddr)-k, p.Prev); err != nil {
				return err
			}
		}
		if p.CodedCount == 0 {
			continue
		}
		r := newPieceReader(p)
		sd := mpeg2.NewPartialSliceDecoder(ctx, r, p.State(), p.Prev, int(p.FirstAddr), int(p.CodedCount))
		var mb mpeg2.Macroblock
		lastAddr := int(p.FirstAddr)
		for {
			ok, err := sd.Next(&mb)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			for k := mb.Addr - mb.SkippedBefore; k < mb.Addr; k++ {
				if err := skipped(k, mb.PrevMotion); err != nil {
					return err
				}
			}
			if err := rc.Macroblock(cur, fwd, bwd, &mb, ctx.MBW); err != nil {
				return err
			}
			lastAddr = mb.Addr
		}
		for k := 1; k <= int(p.TrailingSkip); k++ {
			if err := skipped(lastAddr+k, sd.PrevMotion()); err != nil {
				return err
			}
		}
	}
	return nil
}

// newPieceReader positions a bit reader at a piece's first macroblock.
func newPieceReader(p *subpic.Piece) *bits.Reader {
	r := bits.NewReader(p.Payload)
	r.Skip(int(p.SkipBits))
	return r
}
