package recovery

import (
	"sort"
	"sync"

	"tiledwall/internal/cluster"
)

// RetainedPicture is one picture unit the root keeps until its assignee's
// credit ack confirms delivery.
type RetainedPicture struct {
	Session int
	Seq     int // per-session picture index
	Tag     int // NSID riding on the original send
	Flags   uint8
	Payload []byte

	ord int64 // global send order, for cross-session replay sequencing
}

// pictureKey scopes the root's replay window per session: one session's
// retransmits never disturb another's.
type pictureKey struct {
	session int
	seq     int
}

// PictureRetainer is the root splitter's replay window: every picture sent
// to a second-level splitter stays retained until that splitter's ack
// returns the credit — so the buffer is bounded by the two-buffer credit
// window (at most 2 outstanding pictures per splitter per session) plus a
// small slack for acks in flight. When a splitter is respawned, the
// supervisor replays its unacked pictures with their original NSID tags, in
// original send order across sessions, preserving the ANID/NSID ordering
// chain.
//
// On a pooled wall the retainer is a slab reference holder: Retain acquires
// an extra reference on the payload (the sent copy and the retained copy
// are the same bytes on the in-process fabric), and the releasing ack or
// session drop returns it — the consuming splitter's own release can then
// never recycle a slab the retainer might still replay.
type PictureRetainer struct {
	mu         sync.Mutex
	pooled     bool
	nextOrd    int64
	bySplitter map[int]map[pictureKey]RetainedPicture // splitter index -> (session, seq) -> entry
}

// NewPictureRetainer returns an empty retainer. pooled marks payloads as
// pooled cluster slabs whose references the retainer must manage.
func NewPictureRetainer(pooled bool) *PictureRetainer {
	return &PictureRetainer{pooled: pooled, bySplitter: map[int]map[pictureKey]RetainedPicture{}}
}

// Retain stores the session's picture seq sent to splitter idx, acquiring a
// slab reference on a pooled wall.
func (r *PictureRetainer) Retain(session, idx, seq, tag int, flags uint8, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.bySplitter[idx]
	if m == nil {
		m = map[pictureKey]RetainedPicture{}
		r.bySplitter[idx] = m
	}
	if r.pooled {
		cluster.SlabRef(payload)
	}
	r.nextOrd++
	m[pictureKey{session, seq}] = RetainedPicture{
		Session: session, Seq: seq, Tag: tag, Flags: flags, Payload: payload, ord: r.nextOrd,
	}
}

// Ack releases the retained picture (session, seq) of splitter idx — and its
// slab reference, but only when the entry still exists: replay and synthetic
// credits can produce duplicate acks, which must not double-release.
func (r *PictureRetainer) Ack(session, idx, seq int) {
	r.mu.Lock()
	k := pictureKey{session, seq}
	e, ok := r.bySplitter[idx][k]
	if ok {
		delete(r.bySplitter[idx], k)
	}
	r.mu.Unlock()
	if ok && r.pooled {
		cluster.PutSlab(e.Payload)
	}
}

// Pending returns one session's unacked pictures at splitter idx in
// ascending seq order.
func (r *PictureRetainer) Pending(session, idx int) []RetainedPicture {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RetainedPicture
	for k, e := range r.bySplitter[idx] {
		if k.session == session {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// PendingSplitter returns every session's unacked pictures at splitter idx in
// original send order — the replay sequence for a respawned resident
// splitter.
func (r *PictureRetainer) PendingSplitter(idx int) []RetainedPicture {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RetainedPicture
	for _, e := range r.bySplitter[idx] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ord < out[j].ord })
	return out
}

// OldestSession returns the session owning splitter idx's oldest pending
// picture — the session whose in-flight token the root releases when it
// writes a lost credit off after a deadline.
func (r *PictureRetainer) OldestSession(idx int) (session int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best int64
	for k, e := range r.bySplitter[idx] {
		if !ok || e.ord < best {
			best, session, ok = e.ord, k.session, true
		}
	}
	return session, ok
}

// Drop releases every retained picture of one session across splitters
// (resident session close or failure), returning the slab references the
// entries held.
func (r *PictureRetainer) Drop(session int) {
	r.mu.Lock()
	var freed [][]byte
	for _, m := range r.bySplitter {
		for k, e := range m {
			if k.session == session {
				if r.pooled {
					freed = append(freed, e.Payload)
				}
				delete(m, k)
			}
		}
	}
	r.mu.Unlock()
	for _, p := range freed {
		cluster.PutSlab(p)
	}
}
