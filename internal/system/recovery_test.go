package system

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/recovery"
	"tiledwall/internal/video"
)

// recoverySeed drives the seeded fault-injection sweeps. Defaults to the
// deterministic propertySeed; the CI chaos matrix overrides it per job via
// TILEDWALL_CHAOS_SEED so three distinct fault schedules run on every push.
func recoverySeed(t *testing.T) int64 {
	if v := os.Getenv("TILEDWALL_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("TILEDWALL_CHAOS_SEED=%q: %v", v, err)
		}
		return propertySeed + n
	}
	return propertySeed
}

// testRecoveryConfig is tuned for test speed: fast heartbeats, short
// deadlines. PictureDeadline still comfortably exceeds LeaseExpiry so the
// restart+replay path wins the race against concealment.
func testRecoveryConfig() recovery.Config {
	return recovery.Config{
		Enabled:         true,
		LeaseInterval:   2 * time.Millisecond,
		LeaseExpiry:     10 * time.Millisecond,
		PictureDeadline: 150 * time.Millisecond,
		MaxRestarts:     3,
	}
}

// checkExactlyOnce asserts the chaos-mode delivery guarantee: every tile
// emitted every picture index exactly once.
func checkExactlyOnce(t *testing.T, name string, res *Result, pictures int) {
	t.Helper()
	if len(res.TileEmissions) == 0 {
		t.Fatalf("%s: no emission log", name)
	}
	for tile, idxs := range res.TileEmissions {
		got := append([]int(nil), idxs...)
		sort.Ints(got)
		if len(got) != pictures {
			t.Fatalf("%s: tile %d emitted %d frames, want %d (emissions: %v)", name, tile, len(got), pictures, idxs)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("%s: tile %d emissions are not exactly-once: sorted %v", name, tile, got)
			}
		}
	}
}

// TestRecoveryFaultFreeBitExact: with the recovery layer on but no injected
// faults, the pipeline must stay bit-exact with the serial decoder and
// report a clean (ideally zero) recovery snapshot.
func TestRecoveryFaultFreeBitExact(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 12)
	ref := serialFrames(t, stream)
	for _, cfg := range []Config{
		{K: 0, M: 2, N: 1},
		{K: 2, M: 2, N: 2},
		{K: 2, M: 2, N: 2, Pooled: true},
		{K: 0, M: 2, N: 1, Pooled: true},
	} {
		cfg.CollectFrames = true
		cfg.Recovery = testRecoveryConfig()
		cfg.Fabric = cluster.Config{StallTimeout: 10 * time.Second}
		name := fmt.Sprintf("1-%d-(%d,%d) pooled=%v", cfg.K, cfg.M, cfg.N, cfg.Pooled)
		res, err := Run(stream, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Recovery.Clean() {
			t.Fatalf("%s: fault-free run not clean: %s", name, res.Recovery)
		}
		if len(res.Frames) != len(ref) {
			t.Fatalf("%s: %d frames, want %d", name, len(res.Frames), len(ref))
		}
		for i := range ref {
			if !video.Equal(ref[i].Buf, res.Frames[i]) {
				t.Fatalf("%s: frame %d differs from serial decode", name, i)
			}
		}
		checkExactlyOnce(t, name, res, len(ref))
	}
}

// TestRecoveryDecoderKill: a decoder crash mid-GOP is detected by lease
// expiry, the node is respawned, retained sub-pictures are replayed, and
// every picture index is still emitted exactly once on every tile.
func TestRecoveryDecoderKill(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 12)
	ref := serialFrames(t, stream)
	for _, tc := range []struct {
		cfg  Config
		tile int
		pic  int
	}{
		{Config{K: 0, M: 2, N: 1}, 1, 3},
		{Config{K: 2, M: 2, N: 2}, 2, 4},
		{Config{K: 1, M: 2, N: 2}, 0, 7},
		{Config{K: 2, M: 2, N: 2, Pooled: true}, 2, 4},
	} {
		cfg := tc.cfg
		cfg.Recovery = testRecoveryConfig()
		cfg.Chaos = recovery.ChaosPlan{KillDecoder: true, DecoderTile: tc.tile, KillAtPicture: tc.pic}
		cfg.Fabric = cluster.Config{StallTimeout: 10 * time.Second}
		name := fmt.Sprintf("1-%d-(%d,%d) kill tile %d at pic %d", cfg.K, cfg.M, cfg.N, tc.tile, tc.pic)
		res, err := Run(stream, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Recovery.Restarts < 1 {
			t.Fatalf("%s: kill did not register a restart: %s", name, res.Recovery)
		}
		checkExactlyOnce(t, name, res, len(ref))
	}
}

// TestRecoverySplitterKill: a second-level splitter crash is recovered by
// respawn plus replay of the root's retained (unacked) pictures, preserving
// exactly-once delivery on every tile.
func TestRecoverySplitterKill(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 12)
	ref := serialFrames(t, stream)
	for _, tc := range []struct {
		cfg Config
		idx int
		pic int
	}{
		// Round-robin: splitter idx handles pictures where pic % K == idx,
		// so the kill picture must be on the target's schedule.
		{Config{K: 2, M: 2, N: 2}, 1, 3},
		{Config{K: 3, M: 2, N: 1}, 0, 6},
		{Config{K: 2, M: 2, N: 2, Pooled: true}, 1, 3},
	} {
		cfg := tc.cfg
		cfg.Recovery = testRecoveryConfig()
		cfg.Chaos = recovery.ChaosPlan{KillSplitter: true, SplitterIdx: tc.idx, KillAtPicture: tc.pic}
		cfg.Fabric = cluster.Config{StallTimeout: 10 * time.Second}
		name := fmt.Sprintf("1-%d-(%d,%d) kill splitter %d at pic %d", cfg.K, cfg.M, cfg.N, tc.idx, tc.pic)
		res, err := Run(stream, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Recovery.Restarts < 1 {
			t.Fatalf("%s: kill did not register a restart: %s", name, res.Recovery)
		}
		checkExactlyOnce(t, name, res, len(ref))
	}
}

// TestPropertyDecoderKillContinuity is the seeded kill/restart property
// sweep: for random configurations, a random decoder killed at a random
// picture mid-GOP, the display sequence of every tile must stay continuous
// — each frame index emitted exactly once, no duplicates, no holes.
func TestPropertyDecoderKillContinuity(t *testing.T) {
	stream := makeStream(t, video.SceneFishTank, 160, 96, 10)
	ref := serialFrames(t, stream)
	seed := recoverySeed(t)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 5; trial++ {
		cfg := Config{
			K: rng.Intn(3),
			M: 1 + rng.Intn(2),
			N: 1 + rng.Intn(2),
		}
		tile := rng.Intn(cfg.M * cfg.N)
		pic := 1 + rng.Intn(len(ref)-2)
		cfg.Recovery = testRecoveryConfig()
		cfg.Chaos = recovery.ChaosPlan{KillDecoder: true, DecoderTile: tile, KillAtPicture: pic}
		cfg.Fabric = cluster.Config{StallTimeout: 10 * time.Second}
		name := fmt.Sprintf("trial %d: seed %d, 1-%d-(%d,%d), kill tile %d at pic %d",
			trial, seed, cfg.K, cfg.M, cfg.N, tile, pic)
		res, err := Run(stream, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Recovery.Restarts < 1 {
			t.Fatalf("%s: kill did not register a restart: %s", name, res.Recovery)
		}
		checkExactlyOnce(t, name, res, len(ref))
	}
}
