package catalog

import (
	"testing"

	"tiledwall/internal/mpeg2"
)

func TestCatalogueShape(t *testing.T) {
	if len(Streams) != 16 {
		t.Fatalf("catalogue has %d streams, want 16 (Table 4)", len(Streams))
	}
	for i, s := range Streams {
		if s.ID != i+1 {
			t.Errorf("stream %d has ID %d", i, s.ID)
		}
		if s.W%16 != 0 || s.H%16 != 0 {
			t.Errorf("stream %d: %dx%d not macroblock aligned", s.ID, s.W, s.H)
		}
		if s.M < 1 || s.N < 1 {
			t.Errorf("stream %d: invalid wall %dx%d", s.ID, s.M, s.N)
		}
		if s.BPP <= 0 {
			t.Errorf("stream %d: bpp %f", s.ID, s.BPP)
		}
	}
	// Resolutions are non-decreasing in pixel count within the orion ladder.
	for i := 13; i < 16; i++ {
		a, _ := ByID(i)
		b, _ := ByID(i + 1)
		if a.W*a.H >= b.W*b.H {
			t.Errorf("orion ladder not increasing at %d", i)
		}
	}
	// The headline configuration matches the abstract: 1-4-(4,4) on 21 PCs.
	last, _ := ByID(16)
	if last.Nodes() != 21 {
		t.Errorf("stream 16 uses %d nodes, want 21", last.Nodes())
	}
}

func TestLookup(t *testing.T) {
	if _, err := ByID(0); err == nil {
		t.Error("ByID(0) accepted")
	}
	if _, err := ByID(17); err == nil {
		t.Error("ByID(17) accepted")
	}
	s, err := ByName("orion4")
	if err != nil || s.ID != 16 {
		t.Errorf("ByName(orion4) = %v, %v", s.ID, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestDimensionsScaling(t *testing.T) {
	s, _ := ByID(16) // 3840x2800
	w, h := s.Dimensions(GenOptions{Scale: 4})
	if w != 960 || h != 688 { // 700 rounds down to the macroblock grid
		t.Errorf("scale 4 = %dx%d", w, h)
	}
	if w%16 != 0 || h%16 != 0 {
		t.Errorf("scaled dims not aligned: %dx%d", w, h)
	}
	// Extreme scaling never goes below the wall's minimum.
	w, h = s.Dimensions(GenOptions{Scale: 1000})
	if w < s.M*16 || h < s.N*16 {
		t.Errorf("minimum clamp failed: %dx%d", w, h)
	}
}

func TestGenerateDecodable(t *testing.T) {
	s, _ := ByID(5)
	data, err := s.Generate(GenOptions{Frames: 6, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := mpeg2.NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	pics, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pics) != 6 {
		t.Fatalf("%d pictures", len(pics))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := ByID(4)
	opts := GenOptions{Frames: 4, Scale: 8, Seed: 3}
	a, err := s.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams differ at byte %d", i)
		}
	}
}
