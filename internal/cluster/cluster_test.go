package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	f := New(2, Config{})
	payload := []byte("hello")
	go f.Node(0).Send(1, &Message{Kind: MsgPicture, Seq: 7, Tag: 3, Payload: payload})
	m := f.Node(1).Recv(MsgPicture)
	if m == nil || m.From != 0 || m.To != 1 || m.Seq != 7 || m.Tag != 3 {
		t.Fatalf("message fields: %+v", m)
	}
	if &m.Payload[0] != &payload[0] {
		t.Error("payload was copied; fabric should be zero-copy")
	}
}

func TestPerKindQueues(t *testing.T) {
	f := New(2, Config{})
	n0, n1 := f.Node(0), f.Node(1)
	n0.Send(1, &Message{Kind: MsgAck, Seq: 1})
	n0.Send(1, &Message{Kind: MsgPicture, Seq: 2})
	n0.Send(1, &Message{Kind: MsgAck, Seq: 3})
	// Receiving a picture does not consume acks and vice versa.
	if m := n1.Recv(MsgPicture); m.Seq != 2 {
		t.Fatalf("picture seq %d", m.Seq)
	}
	if m := n1.Recv(MsgAck); m.Seq != 1 {
		t.Fatalf("first ack seq %d", m.Seq)
	}
	if m := n1.Recv(MsgAck); m.Seq != 3 {
		t.Fatalf("second ack seq %d", m.Seq)
	}
}

func TestPerSenderFIFO(t *testing.T) {
	f := New(2, Config{})
	go func() {
		for i := 0; i < 100; i++ {
			f.Node(0).Send(1, &Message{Kind: MsgBlocks, Seq: i})
		}
	}()
	for i := 0; i < 100; i++ {
		if m := f.Node(1).Recv(MsgBlocks); m.Seq != i {
			t.Fatalf("out of order: got %d want %d", m.Seq, i)
		}
	}
}

func TestByteAccounting(t *testing.T) {
	f := New(3, Config{})
	f.Node(0).Send(1, &Message{Kind: MsgPicture, Payload: make([]byte, 100)})
	f.Node(0).Send(2, &Message{Kind: MsgPicture, Payload: make([]byte, 50)})
	f.Node(1).Recv(MsgPicture)
	f.Node(2).Recv(MsgPicture)
	st := f.Stats()
	want0 := int64(100 + 50 + 2*messageHeaderBytes)
	if st[0].BytesSent != want0 {
		t.Errorf("node 0 sent %d, want %d", st[0].BytesSent, want0)
	}
	if st[1].BytesRecv != 100+messageHeaderBytes || st[2].BytesRecv != 50+messageHeaderBytes {
		t.Errorf("receive accounting: %+v", st)
	}
	if st[0].MsgsSent != 2 || st[1].MsgsRecv != 1 {
		t.Errorf("message counting: %+v", st)
	}
	if f.PairBytes(0, 1) != 100+messageHeaderBytes {
		t.Errorf("pair bytes = %d", f.PairBytes(0, 1))
	}
}

func TestTryRecv(t *testing.T) {
	f := New(2, Config{})
	if _, ok := f.Node(1).TryRecv(MsgAck); ok {
		t.Error("TryRecv on empty queue succeeded")
	}
	f.Node(0).Send(1, &Message{Kind: MsgAck})
	if _, ok := f.Node(1).TryRecv(MsgAck); !ok {
		t.Error("TryRecv missed a queued message")
	}
}

func TestTrySend(t *testing.T) {
	f := New(2, Config{QueueDepth: 1})
	if !f.Node(0).TrySend(1, &Message{Kind: MsgAck, Seq: 1}) {
		t.Fatal("TrySend to empty queue failed")
	}
	if f.Node(0).TrySend(1, &Message{Kind: MsgAck, Seq: 2}) {
		t.Fatal("TrySend to full queue succeeded")
	}
	if m, ok := f.Node(1).TryRecv(MsgAck); !ok || m.Seq != 1 {
		t.Fatalf("delivered message: %+v ok=%v", m, ok)
	}
	if !f.Node(0).TrySend(1, &Message{Kind: MsgAck, Seq: 3}) {
		t.Fatal("TrySend after drain failed")
	}
	st := f.Stats()
	if st[0].MsgsSent != 2 {
		t.Fatalf("accounting counted %d sends, want 2 (rejected send must not count)", st[0].MsgsSent)
	}
	f.Abort(errors.New("stop"))
	if f.Node(0).TrySend(1, &Message{Kind: MsgAck, Seq: 4}) {
		t.Fatal("TrySend on aborted fabric succeeded")
	}
}

func TestAbortUnblocksRecv(t *testing.T) {
	f := New(2, Config{})
	done := make(chan *Message)
	go func() { done <- f.Node(1).Recv(MsgPicture) }()
	cause := errors.New("boom")
	f.Abort(cause)
	select {
	case m := <-done:
		if m != nil {
			t.Errorf("aborted Recv returned %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on abort")
	}
	if f.AbortCause() != cause {
		t.Errorf("cause = %v", f.AbortCause())
	}
	// Second abort keeps the first cause.
	f.Abort(errors.New("later"))
	if f.AbortCause() != cause {
		t.Error("abort cause overwritten")
	}
}

func TestAbortUnblocksSend(t *testing.T) {
	f := New(2, Config{QueueDepth: 1})
	f.Node(0).Send(1, &Message{Kind: MsgPicture}) // fills the queue
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Node(0).Send(1, &Message{Kind: MsgPicture}) // would block
	}()
	f.Abort(errors.New("stop"))
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(time.Second):
		t.Fatal("Send did not unblock on abort")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	// Repeated and concurrent Shutdown calls must all be safe: pipeline
	// drivers defer Shutdown while error paths may already have called it.
	f := New(2, Config{StallTimeout: 50 * time.Millisecond})
	f.Shutdown()
	f.Shutdown() // second sequential call: must not close a closed channel

	f = New(2, Config{StallTimeout: 50 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Shutdown()
		}()
	}
	wg.Wait()

	// Shutdown stops the watchdog: an idle-but-finished fabric must not be
	// aborted after the fact.
	time.Sleep(150 * time.Millisecond)
	if cause := f.AbortCause(); cause != nil {
		t.Fatalf("watchdog aborted a shut-down fabric: %v", cause)
	}

	// Shutdown after Abort (and vice versa) is the normal error-path order;
	// the abort cause must survive.
	f = New(2, Config{StallTimeout: 50 * time.Millisecond})
	cause := errors.New("boom")
	f.Abort(cause)
	f.Shutdown()
	f.Shutdown()
	if f.AbortCause() != cause {
		t.Fatalf("abort cause lost across shutdown: %v", f.AbortCause())
	}

	// A fabric without a watchdog tolerates Shutdown too.
	f = New(2, Config{})
	f.Shutdown()
	f.Shutdown()
}

func TestThrottleSlowsSends(t *testing.T) {
	fast := New(2, Config{})
	slow := New(2, Config{BandwidthBps: 1e6}) // 1 MB/s
	payload := make([]byte, 100_000)

	t0 := time.Now()
	fast.Node(0).Send(1, &Message{Kind: MsgPicture, Payload: payload})
	fastD := time.Since(t0)

	t0 = time.Now()
	slow.Node(0).Send(1, &Message{Kind: MsgPicture, Payload: payload})
	slowD := time.Since(t0)

	if slowD < 50*time.Millisecond {
		t.Errorf("throttled send took %v, expected ~100ms", slowD)
	}
	if fastD > slowD {
		t.Errorf("unthrottled send (%v) slower than throttled (%v)", fastD, slowD)
	}
}

func TestKindString(t *testing.T) {
	for k := MsgKind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
