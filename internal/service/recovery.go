package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/pdec"
	"tiledwall/internal/recovery"
	"tiledwall/internal/splitter"
)

// This file is the wall's recovery wiring (DESIGN.md §6) — the one recovery
// model the repo has, identical over the in-process fabric and TCP:
// supervised incarnation loops for the local splitter and decoder servers, a
// session registry that snapshots what a respawned incarnation must re-join,
// root-side picture retention and replay, and the wall health state machine.
// Failure isolation is per session: a corrupt stream or an exhausted deadline
// budget fails that session with a typed error while the other sessions keep
// flowing. On a pooled wall the retainer holds slab references (DESIGN.md
// §9), so retention composes with buffer recycling.

// Health is the resident wall's fault-tolerance state.
type Health int32

const (
	// Healthy: every node loop is live and no session has degraded since the
	// last clean close.
	Healthy Health = iota
	// Recovering: at least one node loop or transport link is down and being
	// respawned or redialed.
	Recovering
	// Degraded: all nodes are back but the most recent recovery left
	// concealed output behind; cleared by the next clean session close.
	Degraded
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Recovering:
		return "recovering"
	case Degraded:
		return "degraded"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

var (
	// ErrSessionFailed marks a session that failed alone — corrupt stream,
	// geometry mismatch — while the wall kept serving the others.
	ErrSessionFailed = errors.New("service: session failed")
	// ErrSessionDisrupted marks a session whose drain never completed within
	// the recovery deadline budget (a node died past its restart budget).
	ErrSessionDisrupted = errors.New("service: session disrupted")
)

// TooManySessionsError is the admission error returned by Open when
// MaxSessions sessions are already active. It wraps ErrTooManySessions and
// adds a retry hint: callers should back off at least RetryAfter (derived
// from the wall's observed session durations and the oldest in-flight
// session's progress), ideally with jitter, before re-trying Open.
type TooManySessionsError struct {
	Active     int
	Max        int
	RetryAfter time.Duration
}

func (e *TooManySessionsError) Error() string {
	return fmt.Sprintf("%v (%d active, max %d, retry after %v)",
		ErrTooManySessions, e.Active, e.Max, e.RetryAfter)
}

func (e *TooManySessionsError) Unwrap() error { return ErrTooManySessions }

// sessionRecState is the registry entry recovery keeps per open session.
type sessionRecState struct {
	header  []byte
	rec     *metrics.Recovery
	emitted [][]int // per tile, emitted decode-order indices in display order
}

// wallRecovery is the service-side recovery state shared by the supervised
// loops, the root, and the health API.
type wallRecovery struct {
	cfg    recovery.Config
	chaos  recovery.ChaosPlan
	rec    *metrics.Recovery // wall-level counters (root-side interventions)
	sup    *recovery.Supervisor
	picRet *recovery.PictureRetainer
	// respawn carries splitter indices whose pending pictures the root must
	// replay after a respawn.
	respawn chan int

	mu       sync.Mutex
	nTiles   int
	down     int
	degraded bool
	sessions map[int]*sessionRecState
}

func newWallRecovery(cfg recovery.Config, chaos recovery.ChaosPlan, k, nTiles int, pooled bool) *wallRecovery {
	rcfg := cfg.WithDefaults()
	rec := &metrics.Recovery{}
	return &wallRecovery{
		cfg:      rcfg,
		chaos:    chaos,
		rec:      rec,
		sup:      recovery.NewSupervisor(rcfg, rec),
		picRet:   recovery.NewPictureRetainer(pooled),
		respawn:  make(chan int, k+1),
		nTiles:   nTiles,
		sessions: map[int]*sessionRecState{},
	}
}

// state returns (creating on demand) the registry entry for a session. The
// create-on-demand path covers counters charged before the open is observed.
func (rv *wallRecovery) stateLocked(session int) *sessionRecState {
	st := rv.sessions[session]
	if st == nil {
		st = &sessionRecState{rec: &metrics.Recovery{}, emitted: make([][]int, rv.nTiles)}
		rv.sessions[session] = st
	}
	return st
}

// noteOpen records a session's header for future respawn resumes. Called
// from every local node server; the first sighting wins.
func (rv *wallRecovery) noteOpen(session int, header []byte) {
	rv.mu.Lock()
	st := rv.stateLocked(session)
	if st.header == nil {
		st.header = append([]byte(nil), header...)
	}
	rv.mu.Unlock()
}

// recFor returns the session's intervention counters.
func (rv *wallRecovery) recFor(session int) *metrics.Recovery {
	rv.mu.Lock()
	rec := rv.stateLocked(session).rec
	rv.mu.Unlock()
	return rec
}

// noteFrame records one tile emission: the registry's emission frontier is
// what a respawned decoder resumes from, and the per-tile index lists are
// the exactly-once evidence chaos tests assert.
func (rv *wallRecovery) noteFrame(session, displayIdx, tile int) {
	rv.mu.Lock()
	st := rv.stateLocked(session)
	if tile >= 0 && tile < len(st.emitted) {
		st.emitted[tile] = append(st.emitted[tile], displayIdx)
	}
	rv.mu.Unlock()
}

// dropSession removes a closed session from the registry and the root
// retainer, returning its intervention snapshot and emission log.
func (rv *wallRecovery) dropSession(session int) (metrics.RecoverySnapshot, [][]int) {
	rv.mu.Lock()
	st := rv.sessions[session]
	delete(rv.sessions, session)
	rv.mu.Unlock()
	rv.picRet.Drop(session)
	if st == nil {
		return metrics.RecoverySnapshot{}, nil
	}
	return st.rec.Snapshot(), st.emitted
}

// splitterResume snapshots the sessions a respawned splitter must re-join.
func (rv *wallRecovery) splitterResume() []splitter.ResumeSession {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	var out []splitter.ResumeSession
	for id, st := range rv.sessions {
		if st.header != nil {
			out = append(out, splitter.ResumeSession{ID: id, Header: st.header})
		}
	}
	return out
}

// decoderResume snapshots the sessions a respawned decoder must re-join,
// with each session's emission frontier on that tile. B-picture reordering
// means the emitted indices are not contiguous: the dead incarnation's held
// anchor may be missing below indices it already emitted. The frontier is
// therefore one past the highest emitted index, and every hole below it —
// the lost held anchor — is listed for the respawned decoder to conceal-emit
// once, preserving exactly-once delivery.
func (rv *wallRecovery) decoderResume(tile int) []pdec.ResumeSession {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	var out []pdec.ResumeSession
	for id, st := range rv.sessions {
		if st.header == nil {
			continue
		}
		next := 0
		var holes []int
		if tile >= 0 && tile < len(st.emitted) {
			done := map[int]bool{}
			for _, idx := range st.emitted[tile] {
				done[idx] = true
				if idx+1 > next {
					next = idx + 1
				}
			}
			for i := 0; i < next; i++ {
				if !done[i] {
					holes = append(holes, i)
				}
			}
		}
		out = append(out, pdec.ResumeSession{ID: id, Header: st.header, NextPic: next, Holes: holes})
	}
	return out
}

func (rv *wallRecovery) nodeDown() {
	rv.mu.Lock()
	rv.down++
	rv.degraded = true
	rv.mu.Unlock()
}

func (rv *wallRecovery) nodeUp() {
	rv.mu.Lock()
	if rv.down > 0 {
		rv.down--
	}
	rv.mu.Unlock()
}

// noteSessionClose feeds the health state machine: a clean close clears the
// degraded flag, a degraded or failed one sets it.
func (rv *wallRecovery) noteSessionClose(clean bool) {
	rv.mu.Lock()
	rv.degraded = !clean
	rv.mu.Unlock()
}

func (rv *wallRecovery) health() Health {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	switch {
	case rv.down > 0:
		return Recovering
	case rv.degraded:
		return Degraded
	default:
		return Healthy
	}
}

// Health reports the wall's fault-tolerance state: Healthy on a wall without
// recovery enabled, otherwise the healthy → recovering → degraded → healthy
// machine driven by node deaths, link losses and session closes.
func (w *Wall) Health() Health {
	if w.rv == nil {
		return Healthy
	}
	return w.rv.health()
}

// Recovery returns the wall-level recovery counters' snapshot (root-side
// interventions; per-session counters ride on SessionResult.Recovery).
func (w *Wall) Recovery() metrics.RecoverySnapshot {
	if w.rv == nil {
		return metrics.RecoverySnapshot{}
	}
	return w.rv.rec.Snapshot()
}

// NoteLink feeds transport link state into the wall's health — wire it to
// cluster.TCPConfig.OnLinkState so a lost socket marks the wall Recovering
// until the redial lands. No-op without recovery enabled; safe from any
// goroutine and must not block (it does not).
func (w *Wall) NoteLink(node int, up bool) {
	if w.rv == nil {
		return
	}
	if up {
		w.rv.nodeUp()
	} else {
		w.rv.nodeDown()
	}
}

// runSplitterSupervised runs incarnations of one local splitter server until
// clean shutdown, a fatal error, or an exhausted restart budget (the node
// then stays dead and its sessions end through concealment and drain
// timeouts — never a wall abort).
func (w *Wall) runSplitterSupervised(i int) {
	rv := w.rv
	id := w.splitterIDs[i]
	lease := recovery.NewLease()
	rv.sup.Watch(id, lease)
	chaos := rv.chaos
	var resume []splitter.ResumeSession
	for {
		err := splitter.ServeSecond(w.tr.Port(id), splitter.ServeConfig{
			Index:        i,
			M:            w.cfg.M,
			N:            w.cfg.N,
			Overlap:      w.cfg.Overlap,
			DecoderNodes: w.decoderIDs,
			RootNode:     0,
			Pooled:       w.cfg.Pooled,
			SplitWorkers: w.cfg.SplitWorkers,
			OnResult:     w.onSecondResult,
			Recovery: &splitter.ServeRecovery{
				Cfg:    rv.cfg,
				Lease:  lease,
				Chaos:  chaos,
				Rec:    rv.recFor,
				OnOpen: rv.noteOpen,
				Resume: resume,
			},
		})
		if err == nil {
			return
		}
		if !errors.Is(err, recovery.ErrKilled) {
			w.tr.Abort(err)
			return
		}
		rv.nodeDown()
		if _, ok := rv.sup.AwaitRespawn(id, w.tr.Done()); !ok {
			return // budget exhausted or wall unwinding; node stays down
		}
		chaos = recovery.ChaosPlan{} // each injected kill fires once
		resume = rv.splitterResume()
		if w.hasRoot {
			// Ask the root to replay this splitter's unacked pictures; the
			// new incarnation deduplicates overlap with its surviving queue.
			select {
			case rv.respawn <- i:
			case <-w.tr.Done():
				return
			}
		}
		rv.nodeUp()
	}
}

// runDecoderSupervised is runSplitterSupervised for one local tile decoder.
// Respawned decoders are not replayed to: they resume at their emission
// frontier and conceal forward until an I picture re-anchors the chain.
func (w *Wall) runDecoderSupervised(t int) {
	rv := w.rv
	id := w.decoderIDs[t]
	lease := recovery.NewLease()
	rv.sup.Watch(id, lease)
	chaos := rv.chaos
	var resume []pdec.ResumeSession
	for {
		scfg := w.decoderServeCfg(t)
		scfg.Recovery = &pdec.ServeRecovery{
			Cfg:          rv.cfg,
			Lease:        lease,
			Chaos:        chaos,
			Rec:          rv.recFor,
			OnOpen:       rv.noteOpen,
			NumSplitters: maxInt(1, w.cfg.K),
			Resume:       resume,
		}
		err := pdec.Serve(w.tr.Port(id), scfg)
		if err == nil {
			return
		}
		if !errors.Is(err, recovery.ErrKilled) {
			w.tr.Abort(err)
			return
		}
		rv.nodeDown()
		if _, ok := rv.sup.AwaitRespawn(id, w.tr.Done()); !ok {
			return
		}
		chaos = recovery.ChaosPlan{}
		resume = rv.decoderResume(t)
		rv.nodeUp()
	}
}

// failSession fails one session in isolation (root goroutine only): the
// feeder unblocks with a typed error, and a zero-total session final sweeps
// the session's state out of every node server.
func (w *Wall) failSession(byID map[int]*Session, port cluster.Port, session int, cause string) {
	s := byID[session]
	if s == nil {
		return
	}
	delete(byID, session)
	s.fail(fmt.Errorf("%w: session %q: %s", ErrSessionFailed, s.name, cause))
	if w.cfg.K > 0 {
		for _, id := range w.splitterIDs {
			port.Send(id, &cluster.Message{
				Kind:    cluster.MsgPicture,
				Seq:     -1,
				Tag:     0,
				Flags:   cluster.FlagSessionFinal,
				Session: session,
			})
		}
	}
}
