package pdec

import (
	"fmt"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/wall"
)

// ServeConfig wires one resident tile-decoder node: a long-lived server that
// multiplexes any number of sessions, each an independent stream with its own
// sequence header, geometry and reference chain.
type ServeConfig struct {
	Tile          int
	M, N, Overlap int
	// MaxFCode sizes the halo windows of every session (HaloForFCode).
	MaxFCode int
	// TileNode maps a tile index to its fabric node id, RootNode is where
	// drain acks go when a session completes on this tile.
	TileNode func(tile int) int
	RootNode int

	UnbatchedSends bool
	Pooled         bool

	// OnFrame receives decoded tile frames in display order, per session
	// (nil when frames are not collected).
	OnFrame func(session, displayIdx, tile int, buf *mpeg2.PixelBuf)
	// OnResult receives the session's decode result when it completes on
	// this tile, before the drain ack is sent to the root.
	OnResult func(session, tile int, res *Result)
}

// server holds the node-level state shared by every session on one tile.
type server struct {
	cfg  ServeConfig
	port cluster.Port
	// sessions maps a live session id to its decoder instance.
	sessions map[int]*Decoder
	// pending buckets MsgBlocks bundles that arrived for a session other
	// than the one currently draining its RECVs (a peer one global picture
	// ahead may already be in the next session).
	pending map[int][]*cluster.Message
}

// sessionNet is the cluster.Net a per-session Decoder runs on: it stamps the
// session id on every send and filters MsgBlocks receives down to this
// session, parking other sessions' bundles in the server's pending buckets.
type sessionNet struct {
	srv     *server
	session int
}

func (s *sessionNet) ID() int { return s.srv.port.ID() }

func (s *sessionNet) Send(to int, msg *cluster.Message) {
	msg.Session = s.session
	s.srv.port.Send(to, msg)
}

func (s *sessionNet) Recv(kind cluster.MsgKind) *cluster.Message {
	if kind != cluster.MsgBlocks {
		// Sub-pictures are dispatched by the server loop, never received
		// through the shim; recovery kinds are unsupported in resident mode.
		return s.srv.port.Recv(kind)
	}
	if q := s.srv.pending[s.session]; len(q) > 0 {
		m := q[0]
		s.srv.pending[s.session] = q[1:]
		return m
	}
	for {
		m := s.srv.port.Recv(kind)
		if m == nil {
			return nil
		}
		if m.Session == s.session {
			return m
		}
		s.srv.pending[m.Session] = append(s.srv.pending[m.Session], m)
	}
}

func (s *sessionNet) TryRecv(kind cluster.MsgKind) (*cluster.Message, bool) {
	return s.srv.port.TryRecv(kind)
}

func (s *sessionNet) RecvTimeout(kind cluster.MsgKind, d time.Duration) (*cluster.Message, bool) {
	return s.srv.port.RecvTimeout(kind, d)
}

func (s *sessionNet) Done() <-chan struct{} { return s.srv.port.Done() }

// Serve runs the resident tile-decoder loop until a FlagShutdown message
// arrives (clean exit) or the transport aborts. Per-session protocol state is
// exactly the batch decoder's — a fresh Decoder per session — so a single
// session through Serve is byte-identical to a batch Run.
func Serve(port cluster.Port, cfg ServeConfig) error {
	srv := &server{
		cfg:      cfg,
		port:     port,
		sessions: map[int]*Decoder{},
		pending:  map[int][]*cluster.Message{},
	}
	for {
		t0 := time.Now()
		msg := port.Recv(cluster.MsgSubPicture)
		wait := time.Since(t0)
		if msg == nil {
			return fmt.Errorf("tile %d: fabric aborted", cfg.Tile)
		}
		switch {
		case msg.Flags&cluster.FlagShutdown != 0:
			return nil
		case msg.Flags&cluster.FlagSessionOpen != 0:
			if err := srv.open(msg); err != nil {
				return err
			}
		default:
			d := srv.sessions[msg.Session]
			if d == nil {
				// A session completes on the first Final that finds no
				// pictures owed; the other splitters' Finals trail in after
				// the state is gone. (A Final cannot precede its session's
				// open: every splitter forwards the open before anything
				// else, and sender order is preserved.)
				if msg.Flags&cluster.FlagSessionFinal != 0 {
					continue
				}
				return fmt.Errorf("tile %d: picture for unknown session %d", cfg.Tile, msg.Session)
			}
			// The receive wait belongs to the session whose message ended it
			// (batch attribution, per stream).
			d.Breakdown().Add(metrics.PhaseReceive, wait)
			done, err := d.HandleSubPicture(msg)
			if err != nil {
				return err
			}
			if done {
				srv.finish(msg.Session, d)
			}
		}
	}
}

// open creates the per-session decoder from the header prefix carried by the
// session-open message. Each splitter forwards the open once, so duplicates
// past the first are skipped.
func (srv *server) open(msg *cluster.Message) error {
	if srv.sessions[msg.Session] != nil {
		return nil
	}
	seq, err := mpeg2.ParseSequenceHeaderBytes(msg.Payload)
	if err != nil {
		return fmt.Errorf("tile %d: session %d open: %w", srv.cfg.Tile, msg.Session, err)
	}
	geo, err := wall.NewGeometry(seq.MBWidth()*16, seq.MBHeight()*16, srv.cfg.M, srv.cfg.N, srv.cfg.Overlap)
	if err != nil {
		return fmt.Errorf("tile %d: session %d open: %w", srv.cfg.Tile, msg.Session, err)
	}
	var onFrame func(int, int, *mpeg2.PixelBuf)
	if srv.cfg.OnFrame != nil {
		sess := msg.Session
		onFrame = func(displayIdx, tile int, buf *mpeg2.PixelBuf) {
			srv.cfg.OnFrame(sess, displayIdx, tile, buf)
		}
	}
	srv.sessions[msg.Session] = NewDecoder(&sessionNet{srv: srv, session: msg.Session}, Config{
		Seq:            seq,
		Geo:            geo,
		Tile:           srv.cfg.Tile,
		HaloPx:         HaloForFCode(srv.cfg.MaxFCode),
		TileNode:       srv.cfg.TileNode,
		OnFrame:        onFrame,
		UnbatchedSends: srv.cfg.UnbatchedSends,
		Pooled:         srv.cfg.Pooled,
	})
	return nil
}

// finish completes a session on this tile: flush the reorder tail, hand the
// result out, drop the state, and send the drain ack that lets the root
// close the session.
func (srv *server) finish(session int, d *Decoder) {
	res := d.Finish()
	delete(srv.sessions, session)
	delete(srv.pending, session)
	if srv.cfg.OnResult != nil {
		srv.cfg.OnResult(session, srv.cfg.Tile, res)
	}
	srv.port.Send(srv.cfg.RootNode, &cluster.Message{
		Kind:    cluster.MsgAck,
		Seq:     cluster.DrainAckSeq,
		Session: session,
	})
}
