package experiments

import (
	"fmt"
	"io"
	"time"

	"tiledwall/internal/metrics"
	"tiledwall/internal/system"
)

// Table1Row is the measured version of the paper's Table 1 comparison of
// parallelisation granularities. The paper's table is qualitative
// ("very low" ... "very high"); here every cost is measured on a real run.
type Table1Row struct {
	Level string

	// SplitMsPerPicture is the splitter CPU cost per picture.
	SplitMsPerPicture float64
	// InterDecoderKBPerPicture is reference traffic between decoders.
	InterDecoderKBPerPicture float64
	// RedistributionKBPerPicture is decoded-pixel traffic to display nodes.
	RedistributionKBPerPicture float64
	// FPS is the achieved frame rate (informational; the baselines are
	// synchronisation-light simulations of schemes the paper rejects).
	FPS float64
}

// Table1 measures all four granularities on the same content and wall
// geometry. The stream is regenerated with closed GOPs where required.
func Table1(streamID int, m, n int, o Options) ([]Table1Row, error) {
	o.defaults()
	rows := make([]Table1Row, 0, 4)

	closed, _, err := Stream(streamID, o, true)
	if err != nil {
		return nil, err
	}
	open, _, err := Stream(streamID, o, false)
	if err != nil {
		return nil, err
	}

	runBase := func(level system.BaselineLevel, data []byte) (*system.BaselineResult, error) {
		fmt.Fprintf(o.Log, "table1: %v level\n", level)
		return system.RunBaseline(data, system.BaselineConfig{Level: level, M: m, N: n})
	}

	gop, err := runBase(system.LevelGOP, closed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, baselineRow("GOP", gop))

	pic, err := runBase(system.LevelPicture, open)
	if err != nil {
		return nil, err
	}
	rows = append(rows, baselineRow("picture", pic))

	slc, err := runBase(system.LevelSlice, open)
	if err != nil {
		return nil, err
	}
	rows = append(rows, baselineRow("slice", slc))

	// Macroblock level: the paper's own scheme. Splitting cost is the
	// second-level splitter's Work time; communication is decoder-to-decoder
	// MEI traffic; there is no pixel redistribution.
	fmt.Fprintf(o.Log, "table1: macroblock level\n")
	res, err := system.Run(open, system.Config{K: 1, M: m, N: n})
	if err != nil {
		return nil, err
	}
	pics := float64(res.Throughput.Pictures)
	var inter int64
	for _, a := range res.DecoderNodeIDs {
		for _, b := range res.DecoderNodeIDs {
			inter += res.PairBytes(a, b)
		}
	}
	rows = append(rows, Table1Row{
		Level:                    "macroblock",
		SplitMsPerPicture:        res.Splitters[0].Breakdown.PerPicture(metrics.PhaseWork),
		InterDecoderKBPerPicture: float64(inter) / pics / 1024,
		// No redistribution by construction.
		RedistributionKBPerPicture: 0,
		FPS:                        res.Modeled().FPS(),
	})
	return rows, nil
}

func baselineRow(name string, r *system.BaselineResult) Table1Row {
	pics := float64(r.Throughput.Pictures)
	return Table1Row{
		Level:                      name,
		SplitMsPerPicture:          float64(r.SplitTime) / float64(time.Millisecond) / pics,
		InterDecoderKBPerPicture:   float64(r.InterDecoderBytes) / pics / 1024,
		RedistributionKBPerPicture: float64(r.RedistributionBytes) / pics / 1024,
		FPS:                        r.Modeled().FPS(),
	}
}

// PrintTable1 writes the measured comparison.
func PrintTable1(w io.Writer, label string, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1 (measured). Costs of Parallelisation Granularities — %s\n", label)
	fmt.Fprintf(w, "%-11s %14s %18s %18s %8s\n", "level", "split ms/pic", "inter-dec KB/pic", "redistrib KB/pic", "fps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %14.3f %18.1f %18.1f %8.1f\n",
			r.Level, r.SplitMsPerPicture, r.InterDecoderKBPerPicture, r.RedistributionKBPerPicture, r.FPS)
	}
}
