package cluster

// Port is the fabric surface a resident node loop programs against: the
// plain Net messaging methods plus direct access to the per-kind receive
// channels, which a multiplexing server (the service root) needs to select
// across fabric traffic and local work hand-offs.
type Port interface {
	Net
	// Queue exposes the receive channel for one kind; combine with Done for
	// abort handling. Receiving from the channel directly is equivalent to
	// TryRecv/Recv for ownership purposes: one consumer goroutine per node.
	Queue(kind MsgKind) <-chan *Message
}

// Transport is the seam between the resident pipeline and its message
// fabric. The in-process Fabric is the reference implementation; a TCP (or
// real GM/Myrinet) backend would satisfy the same contract: a fixed set of
// addressed ports with per-sender FIFO delivery, per-node and per-session
// byte accounting, and a single abort domain that unblocks every pending
// operation.
type Transport interface {
	// NumNodes returns the port count (root + splitters + decoders).
	NumNodes() int
	// Port returns the messaging endpoint of node id. Each port's receive
	// side must be driven by a single goroutine.
	Port(id int) Port
	// Stats snapshots per-node traffic counters.
	Stats() []LinkStats
	// PairBytes returns bytes sent from node a to node b.
	PairBytes(a, b int) int64
	// SessionBytes returns bytes sent on behalf of one resident session.
	SessionBytes(session int) int64
	// Done is closed when the transport aborts; Abort records the first
	// cause and unblocks every pending send/receive.
	Done() <-chan struct{}
	Abort(cause error)
	AbortCause() error
	// Shutdown releases background resources (watchdogs, connections) after
	// a clean run; it must be safe to call multiple times.
	Shutdown()
}

// Port returns the port of node id (the node itself: *Node is Net plus
// Queue).
func (f *Fabric) Port(id int) Port { return f.nodes[id] }

// Done is closed when the fabric aborts.
func (f *Fabric) Done() <-chan struct{} { return f.done }

var _ Transport = (*Fabric)(nil)
var _ Port = (*Node)(nil)
