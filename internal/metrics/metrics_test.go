package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(PhaseWork, 100*time.Millisecond)
	b.Add(PhaseServe, 50*time.Millisecond)
	b.Add(PhaseReceive, 150*time.Millisecond)
	b.Add(PhaseAck, 10*time.Millisecond)
	b.Pictures = 10

	if b.Total() != 310*time.Millisecond {
		t.Errorf("total %v", b.Total())
	}
	if b.Busy() != 160*time.Millisecond {
		t.Errorf("busy %v (waits must not count)", b.Busy())
	}
	if f := b.Fraction(PhaseWork); f < 0.32 || f > 0.33 {
		t.Errorf("work fraction %f", f)
	}
	if ms := b.PerPicture(PhaseWork); ms != 10 {
		t.Errorf("per-picture %f ms", ms)
	}
	if !strings.Contains(b.String(), "Work=10.0ms") {
		t.Errorf("String() = %q", b.String())
	}
}

func TestBreakdownZero(t *testing.T) {
	var b Breakdown
	if b.Fraction(PhaseWork) != 0 || b.PerPicture(PhaseAck) != 0 {
		t.Error("zero breakdown should report zeros")
	}
}

func TestTimed(t *testing.T) {
	var b Breakdown
	b.Timed(PhaseWaitMB, func() { time.Sleep(5 * time.Millisecond) })
	if b.Durations[PhaseWaitMB] < 4*time.Millisecond {
		t.Errorf("timed recorded %v", b.Durations[PhaseWaitMB])
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Pictures: 240, Elapsed: 8 * time.Second, PixelsPerPicture: 1920 * 1080}
	if f := tp.FPS(); f != 30 {
		t.Errorf("fps %f", f)
	}
	if r := tp.PixelRate(); r < 62.2 || r > 62.3 {
		t.Errorf("pixel rate %f", r)
	}
	// 130 Mbps at 38.9 fps is the paper's headline; sanity-check the math:
	// streamBytes such that rate = bytes*8/secs.
	if mb := tp.EquivalentBitRate(10e6); mb != 10 {
		t.Errorf("equivalent rate %f", mb)
	}
	var zero Throughput
	if zero.FPS() != 0 || zero.PixelRate() != 0 || zero.EquivalentBitRate(1) != 0 {
		t.Error("zero throughput should report zeros")
	}
}

func TestPhaseNames(t *testing.T) {
	if len(Phases()) != 5 {
		t.Fatalf("%d phases", len(Phases()))
	}
	seen := map[string]bool{}
	for _, p := range Phases() {
		name := p.String()
		if name == "" || seen[name] {
			t.Errorf("phase %d name %q", p, name)
		}
		seen[name] = true
	}
}
