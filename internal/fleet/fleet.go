// Package fleet is the front door for a farm of resident walls: one admission
// point that owns W warm service.Walls (heterogeneous geometries allowed),
// routes each Open to the least-loaded compatible wall, queues admissions
// instead of refusing them, and recycles walls whose pipeline died.
//
// The router applies the paper's DynamicBalance idea one level up: just as the
// root picks the splitter with the most credit for the next picture, the fleet
// picks the wall with the lowest load (active sessions + an EWMA of in-flight
// pictures) for the next session. Admission control turns the wall-level
// TooManySessionsError into a queue: an Open that cannot be placed waits up to
// its deadline, is granted in priority order under a weighted-credit scheme
// (so bulk traffic never starves but never crowds out interactive opens), and
// is shed with a typed AdmissionTimeoutError carrying the wall-level retry
// hint when the deadline expires.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tiledwall/internal/service"
	"tiledwall/internal/wall"
)

// RoutePolicy selects how Open picks among eligible walls.
type RoutePolicy int

const (
	// LeastLoaded routes to the eligible wall with the lowest score
	// (active sessions + EWMA in-flight pictures), with a rotating
	// tie-break so equal walls share work. The default.
	LeastLoaded RoutePolicy = iota
	// RoundRobin rotates over eligible walls regardless of load. Kept as the
	// baseline the routing property test beats, and as an escape hatch.
	RoundRobin
)

// Priority is a session's admission class. Under overload, grants are
// interleaved by weighted credits (4:2:1 interactive:standard:bulk per
// cycle), so higher classes go first but lower classes always progress.
type Priority int

const (
	Interactive Priority = iota
	Standard
	Bulk

	numClasses = 3
)

func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Standard:
		return "standard"
	case Bulk:
		return "bulk"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// classCredits is the per-cycle grant budget of each class. A grant cycle
// hands out up to 4 interactive, 2 standard, and 1 bulk admission; when every
// class with waiters is out of credit the budgets refill. Bulk therefore gets
// at least one grant per seven even under a sustained interactive flood.
var classCredits = [numClasses]int{4, 2, 1}

// Tenant is a per-tenant QoS budget, enforced at the router.
type Tenant struct {
	// MaxSessions caps the tenant's concurrently open sessions across the
	// whole fleet. 0 means unlimited.
	MaxSessions int
	// MaxInFlightPictures caps the tenant's aggregate in-flight-picture
	// reservation: each admitted session reserves its wall's per-session
	// in-flight bound against this budget, so a tenant cannot occupy more
	// pipeline backlog than it paid for no matter how it feeds. 0 means
	// unlimited.
	MaxInFlightPictures int
}

// Config configures a fleet.
type Config struct {
	// Walls are the wall shapes to spawn, one warm service.Wall each.
	// Transport and LocalNodes must be unset: the fleet owns its walls'
	// transports (it needs Abort/Done for recycling).
	Walls []service.Config

	// OpenDeadline bounds how long a queued Open waits for capacity before
	// it is shed with an AdmissionTimeoutError. Open's per-call Deadline
	// overrides it. Default 10s.
	OpenDeadline time.Duration

	// MaxQueue bounds the admission queue across all classes; an Open
	// arriving at a full queue is shed immediately (QueueFull set).
	// Default 4x the fleet's aggregate session capacity.
	MaxQueue int

	// Route selects the routing policy. Default LeastLoaded.
	Route RoutePolicy

	// Tenants maps tenant names to QoS budgets. Sessions naming an
	// unlisted tenant (or none) are unconstrained.
	Tenants map[string]Tenant

	// DisableRecycle turns off automatic wall recycling (watcher + health
	// poller still run, but never respawn). Tests use it to observe a dead
	// wall staying dead.
	DisableRecycle bool

	// HealthInterval is the health poller period: a wall observed Degraded
	// on two consecutive polls is drained and respawned. Default 250ms.
	HealthInterval time.Duration
}

var (
	// ErrFleetClosed is returned by Open after Close, and delivered to
	// waiters shed by Close.
	ErrFleetClosed = errors.New("fleet: fleet closed")
	// ErrAdmissionTimeout is the sentinel wrapped by AdmissionTimeoutError.
	ErrAdmissionTimeout = errors.New("fleet: admission timed out")
	// ErrNoCompatibleWall means no wall in the fleet can ever satisfy the
	// open's constraints (MinTiles exceeds every wall), regardless of load.
	ErrNoCompatibleWall = errors.New("fleet: no compatible wall")
)

// AdmissionTimeoutError reports a shed Open: the fleet stayed at capacity for
// the caller's whole deadline (or the queue itself was full). It wraps both
// ErrAdmissionTimeout and the wall-level TooManySessionsError so existing
// errors.Is(err, service.ErrTooManySessions) retry loops keep working, and
// Busy.RetryAfter carries the fleet's EWMA-derived backoff hint.
type AdmissionTimeoutError struct {
	// Waited is how long the open was queued before shedding (zero when
	// QueueFull).
	Waited time.Duration
	// Queued is the admission-queue depth at shed time.
	Queued int
	// QueueFull marks an immediate shed: the queue was at MaxQueue.
	QueueFull bool
	// Busy is the capacity picture at shed time, including the retry hint.
	Busy *service.TooManySessionsError
}

func (e *AdmissionTimeoutError) Error() string {
	if e.QueueFull {
		return fmt.Sprintf("%v: queue full (%d waiting, %d/%d sessions, retry after %v)",
			ErrAdmissionTimeout, e.Queued, e.Busy.Active, e.Busy.Max, e.Busy.RetryAfter)
	}
	return fmt.Sprintf("%v: waited %v (%d waiting, %d/%d sessions, retry after %v)",
		ErrAdmissionTimeout, e.Waited, e.Queued, e.Busy.Active, e.Busy.Max, e.Busy.RetryAfter)
}

func (e *AdmissionTimeoutError) Unwrap() []error {
	return []error{ErrAdmissionTimeout, e.Busy}
}

// foldEWMA folds one observation into the session-duration EWMA with the same
// 3:1 weighting the wall-level RetryAfter hint uses. A zero prev seeds from
// the observation.
func foldEWMA(prev, d time.Duration) time.Duration {
	if prev == 0 {
		return d
	}
	return (3*prev + d) / 4
}

// incarnation is one lifetime of a wall in a slot: a recycle retires the
// incarnation and installs a fresh one with gen+1.
type incarnation struct {
	w   *service.Wall
	gen int
	// active is the fleet's own count of open sessions on this incarnation,
	// guarded by Fleet.mu. It is authoritative for admission (all opens go
	// through the fleet), so the fleet never trips the wall's own limit.
	active int
	// tileLoad is the subscribed-tile load: the sum of each active session's
	// subscribed fraction of the wall (1 for full-wall sessions). Guarded by
	// Fleet.mu; the router scores on this, so windowed sessions pack.
	tileLoad float64
	// down marks the incarnation dead or draining: no further routes.
	down bool

	stop     chan struct{}
	stopOnce sync.Once
}

func (inc *incarnation) retire() { inc.stopOnce.Do(func() { close(inc.stop) }) }

// wallSlot is a stable position in the fleet: the slot's shape never changes,
// its incarnation does.
type wallSlot struct {
	idx   int
	cfg   service.Config // normalized: explicit MaxSessions/MaxInFlightPictures
	tiles int

	cur *incarnation
	// ewma smooths the wall's in-flight-picture count, sampled at every
	// scoring pass; fresh incarnations start at zero.
	ewma float64
	// recycles counts completed drain→close→respawn cycles for this slot.
	recycles int
	// degradedTicks counts consecutive health polls observing Degraded.
	degradedTicks int
}

// waiter is one queued Open. ch is buffered so grant and shed never block
// under the fleet lock; done flips under the lock so the opener's deadline
// timer and a racing grant agree on who won.
type waiter struct {
	name string
	opt  OpenOptions
	enq  time.Time
	ch   chan *Session
	done bool
	err  error
}

type tenantState struct {
	cfg      Tenant
	sessions int
	reserved int
}

// Fleet is the admission front door over a set of warm walls.
type Fleet struct {
	cfg Config

	mu     sync.Mutex
	slots  []*wallSlot
	queues [numClasses][]*waiter
	queued int
	// credits is the remaining grant budget of each class this cycle.
	credits [numClasses]int
	tenants map[string]*tenantState
	rr      int
	// avgSession is the EWMA of completed session durations, behind the
	// RetryAfter hint on shed opens.
	avgSession time.Duration

	granted  int64
	shed     int64
	recycled int64

	closed    bool
	closeOnce sync.Once
	closeErr  error

	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds the fleet and spawns every wall warm. The wall configs are
// normalized (defaults made explicit) so the router knows each wall's exact
// admission and in-flight bounds; respawns reuse the normalized config.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Walls) == 0 {
		return nil, errors.New("fleet: config needs at least one wall")
	}
	if cfg.OpenDeadline <= 0 {
		cfg.OpenDeadline = 10 * time.Second
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 250 * time.Millisecond
	}
	f := &Fleet{
		cfg:     cfg,
		credits: classCredits,
		tenants: map[string]*tenantState{},
		quit:    make(chan struct{}),
	}
	for name, t := range cfg.Tenants {
		f.tenants[name] = &tenantState{cfg: t}
	}
	capacity := 0
	for i := range cfg.Walls {
		wc := cfg.Walls[i]
		if wc.Transport != nil || wc.LocalNodes != nil {
			return nil, fmt.Errorf("fleet: wall %d: the fleet owns its walls' transports", i)
		}
		if wc.M <= 0 {
			wc.M = 1
		}
		if wc.N <= 0 {
			wc.N = 1
		}
		if wc.MaxSessions <= 0 {
			wc.MaxSessions = 8
		}
		if wc.MaxInFlightPictures <= 0 {
			wc.MaxInFlightPictures = 8
		}
		f.slots = append(f.slots, &wallSlot{idx: i, cfg: wc, tiles: wc.M * wc.N})
		capacity += wc.MaxSessions
	}
	if f.cfg.MaxQueue <= 0 {
		f.cfg.MaxQueue = 4 * capacity
	}
	for _, sl := range f.slots {
		w, err := service.New(sl.cfg)
		if err != nil {
			for _, prev := range f.slots {
				if prev.cur != nil {
					prev.cur.retire()
					prev.cur.w.Close()
				}
			}
			return nil, fmt.Errorf("fleet: wall %d: %w", sl.idx, err)
		}
		inc := &incarnation{w: w, stop: make(chan struct{})}
		sl.cur = inc
		f.wg.Add(1)
		go f.watch(sl, inc)
	}
	f.wg.Add(1)
	go f.poll()
	return f, nil
}

// OpenOptions parameterize one admission.
type OpenOptions struct {
	// Tenant names the QoS budget the session draws from; empty or unknown
	// tenants are unconstrained.
	Tenant string
	// Priority is the admission class under overload. Zero value is
	// Interactive (the highest).
	Priority Priority
	// Deadline overrides the fleet's OpenDeadline for this open.
	Deadline time.Duration
	// MinTiles restricts routing to walls with at least this many tiles.
	// With a partial Subscribe it constrains the subscription instead: the
	// session must watch at least MinTiles tiles, since that — not the wall
	// shape — is the output the caller gets.
	MinTiles int
	// Subscribe is the session's initial tile subscription, applied to the
	// admitted session before the caller sees it. Tile indices are
	// geometry-specific, so a partial set routes only to walls with exactly
	// Subscribe.Size() tiles; the router then charges the wall the subscribed
	// tile fraction rather than a whole session, so windowed sessions pack
	// densely where full-wall sessions would not. The zero value subscribes
	// the whole wall (no routing constraint, full load charge).
	Subscribe wall.TileSet
	// Trick is the session's initial trick-play mode (service.TrickNone,
	// TrickIOnly, TrickDropB), set on the admitted session before the caller
	// sees it.
	Trick service.TrickMode
}

// eligibleTiles reports whether a wall of nt tiles satisfies the open's
// geometry constraints. A partial subscription binds the open to the geometry
// the set was built for; MinTiles applies to the wall shape only when the
// session watches the whole wall.
func eligibleTiles(nt int, opt OpenOptions) bool {
	if !opt.Subscribe.Full() {
		return nt == opt.Subscribe.Size()
	}
	return nt >= opt.MinTiles
}

// loadWeight is the routing charge of one session: the fraction of the wall's
// tiles it subscribes. Full-wall sessions cost 1; a 4-of-24-tile window costs
// a sixth of that, which is (to first order) its share of the wall's decode
// work once the splitters skip unwatched tiles.
func loadWeight(tiles int, opt OpenOptions) float64 {
	if opt.Subscribe.Full() || tiles <= 0 {
		return 1
	}
	return float64(opt.Subscribe.Count()) / float64(tiles)
}

// Open admits one session: immediately when a compatible wall has room,
// otherwise queued until capacity frees or the deadline sheds it. The
// returned Session has the same Feed/Close single-goroutine contract as
// service.Session.
func (f *Fleet) Open(name string, opt OpenOptions) (*Session, error) {
	if opt.Priority < 0 || opt.Priority >= numClasses {
		return nil, fmt.Errorf("fleet: open %q: unknown priority %d", name, int(opt.Priority))
	}
	if opt.Trick < service.TrickNone || opt.Trick > service.TrickDropB {
		return nil, fmt.Errorf("fleet: open %q: unknown trick mode %d", name, int(opt.Trick))
	}
	if !opt.Subscribe.Full() {
		if opt.Subscribe.Count() == 0 {
			return nil, fmt.Errorf("fleet: open %q: empty subscription", name)
		}
		if opt.Subscribe.Count() < opt.MinTiles {
			return nil, fmt.Errorf("%w: subscription watches %d tiles, MinTiles wants %d",
				ErrNoCompatibleWall, opt.Subscribe.Count(), opt.MinTiles)
		}
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrFleetClosed
	}
	compatible := false
	for _, sl := range f.slots {
		if eligibleTiles(sl.tiles, opt) {
			compatible = true
			break
		}
	}
	if !compatible {
		f.mu.Unlock()
		if !opt.Subscribe.Full() {
			return nil, fmt.Errorf("%w: subscription is sized for a %d-tile wall",
				ErrNoCompatibleWall, opt.Subscribe.Size())
		}
		return nil, fmt.Errorf("%w: no wall has %d tiles", ErrNoCompatibleWall, opt.MinTiles)
	}
	if s, ok := f.admitLocked(name, opt); ok {
		f.granted++
		f.mu.Unlock()
		return s, nil
	}
	if f.queued >= f.cfg.MaxQueue {
		f.shed++
		err := f.admissionTimeoutLocked(0, true)
		f.mu.Unlock()
		return nil, err
	}
	wt := &waiter{name: name, opt: opt, enq: time.Now(), ch: make(chan *Session, 1)}
	f.queues[opt.Priority] = append(f.queues[opt.Priority], wt)
	f.queued++
	f.mu.Unlock()

	deadline := opt.Deadline
	if deadline <= 0 {
		deadline = f.cfg.OpenDeadline
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case s := <-wt.ch:
		if s == nil {
			return nil, wt.err
		}
		return s, nil
	case <-timer.C:
		f.mu.Lock()
		if wt.done {
			// A grant (or Close) beat the timer to the lock: honor it —
			// the session is already in the channel.
			f.mu.Unlock()
			s := <-wt.ch
			if s == nil {
				return nil, wt.err
			}
			return s, nil
		}
		f.removeWaiterLocked(wt)
		f.shed++
		err := f.admissionTimeoutLocked(time.Since(wt.enq), false)
		f.mu.Unlock()
		return nil, err
	}
}

func (f *Fleet) removeWaiterLocked(wt *waiter) {
	q := f.queues[wt.opt.Priority]
	for i, w := range q {
		if w == wt {
			f.queues[wt.opt.Priority] = append(q[:i], q[i+1:]...)
			f.queued--
			return
		}
	}
}

func (f *Fleet) admissionTimeoutLocked(waited time.Duration, full bool) *AdmissionTimeoutError {
	active, capacity := 0, 0
	for _, sl := range f.slots {
		capacity += sl.cfg.MaxSessions
		if sl.cur != nil && !sl.cur.down {
			active += sl.cur.active
		}
	}
	retry := f.avgSession
	if retry == 0 {
		retry = 100 * time.Millisecond
	} else if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	return &AdmissionTimeoutError{
		Waited:    waited,
		Queued:    f.queued,
		QueueFull: full,
		Busy: &service.TooManySessionsError{
			Active:     active,
			Max:        capacity,
			RetryAfter: retry,
		},
	}
}

// admitLocked tries to place one session now. It walks eligible walls in
// routing order; a wall whose Open fails for anything other than capacity is
// marked down (its watcher recycles it) and the next candidate is tried.
func (f *Fleet) admitLocked(name string, opt OpenOptions) (*Session, bool) {
	tried := make(map[*wallSlot]bool)
	for {
		sl := f.pickLocked(opt, tried)
		if sl == nil {
			return nil, false
		}
		tried[sl] = true
		inc := sl.cur
		s, err := inc.w.Open(name)
		if err != nil {
			if !errors.Is(err, service.ErrTooManySessions) {
				inc.down = true
			}
			continue
		}
		// The subscription and trick mode were validated in Open and the wall
		// geometry matched by eligibility, so these only fail if the wall is
		// dying under us — treat that like a failed route and move on.
		var serr error
		if !opt.Subscribe.Full() {
			serr = s.Subscribe(opt.Subscribe)
		}
		if serr == nil && opt.Trick != service.TrickNone {
			serr = s.SetTrickMode(opt.Trick)
		}
		if serr != nil {
			s.Close()
			inc.down = true
			continue
		}
		inc.active++
		weight := loadWeight(sl.tiles, opt)
		inc.tileLoad += weight
		reserve := 0
		if ts := f.tenants[opt.Tenant]; ts != nil {
			ts.sessions++
			reserve = sl.cfg.MaxInFlightPictures
			ts.reserved += reserve
		}
		return &Session{
			f:        f,
			sl:       sl,
			inc:      inc,
			s:        s,
			tenant:   opt.Tenant,
			reserve:  reserve,
			weight:   weight,
			openedAt: time.Now(),
		}, true
	}
}

// pickLocked returns the next wall to try for this open, or nil when no
// untried wall is eligible. Eligibility: incarnation up, enough tiles, below
// its session cap, and within the tenant's budgets.
func (f *Fleet) pickLocked(opt OpenOptions, tried map[*wallSlot]bool) *wallSlot {
	ts := f.tenants[opt.Tenant]
	if ts != nil {
		if ts.cfg.MaxSessions > 0 && ts.sessions >= ts.cfg.MaxSessions {
			return nil
		}
	}
	var best *wallSlot
	var bestScore float64
	n := len(f.slots)
	for off := 0; off < n; off++ {
		sl := f.slots[(f.rr+off)%n]
		if tried[sl] {
			continue
		}
		inc := sl.cur
		if inc == nil || inc.down {
			continue
		}
		if !eligibleTiles(sl.tiles, opt) {
			continue
		}
		if inc.active >= sl.cfg.MaxSessions {
			continue
		}
		if ts != nil && ts.cfg.MaxInFlightPictures > 0 &&
			ts.reserved+sl.cfg.MaxInFlightPictures > ts.cfg.MaxInFlightPictures {
			continue
		}
		if f.cfg.Route == RoundRobin {
			f.rr = (sl.idx + 1) % n
			return sl
		}
		sc := f.scoreLocked(sl)
		if best == nil || sc < bestScore {
			best, bestScore = sl, sc
		}
	}
	if best != nil {
		// Rotate the tie-break start so equally-loaded walls share work.
		f.rr = (best.idx + 1) % n
	}
	return best
}

// scoreLocked is the wall's routing load: its subscribed-tile load (each
// session charged its subscribed fraction of the wall, so a 4-of-24-tile
// window costs a sixth of a full session) plus an EWMA of its in-flight
// pictures, sampled from the lock-free Load snapshot. The blend mirrors the
// root's DynamicBalance: occupancy steers, backlog breaks ties between
// equally-occupied walls.
func (f *Fleet) scoreLocked(sl *wallSlot) float64 {
	ld := sl.cur.w.Load()
	sl.ewma = 0.75*sl.ewma + 0.25*float64(ld.InFlightPictures)
	return sl.cur.tileLoad + sl.ewma
}

// dispatchLocked grants queued opens while capacity allows.
func (f *Fleet) dispatchLocked() {
	for f.queued > 0 {
		if !f.grantOneLocked() {
			return
		}
	}
}

// grantOneLocked hands one queued open a session, honoring class credits:
// classes are scanned in priority order, skipping exhausted budgets. Budgets
// refill only when the scan was blocked by credits alone (a placeable waiter
// sat in a class with none left) — never on a capacity-blocked scan, so a
// grant cycle spans many capacity releases and the 4:2:1 interleave holds
// under sustained overload. Within a class the queue is FIFO, but a waiter
// its tenant budget blocks does not block the waiters behind it.
func (f *Fleet) grantOneLocked() bool {
	refilled := false
	for {
		creditBlocked := false
		for c := 0; c < numClasses; c++ {
			q := f.queues[c]
			if len(q) == 0 {
				continue
			}
			if f.credits[c] <= 0 {
				for _, wt := range q {
					if f.placeableLocked(wt.opt) {
						creditBlocked = true
						break
					}
				}
				continue
			}
			for i := 0; i < len(q); i++ {
				wt := q[i]
				s, ok := f.admitLocked(wt.name, wt.opt)
				if !ok {
					continue
				}
				f.queues[c] = append(q[:i], q[i+1:]...)
				f.queued--
				f.credits[c]--
				f.granted++
				wt.done = true
				wt.ch <- s
				return true
			}
		}
		if !creditBlocked || refilled {
			return false
		}
		f.credits = classCredits
		refilled = true
	}
}

// placeableLocked reports whether an open with these options could be placed
// right now — the pure check behind credit-refill decisions, with none of
// pickLocked's routing side effects.
func (f *Fleet) placeableLocked(opt OpenOptions) bool {
	ts := f.tenants[opt.Tenant]
	if ts != nil && ts.cfg.MaxSessions > 0 && ts.sessions >= ts.cfg.MaxSessions {
		return false
	}
	for _, sl := range f.slots {
		inc := sl.cur
		if inc == nil || inc.down {
			continue
		}
		if !eligibleTiles(sl.tiles, opt) || inc.active >= sl.cfg.MaxSessions {
			continue
		}
		if ts != nil && ts.cfg.MaxInFlightPictures > 0 &&
			ts.reserved+sl.cfg.MaxInFlightPictures > ts.cfg.MaxInFlightPictures {
			continue
		}
		return true
	}
	return false
}

// noteClosed releases a closed session's slot and budgets, folds its duration
// into the retry-hint EWMA, and grants waiting opens the freed capacity.
func (f *Fleet) noteClosed(s *Session) {
	f.mu.Lock()
	s.inc.active--
	s.inc.tileLoad -= s.weight
	if ts := f.tenants[s.tenant]; ts != nil {
		ts.sessions--
		ts.reserved -= s.reserve
	}
	f.avgSession = foldEWMA(f.avgSession, time.Since(s.openedAt))
	f.dispatchLocked()
	f.mu.Unlock()
}

// watch waits for an incarnation's transport to die and recycles it. retire()
// (recycle or Close) ends the watch without recycling.
func (f *Fleet) watch(sl *wallSlot, inc *incarnation) {
	defer f.wg.Done()
	select {
	case <-inc.stop:
	case <-inc.w.Transport().Done():
		f.recycle(sl, inc)
	}
}

// recycle retires an incarnation — drain (the wall's own Close waits for live
// sessions; on a dead transport the sessions fail out instead), close,
// respawn — and installs the successor. Idempotent per incarnation: the
// first caller through the guard does the work.
func (f *Fleet) recycle(sl *wallSlot, inc *incarnation) {
	f.mu.Lock()
	if sl.cur != inc {
		// Another recycle already claimed this incarnation.
		f.mu.Unlock()
		return
	}
	if f.closed || f.cfg.DisableRecycle {
		// No respawn: just take the wall out of rotation so the router
		// stops picking it. (down alone does not dedup recycles — a failed
		// route marks an incarnation down too; claiming sl.cur does.)
		inc.down = true
		f.mu.Unlock()
		return
	}
	inc.down = true
	sl.cur = nil
	f.mu.Unlock()

	inc.retire()
	inc.w.Close()

	w, err := service.New(sl.cfg)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		if err == nil {
			w.Transport().Abort(ErrFleetClosed)
			go w.Close()
		}
		return
	}
	if err != nil {
		// Respawn failed: the slot stays empty and fleet capacity shrinks;
		// nothing routes here again.
		return
	}
	ni := &incarnation{w: w, gen: inc.gen + 1, stop: make(chan struct{})}
	sl.cur = ni
	sl.ewma = 0
	sl.degradedTicks = 0
	sl.recycles++
	f.recycled++
	f.wg.Add(1)
	go f.watch(sl, ni)
	f.dispatchLocked()
}

// poll is the health loop: a wall observed Degraded on two consecutive polls
// is recycled (drained and respawned). Recovering walls are left alone —
// they are already self-healing below the fleet.
func (f *Fleet) poll() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-f.quit:
			return
		case <-t.C:
			var kick []*wallSlot
			var kickInc []*incarnation
			f.mu.Lock()
			for _, sl := range f.slots {
				inc := sl.cur
				if inc == nil || inc.down {
					continue
				}
				if inc.w.Health() == service.Degraded {
					sl.degradedTicks++
					if sl.degradedTicks >= 2 {
						kick = append(kick, sl)
						kickInc = append(kickInc, inc)
					}
				} else {
					sl.degradedTicks = 0
				}
			}
			f.mu.Unlock()
			for i, sl := range kick {
				f.recycle(sl, kickInc[i])
			}
		}
	}
}

// RecycleWall drains wall i and respawns it: the ops hook for rolling a wall
// without dropping its live sessions (its Close waits for them).
func (f *Fleet) RecycleWall(i int) error {
	f.mu.Lock()
	if i < 0 || i >= len(f.slots) {
		f.mu.Unlock()
		return fmt.Errorf("fleet: no wall %d", i)
	}
	sl := f.slots[i]
	inc := sl.cur
	f.mu.Unlock()
	if inc == nil {
		return fmt.Errorf("fleet: wall %d is already recycling", i)
	}
	f.recycle(sl, inc)
	return nil
}

// InjectWallFailure aborts wall i's transport with cause: the chaos hook
// fleet tests use to kill a wall mid-run. The watcher observes the abort and
// recycles the wall.
func (f *Fleet) InjectWallFailure(i int, cause error) error {
	f.mu.Lock()
	if i < 0 || i >= len(f.slots) {
		f.mu.Unlock()
		return fmt.Errorf("fleet: no wall %d", i)
	}
	inc := f.slots[i].cur
	f.mu.Unlock()
	if inc == nil {
		return fmt.Errorf("fleet: wall %d is already recycling", i)
	}
	inc.w.Transport().Abort(cause)
	return nil
}

// WallStats is one wall's slice of Stats.
type WallStats struct {
	Wall     int
	Grid     string // "K<k> <m>x<n>"
	Up       bool
	Health   service.Health
	Load     service.Load
	Recycles int
}

// Stats is a point-in-time fleet snapshot.
type Stats struct {
	Walls          []WallStats
	ActiveSessions int
	Capacity       int
	Queued         int
	Granted        int64
	Shed           int64
	Recycled       int64
}

// Stats snapshots the fleet.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Stats{
		Queued:   f.queued,
		Granted:  f.granted,
		Shed:     f.shed,
		Recycled: f.recycled,
	}
	for _, sl := range f.slots {
		ws := WallStats{
			Wall:     sl.idx,
			Grid:     fmt.Sprintf("K%d %dx%d", sl.cfg.K, sl.cfg.M, sl.cfg.N),
			Recycles: sl.recycles,
		}
		st.Capacity += sl.cfg.MaxSessions
		if inc := sl.cur; inc != nil && !inc.down {
			ws.Up = true
			ws.Health = inc.w.Health()
			ws.Load = inc.w.Load()
			st.ActiveSessions += inc.active
		}
		st.Walls = append(st.Walls, ws)
	}
	return st
}

// NumWalls returns the fleet's slot count (including recycling slots).
func (f *Fleet) NumWalls() int { return len(f.slots) }

// Close sheds every waiter with ErrFleetClosed, drains and closes every wall
// concurrently, and waits for the watchers and health poller to exit. Errors
// from walls that were already down (mid-recycle abort causes) are not
// surfaced; the first close error from a live wall is.
func (f *Fleet) Close() error {
	f.closeOnce.Do(func() {
		f.mu.Lock()
		f.closed = true
		close(f.quit)
		for c := range f.queues {
			for _, wt := range f.queues[c] {
				if wt.done {
					continue
				}
				wt.done = true
				wt.err = ErrFleetClosed
				wt.ch <- nil
			}
			f.queues[c] = nil
		}
		f.queued = 0
		var live []*incarnation
		var down []*incarnation
		for _, sl := range f.slots {
			if sl.cur == nil {
				continue
			}
			sl.cur.retire()
			if sl.cur.down {
				down = append(down, sl.cur)
			} else {
				live = append(live, sl.cur)
			}
			sl.cur = nil
		}
		f.mu.Unlock()

		var wg sync.WaitGroup
		var errMu sync.Mutex
		for _, inc := range live {
			wg.Add(1)
			go func(inc *incarnation) {
				defer wg.Done()
				if err := inc.w.Close(); err != nil {
					errMu.Lock()
					if f.closeErr == nil {
						f.closeErr = err
					}
					errMu.Unlock()
				}
			}(inc)
		}
		for _, inc := range down {
			wg.Add(1)
			go func(inc *incarnation) {
				defer wg.Done()
				inc.w.Close()
			}(inc)
		}
		wg.Wait()
		f.wg.Wait()
	})
	return f.closeErr
}
