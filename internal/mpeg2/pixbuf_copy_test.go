package mpeg2

import "testing"

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
	}()
	f()
}

// TestCopyRectMismatchedStride is the regression test for the silent-stride
// assumption: a PixelBuf whose planes were resliced (so the backing no
// longer matches the W×H window) must be rejected loudly instead of copying
// through the wrong row offsets.
func TestCopyRectMismatchedStride(t *testing.T) {
	src := NewPixelBuf(0, 0, 32, 32)
	dst := NewPixelBuf(0, 0, 32, 32)
	dst.CopyRect(src, 0, 0, 32, 32) // healthy buffers: fine

	// Luma plane shortened: stride math would read past row H/2.
	short := NewPixelBuf(0, 0, 32, 32)
	short.Y = short.Y[:32*16]
	mustPanic(t, "short luma src", func() { dst.CopyRect(short, 0, 0, 32, 32) })
	mustPanic(t, "short luma dst", func() { short.CopyRect(src, 0, 0, 32, 32) })

	// Plane borrowed from a buffer of different geometry: the length check
	// rejects it whenever the areas differ (equal-area different-stride
	// aliasing, e.g. 64×16 luma in a 32×32 window, is inherently invisible
	// to a length check — geometry equality at Release covers pooling, the
	// only path that rebinds planes).
	other := NewPixelBuf(0, 0, 48, 32)
	stale := NewPixelBuf(0, 0, 32, 32)
	stale.Cb = other.Cb
	mustPanic(t, "foreign chroma", func() { dst.CopyRect(stale, 0, 0, 32, 32) })

	// Chroma plane truncated.
	chop := NewPixelBuf(0, 0, 32, 32)
	chop.Cr = chop.Cr[:100]
	mustPanic(t, "short chroma", func() { dst.CopyRect(chop, 0, 0, 32, 32) })

	// CopyMacroblock guards the same way.
	mustPanic(t, "macroblock short luma", func() { dst.CopyMacroblock(short, 0, 0) })
}

func TestPixelBufPoolReuse(t *testing.T) {
	a := AcquirePixelBuf(0, 0, 32, 32)
	for i := range a.Y {
		a.Y[i] = 7
	}
	a.Release()
	b := AcquirePixelBuf(16, 16, 32, 32)
	if b.W != 32 || b.H != 32 || b.X0 != 16 || b.Y0 != 16 {
		t.Fatalf("acquired geometry %d,%d %dx%d", b.X0, b.Y0, b.W, b.H)
	}
	if len(b.Y) != 32*32 || len(b.Cb) != 32*32/4 || len(b.Cr) != 32*32/4 {
		t.Fatalf("acquired backing lengths %d/%d/%d", len(b.Y), len(b.Cb), len(b.Cr))
	}
	b.Release()

	// Distinct geometry must never alias a pooled buffer of another size.
	c := AcquirePixelBuf(0, 0, 64, 64)
	if len(c.Y) != 64*64 {
		t.Fatalf("cross-geometry pollution: len(Y)=%d", len(c.Y))
	}
	c.Release()
}

func TestPixelBufReleaseRejectsCorrupt(t *testing.T) {
	b := NewPixelBuf(0, 0, 32, 32)
	b.Y = b.Y[:8]
	mustPanic(t, "release corrupt", func() { b.Release() })
}
