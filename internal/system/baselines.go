package system

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"tiledwall/internal/bits"
	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/wall"
)

// This file implements the coarse-granularity parallelisations the paper
// compares against in Table 1. All three share the display-redistribution
// stage: decoded pixels are re-sent to the node that projects them, which is
// exactly the cost that makes these schemes unattractive for tiled walls.
//
//   - GOP level: whole (closed) GOPs round-robin to decoders; no
//     inter-decoder communication; every picture redistributed.
//   - Picture level: pictures round-robin to decoders; decoders ship whole
//     reference frames to whoever needs them (very high communication);
//     every picture redistributed.
//   - Slice level: horizontal bands of whole slices per decoder; reference
//     halo strips exchanged between neighbouring bands (moderate
//     communication); the off-band part of every picture redistributed.

// BaselineLevel selects the parallelisation granularity.
type BaselineLevel int

const (
	// LevelGOP assigns whole closed GOPs to decoders.
	LevelGOP BaselineLevel = iota
	// LevelPicture assigns whole pictures to decoders.
	LevelPicture
	// LevelSlice assigns horizontal bands of slices to decoders.
	LevelSlice
)

func (l BaselineLevel) String() string {
	switch l {
	case LevelGOP:
		return "gop"
	case LevelPicture:
		return "picture"
	case LevelSlice:
		return "slice"
	}
	return fmt.Sprintf("BaselineLevel(%d)", int(l))
}

// BaselineConfig describes a baseline run. The decoder count equals the
// display tile count (M*N), as in the paper's setup where every PC both
// decodes and drives a projector.
type BaselineConfig struct {
	Level   BaselineLevel
	M, N    int
	Overlap int
	// MaxFCode bounds halo strips for slice-level decoding (default 3).
	MaxFCode      int
	Fabric        cluster.Config
	CollectFrames bool
}

// BaselineResult reports a baseline run with the Table 1 cost columns.
type BaselineResult struct {
	Config     BaselineConfig
	Throughput metrics.Throughput

	// SplitTime is total splitter CPU time (scan/cut), the "splitting cost"
	// column of Table 1.
	SplitTime time.Duration
	// InterDecoderBytes counts reference data exchanged between decoders
	// (zero at GOP level, whole frames at picture level, halo strips at
	// slice level).
	InterDecoderBytes int64
	// RedistributionBytes counts decoded pixels shipped to display nodes.
	RedistributionBytes int64

	NodeStats []cluster.LinkStats
	Frames    []*mpeg2.PixelBuf

	// DecoderBusy is each decoder's CPU time (decode + redistribution).
	DecoderBusy []time.Duration
}

// Modeled returns the pipeline-model throughput (pictures divided by the
// busiest node's CPU time), comparable with Result.Modeled; see the comment
// there and EXPERIMENTS.md for the single-core methodology.
func (r *BaselineResult) Modeled() metrics.Throughput {
	busiest := r.SplitTime
	for _, b := range r.DecoderBusy {
		if b > busiest {
			busiest = b
		}
	}
	out := r.Throughput
	if busiest > 0 {
		out.Elapsed = busiest
	}
	return out
}

// --- pixel rectangle messages (redistribution and reference exchange) ------

const rectHeader = 4 + 2*4

func marshalRect(idx int, buf *mpeg2.PixelBuf) []byte {
	out := make([]byte, 0, rectHeader+len(buf.Y)+len(buf.Cb)+len(buf.Cr))
	out = binary.LittleEndian.AppendUint32(out, uint32(idx))
	for _, v := range []int{buf.X0, buf.Y0, buf.W, buf.H} {
		out = binary.LittleEndian.AppendUint16(out, uint16(v))
	}
	out = append(out, buf.Y...)
	out = append(out, buf.Cb...)
	out = append(out, buf.Cr...)
	return out
}

func unmarshalRect(data []byte) (int, *mpeg2.PixelBuf, error) {
	if len(data) < rectHeader {
		return 0, nil, fmt.Errorf("system: truncated rect message")
	}
	idx := int(int32(binary.LittleEndian.Uint32(data)))
	g := func(o int) int { return int(binary.LittleEndian.Uint16(data[4+2*o:])) }
	x0, y0, w, h := g(0), g(1), g(2), g(3)
	data = data[rectHeader:]
	if w <= 0 || h <= 0 || len(data) != w*h+2*(w/2)*(h/2) {
		return 0, nil, fmt.Errorf("system: rect payload size mismatch")
	}
	buf := &mpeg2.PixelBuf{X0: x0, Y0: y0, W: w, H: h}
	buf.Y = data[: w*h : w*h]
	buf.Cb = data[w*h : w*h+(w/2)*(h/2) : w*h+(w/2)*(h/2)]
	buf.Cr = data[w*h+(w/2)*(h/2):]
	return idx, buf, nil
}

// extractRect copies a tile rectangle out of a full-or-partial picture
// window.
func extractRect(src *mpeg2.PixelBuf, r wall.Rect) *mpeg2.PixelBuf {
	out := mpeg2.NewPixelBuf(r.X0, r.Y0, r.W(), r.H())
	out.CopyRect(src, r.X0, r.Y0, r.W(), r.H())
	return out
}

// --- display server ---------------------------------------------------------

// displayServer runs alongside each decoder and represents the projector
// half of the PC: it receives the redistributed pixels of its tile (remote
// via MsgPixels, local via a channel), accumulates partial rectangles until
// a display frame is complete, blits it into the display buffer, and
// optionally records it for verification. Completion is by pixel coverage,
// so a frame may arrive as one rectangle (GOP/picture level) or as several
// band slices (slice level).
type displayServer struct {
	node    *cluster.Node
	tile    wall.Rect
	total   int // display frames to complete
	local   chan localFrame
	display *mpeg2.PixelBuf

	onFrame func(displayIdx int, tile int, buf *mpeg2.PixelBuf)
	tileIdx int
}

type localFrame struct {
	displayIdx int
	buf        *mpeg2.PixelBuf // a sub-rectangle of the tile
}

func newDisplayServer(node *cluster.Node, tileIdx int, tile wall.Rect, total int, onFrame func(int, int, *mpeg2.PixelBuf)) *displayServer {
	return &displayServer{
		node:    node,
		tile:    tile,
		total:   total,
		local:   make(chan localFrame, 16),
		display: mpeg2.NewPixelBuf(tile.X0, tile.Y0, tile.W(), tile.H()),
		onFrame: onFrame,
		tileIdx: tileIdx,
	}
}

func (ds *displayServer) run() error {
	type acc struct {
		buf    *mpeg2.PixelBuf
		pixels int
	}
	want := ds.tile.W() * ds.tile.H()
	pending := map[int]*acc{}
	for completed := 0; completed < ds.total; {
		var idx int
		var buf *mpeg2.PixelBuf
		select {
		case m := <-ds.node.Queue(cluster.MsgPixels):
			var err error
			idx, buf, err = unmarshalRect(m.Payload)
			if err != nil {
				return err
			}
		case lf := <-ds.local:
			idx, buf = lf.displayIdx, lf.buf
		case <-ds.node.Done():
			return fmt.Errorf("system: display %d aborted", ds.tileIdx)
		}
		a := pending[idx]
		if a == nil {
			a = &acc{buf: mpeg2.NewPixelBuf(ds.tile.X0, ds.tile.Y0, ds.tile.W(), ds.tile.H())}
			pending[idx] = a
		}
		a.buf.CopyRect(buf, buf.X0, buf.Y0, buf.W, buf.H)
		a.pixels += buf.W * buf.H
		if a.pixels > want {
			return fmt.Errorf("system: display %d frame %d over-covered", ds.tileIdx, idx)
		}
		if a.pixels == want {
			ds.display.CopyRect(a.buf, ds.tile.X0, ds.tile.Y0, ds.tile.W(), ds.tile.H())
			if ds.onFrame != nil {
				ds.onFrame(idx, ds.tileIdx, a.buf)
			}
			delete(pending, idx)
			completed++
		}
	}
	return nil
}

// redistribute ships the part of one decoded picture that src covers to the
// display nodes, clipped to region (pass the full picture rectangle for
// whole-frame sources). Returns the remote byte count.
func redistribute(node *cluster.Node, geo *wall.Geometry, displayIdx int, src *mpeg2.PixelBuf,
	region wall.Rect, tileNode func(int) int, self *displayServer) int64 {
	var remote int64
	for t := 0; t < geo.NumTiles(); t++ {
		r, ok := geo.Tile(t).Intersect(region)
		if !ok {
			continue
		}
		if self != nil && t == self.tileIdx {
			self.local <- localFrame{displayIdx, extractRect(src, r)}
			continue
		}
		payload := marshalRect(displayIdx, extractRect(src, r))
		remote += int64(len(payload))
		node.Send(tileNode(t), &cluster.Message{Kind: cluster.MsgPixels, Seq: displayIdx, Payload: payload})
	}
	return remote
}

// displayOrder computes, for each decode-order picture index, its display
// position (the serial decoder's reordering, precomputed).
func displayOrder(types []mpeg2.PictureType) []int {
	order := make([]int, len(types))
	next := 0
	pendingAnchor := -1
	for i, t := range types {
		if t == mpeg2.PictureB {
			order[i] = next
			next++
			continue
		}
		if pendingAnchor >= 0 {
			order[pendingAnchor] = next
			next++
		}
		pendingAnchor = i
	}
	if pendingAnchor >= 0 {
		order[pendingAnchor] = next
	}
	return order
}

// RunBaseline executes one Table 1 baseline pipeline.
func RunBaseline(stream []byte, cfg BaselineConfig) (*BaselineResult, error) {
	if cfg.MaxFCode == 0 {
		cfg.MaxFCode = 3
	}
	s, err := mpeg2.ParseStream(stream)
	if err != nil {
		return nil, err
	}
	picW, picH := s.Seq.MBWidth()*16, s.Seq.MBHeight()*16
	geo, err := wall.NewGeometry(picW, picH, cfg.M, cfg.N, cfg.Overlap)
	if err != nil {
		return nil, err
	}
	switch cfg.Level {
	case LevelGOP:
		return runGOPLevel(stream, s, geo, cfg)
	case LevelPicture:
		return runPictureLevel(stream, s, geo, cfg)
	case LevelSlice:
		return runSliceLevel(s, geo, cfg)
	}
	return nil, fmt.Errorf("system: unknown baseline level %d", cfg.Level)
}

// baselineHarness wires 1 splitter node + D decoder/display nodes and runs
// the given per-role functions, collecting frames and stats.
type baselineHarness struct {
	fab       *cluster.Fabric
	geo       *wall.Geometry
	s         *mpeg2.Stream
	cfg       BaselineConfig
	collector *frameCollector
	servers   []*displayServer
	res       *BaselineResult
}

func newBaselineHarness(s *mpeg2.Stream, geo *wall.Geometry, cfg BaselineConfig) *baselineHarness {
	d := geo.NumTiles()
	h := &baselineHarness{
		fab: cluster.New(1+d, cfg.Fabric),
		geo: geo,
		s:   s,
		cfg: cfg,
		res: &BaselineResult{Config: cfg},
	}
	var onFrame func(int, int, *mpeg2.PixelBuf)
	if cfg.CollectFrames {
		h.collector = newFrameCollector(geo)
		onFrame = func(displayIdx, tile int, buf *mpeg2.PixelBuf) {
			// The collector assumes per-tile emission order equals display
			// order; baseline servers receive out of order, so index
			// explicitly.
			h.collector.onIndexedFrame(displayIdx, tile, buf)
		}
	}
	for t := 0; t < d; t++ {
		h.servers = append(h.servers, newDisplayServer(h.fab.Node(1+t), t, geo.Tile(t), len(s.Pictures), onFrame))
	}
	return h
}

func (h *baselineHarness) decoderNode(t int) int { return 1 + t }

// run launches the splitter function and one decoder function per node plus
// the display servers, waits, and finalises the result.
func (h *baselineHarness) run(split func(node *cluster.Node) error,
	decode func(t int, node *cluster.Node, ds *displayServer) error) (*BaselineResult, error) {

	defer h.fab.Shutdown()
	d := h.geo.NumTiles()
	h.res.DecoderBusy = make([]time.Duration, d)
	errs := make([]error, 1+2*d)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = split(h.fab.Node(0))
		if errs[0] != nil {
			h.fab.Abort(errs[0])
		}
	}()
	for t := 0; t < d; t++ {
		t := t
		wg.Add(2)
		go func() {
			defer wg.Done()
			errs[1+t] = decode(t, h.fab.Node(h.decoderNode(t)), h.servers[t])
			if errs[1+t] != nil {
				h.fab.Abort(errs[1+t])
			}
		}()
		go func() {
			defer wg.Done()
			errs[1+d+t] = h.servers[t].run()
			if errs[1+d+t] != nil {
				h.fab.Abort(errs[1+d+t])
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if cause := h.fab.AbortCause(); cause != nil {
		return h.res, cause
	}
	for _, e := range errs {
		if e != nil {
			return h.res, e
		}
	}
	h.res.Throughput = metrics.Throughput{
		Pictures:         len(h.s.Pictures),
		Elapsed:          elapsed,
		PixelsPerPicture: int64(h.geo.PicW) * int64(h.geo.PicH),
	}
	h.res.NodeStats = h.fab.Stats()
	if h.collector != nil {
		frames, err := h.collector.assembleIndexed(len(h.s.Pictures))
		if err != nil {
			return h.res, err
		}
		h.res.Frames = frames
	}
	return h.res, nil
}

// --- GOP level ---------------------------------------------------------------

func runGOPLevel(stream []byte, s *mpeg2.Stream, geo *wall.Geometry, cfg BaselineConfig) (*BaselineResult, error) {
	h := newBaselineHarness(s, geo, cfg)
	d := geo.NumTiles()
	var redistBytes int64
	var redistMu sync.Mutex

	split := func(node *cluster.Node) error {
		// Scan GOP boundaries and count pictures per GOP (start codes only).
		t0 := time.Now()
		type gopUnit struct {
			start, end  int
			displayBase int
		}
		var gops []gopUnit
		displayBase := 0
		gopStart := -1
		gopPics := 0
		flush := func(end int) {
			if gopStart >= 0 {
				gops = append(gops, gopUnit{gopStart, end, displayBase})
				displayBase += gopPics
			}
			gopStart = -1
			gopPics = 0
		}
		for off := bits.NextStartCode(stream, 0); off >= 0; off = bits.NextStartCode(stream, off+4) {
			switch c := stream[off+3]; {
			case c == bits.GroupStartCode:
				flush(off)
				gopStart = off
			case c == bits.PictureStartCode:
				if gopStart < 0 {
					return fmt.Errorf("system: GOP-level split found a picture outside any GOP")
				}
				gopPics++
			case c == bits.SequenceEndCode, c == bits.SequenceHeaderCod && off > 0:
				flush(off)
			}
		}
		flush(len(stream))
		h.res.SplitTime += time.Since(t0)

		// Round-robin with a 2-unit credit window per decoder.
		outstanding := make([]int, d)
		for i, g := range gops {
			t := i % d
			for outstanding[t] >= 2 {
				m := node.Recv(cluster.MsgAck)
				if m == nil {
					return fmt.Errorf("system: GOP splitter aborted")
				}
				outstanding[m.From-1]--
			}
			buf := make([]byte, g.end-g.start)
			t0 = time.Now()
			copy(buf, stream[g.start:g.end])
			h.res.SplitTime += time.Since(t0)
			node.Send(h.decoderNode(t), &cluster.Message{Kind: cluster.MsgPicture, Seq: g.displayBase, Payload: buf})
			outstanding[t]++
		}
		for t := 0; t < d; t++ {
			node.Send(h.decoderNode(t), &cluster.Message{Kind: cluster.MsgPicture, Seq: -1})
		}
		return nil
	}

	decode := func(t int, node *cluster.Node, ds *displayServer) error {
		tileNode := func(tt int) int { return h.decoderNode(tt) }
		for {
			msg := node.Recv(cluster.MsgPicture)
			if msg == nil {
				return fmt.Errorf("system: GOP decoder %d aborted", t)
			}
			if msg.Seq < 0 {
				return nil
			}
			t0 := time.Now()
			units := mpeg2.IndexPictureUnits(msg.Payload)
			dec := mpeg2.NewStreamDecoder(&mpeg2.Stream{Seq: s.Seq, Pictures: units, Data: msg.Payload})
			pics, err := dec.DecodeAll()
			if err != nil {
				return fmt.Errorf("system: GOP decoder %d: %w", t, err)
			}
			full := wall.Rect{X0: 0, Y0: 0, X1: geo.PicW, Y1: geo.PicH}
			for j, p := range pics {
				n := redistribute(node, geo, msg.Seq+j, p.Buf, full, tileNode, ds)
				redistMu.Lock()
				redistBytes += n
				redistMu.Unlock()
			}
			h.res.DecoderBusy[t] += time.Since(t0)
			node.Send(0, &cluster.Message{Kind: cluster.MsgAck})
		}
	}

	res, err := h.run(split, decode)
	res.RedistributionBytes = redistBytes
	return res, err
}

// --- picture level -----------------------------------------------------------

// pictureMeta is the side information the picture-level splitter attaches to
// each picture unit.
type pictureMeta struct {
	picIdx, displayIdx int
	fwdIdx, bwdIdx     int   // decode-order indices of references (-1 none)
	consumers          []int // node ids that need this decoded frame as a reference
}

func (m *pictureMeta) marshal(unit []byte) []byte {
	out := make([]byte, 0, 18+2*len(m.consumers)+len(unit))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(m.picIdx)))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(m.displayIdx)))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(m.fwdIdx)))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(m.bwdIdx)))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.consumers)))
	for _, c := range m.consumers {
		out = binary.LittleEndian.AppendUint16(out, uint16(c))
	}
	return append(out, unit...)
}

func parsePictureMeta(data []byte) (*pictureMeta, []byte, error) {
	if len(data) < 18 {
		return nil, nil, fmt.Errorf("system: truncated picture meta")
	}
	m := &pictureMeta{
		picIdx:     int(int32(binary.LittleEndian.Uint32(data))),
		displayIdx: int(int32(binary.LittleEndian.Uint32(data[4:]))),
		fwdIdx:     int(int32(binary.LittleEndian.Uint32(data[8:]))),
		bwdIdx:     int(int32(binary.LittleEndian.Uint32(data[12:]))),
	}
	n := int(binary.LittleEndian.Uint16(data[16:]))
	data = data[18:]
	if len(data) < 2*n {
		return nil, nil, fmt.Errorf("system: truncated consumer list")
	}
	for i := 0; i < n; i++ {
		m.consumers = append(m.consumers, int(binary.LittleEndian.Uint16(data[2*i:])))
	}
	return m, data[2*n:], nil
}

func runPictureLevel(stream []byte, s *mpeg2.Stream, geo *wall.Geometry, cfg BaselineConfig) (*BaselineResult, error) {
	h := newBaselineHarness(s, geo, cfg)
	d := geo.NumTiles()
	var interBytes, redistBytes int64
	var mu sync.Mutex

	split := func(node *cluster.Node) error {
		t0 := time.Now()
		// Peek types (cheap: a few header bits per picture).
		types := make([]mpeg2.PictureType, len(s.Pictures))
		for i, u := range s.Pictures {
			pt, err := mpeg2.PeekPictureType(u)
			if err != nil {
				return err
			}
			types[i] = pt
		}
		disp := displayOrder(types)
		// Reference indices per picture and consumer lists per anchor.
		metas := make([]pictureMeta, len(types))
		consumers := make([][]int, len(types))
		nodeOf := func(p int) int { return h.decoderNode(p % d) }
		refA, refB := -1, -1
		for i, t := range types {
			m := &metas[i]
			m.picIdx, m.displayIdx = i, disp[i]
			m.fwdIdx, m.bwdIdx = -1, -1
			switch t {
			case mpeg2.PictureP:
				m.fwdIdx = refB
			case mpeg2.PictureB:
				m.fwdIdx, m.bwdIdx = refA, refB
			}
			for _, r := range []int{m.fwdIdx, m.bwdIdx} {
				if r >= 0 && nodeOf(r) != nodeOf(i) {
					consumers[r] = append(consumers[r], nodeOf(i))
				}
			}
			if t != mpeg2.PictureB {
				refA, refB = refB, i
			}
		}
		for i := range metas {
			metas[i].consumers = consumers[i]
		}
		h.res.SplitTime += time.Since(t0)

		outstanding := make([]int, d)
		for i, unit := range s.Pictures {
			t := i % d
			for outstanding[t] >= 2 {
				m := node.Recv(cluster.MsgAck)
				if m == nil {
					return fmt.Errorf("system: picture splitter aborted")
				}
				outstanding[m.From-1]--
			}
			t0 = time.Now()
			payload := metas[i].marshal(unit)
			h.res.SplitTime += time.Since(t0)
			node.Send(h.decoderNode(t), &cluster.Message{Kind: cluster.MsgPicture, Seq: i, Payload: payload})
			outstanding[t]++
		}
		for t := 0; t < d; t++ {
			node.Send(h.decoderNode(t), &cluster.Message{Kind: cluster.MsgPicture, Seq: -1})
		}
		return nil
	}

	decode := func(t int, node *cluster.Node, ds *displayServer) error {
		tileNode := func(tt int) int { return h.decoderNode(tt) }
		w, hgt := geo.PicW, geo.PicH
		refs := map[int]*mpeg2.PixelBuf{} // decode-index -> full frame (remote or local)
		waitRef := func(idx int) (*mpeg2.PixelBuf, error) {
			for {
				if f, ok := refs[idx]; ok {
					return f, nil
				}
				m := node.Recv(cluster.MsgSubPicture)
				if m == nil {
					return nil, fmt.Errorf("system: picture decoder %d aborted", t)
				}
				ridx, buf, err := unmarshalRect(m.Payload)
				if err != nil {
					return nil, err
				}
				refs[ridx] = buf
			}
		}
		for {
			msg := node.Recv(cluster.MsgPicture)
			if msg == nil {
				return fmt.Errorf("system: picture decoder %d aborted", t)
			}
			if msg.Seq < 0 {
				return nil
			}
			meta, unit, err := parsePictureMeta(msg.Payload)
			if err != nil {
				return err
			}
			t0 := time.Now()
			var fwd, bwd *mpeg2.PixelBuf
			if meta.fwdIdx >= 0 {
				if fwd, err = waitRef(meta.fwdIdx); err != nil {
					return err
				}
			}
			if meta.bwdIdx >= 0 {
				if bwd, err = waitRef(meta.bwdIdx); err != nil {
					return err
				}
			}
			dst := mpeg2.NewPixelBuf(0, 0, w, hgt)
			if _, err := mpeg2.DecodePictureUnit(s.Seq, unit, fwd, bwd, dst); err != nil {
				return fmt.Errorf("system: picture decoder %d pic %d: %w", t, meta.picIdx, err)
			}
			refs[meta.picIdx] = dst
			// Ship the whole frame to every consumer: the "very high"
			// communication column of Table 1.
			sentTo := map[int]bool{}
			for _, c := range meta.consumers {
				if sentTo[c] {
					continue
				}
				sentTo[c] = true
				payload := marshalRect(meta.picIdx, dst)
				mu.Lock()
				interBytes += int64(len(payload))
				mu.Unlock()
				node.Send(c, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: meta.picIdx, Payload: payload})
			}
			full := wall.Rect{X0: 0, Y0: 0, X1: geo.PicW, Y1: geo.PicH}
			n := redistribute(node, geo, meta.displayIdx, dst, full, tileNode, ds)
			mu.Lock()
			redistBytes += n
			mu.Unlock()
			h.res.DecoderBusy[t] += time.Since(t0)
			node.Send(0, &cluster.Message{Kind: cluster.MsgAck})
			// Bounded reference cache: drop frames older than the window.
			for k := range refs {
				if k < meta.picIdx-3*d {
					delete(refs, k)
				}
			}
		}
	}

	res, err := h.run(split, decode)
	res.InterDecoderBytes = interBytes
	res.RedistributionBytes = redistBytes
	return res, err
}

// --- slice level --------------------------------------------------------------

func runSliceLevel(s *mpeg2.Stream, geo *wall.Geometry, cfg BaselineConfig) (*BaselineResult, error) {
	h := newBaselineHarness(s, geo, cfg)
	d := geo.NumTiles()
	mbH := s.Seq.MBHeight()
	if mbH < d {
		return nil, fmt.Errorf("system: %d bands need at least %d macroblock rows", d, mbH)
	}
	var interBytes, redistBytes int64
	var mu sync.Mutex
	haloRows := (pdecHalo(cfg.MaxFCode) + 15) / 16

	bandOf := func(t int) (int, int) { // inclusive mb-row range of band t
		r0 := t * mbH / d
		r1 := (t+1)*mbH/d - 1
		return r0, r1
	}
	// The halo-strip exchange only reaches one band over; every band must be
	// at least as tall as the motion reach.
	for t := 0; t < d; t++ {
		if r0, r1 := bandOf(t); r1-r0+1 < haloRows {
			return nil, fmt.Errorf("system: band %d is %d rows but motion reach needs %d; use fewer bands or a taller picture",
				t, r1-r0+1, haloRows)
		}
	}

	split := func(node *cluster.Node) error {
		outstanding := make([]int, d)
		for i, unit := range s.Pictures {
			// Cut the unit into per-band work units: picture header bytes +
			// the byte range of the band's slices (start codes only — the
			// "very low" splitting cost of Table 1).
			t0 := time.Now()
			type cutRange struct{ start, end int }
			cuts := make([]cutRange, d)
			for b := range cuts {
				cuts[b] = cutRange{-1, -1}
			}
			headerEnd := len(unit)
			for off := bits.NextStartCode(unit, 0); off >= 0; off = bits.NextStartCode(unit, off+3) {
				c := unit[off+3]
				if !bits.IsSliceStartCode(c) {
					continue
				}
				if headerEnd == len(unit) {
					headerEnd = off
				}
				row := int(c) - 1
				if s.Seq.Height > 2800 {
					// Tall pictures: 3-bit vertical position extension
					// immediately after the start code carries the high bits.
					ext := int(unit[off+4] >> 5)
					row = (ext << 7) + ((int(c) - 1) & 0x7F)
				}
				for b := 0; b < d; b++ {
					r0, r1 := bandOf(b)
					if row >= r0 && row <= r1 {
						if cuts[b].start < 0 {
							cuts[b].start = off
						}
						cuts[b].end = len(unit) // provisional; tightened below
					}
				}
			}
			// Tighten ends: each band's slices are contiguous, so a band's
			// range ends where the next band's begins.
			for b := 0; b < d; b++ {
				for nb := b + 1; nb < d; nb++ {
					if cuts[nb].start >= 0 {
						if cuts[b].start >= 0 {
							cuts[b].end = cuts[nb].start
						}
						break
					}
				}
			}
			h.res.SplitTime += time.Since(t0)

			for b := 0; b < d; b++ {
				for outstanding[b] >= 2 {
					m := node.Recv(cluster.MsgAck)
					if m == nil {
						return fmt.Errorf("system: slice splitter aborted")
					}
					outstanding[m.From-1]--
				}
				t0 = time.Now()
				var payload []byte
				payload = append(payload, unit[:headerEnd]...)
				if cuts[b].start >= 0 {
					payload = append(payload, unit[cuts[b].start:cuts[b].end]...)
				}
				h.res.SplitTime += time.Since(t0)
				node.Send(h.decoderNode(b), &cluster.Message{Kind: cluster.MsgPicture, Seq: i, Payload: payload})
				outstanding[b]++
			}
		}
		for b := 0; b < d; b++ {
			node.Send(h.decoderNode(b), &cluster.Message{Kind: cluster.MsgPicture, Seq: -1})
		}
		return nil
	}

	decode := func(t int, node *cluster.Node, ds *displayServer) error {
		tileNode := func(tt int) int { return h.decoderNode(tt) }
		r0, r1 := bandOf(t)
		y0 := r0 * 16
		y1 := (r1 + 1) * 16
		// Extended windows: band plus halo strips above and below.
		ey0, ey1 := y0-haloRows*16, y1+haloRows*16
		if ey0 < 0 {
			ey0 = 0
		}
		if ey1 > geo.PicH {
			ey1 = geo.PicH
		}
		newBuf := func() *mpeg2.PixelBuf { return mpeg2.NewPixelBuf(0, ey0, geo.PicW, ey1-ey0) }
		bufs := []*mpeg2.PixelBuf{newBuf(), newBuf(), newBuf()}
		cur, refA, refB := 0, -1, -1

		// Display reordering state (mirrors the serial decoder).
		nextDisp := 0
		var held *mpeg2.PixelBuf
		band := wall.Rect{X0: 0, Y0: y0, X1: geo.PicW, Y1: y1}
		emit := func(buf *mpeg2.PixelBuf) {
			n := redistribute(node, geo, nextDisp, buf, band, tileNode, ds)
			mu.Lock()
			redistBytes += n
			mu.Unlock()
			nextDisp++
		}

		// exchange sends this band's edge strips of the just-decoded anchor
		// to its neighbours, tagged with the anchor's decode index.
		exchange := func(picIdx int, buf *mpeg2.PixelBuf) {
			for _, nb := range []int{t - 1, t + 1} {
				if nb < 0 || nb >= d {
					continue
				}
				var sy int
				if nb < t {
					sy = y0 // top strip
				} else {
					sy = y1 - haloRows*16
				}
				strip := mpeg2.NewPixelBuf(0, sy, geo.PicW, haloRows*16)
				strip.CopyRect(buf, 0, sy, geo.PicW, haloRows*16)
				payload := marshalRect(picIdx, strip)
				mu.Lock()
				interBytes += int64(len(payload))
				mu.Unlock()
				node.Send(h.decoderNode(nb), &cluster.Message{Kind: cluster.MsgHalo, Seq: picIdx, Payload: payload})
			}
		}
		// expect strips for the given anchor into the given buffer.
		stash := map[int][]*mpeg2.PixelBuf{}
		collect := func(picIdx int, into *mpeg2.PixelBuf, want int) error {
			apply := func(buf *mpeg2.PixelBuf) {
				into.CopyRect(buf, buf.X0, buf.Y0, buf.W, buf.H)
			}
			for _, b := range stash[picIdx] {
				apply(b)
				want--
			}
			delete(stash, picIdx)
			for want > 0 {
				m := node.Recv(cluster.MsgHalo)
				if m == nil {
					return fmt.Errorf("system: band %d aborted waiting for halo", t)
				}
				idx, buf, err := unmarshalRect(m.Payload)
				if err != nil {
					return err
				}
				if idx == picIdx {
					apply(buf)
					want--
				} else {
					stash[idx] = append(stash[idx], buf)
				}
			}
			return nil
		}
		neighbours := 0
		if t > 0 {
			neighbours++
		}
		if t < d-1 {
			neighbours++
		}

		for {
			msg := node.Recv(cluster.MsgPicture)
			if msg == nil {
				return fmt.Errorf("system: band decoder %d aborted", t)
			}
			if msg.Seq < 0 {
				if held != nil {
					emit(held)
					held = nil
				}
				return nil
			}
			picIdx := msg.Seq
			t0 := time.Now()
			pt, err := mpeg2.PeekPictureType(msg.Payload)
			if err != nil {
				return err
			}
			var fwd, bwd *mpeg2.PixelBuf
			switch pt {
			case mpeg2.PictureP:
				if refB < 0 {
					return fmt.Errorf("system: band %d: P before anchor", t)
				}
				fwd = bufs[refB]
			case mpeg2.PictureB:
				if refA < 0 || refB < 0 {
					return fmt.Errorf("system: band %d: B without two anchors", t)
				}
				fwd, bwd = bufs[refA], bufs[refB]
			}
			dst := bufs[cur]
			if _, err := mpeg2.DecodePictureUnitBand(s.Seq, msg.Payload, fwd, bwd, dst, r0, r1); err != nil {
				return fmt.Errorf("system: band %d pic %d: %w", t, picIdx, err)
			}
			bandView := mpeg2.NewPixelBuf(0, y0, geo.PicW, y1-y0)
			bandView.CopyRect(dst, 0, y0, geo.PicW, y1-y0)
			h.res.DecoderBusy[t] += time.Since(t0)
			node.Send(0, &cluster.Message{Kind: cluster.MsgAck})

			if pt == mpeg2.PictureB {
				emit(bandView)
			} else {
				// Exchange halo strips of the new anchor, then collect the
				// neighbours' strips into it before it is used as reference.
				exchange(picIdx, dst)
				if err := collect(picIdx, dst, neighbours); err != nil {
					return err
				}
				if held != nil {
					emit(held)
				}
				held = bandView
				old := refA
				refA, refB = refB, cur
				if old >= 0 {
					cur = old
				} else {
					for i := 0; i < 3; i++ {
						if i != refA && i != refB {
							cur = i
						}
					}
				}
			}
		}
	}

	res, err := h.run(split, decode)
	res.InterDecoderBytes = interBytes
	res.RedistributionBytes = redistBytes
	return res, err
}

// pdecHalo mirrors pdec.HaloForFCode without importing pdec (avoiding an
// import cycle is not the issue — keeping baselines self-contained is).
func pdecHalo(fcode int) int {
	if fcode < 1 {
		fcode = 1
	}
	reach := (16 << uint(fcode-1)) / 2
	return (reach + 16 + 15) &^ 15
}
