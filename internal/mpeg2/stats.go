package mpeg2

import (
	"fmt"

	"tiledwall/internal/bits"
)

// PictureStats summarises a picture's macroblock population — what the
// second-level splitter effectively learns while splitting. It drives
// cmd/mpeg2info -stats and the content-analysis experiments.
type PictureStats struct {
	Type    PictureType
	Slices  int
	Intra   int
	Inter   int
	Skipped int
	Coded   int // macroblocks with at least one coded block
	Bits    int // total macroblock-layer bits

	// MaxMV is the largest absolute motion component (half-sample units).
	MaxMV int32
	// AvgQuant is the mean quantiser_scale_code over coded macroblocks.
	AvgQuant float64
}

// MBs returns the total macroblocks accounted for.
func (s *PictureStats) MBs() int { return s.Intra + s.Inter + s.Skipped }

// CollectPictureStats parses one picture unit (VLD only, no pixels).
func CollectPictureStats(seq *SequenceHeader, unit []byte) (*PictureStats, error) {
	ph, sliceOff, err := ParsePictureUnit(unit)
	if err != nil {
		return nil, err
	}
	ctx, err := NewPictureContext(seq, ph)
	if err != nil {
		return nil, err
	}
	st := &PictureStats{Type: ph.PicType}
	var quantSum int64

	r := bits.NewReader(unit)
	r.SeekBit(sliceOff)
	for bits.NextStartCodeReader(r) {
		pos := r.BitPos() / 8
		code := unit[pos+3]
		if !bits.IsSliceStartCode(code) {
			break
		}
		r.Skip(32)
		vpos := int(code)
		if seq.Height > 2800 {
			vpos = int(r.Read(3))<<7 + vpos
		}
		sd, err := NewSliceDecoder(ctx, r, vpos)
		if err != nil {
			return nil, err
		}
		sd.SetParseOnly(true)
		st.Slices++
		var mb Macroblock
		for {
			ok, err := sd.Next(&mb)
			if err != nil {
				return nil, fmt.Errorf("stats slice %d: %w", vpos, err)
			}
			if !ok {
				break
			}
			st.Skipped += mb.SkippedBefore
			if mb.Intra() {
				st.Intra++
			} else {
				st.Inter++
			}
			if mb.CBP != 0 {
				st.Coded++
			}
			st.Bits += mb.BitEnd - mb.BitStart
			quantSum += int64(mb.QuantCode)
			for _, v := range []int32{mb.MVFwd[0], mb.MVFwd[1], mb.MVBwd[0], mb.MVBwd[1]} {
				if v < 0 {
					v = -v
				}
				if v > st.MaxMV {
					st.MaxMV = v
				}
			}
		}
	}
	if n := st.Intra + st.Inter; n > 0 {
		st.AvgQuant = float64(quantSum) / float64(n)
	}
	return st, nil
}

// StreamStats aggregates per-type totals across a stream.
type StreamStats struct {
	Pictures map[PictureType]int
	Stats    map[PictureType]PictureStats // summed fields
}

// CollectStreamStats runs CollectPictureStats over every picture.
func CollectStreamStats(s *Stream) (*StreamStats, error) {
	out := &StreamStats{
		Pictures: map[PictureType]int{},
		Stats:    map[PictureType]PictureStats{},
	}
	for i, unit := range s.Pictures {
		ps, err := CollectPictureStats(s.Seq, unit)
		if err != nil {
			return nil, fmt.Errorf("picture %d: %w", i, err)
		}
		out.Pictures[ps.Type]++
		acc := out.Stats[ps.Type]
		acc.Type = ps.Type
		acc.Slices += ps.Slices
		acc.Intra += ps.Intra
		acc.Inter += ps.Inter
		acc.Skipped += ps.Skipped
		acc.Coded += ps.Coded
		acc.Bits += ps.Bits
		if ps.MaxMV > acc.MaxMV {
			acc.MaxMV = ps.MaxMV
		}
		acc.AvgQuant += ps.AvgQuant // averaged on output
		out.Stats[ps.Type] = acc
	}
	return out, nil
}

// Format renders the aggregate as the table cmd/mpeg2info -stats prints.
func (ss *StreamStats) Format() string {
	out := fmt.Sprintf("%-5s %5s %8s %8s %8s %8s %10s %7s %6s\n",
		"type", "pics", "intra", "inter", "skipped", "coded", "kbits/pic", "maxMV", "avgQ")
	for _, t := range []PictureType{PictureI, PictureP, PictureB} {
		n := ss.Pictures[t]
		if n == 0 {
			continue
		}
		a := ss.Stats[t]
		out += fmt.Sprintf("%-5s %5d %8d %8d %8d %8d %10.1f %7d %6.1f\n",
			t, n, a.Intra, a.Inter, a.Skipped, a.Coded,
			float64(a.Bits)/float64(n)/1000, a.MaxMV, a.AvgQuant/float64(n))
	}
	return out
}
