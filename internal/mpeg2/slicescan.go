package mpeg2

import "tiledwall/internal/bits"

// SliceRef locates one slice inside a picture unit. MPEG-2 slices begin with
// byte-aligned start codes and each slice header resets the DC predictors,
// the motion vector predictors and the quantiser scale (ISO 13818-2 §6.3.16),
// so a slice located by SliceRef can be parsed with no state from its
// predecessors — the property the slice-parallel splitter is built on.
type SliceRef struct {
	// HeaderBit is the absolute bit offset of the slice header within the
	// unit: just past the 32-bit start code and, for pictures taller than
	// 2800 lines, past the 3-bit slice_vertical_position_extension.
	HeaderBit int
	// VPos is the 1-based macroblock row, extension included.
	VPos int
}

// IndexSlices appends a SliceRef for every slice of the picture unit to dst
// and returns it. The scan starts at the byte containing bit offset
// sliceOffBit (as returned by ParsePictureUnit) and stops at the first
// non-slice start code, exactly where the serial slice loop breaks. It never
// parses slice contents, so indexing a picture is a plain memchr-style sweep.
func IndexSlices(seq *SequenceHeader, unit []byte, sliceOffBit int, dst []SliceRef) []SliceRef {
	tall := seq.Height > 2800
	for off := sliceOffBit / 8; ; off += 4 {
		off = bits.NextStartCode(unit, off)
		if off < 0 {
			break
		}
		code := unit[off+3]
		if !bits.IsSliceStartCode(code) {
			break
		}
		ref := SliceRef{HeaderBit: (off + 4) * 8, VPos: int(code)}
		if tall {
			// slice_vertical_position_extension: top 3 bits of the byte after
			// the start code. A truncated unit parses as extension 0 and fails
			// in the slice header, matching the reader-based path.
			if off+4 < len(unit) {
				ref.VPos += int(unit[off+4]>>5) << 7
			}
			ref.HeaderBit += 3
		}
		dst = append(dst, ref)
	}
	return dst
}

// ResetFullAt re-arms the decoder for the full slice located by ref, seeking
// r (which may be any reader, one per worker) to the slice header first.
// Semantics otherwise match ResetFull.
func (d *SliceDecoder) ResetFullAt(ctx *PictureContext, r *bits.Reader, unit []byte, ref SliceRef) error {
	r.Reset(unit)
	r.SeekBit(ref.HeaderBit)
	return d.ResetFull(ctx, r, ref.VPos)
}
