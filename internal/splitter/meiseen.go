package splitter

import "tiledwall/internal/subpic"

// meiSeen is an epoch-stamped dense deduplication table for MEI instructions,
// keyed by (destination tile, macroblock address, reference selector). It
// replaces the map the splitter used to clear on every picture: opening a new
// scope is one counter increment instead of a map sweep, and a probe is one
// array load instead of a hash — which matters because the splitter probes it
// for every reference cell of every inter macroblock.
//
// The wrap-around sweep below runs once every 2^32-1 scopes; everything else
// is O(1) and allocation-free after init.
type meiSeen struct {
	marks []uint32
	epoch uint32
	mbs   int // macroblocks per picture (row-major address space)
}

// init sizes the table for tiles × mbs macroblock addresses × 2 reference
// selectors. Safe to call repeatedly with the same geometry.
func (m *meiSeen) init(tiles, mbs int) {
	need := tiles * mbs * 2
	if cap(m.marks) < need {
		m.marks = make([]uint32, need)
		m.epoch = 0
	}
	m.marks = m.marks[:need]
	m.mbs = mbs
}

// begin opens a new dedup scope: per picture for the merge-level table, per
// slice for the worker-local ones.
func (m *meiSeen) begin() {
	m.epoch++
	if m.epoch == 0 { // uint32 wrap: old stamps would alias, clear them
		for i := range m.marks {
			m.marks[i] = 0
		}
		m.epoch = 1
	}
}

// seen reports whether (tile, addr, ref) was already recorded in the current
// scope, recording it if not.
func (m *meiSeen) seen(tile, addr int, ref subpic.RefSel) bool {
	i := (tile*m.mbs+addr)*2 + int(ref)
	if m.marks[i] == m.epoch {
		return true
	}
	m.marks[i] = m.epoch
	return false
}
