package cluster

import "testing"

func TestSlabRoundtrip(t *testing.T) {
	s := GetSlab(1000)
	if cap(s) < 1000 || len(s) != 0 {
		t.Fatalf("GetSlab(1000): len=%d cap=%d", len(s), cap(s))
	}
	if cap(s) != 1024 {
		t.Fatalf("GetSlab(1000) capacity %d, want exact class 1024", cap(s))
	}
	s = append(s, make([]byte, 1000)...)
	PutSlab(s)
	r := GetSlab(600)
	if cap(r) != 1024 || len(r) != 0 {
		t.Fatalf("pooled reuse: len=%d cap=%d", len(r), cap(r))
	}
	PutSlab(r)
}

func TestSlabRejectsForeign(t *testing.T) {
	// A slice whose capacity is not an exact class must not enter the pool.
	foreign := make([]byte, 0, 1000)
	PutSlab(foreign)
	got := GetSlab(1000)
	if cap(got) == 1000 {
		t.Fatal("foreign slab entered the pool")
	}
	PutSlab(got)

	// Out-of-range sizes never panic.
	PutSlab(nil)
	PutSlab(make([]byte, 0))
	huge := GetSlab(1 << 25)
	if cap(huge) < 1<<25 {
		t.Fatal("oversize GetSlab under-allocated")
	}
	PutSlab(huge) // silently dropped
}

func TestSlabClassBounds(t *testing.T) {
	if c := slabClass(1); c != slabMinBits {
		t.Fatalf("slabClass(1)=%d", c)
	}
	if c := slabClass(64); c != 6 {
		t.Fatalf("slabClass(64)=%d", c)
	}
	if c := slabClass(65); c != 7 {
		t.Fatalf("slabClass(65)=%d", c)
	}
	if c := slabClass(0); c != -1 {
		t.Fatalf("slabClass(0)=%d", c)
	}
	if c := slabClass(1<<24 + 1); c != -1 {
		t.Fatalf("slabClass(1<<24+1)=%d", c)
	}
}

// TestSlabRefCount proves "last reference releases": a slab with an extra
// reference survives one PutSlab (the retained copy stays intact) and is
// recycled only by the final one.
func TestSlabRefCount(t *testing.T) {
	s := GetSlab(2048)
	s = append(s, make([]byte, 2000)...)
	SlabRef(s) // e.g. a retainer starts aliasing the payload
	PutSlab(s) // consumer releases: must NOT recycle yet
	if r := GetSlab(2048); cap(r) == cap(s) && &r[:1][0] == &s[:1][0] {
		t.Fatal("slab recycled while a reference was outstanding")
	}
	PutSlab(s) // last reference releases
	r := GetSlab(2048)
	if &r[:1][0] != &s[:1][0] {
		t.Fatal("slab not recycled after the last release")
	}
	PutSlab(r)

	// Double refs stack; foreign slices and nil are ignored.
	s2 := GetSlab(4096)
	SlabRef(s2)
	SlabRef(s2)
	PutSlab(s2)
	PutSlab(s2)
	PutSlab(s2)
	SlabRef(nil)
	SlabRef(make([]byte, 0, 1000))
}

// TestSlabGetPutNoAlloc proves the steady-state slab cycle allocates
// nothing — the property the cluster send path relies on.
func TestSlabGetPutNoAlloc(t *testing.T) {
	PutSlab(GetSlab(4096)) // warm the class
	allocs := testing.AllocsPerRun(1000, func() {
		s := GetSlab(4096)
		PutSlab(s)
	})
	if allocs != 0 {
		t.Fatalf("slab get/put cycle allocates %v per run", allocs)
	}
}
