package mpeg2

// Coefficient scan orders (ISO/IEC 13818-2 figures 7-2 and 7-3). scan[k] is
// the raster index (v*8+u) of the k-th transmitted coefficient.

// ZigZagScan is the conventional zig-zag order (alternate_scan = 0).
var ZigZagScan = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// AlternateScan is the vertical-biased order (alternate_scan = 1).
var AlternateScan = [64]int{
	0, 8, 16, 24, 1, 9, 2, 10,
	17, 25, 32, 40, 48, 56, 57, 49,
	41, 33, 26, 18, 3, 11, 4, 12,
	19, 27, 34, 42, 50, 58, 35, 43,
	51, 59, 20, 28, 5, 13, 6, 14,
	21, 29, 36, 44, 52, 60, 37, 45,
	53, 61, 22, 30, 7, 15, 23, 31,
	38, 46, 54, 62, 39, 47, 55, 63,
}

// ScanOrder returns the scan for the alternate_scan flag.
func ScanOrder(alternate bool) *[64]int {
	if alternate {
		return &AlternateScan
	}
	return &ZigZagScan
}

// inverseScan caches position -> scan index maps, used by the encoder.
var zigZagInv, alternateInv [64]int

func init() {
	for k, p := range ZigZagScan {
		zigZagInv[p] = k
	}
	for k, p := range AlternateScan {
		alternateInv[p] = k
	}
}

// InverseScan returns the raster-to-scan-index map for the flag.
func InverseScan(alternate bool) *[64]int {
	if alternate {
		return &alternateInv
	}
	return &zigZagInv
}
