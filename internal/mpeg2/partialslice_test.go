package mpeg2

import (
	"testing"

	"tiledwall/internal/bits"
)

// Direct unit tests for partial-slice decoding: the SPH hand-off the
// second-level splitter relies on (§4.3). A full slice is written, then
// re-entered mid-slice with an injected predictor state, as a tile decoder
// would.

// writeRefSlice writes a slice of `count` intra macroblocks with ascending
// DC values and returns the bit offsets of each macroblock plus the writer
// state snapshots before each.
func writeRefSlice(t *testing.T, ctx *PictureContext, w *bits.Writer, row, count int) (starts []int, states []PredState) {
	t.Helper()
	sw := NewSliceWriter(ctx, w, row, 10)
	for i := 0; i < count; i++ {
		states = append(states, sw.State())
		starts = append(starts, w.BitLen())
		var blocks [6][64]int32
		for b := 0; b < 6; b++ {
			blocks[b][0] = int32(60 + 10*i + b)
		}
		mb := &MBCode{Addr: row*ctx.MBW + i, Flags: MBIntra, QuantCode: 10, CBP: 63, Blocks: &blocks}
		if err := sw.WriteMB(mb); err != nil {
			t.Fatal(err)
		}
	}
	return starts, states
}

func TestPartialSliceMidEntry(t *testing.T) {
	seq := testSeq(96, 32) // 6x2 macroblocks
	pic := testPic(PictureI, false, false, false)
	ctx, err := NewPictureContext(seq, pic)
	if err != nil {
		t.Fatal(err)
	}
	w := bits.NewWriter(256)
	starts, states := writeRefSlice(t, ctx, w, 0, 6)
	w.AlignZero()
	w.WriteBytes([]byte{0, 0, 1})
	data := w.Bytes()

	// Reference: decode the full slice from the header.
	full := bits.NewReader(data)
	full.Skip(32 + 5 + 1) // start code + quant + extra bit... not written here
	// The writer emitted the slice header itself; reparse from the top.
	full = bits.NewReader(data)
	full.Skip(32) // slice start code
	sdFull, err := NewSliceDecoder(ctx, full, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ref []Macroblock
	var mb Macroblock
	for {
		ok, err := sdFull.Next(&mb)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		c := mb
		c.Blocks = nil // buffer is reused; compare structure only
		ref = append(ref, c)
	}
	if len(ref) != 6 {
		t.Fatalf("full slice decoded %d macroblocks", len(ref))
	}

	// Partial entry at macroblock 3: byte-aligned copy with bit skip, as the
	// splitter ships it.
	entry := 3
	startBit := starts[entry]
	payload := data[startBit>>3:]
	r := bits.NewReader(payload)
	r.Skip(startBit & 7)
	sd := NewPartialSliceDecoder(ctx, r, states[entry], MotionInfo{}, entry, 3)
	for i := entry; i < 6; i++ {
		ok, err := sd.Next(&mb)
		if err != nil {
			t.Fatalf("partial mb %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("partial slice ended at %d", i)
		}
		if mb.Addr != ref[i].Addr || mb.Flags != ref[i].Flags || mb.CBP != ref[i].CBP {
			t.Fatalf("mb %d: partial parse diverges (%+v vs %+v)", i, mb.Addr, ref[i].Addr)
		}
		if mb.BitEnd-mb.BitStart != ref[i].BitEnd-ref[i].BitStart {
			t.Fatalf("mb %d: bit length %d vs %d", i, mb.BitEnd-mb.BitStart, ref[i].BitEnd-ref[i].BitStart)
		}
	}
	// The budget is exhausted: no further macroblocks.
	if ok, err := sd.Next(&mb); err != nil || ok {
		t.Fatalf("expected exhausted partial slice, ok=%v err=%v", ok, err)
	}
}

func TestPartialSliceFirstAddrOverride(t *testing.T) {
	seq := testSeq(96, 32)
	pic := testPic(PictureI, false, false, false)
	ctx, err := NewPictureContext(seq, pic)
	if err != nil {
		t.Fatal(err)
	}
	w := bits.NewWriter(128)
	starts, states := writeRefSlice(t, ctx, w, 1, 4)
	data := w.Bytes()

	// Enter at macroblock 2 of row 1 but override the address to the global
	// macroblock grid (row 1 => base 6).
	startBit := starts[2]
	r := bits.NewReader(data[startBit>>3:])
	r.Skip(startBit & 7)
	sd := NewPartialSliceDecoder(ctx, r, states[2], MotionInfo{}, 8, 1)
	var mb Macroblock
	ok, err := sd.Next(&mb)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if mb.Addr != 8 {
		t.Fatalf("addr = %d, want the SPH-supplied 8", mb.Addr)
	}
	if mb.SkippedBefore != 0 {
		t.Fatalf("first partial macroblock claims %d skips", mb.SkippedBefore)
	}
}
