package service

import (
	"fmt"
	"sync"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/pdec"
	"tiledwall/internal/splitter"
	"tiledwall/internal/wall"
)

// Session is one stream flowing through a resident wall. Feed and Close must
// be called from a single goroutine; distinct sessions are independent and
// may run concurrently.
type Session struct {
	w        *Wall
	id       int
	name     string
	openedAt time.Time

	scanner unitScanner
	cbTime  time.Duration // time inside scan callbacks, excluded from ScanTime

	// tokens is the in-flight bound: one taken per picture at Feed, returned
	// by the root when a splitter acks receipt (K>0) or the picture ships
	// (K=0).
	tokens chan struct{}
	// drained is closed by the root once every tile has sent its drain ack.
	drained chan struct{}

	// failedCh is closed (once) when the pipeline fails this session in
	// isolation; failErr carries the typed cause. Written by the root
	// goroutine, read by the feeder — hence the mutex, unlike the
	// feeder-only failed field.
	failMu   sync.Mutex
	failErr  error
	failedCh chan struct{}

	opened bool
	closed bool
	failed error
	pics   int

	seq       *mpeg2.SequenceHeader
	geo       *wall.Geometry
	collector *collector

	// sub and trick are the feeder-side subscription state (same
	// single-goroutine contract as Feed; the root applies its own copy at
	// I-picture boundaries).
	sub   wall.TileSet
	trick splitter.TrickMode

	rootRes   splitter.RootResult
	splitters []*splitter.SecondResult
	decoders  []*pdec.Result

	// Root-goroutine-only state (like drainAcks): the active subscription,
	// the pending one awaiting the next I picture, the dense shipped-picture
	// counter trick play re-indexes with, and the activation log.
	drainAcks   int
	rootSub     wall.TileSet
	rootTrick   splitter.TrickMode
	pendSub     wall.TileSet
	pendTrick   splitter.TrickMode
	subPending  bool
	shippedPics int
	droppedPics int
	subEvents   []SubscriptionEvent
}

// SubscriptionEvent records one subscription/trick activation: the change
// took effect at the shipped picture with index Picture (always an I
// picture, or 0 for a subscription set before the first picture).
type SubscriptionEvent struct {
	Picture int
	Tiles   wall.TileSet
	Trick   splitter.TrickMode
}

// TrickMode selects the root's trick-play drop ladder (re-exported from the
// splitter package for the façade).
type TrickMode = splitter.TrickMode

// Trick-play modes.
const (
	TrickNone  = splitter.TrickNone
	TrickIOnly = splitter.TrickIOnly
	TrickDropB = splitter.TrickDropB
)

// Subscribe sets the session's tile subscription: only subscribed tiles (plus
// the halo sources their motion vectors need) are materialized, serialised
// and shipped; everything else is skipped. The zero TileSet subscribes every
// tile (the default). The change is delivered in-band and takes effect at the
// next I picture the root ships, so every splitter applies it at the same
// consistent picture boundary; anchors keep materializing everywhere (stamped
// no-emit on unwatched tiles), so a newly subscribed tile resumes exactly at
// activation. Same goroutine contract as Feed; may be called before the
// first Feed (active from the first picture) and again mid-session.
func (s *Session) Subscribe(tiles wall.TileSet) error {
	if !tiles.Full() && tiles.Size() != s.w.cfg.M*s.w.cfg.N {
		return fmt.Errorf("service: session %q: subscription sized for %d tiles, wall has %d",
			s.name, tiles.Size(), s.w.cfg.M*s.w.cfg.N)
	}
	if tiles.Empty() {
		return fmt.Errorf("service: session %q: empty subscription", s.name)
	}
	s.sub = tiles.Clone()
	return s.sendSubscribe()
}

// SetTrickMode sets the session's trick-play mode: TrickDropB ships I and P
// pictures only, TrickIOnly ships I pictures only; dropped pictures never
// reach the splitters. Like Subscribe, the change activates at the next I
// picture. Switching back to TrickNone resumes full decode; output is exact
// again from the next closed GOP (pictures referencing a dropped anchor
// decode against the nearest shipped one until then).
func (s *Session) SetTrickMode(m splitter.TrickMode) error {
	if m > splitter.TrickDropB {
		return fmt.Errorf("service: session %q: unknown trick mode %d", s.name, m)
	}
	s.trick = m
	return s.sendSubscribe()
}

func (s *Session) sendSubscribe() error {
	if s.closed {
		return ErrSessionClosed
	}
	if s.failed != nil {
		return s.failed
	}
	return s.submit(workItem{
		sess:    s,
		kind:    workSubscribe,
		payload: splitter.AppendSubscribe(nil, s.trick, s.sub),
	})
}

// ID returns the session's wall-unique id (the wire session key).
func (s *Session) ID() int { return s.id }

// Name returns the label given to Open.
func (s *Session) Name() string { return s.name }

// SessionResult is what a closed session decoded and how fast.
type SessionResult struct {
	Name     string
	Pictures int
	// Throughput measures wall-clock Open→drain, so it includes any time the
	// feeder idled between chunks.
	Throughput metrics.Throughput
	Root       *splitter.RootResult // nil on one-level walls (K=0)
	Splitters  []*splitter.SecondResult
	Decoders   []*pdec.Result
	// Frames holds assembled wall frames in display order when the wall
	// collects frames.
	Frames []*mpeg2.PixelBuf
	// WireBytes is the fabric traffic attributed to this session.
	WireBytes int64
	// Recovery counts the fault-tolerance interventions charged to this
	// session (zero-valued without recovery enabled). Frames are guaranteed
	// byte-identical to a serial decode only when Recovery.Clean() holds.
	Recovery metrics.RecoverySnapshot
	// TileEmissions lists, per tile, the decode-order picture indices
	// emitted in display order — the exactly-once evidence chaos soaks
	// assert. Populated only under recovery.
	TileEmissions [][]int

	// SubscribedTiles is the session's final subscription size (the wall's
	// tile count when no partial subscription was set).
	SubscribedTiles int
	// ShippedPictures counts pictures that reached the pipeline; with trick
	// play active it is smaller than Pictures.
	ShippedPictures int
	// SkippedPictures counts pictures the root dropped for trick play.
	SkippedPictures int
	// SkippedSubPics counts per-tile skip markers shipped in place of full
	// sub-pictures (summed over splitters; zero on a full subscription).
	SkippedSubPics int64
	// Subscriptions logs every subscription/trick activation with the
	// shipped picture index it took effect at.
	Subscriptions []SubscriptionEvent
}

// Modeled returns the pipeline-limit throughput: pictures over the busiest
// node's busy time, the batch Result.Modeled for one session.
func (r *SessionResult) Modeled() metrics.Throughput {
	var busiest time.Duration
	if r.Root != nil {
		busiest = r.Root.ScanTime + r.Root.CopyTime + r.Root.SendTime
	}
	for _, sr := range r.Splitters {
		if sr != nil && sr.Breakdown.Busy() > busiest {
			busiest = sr.Breakdown.Busy()
		}
	}
	for _, dr := range r.Decoders {
		if dr != nil && dr.Breakdown.Busy() > busiest {
			busiest = dr.Breakdown.Busy()
		}
	}
	return metrics.Throughput{
		Pictures:         r.Pictures,
		Elapsed:          busiest,
		PixelsPerPicture: r.Throughput.PixelsPerPicture,
	}
}

// Feed hands the session the next chunk of the elementary stream. Chunks may
// split anywhere — picture units are reassembled internally. Blocks when the
// session's in-flight picture bound is reached (backpressure).
func (s *Session) Feed(chunk []byte) error {
	if s.closed {
		return ErrSessionClosed
	}
	if s.failed != nil {
		return s.failed
	}
	if err := s.failCause(); err != nil {
		s.failed = err
		return err
	}
	if err := s.w.tr.AbortCause(); err != nil {
		s.failed = err
		return err
	}
	scanStart := time.Now()
	s.cbTime = 0
	err := s.scanner.feed(chunk, s.onHeader, s.onUnit)
	s.rootRes.ScanTime += time.Since(scanStart) - s.cbTime
	if err != nil {
		s.failed = err
	}
	return err
}

// Close flushes the trailing picture, sends the session final through the
// pipeline, and blocks until every tile has drained the session.
func (s *Session) Close() (*SessionResult, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.closed = true
	if s.failed == nil {
		s.failed = s.failCause()
	}
	if s.failed == nil {
		scanStart := time.Now()
		s.cbTime = 0
		err := s.scanner.flush(s.onUnit)
		s.rootRes.ScanTime += time.Since(scanStart) - s.cbTime
		if err != nil {
			s.failed = err
		}
	}
	if s.failed == nil && !s.opened {
		s.failed = fmt.Errorf("service: session %q: no sequence header in stream", s.name)
	}
	if s.failed != nil {
		s.finishFailed()
		return nil, s.failed
	}
	if err := s.submit(workItem{sess: s, kind: workFinal, index: s.pics}); err != nil {
		s.finishFailed()
		return nil, err
	}
	// Under recovery the drain wait is bounded: a node dead past its restart
	// budget never drain-acks, and that must disrupt this session, not hang
	// its feeder. The budget scales with the session length so a loaded wall
	// concealing its way to the end still drains cleanly.
	var timeout <-chan time.Time
	if s.w.rv != nil {
		budget := time.Duration(s.pics) * s.w.rv.cfg.PictureDeadline
		if budget < 10*time.Second {
			budget = 10 * time.Second
		}
		timer := time.NewTimer(budget)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case <-s.drained:
	case <-s.failedCh:
		s.failed = s.failCause()
		s.finishFailed()
		return nil, s.failed
	case <-timeout:
		s.failed = fmt.Errorf("%w: session %q: drain incomplete", ErrSessionDisrupted, s.name)
		s.finishFailed()
		return nil, s.failed
	case <-s.w.tr.Done():
		s.w.sessionDone(s)
		return nil, s.w.tr.AbortCause()
	}
	s.rootRes.Pictures = s.pics
	res := &SessionResult{
		Name:     s.name,
		Pictures: s.pics,
		Throughput: metrics.Throughput{
			Pictures:         s.pics,
			Elapsed:          time.Since(s.openedAt),
			PixelsPerPicture: int64(s.geo.PicW) * int64(s.geo.PicH),
		},
		Splitters: s.splitters,
		Decoders:  s.decoders,
		WireBytes: s.w.tr.SessionBytes(s.id),
		// Root-goroutine fields are settled: workFinal was processed before
		// the finals whose drain acks closed s.drained.
		ShippedPictures: s.shippedPics,
		SkippedPictures: s.droppedPics,
		Subscriptions:   s.subEvents,
	}
	res.SubscribedTiles = s.geo.NumTiles()
	if !s.sub.Full() {
		res.SubscribedTiles = s.sub.Count()
	}
	for _, sr := range s.splitters {
		if sr != nil {
			res.SkippedSubPics += sr.SkippedSubPics
		}
	}
	if s.w.cfg.K > 0 {
		res.Root = &s.rootRes
	}
	strict := true
	if rv := s.w.rv; rv != nil {
		res.Recovery, res.TileEmissions = rv.dropSession(s.id)
		rv.noteSessionClose(res.Recovery.Clean())
		// A degraded session may have lost tail frames on some tiles (a
		// decoder dead past its budget): assemble what every tile emitted
		// instead of refusing the whole session.
		strict = res.Recovery.Clean()
	}
	var err error
	// A partial subscription emits nothing on unwatched tiles, so full wall
	// frames cannot be assembled; per-tile output rides on OnTileFrame.
	if s.collector != nil && s.sub.Full() {
		res.Frames, err = s.collector.assemble(strict)
	}
	s.w.sessionDone(s)
	return res, err
}

// finishFailed releases a failed session's admission slot and recovery
// registry state, and records the close in the wall health machine.
func (s *Session) finishFailed() {
	if rv := s.w.rv; rv != nil {
		rv.dropSession(s.id)
		rv.noteSessionClose(false)
	}
	s.w.sessionDone(s)
}

// onHeader parses the stream prefix, derives this session's geometry, and
// announces the session to the pipeline.
func (s *Session) onHeader(prefix []byte) error {
	t0 := time.Now()
	defer func() { s.cbTime += time.Since(t0) }()
	seq, err := mpeg2.ParseSequenceHeaderBytes(prefix)
	if err != nil {
		return fmt.Errorf("service: session %q: %w", s.name, err)
	}
	geo, err := wall.NewGeometry(seq.MBWidth()*16, seq.MBHeight()*16, s.w.cfg.M, s.w.cfg.N, s.w.cfg.Overlap)
	if err != nil {
		return fmt.Errorf("service: session %q: %w", s.name, err)
	}
	s.seq, s.geo = seq, geo
	if s.w.cfg.CollectFrames {
		s.collector = newCollector(geo)
	}
	s.opened = true
	hdr := make([]byte, len(prefix))
	copy(hdr, prefix)
	return s.submit(workItem{sess: s, kind: workOpen, payload: hdr})
}

// onUnit copies one complete picture unit out of the scanner, takes an
// in-flight token (backpressure), and queues the picture for the root.
func (s *Session) onUnit(u []byte) error {
	t0 := time.Now()
	defer func() { s.cbTime += time.Since(t0) }()
	var buf []byte
	if s.w.cfg.Pooled {
		// Picture units travel as pooled slabs so the root's retainer and the
		// consuming splitter can share the payload by reference count.
		buf = append(cluster.GetSlab(len(u)), u...)
	} else {
		buf = make([]byte, len(u))
		copy(buf, u)
	}
	s.rootRes.CopyTime += time.Since(t0)
	select {
	case <-s.tokens:
	case <-s.failedCh:
		return s.failCause()
	case <-s.w.tr.Done():
		return s.w.tr.AbortCause()
	}
	idx := s.pics
	s.pics++
	s.w.loadPics.Add(1)
	s.w.loadBytes.Add(int64(len(buf)))
	return s.submit(workItem{sess: s, kind: workPicture, payload: buf, index: idx})
}

func (s *Session) submit(it workItem) error {
	select {
	case s.w.work <- it:
		return nil
	case <-s.w.tr.Done():
		return s.w.tr.AbortCause()
	}
}

// releaseToken is called by the root goroutine when a picture's feed slot is
// free again.
func (s *Session) releaseToken() {
	select {
	case s.tokens <- struct{}{}:
		// The load counter mirrors tokens actually outstanding: synthetic
		// releases into a full bucket (recovery ack timeouts) change nothing.
		s.w.loadPics.Add(-1)
	default:
	}
}

// fail marks the session failed in isolation (root goroutine); the first
// cause wins and unblocks the feeder.
func (s *Session) fail(err error) {
	s.failMu.Lock()
	if s.failErr == nil {
		s.failErr = err
		close(s.failedCh)
	}
	s.failMu.Unlock()
}

// failCause returns the isolated-failure cause, if any.
func (s *Session) failCause() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failErr
}
