// Fleet soak and chaos tests: a thousand-session storm across a heterogeneous
// wall farm, byte-verified against the serial reference on a deterministic
// sample, and a seeded wall-kill proving queued sessions re-route to the
// survivors with typed errors only. The package is external (fleet_test) so
// it can use the conformance stream generator, which depends on system and
// hence on service.
//
// Seeded via TILEDWALL_CHAOS_SEED like the chaos-tcp CI matrix; run short
// mode (`go test -short`) for the capped version `go test ./...` uses.
package fleet_test

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/conformance"
	"tiledwall/internal/fleet"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/service"
	"tiledwall/internal/video"
)

// chaosSeed reads the CI matrix seed; 1 when unset so local runs are
// deterministic too.
func chaosSeed() int64 {
	if v := os.Getenv("TILEDWALL_CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

// soakStream is one generated tiny stream plus its serial reference decode.
type soakStream struct {
	data []byte
	ref  []mpeg2.DecodedPicture
}

// genTinyStreams builds the soak's stream pool: deliberately tiny
// (64x48, a handful of frames) so a thousand sessions stay fast under -race,
// but sweeping scene, GOP shape and quantiser knobs like the conformance
// sweep does.
func genTinyStreams(t *testing.T) []soakStream {
	t.Helper()
	params := []conformance.StreamParams{
		{Seed: 101, Scene: video.SceneFilm, Width: 64, Height: 48, Frames: 4, GOPSize: 4, BSpacing: 1, InitialQScale: 6, FCode: 1},
		{Seed: 102, Scene: video.SceneAnimation, Width: 64, Height: 64, Frames: 5, GOPSize: 4, BSpacing: 2, InitialQScale: 8, FCode: 1, ClosedGOP: true},
		{Seed: 103, Scene: video.SceneFishTank, Width: 80, Height: 48, Frames: 4, GOPSize: 4, BSpacing: 1, InitialQScale: 5, FCode: 1, QScaleType: true},
		{Seed: 104, Scene: video.SceneBroadcast, Width: 64, Height: 48, Frames: 6, GOPSize: 3, BSpacing: 1, InitialQScale: 7, FCode: 1, IntraVLCFormat: true},
		{Seed: 105, Scene: video.SceneFlyby, Width: 80, Height: 64, Frames: 4, GOPSize: 4, BSpacing: 2, InitialQScale: 6, FCode: 2, AlternateScan: true},
		{Seed: 106, Scene: video.SceneFilm, Width: 64, Height: 48, Frames: 5, GOPSize: 5, BSpacing: 1, InitialQScale: 9, FCode: 1},
	}
	out := make([]soakStream, len(params))
	for i, p := range params {
		data, err := p.Generate()
		if err != nil {
			t.Fatalf("stream %d (%s): %v", i, p, err)
		}
		dec, err := mpeg2.NewDecoder(data)
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		ref, err := dec.DecodeAll()
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		out[i] = soakStream{data: data, ref: ref}
	}
	return out
}

func verifyFrames(ref []mpeg2.DecodedPicture, got []*mpeg2.PixelBuf) error {
	if len(ref) != len(got) {
		return fmt.Errorf("frame count: serial %d, session %d", len(ref), len(got))
	}
	for i := range ref {
		if !video.Equal(ref[i].Buf, got[i]) {
			return fmt.Errorf("frame %d differs from serial decode", i)
		}
	}
	return nil
}

// feedSession drives one stream through an already-open session in ragged
// chunks and closes it.
func feedSession(s *fleet.Session, data []byte, chunk int) (*service.SessionResult, error) {
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := s.Feed(data[off:end]); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s.Close()
}

// soakFleetConfig is the mixed-geometry four-wall farm both fleet soaks use:
// a one-level single tile, a one-level strip, a one-level quad and a
// two-level quad — every wall collecting frames for byte verification.
func soakFleetConfig() []service.Config {
	return []service.Config{
		{K: 0, M: 1, N: 1, MaxSessions: 8, CollectFrames: true},
		{K: 0, M: 2, N: 1, MaxSessions: 8, CollectFrames: true},
		{K: 0, M: 2, N: 2, MaxSessions: 8, CollectFrames: true},
		{K: 1, M: 2, N: 2, MaxSessions: 8, CollectFrames: true, SplitWorkers: 1},
	}
}

// TestFleetSoak1k is the fleet gate: 1024 sessions (96 in -short) of mixed
// tiny streams storm a four-wall heterogeneous fleet through 64 concurrent
// feeders — twice the aggregate capacity, so the admission queue is
// exercised throughout. Every 16th session is byte-verified against the
// serial reference; every open latency is recorded for the p99; zero errors
// of any kind are tolerated.
func TestFleetSoak1k(t *testing.T) {
	streams := genTinyStreams(t)
	sessions, workers := 1024, 64
	if testing.Short() {
		sessions, workers = 96, 16
	}
	seedOff := int(chaosSeed() % int64(len(streams)))
	f, err := fleet.New(fleet.Config{
		Walls:        soakFleetConfig(),
		OpenDeadline: 120 * time.Second,
		MaxQueue:     workers,
		Tenants: map[string]fleet.Tenant{
			"t0": {MaxSessions: workers},
			"t1": {MaxSessions: workers},
			"t2": {MaxInFlightPictures: 32 * 8},
			"t3": {},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Errorf("fleet close: %v", err)
		}
	}()

	var (
		mu        sync.Mutex
		openLat   []time.Duration
		perWall   = make([]int, len(soakFleetConfig()))
		frames    atomic.Int64
		failures  []string
		next      atomic.Int64
		startedAt = time.Now()
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= sessions {
					return
				}
				st := streams[(i+seedOff)%len(streams)]
				opt := fleet.OpenOptions{
					Tenant:   fmt.Sprintf("t%d", i%4),
					Priority: fleet.Priority(i % 3),
				}
				if i%8 == 0 {
					opt.MinTiles = 4 // only the quad walls qualify
				}
				t0 := time.Now()
				s, err := f.Open(fmt.Sprintf("soak-%d", i), opt)
				lat := time.Since(t0)
				if err != nil {
					fail("session %d open: %v", i, err)
					continue
				}
				if opt.MinTiles == 4 && s.Wall() < 2 {
					fail("session %d wanted 4 tiles, landed on wall %d", i, s.Wall())
				}
				mu.Lock()
				openLat = append(openLat, lat)
				perWall[s.Wall()]++
				mu.Unlock()
				chunk := 64<<(i%5) + 7*(i%97) + 1
				res, err := feedSession(s, st.data, chunk)
				if err != nil {
					fail("session %d: %v", i, err)
					continue
				}
				frames.Add(int64(len(res.Frames)))
				if i%16 == 0 {
					if err := verifyFrames(st.ref, res.Frames); err != nil {
						fail("session %d divergence: %v", i, err)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(startedAt)

	if len(failures) > 0 {
		for i, m := range failures {
			if i >= 10 {
				t.Errorf("... and %d more", len(failures)-10)
				break
			}
			t.Error(m)
		}
		t.Fatalf("%d of %d sessions failed", len(failures), sessions)
	}
	if len(openLat) != sessions {
		t.Fatalf("recorded %d open latencies for %d sessions", len(openLat), sessions)
	}
	for i, n := range perWall {
		if n == 0 {
			t.Errorf("wall %d decoded no sessions: %v", i, perWall)
		}
	}
	sort.Slice(openLat, func(i, j int) bool { return openLat[i] < openLat[j] })
	p50 := openLat[len(openLat)/2]
	p99 := openLat[len(openLat)*99/100]
	fps := float64(frames.Load()) / elapsed.Seconds()
	st := f.Stats()
	t.Logf("fleet soak: %d sessions over %d walls %v in %v — aggregate %.0f fps, open p50 %v p99 %v, granted %d shed %d",
		sessions, len(perWall), perWall, elapsed.Round(time.Millisecond), fps, p50, p99, st.Granted, st.Shed)
	if st.Shed != 0 {
		t.Fatalf("soak shed %d opens; the queue should have absorbed the storm", st.Shed)
	}
}

// TestFleetChaosReroute is the seeded wall-kill property test: mid-storm, one
// seeded wall's transport dies. The properties, for every seed: every failed
// session failed on the victim slot with a typed error (the injected cause, a
// link fault, or a typed session error — never an untyped one), the storm
// keeps completing on the survivors, the victim slot is recycled back into
// rotation, and a post-storm session on it decodes byte-exact.
func TestFleetChaosReroute(t *testing.T) {
	streams := genTinyStreams(t)
	seed := chaosSeed()
	sessions, workers := 96, 12
	if testing.Short() {
		sessions = 48
	}
	f, err := fleet.New(fleet.Config{
		Walls: []service.Config{
			{K: 0, M: 1, N: 1, MaxSessions: 2, CollectFrames: true},
			{K: 0, M: 1, N: 1, MaxSessions: 2, CollectFrames: true},
			{K: 0, M: 1, N: 1, MaxSessions: 2, CollectFrames: true},
			{K: 0, M: 1, N: 1, MaxSessions: 2, CollectFrames: true},
		},
		OpenDeadline: 120 * time.Second,
		MaxQueue:     64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	victim := int(seed % 4)
	killAfter := sessions / 3
	// The canary sits open on the victim for the whole storm, so the kill is
	// guaranteed to disrupt a live session whatever the storm's timing: its
	// feed must surface the injected cause, typed, after the kill. The
	// least-loaded router lands it on the victim within the first four opens
	// (one per idle wall).
	var canary *fleet.Session
	var extras []*fleet.Session
	for len(extras) < 4 && canary == nil {
		s, err := f.Open(fmt.Sprintf("canary-probe-%d", len(extras)), fleet.OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Wall() == victim {
			canary = s
		} else {
			extras = append(extras, s)
		}
	}
	for _, s := range extras {
		s.Close()
	}
	if canary == nil {
		t.Fatalf("no probe landed on victim wall %d", victim)
	}
	var (
		mu         sync.Mutex
		untyped    []string
		collateral []string
		done       atomic.Int64
		killed     atomic.Bool
		afterKill  atomic.Int64
		next       atomic.Int64
	)
	typedErr := func(err error) bool {
		return errors.Is(err, cluster.ErrStalled) ||
			errors.Is(err, cluster.ErrLinkLost) ||
			errors.Is(err, service.ErrWallClosed) ||
			conformance.TypedSessionError(err)
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= sessions {
					return
				}
				if !killed.Load() && int(done.Load()) >= killAfter {
					if killed.CompareAndSwap(false, true) {
						if err := f.InjectWallFailure(victim, cluster.ErrStalled); err != nil {
							t.Errorf("inject: %v", err)
						}
					}
				}
				st := streams[(i+int(seed))%len(streams)]
				s, err := f.Open(fmt.Sprintf("chaos-%d", i), fleet.OpenOptions{})
				if err != nil {
					// Opens never touch a dead wall (the router skips it), so
					// any open error is a harness failure.
					mu.Lock()
					untyped = append(untyped, fmt.Sprintf("session %d open: %v", i, err))
					mu.Unlock()
					continue
				}
				wall := s.Wall()
				res, err := feedSession(s, st.data, 256+13*(i%7))
				if err != nil {
					if !typedErr(err) {
						mu.Lock()
						untyped = append(untyped, fmt.Sprintf("session %d (wall %d): %v", i, wall, err))
						mu.Unlock()
					}
					if wall != victim {
						mu.Lock()
						collateral = append(collateral, fmt.Sprintf("session %d failed on surviving wall %d: %v", i, wall, err))
						mu.Unlock()
					}
					continue
				}
				if err := verifyFrames(st.ref, res.Frames); err != nil {
					mu.Lock()
					untyped = append(untyped, fmt.Sprintf("session %d (wall %d) divergence: %v", i, wall, err))
					mu.Unlock()
					continue
				}
				done.Add(1)
				if killed.Load() {
					afterKill.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	for _, m := range untyped {
		t.Errorf("non-typed failure: %s", m)
	}
	for _, m := range collateral {
		t.Errorf("collateral damage: %s", m)
	}
	if t.Failed() {
		t.FailNow()
	}
	if !killed.Load() {
		t.Fatalf("storm finished before the kill threshold %d", killAfter)
	}
	if afterKill.Load() == 0 {
		t.Fatal("no session completed after the wall kill")
	}
	// The canary was live on the victim when it died: its feed and close
	// must surface the injected typed cause, nothing else.
	if err := canary.Feed([]byte{0, 0, 0, 0}); !errors.Is(err, cluster.ErrStalled) {
		t.Fatalf("canary feed after kill: %v, want the injected cluster.ErrStalled", err)
	}
	if _, err := canary.Close(); err == nil || !typedErr(err) {
		t.Fatalf("canary close after kill: %v, want a typed error", err)
	}
	// The victim must come back: recycled at least once and accepting again.
	deadline := time.Now().Add(30 * time.Second)
	for f.Stats().Recycled < 1 || !f.Stats().Walls[victim].Up {
		if time.Now().After(deadline) {
			t.Fatalf("victim wall %d never recycled: %+v", victim, f.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := f.Stats()
	t.Logf("chaos reroute: seed %d victim %d, %d/%d completed (%d post-kill), recycled %d",
		seed, victim, done.Load(), sessions, afterKill.Load(), st.Recycled)
	// Byte-exact decode on the respawned incarnation closes the loop.
	s, err := f.Open("post-chaos", fleet.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := feedSession(s, streams[0].data, 512)
	if err != nil {
		t.Fatalf("post-chaos session: %v", err)
	}
	if err := verifyFrames(streams[0].ref, res.Frames); err != nil {
		t.Fatalf("post-chaos divergence: %v", err)
	}
}
