package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The Transport contract suite: every behaviour the resident pipeline
// depends on, run identically against the in-process Fabric and the TCP
// transport over loopback. A third run compares the two implementations'
// accounting on the same traffic.

// transportCase builds one implementation; close releases it.
type transportCase struct {
	name  string
	build func(t *testing.T, n int, stall time.Duration) Transport
}

func transportCases() []transportCase {
	return []transportCase{
		{
			name: "fabric",
			build: func(t *testing.T, n int, stall time.Duration) Transport {
				f := New(n, Config{StallTimeout: stall})
				t.Cleanup(f.Shutdown)
				return f
			},
		},
		{
			name: "tcp",
			build: func(t *testing.T, n int, stall time.Duration) Transport {
				ids := make([]int, n)
				for i := range ids {
					ids[i] = i
				}
				tr, err := ListenTCP("127.0.0.1:0", TCPConfig{
					NumNodes:     n,
					LocalNodes:   ids,
					StallTimeout: stall,
				})
				if err != nil {
					t.Fatalf("ListenTCP: %v", err)
				}
				t.Cleanup(tr.Shutdown)
				return tr
			},
		},
	}
}

func forEachTransport(t *testing.T, n int, stall time.Duration, fn func(t *testing.T, tr Transport)) {
	for _, tc := range transportCases() {
		t.Run(tc.name, func(t *testing.T) {
			fn(t, tc.build(t, n, stall))
		})
	}
}

// TestTransportContractFIFO: messages from one sender to one receiver are
// delivered in send order within each kind, for every implementation.
func TestTransportContractFIFO(t *testing.T) {
	const nodes = 4
	const perSender = 300
	kinds := []MsgKind{MsgPicture, MsgSubPicture, MsgAck, MsgBlocks}
	forEachTransport(t, nodes, 0, func(t *testing.T, tr Transport) {
		var wg sync.WaitGroup
		for s := 1; s < nodes; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				port := tr.Port(s)
				for i := 0; i < perSender; i++ {
					port.Send(0, &Message{
						Kind:    kinds[i%len(kinds)],
						Seq:     i,
						Tag:     s,
						Payload: []byte(fmt.Sprintf("m-%d-%d", s, i)),
					})
				}
			}(s)
		}
		// One consumer per kind: the port contract allows selecting across
		// kind queues, and a sequential per-kind drain would deadlock against
		// the fabric's bounded queues (which is the protocols' job to avoid).
		recv := tr.Port(0)
		errs := make(chan error, len(kinds))
		var rg sync.WaitGroup
		for k := range kinds {
			rg.Add(1)
			go func(kind MsgKind) {
				defer rg.Done()
				last := map[int]int{} // sender -> last seq
				for got := 0; got < (nodes-1)*perSender/len(kinds); got++ {
					var m *Message
					select {
					case m = <-recv.Queue(kind):
					case <-recv.Done():
						errs <- fmt.Errorf("kind %v: transport aborted: %v", kind, tr.AbortCause())
						return
					}
					if m.Kind != kind {
						errs <- fmt.Errorf("kind %v delivered on %v queue", m.Kind, kind)
						return
					}
					if prev, ok := last[m.From]; ok && m.Seq <= prev {
						errs <- fmt.Errorf("FIFO violation from %d kind %v: seq %d after %d", m.From, kind, m.Seq, prev)
						return
					}
					last[m.From] = m.Seq
					if want := fmt.Sprintf("m-%d-%d", m.From, m.Seq); string(m.Payload) != want {
						errs <- fmt.Errorf("payload %q, want %q", m.Payload, want)
						return
					}
				}
			}(kinds[k])
		}
		rg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		wg.Wait()
	})
}

// TestTransportContractAbort: Abort unblocks pending receives with nil,
// closes Done, records the first cause, and turns Send into a no-op —
// a single abort domain for every node.
func TestTransportContractAbort(t *testing.T) {
	forEachTransport(t, 3, 0, func(t *testing.T, tr Transport) {
		cause := errors.New("test abort cause")
		unblocked := make(chan *Message, 2)
		for id := 1; id <= 2; id++ {
			go func(id int) { unblocked <- tr.Port(id).Recv(MsgPicture) }(id)
		}
		time.Sleep(20 * time.Millisecond)
		tr.Abort(cause)
		for i := 0; i < 2; i++ {
			select {
			case m := <-unblocked:
				if m != nil {
					t.Fatalf("Recv after abort returned %+v, want nil", m)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Recv not unblocked by Abort")
			}
		}
		select {
		case <-tr.Done():
		default:
			t.Fatal("Done not closed after Abort")
		}
		tr.Abort(errors.New("second cause loses"))
		if got := tr.AbortCause(); !errors.Is(got, cause) && got.Error() != cause.Error() {
			t.Fatalf("AbortCause = %v, want first cause %v", got, cause)
		}
		// Send after abort must not block or panic. (Whether the message is
		// still delivered is unspecified: the fabric's select may pick the
		// queue when it has space, the TCP port drops it.)
		tr.Port(0).Send(1, &Message{Kind: MsgAck})
	})
}

// TestTransportContractRecvTimeout: the three-way RecvTimeout result —
// delivered, timed out, aborted — behaves identically everywhere.
func TestTransportContractRecvTimeout(t *testing.T) {
	forEachTransport(t, 2, 0, func(t *testing.T, tr Transport) {
		if m, timedOut := tr.Port(0).RecvTimeout(MsgAck, 30*time.Millisecond); m != nil || !timedOut {
			t.Fatalf("empty RecvTimeout = (%v, %v), want (nil, true)", m, timedOut)
		}
		tr.Port(1).Send(0, &Message{Kind: MsgAck, Seq: 7})
		deadline := time.Now().Add(5 * time.Second)
		for {
			m, timedOut := tr.Port(0).RecvTimeout(MsgAck, 50*time.Millisecond)
			if m != nil {
				if m.Seq != 7 {
					t.Fatalf("RecvTimeout delivered seq %d, want 7", m.Seq)
				}
				break
			}
			if !timedOut {
				t.Fatalf("transport aborted: %v", tr.AbortCause())
			}
			if time.Now().After(deadline) {
				t.Fatal("queued message never delivered via RecvTimeout")
			}
		}
		tr.Abort(errors.New("stop"))
		if m, timedOut := tr.Port(0).RecvTimeout(MsgAck, time.Second); m != nil || timedOut {
			t.Fatalf("aborted RecvTimeout = (%v, %v), want (nil, false)", m, timedOut)
		}
	})
}

// accountingScript drives identical traffic over any transport: a mix of
// payload sizes, sessions and kinds with every send strictly ordered, so the
// resulting counters are deterministic.
func accountingScript(tr Transport) {
	type hop struct {
		from, to int
		kind     MsgKind
		session  int
		size     int
	}
	script := []hop{
		{0, 1, MsgPicture, 1, 1000},
		{0, 2, MsgPicture, 1, 500},
		{1, 3, MsgSubPicture, 1, 2048},
		{2, 3, MsgSubPicture, 2, 0},
		{3, 0, MsgAck, 2, 0},
		{3, 1, MsgAck, 0, 16},
		{1, 0, MsgAck, 1, 0},
		{2, 1, MsgBlocks, 2, 77},
	}
	for _, h := range script {
		tr.Port(h.from).Send(h.to, &Message{
			Kind:    h.kind,
			Session: h.session,
			Payload: make([]byte, h.size),
		})
	}
	// Drain everything so the traffic fully traverses both implementations.
	counts := map[[2]int]int{}
	for _, h := range script {
		counts[[2]int{h.to, int(h.kind)}]++
	}
	for key, n := range counts {
		for i := 0; i < n; i++ {
			tr.Port(key[0]).Recv(MsgKind(key[1]))
		}
	}
}

// TestTransportContractAccounting: Stats, PairBytes and SessionBytes agree
// exactly between Fabric and TCPTransport on the same traffic.
func TestTransportContractAccounting(t *testing.T) {
	const nodes = 4
	cases := transportCases()
	type snapshot struct {
		stats []LinkStats
		pair  [][]int64
		sess  map[int]int64
	}
	snap := map[string]snapshot{}
	for _, tc := range cases {
		tr := tc.build(t, nodes, 0)
		accountingScript(tr)
		s := snapshot{stats: tr.Stats(), pair: make([][]int64, nodes), sess: map[int]int64{}}
		for a := 0; a < nodes; a++ {
			s.pair[a] = make([]int64, nodes)
			for b := 0; b < nodes; b++ {
				s.pair[a][b] = tr.PairBytes(a, b)
			}
		}
		for sess := 1; sess <= 2; sess++ {
			s.sess[sess] = tr.SessionBytes(sess)
		}
		snap[tc.name] = s
	}
	ref, got := snap["fabric"], snap["tcp"]
	for i := range ref.stats {
		if ref.stats[i] != got.stats[i] {
			t.Errorf("node %d stats: fabric %+v, tcp %+v", i, ref.stats[i], got.stats[i])
		}
	}
	for a := 0; a < nodes; a++ {
		for b := 0; b < nodes; b++ {
			if ref.pair[a][b] != got.pair[a][b] {
				t.Errorf("pair %d->%d: fabric %d, tcp %d", a, b, ref.pair[a][b], got.pair[a][b])
			}
		}
	}
	for sess, want := range ref.sess {
		if got.sess[sess] != want {
			t.Errorf("session %d bytes: fabric %d, tcp %d", sess, want, got.sess[sess])
		}
	}
}

// TestTransportContractQueueSelect: Queue exposes a channel usable in a
// select together with Done, the shape the service root is built on.
func TestTransportContractQueueSelect(t *testing.T) {
	forEachTransport(t, 2, 0, func(t *testing.T, tr Transport) {
		tr.Port(1).Send(0, &Message{Kind: MsgAck, Seq: 42})
		select {
		case m := <-tr.Port(0).Queue(MsgAck):
			if m.Seq != 42 {
				t.Fatalf("queue delivered seq %d, want 42", m.Seq)
			}
		case <-tr.Port(0).Done():
			t.Fatalf("transport aborted: %v", tr.AbortCause())
		case <-time.After(5 * time.Second):
			t.Fatal("queued message never surfaced on Queue channel")
		}
	})
}
