package splitter

import (
	"sync"
	"testing"
	"time"

	"tiledwall/internal/cluster"
)

// pictureStream builds a synthetic elementary stream of bare picture units
// with the given payload sizes. The filler carries no start codes, so the
// root's scan sees exactly len(sizes) pictures.
func pictureStream(sizes []int) []byte {
	var out []byte
	for _, size := range sizes {
		out = append(out, 0, 0, 1, 0) // picture start code
		for j := 0; j < size; j++ {
			out = append(out, 0xAA)
		}
	}
	return out
}

// stubRecord is one picture observed by a stub splitter: its sequence
// number, the NSID that rode along, and its payload size.
type stubRecord struct {
	seq, nsid, size int
}

// runRootWithStubs drives RunRoot against stub second-level splitters whose
// only behaviour is the protocol's: consume a picture, stay busy for a time
// proportional to its size, then ack. Returns each stub's observation log.
func runRootWithStubs(t *testing.T, stream []byte, k int, dynamic bool) [][]stubRecord {
	t.Helper()
	fab := cluster.New(1+k, cluster.Config{})
	defer fab.Shutdown()
	nodes := make([]int, k)
	for i := range nodes {
		nodes[i] = 1 + i
	}
	logs := make([][]stubRecord, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		i := i
		node := fab.Node(nodes[i])
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m := node.Recv(cluster.MsgPicture)
				if m == nil || m.Seq < 0 {
					return
				}
				logs[i] = append(logs[i], stubRecord{seq: m.Seq, nsid: m.Tag, size: len(m.Payload)})
				// Busy time scales with picture size; the ack returns the
				// posted buffer only once the stub is free again, which is
				// the signal the credit-based chooser reads.
				time.Sleep(time.Duration(len(m.Payload)) * 500 * time.Nanosecond)
				node.Send(0, &cluster.Message{Kind: cluster.MsgAck, Seq: m.Seq})
			}
		}()
	}
	res, err := RunRoot(fab.Node(0), RootConfig{Stream: stream, SplitterNodes: nodes, Dynamic: dynamic})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	wantPics := 0
	for i := range logs {
		wantPics += len(logs[i])
	}
	if res.Pictures != wantPics {
		t.Fatalf("root reports %d pictures, stubs saw %d", res.Pictures, wantPics)
	}
	return logs
}

// loadOf reduces a run's logs to per-stub picture counts and byte loads.
func loadOf(logs [][]stubRecord) (counts []int, bytes []int) {
	counts, bytes = make([]int, len(logs)), make([]int, len(logs))
	for i, l := range logs {
		for _, r := range l {
			counts[i]++
			bytes[i] += r.size
		}
	}
	return
}

// TestDynamicBalanceSkewedLoad pins the point of credit-based selection
// under the skew that actually hurts round-robin: heavy intra-coded
// pictures recurring at the round-robin period itself (every k-th picture
// is ~64x the size of the rest — a GOP structure resonating with the
// splitter count), so strict round-robin funnels every heavy picture to
// splitter 0. The dynamic chooser sees that splitter's credits pinned at
// zero while it chews and routes pictures to whoever has free buffers: the
// busiest splitter ends up with both far fewer bytes and fewer pictures
// than its round-robin share. (The NSID protocol fixes each assignee one
// picture ahead of its send, so the chooser needs k >= 3 for a credit
// difference to be visible at decision time — with k = 2 a drained window
// ties both splitters and the chooser correctly degrades to round-robin.)
func TestDynamicBalanceSkewedLoad(t *testing.T) {
	const (
		pics = 24
		k    = 3
	)
	sizes := make([]int, pics)
	for i := range sizes {
		sizes[i] = 256
		if i%k == 0 {
			sizes[i] = 16384
		}
	}
	stream := pictureStream(sizes)

	rr := runRootWithStubs(t, stream, k, false)
	rrCounts, rrBytes := loadOf(rr)
	// Round-robin is deterministic: stub 0 takes every k-th picture,
	// including the heavy one.
	for i, c := range rrCounts {
		if c != pics/k {
			t.Fatalf("round-robin counts %v, want an even split of %d each (stub %d)", rrCounts, pics/k, i)
		}
	}
	rrMax := 0
	for _, b := range rrBytes {
		if b > rrMax {
			rrMax = b
		}
	}

	dyn := runRootWithStubs(t, stream, k, true)
	dynCounts, dynBytes := loadOf(dyn)
	busiest := 0
	for i, b := range dynBytes {
		if b > dynBytes[busiest] {
			busiest = i
		}
	}
	if dynBytes[busiest] >= rrMax {
		t.Fatalf("dynamic busiest splitter carries %dB, not below round-robin's %dB (dynamic loads %v)",
			dynBytes[busiest], rrMax, dynBytes)
	}
	// The splitter stuck with the heavy picture must end up with fewer
	// pictures than its round-robin share — least-loaded assignment means
	// the light pictures flow to the free splitters instead of queueing
	// behind the heavy one.
	if dynCounts[busiest] >= pics/k {
		t.Fatalf("dynamic busiest splitter still got %d of %d pictures (counts %v, bytes %v)",
			dynCounts[busiest], pics, dynCounts, dynBytes)
	}
	for i, c := range dynCounts {
		if c == 0 {
			t.Fatalf("dynamic starved splitter %d (counts %v)", i, dynCounts)
		}
	}
}

// TestDynamicBalanceNSID verifies the ordering protocol under dynamic
// assignment: the NSID riding along with picture p must name the node that
// actually received picture p+1, for every picture — that is the invariant
// the decoders' ANID redirect (and so display order) rests on.
func TestDynamicBalanceNSID(t *testing.T) {
	const pics = 20
	sizes := make([]int, pics)
	for i := range sizes {
		sizes[i] = 128
		if i%2 == 0 {
			sizes[i] = 4096
		}
	}
	stream := pictureStream(sizes)
	for _, dynamic := range []bool{false, true} {
		logs := runRootWithStubs(t, stream, 3, dynamic)
		assignee := make(map[int]int, pics) // seq -> node id
		nsid := make(map[int]int, pics)     // seq -> announced next node id
		for i, l := range logs {
			for _, r := range l {
				if _, dup := assignee[r.seq]; dup {
					t.Fatalf("dynamic=%v: picture %d delivered twice", dynamic, r.seq)
				}
				assignee[r.seq] = 1 + i
				nsid[r.seq] = r.nsid
			}
		}
		if len(assignee) != pics {
			t.Fatalf("dynamic=%v: %d of %d pictures delivered", dynamic, len(assignee), pics)
		}
		for seq := 0; seq < pics-1; seq++ {
			if nsid[seq] != assignee[seq+1] {
				t.Fatalf("dynamic=%v: picture %d announced NSID %d but picture %d went to node %d",
					dynamic, seq, nsid[seq], seq+1, assignee[seq+1])
			}
		}
	}
}
