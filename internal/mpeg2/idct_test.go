package mpeg2

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestIDCTAccuracy runs an IEEE 1180-style accuracy test: random blocks in
// the coefficient range, fast IDCT vs the double-precision reference.
// Thresholds follow the IEEE 1180 spirit (peak error <= 1, mean error small).
func TestIDCTAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 2000
	var peak int32
	var sumErr, sumSqErr float64
	for trial := 0; trial < trials; trial++ {
		var blk, ref [64]int32
		for i := range blk {
			v := int32(rng.Intn(512) - 256)
			blk[i] = v
			ref[i] = v
		}
		IDCT(&blk)
		IDCTRef(&ref)
		for i := range blk {
			d := blk[i] - ref[i]
			if d < 0 {
				d = -d
			}
			if d > peak {
				peak = d
			}
			sumErr += float64(d)
			sumSqErr += float64(d) * float64(d)
		}
	}
	if peak > 1 {
		t.Errorf("peak IDCT error %d, want <= 1", peak)
	}
	// Note: IEEE 1180 generates inputs in the pixel domain; uniform random
	// coefficients (used here) are a harsher distribution, so the mean/mse
	// bounds are slightly wider than the 1180 numbers while peak stays at 1.
	if mean := sumErr / (trials * 64); mean > 0.03 {
		t.Errorf("mean IDCT error %f, want <= 0.03", mean)
	}
	if mse := sumSqErr / (trials * 64); mse > 0.03 {
		t.Errorf("IDCT mse %f, want <= 0.03", mse)
	}
}

func TestIDCTDCOnly(t *testing.T) {
	var blk [64]int32
	blk[0] = 64 // IDCT of constant: every output = DC/8
	IDCT(&blk)
	for i, v := range blk {
		if v != 8 {
			t.Fatalf("dc-only idct[%d] = %d, want 8", i, v)
		}
	}
}

func TestIDCTZero(t *testing.T) {
	var blk [64]int32
	IDCT(&blk)
	for i, v := range blk {
		if v != 0 {
			t.Fatalf("zero idct[%d] = %d", i, v)
		}
	}
}

// Property: FDCTRef followed by IDCT returns close to the original samples.
func TestTransformRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var orig, blk [64]int32
		for i := range orig {
			orig[i] = int32(rng.Intn(256)) - 128
			blk[i] = orig[i]
		}
		FDCTRef(&blk)
		IDCT(&blk)
		for i := range blk {
			if d := blk[i] - orig[i]; d > 2 || d < -2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFDCTParseval checks energy preservation of the reference FDCT.
func TestFDCTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var blk [64]int32
	var inEnergy float64
	for i := range blk {
		blk[i] = int32(rng.Intn(256)) - 128
		inEnergy += float64(blk[i]) * float64(blk[i])
	}
	FDCTRef(&blk)
	var outEnergy float64
	for _, v := range blk {
		outEnergy += float64(v) * float64(v)
	}
	if math.Abs(inEnergy-outEnergy) > 0.02*inEnergy {
		t.Errorf("Parseval violated: in %.0f out %.0f", inEnergy, outEnergy)
	}
}

func TestScanOrdersArePermutations(t *testing.T) {
	for name, scan := range map[string]*[64]int{"zigzag": &ZigZagScan, "alternate": &AlternateScan} {
		var seen [64]bool
		for _, p := range scan {
			if p < 0 || p > 63 || seen[p] {
				t.Fatalf("%s scan is not a permutation", name)
			}
			seen[p] = true
		}
	}
}

func TestInverseScan(t *testing.T) {
	for _, alt := range []bool{false, true} {
		scan := ScanOrder(alt)
		inv := InverseScan(alt)
		for k := 0; k < 64; k++ {
			if inv[scan[k]] != k {
				t.Fatalf("alt=%v: inverse scan broken at %d", alt, k)
			}
		}
	}
}

func TestQuantiserScale(t *testing.T) {
	if got := QuantiserScale(10, false); got != 20 {
		t.Errorf("linear scale(10) = %d, want 20", got)
	}
	if got := QuantiserScale(10, true); got != 12 {
		t.Errorf("nonlinear scale(10) = %d, want 12", got)
	}
	// Clamping.
	if got := QuantiserScale(0, false); got != 2 {
		t.Errorf("scale(0) = %d, want clamp to 2", got)
	}
	if got := QuantiserScale(99, true); got != 112 {
		t.Errorf("scale(99) = %d, want clamp to 112", got)
	}
	// Monotonic.
	for _, qt := range []bool{false, true} {
		for c := 2; c <= 31; c++ {
			if QuantiserScale(c, qt) <= QuantiserScale(c-1, qt) {
				t.Errorf("scale not strictly increasing at code %d (type %v)", c, qt)
			}
		}
	}
}

func TestDequantIntraDC(t *testing.T) {
	var qf [64]int32
	qf[0] = 100
	w := DefaultIntraQuantMatrix
	DequantIntra(&qf, &w, 16, 3) // intra_dc_precision 0 -> shift 3
	if qf[0] != 800 {
		t.Errorf("DC dequant = %d, want 800", qf[0])
	}
}

func TestDequantMismatchControl(t *testing.T) {
	// A block whose coefficient sum is even must get its last coefficient
	// LSB toggled.
	var qf [64]int32
	qf[0] = 2 // DC with shift 0 -> 2; sum even
	w := DefaultIntraQuantMatrix
	DequantIntra(&qf, &w, 2, 0)
	if qf[63]&1 != 1 {
		t.Errorf("mismatch control did not toggle qf[63]: %d", qf[63])
	}
}

func TestDequantNonIntraZeroStaysZero(t *testing.T) {
	var qf [64]int32
	w := DefaultNonIntraQuantMatrix
	DequantNonIntra(&qf, &w, 8)
	for i := 0; i < 63; i++ {
		if qf[i] != 0 {
			t.Fatalf("zero coeff %d dequantised to %d", i, qf[i])
		}
	}
	// Sum 0 is even: mismatch toggles 63.
	if qf[63] != 1 {
		t.Fatalf("qf[63] = %d, want mismatch toggle to 1", qf[63])
	}
}

func TestDequantSaturation(t *testing.T) {
	var qf [64]int32
	qf[5] = 3000
	qf[6] = -3000
	w := DefaultNonIntraQuantMatrix
	DequantNonIntra(&qf, &w, 62)
	if qf[5] != 2047 || qf[6] != -2048 {
		t.Errorf("saturation: got %d, %d", qf[5], qf[6])
	}
}

// Property: non-intra dequantisation preserves sign and is monotone in the
// quantised value.
func TestDequantNonIntraMonotoneQuick(t *testing.T) {
	w := DefaultNonIntraQuantMatrix
	f := func(q uint8, a, b int16) bool {
		qs := QuantiserScale(int(q%31)+1, false)
		x, y := int32(a%200), int32(b%200)
		if x == y {
			return true
		}
		if x > y {
			x, y = y, x
		}
		var qf [64]int32
		qf[1], qf[2] = x, y
		DequantNonIntra(&qf, &w, qs)
		return qf[1] <= qf[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIDCT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var blk [64]int32
	for i := range blk {
		blk[i] = int32(rng.Intn(512) - 256)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tmp := blk
		IDCT(&tmp)
	}
}
