// Package system assembles the parallel decoding pipelines: the paper's
// one-level 1-(m,n) and hierarchical two-level 1-k-(m,n) systems, plus the
// coarse-granularity baselines of Table 1. Each simulated PC is a goroutine
// attached to a cluster fabric node.
package system

import (
	"fmt"
	"sync"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/pdec"
	"tiledwall/internal/recovery"
	"tiledwall/internal/splitter"
	"tiledwall/internal/wall"
)

// Config describes a 1-k-(m,n) run. K = 0 selects the one-level 1-(m,n)
// system in which the root itself splits at macroblock level.
type Config struct {
	K       int // second-level splitters (0 = one-level)
	M, N    int // decoder/tile grid
	Overlap int // projector overlap in pixels

	// MaxFCode bounds the stream's motion vector range and sizes the
	// decoders' halo windows; 0 defaults to 3 (±32 px), the encoder default.
	MaxFCode int

	// DynamicBalance makes the root assign pictures to the least-loaded
	// splitter instead of round-robin (the paper's §6 future work).
	DynamicBalance bool

	// SplitWorkers is the slice-parallel fan-out inside every macroblock
	// splitter (second-level and one-level combined): each picture's slices
	// are parsed concurrently by this many goroutines, shrinking the paper's
	// ts term on multicore hosts — parallelism the paper's single-CPU nodes
	// could only buy by adding splitter PCs. 0 selects GOMAXPROCS, 1 the
	// serial path; sub-pictures are byte-identical for every value (the
	// conformance matrix runs a split-workers axis to prove it).
	SplitWorkers int

	// UnbatchedExchange disables per-peer batching of MEI block messages
	// (ablation; see pdec.Config.UnbatchedSends).
	UnbatchedExchange bool

	// Fabric carries throttling options for the message fabric.
	Fabric cluster.Config

	// Transport selects the message transport: "" or "fabric" for the
	// in-process fabric, "tcp" for the socket transport over loopback (every
	// node still lives in this process, but all traffic crosses real TCP
	// connections through a hub — the single-process form of the
	// multi-process wall, and what the cross-transport conformance matrix
	// exercises). Combines with Recovery: a recovery-enabled TCP wall runs
	// the resident fault-tolerant pipeline with recoverable (redialing)
	// links.
	Transport string

	// CollectFrames assembles full output frames for verification (adds
	// memory traffic outside the measured path).
	CollectFrames bool

	// OnTileFrame, when set, receives every decoded tile frame in display
	// order (per tile per session) — the display-server hook, and the only
	// per-tile output a partially subscribed session produces (full wall
	// frames cannot be assembled when unwatched tiles emit nothing).
	OnTileFrame func(session, displayIdx, tile int, buf *mpeg2.PixelBuf)

	// Pooled recycles message slabs, pixel buffers and per-picture decode
	// state across the pipeline, eliminating steady-state heap allocation on
	// the decode hot path. Pixels must be bit-identical either way — the
	// conformance matrix runs a pooled axis to prove it. Composes with
	// Recovery: every holder that outlives a payload's consumer (the root's
	// retainer, the decoders' reorder stashes) carries its own slab reference
	// and the last release recycles the buffer (DESIGN.md §9).
	Pooled bool

	// Recovery enables the fault-tolerance layer (DESIGN.md §6): supervised
	// in-place respawn of crashed splitters and decoders (heartbeat leases),
	// root-side picture retention and replay, and concealment past the
	// per-picture deadline — the same model over the in-process fabric and
	// TCP. Disabled (the zero value), the pipeline keeps PR 1's fail-stop
	// behaviour.
	Recovery recovery.Config

	// Chaos injects crashes into a recovery-enabled run (tests and the
	// benchwall -chaos mode). Ignored when Recovery is disabled.
	Chaos recovery.ChaosPlan

	// MaxSessions and MaxInFlightPictures bound admission on resident walls
	// (NewResidentWall); both default to 8. A one-shot Run uses a single
	// session and is unaffected.
	MaxSessions         int
	MaxInFlightPictures int
}

// validate reports configuration interactions that are accepted but change
// behaviour, so they are explicit instead of silent. The warnings are
// recorded on Result.Warnings.
func (c Config) validate() []string {
	var warns []string
	if c.Transport == "tcp" {
		if c.Fabric.BandwidthBps > 0 || c.Fabric.Latency > 0 {
			warns = append(warns,
				"Fabric bandwidth/latency throttling is not applied by the TCP transport; loopback speed is what you measure")
		}
		if c.Fabric.Drop != nil {
			warns = append(warns,
				"Fabric.Drop is not applied by the TCP transport (TCP is reliable); use TCPTransport.InjectLinkFailure for fault tests")
		}
	}
	return warns
}

// Result reports one pipeline run.
type Result struct {
	Config     Config
	Throughput metrics.Throughput

	Root      *splitter.RootResult
	Splitters []*splitter.SecondResult
	Decoders  []*pdec.Result

	// NodeStats indexes fabric traffic by node id (root, splitters,
	// decoders in wiring order).
	NodeStats []cluster.LinkStats
	// RootNodeID, SplitterNodeIDs and DecoderNodeIDs give the wiring.
	RootNodeID      int
	SplitterNodeIDs []int
	DecoderNodeIDs  []int

	// Frames holds assembled output frames in display order when
	// CollectFrames was set.
	Frames []*mpeg2.PixelBuf

	// StreamBytes is the input size, for equivalent-bit-rate reporting.
	StreamBytes int64

	// Recovery reports the fault-tolerance interventions of the run (always
	// zero when Config.Recovery is disabled). Clean() distinguishes lossless
	// repair from visible degradation.
	Recovery metrics.RecoverySnapshot

	// TileEmissions records, per tile, the decode-order picture indices in
	// emission order (recovery runs only). Exactly-once delivery means each
	// tile's sorted list is 0..Pictures-1 with no duplicates.
	TileEmissions [][]int

	// Warnings lists accepted-but-surprising configuration interactions
	// (Config.validate). EffectivePooled always equals Config.Pooled now
	// that pooling composes with recovery; the field survives so report
	// tooling keyed on it keeps working.
	Warnings        []string
	EffectivePooled bool

	transport cluster.Transport
}

// PairBytes returns bytes sent from fabric node a to node b during the run.
func (r *Result) PairBytes(a, b int) int64 {
	if r.transport == nil {
		return 0
	}
	return r.transport.PairBytes(a, b)
}

// Modeled returns the pipeline-model throughput: pictures divided by the
// busiest node's CPU time. With the two-buffer credit protocol, a steady
// pipeline runs at the rate of its slowest stage — the paper's formula
// F = min(k/ts, 1/td) (§4.6) — and on a real cluster wall-clock throughput
// converges to this. The simulation's own wall clock (Throughput) sums every
// node's work when cores are scarce, so Modeled is what the evaluation
// tables report; EXPERIMENTS.md discusses the methodology.
func (r *Result) Modeled() metrics.Throughput {
	var busiest time.Duration
	if r.Root != nil {
		if b := r.Root.ScanTime + r.Root.CopyTime + r.Root.SendTime; b > busiest {
			busiest = b
		}
	}
	for _, sp := range r.Splitters {
		if sp == nil {
			continue
		}
		if b := sp.Breakdown.Busy(); b > busiest {
			busiest = b
		}
	}
	for _, d := range r.Decoders {
		if d == nil {
			continue
		}
		if b := d.Breakdown.Busy(); b > busiest {
			busiest = b
		}
	}
	out := r.Throughput
	if busiest > 0 {
		out.Elapsed = busiest
	}
	return out
}

// NumNodes returns the PC count of the configuration (1 root + k + m*n),
// the x-axis of the paper's Figures 6 and 8.
func (c Config) NumNodes() int { return 1 + c.K + c.M*c.N }

func (c *Config) defaults() {
	if c.MaxFCode == 0 {
		c.MaxFCode = 3
	}
}

// frameCollector gathers per-tile outputs (display order per tile) and
// assembles them.
type frameCollector struct {
	mu    sync.Mutex
	geo   *wall.Geometry
	tiles [][]*mpeg2.PixelBuf // [tile][emission index]
}

func newFrameCollector(geo *wall.Geometry) *frameCollector {
	return &frameCollector{geo: geo, tiles: make([][]*mpeg2.PixelBuf, geo.NumTiles())}
}

func (fc *frameCollector) onFrame(_ int, tile int, buf *mpeg2.PixelBuf) {
	fc.mu.Lock()
	fc.tiles[tile] = append(fc.tiles[tile], buf)
	fc.mu.Unlock()
}

// onIndexedFrame stores a tile frame at an explicit display index, for
// pipelines whose display servers receive frames out of order.
func (fc *frameCollector) onIndexedFrame(displayIdx, tile int, buf *mpeg2.PixelBuf) {
	fc.mu.Lock()
	for len(fc.tiles[tile]) <= displayIdx {
		fc.tiles[tile] = append(fc.tiles[tile], nil)
	}
	fc.tiles[tile][displayIdx] = buf
	fc.mu.Unlock()
}

// assembleIndexed assembles exactly total frames, requiring every slot to be
// filled.
func (fc *frameCollector) assembleIndexed(total int) ([]*mpeg2.PixelBuf, error) {
	row := make([]*mpeg2.PixelBuf, len(fc.tiles))
	var frames []*mpeg2.PixelBuf
	for i := 0; i < total; i++ {
		for t := range fc.tiles {
			if i >= len(fc.tiles[t]) || fc.tiles[t][i] == nil {
				return nil, fmt.Errorf("system: tile %d missing display frame %d", t, i)
			}
			row[t] = fc.tiles[t][i]
		}
		f, err := fc.geo.Assemble(row)
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}

func (fc *frameCollector) assemble() ([]*mpeg2.PixelBuf, error) {
	n := -1
	for t, list := range fc.tiles {
		if n == -1 {
			n = len(list)
		} else if len(list) != n {
			return nil, fmt.Errorf("system: tile %d emitted %d frames, others %d", t, len(list), n)
		}
	}
	var frames []*mpeg2.PixelBuf
	row := make([]*mpeg2.PixelBuf, len(fc.tiles))
	for i := 0; i < n; i++ {
		for t := range fc.tiles {
			row[t] = fc.tiles[t][i]
		}
		f, err := fc.geo.Assemble(row)
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// Run executes the pipeline over a complete elementary stream: it opens a
// resident wall, plays the stream as its only session, and closes the wall.
// This is the single execution path for every configuration — transports,
// pooling and recovery included. The session path is byte-identical to the
// historical batch pipeline — the conformance matrix proves it — so Run
// remains the reference entry point.
func Run(stream []byte, cfg Config) (*Result, error) {
	cfg.defaults()
	w, err := NewResidentWall(cfg)
	if err != nil {
		return nil, err
	}
	res, perr := w.Play(stream)
	cerr := w.Close()
	if perr == nil {
		perr = cerr
	}
	return res, perr
}
