package mpeg2

import (
	"errors"
	"fmt"
	"io"

	"tiledwall/internal/bits"
)

// Stream is an indexed MPEG-2 video elementary stream: the sequence header
// plus the byte range of every picture unit in decode order. Picture units
// are zero-copy sub-slices of the input running from the picture start code
// up to (not including) the next picture, GOP, sequence header or sequence
// end code.
type Stream struct {
	Seq      *SequenceHeader
	Pictures [][]byte
	Data     []byte
}

// maxPictureMBs bounds the macroblock count ParseStream accepts: 1<<20
// macroblocks is a 16384x16384 picture, comfortably above every catalogue
// stream but small enough that a fuzzed header cannot demand pathological
// allocations.
const maxPictureMBs = 1 << 20

// ParseSequenceHeaderBytes parses the sequence header (and optional sequence
// extension) at the head of data, enforcing the decoder's picture-size bound.
// data may be a full stream or just its header prefix — everything before the
// first picture start code — which is what a resident wall's session-open
// message carries to the long-lived splitter and decoder nodes.
func ParseSequenceHeaderBytes(data []byte) (*SequenceHeader, error) {
	off := bits.NextStartCode(data, 0)
	if off < 0 {
		return nil, syntaxErrf("no start code in stream")
	}
	code, _ := bits.StartCodeAt(data, off)
	if code != bits.SequenceHeaderCod {
		return nil, syntaxErrf("stream does not begin with a sequence header (code %#x)", code)
	}
	r := bits.NewReader(data)
	r.SeekBit((off + 4) * 8)
	seq, err := ParseSequenceHeader(r)
	if err != nil {
		return nil, err
	}
	// Optional sequence extension.
	if bits.NextStartCodeReader(r) {
		if pos := r.BitPos() / 8; data[pos+3] == bits.ExtensionStartCod {
			r.Skip(32)
			if err := ParseSequenceExtension(r, seq); err != nil {
				return nil, err
			}
		}
	}
	// Bound the picture size before anyone allocates frame buffers from it: a
	// corrupt 12+2-bit dimension field can describe a picture three orders of
	// magnitude larger than the ultra-high-resolution streams this system
	// targets (3840x2800 is ~42k macroblocks).
	if mbs := seq.MBWidth() * seq.MBHeight(); mbs > maxPictureMBs {
		return nil, syntaxErrf("picture size %dx%d (%d macroblocks) exceeds decoder bound", seq.Width, seq.Height, mbs)
	}
	return seq, nil
}

// ParseStream indexes a stream. It parses the leading sequence header (and
// extension) and records picture unit boundaries without parsing picture
// contents.
func ParseStream(data []byte) (*Stream, error) {
	s := &Stream{Data: data}
	seq, err := ParseSequenceHeaderBytes(data)
	if err != nil {
		return nil, err
	}
	off := bits.NextStartCode(data, 0)
	s.Seq = seq

	picStart := -1
	flush := func(end int) {
		if picStart >= 0 {
			s.Pictures = append(s.Pictures, data[picStart:end])
			picStart = -1
		}
	}
	for o := bits.NextStartCode(data, off+4); o >= 0; o = bits.NextStartCode(data, o+4) {
		c := data[o+3]
		switch {
		case c == bits.PictureStartCode:
			flush(o)
			picStart = o
		case c == bits.GroupStartCode, c == bits.SequenceHeaderCod, c == bits.SequenceEndCode:
			flush(o)
		}
	}
	flush(len(data))
	if len(s.Pictures) == 0 {
		return nil, syntaxErrf("stream contains no pictures")
	}
	return s, nil
}

// ParsePictureUnit parses the picture header and coding extension at the
// start of a picture unit and returns the header plus the bit offset of the
// first slice start code within unit.
func ParsePictureUnit(unit []byte) (*PictureHeader, int, error) {
	return parsePictureUnitReader(bits.NewReader(unit), unit)
}

func parsePictureUnitReader(r *bits.Reader, unit []byte) (*PictureHeader, int, error) {
	ph := &PictureHeader{}
	sliceOff, err := ParsePictureUnitInto(r, unit, ph)
	if err != nil {
		return nil, 0, err
	}
	return ph, sliceOff, nil
}

// ParsePictureUnitInto is ParsePictureUnit into caller-owned storage: ph is
// overwritten in full and r (positioned at the start of unit) supplies the
// scratch reader. It returns the bit offset of the first slice start code.
// The pooled splitter path keeps one header and reader across pictures.
func ParsePictureUnitInto(r *bits.Reader, unit []byte, ph *PictureHeader) (int, error) {
	if code := r.Read(32); code != 0x00000100 {
		return 0, syntaxErrf("picture unit does not start with picture start code (%08x)", code)
	}
	if err := ParsePictureHeaderInto(r, ph); err != nil {
		return 0, err
	}
	// Extensions and user data until the first slice.
	for bits.NextStartCodeReader(r) {
		pos := r.BitPos() / 8
		code := unit[pos+3]
		if bits.IsSliceStartCode(code) {
			return r.BitPos(), nil
		}
		r.Skip(32)
		switch code {
		case bits.ExtensionStartCod:
			if id := int(r.Peek(4)); id == extPictureCoding {
				if err := ParsePictureCodingExtension(r, ph); err != nil {
					return 0, err
				}
			}
		case bits.UserDataStartCode:
			// Skipped; the scan loop advances to the next start code.
		}
	}
	return 0, syntaxErrf("picture unit has no slices")
}

// DecodePictureUnit decodes one picture unit into dst using the given
// reference windows (fwd for P, fwd+bwd for B; both ignored for I). dst must
// cover the full coded picture.
func DecodePictureUnit(seq *SequenceHeader, unit []byte, fwd, bwd, dst *PixelBuf) (*PictureHeader, error) {
	return new(DecodeScratch).DecodePictureUnit(seq, unit, fwd, bwd, dst)
}

// DecodeScratch holds the reusable per-goroutine state of picture decoding:
// the picture context, the reconstructor with its prediction buffers, the
// slice decoder with its coefficient scratch, and the bit reader. One
// DecodeScratch per decoding goroutine turns everything but the returned
// PictureHeader (which outlives the call in reference rotation and display
// reordering) into zero-allocation steady state.
type DecodeScratch struct {
	ctx PictureContext
	rc  Reconstructor
	sd  SliceDecoder
	r   bits.Reader
	mb  Macroblock
}

// DecodePictureUnit is the pooled form of the package-level function,
// drawing all per-picture state from the scratch.
func (sc *DecodeScratch) DecodePictureUnit(seq *SequenceHeader, unit []byte, fwd, bwd, dst *PixelBuf) (*PictureHeader, error) {
	sc.r.Reset(unit)
	ph, sliceOff, err := parsePictureUnitReader(&sc.r, unit)
	if err != nil {
		return nil, err
	}
	if err := sc.ctx.Init(seq, ph); err != nil {
		return nil, err
	}
	sc.rc.Reset(ph)
	sc.r.SeekBit(sliceOff)
	for bits.NextStartCodeReader(&sc.r) {
		pos := sc.r.BitPos() / 8
		code := unit[pos+3]
		if !bits.IsSliceStartCode(code) {
			break
		}
		sc.r.Skip(32)
		vpos := int(code)
		if seq.Height > 2800 {
			vpos = int(sc.r.Read(3))<<7 + vpos
		}
		if err := sc.decodeSlice(vpos, fwd, bwd, dst); err != nil {
			return nil, fmt.Errorf("picture tref %d (%s) slice row %d: %w", ph.TemporalRef, ph.PicType, vpos, err)
		}
	}
	return ph, nil
}

// decodeSlice is the unpooled slice loop used by the band and concealment
// decoders, which manage their own contexts and readers.
func decodeSlice(ctx *PictureContext, rc *Reconstructor, r *bits.Reader, vpos int, fwd, bwd, dst *PixelBuf) error {
	sd, err := NewSliceDecoder(ctx, r, vpos)
	if err != nil {
		return err
	}
	var mb Macroblock
	for {
		ok, err := sd.Next(&mb)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for k := mb.Addr - mb.SkippedBefore; k < mb.Addr; k++ {
			if err := rc.Skipped(dst, fwd, bwd, k%ctx.MBW, k/ctx.MBW, mb.PrevMotion); err != nil {
				return err
			}
		}
		if err := rc.Macroblock(dst, fwd, bwd, &mb, ctx.MBW); err != nil {
			return err
		}
	}
}

func (sc *DecodeScratch) decodeSlice(vpos int, fwd, bwd, dst *PixelBuf) error {
	if err := sc.sd.ResetFull(&sc.ctx, &sc.r, vpos); err != nil {
		return err
	}
	mb := &sc.mb
	for {
		ok, err := sc.sd.Next(mb)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for k := mb.Addr - mb.SkippedBefore; k < mb.Addr; k++ {
			if err := sc.rc.Skipped(dst, fwd, bwd, k%sc.ctx.MBW, k/sc.ctx.MBW, mb.PrevMotion); err != nil {
				return err
			}
		}
		if err := sc.rc.Macroblock(dst, fwd, bwd, mb, sc.ctx.MBW); err != nil {
			return err
		}
	}
}

// DecodedPicture is one output picture in display order.
type DecodedPicture struct {
	Buf *PixelBuf
	Pic *PictureHeader
	// DecodeIndex is the position of the picture in decode (stream) order.
	DecodeIndex int
}

// Decoder is the reference serial decoder. It decodes picture units in
// stream order and emits pictures in display order, managing the two
// reference frames and the I/P reordering delay.
//
// Output buffers come from the pixel-buffer pool: a caller that is done with
// an emitted DecodedPicture may call Buf.Release() to let the decoder (or
// anything else of the same geometry) reuse it. Callers that keep frames
// simply never release them — the pool then behaves like plain allocation.
type Decoder struct {
	stream *Stream
	next   int // next picture unit index

	refA, refB        *PixelBuf // older and newer anchor
	refBPic           *PictureHeader
	refBIdx           int
	havePendingAnchor bool

	pending []DecodedPicture
	head    int // index of the next pending picture to emit
	done    bool

	scratch DecodeScratch
}

// NewDecoder parses data and returns a Decoder.
func NewDecoder(data []byte) (*Decoder, error) {
	s, err := ParseStream(data)
	if err != nil {
		return nil, err
	}
	return NewStreamDecoder(s), nil
}

// NewStreamDecoder returns a Decoder over an already indexed stream.
func NewStreamDecoder(s *Stream) *Decoder {
	return &Decoder{stream: s}
}

// Seq returns the stream's sequence header.
func (d *Decoder) Seq() *SequenceHeader { return d.stream.Seq }

// codedSize returns macroblock-aligned picture dimensions.
func codedSize(seq *SequenceHeader) (int, int) {
	return seq.MBWidth() * 16, seq.MBHeight() * 16
}

// PeekPictureType reads the picture_coding_type of a picture unit without
// parsing the rest of the header. The splitters use it too: it is the only
// picture-level parsing the root splitter performs.
func PeekPictureType(unit []byte) (PictureType, error) {
	r := bits.NewReader(unit)
	if code := r.Read(32); code != 0x00000100 {
		return 0, syntaxErrf("picture unit does not start with picture start code")
	}
	r.Skip(10) // temporal_reference
	t := PictureType(r.Read(3))
	if t < PictureI || t > PictureB {
		return 0, syntaxErrf("picture coding type %d", int(t))
	}
	return t, streamErr(r.Err())
}

// Next returns the next picture in display order, or io.EOF.
func (d *Decoder) Next() (DecodedPicture, error) {
	for d.head >= len(d.pending) {
		d.pending = d.pending[:0]
		d.head = 0
		if d.next >= len(d.stream.Pictures) {
			if !d.done {
				d.done = true
				if d.havePendingAnchor {
					d.pending = append(d.pending, DecodedPicture{Buf: d.refB, Pic: d.refBPic, DecodeIndex: d.refBIdx})
					d.havePendingAnchor = false
				}
			}
			if len(d.pending) == 0 {
				return DecodedPicture{}, io.EOF
			}
			break
		}
		unit := d.stream.Pictures[d.next]
		idx := d.next
		d.next++

		picType, err := PeekPictureType(unit)
		if err != nil {
			return DecodedPicture{}, err
		}
		w, h := codedSize(d.stream.Seq)
		dst := AcquirePixelBuf(0, 0, w, h)

		var fwd, bwd *PixelBuf
		switch picType {
		case PictureI:
		case PictureP:
			if d.refB == nil {
				return DecodedPicture{}, syntaxErrf("P picture before any anchor")
			}
			fwd = d.refB
		case PictureB:
			if d.refA == nil || d.refB == nil {
				return DecodedPicture{}, syntaxErrf("B picture without two anchors")
			}
			fwd, bwd = d.refA, d.refB
		}
		ph, err := d.scratch.DecodePictureUnit(d.stream.Seq, unit, fwd, bwd, dst)
		if err != nil {
			return DecodedPicture{}, err
		}
		if ph.PicType != picType {
			return DecodedPicture{}, syntaxErrf("picture type changed between peek and parse")
		}

		if picType == PictureB {
			d.pending = append(d.pending, DecodedPicture{Buf: dst, Pic: ph, DecodeIndex: idx})
			continue
		}
		// Anchor: emit the previously held anchor, hold this one.
		if d.havePendingAnchor {
			d.pending = append(d.pending, DecodedPicture{Buf: d.refB, Pic: d.refBPic, DecodeIndex: d.refBIdx})
		}
		d.refA = d.refB
		d.refB = dst
		d.refBPic = ph
		d.refBIdx = idx
		d.havePendingAnchor = true
	}
	p := d.pending[d.head]
	d.pending[d.head] = DecodedPicture{}
	d.head++
	return p, nil
}

// DecodeAll decodes the entire stream and returns the pictures in display
// order. It is a convenience for tests, tools and the baseline systems.
func (d *Decoder) DecodeAll() ([]DecodedPicture, error) {
	var out []DecodedPicture
	for {
		p, err := d.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
