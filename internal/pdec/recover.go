package pdec

import (
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/subpic"
)

// This file is the decoder's fault-masking path (DESIGN.md §6), active when
// Config.Recovery is wired. Sub-pictures may arrive out of order (the root
// replays retained pictures to a respawned splitter while the others keep
// sending new ones), duplicated (replay overlaps the queue a dead
// incarnation left behind), or not at all (a splitter died mid-distribution
// after its credit was settled). The strict path treats all of these as
// protocol violations; this path reorders, deduplicates, and — past the
// per-picture deadline — conceals. It runs identically over the in-process
// fabric and TCP: the serving layer owns the receive loop, this file owns
// the protocol.

// stashedSubPic is one out-of-order sub-picture parked until the frontier
// reaches it. On a pooled wall the entry keeps the message payload (which
// the parsed pieces alias) so it can be released when the entry is consumed.
type stashedSubPic struct {
	sp      *subpic.SubPicture
	payload []byte
}

// doneByTotal reports whether every picture of the stream has been handled.
func (d *Decoder) doneByTotal() bool {
	return d.finalTotal >= 0 && d.nextPic >= d.finalTotal
}

// ResumeAt restores a respawned resident decoder's position in one session:
// pictures below next were emitted by the dead incarnation and stay on the
// projector; everything the new incarnation holds is untrusted, so it
// conceals (grey, then freeze) until an I picture re-anchors the chain.
// holes lists decode indices below next the dead incarnation held back
// (B-reorder anchors) and never emitted; they are conceal-emitted here, once,
// so every index still reaches the projector exactly once.
func (d *Decoder) ResumeAt(next int, holes []int) {
	d.nextPic = next
	d.validAnchors = 0
	for _, b := range d.bufs {
		b.Fill(128, 128, 128)
	}
	d.display.Fill(128, 128, 128)
	for _, idx := range holes {
		d.concealEmit(idx)
	}
}

// releaseStash returns every parked payload to the slab pool (pooled walls
// only): called when the session ends with the stash non-empty — entries
// beyond the final total that no frontier will ever consume.
func (d *Decoder) releaseStash() {
	if !d.cfg.Pooled {
		return
	}
	for idx, e := range d.spStash {
		cluster.PutSlab(e.payload)
		delete(d.spStash, idx)
	}
}

// HandleSubPictureRecover is HandleSubPicture on the fault-masking protocol,
// for resident servers that receive on the decoder's behalf. Duplicates
// (replay overlap) are dropped; pictures that overtake the frontier — root
// replays after a splitter respawn, or a sibling session's failure skewing
// the cross-splitter ack chain — wait in the reorder stash; a hole older than
// the per-picture deadline (SweepDeadline) is declared lost and concealed. A
// session completes when all pictures are handled or when every one of
// numFinals splitters has delivered its final marker (its last message, by
// sender FIFO) and the stash has been flushed around the true holes.
func (d *Decoder) HandleSubPictureRecover(msg *cluster.Message, numFinals int) (bool, error) {
	b := &d.res.Breakdown
	d.cfg.Recovery.Renew()
	pooled := d.cfg.Pooled
	var sp *subpic.SubPicture
	if pooled {
		sp = &d.spScratch
		if err := subpic.UnmarshalInto(sp, msg.Payload); err != nil {
			// Undecodable sub-picture: drop it; the deadline path conceals
			// the picture once later ones arrive.
			cluster.PutSlab(msg.Payload)
			return false, nil
		}
	} else {
		var err error
		sp, err = subpic.Unmarshal(msg.Payload)
		if err != nil {
			return false, nil
		}
	}
	if sp.Final {
		if pooled {
			cluster.PutSlab(msg.Payload)
		}
		d.finalTotal = int(sp.Pic.Index)
		if d.finalsFrom == nil {
			d.finalsFrom = map[int]bool{}
		}
		d.finalsFrom[msg.From] = true
		if len(d.finalsFrom) >= numFinals {
			// Every splitter's stream is exhausted: by sender FIFO nothing
			// more is coming. Decode what the reorder stash holds and conceal
			// the true holes so the session can drain.
			d.flushToTotal()
		}
		return d.doneByTotal(), nil
	}
	// Replays are not acked: the original ack (or the upstream credit
	// timeout) already settled the flow-control ledger.
	if msg.Flags&cluster.FlagReplay == 0 {
		b.Timed(metrics.PhaseAck, func() {
			d.node.Send(msg.Tag, &cluster.Message{Kind: cluster.MsgAck, Seq: msg.Seq, Session: msg.Session})
		})
	}
	idx := int(sp.Pic.Index)
	switch {
	case idx < d.nextPic:
		// Duplicate of a handled (or concealed) picture. Each duplicate is a
		// distinct marshalled slab (splitters serialise per send), so this
		// copy is released independently of the one already consumed.
		if pooled {
			cluster.PutSlab(msg.Payload)
		}
		return false, nil
	case idx > d.nextPic:
		if _, dup := d.spStash[idx]; dup {
			if pooled {
				cluster.PutSlab(msg.Payload)
			}
		} else if pooled {
			// The stash outlives this call and the scratch sub-picture: park
			// a heap-parsed copy whose pieces keep aliasing the payload, and
			// carry the payload for release when the entry is consumed.
			if stSp, err := subpic.Unmarshal(msg.Payload); err == nil {
				d.spStash[idx] = stashedSubPic{sp: stSp, payload: msg.Payload}
			} else {
				cluster.PutSlab(msg.Payload)
			}
		} else {
			d.spStash[idx] = stashedSubPic{sp: sp}
		}
		if d.gapSince.IsZero() {
			d.gapSince = time.Now()
		}
		return false, nil
	}
	d.nextPic++
	d.decodePictureRecover(sp)
	if pooled {
		// Every piece aliased the message payload and has been decoded (or
		// concealed); nothing references the slab anymore.
		cluster.PutSlab(msg.Payload)
	}
	d.res.Pictures++
	b.Pictures++
	d.drainStashRecover()
	return d.doneByTotal(), nil
}

// drainStashRecover decodes stashed successors that the advancing frontier
// has made in-order, then re-arms the hole timer: an empty stash means
// delivery is in order again, a non-empty one starts a fresh deadline for the
// next hole.
func (d *Decoder) drainStashRecover() {
	for {
		e, ok := d.spStash[d.nextPic]
		if !ok {
			break
		}
		delete(d.spStash, d.nextPic)
		d.nextPic++
		d.decodePictureRecover(e.sp)
		if d.cfg.Pooled {
			cluster.PutSlab(e.payload)
		}
		d.res.Pictures++
		d.res.Breakdown.Pictures++
	}
	if len(d.spStash) == 0 {
		d.gapSince = time.Time{}
	} else {
		d.gapSince = time.Now()
	}
}

// flushToTotal drives the session to its known total: stashed pictures are
// decoded, holes are concealed.
func (d *Decoder) flushToTotal() {
	for d.nextPic < d.finalTotal {
		if e, ok := d.spStash[d.nextPic]; ok {
			delete(d.spStash, d.nextPic)
			d.nextPic++
			d.decodePictureRecover(e.sp)
			if d.cfg.Pooled {
				cluster.PutSlab(e.payload)
			}
			d.res.Pictures++
			d.res.Breakdown.Pictures++
		} else {
			d.concealUnknown(d.nextPic)
		}
	}
	d.gapSince = time.Time{}
	d.releaseStash()
}

// SweepDeadline conceals past a reorder hole that has outlived the
// per-picture deadline: pictures below the oldest stashed index are lost for
// good (their splitter died, or their session failed upstream), so the
// frontier freezes through them and the stash drains. Returns whether the
// session is now complete.
func (d *Decoder) SweepDeadline(deadline time.Duration) bool {
	if len(d.spStash) == 0 || d.gapSince.IsZero() || time.Since(d.gapSince) < deadline {
		return false
	}
	oldest := -1
	for idx := range d.spStash {
		if oldest == -1 || idx < oldest {
			oldest = idx
		}
	}
	for d.nextPic < oldest {
		d.concealUnknown(d.nextPic)
	}
	d.drainStashRecover()
	return d.doneByTotal()
}

// decodePictureRecover is decodePicture with every abort turned into
// concealment. The exchange halves always execute — peers block on this
// tile's SENDs whether or not it can decode, and expected RECVs must be
// drained to stay in step — so a concealing tile ships its stale reference
// pixels and keeps the wall live.
func (d *Decoder) decodePictureRecover(sp *subpic.SubPicture) {
	b := &d.res.Breakdown
	if sp.Skipped {
		// Subscription skip marker: advances the frontier (the caller already
		// did) with nothing to decode, exchange, or conceal — skip markers
		// only replace pictures that feed no reference this tile needs.
		d.res.Skipped++
		return
	}
	ph := sp.Pic.Header()
	idx := int(sp.Pic.Index)

	needed := 0
	switch ph.PicType {
	case mpeg2.PictureP:
		needed = 1
	case mpeg2.PictureB:
		needed = 2
	}
	ctx, ctxErr := mpeg2.NewPictureContext(d.cfg.Seq, ph)
	ok := d.validAnchors >= needed && ctxErr == nil

	var sendErr error
	b.Timed(metrics.PhaseServe, func() { sendErr = d.executeSends(sp, ph.PicType) })
	if sendErr != nil {
		ok = false
	}
	b.Timed(metrics.PhaseWaitMB, func() { d.drainRecvsRecover(sp, ph.PicType, ok) })

	if ok {
		var workErr error
		b.Timed(metrics.PhaseWork, func() { workErr = d.decodePieces(ctx, sp) })
		if workErr != nil {
			ok = false
		}
	}
	if !ok {
		d.concealKnown(idx, ph.PicType)
		return
	}

	if !sp.NoEmit {
		b.Timed(metrics.PhaseWork, func() {
			d.display.CopyRect(d.bufs[d.cur], d.rect.X0, d.rect.Y0, d.rect.W(), d.rect.H())
		})
	}

	if ph.PicType == mpeg2.PictureB {
		if !sp.NoEmit {
			d.emitFrame(idx, d.bufs[d.cur])
		}
	} else {
		d.flushPending()
		d.pendingAnchor = true
		d.pendingAnchorEmit = !sp.NoEmit
		d.pendingAnchorIdx = idx
		d.rotate()
		if d.validAnchors < 2 {
			d.validAnchors++
		}
	}
}

// rotate advances the three-buffer ring after an anchor: the decoded picture
// becomes the backward reference, the old forward reference is recycled.
func (d *Decoder) rotate() {
	old := d.refA
	d.refA = d.refB
	d.refB = d.cur
	d.cur = old
}

// flushPending emits the held anchor, if any (its pixels are real). A held
// NoEmit anchor — decoded for reference exactness on an unwatched tile — is
// released without display.
func (d *Decoder) flushPending() {
	if d.pendingAnchor {
		if d.pendingAnchorEmit {
			d.emitFrame(d.pendingAnchorIdx, d.bufs[d.refB])
		}
		d.pendingAnchor = false
	}
}

// concealKnown freezes the last displayed frame in place of picture idx,
// whose sub-picture arrived but could not be decoded (untrusted reference
// chain after a respawn, or a decode failure).
func (d *Decoder) concealKnown(idx int, picType mpeg2.PictureType) {
	if picType == mpeg2.PictureB {
		d.concealEmit(idx) // anchors untouched; trust is unchanged
		return
	}
	// A concealed anchor breaks the reference chain: flush the held anchor,
	// emit the frozen frame now (there is nothing worth holding back), and
	// rotate so the buffer roles stay aligned with the peers'.
	d.flushPending()
	d.concealEmit(idx)
	d.rotate()
	d.validAnchors = 0
}

// concealUnknown handles a picture that never arrived: its type is unknown,
// so the ring is not rotated (the contents are untrusted either way) and the
// anchor trust conservatively drops to zero.
func (d *Decoder) concealUnknown(idx int) {
	d.flushPending()
	d.concealEmit(idx)
	d.validAnchors = 0
	d.nextPic = idx + 1
}

// concealEmit emits the projector's current frame for picture idx — the
// freeze-last-frame degradation — and counts the intervention.
func (d *Decoder) concealEmit(idx int) {
	if rec := d.cfg.Recovery.Rec; rec != nil {
		rec.AddConcealedFrame()
	}
	d.emitFrame(idx, d.display)
}

// drainRecvsRecover is drainRecvs with the per-picture deadline: halo
// macroblocks that do not arrive in time are concealed by copy-from-reference
// (the window simply keeps the previous picture's pixels there) rather than
// stalling the wall. Stale bundles from replayed pictures are dropped. When
// the picture is headed for concealment anyway (willDecode=false — e.g. a
// respawned incarnation catching up through replayed pictures whose peers
// have long moved on), the drain is non-blocking so catch-up does not pay a
// full deadline per picture.
func (d *Decoder) drainRecvsRecover(sp *subpic.SubPicture, picType mpeg2.PictureType, willDecode bool) {
	rh := d.cfg.Recovery
	expected := 0
	for _, in := range sp.MEI {
		if in.Kind == subpic.MEIRecv {
			expected++
		}
	}
	if expected == 0 {
		return
	}
	concealMBs := func(n int) {
		if rh.Rec != nil {
			rh.Rec.AddConcealedMBs(n)
		}
	}
	apply := func(bb *subpic.BlockBundle) {
		if len(bb.Pixels) != len(bb.Cells)*mpeg2.MacroblockBytes {
			concealMBs(len(bb.Cells))
			expected -= len(bb.Cells)
			return
		}
		for i, c := range bb.Cells {
			buf := d.bufs[d.refFor(c.Ref, picType)]
			if !buf.Contains(int(c.MBX)*16, int(c.MBY)*16, 16, 16) {
				concealMBs(1)
				continue
			}
			buf.InjectMacroblock(int(c.MBX), int(c.MBY), bb.Pixels[i*mpeg2.MacroblockBytes:(i+1)*mpeg2.MacroblockBytes])
		}
		expected -= len(bb.Cells)
	}
	keep := d.stash[:0]
	for _, bb := range d.stash {
		switch {
		case int(bb.PicIndex) == int(sp.Pic.Index):
			apply(bb)
		case int(bb.PicIndex) > int(sp.Pic.Index):
			keep = append(keep, bb)
		}
	}
	d.stash = keep
	for expected > 0 {
		var msg *cluster.Message
		if willDecode {
			var timedOut bool
			msg, timedOut = d.node.RecvTimeout(cluster.MsgBlocks, rh.Cfg.PictureDeadline)
			if timedOut {
				concealMBs(expected)
				return
			}
		} else {
			var got bool
			msg, got = d.node.TryRecv(cluster.MsgBlocks)
			if !got {
				concealMBs(expected)
				return
			}
		}
		if msg == nil {
			return // fabric aborted; the next sub-picture Recv reports it
		}
		var bb *subpic.BlockBundle
		if d.cfg.Pooled {
			bb = &d.bbScratch
			if err := subpic.UnmarshalBlocksInto(bb, msg.Payload); err != nil {
				cluster.PutSlab(msg.Payload)
				continue
			}
		} else {
			var err error
			bb, err = subpic.UnmarshalBlocks(msg.Payload)
			if err != nil {
				continue
			}
		}
		switch {
		case int(bb.PicIndex) == int(sp.Pic.Index):
			apply(bb)
			if d.cfg.Pooled {
				// Pixels were injected into the halo above; the payload they
				// alias can go back to the pool.
				cluster.PutSlab(msg.Payload)
			}
		case int(bb.PicIndex) > int(sp.Pic.Index):
			if d.cfg.Pooled {
				// The stash outlives this call, so detach it from the scratch
				// bundle; its pixels keep aliasing the payload, which (like
				// the strict path's ahead-stash) is left to the garbage
				// collector once applied — ahead-bundles are rare.
				clone := &subpic.BlockBundle{
					PicIndex: bb.PicIndex,
					Cells:    append([]subpic.BlockCell(nil), bb.Cells...),
					Pixels:   bb.Pixels,
				}
				d.stash = append(d.stash, clone)
			} else {
				d.stash = append(d.stash, bb)
			}
		default:
			// Stale bundle from a replayed picture: this decoder is its only
			// consumer, so the payload is done.
			if d.cfg.Pooled {
				cluster.PutSlab(msg.Payload)
			}
		}
	}
}
