package conformance

import (
	"os"
	"strconv"
	"testing"
)

// chaosSeed lets the CI chaos matrix sweep seeds without recompiling: each
// matrix job sets TILEDWALL_CHAOS_SEED to a different value. Locally the test
// runs with seed 1.
func chaosSeed(t *testing.T) int64 {
	if v := os.Getenv("TILEDWALL_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("TILEDWALL_CHAOS_SEED=%q: %v", v, err)
		}
		return n
	}
	return 1
}

// TestChaosMatrix is the conformance oracle under injected failure: every
// configuration of the default matrix runs with the recovery layer armed,
// fault-free and with one random decoder kill, unpooled and pooled. The run
// must complete, every tile must emit every picture index exactly once, and
// runs whose recovery snapshot is Clean (the fault-free sweeps) must remain
// bit-exact with the serial decode.
func TestChaosMatrix(t *testing.T) {
	seed := chaosSeed(t)
	p := ParamsForSeed(seed)
	stream, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, sweep := range []struct {
		name string
		opt  ChaosOptions
	}{
		// Fault-free: recovery armed but never intervening — every run must
		// come back Clean and hit the bit-exactness bar.
		{"fault-free", ChaosOptions{Seed: seed}},
		{"fault-free-pooled", ChaosOptions{Seed: seed, Pooled: true}},
		// One decoder kill per run: restart, replay, and (rarely) concealment
		// are all in play; exactly-once must still hold.
		{"kill", ChaosOptions{Seed: seed, Kill: true}},
		{"kill-pooled", ChaosOptions{Seed: seed, Kill: true, Pooled: true}},
	} {
		sweep := sweep
		t.Run(sweep.name, func(t *testing.T) {
			t.Parallel()
			results, err := RunChaosMatrix(stream, DefaultMatrix(), sweep.opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) < 6 {
				t.Fatalf("chaos matrix ran only %d configurations, want >= 6", len(results))
			}
			cleanRuns := 0
			for _, r := range results {
				if r.Err != nil {
					t.Errorf("%s: pipeline failed under chaos: %v", r.Name(), r.Err)
					continue
				}
				if r.ExactlyOnceViolation != "" {
					t.Errorf("%s: %s (recovery: %s)", r.Name(), r.ExactlyOnceViolation, r.Recovery)
				}
				if sweep.opt.Kill && r.Recovery.Restarts < 1 {
					t.Errorf("%s: armed kill (tile %d, pic %d) registered no restart: %s",
						r.Name(), r.KilledTile, r.KilledAt, r.Recovery)
				}
				if r.Recovery.Clean() {
					cleanRuns++
					if r.Divergence != nil {
						t.Errorf("%s: clean chaos run diverged from serial: %s", r.Name(), r.Divergence)
					}
				}
			}
			// The Clean path must actually be exercised in the fault-free
			// sweeps, or the bit-exactness clause is vacuous.
			if !sweep.opt.Kill && cleanRuns != len(results) {
				t.Errorf("only %d/%d fault-free configurations came back clean", cleanRuns, len(results))
			}
		})
	}
}

// TestChaosEmissionChecker pins the exactly-once checker itself: holes,
// duplicates, short logs and missing logs must all be flagged.
func TestChaosEmissionChecker(t *testing.T) {
	if v := emissionViolation([][]int{{2, 0, 1}, {0, 1, 2}}, 3); v != "" {
		t.Fatalf("reordered-but-complete log flagged: %s", v)
	}
	if v := emissionViolation(nil, 3); v == "" {
		t.Fatal("missing log not flagged")
	}
	if v := emissionViolation([][]int{{0, 1}}, 3); v == "" {
		t.Fatal("short log not flagged")
	}
	if v := emissionViolation([][]int{{0, 1, 1}}, 3); v == "" {
		t.Fatal("duplicate emission not flagged")
	}
	if v := emissionViolation([][]int{{0, 1, 3}}, 3); v == "" {
		t.Fatal("hole in emissions not flagged")
	}
}
