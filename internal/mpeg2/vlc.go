// Package mpeg2 implements the MPEG-2 video (ISO/IEC 13818-2) substrate used
// by the parallel decoder: bitstream syntax, variable-length code tables,
// inverse quantisation, IDCT, motion compensation, and a complete serial
// decoder. The same slice/macroblock parser is shared by the second-level
// splitter (which needs macroblock bit boundaries and predictor state but no
// pixel work) and by the decoders.
//
// Supported subset: Main Profile chroma 4:2:0, progressive frame pictures
// with frame prediction and frame DCT, both intra VLC formats, both scan
// orders, both quantiser-scale mappings. See DESIGN.md §8 for the list of
// deliberate omissions (field pictures, dual prime, scalability).
package mpeg2

import (
	"fmt"
	"strings"

	"tiledwall/internal/bits"
)

// vlcSpec describes one codeword as a string of '0'/'1' (spaces ignored) and
// the value it decodes to. Tables are declared in this canonical, reviewable
// form and compiled into flat lookup tables at init time.
type vlcSpec struct {
	code string
	val  int
}

// vlcEntry is one slot of a compiled lookup table.
type vlcEntry struct {
	val int16
	len uint8 // 0 marks an invalid code
}

// vlcTable decodes by peeking maxLen bits and indexing a flat table.
type vlcTable struct {
	maxLen int
	lut    []vlcEntry
	// enc maps value -> (code, length) for the encoder.
	enc map[int]vlcCode
}

type vlcCode struct {
	bits uint32
	n    uint8
}

func parseCode(s string) (bits uint32, n int) {
	for _, c := range s {
		switch c {
		case '0':
			bits <<= 1
			n++
		case '1':
			bits = bits<<1 | 1
			n++
		case ' ':
		default:
			panic(fmt.Sprintf("mpeg2: bad code char %q in %q", c, s))
		}
	}
	return bits, n
}

func buildVLC(name string, specs []vlcSpec) *vlcTable {
	maxLen := 0
	for _, s := range specs {
		_, n := parseCode(s.code)
		if n > maxLen {
			maxLen = n
		}
	}
	t := &vlcTable{
		maxLen: maxLen,
		lut:    make([]vlcEntry, 1<<uint(maxLen)),
		enc:    make(map[int]vlcCode, len(specs)),
	}
	for _, s := range specs {
		code, n := parseCode(s.code)
		if _, dup := t.enc[s.val]; dup {
			panic(fmt.Sprintf("mpeg2: duplicate value %d in table %s", s.val, name))
		}
		t.enc[s.val] = vlcCode{bits: code, n: uint8(n)}
		base := code << uint(maxLen-n)
		span := 1 << uint(maxLen-n)
		for i := 0; i < span; i++ {
			slot := &t.lut[base+uint32(i)]
			if slot.len != 0 {
				panic(fmt.Sprintf("mpeg2: table %s not prefix-free at %q", name, s.code))
			}
			slot.val = int16(s.val)
			slot.len = uint8(n)
		}
	}
	return t
}

// decode reads one codeword; ok is false for an invalid code.
func (t *vlcTable) decode(r *bits.Reader) (val int, ok bool) {
	e := t.lut[r.Peek(t.maxLen)]
	if e.len == 0 {
		return 0, false
	}
	r.Skip(int(e.len))
	return int(e.val), true
}

// encode writes the codeword for val; it panics on unknown values because
// table membership is a static property of the encoder.
func (t *vlcTable) encode(w *bits.Writer, val int) {
	c, ok := t.enc[val]
	if !ok {
		panic(fmt.Sprintf("mpeg2: no code for value %d", val))
	}
	w.WriteBits(c.bits, int(c.n))
}

func (t *vlcTable) codeLen(val int) (int, bool) {
	c, ok := t.enc[val]
	return int(c.n), ok
}

// describe lists the table contents for documentation tests.
func (t *vlcTable) describe() string {
	var b strings.Builder
	for v, c := range t.enc {
		fmt.Fprintf(&b, "%d:%0*b ", v, c.n, c.bits)
	}
	return b.String()
}
