package video

import (
	"fmt"
	"math"

	"tiledwall/internal/mpeg2"
)

// PSNR returns the luma peak signal-to-noise ratio between two equally sized
// windows, in dB. Identical buffers return +Inf.
func PSNR(a, b *mpeg2.PixelBuf) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("video: PSNR size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var sse float64
	for i := range a.Y {
		d := float64(int(a.Y[i]) - int(b.Y[i]))
		sse += d * d
	}
	if sse == 0 {
		return math.Inf(1), nil
	}
	mse := sse / float64(len(a.Y))
	return 10 * math.Log10(255*255/mse), nil
}

// MaxAbsDiff returns the maximum absolute luma and chroma differences.
func MaxAbsDiff(a, b *mpeg2.PixelBuf) (luma, chroma int) {
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	for i := range a.Y {
		if d := abs(int(a.Y[i]) - int(b.Y[i])); d > luma {
			luma = d
		}
	}
	for i := range a.Cb {
		if d := abs(int(a.Cb[i]) - int(b.Cb[i])); d > chroma {
			chroma = d
		}
		if d := abs(int(a.Cr[i]) - int(b.Cr[i])); d > chroma {
			chroma = d
		}
	}
	return luma, chroma
}

// Equal reports whether two windows hold identical samples.
func Equal(a, b *mpeg2.PixelBuf) bool {
	if a.W != b.W || a.H != b.H || a.X0 != b.X0 || a.Y0 != b.Y0 {
		return false
	}
	l, c := MaxAbsDiff(a, b)
	return l == 0 && c == 0
}
