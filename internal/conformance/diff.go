package conformance

import (
	"bytes"
	"fmt"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/system"
	"tiledwall/internal/video"
	"tiledwall/internal/wall"
)

// Divergence pinpoints the first byte-level disagreement between the serial
// reference decode and a parallel decode: display-order frame, macroblock
// coordinates, and the tile that owned the macroblock under the geometry in
// force — the unit of blame for the parallel protocol.
type Divergence struct {
	Frame      int // display-order picture index (-1: frame count mismatch)
	RefFrames  int
	GotFrames  int
	MBX, MBY   int
	Tile       int // owning tile under the run's geometry
	LumaDiff   int // max abs luma difference within the whole frame
	ChromaDiff int
}

func (d *Divergence) String() string {
	if d.Frame < 0 {
		return fmt.Sprintf("frame count mismatch: serial %d, parallel %d", d.RefFrames, d.GotFrames)
	}
	return fmt.Sprintf("first divergence at frame %d, macroblock (%d,%d), tile %d (frame max diff luma %d chroma %d)",
		d.Frame, d.MBX, d.MBY, d.Tile, d.LumaDiff, d.ChromaDiff)
}

// Diff compares the serial reference frames against parallel output frames
// and returns the minimised first divergence, or nil when the decodes are
// byte-for-byte identical. geo maps the divergent macroblock to its owning
// tile; it may be nil when no tiling applies.
func Diff(ref []mpeg2.DecodedPicture, got []*mpeg2.PixelBuf, geo *wall.Geometry) *Divergence {
	if len(ref) != len(got) {
		return &Divergence{Frame: -1, RefFrames: len(ref), GotFrames: len(got)}
	}
	var ra, ga [mpeg2.MacroblockBytes]byte
	for i := range ref {
		if video.Equal(ref[i].Buf, got[i]) {
			continue
		}
		d := &Divergence{Frame: i, MBX: -1, MBY: -1, Tile: -1}
		d.LumaDiff, d.ChromaDiff = video.MaxAbsDiff(ref[i].Buf, got[i])
		// Minimise: scan macroblocks in raster order for the first that
		// differs, then attribute it to its owning tile.
		mbw, mbh := ref[i].Buf.W/16, ref[i].Buf.H/16
	scan:
		for mby := 0; mby < mbh; mby++ {
			for mbx := 0; mbx < mbw; mbx++ {
				ref[i].Buf.ExtractMacroblock(mbx, mby, ra[:])
				got[i].ExtractMacroblock(mbx, mby, ga[:])
				if !bytes.Equal(ra[:], ga[:]) {
					d.MBX, d.MBY = mbx, mby
					if geo != nil {
						d.Tile = geo.Owner(mbx, mby)
					}
					break scan
				}
			}
		}
		return d
	}
	return nil
}

// MatrixResult is the outcome of one parallel configuration in RunMatrix.
type MatrixResult struct {
	Config     system.Config
	Err        error       // pipeline failure, if any
	Divergence *Divergence // nil when bit-exact with serial
}

// Name renders the configuration in the paper's 1-k-(m,n) notation.
func (r MatrixResult) Name() string {
	name := fmt.Sprintf("1-%d-(%d,%d)ov%d", r.Config.K, r.Config.M, r.Config.N, r.Config.Overlap)
	if r.Config.Pooled {
		name += "+pooled"
	}
	if r.Config.SplitWorkers > 0 {
		name += fmt.Sprintf("+sw%d", r.Config.SplitWorkers)
	}
	return name
}

// DefaultMatrix is the conformance configuration sweep: one-level and
// two-level systems, asymmetric grids, varying splitter fan-out, and a
// projector-overlap geometry. Each representative shape also runs with
// buffer/slab pooling enabled, so the zero-allocation hot path is held to
// the same bit-exactness oracle as the allocating one.
func DefaultMatrix() []system.Config {
	return []system.Config{
		{K: 0, M: 1, N: 1},
		{K: 0, M: 2, N: 2},
		{K: 1, M: 2, N: 1},
		{K: 1, M: 2, N: 2},
		{K: 2, M: 2, N: 2},
		{K: 2, M: 3, N: 2},
		{K: 3, M: 2, N: 2, Overlap: 16},
		{K: 4, M: 2, N: 2},
		// Pooled axis: same decode must fall out of recycled slabs and
		// scratch state, byte for byte.
		{K: 0, M: 1, N: 1, Pooled: true},
		{K: 0, M: 2, N: 2, Pooled: true},
		{K: 2, M: 2, N: 2, Pooled: true},
		{K: 3, M: 2, N: 2, Overlap: 16, Pooled: true},
		// Split-workers axis: the slice-parallel splitter against the same
		// oracle, serial path and fan-outs beyond the slice count included,
		// with and without accumulator reuse, on the overlap geometry too.
		{K: 2, M: 2, N: 2, SplitWorkers: 1},
		{K: 2, M: 2, N: 2, SplitWorkers: 4},
		{K: 1, M: 2, N: 2, Pooled: true, SplitWorkers: 2},
		{K: 3, M: 2, N: 2, Overlap: 16, SplitWorkers: 4},
	}
}

// RunMatrix decodes stream serially once, then under every configuration,
// and reports per-configuration divergence. The serial decode error, if any,
// is returned directly: a stream the reference decoder rejects has no oracle
// value.
func RunMatrix(stream []byte, configs []system.Config) ([]MatrixResult, error) {
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		return nil, fmt.Errorf("conformance: serial parse: %w", err)
	}
	ref, err := dec.DecodeAll()
	if err != nil {
		return nil, fmt.Errorf("conformance: serial decode: %w", err)
	}
	picW, picH := dec.Seq().MBWidth()*16, dec.Seq().MBHeight()*16

	out := make([]MatrixResult, 0, len(configs))
	for _, cfg := range configs {
		cfg.CollectFrames = true
		mr := MatrixResult{Config: cfg}
		res, err := system.Run(stream, cfg)
		if err != nil {
			mr.Err = err
		} else {
			geo, gerr := wall.NewGeometry(picW, picH, cfg.M, cfg.N, cfg.Overlap)
			if gerr != nil {
				geo = nil
			}
			mr.Divergence = Diff(ref, res.Frames, geo)
		}
		out = append(out, mr)
	}
	return out, nil
}
