package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"tiledwall/internal/fleet"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/service"
	"tiledwall/internal/system"
	"tiledwall/internal/wall"
)

// The continuous-benchmark report: benchwall -json runs a fixed set of
// hot-path measurements — serial decode throughput and allocation rate,
// kernel timings, parallel configurations with their phase breakdowns — and
// emits them as one JSON document (BENCH_<date>.json). cmd/benchguard diffs
// two such documents and fails on regression, which is what the CI bench job
// runs on every push.

// BenchReport is the JSON document. GoArch and GoMaxProcs identify the
// machine class that produced it: absolute figures — and especially the
// split-worker scaling, which needs a core per worker to show up in wall
// time — are only comparable between reports with matching values.
type BenchReport struct {
	Date       string          `json:"date"`
	Seed       int64           `json:"seed"`
	Frames     int             `json:"frames"`
	Scale      int             `json:"scale"`
	GoArch     string          `json:"goarch,omitempty"`
	GoMaxProcs int             `json:"gomaxprocs,omitempty"`
	Serial     SerialBench     `json:"serial"`
	Kernels    []KernelBench   `json:"kernels"`
	Systems    []ParallelBench `json:"systems"`
	Service    *ServiceBench   `json:"service,omitempty"`
	Recovery   *RecoveryBench  `json:"recovery,omitempty"`
	Fleet      *FleetBench     `json:"fleet,omitempty"`
	ROI        *ROIBench       `json:"roi,omitempty"`
}

// ROIBench measures subscription/ROI decode on the paper's 6x4 wall: the same
// stream played at subscribed fractions {1, 4, 24} of 24 tiles, reporting
// modeled fps, shipped cluster bytes and aggregate decoder busy time per
// fraction. BaselineFPS is the plain session path with no Subscribe call at
// all; FullOverheadFrac prices the explicit full-wall subscription against it
// and is gated structurally at <=5% — the skip machinery must be free when
// nothing is skipped. The guard also requires shipped bytes and decoder busy
// time to grow monotonically with the subscribed fraction: that scaling is
// the point of the subsystem.
type ROIBench struct {
	Config           string        `json:"config"`
	BaselineFPS      float64       `json:"baseline_fps"`
	FullOverheadFrac float64       `json:"full_overhead_frac"`
	Fractions        []ROIFraction `json:"fractions"`
}

// ROIFraction is one subscribed fraction's cost figures, ordered by Tiles.
type ROIFraction struct {
	Tiles          int     `json:"tiles"`
	FPS            float64 `json:"fps"`
	ShippedMB      float64 `json:"shipped_mb"`
	DecoderBusyMs  float64 `json:"decoder_busy_ms"`
	SkippedSubPics int64   `json:"skipped_sub_pics"`
}

// FleetBench measures the fleet front door: many concurrent sessions admitted
// through one fleet over a heterogeneous farm of warm walls, with aggregate
// capacity below the session count so the admission queue is on the measured
// path. AggregateFPS is gated against the baseline like any system figure;
// P99OpenMs (queueing included) gets a structural cap plus a gross-regression
// gate, and Shed must stay zero — the harness sizes its queue and deadline so
// a shed open can only mean broken admission, never legitimate overload.
type FleetBench struct {
	Walls        int     `json:"walls"`
	Sessions     int     `json:"sessions"`
	AggregateFPS float64 `json:"aggregate_fps"`
	P99OpenMs    float64 `json:"p99_open_ms"`
	Shed         int64   `json:"shed"`
}

// RecoveryBench prices the fault-free cost of arming the fault-tolerance
// layer on a resident wall: the same stream through the same shape with and
// without Recovery enabled, twice — once unpooled, once with the slab pool
// armed. Each twin pair shares its allocator so the delta isolates the
// recovery machinery itself, and the pooled pair additionally prices the
// refcounted slab ownership that lets retention compose with pooling
// (DESIGN.md §9). OverheadFrac = (baseline - recovery) / baseline on modeled
// fps; both fractions are gated structurally at <10% — retainers, leases,
// stash bookkeeping and refcount traffic must stay noise against the decode
// cost.
type RecoveryBench struct {
	Config             string  `json:"config"`
	BaselineFPS        float64 `json:"baseline_fps"`
	RecoveryFPS        float64 `json:"recovery_fps"`
	OverheadFrac       float64 `json:"overhead_frac"`
	PooledBaselineFPS  float64 `json:"pooled_baseline_fps"`
	PooledRecoveryFPS  float64 `json:"pooled_recovery_fps"`
	PooledOverheadFrac float64 `json:"pooled_overhead_frac"`
}

// ServiceBench measures the resident wall service: cold pipeline
// construction versus warm session admission on the splitter-bound 1-1-(4,4)
// shape, and the aggregate wall-clock throughput of concurrent sessions
// sharing that one wall. The warm/cold ratio is gated structurally (a resident
// service whose session start costs a pipeline build has lost its point);
// aggregate fps is gated against the baseline like any system figure.
type ServiceBench struct {
	Config       string  `json:"config"`
	ColdSetupMs  float64 `json:"cold_setup_ms"`
	WarmOpenMs   float64 `json:"warm_open_ms"`
	Sessions     int     `json:"sessions"`
	AggregateFPS float64 `json:"aggregate_fps"`
}

// SerialBench measures the single-PC decoder in steady state (frames
// recycled through the pixel-buffer pool).
type SerialBench struct {
	Stream        int     `json:"stream"`
	Pictures      int     `json:"pictures"`
	FPS           float64 `json:"fps"`
	MsPerPicture  float64 `json:"ms_per_picture"`
	AllocsPerPic  float64 `json:"allocs_per_picture"`
	MPixelsPerSec float64 `json:"mpixels_per_sec"`
}

// KernelBench is one kernel's per-call cost.
type KernelBench struct {
	Name string  `json:"name"`
	NsOp float64 `json:"ns_op"`
}

// ParallelBench is one parallel configuration's modeled throughput and
// decoder phase breakdown. SplitPhaseMsPP resolves the splitters' work into
// the scan/parse/sort/serialize stages (the paper's ts term); "Parse" is the
// critical path across the split workers and "ParseWall" the raw wall time
// of the same region on the reporting host.
type ParallelBench struct {
	Config         string             `json:"config"`
	Pooled         bool               `json:"pooled"`
	SplitWorkers   int                `json:"split_workers,omitempty"`
	Transport      string             `json:"transport,omitempty"` // "" = in-process fabric, "tcp" = socket transport on loopback
	Nodes          int                `json:"nodes"`
	FPS            float64            `json:"fps"`
	PhaseMsPP      map[string]float64 `json:"phase_ms_per_picture"`
	SplitPhaseMsPP map[string]float64 `json:"split_phase_ms_per_picture,omitempty"`
}

// BenchJSON runs the continuous-benchmark suite and returns the report.
// now stamps the document (injected so callers control the clock).
func BenchJSON(o Options, now time.Time) (*BenchReport, error) {
	o.defaults()
	rep := &BenchReport{
		Date: now.Format("2006-01-02"), Seed: o.Seed, Frames: o.Frames, Scale: o.Scale,
		GoArch: runtime.GOARCH, GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	data, _, err := Stream(8, o, false)
	if err != nil {
		return nil, err
	}
	s, err := mpeg2.ParseStream(data)
	if err != nil {
		return nil, err
	}
	if rep.Serial, err = serialBench(s); err != nil {
		return nil, err
	}
	rep.Kernels = kernelBench()

	// SplitWorkers is pinned (never the GOMAXPROCS default) so every report
	// runs the same configurations regardless of host width. The 1-1-(4,4)
	// pair is the splitter-bound measurement: a single second-level splitter
	// feeding sixteen decoders is the regime where ts limits F = min(k/ts,
	// 1/td), so the 4-worker entry shows what slice parallelism buys.
	// The transport axis pairs two representative shapes with their TCP
	// twins: same grid, same pooling, every hop crossing loopback sockets
	// through the hub. Diffing a pair inside one report prices the socket
	// transport; diffing reports across pushes gates it like any system.
	for _, cfg := range []system.Config{
		{K: 0, M: 2, N: 2, SplitWorkers: 1},
		{K: 2, M: 2, N: 2, SplitWorkers: 1},
		{K: 2, M: 2, N: 2, Pooled: true, SplitWorkers: 1},
		{K: 1, M: 4, N: 4, Pooled: true, SplitWorkers: 1},
		{K: 1, M: 4, N: 4, Pooled: true, SplitWorkers: 4},
		{K: 2, M: 2, N: 2, Pooled: true, SplitWorkers: 1, Transport: "tcp"},
		{K: 1, M: 4, N: 4, Pooled: true, SplitWorkers: 1, Transport: "tcp"},
	} {
		fmt.Fprintf(o.Log, "benchjson: 1-%d-(%d,%d) pooled=%v sw=%d transport=%s\n",
			cfg.K, cfg.M, cfg.N, cfg.Pooled, cfg.SplitWorkers, transportName(cfg.Transport))
		res, err := system.Run(data, cfg)
		if err != nil {
			return nil, err
		}
		pb := ParallelBench{
			Config:       fmt.Sprintf("1-%d-(%d,%d)", cfg.K, cfg.M, cfg.N),
			Pooled:       cfg.Pooled,
			SplitWorkers: cfg.SplitWorkers,
			Transport:    cfg.Transport,
			Nodes:        res.Config.NumNodes(),
			FPS:          res.Modeled().FPS(),
			PhaseMsPP:    map[string]float64{},
		}
		for _, p := range metrics.Phases() {
			var sum float64
			for _, d := range res.Decoders {
				sum += d.Breakdown.PerPicture(p)
			}
			if len(res.Decoders) > 0 {
				pb.PhaseMsPP[p.String()] = sum / float64(len(res.Decoders))
			}
		}
		var sb metrics.SplitBreakdown
		for _, sp := range res.Splitters {
			if sp != nil {
				sb.Merge(sp.Split)
			}
		}
		if sb.Pictures > 0 {
			pb.SplitPhaseMsPP = map[string]float64{}
			for _, p := range metrics.SplitPhases() {
				pb.SplitPhaseMsPP[p.String()] = sb.PerPicture(p)
			}
			pb.SplitPhaseMsPP["ParseWall"] = sb.ParseWall.Seconds() * 1000 / float64(sb.Pictures)
		}
		rep.Systems = append(rep.Systems, pb)
	}

	fmt.Fprintf(o.Log, "benchjson: resident service 1-1-(4,4)\n")
	if rep.Service, err = serviceBench(data); err != nil {
		return nil, err
	}
	fmt.Fprintf(o.Log, "benchjson: recovery overhead 1-2-(2,2)\n")
	if rep.Recovery, err = recoveryBench(data); err != nil {
		return nil, err
	}
	fmt.Fprintf(o.Log, "benchjson: fleet 4 walls\n")
	if rep.Fleet, err = fleetBench(data); err != nil {
		return nil, err
	}
	fmt.Fprintf(o.Log, "benchjson: roi fractions 1-2-(6,4)\n")
	if rep.ROI, err = roiBench(data); err != nil {
		return nil, err
	}
	return rep, nil
}

// roiBench plays the stream on a warm 1-2-(6,4) wall at subscribed fractions
// 1/24 (one corner tile), 4/24 (a 2x2 window) and 24/24 (an explicit full
// subscription), plus the plain no-subscription baseline. Best-of-rounds on
// the modeled fps, like recoveryBench: the overhead figure gates at 5%, so
// one scheduler stall must not masquerade as skip-machinery cost. Shipped
// bytes and skip counts are deterministic per subscription, so they are read
// from the best round without loss.
func roiBench(data []byte) (*ROIBench, error) {
	const rounds = 3
	cfg := system.Config{K: 2, M: 6, N: 4, SplitWorkers: 1, Pooled: true}
	w, err := system.NewResidentWall(cfg)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*ROIBench, error) {
		w.Close()
		return nil, err
	}
	run := func(name string, sub wall.TileSet) (*service.SessionResult, error) {
		s, err := w.Open(name)
		if err != nil {
			return nil, err
		}
		if !sub.Full() {
			if err := s.Subscribe(sub); err != nil {
				s.Close()
				return nil, err
			}
		}
		if err := s.Feed(data); err != nil {
			s.Close()
			return nil, err
		}
		return s.Close()
	}
	best := func(name string, sub wall.TileSet) (*service.SessionResult, error) {
		var top *service.SessionResult
		for i := 0; i < rounds; i++ {
			res, err := run(fmt.Sprintf("roi-%s-%d", name, i), sub)
			if err != nil {
				return nil, err
			}
			if top == nil || res.Modeled().FPS() > top.Modeled().FPS() {
				top = res
			}
		}
		return top, nil
	}
	// Warm the wall so every measured round runs the resident pipeline.
	if _, err := run("warm", wall.TileSet{}); err != nil {
		return fail(err)
	}
	one, err := wall.RectTileSet(6, 4, 0, 0, 0, 0)
	if err != nil {
		return fail(err)
	}
	four, err := wall.RectTileSet(6, 4, 0, 0, 1, 1)
	if err != nil {
		return fail(err)
	}
	full, err := wall.RectTileSet(6, 4, 0, 0, 3, 5)
	if err != nil {
		return fail(err)
	}
	oneRes, err := best("1t", one)
	if err != nil {
		return fail(err)
	}
	fourRes, err := best("4t", four)
	if err != nil {
		return fail(err)
	}
	// The overhead figure is plain-vs-full, so those two run last — on a wall
	// the partial fractions have fully warmed — in alternating rounds with
	// extra repetitions: ambient drift (GC, scheduler) lands on both sides of
	// the fraction instead of reading as skip-machinery cost.
	var base, fullRes *service.SessionResult
	for i := 0; i < 2*rounds; i++ {
		res, err := run(fmt.Sprintf("roi-plain-%d", i), wall.TileSet{})
		if err != nil {
			return fail(err)
		}
		if base == nil || res.Modeled().FPS() > base.Modeled().FPS() {
			base = res
		}
		if res, err = run(fmt.Sprintf("roi-24t-%d", i), full); err != nil {
			return fail(err)
		}
		if fullRes == nil || res.Modeled().FPS() > fullRes.Modeled().FPS() {
			fullRes = res
		}
	}
	rb := &ROIBench{Config: "1-2-(6,4)", BaselineFPS: base.Modeled().FPS()}
	for fi, res := range []*service.SessionResult{oneRes, fourRes, fullRes} {
		sub := []wall.TileSet{one, four, full}[fi]
		var busy time.Duration
		for _, d := range res.Decoders {
			if d != nil {
				busy += d.Breakdown.Busy()
			}
		}
		rb.Fractions = append(rb.Fractions, ROIFraction{
			Tiles:          sub.Count(),
			FPS:            res.Modeled().FPS(),
			ShippedMB:      float64(res.WireBytes) / 1e6,
			DecoderBusyMs:  busy.Seconds() * 1e3,
			SkippedSubPics: res.SkippedSubPics,
		})
	}
	if rb.BaselineFPS > 0 {
		rb.FullOverheadFrac = (rb.BaselineFPS - rb.Fractions[len(rb.Fractions)-1].FPS) / rb.BaselineFPS
	}
	return rb, w.Close()
}

// fleetBench runs the fleet front door under oversubscription: 32 sessions
// against a 4-wall farm with aggregate capacity 16, so half the opens queue
// and the p99 open latency prices the admission path, not just the lock. The
// farm mixes one-level and two-level quads so the router exercises its
// heterogeneous scoring. The deadline is sized far above any plausible
// session length: a shed here is an admission bug, and the guard gates Shed
// at zero.
func fleetBench(data []byte) (*FleetBench, error) {
	const sessions = 32
	walls := []service.Config{
		{K: 0, M: 2, N: 2, MaxSessions: 4},
		{K: 0, M: 2, N: 2, MaxSessions: 4},
		{K: 1, M: 2, N: 2, SplitWorkers: 1, Pooled: true, MaxSessions: 4},
		{K: 1, M: 2, N: 2, SplitWorkers: 1, Pooled: true, MaxSessions: 4},
	}
	f, err := fleet.New(fleet.Config{Walls: walls, OpenDeadline: 60 * time.Second})
	if err != nil {
		return nil, err
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		pics    int
		openMs  []float64
		firstNG error
	)
	start := time.Now()
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			s, err := f.Open(fmt.Sprintf("fleet-bench-%d", i), fleet.OpenOptions{
				Priority: fleet.Priority(i % 3),
			})
			d := time.Since(t0)
			if err == nil {
				err = s.Feed(data)
				var res *service.SessionResult
				if res, err = s.Close(); err == nil {
					mu.Lock()
					pics += res.Pictures
					mu.Unlock()
				}
			}
			mu.Lock()
			openMs = append(openMs, d.Seconds()*1e3)
			if err != nil && firstNG == nil {
				firstNG = fmt.Errorf("benchjson: fleet session %d: %w", i, err)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	shed := f.Stats().Shed
	if err := f.Close(); err != nil {
		return nil, err
	}
	if firstNG != nil {
		return nil, firstNG
	}
	sort.Float64s(openMs)
	return &FleetBench{
		Walls:        len(walls),
		Sessions:     sessions,
		AggregateFPS: float64(pics) / elapsed.Seconds(),
		P99OpenMs:    openMs[len(openMs)*99/100],
		Shed:         shed,
	}, nil
}

// recoveryBench plays the stream through four warm resident walls — the
// pooled/unpooled twins, each with and without Recovery.Enabled — and reports
// the best-of-rounds modeled fps of each. Each twin pair alternates rounds
// between its two walls (after an unmeasured warm-up round apiece) and takes
// the best per side: the figures gate at 10%, so one GC pause or a stretch of
// ambient load must not land on one side only and read as recovery overhead.
func recoveryBench(data []byte) (*RecoveryBench, error) {
	const rounds = 5
	pair := func(pooled bool) (base, rec float64, err error) {
		cfgB := system.Config{K: 2, M: 2, N: 2, SplitWorkers: 1, Pooled: pooled}
		cfgR := cfgB
		cfgR.Recovery.Enabled = true
		wb, err := system.NewResidentWall(cfgB)
		if err != nil {
			return 0, 0, err
		}
		defer wb.Close()
		wr, err := system.NewResidentWall(cfgR)
		if err != nil {
			return 0, 0, err
		}
		defer wr.Close()
		round := func(w *system.ResidentWall, best *float64) error {
			res, err := w.Play(data)
			if err != nil {
				return err
			}
			if f := res.Modeled().FPS(); f > *best {
				*best = f
			}
			return nil
		}
		for i := -1; i < rounds; i++ {
			if err := round(wb, &base); err != nil {
				return 0, 0, err
			}
			if err := round(wr, &rec); err != nil {
				return 0, 0, err
			}
			if i < 0 {
				base, rec = 0, 0 // warm-up round: discard
			}
		}
		return base, rec, nil
	}
	base, rec, err := pair(false)
	if err != nil {
		return nil, err
	}
	pbase, prec, err := pair(true)
	if err != nil {
		return nil, err
	}
	rb := &RecoveryBench{
		Config: "1-2-(2,2)", BaselineFPS: base, RecoveryFPS: rec,
		PooledBaselineFPS: pbase, PooledRecoveryFPS: prec,
	}
	if base > 0 {
		rb.OverheadFrac = (base - rec) / base
	}
	if pbase > 0 {
		rb.PooledOverheadFrac = (pbase - prec) / pbase
	}
	return rb, nil
}

// transportName renders the transport axis for log lines.
func transportName(t string) string {
	if t == "" {
		return "fabric"
	}
	return t
}

// serviceBench measures the resident wall on the splitter-bound 1-1-(4,4)
// shape: cold construction, warm session admission, and 4-session aggregate
// throughput.
func serviceBench(data []byte) (*ServiceBench, error) {
	const sessions = 4
	cfg := system.Config{K: 1, M: 4, N: 4, Pooled: true, SplitWorkers: 1, MaxSessions: sessions}

	t0 := time.Now()
	w, err := system.NewResidentWall(cfg)
	if err != nil {
		return nil, err
	}
	cold := time.Since(t0)

	// Prime the wall so the warm figures measure a resident pipeline.
	if _, err := w.Play(data); err != nil {
		return nil, err
	}

	t0 = time.Now()
	sess, err := w.Open("warm")
	if err != nil {
		return nil, err
	}
	warm := time.Since(t0)
	if err := sess.Feed(data); err != nil {
		return nil, err
	}
	if _, err := sess.Close(); err != nil {
		return nil, err
	}
	// Warm admission is a microsecond-scale figure gated against cold setup,
	// so take the minimum over a few more admissions: a GC pause landing on
	// one Open (the suite allocates heavily right before this) must not
	// masquerade as session-start cost. The empty sessions close with the
	// missing-sequence-header error and release their slots.
	for i := 0; i < 4; i++ {
		t0 = time.Now()
		s, err := w.Open(fmt.Sprintf("warm-%d", i))
		if err != nil {
			return nil, err
		}
		if d := time.Since(t0); d < warm {
			warm = d
		}
		s.Close()
	}

	var wg sync.WaitGroup
	results := make([]*system.Result, sessions)
	errs := make([]error, sessions)
	start := time.Now()
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = w.Play(data)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := w.Close(); err != nil {
		return nil, err
	}
	pics := 0
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("benchjson: service session %d: %w", i, e)
		}
		pics += results[i].Throughput.Pictures
	}
	return &ServiceBench{
		Config:       "1-1-(4,4)",
		ColdSetupMs:  cold.Seconds() * 1e3,
		WarmOpenMs:   warm.Seconds() * 1e3,
		Sessions:     sessions,
		AggregateFPS: float64(pics) / elapsed.Seconds(),
	}, nil
}

// serialBench decodes the stream repeatedly in the pooled steady state.
func serialBench(s *mpeg2.Stream) (SerialBench, error) {
	decode := func() (int, error) {
		d := mpeg2.NewStreamDecoder(s)
		pics, err := d.DecodeAll()
		for i := range pics {
			pics[i].Buf.Release()
		}
		return len(pics), err
	}
	n, err := decode() // warm the pools
	if err != nil || n == 0 {
		return SerialBench{}, fmt.Errorf("benchjson: serial warmup decoded %d pictures: %w", n, err)
	}
	const rounds = 5
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := decode(); err != nil {
			return SerialBench{}, err
		}
	}
	elapsed := time.Since(start)
	allocs := testing.AllocsPerRun(rounds, func() { decode() })

	perPic := elapsed.Seconds() / float64(rounds*n)
	return SerialBench{
		Stream:        8,
		Pictures:      n,
		FPS:           1 / perPic,
		MsPerPicture:  perPic * 1e3,
		AllocsPerPic:  allocs / float64(n),
		MPixelsPerSec: float64(s.Seq.Width) * float64(s.Seq.Height) / perPic / 1e6,
	}, nil
}

// kernelBench times the IDCT coefficient classes through the public fast
// dispatch (the motion-compensation kernels are covered indirectly by the
// serial figure and directly by the go test -bench suite).
func kernelBench() []KernelBench {
	var dc, sparse, full [64]int32
	dc[0] = 123
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() int32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int32(rng%512) - 256
	}
	for i := 0; i < 24; i++ {
		sparse[i] = next()
	}
	for i := range full {
		full[i] = next()
	}
	time1 := func(name string, blk *[64]int32, mask uint8) KernelBench {
		const iters = 200000
		start := time.Now()
		for i := 0; i < iters; i++ {
			tmp := *blk
			mpeg2.IDCTFast(&tmp, mask)
		}
		return KernelBench{Name: name, NsOp: float64(time.Since(start).Nanoseconds()) / iters}
	}
	return []KernelBench{
		time1("idct_dc_only", &dc, 0),
		time1("idct_sparse", &sparse, mpeg2.ACMaskOf(&sparse)),
		time1("idct_full", &full, mpeg2.ACMaskOf(&full)),
	}
}

// WriteBenchJSON encodes the report.
func WriteBenchJSON(w io.Writer, rep *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadBenchJSON decodes a report written by WriteBenchJSON.
func ReadBenchJSON(r io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// CompareBenchReports checks cur against base: any serial or parallel fps
// drop beyond tol (a fraction, e.g. 0.10), or any increase in serial
// allocations per picture beyond tol, is a regression. Kernel timings are
// informational (too noisy on shared CI hardware to gate on). Returns the
// list of violations, empty when cur is acceptable, plus warnings for
// metrics present on one side only — a grown suite must not fail against an
// older baseline (the mismatch is reported, not gated), and a shrunk one
// must not silently lose coverage.
func CompareBenchReports(base, cur *BenchReport, tol float64) (violations, warnings []string) {
	var bad []string
	check := func(name string, baseV, curV float64, lowerIsBetter bool) {
		if baseV <= 0 {
			return
		}
		var worse float64 // fractional regression
		if lowerIsBetter {
			worse = (curV - baseV) / baseV
		} else {
			worse = (baseV - curV) / baseV
		}
		if worse > tol {
			bad = append(bad, fmt.Sprintf("%s regressed %.1f%% (base %.2f, current %.2f, tolerance %.0f%%)",
				name, worse*100, baseV, curV, tol*100))
		}
	}
	check("serial fps", base.Serial.FPS, cur.Serial.FPS, false)
	// Allocations are near zero by design, so allow an absolute slack of one
	// object per picture before the relative test applies: 0.1 -> 0.2 is not
	// a meaningful regression, 2 -> 30 is.
	if cur.Serial.AllocsPerPic > base.Serial.AllocsPerPic+1 {
		check("serial allocs/picture", base.Serial.AllocsPerPic, cur.Serial.AllocsPerPic, true)
	}
	// Transport extends the key only when it is not the fabric default, so
	// reports predating the axis keep their keys and stay diffable.
	sysKey := func(p ParallelBench) string {
		key := fmt.Sprintf("%s pooled=%v sw=%d", p.Config, p.Pooled, p.SplitWorkers)
		if p.Transport != "" && p.Transport != "fabric" {
			key += " transport=" + p.Transport
		}
		return key
	}
	baseSys := map[string]ParallelBench{}
	for _, b := range base.Systems {
		baseSys[sysKey(b)] = b
	}
	curSys := map[string]bool{}
	for _, c := range cur.Systems {
		curSys[sysKey(c)] = true
		if b, ok := baseSys[sysKey(c)]; ok {
			check(fmt.Sprintf("%s fps", sysKey(c)), b.FPS, c.FPS, false)
		} else {
			warnings = append(warnings, fmt.Sprintf("%s: not in baseline, skipped (regenerate the baseline to gate it)", sysKey(c)))
		}
	}
	for _, b := range base.Systems {
		if !curSys[sysKey(b)] {
			warnings = append(warnings, fmt.Sprintf("%s: in baseline but missing from current report", sysKey(b)))
		}
	}
	if cur.Service != nil {
		// Structural gate, independent of any baseline: a warm session open on
		// a resident wall must cost a small fraction of building the pipeline,
		// or the service has lost its point. 10% leaves room for scheduler
		// noise while still catching any accidental per-session construction.
		if cur.Service.WarmOpenMs > 0.10*cur.Service.ColdSetupMs {
			bad = append(bad, fmt.Sprintf("service warm open %.3fms is not < 10%% of cold setup %.3fms (%s)",
				cur.Service.WarmOpenMs, cur.Service.ColdSetupMs, cur.Service.Config))
		}
		if base.Service != nil {
			check(fmt.Sprintf("service %s %d-session aggregate fps", cur.Service.Config, cur.Service.Sessions),
				base.Service.AggregateFPS, cur.Service.AggregateFPS, false)
		} else {
			warnings = append(warnings, "service: not in baseline, skipped (regenerate the baseline to gate it)")
		}
	} else if base.Service != nil {
		warnings = append(warnings, "service: in baseline but missing from current report")
	}
	if cur.Recovery != nil {
		// Structural gates, independent of any baseline: arming the recovery
		// machinery on a fault-free run must cost under 10% of throughput on
		// both allocator twins — the pooled one additionally prices the slab
		// refcount traffic retention adds under pooling.
		if cur.Recovery.OverheadFrac > 0.10 {
			bad = append(bad, fmt.Sprintf("recovery fault-free overhead %.1f%% is not < 10%% (%s: baseline %.1f fps, recovery %.1f fps)",
				cur.Recovery.OverheadFrac*100, cur.Recovery.Config, cur.Recovery.BaselineFPS, cur.Recovery.RecoveryFPS))
		}
		if cur.Recovery.PooledOverheadFrac > 0.10 {
			bad = append(bad, fmt.Sprintf("pooled recovery fault-free overhead %.1f%% is not < 10%% (%s: baseline %.1f fps, recovery %.1f fps)",
				cur.Recovery.PooledOverheadFrac*100, cur.Recovery.Config, cur.Recovery.PooledBaselineFPS, cur.Recovery.PooledRecoveryFPS))
		}
		if base.Recovery != nil {
			check(fmt.Sprintf("recovery %s fps", cur.Recovery.Config),
				base.Recovery.RecoveryFPS, cur.Recovery.RecoveryFPS, false)
			if base.Recovery.PooledRecoveryFPS > 0 {
				check(fmt.Sprintf("recovery %s pooled fps", cur.Recovery.Config),
					base.Recovery.PooledRecoveryFPS, cur.Recovery.PooledRecoveryFPS, false)
			}
		} else {
			warnings = append(warnings, "recovery: not in baseline, skipped (regenerate the baseline to gate it)")
		}
	} else if base.Recovery != nil {
		warnings = append(warnings, "recovery: in baseline but missing from current report")
	}
	if cur.Fleet != nil {
		// Structural gates, independent of any baseline. A shed open means the
		// fleet refused admission under a queue and deadline the harness sized
		// to make refusal impossible — an admission bug, not load.
		if cur.Fleet.Shed != 0 {
			bad = append(bad, fmt.Sprintf("fleet shed %d of %d sessions under a 60s deadline",
				cur.Fleet.Shed, cur.Fleet.Sessions))
		}
		// The p99 open includes queue wait behind real decodes, so it is
		// seconds-scale and latency-noisy on shared CI hardware; the relative
		// fps tolerance would flag it constantly. Instead: an absolute ceiling
		// (queueing is bounded by capacity × session length), and a 3× gross
		// gate against the baseline that only applies above a 5ms noise floor.
		if cur.Fleet.P99OpenMs > 20000 {
			bad = append(bad, fmt.Sprintf("fleet p99 open %.0fms exceeds the 20s structural cap", cur.Fleet.P99OpenMs))
		}
		if base.Fleet != nil {
			check(fmt.Sprintf("fleet %d-wall %d-session aggregate fps", cur.Fleet.Walls, cur.Fleet.Sessions),
				base.Fleet.AggregateFPS, cur.Fleet.AggregateFPS, false)
			if cur.Fleet.P99OpenMs > 5 && cur.Fleet.P99OpenMs > 3*base.Fleet.P99OpenMs {
				bad = append(bad, fmt.Sprintf("fleet p99 open %.1fms is over 3x the baseline %.1fms",
					cur.Fleet.P99OpenMs, base.Fleet.P99OpenMs))
			}
		} else {
			warnings = append(warnings, "fleet: not in baseline, skipped (regenerate the baseline to gate it)")
		}
	} else if base.Fleet != nil {
		warnings = append(warnings, "fleet: in baseline but missing from current report")
	}
	if cur.ROI != nil {
		// Structural gate, independent of any baseline: an explicit full-wall
		// subscription must cost the same as no subscription at all — the skip
		// machinery is on every picture's path, so its empty case gates at 5%.
		if cur.ROI.FullOverheadFrac > 0.05 {
			bad = append(bad, fmt.Sprintf("roi full-subscription overhead %.1f%% is not < 5%% (%s: plain %.1f fps)",
				cur.ROI.FullOverheadFrac*100, cur.ROI.Config, cur.ROI.BaselineFPS))
		}
		// Structural gate: shipped bytes and decode work must grow with the
		// subscribed fraction — that scaling is the subsystem's claim. Bytes
		// are deterministic per subscription and gate strictly; decoder busy
		// time is a CPU measurement and gets 10% noise slack.
		for i := 0; i+1 < len(cur.ROI.Fractions); i++ {
			lo, hi := cur.ROI.Fractions[i], cur.ROI.Fractions[i+1]
			if lo.ShippedMB >= hi.ShippedMB {
				bad = append(bad, fmt.Sprintf("roi shipped bytes not monotone: %d tiles shipped %.3fMB, %d tiles %.3fMB",
					lo.Tiles, lo.ShippedMB, hi.Tiles, hi.ShippedMB))
			}
			if lo.DecoderBusyMs > 1.10*hi.DecoderBusyMs {
				bad = append(bad, fmt.Sprintf("roi decode work not monotone: %d tiles busy %.1fms, %d tiles %.1fms",
					lo.Tiles, lo.DecoderBusyMs, hi.Tiles, hi.DecoderBusyMs))
			}
		}
		if base.ROI != nil {
			baseFr := map[int]ROIFraction{}
			for _, fr := range base.ROI.Fractions {
				baseFr[fr.Tiles] = fr
			}
			for _, fr := range cur.ROI.Fractions {
				if b, ok := baseFr[fr.Tiles]; ok {
					check(fmt.Sprintf("roi %s %d-tile fps", cur.ROI.Config, fr.Tiles), b.FPS, fr.FPS, false)
				} else {
					warnings = append(warnings, fmt.Sprintf("roi %d-tile fraction: not in baseline, skipped", fr.Tiles))
				}
			}
		} else {
			warnings = append(warnings, "roi: not in baseline, skipped (regenerate the baseline to gate it)")
		}
	} else if base.ROI != nil {
		warnings = append(warnings, "roi: in baseline but missing from current report")
	}
	if base.GoMaxProcs != cur.GoMaxProcs && base.GoMaxProcs > 0 && cur.GoMaxProcs > 0 {
		warnings = append(warnings, fmt.Sprintf("gomaxprocs differs (baseline %d, current %d): absolute figures are not comparable",
			base.GoMaxProcs, cur.GoMaxProcs))
	}
	return bad, warnings
}
