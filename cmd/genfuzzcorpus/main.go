// Command genfuzzcorpus regenerates the committed seed corpora under each
// package's testdata/fuzz/ directory. The corpora give `go test -fuzz` real
// MPEG-2 structure to mutate from the first execution — raw random bytes
// rarely get past the start-code scan — and make plain `go test` replay the
// seeds as regression inputs. Run from the repository root:
//
//	go run ./cmd/genfuzzcorpus
//
// Every input is derived deterministically (fixed encoder seeds, fixed
// corruption seeds), so regeneration is reproducible and diffs are
// reviewable.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"tiledwall/internal/bits"
	"tiledwall/internal/cluster"
	"tiledwall/internal/conformance"
	"tiledwall/internal/encoder"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/subpic"
	"tiledwall/internal/video"
)

// writeCorpus writes one `go test fuzz v1` entry; each value becomes a
// []byte(...) line, matching fuzz targets whose arguments are all []byte.
func writeCorpus(dir, name string, values ...[]byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := "go test fuzz v1\n"
	for _, v := range values {
		body += "[]byte(" + strconv.Quote(string(v)) + ")\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}

func encodeStream(w, h, frames int, seed int64) []byte {
	cfg := encoder.Config{Width: w, Height: h, GOPSize: 4, BSpacing: 2, InitialQScale: 6}
	src := video.NewSource(video.SceneFilm, w, h, seed)
	e, err := encoder.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if err := e.Push(src.Frame(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		log.Fatal(err)
	}
	return e.Bytes()
}

func sliceOffset(unit []byte) int {
	for off := bits.NextStartCode(unit, 0); off >= 0; off = bits.NextStartCode(unit, off+4) {
		if bits.IsSliceStartCode(unit[off+3]) {
			return off + 4
		}
	}
	return -1
}

func main() {
	stream := encodeStream(64, 48, 5, 7)
	st, err := mpeg2.ParseStream(stream)
	if err != nil {
		log.Fatal(err)
	}

	// internal/bits: reader op programs and start-code fields.
	bdir := "internal/bits/testdata/fuzz"
	writeCorpus(filepath.Join(bdir, "FuzzReader"), "seed-stream", append([]byte{0x1f}, stream[:96]...))
	writeCorpus(filepath.Join(bdir, "FuzzReader"), "seed-ops", []byte{0x10, 0x08, 0x11, 0x22, 0x33, 0x2a, 0x05, 0x18, 0xf0, 0x0f, 0xaa, 0x55, 0x77})
	writeCorpus(filepath.Join(bdir, "FuzzNextStartCode"), "seed-stream", stream[:128])
	writeCorpus(filepath.Join(bdir, "FuzzNextStartCode"), "seed-dense",
		[]byte{0, 0, 1, 0xb3, 0, 0, 1, 0xb8, 0, 0, 1, 0x00, 0, 0, 1, 0x01, 0, 0, 0, 1, 0xb7})

	// internal/mpeg2: real headers, picture units and corrupt variants.
	mdir := "internal/mpeg2/testdata/fuzz"
	writeCorpus(filepath.Join(mdir, "FuzzSequenceHeader"), "seed-real", stream[:160])
	writeCorpus(filepath.Join(mdir, "FuzzSequenceHeader"), "seed-corrupt",
		conformance.Corrupt(stream[:160], conformance.CorruptBitFlips, 1))
	for i := 0; i < 3 && i < len(st.Pictures); i++ {
		unit := st.Pictures[i]
		writeCorpus(filepath.Join(mdir, "FuzzPictureHeader"), fmt.Sprintf("seed-pic%d", i), unit)
		writeCorpus(filepath.Join(mdir, "FuzzDecodePictureUnit"), fmt.Sprintf("seed-pic%d", i), unit)
		writeCorpus(filepath.Join(mdir, "FuzzDecodePictureUnit"), fmt.Sprintf("seed-pic%d-corrupt", i),
			conformance.Corrupt(unit, conformance.CorruptBitFlips, int64(i)))
		if off := sliceOffset(unit); off > 0 {
			// Table selector sweeps picture type, DC precision and the
			// QScaleType/IntraVLC/AltScan bits (see FuzzVLC).
			writeCorpus(filepath.Join(mdir, "FuzzVLC"), fmt.Sprintf("seed-pic%d", i),
				[]byte{byte(i)}, unit[off:])
			writeCorpus(filepath.Join(mdir, "FuzzVLC"), fmt.Sprintf("seed-pic%d-tables", i),
				[]byte{byte(0x30 + i)}, unit[off:])
		}
	}
	writeCorpus(filepath.Join(mdir, "FuzzStream"), "seed-real", stream)
	for _, kind := range conformance.CorruptionKinds() {
		writeCorpus(filepath.Join(mdir, "FuzzStream"), "seed-"+kind.String(),
			conformance.Corrupt(stream, kind, 5))
	}

	// internal/subpic: marshalled sub-pictures and block bundles.
	sdir := "internal/subpic/testdata/fuzz"
	sp := &subpic.SubPicture{
		Pic: subpic.PicInfo{Index: 2, TemporalRef: 4, PicType: uint8(mpeg2.PictureB),
			FCode: [2][2]uint8{{2, 2}, {3, 3}}, Flags: 0x5, DCPrecision: 2},
		Pieces: []subpic.Piece{
			{SPH: subpic.SPH{SkipBits: 3, FirstAddr: 7, CodedCount: 5, LeadingSkip: 1,
				TrailingSkip: 2, QuantCode: 12, DCPred: [3]int32{896, 640, 640}},
				Payload: []byte{0xca, 0xfe, 0xba, 0xbe}},
		},
		MEI: []subpic.MEIInstr{
			{Kind: subpic.MEISend, Ref: subpic.RefFwd, MBX: 2, MBY: 1, Peer: 1},
			{Kind: subpic.MEIRecv, Ref: subpic.RefBwd, MBX: 5, MBY: 0, Peer: 3},
		},
	}
	writeCorpus(filepath.Join(sdir, "FuzzSubPictureUnmarshal"), "seed-subpic", sp.Marshal())
	writeCorpus(filepath.Join(sdir, "FuzzSubPictureUnmarshal"), "seed-final",
		(&subpic.SubPicture{Final: true}).Marshal())
	writeCorpus(filepath.Join(sdir, "FuzzSubPictureUnmarshal"), "seed-corrupt",
		conformance.Corrupt(sp.Marshal(), conformance.CorruptBitFlips, 3))
	bb := &subpic.BlockBundle{
		PicIndex: 1,
		Cells:    []subpic.BlockCell{{Ref: subpic.RefFwd, MBX: 1, MBY: 1}},
		Pixels:   make([]byte, mpeg2.MacroblockBytes),
	}
	writeCorpus(filepath.Join(sdir, "FuzzBlockBundle"), "seed-bundle", bb.Marshal())
	writeCorpus(filepath.Join(sdir, "FuzzBlockBundle"), "seed-truncated", bb.Marshal()[:10])

	// internal/cluster: TCP wire frames — valid messages (including a real
	// marshalled sub-picture payload), handshake frames, aborts, and hostile
	// variants (bad version, truncation, flipped bits, oversize length).
	cdir := "internal/cluster/testdata/fuzz"
	frame := func(m *cluster.Message) []byte {
		b, err := cluster.AppendMessageFrame(nil, m)
		if err != nil {
			log.Fatal(err)
		}
		return b
	}
	spMsg := frame(&cluster.Message{Kind: cluster.MsgSubPicture, From: 1, To: 3, Seq: 2, Tag: 4, Session: 1, Payload: sp.Marshal()})
	writeCorpus(filepath.Join(cdir, "FuzzFrameDecode"), "seed-subpicture", spMsg)
	writeCorpus(filepath.Join(cdir, "FuzzFrameDecode"), "seed-ack",
		frame(&cluster.Message{Kind: cluster.MsgAck, From: 3, To: 0, Seq: -2, Session: 7}))
	writeCorpus(filepath.Join(cdir, "FuzzFrameDecode"), "seed-picture",
		frame(&cluster.Message{Kind: cluster.MsgPicture, From: 0, To: 1, Seq: 0, Tag: 1, Session: 1,
			Flags: 1 << 5, Payload: st.Pictures[0][:64]}))
	hello := cluster.AppendHelloFrame(nil, cluster.Hello{
		Version: cluster.WireVersion, Node: 3, NumNodes: 10,
		Grid: cluster.Grid{K: 2, M: 2, N: 2, Overlap: 32},
	})
	writeCorpus(filepath.Join(cdir, "FuzzFrameDecode"), "seed-hello", hello)
	badVersion := append([]byte(nil), hello...)
	badVersion[9] ^= 0x7f // version byte: frameLen(4) + type(1) + magic(4)
	writeCorpus(filepath.Join(cdir, "FuzzFrameDecode"), "seed-hello-badversion", badVersion)
	writeCorpus(filepath.Join(cdir, "FuzzFrameDecode"), "seed-accept",
		cluster.AppendAcceptFrame(nil, cluster.Accept{Version: cluster.WireVersion, NumNodes: 10}))
	writeCorpus(filepath.Join(cdir, "FuzzFrameDecode"), "seed-abort",
		cluster.AppendAbortFrame(nil, cluster.ErrLinkLost))
	writeCorpus(filepath.Join(cdir, "FuzzFrameDecode"), "seed-truncated", spMsg[:len(spMsg)/2])
	writeCorpus(filepath.Join(cdir, "FuzzFrameDecode"), "seed-corrupt",
		conformance.Corrupt(spMsg, conformance.CorruptBitFlips, 11))
	writeCorpus(filepath.Join(cdir, "FuzzFrameDecode"), "seed-hostile-length",
		[]byte{0xff, 0xff, 0xff, 0xff, 0x03, 0x00})

	fmt.Println("fuzz corpora regenerated")
}
