package conformance

import (
	"errors"
	"testing"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/system"
	"tiledwall/internal/wall"
)

// oracleSeeds are the committed conformance seeds. Together they cover every
// scene class and both settings of qscale type, intra VLC format, alternate
// scan and closed GOP (checked by TestSweepCoverage below, so drift in
// ParamsForSeed cannot silently shrink coverage).
var oracleSeeds = []int64{1, 2, 3, 5, 8, 11, 17, 23}

// TestSweepCoverage pins the property that makes the seed list above an
// actual sweep: across the committed seeds, every coding dimension the
// parallel protocol is sensitive to takes both (or all) of its values.
func TestSweepCoverage(t *testing.T) {
	var qst, b15, alt, closed [2]bool
	scenes := map[string]bool{}
	gops := map[int]bool{}
	fcodes := map[int]bool{}
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	for _, seed := range oracleSeeds {
		p := ParamsForSeed(seed)
		qst[b2i(p.QScaleType)] = true
		b15[b2i(p.IntraVLCFormat)] = true
		alt[b2i(p.AlternateScan)] = true
		closed[b2i(p.ClosedGOP)] = true
		scenes[p.Scene.String()] = true
		gops[p.BSpacing] = true
		fcodes[p.FCode] = true
	}
	for name, dim := range map[string][2]bool{"qscale_type": qst, "intra_vlc_format": b15, "alternate_scan": alt, "closed_gop": closed} {
		if !dim[0] || !dim[1] {
			t.Errorf("seed sweep does not cover both settings of %s", name)
		}
	}
	if len(scenes) < 3 {
		t.Errorf("seed sweep covers only %d scene classes: %v", len(scenes), scenes)
	}
	if len(gops) < 2 {
		t.Errorf("seed sweep covers only one B spacing: %v", gops)
	}
	if len(fcodes) < 2 {
		t.Errorf("seed sweep covers only one f_code: %v", fcodes)
	}
}

// TestOracleMatrix is the differential-decode oracle: every seeded stream
// must decode bit-exactly under every parallel configuration. On failure the
// report names the first divergent picture, macroblock and owning tile.
func TestOracleMatrix(t *testing.T) {
	for _, seed := range oracleSeeds {
		p := ParamsForSeed(seed)
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			stream, err := p.Generate()
			if err != nil {
				t.Fatal(err)
			}
			results, err := RunMatrix(stream, DefaultMatrix())
			if err != nil {
				t.Fatal(err)
			}
			if len(results) < 6 {
				t.Fatalf("matrix ran only %d configurations, want >= 6", len(results))
			}
			for _, r := range results {
				if r.Err != nil {
					t.Errorf("%s: pipeline failed: %v", r.Name(), r.Err)
					continue
				}
				if r.Divergence != nil {
					t.Errorf("%s: %s", r.Name(), r.Divergence)
				}
			}
		})
	}
}

// TestSessionMatrix holds the resident session path to the oracle: every
// matrix configuration decodes 4 concurrent chunk-fed sessions on one wall,
// and each session must be byte-identical to the serial reference. Two seeds
// with different coding parameters bound the runtime; TestOracleMatrix
// already covers the full seed sweep through the (same) session machinery
// via system.Run.
func TestSessionMatrix(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		p := ParamsForSeed(seed)
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			stream, err := p.Generate()
			if err != nil {
				t.Fatal(err)
			}
			results, err := RunSessionMatrix(stream, DefaultMatrix(), 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(DefaultMatrix()) {
				t.Fatalf("session matrix ran %d configurations, want %d", len(results), len(DefaultMatrix()))
			}
			for _, r := range results {
				if r.Err != nil {
					t.Errorf("%s: resident pipeline failed: %v", r.Name(), r.Err)
					continue
				}
				if r.Divergence != nil {
					t.Errorf("%s: %s", r.Name(), r.Divergence)
				}
			}
		})
	}
}

// TestFleetMatrix holds the fleet front door to the oracle: a dozen
// concurrent chunk-fed copies of the stream are routed across a
// heterogeneous four-wall farm — through queued admission, since every wall
// is sized below the session count — and each session must decode
// byte-identical to the serial reference under whichever geometry the
// router picked. One seed bounds the runtime; the wall-level machinery under
// every route is swept across seeds by TestSessionMatrix.
func TestFleetMatrix(t *testing.T) {
	p := ParamsForSeed(7)
	stream, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 12
	results, err := RunFleetMatrix(stream, sessions)
	if err != nil {
		t.Fatal(err)
	}
	wallsHit := map[int]bool{}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("session %d (wall %d): %v", r.Session, r.Wall, r.Err)
			continue
		}
		if r.Divergence != nil {
			t.Errorf("session %d (%s): %s", r.Session, r.Grid, r.Divergence)
			continue
		}
		wallsHit[r.Wall] = true
	}
	if len(wallsHit) != len(FleetMatrixWalls(sessions)) {
		t.Errorf("fleet matrix exercised %d of %d walls", len(wallsHit), len(FleetMatrixWalls(sessions)))
	}
}

// TestTransportMatrix holds the TCP socket transport to the oracle: every
// matrix configuration (pooled, split-workers and overlap axes included)
// decodes the stream over the in-process fabric AND over TCP loopback, plus 2
// concurrent chunk-fed sessions on a resident TCP wall — all byte-identical
// to the serial reference. Two seeds with different coding parameters bound
// the runtime (disjoint from TestSessionMatrix's pair, widening the combined
// seed coverage of the resident path); the fabric side of every pair is
// already swept across all seeds by TestOracleMatrix.
func TestTransportMatrix(t *testing.T) {
	for _, seed := range []int64{2, 17} {
		p := ParamsForSeed(seed)
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			stream, err := p.Generate()
			if err != nil {
				t.Fatal(err)
			}
			results, err := RunTransportMatrix(stream, DefaultMatrix(), 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(DefaultMatrix()) {
				t.Fatalf("transport matrix ran %d configurations, want %d", len(results), len(DefaultMatrix()))
			}
			for _, r := range results {
				if err := r.Failure(); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestDiffMinimisation plants a single-macroblock difference and checks the
// minimiser attributes it to the right picture, macroblock and tile.
func TestDiffMinimisation(t *testing.T) {
	p := ParamsForSeed(1)
	stream, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	picW, picH := dec.Seq().MBWidth()*16, dec.Seq().MBHeight()*16
	geo, err := wall.NewGeometry(picW, picH, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Copy the reference frames, then damage one luma sample in frame 2 at a
	// macroblock owned by the bottom-right tile.
	got := make([]*mpeg2.PixelBuf, len(ref))
	for i := range ref {
		b := mpeg2.NewPixelBuf(0, 0, picW, picH)
		copy(b.Y, ref[i].Buf.Y)
		copy(b.Cb, ref[i].Buf.Cb)
		copy(b.Cr, ref[i].Buf.Cr)
		got[i] = b
	}
	if d := Diff(ref, got, geo); d != nil {
		t.Fatalf("unexpected divergence on identical frames: %s", d)
	}
	mbx, _, mby, _ := geo.MBSpan(geo.TileIndex(1, 1))
	got[2].Y[(mby*16)*picW+mbx*16] ^= 0x40

	d := Diff(ref, got, geo)
	if d == nil {
		t.Fatal("planted divergence not detected")
	}
	if d.Frame != 2 || d.MBX != mbx || d.MBY != mby {
		t.Fatalf("divergence minimised to frame %d mb (%d,%d), want frame 2 mb (%d,%d)", d.Frame, d.MBX, d.MBY, mbx, mby)
	}
	if want := geo.Owner(mbx, mby); d.Tile != want {
		t.Fatalf("divergence attributed to tile %d, want %d", d.Tile, want)
	}

	// Frame-count mismatches must be reported, not panic the differ.
	if d := Diff(ref[:len(ref)-1], got, geo); d == nil || d.Frame != -1 {
		t.Fatalf("frame count mismatch not reported: %v", d)
	}
}

// TestCorruptionBounded sweeps the structured corruption injector over the
// serial decoder: every mutated stream must produce either a clean decode, a
// bounded typed error, or (via the resilient decoder) a concealed frame —
// never a panic, never an unbounded allocation.
func TestCorruptionBounded(t *testing.T) {
	p := ParamsForSeed(2)
	stream, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range CorruptionKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 64; seed++ {
				corrupt := Corrupt(stream, kind, seed)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("kind=%s seed=%d: decoder panicked: %v", kind, seed, r)
						}
					}()
					dec, err := mpeg2.NewDecoder(corrupt)
					if err != nil {
						requireBounded(t, kind, seed, err)
						return
					}
					if _, err := dec.DecodeAll(); err != nil {
						requireBounded(t, kind, seed, err)
					}
				}()
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("kind=%s seed=%d: resilient decoder panicked: %v", kind, seed, r)
						}
					}()
					rd, err := mpeg2.NewResilientDecoder(corrupt)
					if err != nil {
						requireBounded(t, kind, seed, err)
						return
					}
					// The resilient decoder's contract: corrupt slices become
					// concealed frames, not errors.
					if _, err := rd.DecodeAll(); err != nil {
						t.Fatalf("kind=%s seed=%d: resilient decode failed: %v", kind, seed, err)
					}
				}()
			}
		})
	}
}

// requireBounded asserts a decode error is one of the typed sentinels the
// public API promises for hostile input.
func requireBounded(t *testing.T, kind CorruptionKind, seed int64, err error) {
	t.Helper()
	if errors.Is(err, mpeg2.ErrCorruptStream) || errors.Is(err, mpeg2.ErrUnsupported) {
		return
	}
	t.Fatalf("kind=%s seed=%d: error is not a typed stream error: %v", kind, seed, err)
}

// TestCorruptionParallelPipeline feeds corrupt streams to the full parallel
// pipeline. The pipeline may reject the stream or decode a concealed-ish
// result, but it must not panic and must not hang: the fabric stall watchdog
// converts any protocol deadlock into ErrStalled.
func TestCorruptionParallelPipeline(t *testing.T) {
	p := ParamsForSeed(3)
	stream, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range CorruptionKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 8; seed++ {
				corrupt := Corrupt(stream, kind, seed)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("kind=%s seed=%d: pipeline panicked: %v", kind, seed, r)
						}
					}()
					cfg := system.Config{K: 2, M: 2, N: 2, Fabric: cluster.Config{StallTimeout: 5 * time.Second}}
					_, err := system.Run(corrupt, cfg)
					_ = err // any outcome but panic/hang is acceptable
				}()
			}
		})
	}
}
