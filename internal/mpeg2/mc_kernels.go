package mpeg2

import "encoding/binary"

// Motion-compensation kernels. samplePlane is the hot path of every inter
// macroblock: it fills a 16×16 luma (or 8×8 chroma) prediction from a
// reference window with one of four half-sample phases (§7.6.4). The
// specialised kernels below replace the per-pixel scalar loops with row-wise
// copies and SWAR byte averages; samplePlaneRef keeps the original scalar
// form as the golden reference (golden_mc_test.go proves the kernels
// bit-exact against it).

// samplePlane copies a w×h block from src (starting at index si, given
// stride) into dst with optional half-sample interpolation. dst is packed
// with stride w. Callers guarantee (via PixelBuf.Contains) that src holds
// (h+hy) rows of (w+hx) samples from si.
func samplePlane(dst []uint8, w, h int, src []uint8, stride, si, hx, hy int) {
	switch {
	case hx == 0 && hy == 0:
		copyRows(dst, w, h, src, stride, si)
	case hx == 1 && hy == 0:
		hHalfRows(dst, w, h, src, stride, si)
	case hx == 0 && hy == 1:
		vHalfRows(dst, w, h, src, stride, si)
	default:
		hvHalfRows(dst, w, h, src, stride, si)
	}
}

// samplePlaneRef is the reference scalar implementation of samplePlane. The
// golden-kernel suite compares every specialised kernel against it; it is
// never used on the decode path.
func samplePlaneRef(dst []uint8, w, h int, src []uint8, stride, si, hx, hy int) {
	switch {
	case hx == 0 && hy == 0:
		for r := 0; r < h; r++ {
			copy(dst[r*w:r*w+w], src[si+r*stride:si+r*stride+w])
		}
	case hx == 1 && hy == 0:
		for r := 0; r < h; r++ {
			row := src[si+r*stride:]
			d := dst[r*w:]
			for c := 0; c < w; c++ {
				d[c] = uint8((int32(row[c]) + int32(row[c+1]) + 1) >> 1)
			}
		}
	case hx == 0 && hy == 1:
		for r := 0; r < h; r++ {
			row := src[si+r*stride:]
			nxt := src[si+(r+1)*stride:]
			d := dst[r*w:]
			for c := 0; c < w; c++ {
				d[c] = uint8((int32(row[c]) + int32(nxt[c]) + 1) >> 1)
			}
		}
	default:
		for r := 0; r < h; r++ {
			row := src[si+r*stride:]
			nxt := src[si+(r+1)*stride:]
			d := dst[r*w:]
			for c := 0; c < w; c++ {
				d[c] = uint8((int32(row[c]) + int32(row[c+1]) + int32(nxt[c]) + int32(nxt[c+1]) + 2) >> 2)
			}
		}
	}
}

// copyRows is the full-pel case: one copy per row.
func copyRows(dst []uint8, w, h int, src []uint8, stride, si int) {
	for r := 0; r < h; r++ {
		copy(dst[r*w:r*w+w], src[si+r*stride:si+r*stride+w])
	}
}

const swarLow7 = 0x7f7f7f7f7f7f7f7f

// avg8 computes the byte-pairwise rounding average (a+b+1)>>1 of eight
// lanes at once: a|b counts each bit pair's max and (a^b)>>1 (masked to keep
// the shift from leaking across lanes) removes half of the disagreement, so
// each byte ends up exactly (a+b+1)>>1 with no carry between lanes.
func avg8(a, b uint64) uint64 {
	return (a | b) - (((a ^ b) >> 1) & swarLow7)
}

// hHalfRows averages each sample with its right neighbour. Block widths are
// 16 or 8, so each row is exactly two or one 8-lane SWAR averages.
func hHalfRows(dst []uint8, w, h int, src []uint8, stride, si int) {
	for r := 0; r < h; r++ {
		row := src[si+r*stride : si+r*stride+w+1]
		d := dst[r*w : r*w+w]
		for c := 0; c < w; c += 8 {
			a := binary.LittleEndian.Uint64(row[c:])
			b := binary.LittleEndian.Uint64(row[c+1:])
			binary.LittleEndian.PutUint64(d[c:], avg8(a, b))
		}
	}
}

// vHalfRows averages each sample with the one below it.
func vHalfRows(dst []uint8, w, h int, src []uint8, stride, si int) {
	for r := 0; r < h; r++ {
		row := src[si+r*stride : si+r*stride+w]
		nxt := src[si+(r+1)*stride : si+(r+1)*stride+w]
		d := dst[r*w : r*w+w]
		for c := 0; c < w; c += 8 {
			a := binary.LittleEndian.Uint64(row[c:])
			b := binary.LittleEndian.Uint64(nxt[c:])
			binary.LittleEndian.PutUint64(d[c:], avg8(a, b))
		}
	}
}

const (
	swarLow6 = 0x3f3f3f3f3f3f3f3f
	swarLow2 = 0x0303030303030303
	swarTwo  = 0x0202020202020202
)

// avg8x4 computes the byte-wise four-sample rounding average
// (a+b+c+d+2)>>2 of eight lanes at once. Unlike the pairwise case it cannot
// be built from nested avg8 calls (the inner roundings leak into the
// result), so it carries exact 10-bit per-lane sums split into high-6 and
// low-2 bit halves: a+b+c+d+2 = 4*hi + lo with hi <= 252 and lo <= 14, both
// carry-free within a byte, and the result hi + lo>>2 <= 255.
func avg8x4(a, b, c, d uint64) uint64 {
	hi := (a>>2)&swarLow6 + (b>>2)&swarLow6 + (c>>2)&swarLow6 + (d>>2)&swarLow6
	lo := a&swarLow2 + b&swarLow2 + c&swarLow2 + d&swarLow2 + swarTwo
	return hi + (lo>>2)&swarLow2
}

// hvHalfRows is the four-sample case: each output averages a 2×2 source
// quad, eight lanes per SWAR step.
func hvHalfRows(dst []uint8, w, h int, src []uint8, stride, si int) {
	for r := 0; r < h; r++ {
		row := src[si+r*stride : si+r*stride+w+1]
		nxt := src[si+(r+1)*stride : si+(r+1)*stride+w+1]
		d := dst[r*w : r*w+w]
		for c := 0; c < w; c += 8 {
			a := binary.LittleEndian.Uint64(row[c:])
			b := binary.LittleEndian.Uint64(row[c+1:])
			e := binary.LittleEndian.Uint64(nxt[c:])
			f := binary.LittleEndian.Uint64(nxt[c+1:])
			binary.LittleEndian.PutUint64(d[c:], avg8x4(a, b, e, f))
		}
	}
}

// avgBytes replaces dst[i] with (dst[i]+other[i]+1)>>1 for all i. Both
// slices must have equal length, a multiple of 8 — true for the 256-byte
// luma and 64-byte chroma prediction buffers it serves (the bidirectional
// average of B-macroblock prediction, §7.6.7.1).
func avgBytes(dst, other []uint8) {
	for i := 0; i < len(dst); i += 8 {
		a := binary.LittleEndian.Uint64(dst[i:])
		b := binary.LittleEndian.Uint64(other[i:])
		binary.LittleEndian.PutUint64(dst[i:], avg8(a, b))
	}
}
