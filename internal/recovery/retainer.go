package recovery

import (
	"sort"
	"sync"
)

// RetainedSubPic is one tile's marshalled sub-picture kept for replay.
type RetainedSubPic struct {
	Session int
	Pic     int
	Tag     int // original ANID tag (replays are not acked, but kept for audit)
	Payload []byte
}

// subPicKey scopes a tile's replay window to one session, so a resident
// wall's concurrent streams never see each other's retained sub-pictures
// (batch runs use session 0 throughout).
type subPicKey struct {
	session int
	tile    int
}

// SubPicRetainer is the replay window the second-level splitters feed: the
// last RetainWindow sub-pictures per (session, tile), shared across splitters
// (each retains the pictures it split, so a tile's entries interleave). When
// a decoder is respawned, the supervisor replays every retained sub-picture
// the new incarnation still owes, in picture order; the decoder's reorder
// stash restores ANID/NSID sequencing without a dedicated reorder queue.
type SubPicRetainer struct {
	mu     sync.Mutex
	window int
	byTile map[subPicKey]map[int]RetainedSubPic // (session, tile) -> pic -> entry
	maxPic map[subPicKey]int
}

// NewSubPicRetainer keeps the last window pictures per (session, tile).
func NewSubPicRetainer(window int) *SubPicRetainer {
	if window <= 0 {
		window = 16
	}
	return &SubPicRetainer{
		window: window,
		byTile: map[subPicKey]map[int]RetainedSubPic{},
		maxPic: map[subPicKey]int{},
	}
}

// Retain stores the session's sub-picture for (tile, pic) and prunes entries
// that fell out of the window.
func (r *SubPicRetainer) Retain(session, tile, pic, tag int, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := subPicKey{session, tile}
	m := r.byTile[k]
	if m == nil {
		m = map[int]RetainedSubPic{}
		r.byTile[k] = m
	}
	m[pic] = RetainedSubPic{Session: session, Pic: pic, Tag: tag, Payload: payload}
	if pic > r.maxPic[k] {
		r.maxPic[k] = pic
	}
	floor := r.maxPic[k] - r.window
	for p := range m {
		if p < floor {
			delete(m, p)
		}
	}
}

// Since returns the session's retained sub-pictures for tile with
// pic >= fromPic, ascending.
func (r *SubPicRetainer) Since(session, tile, fromPic int) []RetainedSubPic {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RetainedSubPic
	for p, e := range r.byTile[subPicKey{session, tile}] {
		if p >= fromPic {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pic < out[j].Pic })
	return out
}

// Drop releases every window of one session (resident session close).
func (r *SubPicRetainer) Drop(session int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.byTile {
		if k.session == session {
			delete(r.byTile, k)
			delete(r.maxPic, k)
		}
	}
}

// RetainedPicture is one picture unit the root keeps until its assignee's
// credit ack confirms delivery.
type RetainedPicture struct {
	Session int
	Seq     int // per-session picture index
	Tag     int // NSID riding on the original send
	Flags   uint8
	Payload []byte

	ord int64 // global send order, for cross-session replay sequencing
}

// pictureKey scopes the root's replay window per session: one session's
// retransmits never disturb another's.
type pictureKey struct {
	session int
	seq     int
}

// PictureRetainer is the root splitter's replay window: every picture sent
// to a second-level splitter stays retained until that splitter's ack
// returns the credit — so the buffer is bounded by the two-buffer credit
// window (at most 2 outstanding pictures per splitter per session) plus a
// small slack for acks in flight. When a splitter is respawned, the
// supervisor replays its unacked pictures with their original NSID tags, in
// original send order across sessions, preserving the ANID/NSID ordering
// chain.
type PictureRetainer struct {
	mu         sync.Mutex
	nextOrd    int64
	bySplitter map[int]map[pictureKey]RetainedPicture // splitter index -> (session, seq) -> entry
}

// NewPictureRetainer returns an empty retainer.
func NewPictureRetainer() *PictureRetainer {
	return &PictureRetainer{bySplitter: map[int]map[pictureKey]RetainedPicture{}}
}

// Retain stores the session's picture seq sent to splitter idx.
func (r *PictureRetainer) Retain(session, idx, seq, tag int, flags uint8, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.bySplitter[idx]
	if m == nil {
		m = map[pictureKey]RetainedPicture{}
		r.bySplitter[idx] = m
	}
	r.nextOrd++
	m[pictureKey{session, seq}] = RetainedPicture{
		Session: session, Seq: seq, Tag: tag, Flags: flags, Payload: payload, ord: r.nextOrd,
	}
}

// Ack releases the retained picture (session, seq) of splitter idx.
func (r *PictureRetainer) Ack(session, idx, seq int) {
	r.mu.Lock()
	delete(r.bySplitter[idx], pictureKey{session, seq})
	r.mu.Unlock()
}

// Pending returns one session's unacked pictures at splitter idx in
// ascending seq order.
func (r *PictureRetainer) Pending(session, idx int) []RetainedPicture {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RetainedPicture
	for k, e := range r.bySplitter[idx] {
		if k.session == session {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// PendingSplitter returns every session's unacked pictures at splitter idx in
// original send order — the replay sequence for a respawned resident
// splitter.
func (r *PictureRetainer) PendingSplitter(idx int) []RetainedPicture {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RetainedPicture
	for _, e := range r.bySplitter[idx] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ord < out[j].ord })
	return out
}

// OldestSession returns the session owning splitter idx's oldest pending
// picture — the session whose in-flight token the root releases when it
// writes a lost credit off after a deadline.
func (r *PictureRetainer) OldestSession(idx int) (session int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best int64
	for k, e := range r.bySplitter[idx] {
		if !ok || e.ord < best {
			best, session, ok = e.ord, k.session, true
		}
	}
	return session, ok
}

// Drop releases every retained picture of one session across splitters
// (resident session close or failure).
func (r *PictureRetainer) Drop(session int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.bySplitter {
		for k := range m {
			if k.session == session {
				delete(m, k)
			}
		}
	}
}
