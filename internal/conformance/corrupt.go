package conformance

import "fmt"

// CorruptionKind selects a structured mutation class. Each class models a
// distinct transport failure: bit rot in slice data, a torn transfer, and a
// framing-destroying overwrite of a start code.
type CorruptionKind int

const (
	// CorruptBitFlips flips a handful of bits at seeded positions.
	CorruptBitFlips CorruptionKind = iota
	// CorruptTruncate cuts the stream at a seeded offset.
	CorruptTruncate
	// CorruptStartCode overwrites one start code (after the sequence
	// header, so parsing gets far enough to hit the damage) with seeded
	// garbage, merging or orphaning the units it delimited.
	CorruptStartCode
	numCorruptionKinds
)

func (k CorruptionKind) String() string {
	switch k {
	case CorruptBitFlips:
		return "bitflips"
	case CorruptTruncate:
		return "truncate"
	case CorruptStartCode:
		return "startcode"
	}
	return fmt.Sprintf("CorruptionKind(%d)", int(k))
}

// CorruptionKinds lists every mutation class for sweep loops.
func CorruptionKinds() []CorruptionKind {
	out := make([]CorruptionKind, numCorruptionKinds)
	for i := range out {
		out[i] = CorruptionKind(i)
	}
	return out
}

// Corrupt applies one seeded mutation of the given kind to a copy of data.
// The original is never modified; equal (data, kind, seed) triples yield
// equal corrupt streams. The damage always lands past the first 16 bytes so
// the sequence header survives and the decoder engages its picture path.
func Corrupt(data []byte, kind CorruptionKind, seed int64) []byte {
	out := append([]byte(nil), data...)
	if len(out) < 32 {
		return out
	}
	rng := newXorshift(seed*1000003 + int64(kind))
	const skip = 16 // keep the sequence header start intact
	body := len(out) - skip
	switch kind {
	case CorruptBitFlips:
		flips := 1 + rng.intn(8)
		for i := 0; i < flips; i++ {
			pos := skip + rng.intn(body)
			out[pos] ^= 1 << uint(rng.intn(8))
		}
	case CorruptTruncate:
		cut := skip + rng.intn(body)
		out = out[:cut]
	case CorruptStartCode:
		// Collect start-code offsets past the header region and clobber one.
		var codes []int
		for i := skip; i+3 < len(out); i++ {
			if out[i] == 0 && out[i+1] == 0 && out[i+2] == 1 {
				codes = append(codes, i)
			}
		}
		if len(codes) == 0 {
			out[skip+rng.intn(body)] ^= 0xff
			break
		}
		at := codes[rng.intn(len(codes))]
		for j := 0; j < 4 && at+j < len(out); j++ {
			out[at+j] = byte(rng.next())
		}
	}
	return out
}
