package system

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/service"
)

// ResidentWall is a long-lived pipeline: the fabric, root, splitters and
// decoders are built once by NewResidentWall and serve any number of
// streams — sequentially or concurrently — until Close. Each Play is one
// session; Open gives direct access to the session API for incremental
// feeding.
type ResidentWall struct {
	cfg Config
	svc *service.Wall
	tcp *cluster.TCPTransport // owned when Config.Transport == "tcp"
	n   int64                 // session name counter
}

// NewResidentWall builds the wall. Recovery-enabled configurations run the
// session-aware fault-tolerance layer: supervised node loops, root-side
// picture replay, per-session failure isolation, and — on the TCP transport —
// recoverable links that redial after a loss instead of aborting.
func NewResidentWall(cfg Config) (*ResidentWall, error) {
	cfg.defaults()
	var tcp *cluster.TCPTransport
	// The wall is built after the transport, so link-state events are routed
	// through an indirection armed once the service exists.
	var linkSink struct {
		mu sync.Mutex
		w  *service.Wall
	}
	switch cfg.Transport {
	case "", "fabric":
	case "tcp":
		// All nodes local, all traffic over loopback sockets through the
		// hub: the single-process form of the multi-process wall.
		nn := cfg.NumNodes()
		ids := make([]int, nn)
		for i := range ids {
			ids[i] = i
		}
		tcfg := cluster.TCPConfig{
			NumNodes:     nn,
			LocalNodes:   ids,
			Grid:         cluster.Grid{K: cfg.K, M: cfg.M, N: cfg.N, Overlap: cfg.Overlap},
			StallTimeout: cfg.Fabric.StallTimeout,
		}
		if cfg.Recovery.Enabled {
			tcfg.Recoverable = true
			tcfg.OnLinkState = func(node int, up bool) {
				linkSink.mu.Lock()
				w := linkSink.w
				linkSink.mu.Unlock()
				if w != nil {
					w.NoteLink(node, up)
				}
			}
		}
		var err error
		tcp, err = cluster.ListenTCP("127.0.0.1:0", tcfg)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("system: unknown transport %q (want \"fabric\" or \"tcp\")", cfg.Transport)
	}
	svc, err := service.New(service.Config{
		K:                   cfg.K,
		M:                   cfg.M,
		N:                   cfg.N,
		Overlap:             cfg.Overlap,
		MaxFCode:            cfg.MaxFCode,
		DynamicBalance:      cfg.DynamicBalance,
		SplitWorkers:        cfg.SplitWorkers,
		UnbatchedExchange:   cfg.UnbatchedExchange,
		Pooled:              cfg.Pooled,
		CollectFrames:       cfg.CollectFrames,
		OnTileFrame:         cfg.OnTileFrame,
		Fabric:              cfg.Fabric,
		MaxSessions:         cfg.MaxSessions,
		MaxInFlightPictures: cfg.MaxInFlightPictures,
		Transport:           transportOrNil(tcp),
		Recovery:            cfg.Recovery,
		Chaos:               cfg.Chaos,
	})
	if err != nil {
		if tcp != nil {
			tcp.Abort(err)
		}
		return nil, err
	}
	linkSink.mu.Lock()
	linkSink.w = svc
	linkSink.mu.Unlock()
	return &ResidentWall{cfg: cfg, svc: svc, tcp: tcp}, nil
}

// Health reports the wall's fault-tolerance state (Healthy without
// Recovery enabled).
func (w *ResidentWall) Health() service.Health { return w.svc.Health() }

// transportOrNil avoids handing service.New a typed-nil interface.
func transportOrNil(tcp *cluster.TCPTransport) cluster.Transport {
	if tcp == nil {
		return nil
	}
	return tcp
}

// Service exposes the underlying session API (Open/Feed/Close per stream).
func (w *ResidentWall) Service() *service.Wall { return w.svc }

// Open starts a new session on the wall (admission-controlled).
func (w *ResidentWall) Open(name string) (*service.Session, error) {
	return w.svc.Open(name)
}

// Play decodes one complete stream as one session and reports it in the
// batch Result shape. Safe to call from concurrent goroutines, up to the
// wall's MaxSessions.
func (w *ResidentWall) Play(stream []byte) (*Result, error) {
	start := time.Now()
	sess, err := w.svc.Open(fmt.Sprintf("play-%d", atomic.AddInt64(&w.n, 1)))
	if err != nil {
		return nil, err
	}
	if err := sess.Feed(stream); err != nil {
		sess.Close()
		return nil, err
	}
	sres, err := sess.Close()
	if err != nil {
		return nil, err
	}
	res := w.result(sres, int64(len(stream)))
	// Elapsed covers open → drained, the batch run window.
	res.Throughput.Elapsed = time.Since(start)
	return res, nil
}

// Close drains and tears the wall down, returning the pipeline abort cause
// if any node failed. A TCP transport built by NewResidentWall is owned here
// (service.Wall does not shut down external transports).
func (w *ResidentWall) Close() error {
	err := w.svc.Close()
	if w.tcp != nil {
		w.tcp.Shutdown()
	}
	return err
}

// result maps a session result onto the batch Result shape. NodeStats and
// PairBytes report the transport's cumulative counters — equal to the
// session's own traffic on a single-Play wall; multi-session walls read
// per-session bytes from SessionResult.WireBytes.
func (w *ResidentWall) result(sres *service.SessionResult, streamBytes int64) *Result {
	res := &Result{
		Config:      w.cfg,
		Throughput:  sres.Throughput,
		Root:        sres.Root,
		Splitters:   sres.Splitters,
		Decoders:    sres.Decoders,
		Frames:      sres.Frames,
		StreamBytes: streamBytes,
		RootNodeID:  0,
		NodeStats:   w.svc.Transport().Stats(),
		// The batch Result reports one run's total interventions: the
		// session's own charges (concealment, splitter-gate timeouts) plus
		// the wall-level charges (restarts, replays, root credit timeouts)
		// accrued while it ran — cumulative across sessions on a shared wall,
		// exact for the single-Play wall that Run builds.
		Recovery:        sres.Recovery.Plus(w.svc.Recovery()),
		TileEmissions:   sres.TileEmissions,
		Warnings:        w.cfg.validate(),
		EffectivePooled: w.cfg.Pooled,
		transport:       w.svc.Transport(),
	}
	for i := 0; i < w.cfg.K; i++ {
		res.SplitterNodeIDs = append(res.SplitterNodeIDs, 1+i)
	}
	for t := 0; t < w.cfg.M*w.cfg.N; t++ {
		res.DecoderNodeIDs = append(res.DecoderNodeIDs, 1+w.cfg.K+t)
	}
	return res
}
