// Benchmarks regenerating the paper's evaluation, one per table/figure
// (DESIGN.md §4 maps each experiment to its implementation). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports paper-relevant custom metrics (fps, Mpixel/s,
// MB/s) alongside the usual ns/op. Content is generated at reduced scale so
// a full sweep stays tractable; cmd/benchwall runs the same experiments at
// arbitrary (including paper) scale.
package tiledwall

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"tiledwall/internal/experiments"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/system"
)

// benchSeed parameterises benchmark content generation. The default (1) is
// the catalogue default, so published numbers stay comparable; set
// TILEDWALL_BENCH_SEED to measure on different content while keeping the
// run reproducible from the logged value.
func benchSeed() int64 {
	if s := os.Getenv("TILEDWALL_BENCH_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v != 0 {
			return v
		}
	}
	return 1
}

// benchOpts is the common reduced scale: stream resolutions divided by 2,
// 24-frame sequences (the paper uses 240 at full resolution).
func benchOpts() experiments.Options {
	return experiments.Options{Frames: 24, Scale: 2, Seed: benchSeed()}
}

func benchStream(b *testing.B, id int) []byte {
	b.Helper()
	opts := benchOpts()
	b.Logf("content seed %d (stream %d, frames %d, scale 1/%d)", opts.Seed, id, opts.Frames, opts.Scale)
	data, _, err := experiments.Stream(id, opts, false)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkSerialDecoder baselines the single-PC decoder the parallel
// systems are compared against (the "1 node" points of Fig. 6/8).
func BenchmarkSerialDecoder(b *testing.B) {
	data := benchStream(b, 8)
	s, err := mpeg2.ParseStream(data)
	if err != nil {
		b.Fatal(err)
	}
	pixels := int64(s.Seq.Width) * int64(s.Seq.Height) * int64(len(s.Pictures))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := mpeg2.NewStreamDecoder(s)
		if _, err := dec.DecodeAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(pixels)
	b.ReportMetric(float64(len(s.Pictures))*float64(b.N)/b.Elapsed().Seconds(), "fps")
}

// BenchmarkTable1Granularity measures the four parallelisation levels of
// Table 1 on the same content (stream 8 class, 2x2 wall).
func BenchmarkTable1Granularity(b *testing.B) {
	open := benchStream(b, 8)
	closed, _, err := experiments.Stream(8, benchOpts(), true)
	if err != nil {
		b.Fatal(err)
	}
	levels := []struct {
		name  string
		level system.BaselineLevel
		data  []byte
	}{
		{"gop", system.LevelGOP, closed},
		{"picture", system.LevelPicture, open},
		{"slice", system.LevelSlice, open},
	}
	for _, lv := range levels {
		lv := lv
		b.Run(lv.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := system.RunBaseline(lv.data, system.BaselineConfig{Level: lv.level, M: 2, N: 2})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					pics := float64(res.Throughput.Pictures)
					b.ReportMetric(res.Modeled().FPS(), "fps")
					b.ReportMetric(float64(res.InterDecoderBytes)/pics/1024, "interKB/pic")
					b.ReportMetric(float64(res.RedistributionBytes)/pics/1024, "redistKB/pic")
				}
			}
		})
	}
	b.Run("macroblock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := system.Run(open, system.Config{K: 1, M: 2, N: 2})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.Modeled().FPS(), "fps")
				b.ReportMetric(0, "redistKB/pic")
			}
		}
	})
}

// BenchmarkTable5OneLevel and BenchmarkTable5TwoLevel sweep the screen
// configurations of Table 5 / Figure 6 on the HDTV-class stream 8.
func BenchmarkTable5OneLevel(b *testing.B) {
	data := benchStream(b, 8)
	for _, c := range experiments.Table5Configs {
		c := c
		b.Run(fmt.Sprintf("1-(%d,%d)", c[0], c[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := system.Run(data, system.Config{K: 0, M: c[0], N: c[1]})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.Modeled().FPS(), "fps")
				}
			}
		})
	}
}

func BenchmarkTable5TwoLevel(b *testing.B) {
	data := benchStream(b, 8)
	for _, c := range experiments.Table5Configs {
		c := c
		cal, err := system.Calibrate(data, c[0], c[1], 0, 12)
		if err != nil {
			b.Fatal(err)
		}
		k := cal.RecommendedK(0)
		if k == 0 {
			k = 1
		}
		b.Run(fmt.Sprintf("1-%d-(%d,%d)", k, c[0], c[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := system.Run(data, system.Config{K: k, M: c[0], N: c[1]})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.Modeled().FPS(), "fps")
				}
			}
		})
	}
}

// BenchmarkFig7Breakdown reports the decoder runtime breakdown for the two
// profiled configurations of Figure 7.
func BenchmarkFig7Breakdown(b *testing.B) {
	data := benchStream(b, 8)
	for _, cfg := range []struct{ k, m, n int }{{2, 2, 2}, {5, 4, 4}} {
		cfg := cfg
		b.Run(fmt.Sprintf("1-%d-(%d,%d)", cfg.k, cfg.m, cfg.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := system.Run(data, system.Config{K: cfg.k, M: cfg.m, N: cfg.n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					var work, serve, wait float64
					for _, d := range res.Decoders {
						work += d.Breakdown.PerPicture(metrics.PhaseWork)
						serve += d.Breakdown.PerPicture(metrics.PhaseServe)
						wait += d.Breakdown.PerPicture(metrics.PhaseWaitMB)
					}
					n := float64(len(res.Decoders))
					b.ReportMetric(work/n, "work_ms/pic")
					b.ReportMetric(serve/n, "serve_ms/pic")
					b.ReportMetric(wait/n, "wait_ms/pic")
				}
			}
		})
	}
}

// BenchmarkTable6Scalability plays a resolution ladder (a subset of the 16
// streams) on its matched configurations: the Figure 8 series.
func BenchmarkTable6Scalability(b *testing.B) {
	for _, id := range []int{1, 5, 8, 10, 12, 13} {
		id := id
		data, spec, err := experiments.Stream(id, benchOpts(), false)
		if err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("s%02d-1-%d-(%d,%d)", id, spec.K, spec.M, spec.N)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := system.Run(data, system.Config{K: spec.K, M: spec.M, N: spec.N})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					mt := res.Modeled()
					b.ReportMetric(mt.FPS(), "fps")
					b.ReportMetric(mt.PixelRate(), "Mpixel/s")
				}
			}
		})
	}
}

// BenchmarkFig9Bandwidth measures per-node bandwidth on the flyby stream
// with localised detail (the paper: stream 16 on 1-4-(4,4); reduced here to
// stream 13's resolution class to keep the bench tractable).
func BenchmarkFig9Bandwidth(b *testing.B) {
	data := benchStream(b, 13)
	for i := 0; i < b.N; i++ {
		res, err := system.Run(data, system.Config{K: 4, M: 4, N: 4})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			secs := res.Modeled().Elapsed.Seconds()
			var maxDec, sumDec float64
			for _, id := range res.DecoderNodeIDs {
				v := float64(res.NodeStats[id].BytesSent+res.NodeStats[id].BytesRecv) / secs / 1e6
				sumDec += v
				if v > maxDec {
					maxDec = v
				}
			}
			b.ReportMetric(maxDec, "maxDecMB/s")
			b.ReportMetric(sumDec/float64(len(res.DecoderNodeIDs)), "avgDecMB/s")
			sp := res.NodeStats[res.SplitterNodeIDs[0]]
			b.ReportMetric(float64(sp.BytesSent)/float64(sp.BytesRecv), "sphOverhead")
		}
	}
}

// BenchmarkCalibration measures the §4.6 configuration procedure itself.
func BenchmarkCalibration(b *testing.B) {
	data := benchStream(b, 8)
	for i := 0; i < b.N; i++ {
		if _, err := system.Calibrate(data, 2, 2, 0, 12); err != nil {
			b.Fatal(err)
		}
	}
}
