// Package recovery is the supervision layer of the resident wall (DESIGN.md
// §6). The paper's wall must keep projecting when a node hiccups; PR 1's
// fault injection could only *detect* loss (a dropped message stalls the
// pipeline into ErrStalled). One recovery model serves every transport —
// the in-process fabric and TCP alike — masking faults at two levels:
//
//   - node: per-node leases renewed on every picture; a supervisor declares
//     a decoder or second-level splitter dead after missed leases and
//     respawns it in place. A respawned splitter is replayed the unacked
//     pictures the root retained for it (PictureRetainer, preserving the
//     ANID/NSID ordering chain across sessions); a respawned decoder is not
//     replayed to — it resumes at its emission frontier and conceals forward
//     until an I picture re-anchors the reference chain;
//   - output: when a sub-picture or exchanged reference macroblock stays
//     unrecoverable past a per-picture deadline, the owning decoder conceals
//     instead of aborting — freeze-last-frame for a lost tile picture,
//     copy-from-reference for missing halo macroblocks — and every
//     intervention is counted in metrics.Recovery.
//
// On a pooled wall the retainer participates in slab reference counting
// (cluster.SlabRef/PutSlab): retaining a payload acquires a reference,
// replaying shares the retained bytes, and the releasing ack or session
// drop returns the reference — the last holder recycles the slab.
package recovery

import (
	"errors"
	"time"
)

// ErrKilled is returned by a supervised worker whose chaos plan told it to
// die: the simulated equivalent of a process crash. The supervision loop in
// internal/system treats it as a death to detect (via lease expiry) and
// recover from; any other error still aborts the run.
var ErrKilled = errors.New("recovery: node killed (injected fault)")

// Config tunes the recovery layer. The zero value disables it entirely,
// preserving PR 1's fail-stop behaviour.
type Config struct {
	// Enabled turns on the reliable endpoints, supervision and concealment.
	Enabled bool

	// LeaseInterval is the heartbeat period: workers renew their lease at
	// least this often while making progress. A lease not renewed for
	// LeaseExpiry is declared dead. Defaults: 10ms / 4*LeaseInterval.
	LeaseInterval time.Duration
	LeaseExpiry   time.Duration

	// PictureDeadline bounds how long a decoder waits for a missing
	// sub-picture or reference macroblock before concealing, and how long a
	// splitter waits for credit acks before proceeding. It should comfortably
	// exceed LeaseExpiry so the restart+replay path wins the race against
	// concealment. Default: 400ms.
	PictureDeadline time.Duration

	// MaxRestarts bounds respawns per node; a node that keeps dying past the
	// bound stays dead and the run degrades to concealment (or stalls into
	// the watchdog). Default: 3.
	MaxRestarts int

}

// WithDefaults returns c with zero fields filled in.
func (c Config) WithDefaults() Config {
	if c.LeaseInterval <= 0 {
		c.LeaseInterval = 10 * time.Millisecond
	}
	if c.LeaseExpiry <= 0 {
		c.LeaseExpiry = 4 * c.LeaseInterval
	}
	if c.PictureDeadline <= 0 {
		c.PictureDeadline = 400 * time.Millisecond
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	return c
}

// ChaosPlan injects crashes for tests and the benchwall -chaos mode. The
// zero value injects nothing. Each kill fires once, on the named node's
// first incarnation only: the respawned node must survive.
type ChaosPlan struct {
	// KillDecoder arms a decoder crash: the decoder of DecoderTile dies just
	// before processing picture KillAtPicture.
	KillDecoder bool
	DecoderTile int
	// KillSplitter arms a splitter crash: the second-level splitter with
	// index SplitterIdx dies just before splitting picture KillAtPicture.
	KillSplitter bool
	SplitterIdx  int
	// KillAtPicture selects the decode-order picture index for both kills.
	KillAtPicture int
}

// DecoderDies reports whether tile's decoder should crash at picture pic.
func (p ChaosPlan) DecoderDies(tile, pic int) bool {
	return p.KillDecoder && p.DecoderTile == tile && p.KillAtPicture == pic
}

// SplitterDies reports whether splitter idx should crash at picture pic.
func (p ChaosPlan) SplitterDies(idx, pic int) bool {
	return p.KillSplitter && p.SplitterIdx == idx && p.KillAtPicture == pic
}
