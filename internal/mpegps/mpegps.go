// Package mpegps implements a minimal MPEG-2 Program Stream (ISO/IEC
// 13818-1) multiplexer and demultiplexer for video elementary streams. The
// paper's §2 notes MPEG-2 is three standards — video, audio and a system
// layer for multiplexing; real display-wall content arrives as a program
// stream, so the tools accept either form (cmd/mpeg2info auto-detects,
// cmd/genstream can emit PS).
//
// The mux writes a pack header with SCR and mux rate, one system header,
// and video PES packets (stream_id 0xE0) with periodic presentation time
// stamps; the demux tolerates (and skips) padding and non-video streams.
package mpegps

import (
	"encoding/binary"
	"fmt"
)

const (
	packStartCode   = 0x000001BA
	systemStartCode = 0x000001BB
	programEndCode  = 0x000001B9
	videoStreamID   = 0xE0
	paddingStreamID = 0xBE

	// maxPESPayload keeps PES_packet_length within 16 bits including the
	// extension header.
	maxPESPayload = 65000
	// packEvery groups this many PES packets per pack header.
	packEvery = 8
)

// MuxOptions tunes the multiplexer.
type MuxOptions struct {
	// MuxRateBps is the program mux rate in bits per second (rounded up to
	// 50-byte units as the standard requires). Default 15 Mbit/s.
	MuxRateBps int
	// FrameRate drives SCR/PTS advancement per PES packet group. Default 30.
	FrameRate float64
}

func (o *MuxOptions) defaults() {
	if o.MuxRateBps <= 0 {
		o.MuxRateBps = 15_000_000
	}
	if o.FrameRate <= 0 {
		o.FrameRate = 30
	}
}

// Mux wraps a video elementary stream into a program stream.
func Mux(es []byte, opts MuxOptions) []byte {
	opts.defaults()
	muxRate := (opts.MuxRateBps/8 + 49) / 50
	out := make([]byte, 0, len(es)+len(es)/maxPESPayload*32+64)

	var scr uint64 // 90 kHz units
	scrStep := uint64(90000.0 / opts.FrameRate)

	out = appendPackHeader(out, scr, muxRate)
	out = appendSystemHeader(out)

	pesInPack := 0
	for off := 0; off < len(es); {
		n := len(es) - off
		if n > maxPESPayload {
			n = maxPESPayload
		}
		if pesInPack == packEvery {
			scr += scrStep
			out = appendPackHeader(out, scr, muxRate)
			pesInPack = 0
		}
		// PTS on the first PES of each pack (presentation ~ SCR + one frame).
		var pts uint64
		withPTS := pesInPack == 0
		if withPTS {
			pts = scr + scrStep
		}
		out = appendPES(out, es[off:off+n], withPTS, pts)
		off += n
		pesInPack++
	}
	out = binary.BigEndian.AppendUint32(out, programEndCode)
	return out
}

func appendPackHeader(out []byte, scr uint64, muxRate int) []byte {
	out = binary.BigEndian.AppendUint32(out, packStartCode)
	base := scr & ((1 << 33) - 1)
	ext := uint64(0)
	var b [6]byte
	// '01' + base[32:30] + marker + base[29:15] + marker + base[14:0] +
	// marker + ext[8:0] + marker, packed MSB first across 48 bits.
	v := uint64(0b01) << 46
	v |= (base >> 30 & 0x7) << 43
	v |= 1 << 42
	v |= (base >> 15 & 0x7FFF) << 27
	v |= 1 << 26
	v |= (base & 0x7FFF) << 11
	v |= 1 << 10
	v |= (ext & 0x1FF) << 1
	v |= 1
	for i := 0; i < 6; i++ {
		b[i] = byte(v >> (40 - 8*i))
	}
	out = append(out, b[:]...)
	// program_mux_rate(22) + '11', then reserved(5) + stuffing length(3)=0.
	out = append(out,
		byte(muxRate>>14),
		byte(muxRate>>6),
		byte(muxRate<<2)|0b11,
		0xF8,
	)
	return out
}

func appendSystemHeader(out []byte) []byte {
	out = binary.BigEndian.AppendUint32(out, systemStartCode)
	var b []byte
	b = append(b, 0x80, 0x00, 0x01) // marker + rate_bound(22)=0 + marker
	b = append(b, 0x00)             // audio_bound(6)=0, fixed=0, CSPS=0
	b = append(b, 0x21)             // lock flags 0, marker, video_bound(5)=1
	b = append(b, 0x7F)             // packet_rate_restriction=0 + reserved
	// P-STD entry for the video stream: '11' + buffer_bound_scale=1 +
	// buffer_size_bound (13 bits).
	b = append(b, videoStreamID, 0xE0|0x1F, 0xFF)
	out = binary.BigEndian.AppendUint16(out, uint16(len(b)))
	out = append(out, b...)
	return out
}

func appendPES(out []byte, payload []byte, withPTS bool, pts uint64) []byte {
	headerData := 0
	flags := byte(0)
	if withPTS {
		headerData = 5
		flags = 0x80
	}
	out = binary.BigEndian.AppendUint32(out, 0x00000100|videoStreamID)
	out = binary.BigEndian.AppendUint16(out, uint16(3+headerData+len(payload)))
	out = append(out, 0x80, flags, byte(headerData))
	if withPTS {
		p := pts & ((1 << 33) - 1)
		out = append(out,
			byte(0x20|(p>>29&0x0E)|1),
			byte(p>>22),
			byte(p>>14|1),
			byte(p>>7),
			byte(p<<1|1),
		)
	}
	return append(out, payload...)
}

// IsProgramStream reports whether data begins with a pack start code.
func IsProgramStream(data []byte) bool {
	return len(data) >= 4 && binary.BigEndian.Uint32(data) == packStartCode
}

// Demux extracts the video elementary stream (stream_id 0xE0..0xEF) from a
// program stream. It tolerates padding packets and skips audio/private
// streams.
func Demux(data []byte) ([]byte, error) {
	if !IsProgramStream(data) {
		return nil, fmt.Errorf("mpegps: not a program stream")
	}
	var es []byte
	off := 0
	for off+4 <= len(data) {
		code := binary.BigEndian.Uint32(data[off:])
		switch {
		case code == packStartCode:
			if off+14 > len(data) {
				return nil, fmt.Errorf("mpegps: truncated pack header at %d", off)
			}
			if data[off+4]>>6 != 0b01 {
				return nil, fmt.Errorf("mpegps: MPEG-1 pack headers not supported")
			}
			stuffing := int(data[off+13] & 0x7)
			off += 14 + stuffing
		case code == systemStartCode:
			if off+6 > len(data) {
				return nil, fmt.Errorf("mpegps: truncated system header")
			}
			off += 6 + int(binary.BigEndian.Uint16(data[off+4:]))
		case code == programEndCode:
			return es, nil
		case code>>8 == 0x000001:
			sid := byte(code)
			if off+6 > len(data) {
				return nil, fmt.Errorf("mpegps: truncated PES at %d", off)
			}
			plen := int(binary.BigEndian.Uint16(data[off+4:]))
			pes := data[off+6:]
			if plen > len(pes) {
				return nil, fmt.Errorf("mpegps: PES length %d exceeds stream", plen)
			}
			pes = pes[:plen]
			if sid >= videoStreamID && sid <= 0xEF {
				if len(pes) < 3 || pes[0]>>6 != 0b10 {
					return nil, fmt.Errorf("mpegps: malformed PES extension for stream %#x", sid)
				}
				hdl := int(pes[2])
				if 3+hdl > len(pes) {
					return nil, fmt.Errorf("mpegps: PES header data overruns packet")
				}
				es = append(es, pes[3+hdl:]...)
			}
			off += 6 + plen
		default:
			return nil, fmt.Errorf("mpegps: lost sync at offset %d (word %08x)", off, code)
		}
	}
	return es, nil
}

// ParsePTS extracts the first presentation time stamp of the stream's video
// PES packets, in 90 kHz units, for inspection tools.
func ParsePTS(data []byte) (uint64, bool) {
	off := 0
	for off+6 <= len(data) {
		code := binary.BigEndian.Uint32(data[off:])
		switch {
		case code == packStartCode:
			if off+14 > len(data) {
				return 0, false
			}
			off += 14 + int(data[off+13]&0x7)
		case code == systemStartCode:
			off += 6 + int(binary.BigEndian.Uint16(data[off+4:]))
		case code == programEndCode:
			return 0, false
		case code>>8 == 0x000001 && byte(code) >= videoStreamID && byte(code) <= 0xEF:
			pes := data[off+6:]
			if len(pes) >= 8 && pes[1]&0x80 != 0 {
				p := pes[3:8]
				pts := uint64(p[0]>>1&0x07)<<30 | uint64(p[1])<<22 |
					uint64(p[2]>>1)<<15 | uint64(p[3])<<7 | uint64(p[4])>>1
				return pts, true
			}
			off += 6 + int(binary.BigEndian.Uint16(data[off+4:]))
		case code>>8 == 0x000001:
			off += 6 + int(binary.BigEndian.Uint16(data[off+4:]))
		default:
			return 0, false
		}
	}
	return 0, false
}
