package video

import (
	"bytes"
	"math"
	"testing"

	"tiledwall/internal/mpeg2"
)

func allKinds() []SceneKind {
	return []SceneKind{SceneFilm, SceneAnimation, SceneFishTank, SceneBroadcast, SceneFlyby}
}

func TestDeterminism(t *testing.T) {
	for _, k := range allKinds() {
		a := NewSource(k, 96, 64, 7).Frame(3)
		b := NewSource(k, 96, 64, 7).Frame(3)
		if !Equal(a, b) {
			t.Errorf("%v: same seed produced different frames", k)
		}
		c := NewSource(k, 96, 64, 8).Frame(3)
		if Equal(a, c) {
			t.Errorf("%v: different seeds produced identical frames", k)
		}
	}
}

func TestFramesChangeOverTime(t *testing.T) {
	for _, k := range allKinds() {
		src := NewSource(k, 96, 64, 7)
		if Equal(src.Frame(0), src.Frame(5)) {
			t.Errorf("%v: static scene — frames 0 and 5 identical", k)
		}
	}
}

func TestRenderMatchesFrame(t *testing.T) {
	src := NewSource(SceneFilm, 96, 64, 3)
	buf := mpeg2.NewPixelBuf(0, 0, 96, 64)
	src.Render(4, buf)
	if !Equal(buf, src.Frame(4)) {
		t.Error("Render and Frame disagree")
	}
}

func TestChromaCentered(t *testing.T) {
	// Chroma planes should hover around 128 (video is mostly luma detail).
	for _, k := range allKinds() {
		f := NewSource(k, 96, 64, 1).Frame(0)
		var sum int64
		for i := range f.Cb {
			sum += int64(f.Cb[i])
		}
		mean := float64(sum) / float64(len(f.Cb))
		if mean < 80 || mean > 176 {
			t.Errorf("%v: Cb mean %.0f far from neutral", k, mean)
		}
	}
}

// TestFlybyLocalisedDetail: the flyby scene must concentrate its detail in
// the upper-left region — the property driving the paper's §5.5 imbalance.
func TestFlybyLocalisedDetail(t *testing.T) {
	f := NewSource(SceneFlyby, 256, 192, 2).Frame(10)
	activity := func(x0, y0, w, h int) float64 {
		var sum float64
		var n int
		for y := y0; y < y0+h-1; y++ {
			for x := x0; x < x0+w-1; x++ {
				d := int(f.Y[y*256+x]) - int(f.Y[y*256+x+1])
				sum += math.Abs(float64(d))
				n++
			}
		}
		return sum / float64(n)
	}
	dense := activity(0, 0, 96, 72)
	sparse := activity(160, 120, 96, 72)
	if dense < sparse*2 {
		t.Errorf("flyby detail not localised: dense %.2f vs sparse %.2f", dense, sparse)
	}
	if sparse == 0 {
		t.Error("sparse region completely flat; every tile should see some activity")
	}
}

func TestPSNR(t *testing.T) {
	a := mpeg2.NewPixelBuf(0, 0, 32, 32)
	b := mpeg2.NewPixelBuf(0, 0, 32, 32)
	if p, err := PSNR(a, b); err != nil || !math.IsInf(p, 1) {
		t.Errorf("identical PSNR = %v err %v", p, err)
	}
	b.Y[0] = 255
	p, err := PSNR(a, b)
	if err != nil || math.IsInf(p, 1) || p < 20 {
		t.Errorf("single-pixel PSNR = %v err %v", p, err)
	}
	c := mpeg2.NewPixelBuf(0, 0, 16, 16)
	if _, err := PSNR(a, c); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := mpeg2.NewPixelBuf(0, 0, 16, 16)
	b := mpeg2.NewPixelBuf(0, 0, 16, 16)
	b.Y[5] = 7
	b.Cr[2] = 9
	l, c := MaxAbsDiff(a, b)
	if l != 7 || c != 9 {
		t.Errorf("diff = %d,%d", l, c)
	}
}

func TestSceneKindString(t *testing.T) {
	for _, k := range allKinds() {
		if k.String() == "" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if SceneKind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func BenchmarkRenderFlyby1080(b *testing.B) {
	src := NewSource(SceneFlyby, 1920, 1088, 1)
	buf := mpeg2.NewPixelBuf(0, 0, 1920, 1088)
	b.SetBytes(1920 * 1088 * 3 / 2)
	for i := 0; i < b.N; i++ {
		src.Render(i, buf)
	}
}

func TestYCbCrToRGB(t *testing.T) {
	// Neutral grey stays grey.
	r, g, b := YCbCrToRGB(128, 128, 128)
	if r != 128 || g != 128 || b != 128 {
		t.Errorf("grey -> %d,%d,%d", r, g, b)
	}
	// Black and white extremes.
	if r, g, b = YCbCrToRGB(0, 128, 128); r != 0 || g != 0 || b != 0 {
		t.Errorf("black -> %d,%d,%d", r, g, b)
	}
	if r, g, b = YCbCrToRGB(255, 128, 128); r != 255 || g != 255 || b != 255 {
		t.Errorf("white -> %d,%d,%d", r, g, b)
	}
	// High Cr pushes red above green.
	r, g, _ = YCbCrToRGB(128, 128, 200)
	if r <= g {
		t.Errorf("red cast missing: r=%d g=%d", r, g)
	}
}

func TestWritePPM(t *testing.T) {
	buf := mpeg2.NewPixelBuf(0, 0, 32, 16)
	for i := range buf.Y {
		buf.Y[i] = 128
	}
	for i := range buf.Cb {
		buf.Cb[i] = 128
		buf.Cr[i] = 128
	}
	var out bytes.Buffer
	if err := WritePPM(&out, buf); err != nil {
		t.Fatal(err)
	}
	want := len("P6\n32 16\n255\n") + 32*16*3
	if out.Len() != want {
		t.Fatalf("PPM size %d, want %d", out.Len(), want)
	}
	if !bytes.HasPrefix(out.Bytes(), []byte("P6\n32 16\n255\n")) {
		t.Fatal("bad PPM header")
	}
	// Grey frame: every RGB byte is 128.
	body := out.Bytes()[want-32*16*3:]
	for i, v := range body {
		if v != 128 {
			t.Fatalf("pixel byte %d = %d", i, v)
		}
	}
}
