package system

import (
	"fmt"
	"testing"

	"tiledwall/internal/encoder"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/video"
)

// makeStream encodes a deterministic synthetic clip.
func makeStream(t testing.TB, kind video.SceneKind, w, h, frames int) []byte {
	t.Helper()
	cfg := encoder.Config{Width: w, Height: h, GOPSize: 6, BSpacing: 3, InitialQScale: 6}
	src := video.NewSource(kind, w, h, 11)
	e, err := encoder.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if err := e.Push(src.Frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e.Bytes()
}

func serialFrames(t testing.TB, stream []byte) []mpeg2.DecodedPicture {
	t.Helper()
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		t.Fatal(err)
	}
	pics, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	return pics
}

// TestParallelMatchesSerial is the central correctness experiment: for a
// range of 1-k-(m,n) configurations the assembled parallel output must be
// bit-exact with the serial reference decoder.
func TestParallelMatchesSerial(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 12)
	ref := serialFrames(t, stream)

	cases := []Config{
		{K: 0, M: 1, N: 1},
		{K: 0, M: 2, N: 1},
		{K: 0, M: 2, N: 2},
		{K: 1, M: 2, N: 2},
		{K: 2, M: 2, N: 2},
		{K: 3, M: 3, N: 2},
		{K: 2, M: 4, N: 2, Overlap: 16},
		{K: 4, M: 2, N: 2},
	}
	for _, cfg := range cases {
		cfg := cfg
		t.Run(fmt.Sprintf("1-%d-(%d,%d)ov%d", cfg.K, cfg.M, cfg.N, cfg.Overlap), func(t *testing.T) {
			t.Parallel()
			cfg.CollectFrames = true
			res, err := Run(stream, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Frames) != len(ref) {
				t.Fatalf("parallel produced %d frames, serial %d", len(res.Frames), len(ref))
			}
			for i := range ref {
				if !video.Equal(ref[i].Buf, res.Frames[i]) {
					l, c := video.MaxAbsDiff(ref[i].Buf, res.Frames[i])
					t.Fatalf("frame %d differs from serial decode (max luma %d, chroma %d)", i, l, c)
				}
			}
		})
	}
}

// TestParallelAllScenes runs one two-level configuration over every scene
// class, checking bit-exactness.
func TestParallelAllScenes(t *testing.T) {
	for _, kind := range []video.SceneKind{video.SceneAnimation, video.SceneFishTank, video.SceneBroadcast, video.SceneFlyby} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			stream := makeStream(t, kind, 160, 96, 9)
			ref := serialFrames(t, stream)
			res, err := Run(stream, Config{K: 2, M: 2, N: 2, Overlap: 8, CollectFrames: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Frames) != len(ref) {
				t.Fatalf("got %d frames, want %d", len(res.Frames), len(ref))
			}
			for i := range ref {
				if !video.Equal(ref[i].Buf, res.Frames[i]) {
					t.Fatalf("frame %d differs", i)
				}
			}
		})
	}
}

// TestBandwidthAccounting checks that the fabric counted traffic on every
// active link and that splitter send bandwidth exceeds its receive bandwidth
// (the SPH overhead the paper reports in §5.6).
func TestBandwidthAccounting(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 9)
	res, err := Run(stream, Config{K: 2, M: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.SplitterNodeIDs {
		st := res.NodeStats[id]
		if st.BytesRecv == 0 || st.BytesSent == 0 {
			t.Errorf("splitter node %d has zero traffic: %+v", id, st)
		}
		if st.BytesSent <= st.BytesRecv {
			t.Errorf("splitter node %d: send %d should exceed receive %d (SPH overhead)", id, st.BytesSent, st.BytesRecv)
		}
	}
	for _, id := range res.DecoderNodeIDs {
		if res.NodeStats[id].BytesRecv == 0 {
			t.Errorf("decoder node %d received nothing", id)
		}
	}
	// Conservation: every sent byte is received.
	var sent, recv int64
	for _, st := range res.NodeStats {
		sent += st.BytesSent
		recv += st.BytesRecv
	}
	if sent != recv {
		t.Errorf("fabric bytes not conserved: sent %d received %d", sent, recv)
	}
}

// TestSPHOverheadBounded: total sub-picture bytes should exceed the input
// picture bytes (headers and partial-slice padding) but only modestly —
// the paper reports about 20% at its resolutions. The overhead is a fixed
// per-piece cost, so it shrinks as frames grow; at this small test size a
// looser bound applies (EXPERIMENTS.md records the ratio at paper scale).
// Overlap replication adds more, so this test runs without overlap.
func TestSPHOverheadBounded(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 448, 256, 9)
	res, err := Run(stream, Config{K: 1, M: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Splitters[0]
	if sp.SPBytes <= sp.InputBytes {
		t.Errorf("SP bytes %d not larger than input %d", sp.SPBytes, sp.InputBytes)
	}
	if ratio := float64(sp.SPBytes) / float64(sp.InputBytes); ratio > 1.7 {
		t.Errorf("SP overhead ratio %.2f implausibly high", ratio)
	}
}

// TestOrderingAcrossSplitters floods a many-splitter configuration; the
// decoders assert strict picture ordering internally, so success here means
// the ANID redirect protocol kept pictures in order.
func TestOrderingAcrossSplitters(t *testing.T) {
	stream := makeStream(t, video.SceneAnimation, 96, 64, 18)
	for _, k := range []int{1, 2, 3, 5} {
		res, err := Run(stream, Config{K: k, M: 2, N: 1, CollectFrames: true})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Throughput.Pictures != 18 {
			t.Fatalf("k=%d: %d pictures", k, res.Throughput.Pictures)
		}
	}
}

// TestThrottledFabric exercises the bandwidth/latency simulation path.
func TestThrottledFabric(t *testing.T) {
	stream := makeStream(t, video.SceneAnimation, 96, 64, 6)
	cfg := Config{K: 1, M: 2, N: 1, CollectFrames: true}
	cfg.Fabric.BandwidthBps = 200e6
	res, err := Run(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := serialFrames(t, stream)
	for i := range ref {
		if !video.Equal(ref[i].Buf, res.Frames[i]) {
			t.Fatalf("frame %d differs under throttling", i)
		}
	}
}

func TestNumNodes(t *testing.T) {
	if (Config{K: 4, M: 4, N: 4}).NumNodes() != 21 {
		t.Error("1-4-(4,4) should use 21 PCs as in the paper's abstract")
	}
	if (Config{K: 0, M: 2, N: 2}).NumNodes() != 5 {
		t.Error("1-(2,2) should use 5 PCs")
	}
}

// TestDynamicBalancing: with credit-based splitter selection (the paper's
// §6 future work) the output must remain bit-exact and in order.
func TestDynamicBalancing(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 18)
	ref := serialFrames(t, stream)
	for _, k := range []int{2, 3, 4} {
		res, err := Run(stream, Config{K: k, M: 2, N: 2, DynamicBalance: true, CollectFrames: true})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(res.Frames) != len(ref) {
			t.Fatalf("k=%d: %d frames", k, len(res.Frames))
		}
		for i := range ref {
			if !video.Equal(ref[i].Buf, res.Frames[i]) {
				t.Fatalf("k=%d frame %d differs under dynamic balancing", k, i)
			}
		}
		// Work must actually be spread across splitters.
		for i, sp := range res.Splitters {
			if sp.Pictures == 0 {
				t.Errorf("k=%d: splitter %d got no pictures", k, i)
			}
		}
	}
}

// TestUnbatchedExchangeBitExact: the per-macroblock ablation path must
// produce identical output.
func TestUnbatchedExchangeBitExact(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 9)
	ref := serialFrames(t, stream)
	res, err := Run(stream, Config{K: 2, M: 2, N: 2, UnbatchedExchange: true, CollectFrames: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !video.Equal(ref[i].Buf, res.Frames[i]) {
			t.Fatalf("frame %d differs with unbatched exchange", i)
		}
	}
}
