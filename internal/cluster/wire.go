package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire format of the TCP transport (DESIGN.md §12). Every frame is
//
//	u32  frameLen   big-endian; length of everything after this field
//	u8   frameType  hello | accept | message | abort
//	...  body       type-specific, frameLen-1 bytes
//
// Message bodies carry the full cluster.Message header followed by the
// payload verbatim:
//
//	u8   kind      u8   flags
//	u16  from      u16  to
//	u32  session
//	i32  seq       i32  tag
//	i64  xseq
//	...  payload   frameLen - 1 - 26 bytes
//
// The destination sits at a fixed offset so the hub can route a frame
// without decoding the payload. Hello/accept implement the versioned
// handshake; abort frames propagate a transport abort (class + message)
// across process boundaries so every node observes the same cause.

const (
	// wireMagic opens every hello frame ("TWL1"); a dialer that is not a
	// tiledwall node fails the handshake instead of corrupting the wall.
	wireMagic uint32 = 0x54574c31
	// WireVersion is the protocol revision exchanged in the handshake.
	// Mismatched peers are rejected with ErrHandshake.
	WireVersion byte = 1

	frameHello   byte = 0x01
	frameAccept  byte = 0x02
	frameMessage byte = 0x03
	frameAbort   byte = 0x04

	// frameLenBytes is the size of the length prefix.
	frameLenBytes = 4
	// msgHeaderWireBytes is the fixed Message header on the wire.
	msgHeaderWireBytes = 26
	// helloBodyBytes: magic u32, version u8, node u16, numNodes u16,
	// k/m/n/overlap u16 each.
	helloBodyBytes = 4 + 1 + 2 + 2 + 8
	// acceptBodyBytes: version u8, numNodes u16.
	acceptBodyBytes = 1 + 2

	// MaxWirePayload caps a message payload on the wire. A 4K-wall
	// sub-picture is a few megabytes; 64 MiB leaves an order of magnitude of
	// headroom while bounding what a hostile length prefix can make the
	// receiver allocate.
	MaxWirePayload = 1 << 26
	// maxAbortMessage caps the abort cause string.
	maxAbortMessage = 4096
	// maxFrameBody bounds frameLen for every frame type.
	maxFrameBody = 1 + msgHeaderWireBytes + MaxWirePayload

	// Offsets of the routing fields within a raw frame (including the length
	// prefix), used by the hub to route without decoding.
	rawTypeOff = frameLenBytes
	rawDestOff = frameLenBytes + 1 + 4 // type, kind, flags, from
)

// Typed wire errors. Every decode failure wraps exactly one of these, so
// callers can classify with errors.Is without string matching.
var (
	// ErrFrameCorrupt marks a structurally invalid frame: unknown type,
	// impossible field value, or a body shorter than its own header claims.
	ErrFrameCorrupt = errors.New("cluster: corrupt wire frame")
	// ErrFrameTooLarge marks a length prefix beyond the protocol bound; the
	// receiver rejects it before allocating.
	ErrFrameTooLarge = errors.New("cluster: wire frame exceeds size bound")
	// ErrFrameTruncated marks a frame cut short by the end of input. On a
	// live link it is only an error if the connection closes mid-frame.
	ErrFrameTruncated = errors.New("cluster: truncated wire frame")
	// ErrHandshake marks a failed hello/accept exchange: bad magic, version
	// or geometry mismatch, or a peer that sent data before handshaking.
	ErrHandshake = errors.New("cluster: transport handshake failed")
	// ErrLinkLost marks a TCP connection that died mid-stream (reset,
	// timeout, or close with traffic pending).
	ErrLinkLost = errors.New("cluster: transport link lost")
)

// Hello is the client half of the handshake: the dialing node announces who
// it is and which wall geometry it was configured for, so mismatched
// processes fail fast instead of deadlocking mid-stream.
type Hello struct {
	Version  byte
	Node     int
	NumNodes int
	Grid     Grid
}

// Grid is the wall shape carried in the handshake: every process of a
// multi-process wall must agree on it.
type Grid struct {
	K, M, N, Overlap int
}

// Accept is the hub half of the handshake.
type Accept struct {
	Version  byte
	NumNodes int
}

// Frame is one decoded wire frame. Exactly one of Msg, Hello, Accept and
// Abort is set, per Type.
type Frame struct {
	Type   byte
	Msg    *Message
	Hello  *Hello
	Accept *Accept
	// Abort carries the remote abort cause, reconstructed so errors.Is
	// matches the same sentinel (ErrStalled, ErrLinkLost, ...) that the
	// aborting process observed.
	Abort error
}

// Abort cause classes carried in abort frames. The class byte survives the
// wire even though the error value itself cannot.
const (
	abortClassOther byte = iota
	abortClassStalled
	abortClassLinkLost
	abortClassHandshake
)

func abortClassOf(err error) byte {
	switch {
	case errors.Is(err, ErrStalled):
		return abortClassStalled
	case errors.Is(err, ErrLinkLost):
		return abortClassLinkLost
	case errors.Is(err, ErrHandshake):
		return abortClassHandshake
	}
	return abortClassOther
}

// remoteAbortError is an abort cause received over the wire: the original
// error string verbatim, matching the original sentinel via errors.Is.
type remoteAbortError struct {
	class byte
	msg   string
}

func (e *remoteAbortError) Error() string { return e.msg }

func (e *remoteAbortError) Is(target error) bool {
	switch e.class {
	case abortClassStalled:
		return target == ErrStalled
	case abortClassLinkLost:
		return target == ErrLinkLost
	case abortClassHandshake:
		return target == ErrHandshake
	}
	return false
}

// AppendHelloFrame appends a hello frame to dst.
func AppendHelloFrame(dst []byte, h Hello) []byte {
	dst = binary.BigEndian.AppendUint32(dst, 1+helloBodyBytes)
	dst = append(dst, frameHello)
	dst = binary.BigEndian.AppendUint32(dst, wireMagic)
	dst = append(dst, h.Version)
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.Node))
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.NumNodes))
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.Grid.K))
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.Grid.M))
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.Grid.N))
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.Grid.Overlap))
	return dst
}

// AppendAcceptFrame appends an accept frame to dst.
func AppendAcceptFrame(dst []byte, a Accept) []byte {
	dst = binary.BigEndian.AppendUint32(dst, 1+acceptBodyBytes)
	dst = append(dst, frameAccept)
	dst = append(dst, a.Version)
	dst = binary.BigEndian.AppendUint16(dst, uint16(a.NumNodes))
	return dst
}

// AppendAbortFrame appends an abort frame carrying cause to dst.
func AppendAbortFrame(dst []byte, cause error) []byte {
	msg := "unknown"
	if cause != nil {
		msg = cause.Error()
	}
	if len(msg) > maxAbortMessage {
		msg = msg[:maxAbortMessage]
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+1+len(msg)))
	dst = append(dst, frameAbort, abortClassOf(cause))
	return append(dst, msg...)
}

// AppendMessageFrame appends a message frame to dst. Field ranges are
// checked — node ids and sessions must fit u16/u32, the payload must fit
// MaxWirePayload — because a message that cannot round-trip must fail at the
// sender, not corrupt the peer.
func AppendMessageFrame(dst []byte, m *Message) ([]byte, error) {
	switch {
	case m.Kind >= numKinds:
		return dst, fmt.Errorf("%w: unknown kind %d", ErrFrameCorrupt, m.Kind)
	case m.From < 0 || m.From > 0xffff || m.To < 0 || m.To > 0xffff:
		return dst, fmt.Errorf("%w: node id out of range (%d -> %d)", ErrFrameCorrupt, m.From, m.To)
	case m.Session < 0 || int64(m.Session) > 0xffffffff:
		return dst, fmt.Errorf("%w: session %d out of range", ErrFrameCorrupt, m.Session)
	case int64(m.Seq) < -(1<<31) || int64(m.Seq) > 1<<31-1:
		return dst, fmt.Errorf("%w: seq %d out of range", ErrFrameCorrupt, m.Seq)
	case int64(m.Tag) < -(1<<31) || int64(m.Tag) > 1<<31-1:
		return dst, fmt.Errorf("%w: tag %d out of range", ErrFrameCorrupt, m.Tag)
	case len(m.Payload) > MaxWirePayload:
		return dst, fmt.Errorf("%w: payload %d bytes", ErrFrameTooLarge, len(m.Payload))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+msgHeaderWireBytes+len(m.Payload)))
	dst = append(dst, frameMessage, byte(m.Kind), m.Flags)
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.From))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.To))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Session))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.Seq)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.Tag)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.XSeq))
	return append(dst, m.Payload...), nil
}

// parseMessageBody decodes the fixed header and payload of a message frame.
// The payload slice is drawn from the slab pool (exact-class capacity), so
// the final consumer can PutSlab it — the receive path stays zero-alloc in
// steady state.
func parseMessageBody(body []byte) (*Message, error) {
	if len(body) < msgHeaderWireBytes {
		return nil, fmt.Errorf("%w: message body %d bytes", ErrFrameCorrupt, len(body))
	}
	kind := MsgKind(body[0])
	if kind >= numKinds {
		return nil, fmt.Errorf("%w: unknown message kind %d", ErrFrameCorrupt, kind)
	}
	m := &Message{
		Kind:    kind,
		Flags:   body[1],
		From:    int(binary.BigEndian.Uint16(body[2:4])),
		To:      int(binary.BigEndian.Uint16(body[4:6])),
		Session: int(binary.BigEndian.Uint32(body[6:10])),
		Seq:     int(int32(binary.BigEndian.Uint32(body[10:14]))),
		Tag:     int(int32(binary.BigEndian.Uint32(body[14:18]))),
		XSeq:    int64(binary.BigEndian.Uint64(body[18:26])),
	}
	if payload := body[msgHeaderWireBytes:]; len(payload) > 0 {
		m.Payload = append(GetSlab(len(payload)), payload...)
	}
	return m, nil
}

func parseHelloBody(body []byte) (*Hello, error) {
	if len(body) != helloBodyBytes {
		return nil, fmt.Errorf("%w: hello body %d bytes", ErrFrameCorrupt, len(body))
	}
	if binary.BigEndian.Uint32(body) != wireMagic {
		return nil, fmt.Errorf("%w: bad hello magic %#x", ErrHandshake, binary.BigEndian.Uint32(body))
	}
	// An unexpected version is reported by the handshake policy, not the
	// decoder: the frame itself is well-formed.
	return &Hello{
		Version:  body[4],
		Node:     int(binary.BigEndian.Uint16(body[5:7])),
		NumNodes: int(binary.BigEndian.Uint16(body[7:9])),
		Grid: Grid{
			K:       int(binary.BigEndian.Uint16(body[9:11])),
			M:       int(binary.BigEndian.Uint16(body[11:13])),
			N:       int(binary.BigEndian.Uint16(body[13:15])),
			Overlap: int(binary.BigEndian.Uint16(body[15:17])),
		},
	}, nil
}

func parseAcceptBody(body []byte) (*Accept, error) {
	if len(body) != acceptBodyBytes {
		return nil, fmt.Errorf("%w: accept body %d bytes", ErrFrameCorrupt, len(body))
	}
	return &Accept{Version: body[0], NumNodes: int(binary.BigEndian.Uint16(body[1:3]))}, nil
}

func parseAbortBody(body []byte) (error, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("%w: empty abort body", ErrFrameCorrupt)
	}
	if len(body) > 1+maxAbortMessage {
		return nil, fmt.Errorf("%w: abort message %d bytes", ErrFrameTooLarge, len(body)-1)
	}
	return &remoteAbortError{class: body[0], msg: string(body[1:])}, nil
}

func decodeFrameBody(typ byte, body []byte) (*Frame, error) {
	switch typ {
	case frameMessage:
		m, err := parseMessageBody(body)
		if err != nil {
			return nil, err
		}
		return &Frame{Type: typ, Msg: m}, nil
	case frameHello:
		h, err := parseHelloBody(body)
		if err != nil {
			return nil, err
		}
		return &Frame{Type: typ, Hello: h}, nil
	case frameAccept:
		a, err := parseAcceptBody(body)
		if err != nil {
			return nil, err
		}
		return &Frame{Type: typ, Accept: a}, nil
	case frameAbort:
		cause, err := parseAbortBody(body)
		if err != nil {
			return nil, err
		}
		return &Frame{Type: typ, Abort: cause}, nil
	}
	return nil, fmt.Errorf("%w: unknown frame type %#x", ErrFrameCorrupt, typ)
}

// checkFrameLen validates a length prefix before anything is allocated.
func checkFrameLen(n uint32) error {
	if n < 1 {
		return fmt.Errorf("%w: zero-length frame", ErrFrameCorrupt)
	}
	if n > maxFrameBody {
		return fmt.Errorf("%w: frame body %d bytes", ErrFrameTooLarge, n)
	}
	return nil
}

// DecodeFrame decodes one frame from the front of b, returning the frame and
// the number of bytes consumed. It is the buffer-oriented twin of the
// streaming reader — the fuzz target drives it — and never allocates more
// than the validated frame length.
func DecodeFrame(b []byte) (*Frame, int, error) {
	if len(b) < frameLenBytes {
		return nil, 0, fmt.Errorf("%w: %d bytes of length prefix", ErrFrameTruncated, len(b))
	}
	n := binary.BigEndian.Uint32(b)
	if err := checkFrameLen(n); err != nil {
		return nil, 0, err
	}
	if uint32(len(b)-frameLenBytes) < n {
		return nil, 0, fmt.Errorf("%w: frame wants %d body bytes, have %d", ErrFrameTruncated, n, len(b)-frameLenBytes)
	}
	body := b[frameLenBytes : frameLenBytes+int(n)]
	fr, err := decodeFrameBody(body[0], body[1:])
	if err != nil {
		return nil, 0, err
	}
	return fr, frameLenBytes + int(n), nil
}

// readFrame reads one frame from a stream. Message payloads land in their
// own slab-pool slice; every other body goes through a small scratch buffer.
// io.EOF is returned verbatim when the stream ends cleanly between frames,
// so callers can tell an orderly close from a mid-frame cut (ErrFrameTruncated).
func readFrame(r io.Reader) (*Frame, error) {
	var hdr [frameLenBytes + 1 + msgHeaderWireBytes]byte
	if _, err := io.ReadFull(r, hdr[:frameLenBytes]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream ended inside length prefix", ErrFrameTruncated)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:frameLenBytes])
	if err := checkFrameLen(n); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[frameLenBytes:frameLenBytes+1]); err != nil {
		return nil, truncOrIO(err)
	}
	typ := hdr[frameLenBytes]
	if typ == frameMessage && n >= 1+msgHeaderWireBytes {
		// Fast path: header into the scratch array, payload straight into a
		// slab of its own class so the consumer's PutSlab recycles it.
		if _, err := io.ReadFull(r, hdr[frameLenBytes+1:]); err != nil {
			return nil, truncOrIO(err)
		}
		payloadLen := int(n) - 1 - msgHeaderWireBytes
		var payload []byte
		if payloadLen > 0 {
			payload = GetSlab(payloadLen)[:payloadLen]
			if _, err := io.ReadFull(r, payload); err != nil {
				PutSlab(payload)
				return nil, truncOrIO(err)
			}
		}
		m, err := parseMessageBody(hdr[frameLenBytes+1:]) // header only; payload attached below
		if err != nil {
			PutSlab(payload)
			return nil, err
		}
		m.Payload = payload
		return &Frame{Type: frameMessage, Msg: m}, nil
	}
	body := make([]byte, int(n)-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, truncOrIO(err)
	}
	return decodeFrameBody(typ, body)
}

func truncOrIO(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: stream ended mid-frame", ErrFrameTruncated)
	}
	return err
}
