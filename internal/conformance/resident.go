package conformance

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/service"
	"tiledwall/internal/system"
	"tiledwall/internal/wall"
)

// Resident chaos extends the chaos oracle from the one-shot pipeline to the
// resident service: ONE warm wall, several concurrent ragged-chunk sessions,
// and seeded faults — decoder/splitter kills, and on the TCP transport hard
// link resets (RST) mid-session. The contract:
//
//   - every session returns (no hang): success, or a typed error
//     (ErrSessionFailed / ErrSessionDisrupted / a stream syntax error);
//   - a fault never aborts the wall or a sibling session;
//   - successful sessions emit every picture index exactly once per tile;
//   - sessions whose recovery snapshot is Clean are byte-identical with the
//     serial reference, faults elsewhere on the wall notwithstanding.

// ResidentChaosOptions parameterises one resident chaos soak.
type ResidentChaosOptions struct {
	// Seed derives every per-configuration random stream (kill sites, link
	// failure schedule), making a soak reproducible from one number.
	Seed int64
	// Transport selects "fabric" or "tcp" (the recoverable socket transport).
	Transport string
	// Sessions is the number of concurrent ragged-chunk sessions per wall.
	Sessions int
	// KillDecoder / KillSplitter arm one seeded node crash per wall.
	KillDecoder  bool
	KillSplitter bool
	// LinkFailures injects this many seeded hard connection resets
	// (TCPTransport.InjectLinkFailure) while sessions are in flight. TCP
	// only; ignored on the fabric.
	LinkFailures int
	// StallTimeout bounds a hung run (watchdog backstop); 0 means 30s.
	StallTimeout time.Duration
}

// ResidentSessionOutcome is one session's verdict.
type ResidentSessionOutcome struct {
	Name     string
	Err      error
	Recovery metrics.RecoverySnapshot
	// ExactlyOnceViolation describes the first emission-log violation on a
	// successful session, or "".
	ExactlyOnceViolation string
	// Divergence is the serial diff, populated only for Clean sessions.
	Divergence *Divergence
}

// ResidentChaosResult is the outcome of one wall configuration under chaos.
type ResidentChaosResult struct {
	Config   system.Config
	Sessions []ResidentSessionOutcome
	// WallRecovery is the wall-level intervention snapshot (restarts and
	// replays are charged to the wall, not a session).
	WallRecovery metrics.RecoverySnapshot
	// Health is the wall state observed after all sessions closed.
	Health service.Health
	// CloseErr is the wall teardown error (a fault must not poison it).
	CloseErr error
	// KilledTile, KilledSplitter and KilledAt record armed kills (-1 = none).
	KilledTile, KilledSplitter, KilledAt int
}

// Name renders the configuration in the paper's notation.
func (r ResidentChaosResult) Name() string {
	return fmt.Sprintf("1-%d-(%d,%d)ov%d/%s", r.Config.K, r.Config.M, r.Config.N,
		r.Config.Overlap, r.Config.Transport)
}

// TypedSessionError reports whether err is one of the bounded failure modes a
// chaos session is allowed to end with.
func TypedSessionError(err error) bool {
	return errors.Is(err, service.ErrSessionFailed) ||
		errors.Is(err, service.ErrSessionDisrupted) ||
		errors.Is(err, mpeg2.ErrCorruptStream) ||
		errors.Is(err, mpeg2.ErrUnsupported)
}

// RunResidentChaos soaks every configuration on one resident wall each under
// seeded faults and reports per-session verdicts. The serial decode error, if
// any, is returned directly.
func RunResidentChaos(stream []byte, configs []system.Config, opt ResidentChaosOptions) ([]ResidentChaosResult, error) {
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		return nil, fmt.Errorf("conformance: serial parse: %w", err)
	}
	ref, err := dec.DecodeAll()
	if err != nil {
		return nil, fmt.Errorf("conformance: serial decode: %w", err)
	}
	picW, picH := dec.Seq().MBWidth()*16, dec.Seq().MBHeight()*16
	if opt.Sessions <= 0 {
		opt.Sessions = 3
	}
	stall := opt.StallTimeout
	if stall <= 0 {
		stall = 30 * time.Second
	}
	out := make([]ResidentChaosResult, 0, len(configs))
	for ci, cfg := range configs {
		rng := rand.New(rand.NewSource(opt.Seed*1000003 + int64(ci)))
		cfg.CollectFrames = true
		cfg.Transport = opt.Transport
		cfg.Recovery = chaosRecoveryConfig()
		cfg.Fabric.StallTimeout = stall
		if cfg.MaxSessions < opt.Sessions {
			cfg.MaxSessions = opt.Sessions
		}
		res := ResidentChaosResult{KilledTile: -1, KilledSplitter: -1, KilledAt: -1}
		if (opt.KillDecoder || opt.KillSplitter) && len(ref) > 2 {
			res.KilledAt = 1 + rng.Intn(len(ref)-2)
			cfg.Chaos.KillAtPicture = res.KilledAt
			if opt.KillDecoder {
				res.KilledTile = rng.Intn(cfg.M * cfg.N)
				cfg.Chaos.KillDecoder = true
				cfg.Chaos.DecoderTile = res.KilledTile
			}
			if opt.KillSplitter && cfg.K > 0 {
				res.KilledSplitter = rng.Intn(cfg.K)
				cfg.Chaos.KillSplitter = true
				cfg.Chaos.SplitterIdx = res.KilledSplitter
			}
		}
		res.Config = cfg
		w, err := system.NewResidentWall(cfg)
		if err != nil {
			res.Sessions = []ResidentSessionOutcome{{Name: "wall", Err: err}}
			out = append(out, res)
			continue
		}

		// Link failure schedule, computed up front so the rng stays
		// deterministic: each entry resets one decoder node's socket after a
		// seeded delay, while sessions are mid-flight.
		type linkHit struct {
			after time.Duration
			node  int
		}
		var hits []linkHit
		if opt.Transport == "tcp" && opt.LinkFailures > 0 {
			for j := 0; j < opt.LinkFailures; j++ {
				hits = append(hits, linkHit{
					after: time.Duration(20+rng.Intn(120)) * time.Millisecond,
					node:  1 + cfg.K + rng.Intn(cfg.M*cfg.N),
				})
			}
		}
		var wg sync.WaitGroup
		if len(hits) > 0 {
			if tp, ok := w.Service().Transport().(*cluster.TCPTransport); ok {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, h := range hits {
						time.Sleep(h.after)
						tp.InjectLinkFailure(h.node)
					}
				}()
			}
		}

		outcomes := make([]ResidentSessionOutcome, opt.Sessions)
		for i := 0; i < opt.Sessions; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				outcomes[i].Name = fmt.Sprintf("chaos-%d", i)
				sres, err := playChunkedResult(w, stream, i)
				if err != nil {
					outcomes[i].Err = err
					return
				}
				outcomes[i].Recovery = sres.Recovery
				outcomes[i].ExactlyOnceViolation = emissionViolation(sres.TileEmissions, len(ref))
				if sres.Recovery.Clean() {
					geo, gerr := wall.NewGeometry(picW, picH, cfg.M, cfg.N, cfg.Overlap)
					if gerr != nil {
						geo = nil
					}
					outcomes[i].Divergence = Diff(ref, sres.Frames, geo)
				}
			}()
		}
		wg.Wait()
		res.Sessions = outcomes
		res.WallRecovery = w.Service().Recovery()
		res.Health = w.Health()
		res.CloseErr = w.Close()
		out = append(out, res)
	}
	return out, nil
}

// ResidentChaosConfigs is the mixed-geometry sweep RunResidentChaos soaks:
// hierarchical walls with one and two splitters plus the one-level system, so
// root replay, splitter respawn and the combined-root path are all exercised.
// Pooling is armed on both the deep hierarchy and the one-level wall so the
// slab-refcount composition with recovery (DESIGN.md §9) soaks under kills on
// every topology shape.
func ResidentChaosConfigs() []system.Config {
	return []system.Config{
		{K: 2, M: 2, N: 2, Pooled: true},
		{K: 1, M: 2, N: 1, Overlap: 8},
		{K: 0, M: 2, N: 2, Pooled: true},
	}
}

// recoveryForIsolation builds a recovery-enabled wall config for the failure
// isolation tests (no chaos plan: the fault is the stream itself).
func recoveryForIsolation(base system.Config, transport string, sessions int) system.Config {
	base.CollectFrames = true
	base.Transport = transport
	base.Recovery = chaosRecoveryConfig()
	base.Fabric.StallTimeout = 30 * time.Second
	if base.MaxSessions < sessions {
		base.MaxSessions = sessions
	}
	return base
}

// RunCorruptIsolation plays one corrupt stream concurrently with good
// sessions on a recovery-enabled resident wall, and reports (corruptErr,
// per-good-session divergences, wall close error). The corrupt session must
// fail typed — or at worst degrade — without touching its siblings.
func RunCorruptIsolation(stream []byte, base system.Config, transport string, kind CorruptionKind, seed int64) (corruptErr error, goodErrs []error, divs []*Divergence, closeErr error, err error) {
	dec, derr := mpeg2.NewDecoder(stream)
	if derr != nil {
		return nil, nil, nil, nil, fmt.Errorf("conformance: serial parse: %w", derr)
	}
	ref, derr := dec.DecodeAll()
	if derr != nil {
		return nil, nil, nil, nil, fmt.Errorf("conformance: serial decode: %w", derr)
	}
	picW, picH := dec.Seq().MBWidth()*16, dec.Seq().MBHeight()*16
	const good = 2
	cfg := recoveryForIsolation(base, transport, good+1)
	w, werr := system.NewResidentWall(cfg)
	if werr != nil {
		return nil, nil, nil, nil, werr
	}
	bad := Corrupt(stream, kind, seed)
	goodErrs = make([]error, good)
	divs = make([]*Divergence, good)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, oerr := w.Open("corrupt")
		if oerr != nil {
			corruptErr = oerr
			return
		}
		if ferr := sess.Feed(bad); ferr != nil {
			sess.Close()
			corruptErr = ferr
			return
		}
		_, corruptErr = sess.Close()
	}()
	for i := 0; i < good; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sres, serr := playChunkedResult(w, stream, i)
			if serr != nil {
				goodErrs[i] = serr
				return
			}
			if !sres.Recovery.Clean() {
				goodErrs[i] = fmt.Errorf("good session degraded by sibling corruption: %+v", sres.Recovery)
				return
			}
			geo, gerr := wall.NewGeometry(picW, picH, cfg.M, cfg.N, cfg.Overlap)
			if gerr != nil {
				geo = nil
			}
			divs[i] = Diff(ref, sres.Frames, geo)
		}()
	}
	wg.Wait()
	closeErr = w.Close()
	return corruptErr, goodErrs, divs, closeErr, nil
}
