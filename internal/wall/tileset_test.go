package wall

import "testing"

func TestTileSetZeroValueIsFull(t *testing.T) {
	var ts TileSet
	if !ts.Full() || !ts.Has(0) || !ts.Has(23) || !ts.All(24) || ts.Empty() {
		t.Fatalf("zero value must be the full subscription: %v", ts)
	}
	if ts.Count() != -1 {
		t.Fatalf("zero-value Count = %d, want -1", ts.Count())
	}
	if got := ts.Marshal(nil); len(got) != 0 {
		t.Fatalf("zero value marshals to %d bytes, want 0", len(got))
	}
}

func TestTileSetRoundTrip(t *testing.T) {
	ts := NewTileSet(24)
	for _, x := range []int{0, 7, 8, 23} {
		ts.Add(x)
	}
	if ts.Count() != 4 || ts.Full() || ts.All(24) || ts.Empty() {
		t.Fatalf("bad set state: count=%d", ts.Count())
	}
	if ts.Has(-1) || ts.Has(24) || ts.Has(1) {
		t.Fatal("Has out of set")
	}
	back, err := UnmarshalTileSet(ts.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 24; x++ {
		if back.Has(x) != ts.Has(x) {
			t.Fatalf("tile %d lost in round trip", x)
		}
	}
}

func TestTileSetAllAndRect(t *testing.T) {
	ts, err := RectTileSet(6, 4, 0, 0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.All(24) || ts.Count() != 24 {
		t.Fatalf("full rect: count=%d", ts.Count())
	}
	win, err := RectTileSet(6, 4, 1, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if win.Count() != 4 || !win.Has(1*6+1) || !win.Has(2*6+2) || win.Has(0) {
		t.Fatalf("2x2 window wrong: %v", win)
	}
	if _, err := RectTileSet(6, 4, 0, 0, 4, 0); err == nil {
		t.Fatal("out-of-grid rect accepted")
	}
}

func TestTileSetUnmarshalHostile(t *testing.T) {
	// Truncated and oversized bodies, and bits beyond the tile count, must
	// all fail typed instead of producing a lying set.
	for _, b := range [][]byte{{1}, {24, 0, 1, 2, 3}, {1, 0, 0xff, 0, 0, 0, 0, 0, 0, 0}} {
		if _, err := UnmarshalTileSet(b); err == nil {
			t.Fatalf("hostile tileset %v accepted", b)
		}
	}
}
