package mpeg2

import (
	"math/rand"
	"testing"
)

// Kernel benchmarks for the hot-path overhaul: the three IDCT coefficient
// classes the fast dispatch distinguishes, and the four half-pel motion
// compensation phases. Run with the rest of the continuous-benchmark layer:
//
//	go test -bench 'IDCT|MotionComp' -benchmem ./internal/mpeg2/

func BenchmarkIDCTDCOnly(b *testing.B) {
	var blk [64]int32
	blk[0] = 123
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tmp := blk
		IDCTFast(&tmp, 0)
	}
}

func BenchmarkIDCTSparse(b *testing.B) {
	// Coefficients confined to the top four rows: the texture class low-bitrate
	// inter blocks land in, served by the folded-column fast path.
	rng := rand.New(rand.NewSource(2))
	var blk [64]int32
	for i := 0; i < 32; i++ {
		blk[i] = int32(rng.Intn(512) - 256)
	}
	mask := ACMaskOf(&blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tmp := blk
		IDCTFast(&tmp, mask)
	}
}

func BenchmarkIDCTFull(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var blk [64]int32
	for i := range blk {
		blk[i] = int32(rng.Intn(512) - 256)
	}
	mask := ACMaskOf(&blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tmp := blk
		IDCTFast(&tmp, mask)
	}
}

// benchPlane builds a reference plane and a destination for one 16x16 luma
// prediction fetch.
func benchPlane() (src []byte, stride int, dst []byte) {
	stride = 720
	src = make([]byte, stride*64)
	rng := rand.New(rand.NewSource(4))
	for i := range src {
		src[i] = byte(rng.Intn(256))
	}
	return src, stride, make([]byte, 16*16)
}

func benchMotionComp(b *testing.B, hx, hy int) {
	src, stride, dst := benchPlane()
	b.ReportAllocs()
	b.SetBytes(16 * 16)
	for i := 0; i < b.N; i++ {
		samplePlane(dst, 16, 16, src, stride, stride*4+8, hx, hy)
	}
}

func BenchmarkMotionCompCopy(b *testing.B) { benchMotionComp(b, 0, 0) }
func BenchmarkMotionCompH(b *testing.B)    { benchMotionComp(b, 1, 0) }
func BenchmarkMotionCompV(b *testing.B)    { benchMotionComp(b, 0, 1) }
func BenchmarkMotionCompHV(b *testing.B)   { benchMotionComp(b, 1, 1) }

// BenchmarkMotionCompHVRef measures the generic per-pixel kernel the
// specialised ones are diffed against, so the speedup stays visible in the
// benchmark log.
func BenchmarkMotionCompHVRef(b *testing.B) {
	src, stride, dst := benchPlane()
	b.ReportAllocs()
	b.SetBytes(16 * 16)
	for i := 0; i < b.N; i++ {
		samplePlaneRef(dst, 16, 16, src, stride, stride*4+8, 1, 1)
	}
}
