package experiments

import (
	"fmt"
	"io"

	"tiledwall/internal/conformance"
	"tiledwall/internal/metrics"
)

// ChaosRow is one configuration's outcome in the chaos sweep: the recovery
// breakdown (DESIGN.md §6) plus the two guarantees the sweep checks — every
// picture emitted exactly once, and bit-exactness whenever no restart or
// concealment was needed.
type ChaosRow struct {
	Name        string
	Recovery    metrics.RecoverySnapshot
	ExactlyOnce bool
	Clean       bool
	BitExact    bool // meaningful only when Clean
	Err         error
	KilledTile  int
	KilledAt    int
}

// Chaos runs the conformance chaos sweep on a catalogue stream: the default
// configuration matrix with the recovery layer armed and (optionally) one
// seeded decoder kill per run, reporting the per-configuration recovery
// interventions.
func Chaos(streamID int, kill, pooled bool, o Options) ([]ChaosRow, error) {
	o.defaults()
	data, _, err := Stream(streamID, o, false)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(o.Log, "chaos: stream %d, kill=%v, pooled=%v, seed %d\n", streamID, kill, pooled, o.Seed)
	results, err := conformance.RunChaosMatrix(data, conformance.DefaultMatrix(), conformance.ChaosOptions{
		Seed:   o.Seed,
		Kill:   kill,
		Pooled: pooled,
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ChaosRow, 0, len(results))
	for _, r := range results {
		rows = append(rows, ChaosRow{
			Name:        r.Name(),
			Recovery:    r.Recovery,
			ExactlyOnce: r.Err == nil && r.ExactlyOnceViolation == "",
			Clean:       r.Recovery.Clean(),
			BitExact:    r.Recovery.Clean() && r.Divergence == nil,
			Err:         r.Err,
			KilledTile:  r.KilledTile,
			KilledAt:    r.KilledAt,
		})
	}
	return rows, nil
}

// PrintChaos renders the sweep with one line per configuration.
func PrintChaos(w io.Writer, label string, rows []ChaosRow) {
	fmt.Fprintf(w, "Chaos sweep — %s\n", label)
	fmt.Fprintf(w, "%-14s %-6s %-7s %-9s %s\n", "config", "1x", "clean", "bitexact", "recovery breakdown")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(w, "%-14s FAILED: %v\n", r.Name, r.Err)
			continue
		}
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		bitExact := "-"
		if r.Clean {
			bitExact = mark(r.BitExact)
		}
		fmt.Fprintf(w, "%-14s %-6s %-7s %-9s %s\n", r.Name, mark(r.ExactlyOnce), mark(r.Clean), bitExact, r.Recovery)
		if r.KilledTile >= 0 {
			fmt.Fprintf(w, "%-14s   (decoder kill injected: tile %d at picture %d)\n", "", r.KilledTile, r.KilledAt)
		}
	}
}
