package bits_test

import (
	"errors"
	"testing"

	"tiledwall/internal/bits"
)

// FuzzReader drives the bit reader with an op-coded program over arbitrary
// data. Input layout: first byte = op count hint, then alternating op bytes
// interpreted against the remaining bytes as reader data. Invariants: the
// reader never panics, the position never moves backwards except via SeekBit,
// the position never passes the end while err is nil, Peek never moves the
// position, and a hostile read width sets ErrReadSize instead of corrupting
// state.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add([]byte{0xff, 0x00, 0x00, 0x01, 0xb3, 0x12, 0x00, 0xc0, 0x30, 0x20})
	f.Add([]byte{0x40, 0x21, 0x3f, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0x80, 0x7f})
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) < 2 {
			return
		}
		nops := int(in[0])%32 + 1
		if len(in) < 1+nops {
			return
		}
		ops := in[1 : 1+nops]
		data := in[1+nops:]
		r := bits.NewReader(data)
		for _, op := range ops {
			before := r.BitPos()
			wasErr := r.Err() != nil
			switch op % 6 {
			case 0:
				n := int(op>>3)%40 - 2 // includes hostile widths: -2..37
				r.Read(n)
			case 1:
				n := int(op>>3) % 40
				p1 := r.BitPos()
				r.Peek(n)
				if r.BitPos() != p1 {
					t.Fatalf("Peek moved position %d -> %d", p1, r.BitPos())
				}
			case 2:
				n := int(op>>3)%70 - 4 // includes negative skips
				r.Skip(n)
			case 3:
				r.AlignByte()
			case 4:
				r.ReadBit()
			case 5:
				pos := int(op>>3) * r.Len() / 32
				r.SeekBit(pos)
				continue // SeekBit may legitimately move backwards
			}
			if r.Err() == nil {
				if r.BitPos() < before {
					t.Fatalf("op %#x moved position backwards %d -> %d", op, before, r.BitPos())
				}
				if r.BitPos() > r.Len() {
					t.Fatalf("op %#x advanced past end: pos %d, len %d", op, r.BitPos(), r.Len())
				}
			}
			if wasErr && r.Err() == nil {
				t.Fatalf("op %#x cleared a sticky error", op)
			}
		}
		if err := r.Err(); err != nil {
			if !errors.Is(err, bits.ErrUnderflow) && !errors.Is(err, bits.ErrReadSize) {
				t.Fatalf("unexpected reader error type: %v", err)
			}
		}
	})
}

// FuzzNextStartCode checks the start-code scanner: every reported offset must
// point at a genuine 00 00 01 prefix with a readable code byte, scanning must
// terminate, and StartCodeAt must agree with the raw bytes.
func FuzzNextStartCode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x01, 0xb3})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x01, 0xb8, 0x00, 0x00, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		seen := 0
		for off := bits.NextStartCode(data, 0); off >= 0; off = bits.NextStartCode(data, off+1) {
			if off+3 >= len(data) {
				t.Fatalf("offset %d leaves no room for a code byte in %d bytes", off, len(data))
			}
			if data[off] != 0 || data[off+1] != 0 || data[off+2] != 1 {
				t.Fatalf("offset %d is not a start-code prefix", off)
			}
			code, ok := bits.StartCodeAt(data, off)
			if !ok || code != data[off+3] {
				t.Fatalf("StartCodeAt(%d) = %#x,%v disagrees with data %#x", off, code, ok, data[off+3])
			}
			if seen++; seen > len(data) {
				t.Fatal("scanner reported more start codes than bytes")
			}
		}
	})
}
