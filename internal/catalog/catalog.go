// Package catalog defines the synthetic analogues of the paper's 16 test
// video streams (Table 4) and the per-stream wall configurations of Table 6.
// The originals (DVD movie clips, Intel MRL fish-tank HDTV footage, FOX/NBC/
// CBS broadcast recordings, UCSD Orion Nebula flybys) are not
// redistributable; each analogue matches its class's resolution, bit rate
// per pixel and motion structure (see DESIGN.md §2).
package catalog

import (
	"fmt"

	"tiledwall/internal/encoder"
	"tiledwall/internal/video"
)

// StreamSpec describes one catalogue entry.
type StreamSpec struct {
	ID    int
	Name  string
	Scene video.SceneKind
	W, H  int     // full (paper-scale) resolution, multiples of 16
	BPP   float64 // target bits per pixel

	// K, M, N is the 1-k-(m,n) configuration Table 6 pairs with the stream
	// (K = 0 means one-level).
	K, M, N int
}

// Nodes returns the PC count of the stream's Table 6 configuration.
func (s StreamSpec) Nodes() int { return 1 + s.K + s.M*s.N }

// Streams is the Table 4 analogue catalogue. Streams 1-3 are DVD-rate film
// clips; 4 and 12 the same animation at 1x and quadrupled resolution; 5-8
// HDTV fish-tank camera shots; 9-11 broadcast recordings; 13-16 the Orion
// flyby visualisations whose detail concentrates in part of the frame.
var Streams = []StreamSpec{
	{1, "spr", video.SceneFilm, 720, 480, 0.60, 0, 1, 1},
	{2, "matrix", video.SceneFilm, 720, 480, 0.55, 0, 1, 1},
	{3, "t2", video.SceneFilm, 720, 480, 0.50, 0, 1, 1},
	{4, "anim1", video.SceneAnimation, 960, 640, 0.30, 0, 2, 1},
	{5, "fish1", video.SceneFishTank, 1024, 768, 0.30, 0, 2, 1},
	{6, "fish2", video.SceneFishTank, 1152, 768, 0.30, 1, 2, 1},
	{7, "fish3", video.SceneFishTank, 1280, 720, 0.30, 1, 2, 1},
	{8, "fish4", video.SceneFishTank, 1280, 720, 0.30, 1, 2, 1},
	{9, "fox", video.SceneBroadcast, 1280, 720, 0.30, 1, 2, 1},
	{10, "nbc", video.SceneBroadcast, 1920, 1088, 0.30, 1, 2, 2},
	{11, "cbs", video.SceneBroadcast, 1920, 1088, 0.30, 1, 2, 2},
	{12, "anim4", video.SceneAnimation, 1920, 1280, 0.30, 2, 3, 2},
	{13, "orion1", video.SceneFlyby, 2560, 1920, 0.30, 2, 3, 2},
	{14, "orion2", video.SceneFlyby, 2880, 2048, 0.30, 3, 3, 3},
	{15, "orion3", video.SceneFlyby, 3200, 2400, 0.30, 4, 4, 3},
	{16, "orion4", video.SceneFlyby, 3840, 2800, 0.30, 4, 4, 4},
}

// ByID returns the spec with the given 1-based id.
func ByID(id int) (StreamSpec, error) {
	for _, s := range Streams {
		if s.ID == id {
			return s, nil
		}
	}
	return StreamSpec{}, fmt.Errorf("catalog: no stream %d", id)
}

// ByName returns the spec with the given name.
func ByName(name string) (StreamSpec, error) {
	for _, s := range Streams {
		if s.Name == name {
			return s, nil
		}
	}
	return StreamSpec{}, fmt.Errorf("catalog: no stream %q", name)
}

// GenOptions controls stream generation.
type GenOptions struct {
	// Frames is the sequence length; the paper trims every stream to 240.
	Frames int
	// Scale divides the resolution by the given factor (1 = paper scale).
	// Useful for fast benchmark runs; the result stays macroblock aligned.
	Scale int
	// ClosedGOP produces self-contained GOPs (needed by the GOP-level
	// baseline).
	ClosedGOP bool
	// Seed varies the content deterministically.
	Seed int64
}

func (o *GenOptions) defaults() {
	if o.Frames == 0 {
		o.Frames = 240
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Dimensions returns the generated stream's dimensions for the options.
func (s StreamSpec) Dimensions(opts GenOptions) (int, int) {
	opts.defaults()
	w := s.W / opts.Scale / 16 * 16
	h := s.H / opts.Scale / 16 * 16
	if w < s.M*16 {
		w = s.M * 16
	}
	if h < s.N*16 {
		h = s.N * 16
	}
	return w, h
}

// Generate renders and encodes the stream.
func (s StreamSpec) Generate(opts GenOptions) ([]byte, error) {
	opts.defaults()
	w, h := s.Dimensions(opts)
	cfg := encoder.Config{
		Width: w, Height: h,
		FrameRateCode: 5, // 30 fps, as the paper's high-resolution content
		GOPSize:       12,
		BSpacing:      3,
		TargetBPP:     s.BPP,
		InitialQScale: 8,
		ClosedGOP:     opts.ClosedGOP,
	}
	src := video.NewSource(s.Scene, w, h, opts.Seed+int64(s.ID))
	enc, err := encoder.New(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < opts.Frames; i++ {
		// Each frame is a fresh buffer: the encoder holds B pictures until
		// the next anchor arrives.
		if err := enc.Push(src.Frame(i)); err != nil {
			return nil, err
		}
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return enc.Bytes(), nil
}
