package recovery

import (
	"sort"
	"sync"
)

// RetainedSubPic is one tile's marshalled sub-picture kept for replay.
type RetainedSubPic struct {
	Pic     int
	Tag     int // original ANID tag (replays are not acked, but kept for audit)
	Payload []byte
}

// SubPicRetainer is the replay window the second-level splitters feed: the
// last RetainWindow sub-pictures per tile, shared across splitters (each
// retains the pictures it split, so a tile's entries interleave). When a
// decoder is respawned, the supervisor replays every retained sub-picture
// the new incarnation still owes, in picture order; the decoder's reorder
// stash restores ANID/NSID sequencing without a dedicated reorder queue.
type SubPicRetainer struct {
	mu     sync.Mutex
	window int
	byTile map[int]map[int]RetainedSubPic // tile -> pic -> entry
	maxPic map[int]int
}

// NewSubPicRetainer keeps the last window pictures per tile.
func NewSubPicRetainer(window int) *SubPicRetainer {
	if window <= 0 {
		window = 16
	}
	return &SubPicRetainer{
		window: window,
		byTile: map[int]map[int]RetainedSubPic{},
		maxPic: map[int]int{},
	}
}

// Retain stores tile's sub-picture for picture pic and prunes entries that
// fell out of the window.
func (r *SubPicRetainer) Retain(tile, pic, tag int, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byTile[tile]
	if m == nil {
		m = map[int]RetainedSubPic{}
		r.byTile[tile] = m
	}
	m[pic] = RetainedSubPic{Pic: pic, Tag: tag, Payload: payload}
	if pic > r.maxPic[tile] {
		r.maxPic[tile] = pic
	}
	floor := r.maxPic[tile] - r.window
	for p := range m {
		if p < floor {
			delete(m, p)
		}
	}
}

// Since returns tile's retained sub-pictures with pic >= fromPic, ascending.
func (r *SubPicRetainer) Since(tile, fromPic int) []RetainedSubPic {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RetainedSubPic
	for p, e := range r.byTile[tile] {
		if p >= fromPic {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pic < out[j].Pic })
	return out
}

// RetainedPicture is one picture unit the root keeps until its assignee's
// credit ack confirms delivery.
type RetainedPicture struct {
	Seq     int
	Tag     int // NSID riding on the original send
	Payload []byte
}

// PictureRetainer is the root splitter's replay window: every picture sent
// to a second-level splitter stays retained until that splitter's ack
// returns the credit — so the buffer is bounded by the two-buffer credit
// window (at most 2 outstanding pictures per splitter) plus a small slack
// for acks in flight. When a splitter is respawned, the supervisor replays
// its unacked pictures with their original NSID tags, preserving the
// ANID/NSID ordering chain.
type PictureRetainer struct {
	mu         sync.Mutex
	bySplitter map[int]map[int]RetainedPicture // splitter index -> seq -> entry
}

// NewPictureRetainer returns an empty retainer.
func NewPictureRetainer() *PictureRetainer {
	return &PictureRetainer{bySplitter: map[int]map[int]RetainedPicture{}}
}

// Retain stores the picture sent to splitter idx.
func (r *PictureRetainer) Retain(idx, seq, tag int, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.bySplitter[idx]
	if m == nil {
		m = map[int]RetainedPicture{}
		r.bySplitter[idx] = m
	}
	m[seq] = RetainedPicture{Seq: seq, Tag: tag, Payload: payload}
}

// Ack releases the retained picture seq of splitter idx.
func (r *PictureRetainer) Ack(idx, seq int) {
	r.mu.Lock()
	delete(r.bySplitter[idx], seq)
	r.mu.Unlock()
}

// Pending returns splitter idx's unacked pictures in ascending seq order.
func (r *PictureRetainer) Pending(idx int) []RetainedPicture {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RetainedPicture
	for _, e := range r.bySplitter[idx] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
