package mpeg2

import (
	"tiledwall/internal/bits"
)

// SliceWriter emits slice and macroblock syntax, mirroring SliceDecoder's
// prediction-state machine exactly (DC predictors, motion vector predictors,
// quantiser scale, skipped-run resets). The encoder decides modes, vectors
// and quantised levels; SliceWriter owns the bits.
type SliceWriter struct {
	ctx *PictureContext
	w   *bits.Writer

	state  PredState
	mbAddr int
	first  bool
}

// MBCode describes one coded macroblock for SliceWriter.
type MBCode struct {
	Addr       int
	SkipBefore int // skipped macroblocks since the previous coded one
	Flags      int // MBIntra/MBMotionFwd/MBMotionBwd/MBPattern (MBQuant is derived)
	QuantCode  int // desired quantiser_scale_code (honoured only when legal)
	MVFwd      [2]int32
	MVBwd      [2]int32
	CBP        int
	// Blocks holds quantised levels in raster order. For intra macroblocks
	// Blocks[i][0] is the absolute quantised DC (differential coding is
	// applied here).
	Blocks *[6][64]int32
}

// NewSliceWriter begins a slice for macroblock row (0-based) with the given
// initial quantiser_scale_code, emitting the slice start code and header.
func NewSliceWriter(ctx *PictureContext, w *bits.Writer, row, quantCode int) *SliceWriter {
	w.AlignZero()
	w.WriteBits(0x000001, 24)
	if ctx.Seq.Height > 2800 {
		// Tall pictures: slice_vertical_position carries the low 7 bits of
		// the row (+1) and a 3-bit extension carries the rest, matching the
		// parser in DecodePictureUnit.
		w.WriteBits(uint32((row&0x7F)+1), 8)
		w.WriteBits(uint32(row>>7), 3)
	} else {
		w.WriteBits(uint32(row+1), 8)
	}
	if quantCode < 1 {
		quantCode = 1
	} else if quantCode > 31 {
		quantCode = 31
	}
	w.WriteBits(uint32(quantCode), 5)
	w.WriteBit(0) // extra_bit_slice

	sw := &SliceWriter{ctx: ctx, w: w, first: true, mbAddr: row*ctx.MBW - 1}
	sw.state.ResetDC(ctx.Pic.IntraDCPrecision)
	sw.state.ResetMV()
	sw.state.QuantCode = quantCode
	return sw
}

// State returns the writer's current prediction state (used by tests).
func (sw *SliceWriter) State() PredState { return sw.state }

func (sw *SliceWriter) writeIncrement(inc int) {
	for inc > 33 {
		code, n := parseCode(mbAddrIncEscape)
		sw.w.WriteBits(code, n)
		inc -= 33
	}
	mbAddrIncTable.encode(sw.w, inc)
}

// WriteMB encodes one macroblock. The caller must set MBPattern in Flags iff
// CBP != 0 (non-intra), and must not request skips at the start of a slice.
func (sw *SliceWriter) WriteMB(mb *MBCode) error {
	pic := sw.ctx.Pic
	if sw.first && mb.SkipBefore != 0 {
		return syntaxErrf("first macroblock of a slice cannot be preceded by skips")
	}
	inc := mb.Addr - sw.mbAddr
	if inc < 1 {
		return syntaxErrf("macroblock address %d not after previous %d", mb.Addr, sw.mbAddr)
	}
	if !sw.first && inc != mb.SkipBefore+1 {
		return syntaxErrf("address increment %d does not match SkipBefore %d", inc, mb.SkipBefore)
	}
	sw.writeIncrement(inc)

	// Mirror the decoder's skipped-run resets.
	if !sw.first && mb.SkipBefore > 0 {
		sw.state.ResetDC(pic.IntraDCPrecision)
		if pic.PicType == PictureP {
			sw.state.ResetMV()
		}
	}

	flags := mb.Flags &^ MBQuant
	intra := flags&MBIntra != 0
	if intra {
		flags &^= MBPattern | MBMotionFwd | MBMotionBwd
	} else if flags&MBPattern != 0 && mb.CBP == 0 {
		return syntaxErrf("MBPattern set with empty CBP")
	}
	// A quantiser change can only be carried by types that have a quant
	// variant: intra, or pattern-carrying macroblocks.
	wantQuant := mb.QuantCode != 0 && mb.QuantCode != sw.state.QuantCode
	canQuant := intra || flags&MBPattern != 0
	if wantQuant && canQuant {
		flags |= MBQuant
	}
	if _, ok := sw.ctx.mbTypeTable().codeLen(flags); !ok {
		return syntaxErrf("macroblock type %#x not expressible in %s picture", flags, pic.PicType)
	}
	sw.ctx.mbTypeTable().encode(sw.w, flags)

	if flags&MBQuant != 0 {
		sw.w.WriteBits(uint32(mb.QuantCode), 5)
		sw.state.QuantCode = mb.QuantCode
	}

	if flags&MBMotionFwd != 0 {
		if err := sw.writeMV(0, mb.MVFwd); err != nil {
			return err
		}
	}
	if flags&MBMotionBwd != 0 {
		if err := sw.writeMV(1, mb.MVBwd); err != nil {
			return err
		}
	}
	if !intra && flags&MBMotionFwd == 0 && pic.PicType == PictureP {
		// "No MC": decoder resets predictors.
		sw.state.ResetMV()
	}
	if intra {
		sw.state.ResetMV()
	} else {
		sw.state.ResetDC(pic.IntraDCPrecision)
	}

	switch {
	case intra:
		for i := 0; i < 6; i++ {
			if err := sw.writeIntraBlock(i, &mb.Blocks[i]); err != nil {
				return err
			}
		}
	case flags&MBPattern != 0:
		cbpTable.encode(sw.w, mb.CBP)
		for i := 0; i < 6; i++ {
			if mb.CBP&(1<<uint(5-i)) != 0 {
				if err := sw.writeNonIntraBlock(&mb.Blocks[i]); err != nil {
					return err
				}
			}
		}
	}

	sw.mbAddr = mb.Addr
	sw.first = false
	return nil
}

// writeMV encodes the vector for direction s and updates the predictors,
// mirroring SliceDecoder.motionVector.
func (sw *SliceWriter) writeMV(s int, mv [2]int32) error {
	pic := sw.ctx.Pic
	for t := 0; t < 2; t++ {
		fcode := pic.FCode[s][t]
		if fcode < 1 || fcode > 9 {
			return syntaxErrf("f_code[%d][%d]=%d out of range", s, t, fcode)
		}
		rSize := uint(fcode - 1)
		f := int32(1) << rSize
		low, high, rng := -16*f, 16*f-1, 32*f
		if mv[t] < low || mv[t] > high {
			return syntaxErrf("motion vector component %d outside f_code %d range", mv[t], fcode)
		}
		// Any representative of delta modulo rng within [-16f, 16f] decodes
		// to the same vector after the decoder's range wrap.
		delta := mv[t] - sw.state.PMV[0][s][t]
		if delta < low {
			delta += rng
		} else if delta > high {
			delta -= rng
		}
		if delta == 0 {
			motionCodeTable.encode(sw.w, 0)
		} else {
			mag := delta
			neg := mag < 0
			if neg {
				mag = -mag
			}
			code := int((mag-1)>>rSize) + 1
			residual := (mag - 1) & (f - 1)
			if code > 16 {
				return syntaxErrf("motion delta %d unrepresentable with f_code %d", delta, fcode)
			}
			motionCodeTable.encode(sw.w, code)
			if neg {
				sw.w.WriteBit(1)
			} else {
				sw.w.WriteBit(0)
			}
			if fcode > 1 {
				sw.w.WriteBits(uint32(residual), int(rSize))
			}
		}
		sw.state.PMV[0][s][t] = mv[t]
		sw.state.PMV[1][s][t] = mv[t]
	}
	return nil
}

func (sw *SliceWriter) writeIntraBlock(i int, blk *[64]int32) error {
	comp := 0
	table := dcSizeLumaTable
	if i >= 4 {
		comp = i - 3
		table = dcSizeChromaTable
	}
	diff := blk[0] - sw.state.DCPred[comp]
	sw.state.DCPred[comp] = blk[0]
	size := dcSizeOfInternal(diff)
	if size > 11 {
		return syntaxErrf("DC differential %d too large", diff)
	}
	table.encode(sw.w, size)
	if size > 0 {
		v := diff
		if v < 0 {
			v += (1 << uint(size)) - 1
		}
		sw.w.WriteBits(uint32(v), size)
	}
	sw.writeAC(blk, 1, sw.ctx.intraDCT, sw.ctx.intraDCT)
	return nil
}

func (sw *SliceWriter) writeNonIntraBlock(blk *[64]int32) error {
	sw.writeAC(blk, 0, dctTableB14First, dctTableB14)
	return nil
}

// writeAC emits (run, level) pairs for coefficients from scan index start,
// using firstTab for the first symbol, then tab, then EOB from tab.
func (sw *SliceWriter) writeAC(blk *[64]int32, start int, firstTab, tab *dctTable) {
	scan := sw.ctx.scan
	run := 0
	cur := firstTab
	for n := start; n < 64; n++ {
		level := blk[scan[n]]
		if level == 0 {
			run++
			continue
		}
		neg := level < 0
		mag := level
		if neg {
			mag = -mag
		}
		if c, ok := cur.code(run, int(mag)); ok {
			sw.w.WriteBits(c.bits, int(c.n))
			if neg {
				sw.w.WriteBit(1)
			} else {
				sw.w.WriteBit(0)
			}
		} else {
			code, nb := parseCode(dctEscape)
			sw.w.WriteBits(code, nb)
			sw.w.WriteBits(uint32(run), 6)
			sw.w.WriteBits(uint32(level)&0xFFF, 12)
		}
		run = 0
		cur = tab
	}
	sw.w.WriteBits(tab.eob.bits, int(tab.eob.n))
}

// dcSizeOfInternal returns the dct_dc_size of a differential.
func dcSizeOfInternal(diff int32) int {
	if diff < 0 {
		diff = -diff
	}
	size := 0
	for diff != 0 {
		diff >>= 1
		size++
	}
	return size
}
