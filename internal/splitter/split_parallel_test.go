package splitter

import (
	"bytes"
	"fmt"
	"testing"

	"tiledwall/internal/subpic"
)

// marshalAll renders every sub-picture of one Split call to wire bytes: the
// strongest equality there is — SPHs, piece payloads, MEI lists and picture
// info all byte for byte.
func marshalAll(t testing.TB, sps []*subpic.SubPicture) [][]byte {
	t.Helper()
	out := make([][]byte, len(sps))
	for i, sp := range sps {
		out[i] = sp.Marshal()
	}
	return out
}

// TestSplitParallelBitExact holds the slice-parallel splitter to the serial
// oracle: for every picture, geometry, worker count and output mode, the
// marshaled sub-pictures must be byte-identical. Run under -race this also
// exercises the pool's publication discipline.
func TestSplitParallelBitExact(t *testing.T) {
	s, _ := makeStream(t, 256, 192, 10)
	for _, tc := range []struct{ m, n, ov int }{{2, 2, 0}, {3, 2, 0}, {2, 2, 16}, {4, 1, 0}} {
		geo := geometry(t, s, tc.m, tc.n, tc.ov)
		serial := NewMBSplitter(s.Seq, geo)
		for _, workers := range []int{2, 3, 4, 8} {
			for _, reuse := range []bool{false, true} {
				par := NewMBSplitterOpts(s.Seq, geo, SplitOptions{Workers: workers, Reuse: reuse})
				for pi, unit := range s.Pictures {
					want, err := serial.Split(unit, pi)
					if err != nil {
						t.Fatal(err)
					}
					got, err := par.Split(unit, pi)
					if err != nil {
						t.Fatalf("m=%d n=%d ov=%d workers=%d reuse=%v pic %d: %v",
							tc.m, tc.n, tc.ov, workers, reuse, pi, err)
					}
					wb, gb := marshalAll(t, want), marshalAll(t, got)
					for tile := range wb {
						if !bytes.Equal(wb[tile], gb[tile]) {
							t.Fatalf("m=%d n=%d ov=%d workers=%d reuse=%v pic %d tile %d: sub-picture bytes diverge (serial %dB, parallel %dB)",
								tc.m, tc.n, tc.ov, workers, reuse, pi, tile, len(wb[tile]), len(gb[tile]))
						}
					}
				}
				par.Close()
			}
		}
	}
}

// TestSplitWorkersDefault: Workers 0 resolves to GOMAXPROCS and still splits
// correctly (smoke for the config default used across the pipelines).
func TestSplitWorkersDefault(t *testing.T) {
	s, _ := makeStream(t, 192, 128, 5)
	geo := geometry(t, s, 2, 2, 0)
	ms := NewMBSplitterOpts(s.Seq, geo, SplitOptions{})
	defer ms.Close()
	if ms.Workers() < 1 {
		t.Fatalf("resolved workers %d", ms.Workers())
	}
	serial := NewMBSplitter(s.Seq, geo)
	for pi, unit := range s.Pictures {
		want, err := serial.Split(unit, pi)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ms.Split(unit, pi)
		if err != nil {
			t.Fatal(err)
		}
		wb, gb := marshalAll(t, want), marshalAll(t, got)
		for tile := range wb {
			if !bytes.Equal(wb[tile], gb[tile]) {
				t.Fatalf("pic %d tile %d: default-workers split diverges from serial", pi, tile)
			}
		}
	}
}

// TestSplitBreakdownAccrues: the splitter resolves its work into the scan,
// parse and sort phases and counts pictures.
func TestSplitBreakdownAccrues(t *testing.T) {
	s, _ := makeStream(t, 192, 128, 5)
	geo := geometry(t, s, 2, 2, 0)
	ms := NewMBSplitterOpts(s.Seq, geo, SplitOptions{Workers: 2})
	defer ms.Close()
	for pi, unit := range s.Pictures {
		if _, err := ms.Split(unit, pi); err != nil {
			t.Fatal(err)
		}
	}
	bd := ms.Breakdown()
	if bd.Pictures != len(s.Pictures) {
		t.Fatalf("breakdown counted %d pictures, want %d", bd.Pictures, len(s.Pictures))
	}
	if bd.Total() <= 0 {
		t.Fatal("breakdown accrued no time")
	}
}

// TestSplitPooledAllocs is the alloc gate of the pooled parallel splitter:
// after warm-up, splitting a whole stream in Reuse mode must not allocate at
// all, with or without the worker pool.
func TestSplitPooledAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs steady state")
	}
	s, _ := makeStream(t, 192, 128, 9)
	geo := geometry(t, s, 2, 2, 0)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ms := NewMBSplitterOpts(s.Seq, geo, SplitOptions{Workers: workers, Reuse: true})
			defer ms.Close()
			split := func() {
				for pi, unit := range s.Pictures {
					if _, err := ms.Split(unit, pi); err != nil {
						t.Fatal(err)
					}
				}
			}
			split() // warm accumulator capacities and start the pool
			split()
			if allocs := testing.AllocsPerRun(5, split); allocs != 0 {
				t.Fatalf("pooled parallel splitter allocated %.1f objects per stream in steady state, want 0", allocs)
			}
		})
	}
}

// BenchmarkSplitPicture measures Split on a stream picture in pooled steady
// state. The worker count follows GOMAXPROCS, so `go test -bench
// SplitPicture -cpu 1,2,4` produces the serial/parallel ts comparison
// directly; allocs/op must stay 0.
func BenchmarkSplitPicture(b *testing.B) {
	s, _ := makeStream(b, 384, 256, 12)
	geo := geometry(b, s, 2, 2, 0)
	ms := NewMBSplitterOpts(s.Seq, geo, SplitOptions{Reuse: true})
	defer ms.Close()
	var bytes int64
	for _, unit := range s.Pictures {
		bytes += int64(len(unit))
	}
	b.SetBytes(bytes / int64(len(s.Pictures)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ms.Split(s.Pictures[i%len(s.Pictures)], i); err != nil {
			b.Fatal(err)
		}
	}
}
