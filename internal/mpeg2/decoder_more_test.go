package mpeg2

import (
	"testing"

	"tiledwall/internal/bits"
)

// buildTinyStream hand-writes a minimal stream: seq header + n intra
// pictures with constant luma values (one value per picture), so tests can
// verify decode and ordering without the encoder package (no import cycle).
func buildTinyStream(t *testing.T, w, h int, lumas []uint8, types []PictureType) []byte {
	t.Helper()
	if len(lumas) != len(types) {
		t.Fatal("bad test setup")
	}
	seq := testSeq(w, h)
	bw := bits.NewWriter(1024)
	seq.Write(bw)
	for i := range lumas {
		ph := testPic(types[i], false, false, false)
		ph.TemporalRef = i
		ph.Write(bw)
		writeFlatPicture(t, bw, seq, ph, lumas[i])
	}
	WriteSequenceEnd(bw)
	return bw.Bytes()
}

// writeFlatPicture writes slices where every macroblock is intra with a
// constant DC (for I pictures) or a coded zero-vector copy (for P pictures,
// giving cbp 0 "no MC" macroblocks — which copy the reference).
func writeFlatPicture(t *testing.T, bw *bits.Writer, seq *SequenceHeader, ph *PictureHeader, luma uint8) {
	t.Helper()
	ctx, err := NewPictureContext(seq, ph)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < ctx.MBH; row++ {
		sw := NewSliceWriter(ctx, bw, row, 8)
		for col := 0; col < ctx.MBW; col++ {
			mb := &MBCode{Addr: row*ctx.MBW + col, QuantCode: 8}
			switch ph.PicType {
			case PictureI:
				mb.Flags = MBIntra
				var blocks [6][64]int32
				for b := 0; b < 4; b++ {
					blocks[b][0] = int32(luma) // quantised DC at precision 0: value*8 after dequant
				}
				blocks[4][0] = 128
				blocks[5][0] = 128
				mb.Blocks = &blocks
				mb.CBP = 63
			default: // P and B: forward motion, zero vector, no pattern — a copy
				mb.Flags = MBMotionFwd
			}
			if err := sw.WriteMB(mb); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestHandWrittenIntraDecodes(t *testing.T) {
	data := buildTinyStream(t, 48, 32, []uint8{25}, []PictureType{PictureI})
	dec, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	pics, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pics) != 1 {
		t.Fatalf("%d pictures", len(pics))
	}
	// Quantised DC 25 at precision 0 dequantises to 200; IDCT of a pure DC
	// block is flat DC/8 = 25.
	for i, v := range pics[0].Buf.Y {
		if v != 25 {
			t.Fatalf("luma[%d] = %d, want 25", i, v)
		}
	}
}

func TestPCopyPropagatesReference(t *testing.T) {
	data := buildTinyStream(t, 48, 32,
		[]uint8{77, 0, 0},
		[]PictureType{PictureI, PictureP, PictureP})
	dec, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	pics, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pics) != 3 {
		t.Fatalf("%d pictures", len(pics))
	}
	for pi, p := range pics {
		for i, v := range p.Buf.Y {
			if v != 77 {
				t.Fatalf("picture %d luma[%d] = %d, want propagated 77", pi, i, v)
			}
		}
	}
}

func TestDisplayReordering(t *testing.T) {
	// Decode order I(10) P(30) B(20): display order must be 10, 20, 30.
	data := buildTinyStream(t, 48, 32,
		[]uint8{10, 30, 20},
		[]PictureType{PictureI, PictureP, PictureB})
	// The B picture here is hand-written as... buildTinyStream only writes
	// I-as-intra and P-as-copy; a B needs motion flags. Patch: treat B like
	// P is not possible with the B type table, so write it with forward
	// motion (legal in B).
	dec, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	pics, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pics) != 3 {
		t.Fatalf("%d pictures", len(pics))
	}
	// Display order indices: B emitted before the held anchor. (The P and B
	// pictures are zero-vector copies, so pixel content is inherited from
	// the I picture; ordering is observable through DecodeIndex.)
	if pics[0].DecodeIndex != 0 || pics[1].DecodeIndex != 2 || pics[2].DecodeIndex != 1 {
		t.Fatalf("display order decode-indices = %d,%d,%d, want 0,2,1",
			pics[0].DecodeIndex, pics[1].DecodeIndex, pics[2].DecodeIndex)
	}
	for i, p := range pics {
		if p.Buf.Y[0] != 10 {
			t.Fatalf("display frame %d luma %d, want the copied 10", i, p.Buf.Y[0])
		}
	}
}

func TestBBeforeAnchorsRejected(t *testing.T) {
	data := buildTinyStream(t, 48, 32, []uint8{5}, []PictureType{PictureB})
	dec, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.DecodeAll(); err == nil {
		t.Error("B picture without anchors decoded")
	}
	data = buildTinyStream(t, 48, 32, []uint8{5}, []PictureType{PictureP})
	dec, _ = NewDecoder(data)
	if _, err := dec.DecodeAll(); err == nil {
		t.Error("P picture without anchor decoded")
	}
}

func TestBandDecodeMatchesFull(t *testing.T) {
	data := buildTinyStream(t, 64, 64, []uint8{50, 0}, []PictureType{PictureI, PictureP})
	s, err := ParseStream(data)
	if err != nil {
		t.Fatal(err)
	}
	full := NewPixelBuf(0, 0, 64, 64)
	if _, err := DecodePictureUnit(s.Seq, s.Pictures[0], nil, nil, full); err != nil {
		t.Fatal(err)
	}
	// Band rows 1..2 only.
	band := NewPixelBuf(0, 0, 64, 64)
	if _, err := DecodePictureUnitBand(s.Seq, s.Pictures[0], nil, nil, band, 1, 2); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 64; y++ {
		inBand := y >= 16 && y < 48
		for x := 0; x < 64; x++ {
			v := band.Y[y*64+x]
			if inBand && v != full.Y[y*64+x] {
				t.Fatalf("band decode differs at %d,%d", x, y)
			}
			if !inBand && v != 0 {
				t.Fatalf("band decode touched row %d outside its band", y)
			}
		}
	}
}

func TestIndexPictureUnits(t *testing.T) {
	data := buildTinyStream(t, 48, 32, []uint8{1, 2}, []PictureType{PictureI, PictureP})
	units := IndexPictureUnits(data)
	if len(units) != 2 {
		t.Fatalf("%d units", len(units))
	}
	for i, u := range units {
		if pt, err := PeekPictureType(u); err != nil {
			t.Fatalf("unit %d: %v", i, err)
		} else if i == 0 && pt != PictureI || i == 1 && pt != PictureP {
			t.Fatalf("unit %d type %v", i, pt)
		}
	}
}
