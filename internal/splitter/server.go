package splitter

import (
	"fmt"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/subpic"
	"tiledwall/internal/wall"
)

// ServeConfig wires one resident second-level splitter node: a long-lived
// server multiplexing sessions, each with its own sequence header, geometry
// and macroblock splitter.
type ServeConfig struct {
	// Index is this splitter's position among the k resident splitters.
	Index int
	// M, N, Overlap describe the wall grid; per-session geometry is derived
	// from them and the session's own picture dimensions.
	M, N, Overlap int
	// DecoderNodes maps tile index to decoder node id; RootNode is the
	// resident root.
	DecoderNodes []int
	RootNode     int

	Pooled       bool
	SplitWorkers int

	// OnResult receives the splitter-side result when a session's final
	// marker has been forwarded.
	OnResult func(session, index int, res *SecondResult)
}

// splitSession is one session's splitter-side state.
type splitSession struct {
	ms  *MBSplitter
	res *SecondResult
}

func (ss *splitSession) marshal(sp *subpic.SubPicture, pooled bool) []byte {
	t0 := time.Now()
	var payload []byte
	if pooled {
		payload = sp.AppendTo(cluster.GetSlab(sp.WireSize()))
	} else {
		payload = sp.Marshal()
	}
	ss.res.Split.Add(metrics.SplitSerialize, time.Since(t0))
	return payload
}

// ServeSecond runs the resident splitter loop until a FlagShutdown message
// arrives or the transport aborts. The data path per session is RunSecond's:
// ack the root on receipt (credit), split, gate on nd decoder acks (skipped
// only for the wall's globally first picture), ship with the ANID the root
// announced. The control path adds session opens (forwarded to every decoder
// before any of this splitter's sub-pictures, by sender FIFO) and session
// finals (the batch end marker, per session).
func ServeSecond(port cluster.Port, cfg ServeConfig) error {
	sessions := map[int]*splitSession{}
	nd := len(cfg.DecoderNodes)
	for {
		t0 := time.Now()
		msg := port.Recv(cluster.MsgPicture)
		wait := time.Since(t0)
		if msg == nil {
			return fmt.Errorf("splitter %d: fabric aborted", cfg.Index)
		}
		switch {
		case msg.Flags&cluster.FlagShutdown != 0:
			for _, ss := range sessions {
				ss.ms.Close()
			}
			return nil
		case msg.Flags&cluster.FlagSessionOpen != 0:
			if sessions[msg.Session] != nil {
				continue
			}
			seq, err := mpeg2.ParseSequenceHeaderBytes(msg.Payload)
			if err != nil {
				return fmt.Errorf("splitter %d: session %d open: %w", cfg.Index, msg.Session, err)
			}
			geo, err := wall.NewGeometry(seq.MBWidth()*16, seq.MBHeight()*16, cfg.M, cfg.N, cfg.Overlap)
			if err != nil {
				return fmt.Errorf("splitter %d: session %d open: %w", cfg.Index, msg.Session, err)
			}
			sessions[msg.Session] = &splitSession{
				ms:  NewMBSplitterOpts(seq, geo, SplitOptions{Workers: cfg.SplitWorkers, Reuse: cfg.Pooled}),
				res: &SecondResult{},
			}
			// Forward the open to every decoder. The payload is shared and
			// read-only on the receiving side, so one copy serves all.
			for t := 0; t < nd; t++ {
				port.Send(cfg.DecoderNodes[t], &cluster.Message{
					Kind:    cluster.MsgSubPicture,
					Flags:   cluster.FlagSessionOpen,
					Session: msg.Session,
					Payload: msg.Payload,
				})
			}
		case msg.Flags&cluster.FlagSessionFinal != 0:
			ss := sessions[msg.Session]
			if ss == nil {
				continue
			}
			ss.res.Breakdown.Add(metrics.PhaseReceive, wait)
			// Forward the end marker to every decoder; Tag carries the
			// session's total picture count so a decoder that sees an early
			// final keeps decoding until it has them all.
			for t := 0; t < nd; t++ {
				sp := &subpic.SubPicture{Final: true}
				sp.Pic.Index = int32(msg.Tag)
				port.Send(cfg.DecoderNodes[t], &cluster.Message{
					Kind:    cluster.MsgSubPicture,
					Seq:     -1,
					Tag:     port.ID(),
					Flags:   cluster.FlagSessionFinal,
					Session: msg.Session,
					Payload: ss.marshal(sp, cfg.Pooled),
				})
			}
			ss.res.FoldSplit(ss.ms)
			ss.ms.Close()
			delete(sessions, msg.Session)
			if cfg.OnResult != nil {
				cfg.OnResult(msg.Session, cfg.Index, ss.res)
			}
			// The root closes the session only after a drain ack from every
			// splitter and every decoder, so results are published before a
			// waiting Session.Close can read them.
			port.Send(cfg.RootNode, &cluster.Message{
				Kind:    cluster.MsgAck,
				Seq:     cluster.DrainAckSeq,
				Session: msg.Session,
			})
		default:
			ss := sessions[msg.Session]
			if ss == nil {
				return fmt.Errorf("splitter %d: picture for unknown session %d", cfg.Index, msg.Session)
			}
			if err := splitOne(port, cfg, ss, msg, wait, nd); err != nil {
				return err
			}
		}
	}
}

// splitOne handles one data picture: the body of RunSecond's loop, keyed to
// the message's session.
func splitOne(port cluster.Port, cfg ServeConfig, ss *splitSession, msg *cluster.Message, wait time.Duration, nd int) error {
	b := &ss.res.Breakdown
	b.Add(metrics.PhaseReceive, wait)
	// Ack the root immediately: the posted buffer is recycled (flow-control
	// credit) and the service releases one of the session's in-flight tokens.
	b.Timed(metrics.PhaseAck, func() {
		port.Send(cfg.RootNode, &cluster.Message{Kind: cluster.MsgAck, Seq: msg.Seq, Session: msg.Session})
	})
	ss.res.InputBytes += int64(len(msg.Payload))

	var sps []*subpic.SubPicture
	var err error
	b.Timed(metrics.PhaseWork, func() { sps, err = ss.ms.Split(msg.Payload, msg.Seq) })
	if err != nil {
		return fmt.Errorf("splitter %d: %w", cfg.Index, err)
	}

	// Wait for the go-ahead from every decoder (redirected acks), except for
	// the wall's globally first picture. Every ack arriving at a splitter
	// node is a go-ahead — drain acks go to the root only — so counting
	// without inspecting the session is exactly the batch protocol.
	if msg.Flags&cluster.FlagFirstPicture == 0 {
		aborted := false
		b.Timed(metrics.PhaseWaitMB, func() {
			for i := 0; i < nd; i++ {
				if port.Recv(cluster.MsgAck) == nil {
					aborted = true
					return
				}
			}
		})
		if aborted {
			return fmt.Errorf("splitter %d: fabric aborted while waiting for decoder acks", cfg.Index)
		}
	}

	anid := msg.Tag // root told us who handles the next picture
	b.Timed(metrics.PhaseServe, func() {
		for t := 0; t < nd; t++ {
			payload := ss.marshal(sps[t], cfg.Pooled)
			ss.res.SPBytes += int64(len(payload))
			port.Send(cfg.DecoderNodes[t], &cluster.Message{
				Kind:    cluster.MsgSubPicture,
				Seq:     msg.Seq,
				Tag:     anid,
				Session: msg.Session,
				Payload: payload,
			})
		}
	})
	ss.res.Pictures++
	b.Pictures++
	return nil
}
