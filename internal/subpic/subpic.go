// Package subpic defines the sub-picture (SP) container exchanged between
// second-level splitters and decoders, and the macroblock-exchange
// instruction (MEI) lists: the two data structures at the heart of the
// paper's hierarchical decoder (§4.2-§4.3).
//
// A sub-picture holds, for one decoder tile, the pieces of every slice that
// intersects the tile. Each piece is a bit-exact byte copy of the original
// stream (so the splitter never shifts bits) prefixed with a State
// Propagation Header carrying the skip count (0-7 bits), the first
// macroblock address, the DC and motion-vector predictors, the quantiser
// scale, and the previous macroblock's motion summary for skipped-B
// reconstruction. Sub-pictures deliberately do not conform to MPEG-2 syntax.
package subpic

import (
	"encoding/binary"
	"fmt"

	"tiledwall/internal/mpeg2"
)

// SPH is the State Propagation Header of one partial-slice piece.
type SPH struct {
	SkipBits     uint8 // 0..7 bits to skip at the start of the payload
	FirstAddr    int32 // macroblock address of the first coded macroblock
	CodedCount   int32 // coded macroblocks in the payload
	LeadingSkip  int32 // skipped macroblocks owned by this piece before FirstAddr
	TrailingSkip int32 // skipped macroblocks owned by this piece after the last coded one

	QuantCode uint8
	DCPred    [3]int32
	PMV       [2][2][2]int32

	// Prev summarises the motion of the macroblock that precedes FirstAddr
	// in the original slice (possibly decoded by another tile); skipped B
	// macroblocks in LeadingSkip inherit it.
	Prev mpeg2.MotionInfo
}

// State returns the prediction state encoded in the header.
func (h *SPH) State() mpeg2.PredState {
	return mpeg2.PredState{DCPred: h.DCPred, PMV: h.PMV, QuantCode: int(h.QuantCode)}
}

// SetState stores a prediction state into the header.
func (h *SPH) SetState(s mpeg2.PredState) {
	h.DCPred = s.DCPred
	h.PMV = s.PMV
	h.QuantCode = uint8(s.QuantCode)
}

// Piece is one partial slice: header plus raw stream bytes.
type Piece struct {
	SPH
	Payload []byte
}

// MEIKind distinguishes instruction directions.
type MEIKind uint8

const (
	// MEISend instructs the decoder to ship one of its reference
	// macroblocks to Peer before decoding the picture.
	MEISend MEIKind = iota
	// MEIRecv instructs the decoder to expect a reference macroblock from
	// Peer and place it in its halo before motion compensation needs it.
	MEIRecv
)

// RefSel selects which reference picture an exchanged macroblock comes from.
type RefSel uint8

const (
	// RefFwd is the forward reference (the older anchor for B pictures, the
	// only anchor for P pictures).
	RefFwd RefSel = iota
	// RefBwd is the backward reference (B pictures only).
	RefBwd
)

// MEIInstr is one macroblock exchange instruction.
type MEIInstr struct {
	Kind     MEIKind
	Ref      RefSel
	MBX, MBY uint16
	Peer     uint16 // decoder tile index
}

// PicInfo carries the picture-level parameters a tile decoder needs,
// flattened from the picture header and coding extension.
type PicInfo struct {
	Index       int32 // decode-order picture index
	TemporalRef int32
	PicType     uint8
	FCode       [2][2]uint8
	Flags       uint8 // bit0 QScaleType, bit1 IntraVLCFormat, bit2 AlternateScan
	DCPrecision uint8
}

const (
	flagQScaleType = 1 << iota
	flagIntraVLC
	flagAltScan
)

// FromHeader flattens a picture header.
func (p *PicInfo) FromHeader(index int, ph *mpeg2.PictureHeader) {
	p.Index = int32(index)
	p.TemporalRef = int32(ph.TemporalRef)
	p.PicType = uint8(ph.PicType)
	for s := 0; s < 2; s++ {
		for t := 0; t < 2; t++ {
			p.FCode[s][t] = uint8(ph.FCode[s][t])
		}
	}
	p.Flags = 0
	if ph.QScaleType {
		p.Flags |= flagQScaleType
	}
	if ph.IntraVLCFormat {
		p.Flags |= flagIntraVLC
	}
	if ph.AlternateScan {
		p.Flags |= flagAltScan
	}
	p.DCPrecision = uint8(ph.IntraDCPrecision)
}

// Header reconstitutes a picture header (frame picture, frame prediction).
func (p *PicInfo) Header() *mpeg2.PictureHeader {
	ph := new(mpeg2.PictureHeader)
	p.HeaderInto(ph)
	return ph
}

// HeaderInto reconstitutes the picture header into ph, overwriting every
// field; pooled decode paths reuse one header value across pictures.
func (p *PicInfo) HeaderInto(ph *mpeg2.PictureHeader) {
	*ph = mpeg2.PictureHeader{
		TemporalRef:      int(p.TemporalRef),
		PicType:          mpeg2.PictureType(p.PicType),
		VBVDelay:         0xFFFF,
		IntraDCPrecision: int(p.DCPrecision),
		PictureStructure: 3,
		FramePredDCT:     true,
		QScaleType:       p.Flags&flagQScaleType != 0,
		IntraVLCFormat:   p.Flags&flagIntraVLC != 0,
		AlternateScan:    p.Flags&flagAltScan != 0,
		ProgressiveFrame: true,
	}
	for s := 0; s < 2; s++ {
		for t := 0; t < 2; t++ {
			ph.FCode[s][t] = int(p.FCode[s][t])
		}
	}
}

// SubPicture is everything one decoder receives for one picture.
type SubPicture struct {
	Pic    PicInfo
	Pieces []Piece
	MEI    []MEIInstr
	// Final marks an end-of-stream message; no pieces follow.
	Final bool
	// Skipped marks an ROI skip marker: the session's subscription does not
	// materialize this picture on this tile. The decoder acks it, advances
	// its picture frontier, and does nothing else — no pieces, no MEI, no
	// reference rotation. Skip markers keep the nd-ack gate arithmetic of
	// the ANID protocol intact while costing ~20 bytes on the wire.
	Skipped bool
	// NoEmit marks a materialized-but-unwatched picture: the decoder decodes
	// it in full (it may feed references or MEI sends) but must not emit the
	// frame to the display path.
	NoEmit bool
}

// Wire flag bits of byte 0. Final stays the value 1 it has always been, so
// a full-subscription sub-picture is byte-identical to the pre-ROI format.
const (
	spFlagFinal   = 1 << 0
	spFlagSkipped = 1 << 1
	spFlagNoEmit  = 1 << 2
)

// --- Binary serialisation ---------------------------------------------------
//
// The wire format is what the cluster fabric counts for bandwidth, so it is
// a compact hand-rolled little-endian encoding, not gob. The paper reports
// splitter send bandwidth exceeding receive bandwidth by ~20% because of the
// SPH headers; keeping the header small preserves that ratio.

// The SPH is packed tightly — DC predictors fit 12 bits, motion values fit
// 16 — because its size is what drives the ~20% splitter send overhead the
// paper reports; a bloated header would distort Figure 9's shape.
const sphWireSize = 1 + 4 + 2 + 2 + 2 + 1 + 3*2 + 8*2 + 1 + 4*2 // = 43

func put32(b []byte, v int32) []byte { return binary.LittleEndian.AppendUint32(b, uint32(v)) }
func put16(b []byte, v int32) []byte { return binary.LittleEndian.AppendUint16(b, uint16(int16(v))) }

func (h *SPH) append(b []byte) []byte {
	b = append(b, h.SkipBits)
	b = put32(b, h.FirstAddr)
	b = put16(b, h.CodedCount)
	b = put16(b, h.LeadingSkip)
	b = put16(b, h.TrailingSkip)
	b = append(b, h.QuantCode)
	for _, v := range h.DCPred {
		b = put16(b, v)
	}
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			for t := 0; t < 2; t++ {
				b = put16(b, h.PMV[r][s][t])
			}
		}
	}
	var mf uint8
	if h.Prev.Fwd {
		mf |= 1
	}
	if h.Prev.Bwd {
		mf |= 2
	}
	b = append(b, mf)
	b = put16(b, h.Prev.MVFwd[0])
	b = put16(b, h.Prev.MVFwd[1])
	b = put16(b, h.Prev.MVBwd[0])
	b = put16(b, h.Prev.MVBwd[1])
	return b
}

func (h *SPH) parse(b []byte) ([]byte, error) {
	if len(b) < sphWireSize {
		return nil, fmt.Errorf("subpic: truncated SPH (%d bytes)", len(b))
	}
	g32 := func() int32 {
		v := int32(binary.LittleEndian.Uint32(b))
		b = b[4:]
		return v
	}
	g16 := func() int32 {
		v := int32(int16(binary.LittleEndian.Uint16(b)))
		b = b[2:]
		return v
	}
	h.SkipBits = b[0]
	b = b[1:]
	h.FirstAddr = g32()
	h.CodedCount = g16()
	h.LeadingSkip = g16()
	h.TrailingSkip = g16()
	h.QuantCode = b[0]
	b = b[1:]
	for i := range h.DCPred {
		h.DCPred[i] = g16()
	}
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			for t := 0; t < 2; t++ {
				h.PMV[r][s][t] = g16()
			}
		}
	}
	mf := b[0]
	b = b[1:]
	h.Prev.Fwd = mf&1 != 0
	h.Prev.Bwd = mf&2 != 0
	h.Prev.MVFwd[0] = g16()
	h.Prev.MVFwd[1] = g16()
	h.Prev.MVBwd[0] = g16()
	h.Prev.MVBwd[1] = g16()
	return b, nil
}

// WireSize returns the exact number of bytes Marshal/AppendTo produce, so a
// sender can draw a right-sized slab from a pool before encoding.
func (sp *SubPicture) WireSize() int {
	size := 1 + 4 + 4 + 1 + 4 + 1 + 1 + 4 + 4
	for i := range sp.Pieces {
		size += sphWireSize + 4 + len(sp.Pieces[i].Payload)
	}
	size += len(sp.MEI) * 8
	return size
}

// Marshal serialises the sub-picture.
func (sp *SubPicture) Marshal() []byte {
	return sp.AppendTo(make([]byte, 0, sp.WireSize()))
}

// AppendTo serialises the sub-picture onto b and returns the extended slice.
// With cap(b)-len(b) >= WireSize() it performs no allocation.
func (sp *SubPicture) AppendTo(b []byte) []byte {
	var flags byte
	if sp.Final {
		flags |= spFlagFinal
	}
	if sp.Skipped {
		flags |= spFlagSkipped
	}
	if sp.NoEmit {
		flags |= spFlagNoEmit
	}
	b = append(b, flags)
	b = put32(b, sp.Pic.Index)
	b = put32(b, sp.Pic.TemporalRef)
	b = append(b, sp.Pic.PicType)
	b = append(b, sp.Pic.FCode[0][0], sp.Pic.FCode[0][1], sp.Pic.FCode[1][0], sp.Pic.FCode[1][1])
	b = append(b, sp.Pic.Flags, sp.Pic.DCPrecision)

	b = put32(b, int32(len(sp.MEI)))
	for _, in := range sp.MEI {
		b = append(b, byte(in.Kind), byte(in.Ref))
		b = binary.LittleEndian.AppendUint16(b, in.MBX)
		b = binary.LittleEndian.AppendUint16(b, in.MBY)
		b = binary.LittleEndian.AppendUint16(b, in.Peer)
	}

	b = put32(b, int32(len(sp.Pieces)))
	for i := range sp.Pieces {
		p := &sp.Pieces[i]
		b = p.SPH.append(b)
		b = put32(b, int32(len(p.Payload)))
		b = append(b, p.Payload...)
	}
	return b
}

// Unmarshal parses a serialised sub-picture.
func Unmarshal(b []byte) (*SubPicture, error) {
	sp := &SubPicture{}
	if err := UnmarshalInto(sp, b); err != nil {
		return nil, err
	}
	return sp, nil
}

// UnmarshalInto parses a serialised sub-picture into sp, reusing the MEI and
// Pieces storage already hanging off it. Piece payloads alias b — sp is
// valid only as long as b is. On error sp is left in an unspecified state.
func UnmarshalInto(sp *SubPicture, b []byte) error {
	need := func(n int) error {
		if len(b) < n {
			return fmt.Errorf("subpic: truncated message")
		}
		return nil
	}
	if err := need(1 + 4 + 4 + 1 + 4 + 2 + 4); err != nil {
		return err
	}
	sp.Final = b[0]&spFlagFinal != 0
	sp.Skipped = b[0]&spFlagSkipped != 0
	sp.NoEmit = b[0]&spFlagNoEmit != 0
	b = b[1:]
	g32 := func() int32 {
		v := int32(binary.LittleEndian.Uint32(b))
		b = b[4:]
		return v
	}
	sp.Pic.Index = g32()
	sp.Pic.TemporalRef = g32()
	sp.Pic.PicType = b[0]
	sp.Pic.FCode[0][0], sp.Pic.FCode[0][1] = b[1], b[2]
	sp.Pic.FCode[1][0], sp.Pic.FCode[1][1] = b[3], b[4]
	sp.Pic.Flags = b[5]
	sp.Pic.DCPrecision = b[6]
	b = b[7:]

	nMEI := int(g32())
	if nMEI < 0 || nMEI > 1<<24 {
		return fmt.Errorf("subpic: implausible MEI count %d", nMEI)
	}
	if err := need(nMEI * 8); err != nil {
		return err
	}
	if cap(sp.MEI) >= nMEI {
		sp.MEI = sp.MEI[:nMEI]
	} else {
		sp.MEI = make([]MEIInstr, nMEI)
	}
	for i := range sp.MEI {
		sp.MEI[i] = MEIInstr{
			Kind: MEIKind(b[0]),
			Ref:  RefSel(b[1]),
			MBX:  binary.LittleEndian.Uint16(b[2:]),
			MBY:  binary.LittleEndian.Uint16(b[4:]),
			Peer: binary.LittleEndian.Uint16(b[6:]),
		}
		b = b[8:]
	}

	if err := need(4); err != nil {
		return err
	}
	nPieces := int(g32())
	// Bound the count by the bytes actually present (each piece costs at
	// least an SPH plus a payload length) before allocating: a hostile
	// 4-byte count must not be able to demand a multi-gigabyte zeroed
	// slice from a truncated message.
	if nPieces < 0 || nPieces > len(b)/(sphWireSize+4) {
		return fmt.Errorf("subpic: implausible piece count %d for %d payload bytes", nPieces, len(b))
	}
	if cap(sp.Pieces) >= nPieces {
		sp.Pieces = sp.Pieces[:nPieces]
	} else {
		sp.Pieces = make([]Piece, nPieces)
	}
	for i := range sp.Pieces {
		p := &sp.Pieces[i]
		rest, err := p.SPH.parse(b)
		if err != nil {
			return err
		}
		b = rest
		if err := need(4); err != nil {
			return err
		}
		n := int(g32())
		if n < 0 || n > len(b) {
			return fmt.Errorf("subpic: piece payload length %d exceeds message", n)
		}
		p.Payload = b[:n:n]
		b = b[n:]
	}
	return nil
}
