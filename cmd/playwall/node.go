// Multi-process node mode: each playwall process hosts one role of the wall
// (root, the splitter bank, or the decoder bank) and all traffic crosses TCP
// through the root's hub — the paper's PC-cluster deployment, with -role all
// as the single-process form on the same sockets. Processes may start in any
// order; workers retry their dial until the hub is up.
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"sort"
	"sync"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/service"
	"tiledwall/internal/system"
)

// tileDigest accumulates an order-sensitive FNV-1a digest per (session, tile)
// over every displayed tile frame this process hosts. Two runs of the same
// stream on the same geometry — whatever the process layout — must print
// identical digest lines; the CI smoke test diffs them.
type tileDigest struct {
	mu     sync.Mutex
	sums   map[[2]int]*fnvTile
	sorted []string
}

type fnvTile struct {
	h      uint64
	frames int
}

func newTileDigest() *tileDigest { return &tileDigest{sums: map[[2]int]*fnvTile{}} }

func (d *tileDigest) onFrame(session, displayIdx, tile int, buf *mpeg2.PixelBuf) {
	h := fnv.New64a()
	var idx [4]byte
	idx[0], idx[1], idx[2], idx[3] = byte(displayIdx>>24), byte(displayIdx>>16), byte(displayIdx>>8), byte(displayIdx)
	h.Write(idx[:])
	h.Write(buf.Y)
	h.Write(buf.Cb)
	h.Write(buf.Cr)
	d.mu.Lock()
	ft := d.sums[[2]int{session, tile}]
	if ft == nil {
		ft = &fnvTile{h: 14695981039346656037}
		d.sums[[2]int{session, tile}] = ft
	}
	// Fold the frame digest in order-sensitively (FNV-1a step per byte of the
	// frame hash), so reordered or dropped frames change the tile digest.
	fh := h.Sum64()
	for i := 0; i < 8; i++ {
		ft.h ^= uint64(byte(fh >> (8 * i)))
		ft.h *= 1099511628211
	}
	ft.frames++
	d.mu.Unlock()
}

func (d *tileDigest) print() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for key, ft := range d.sums {
		d.sorted = append(d.sorted,
			fmt.Sprintf("tile-digest session=%d tile=%d frames=%d digest=%016x", key[0], key[1], ft.frames, ft.h))
	}
	sort.Strings(d.sorted)
	for _, line := range d.sorted {
		fmt.Println(line)
	}
}

// nodeSets returns the wall's node ids grouped by role.
func nodeSets(cfg system.Config) (all, splitters, decoders []int) {
	nn := cfg.NumNodes()
	for id := 0; id < nn; id++ {
		all = append(all, id)
	}
	for i := 0; i < cfg.K; i++ {
		splitters = append(splitters, 1+i)
	}
	for t := 0; t < cfg.M*cfg.N; t++ {
		decoders = append(decoders, 1+cfg.K+t)
	}
	return all, splitters, decoders
}

// runNode runs one process of a multi-process wall. The root (and "all")
// listens and feeds sessions; splitter and decoder processes dial and serve
// until the root's clean shutdown or a transport abort.
func runNode(role, listen, connect string, cfg system.Config, stall time.Duration, digest bool, data []byte, sessions int) {
	all, splitters, decoders := nodeSets(cfg)
	var local []int
	hostsDecoders := false
	switch role {
	case "all":
		local, hostsDecoders = all, true
	case "root":
		local = []int{0}
	case "splitter":
		if cfg.K == 0 {
			log.Fatal("playwall: a one-level wall (-k 0) has no splitter role; the root splits")
		}
		local = splitters
	case "decoder":
		local, hostsDecoders = decoders, true
	default:
		log.Fatalf("playwall: unknown -role %q (want root, splitter, decoder or all)", role)
	}

	tcfg := cluster.TCPConfig{
		NumNodes:     cfg.NumNodes(),
		LocalNodes:   local,
		Grid:         cluster.Grid{K: cfg.K, M: cfg.M, N: cfg.N, Overlap: cfg.Overlap},
		StallTimeout: stall,
	}
	// The service is built after the transport, so link-state events route
	// through an indirection armed once the wall exists (cf. NewResidentWall).
	var linkSink struct {
		mu sync.Mutex
		w  *service.Wall
	}
	if cfg.Recovery.Enabled {
		tcfg.Recoverable = true
		tcfg.OnLinkState = func(node int, up bool) {
			linkSink.mu.Lock()
			w := linkSink.w
			linkSink.mu.Unlock()
			if w != nil {
				w.NoteLink(node, up)
			}
		}
	}
	var (
		tr  *cluster.TCPTransport
		err error
	)
	if role == "root" || role == "all" {
		tr, err = cluster.ListenTCP(listen, tcfg)
		if err == nil {
			fmt.Printf("playwall %s: hub listening on %s (%d nodes, this process hosts %d)\n",
				role, tr.Addr(), cfg.NumNodes(), len(local))
		}
	} else {
		tr, err = cluster.DialTCP(connect, tcfg)
		if err == nil {
			fmt.Printf("playwall %s: connected to %s (hosting nodes %v)\n", role, connect, local)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	scfg := service.Config{
		K: cfg.K, M: cfg.M, N: cfg.N, Overlap: cfg.Overlap,
		Pooled:       cfg.Pooled,
		SplitWorkers: cfg.SplitWorkers,
		Transport:    tr,
		LocalNodes:   local,
		MaxSessions:  sessions,
		Recovery:     cfg.Recovery,
		Chaos:        cfg.Chaos,
	}
	var dig *tileDigest
	if digest && hostsDecoders {
		dig = newTileDigest()
		scfg.OnTileFrame = dig.onFrame
	}
	w, err := service.New(scfg)
	if err != nil {
		tr.Abort(err)
		log.Fatal(err)
	}
	linkSink.mu.Lock()
	linkSink.w = w
	linkSink.mu.Unlock()

	if role == "root" || role == "all" {
		runNodeRoot(w, tr, data, sessions)
	} else {
		if err := w.Wait(); err != nil {
			log.Fatalf("playwall %s: pipeline failed: %v", role, err)
		}
		// Recovery counters are per-process: a kill or a link loss repaired
		// here is visible here, not at the root.
		if rec := w.Recovery(); !rec.Zero() {
			fmt.Printf("playwall %s recovery: %s, health %v\n", role, rec, w.Health())
		}
	}
	if cerr := w.Close(); cerr != nil {
		log.Fatalf("playwall %s: %v", role, cerr)
	}
	tr.Shutdown()
	if dig != nil {
		dig.print()
	}
}

// runNodeRoot feeds the stream through the wall as `sessions` sequential
// sessions and reports per-session throughput. Decoder processes print their
// tile digests as the clean shutdown reaches them.
func runNodeRoot(w *service.Wall, tr *cluster.TCPTransport, data []byte, sessions int) {
	for s := 0; s < sessions; s++ {
		start := time.Now()
		sess, err := w.Open(fmt.Sprintf("node-%d", s))
		if err != nil {
			log.Fatal(err)
		}
		if err := sess.Feed(data); err != nil {
			sess.Close()
			log.Fatal(err)
		}
		res, err := sess.Close()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("session %d: %d pictures in %v (%.1f fps wall clock)\n",
			s, res.Throughput.Pictures, elapsed.Round(time.Millisecond),
			float64(res.Throughput.Pictures)/elapsed.Seconds())
	}
	st := tr.Stats()
	var sent, recv int64
	for _, s := range st {
		sent += s.BytesSent
		recv += s.BytesRecv
	}
	fmt.Printf("wire traffic: %d bytes sent, %d received across %d nodes\n", sent, recv, len(st))
	if rec := w.Recovery(); !rec.Zero() {
		fmt.Printf("recovery: %s, health %v\n", rec, w.Health())
	}
}
