package encoder

import (
	"testing"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/video"
)

func encodeScene(t *testing.T, kind video.SceneKind, cfg Config, frames int) ([]byte, []*mpeg2.PixelBuf, *Encoder) {
	t.Helper()
	src := video.NewSource(kind, cfg.Width, cfg.Height, 7)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var orig []*mpeg2.PixelBuf
	for i := 0; i < frames; i++ {
		f := src.Frame(i)
		orig = append(orig, f)
		if err := e.Push(f); err != nil {
			t.Fatalf("Push frame %d: %v", i, err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e.Bytes(), orig, e
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := Config{Width: 128, Height: 96, GOPSize: 6, BSpacing: 3, InitialQScale: 4}
	data, orig, _ := encodeScene(t, video.SceneFishTank, cfg, 12)

	dec, err := mpeg2.NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	pics, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pics) != len(orig) {
		t.Fatalf("decoded %d pictures, want %d", len(pics), len(orig))
	}
	for i, p := range pics {
		psnr, err := video.PSNR(orig[i], p.Buf)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < 28 {
			t.Errorf("frame %d (%s): PSNR %.1f dB too low", i, p.Pic.PicType, psnr)
		}
	}
}

// TestEncodeDecodeAllScenes covers every generator and several coding-tool
// combinations.
func TestEncodeDecodeAllScenes(t *testing.T) {
	kinds := []video.SceneKind{video.SceneFilm, video.SceneAnimation, video.SceneFishTank, video.SceneBroadcast, video.SceneFlyby}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Width: 96, Height: 64, GOPSize: 6, BSpacing: 2, InitialQScale: 6}
			data, orig, _ := encodeScene(t, kind, cfg, 8)
			dec, err := mpeg2.NewDecoder(data)
			if err != nil {
				t.Fatal(err)
			}
			pics, err := dec.DecodeAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(pics) != len(orig) {
				t.Fatalf("decoded %d pictures, want %d", len(pics), len(orig))
			}
			for i, p := range pics {
				psnr, _ := video.PSNR(orig[i], p.Buf)
				if psnr < 24 {
					t.Errorf("frame %d: PSNR %.1f dB too low", i, psnr)
				}
			}
		})
	}
}

func TestEncodeCodingTools(t *testing.T) {
	type tc struct {
		name string
		mod  func(*Config)
	}
	cases := []tc{
		{"intra_vlc_format", func(c *Config) { c.IntraVLCFormat = true }},
		{"alternate_scan", func(c *Config) { c.AlternateScan = true }},
		{"nonlinear_qscale", func(c *Config) { c.QScaleType = true }},
		{"adaptive_quant", func(c *Config) { c.AdaptiveQuant = true }},
		{"dc_precision_2", func(c *Config) { c.IntraDCPrecision = 2 }},
		{"no_b_frames", func(c *Config) { c.BSpacing = 1; c.GOPSize = 6 }},
		{"small_fcode", func(c *Config) { c.FCode = 1; c.SearchRange = 3 }},
		{"everything", func(c *Config) {
			c.IntraVLCFormat = true
			c.AlternateScan = true
			c.QScaleType = true
			c.AdaptiveQuant = true
			c.IntraDCPrecision = 1
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Width: 96, Height: 64, GOPSize: 6, BSpacing: 3, InitialQScale: 5}
			c.mod(&cfg)
			data, orig, _ := encodeScene(t, video.SceneFilm, cfg, 7)
			dec, err := mpeg2.NewDecoder(data)
			if err != nil {
				t.Fatal(err)
			}
			pics, err := dec.DecodeAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(pics) != len(orig) {
				t.Fatalf("decoded %d pictures, want %d", len(pics), len(orig))
			}
			for i, p := range pics {
				psnr, _ := video.PSNR(orig[i], p.Buf)
				if psnr < 22 {
					t.Errorf("frame %d: PSNR %.1f dB", i, psnr)
				}
			}
		})
	}
}

func TestRateControlConverges(t *testing.T) {
	cfg := Config{Width: 128, Height: 96, GOPSize: 6, BSpacing: 3, TargetBPP: 0.4, InitialQScale: 20}
	data, orig, e := encodeScene(t, video.SceneFilm, cfg, 24)
	gotBPP := float64(len(data)*8) / float64(len(orig)*cfg.Width*cfg.Height)
	if gotBPP < cfg.TargetBPP/4 || gotBPP > cfg.TargetBPP*4 {
		t.Errorf("achieved %.3f bpp, target %.3f (off by more than 4x)", gotBPP, cfg.TargetBPP)
	}
	if e.Stats().Pictures != 24 {
		t.Errorf("stats count %d pictures, want 24", e.Stats().Pictures)
	}
}

func TestEncoderStreamStructure(t *testing.T) {
	cfg := Config{Width: 64, Height: 48, GOPSize: 4, BSpacing: 2, InitialQScale: 8}
	data, _, _ := encodeScene(t, video.SceneAnimation, cfg, 8)
	s, err := mpeg2.ParseStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seq.Width != 64 || s.Seq.Height != 48 {
		t.Fatalf("sequence %dx%d", s.Seq.Width, s.Seq.Height)
	}
	if !s.Seq.Progressive {
		t.Error("expected progressive sequence")
	}
	if len(s.Pictures) != 8 {
		t.Fatalf("%d picture units, want 8", len(s.Pictures))
	}
	// Decode order for display 0..7 with N=4, M=2: I0 P2 B1 I4 B3 P6 B5 (+tail)
	wantTypes := []mpeg2.PictureType{
		mpeg2.PictureI, mpeg2.PictureP, mpeg2.PictureB, mpeg2.PictureI,
		mpeg2.PictureB, mpeg2.PictureP, mpeg2.PictureB, mpeg2.PictureP,
	}
	for i, unit := range s.Pictures {
		got, err := mpeg2.PeekPictureType(unit)
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		if got != wantTypes[i] {
			t.Errorf("unit %d type %s, want %s", i, got, wantTypes[i])
		}
	}
}

func TestEncoderRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Width: 100, Height: 96},                         // not multiple of 16
		{Width: 96, Height: 96, GOPSize: 7, BSpacing: 3}, // N not multiple of M
		{Width: 96, Height: 96, FCode: 12},
		{Width: 96, Height: 96, IntraDCPrecision: 5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestEncoderSkipsStaticContent(t *testing.T) {
	// A completely static scene should produce skipped macroblocks in P/B
	// pictures.
	cfg := Config{Width: 128, Height: 96, GOPSize: 6, BSpacing: 3, InitialQScale: 8}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := video.NewSource(video.SceneFishTank, 128, 96, 3).Frame(0)
	for i := 0; i < 6; i++ {
		if err := e.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().SkippedMBs == 0 {
		t.Error("static content produced no skipped macroblocks")
	}
	// And the reconstruction must still be exact-ish.
	dec, err := mpeg2.NewDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	pics, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pics {
		if psnr, _ := video.PSNR(f, p.Buf); psnr < 30 {
			t.Errorf("static frame %d PSNR %.1f", i, psnr)
		}
	}
}

func BenchmarkEncodeCIF(b *testing.B) {
	cfg := Config{Width: 352, Height: 288, GOPSize: 12, BSpacing: 3, InitialQScale: 8}
	src := video.NewSource(video.SceneFilm, cfg.Width, cfg.Height, 1)
	frames := make([]*mpeg2.PixelBuf, 12)
	for i := range frames {
		frames[i] = src.Frame(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeFrames(cfg, frames); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frames) * cfg.Width * cfg.Height * 3 / 2))
}
