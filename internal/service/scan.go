// Package service implements the resident wall: the fabric, root, k
// splitters and m×n tile decoders are built once and stay alive across
// streams. Sessions are opened with Wall.Open, fed incrementally (and
// concurrently with other sessions) with Session.Feed, and closed with a
// graceful drain. The data-plane protocol is exactly the batch pipeline's —
// the root serialises every session into one global picture order, so the
// ANID/NSID ack-redirect chain and its deadlock-freedom argument carry over
// unchanged, and a single session's output is byte-identical to a batch run.
package service

import (
	"tiledwall/internal/bits"
)

// unitScanner is the incremental picture-unit scanner behind Session.Feed.
// It reproduces the batch root's start-code scan exactly: a picture unit
// runs from a picture start code up to (not including) the next picture,
// GOP, sequence header or sequence end code; bytes between GOPs that belong
// to no picture are skipped. The bytes before the first picture start code
// are the stream's header prefix, handed to onHeader once.
//
// Callback slices alias the scanner's internal buffer and are only valid
// during the call.
type unitScanner struct {
	buf        []byte
	picStart   int // offset in buf of the open picture unit (-1 = none)
	scanned    int // resume offset for the start-code scan
	headerDone bool
}

func newUnitScanner() unitScanner { return unitScanner{picStart: -1} }

// feed appends chunk and emits every picture unit completed by it.
func (sc *unitScanner) feed(chunk []byte, onHeader, onUnit func([]byte) error) error {
	sc.buf = append(sc.buf, chunk...)
	pos := sc.scanned
	for {
		off := bits.NextStartCode(sc.buf, pos)
		if off < 0 {
			break
		}
		code := sc.buf[off+3]
		switch {
		case code == bits.PictureStartCode:
			if !sc.headerDone {
				sc.headerDone = true
				if err := onHeader(sc.buf[:off]); err != nil {
					return err
				}
			} else if sc.picStart >= 0 {
				if err := onUnit(sc.buf[sc.picStart:off]); err != nil {
					return err
				}
			}
			sc.picStart = off
		case code == bits.GroupStartCode, code == bits.SequenceHeaderCod, code == bits.SequenceEndCode:
			if sc.picStart >= 0 {
				if err := onUnit(sc.buf[sc.picStart:off]); err != nil {
					return err
				}
				sc.picStart = -1
			}
		}
		pos = off + 4
	}
	// A start-code prefix may straddle the chunk boundary: NextStartCode
	// needs the code byte in bounds, so the last three bytes stay unscanned
	// until more data arrives.
	sc.scanned = len(sc.buf) - 3
	if sc.scanned < pos {
		sc.scanned = pos
	}
	if sc.scanned < 0 {
		sc.scanned = 0
	}
	sc.compact()
	return nil
}

// flush emits the trailing picture unit, if one is open, at end of stream.
func (sc *unitScanner) flush(onUnit func([]byte) error) error {
	if sc.picStart < 0 {
		return nil
	}
	u := sc.buf[sc.picStart:]
	sc.picStart = -1
	sc.buf = sc.buf[:0]
	sc.scanned = 0
	return onUnit(u)
}

// compact drops consumed bytes so the buffer holds at most the open picture
// unit (or the growing header prefix) plus the unscanned tail.
func (sc *unitScanner) compact() {
	var from int
	switch {
	case !sc.headerDone:
		return // the whole prefix is still needed for onHeader
	case sc.picStart >= 0:
		from = sc.picStart
	default:
		from = sc.scanned
	}
	if from <= 0 {
		return
	}
	sc.buf = append(sc.buf[:0], sc.buf[from:]...)
	if sc.picStart >= 0 {
		sc.picStart -= from
	}
	if sc.scanned -= from; sc.scanned < 0 {
		sc.scanned = 0
	}
}
