package mpeg2

import (
	"fmt"

	"tiledwall/internal/bits"
)

// PictureContext bundles the per-picture parameters needed to parse slices.
// It is shared by the serial decoder, the second-level splitter and the tile
// decoders.
type PictureContext struct {
	Seq *SequenceHeader
	Pic *PictureHeader

	MBW, MBH int // picture size in macroblocks

	scan     *[64]int
	intraDCT *dctTable
}

// NewPictureContext validates pic against the supported subset and returns a
// context.
func NewPictureContext(seq *SequenceHeader, pic *PictureHeader) (*PictureContext, error) {
	ctx := new(PictureContext)
	if err := ctx.Init(seq, pic); err != nil {
		return nil, err
	}
	return ctx, nil
}

// Init (re)initialises the context in place for a new picture, so pooled
// decode paths can keep one PictureContext per goroutine across pictures.
func (c *PictureContext) Init(seq *SequenceHeader, pic *PictureHeader) error {
	if seq == nil || pic == nil {
		return syntaxErrf("nil sequence or picture header")
	}
	if pic.PictureStructure != 3 {
		return fmt.Errorf("%w: field pictures", errUnsupported)
	}
	// Headers reconstituted from wire messages (subpic.PicInfo) may carry
	// arbitrary bytes; validate everything the decode path indexes or shifts
	// with.
	if pic.PicType < PictureI || pic.PicType > PictureB {
		return syntaxErrf("picture coding type %d", int(pic.PicType))
	}
	if pic.IntraDCPrecision < 0 || pic.IntraDCPrecision > 3 {
		return syntaxErrf("intra_dc_precision %d", pic.IntraDCPrecision)
	}
	*c = PictureContext{
		Seq:  seq,
		Pic:  pic,
		MBW:  seq.MBWidth(),
		MBH:  seq.MBHeight(),
		scan: ScanOrder(pic.AlternateScan),
	}
	if pic.IntraVLCFormat {
		c.intraDCT = dctTableB15
	} else {
		c.intraDCT = dctTableB14
	}
	return nil
}

func (c *PictureContext) mbTypeTable() *vlcTable {
	switch c.Pic.PicType {
	case PictureI:
		return mbTypeITable
	case PictureP:
		return mbTypePTable
	default:
		return mbTypeBTable
	}
}

// SliceDecoder parses the macroblocks of one (possibly partial) slice.
//
// A full slice is created with NewSliceDecoder, positioned just after the
// 32-bit slice start code; it ends when the next start code is reached. A
// partial slice (a sub-picture piece) is created with NewPartialSliceDecoder
// seeded from SPH state; it ends after a known number of coded macroblocks.
type SliceDecoder struct {
	ctx *PictureContext
	r   *bits.Reader

	state      PredState
	prevMotion MotionInfo

	mbAddr int // address of the previous coded macroblock
	first  bool

	// Partial-slice mode.
	partial       bool
	remaining     int // coded macroblocks left
	firstAddr     int // address override for the first macroblock
	parseOnly     bool
	scratchBlocks [6][64]int32
}

// NewSliceDecoder starts a full slice. r must be positioned immediately
// after the slice start code; verticalPos is the 1-based macroblock row from
// the start code value (plus slice_vertical_position_extension when the
// picture is taller than 2800 lines, which the caller handles by passing the
// combined value).
func NewSliceDecoder(ctx *PictureContext, r *bits.Reader, verticalPos int) (*SliceDecoder, error) {
	d := new(SliceDecoder)
	if err := d.ResetFull(ctx, r, verticalPos); err != nil {
		return nil, err
	}
	return d, nil
}

// ResetFull re-arms the decoder for a full slice, reusing its scratch block
// storage. Semantics match NewSliceDecoder.
func (d *SliceDecoder) ResetFull(ctx *PictureContext, r *bits.Reader, verticalPos int) error {
	if verticalPos < 1 || verticalPos > ctx.MBH {
		return syntaxErrf("slice vertical position %d of %d", verticalPos, ctx.MBH)
	}
	d.reset(ctx, r)
	d.mbAddr = (verticalPos-1)*ctx.MBW - 1
	d.state.ResetDC(ctx.Pic.IntraDCPrecision)
	d.state.ResetMV()
	d.state.QuantCode = int(r.Read(5))
	if d.state.QuantCode == 0 {
		return syntaxErrf("quantiser_scale_code 0 in slice header")
	}
	// extra_bit_slice / extra_information_slice
	for r.ReadBit() == 1 {
		r.Read(8)
	}
	return streamErr(r.Err())
}

// reset clears everything but the scratch block storage (whose contents are
// never read before being written).
func (d *SliceDecoder) reset(ctx *PictureContext, r *bits.Reader) {
	d.ctx = ctx
	d.r = r
	d.state = PredState{}
	d.prevMotion = MotionInfo{}
	d.mbAddr = 0
	d.first = true
	d.partial = false
	d.remaining = 0
	d.firstAddr = 0
	d.parseOnly = false
}

// NewPartialSliceDecoder starts a partial slice seeded with predictor state
// (from an SPH). r must be positioned at the first macroblock's address
// increment. codedCount macroblocks will be parsed; the first one's address
// is forced to firstAddr regardless of its parsed increment. When parseOnly
// is set, coefficient blocks are parsed but not retained or dequantised.
func NewPartialSliceDecoder(ctx *PictureContext, r *bits.Reader, st PredState, prev MotionInfo, firstAddr, codedCount int) *SliceDecoder {
	d := new(SliceDecoder)
	d.ResetPartial(ctx, r, st, prev, firstAddr, codedCount)
	return d
}

// ResetPartial re-arms the decoder for a partial slice, reusing its scratch
// block storage. Semantics match NewPartialSliceDecoder.
func (d *SliceDecoder) ResetPartial(ctx *PictureContext, r *bits.Reader, st PredState, prev MotionInfo, firstAddr, codedCount int) {
	d.reset(ctx, r)
	d.state = st
	d.prevMotion = prev
	d.partial = true
	d.remaining = codedCount
	d.firstAddr = firstAddr
}

// SetParseOnly disables coefficient retention and dequantisation; used by
// the splitter, which only needs bit boundaries and state snapshots.
func (d *SliceDecoder) SetParseOnly(v bool) { d.parseOnly = v }

// State returns the current prediction state (after the last parsed
// macroblock).
func (d *SliceDecoder) State() PredState { return d.state }

// PrevMotion returns the motion summary of the most recently parsed coded
// macroblock.
func (d *SliceDecoder) PrevMotion() MotionInfo { return d.prevMotion }

// atSliceEnd reports whether the reader has reached the end of the slice: a
// run of at least 23 zero bits marks the byte-stuffing before the next start
// code, and when fewer bits remain (the indexed picture unit excludes the
// following start code) the slice ends once only alignment zeros are left.
func (d *SliceDecoder) atSliceEnd() bool {
	rem := d.r.Remaining()
	if rem == 0 {
		return true
	}
	n := rem
	if n > 23 {
		n = 23
	}
	return d.r.Peek(n) == 0
}

// Next parses the next coded macroblock into mb. It returns false at the end
// of the slice (or when the partial slice's macroblock budget is exhausted).
func (d *SliceDecoder) Next(mb *Macroblock) (bool, error) {
	if d.partial {
		if d.remaining == 0 {
			return false, nil
		}
	} else if d.atSliceEnd() {
		return false, nil
	}

	r := d.r
	pic := d.ctx.Pic
	mb.BitStart = r.BitPos()

	// macroblock_address_increment with escapes.
	increment := 0
	for {
		v, ok := mbAddrIncTable.decode(r)
		if !ok {
			return false, syntaxErrf("bad macroblock_address_increment at bit %d", r.BitPos())
		}
		if v == mbAddrIncEscapeVal {
			increment += 33
			continue
		}
		increment += v
		break
	}

	if d.first && d.partial {
		// The parsed increment belongs to the original picture-wide
		// addressing; the SPH supplies this piece's first address.
		mb.Addr = d.firstAddr
		mb.SkippedBefore = 0
	} else {
		mb.Addr = d.mbAddr + increment
		mb.SkippedBefore = increment - 1
		if d.first {
			// Slice start: "skipped" macroblocks before the first coded one
			// do not exist; the increment only sets the column.
			mb.SkippedBefore = 0
		}
	}
	if mb.Addr < 0 || mb.Addr >= d.ctx.MBW*d.ctx.MBH {
		return false, syntaxErrf("macroblock address %d out of picture", mb.Addr)
	}

	// Skipped-run state resets (§7.6.6): DC predictors always reset; motion
	// predictors reset in P pictures.
	if mb.SkippedBefore > 0 {
		d.state.ResetDC(pic.IntraDCPrecision)
		if pic.PicType == PictureP {
			d.state.ResetMV()
		}
	}

	mb.StateBefore = d.state
	mb.PrevMotion = d.prevMotion

	// macroblock_modes.
	flags, ok := d.ctx.mbTypeTable().decode(r)
	if !ok {
		return false, syntaxErrf("bad macroblock_type at bit %d", r.BitPos())
	}
	mb.Flags = flags
	// frame_pred_frame_dct == 1 is enforced at header parse, so neither
	// frame_motion_type nor dct_type is present.

	if flags&MBQuant != 0 {
		q := int(r.Read(5))
		if q == 0 {
			return false, syntaxErrf("quantiser_scale_code 0 in macroblock")
		}
		d.state.QuantCode = q
	}
	mb.QuantCode = d.state.QuantCode

	// Motion vectors.
	if flags&MBMotionFwd != 0 {
		if err := d.motionVector(0, &mb.MVFwd); err != nil {
			return false, err
		}
	}
	if flags&MBMotionBwd != 0 {
		if err := d.motionVector(1, &mb.MVBwd); err != nil {
			return false, err
		}
	}
	if flags&MBIntra == 0 && flags&MBMotionFwd == 0 && pic.PicType == PictureP {
		// "No MC, coded": zero forward vector, predictors reset.
		d.state.ResetMV()
		mb.MVFwd = [2]int32{}
		mb.Flags |= MBMotionFwd
	}
	if flags&MBIntra != 0 {
		// Intra macroblocks reset the motion predictors (no concealment MVs
		// in the supported subset).
		d.state.ResetMV()
	} else {
		// Non-intra macroblocks reset the DC predictors.
		d.state.ResetDC(pic.IntraDCPrecision)
	}

	// Coded block pattern.
	switch {
	case flags&MBIntra != 0:
		mb.CBP = 63
	case flags&MBPattern != 0:
		cbp, ok := cbpTable.decode(r)
		if !ok {
			return false, syntaxErrf("bad coded_block_pattern at bit %d", r.BitPos())
		}
		if cbp == 0 {
			return false, syntaxErrf("coded_block_pattern 0 in 4:2:0")
		}
		mb.CBP = cbp
	default:
		mb.CBP = 0
	}

	// Blocks. The buffer is owned by the SliceDecoder and reused across
	// macroblocks: callers must consume mb.Blocks before the next call to
	// Next (both the serial decoder and the tile decoders reconstruct each
	// macroblock immediately).
	blocks := &d.scratchBlocks
	if d.parseOnly {
		mb.Blocks = nil
	} else {
		mb.Blocks = blocks
	}
	for i := 0; i < 6; i++ {
		mb.ACMask[i] = 0
		if mb.CBP&(1<<uint(5-i)) == 0 {
			continue
		}
		blk := &blocks[i]
		if !d.parseOnly {
			*blk = [64]int32{}
		}
		var mask uint8
		var err error
		if flags&MBIntra != 0 {
			mask, err = d.intraBlock(i, blk)
		} else {
			mask, err = d.nonIntraBlock(blk)
		}
		if err != nil {
			return false, err
		}
		mb.ACMask[i] = mask
	}

	mb.BitEnd = r.BitPos()
	d.mbAddr = mb.Addr
	d.prevMotion = mb.Motion()
	d.first = false
	if d.partial {
		d.remaining--
	}
	return true, streamErr(r.Err())
}

// motionVector decodes the motion vector for direction s (0 fwd, 1 bwd)
// under frame prediction and reconstructs it against the predictors.
func (d *SliceDecoder) motionVector(s int, out *[2]int32) error {
	pic := d.ctx.Pic
	for t := 0; t < 2; t++ {
		fcode := pic.FCode[s][t]
		if fcode < 1 || fcode > 9 {
			return syntaxErrf("f_code[%d][%d]=%d out of range", s, t, fcode)
		}
		mag, ok := motionCodeTable.decode(d.r)
		if !ok {
			return syntaxErrf("bad motion_code at bit %d", d.r.BitPos())
		}
		var delta int32
		if mag != 0 {
			neg := d.r.ReadBit() == 1
			rSize := uint(fcode - 1)
			f := int32(1) << rSize
			residual := int32(0)
			if fcode > 1 {
				residual = int32(d.r.Read(int(rSize)))
			}
			delta = (int32(mag)-1)*f + residual + 1
			if neg {
				delta = -delta
			}
		}
		rSize := uint(fcode - 1)
		f := int32(1) << rSize
		high := 16*f - 1
		low := -16 * f
		rng := 32 * f
		v := d.state.PMV[0][s][t] + delta
		if v < low {
			v += rng
		} else if v > high {
			v -= rng
		}
		d.state.PMV[0][s][t] = v
		d.state.PMV[1][s][t] = v // frame prediction updates both
		out[t] = v
	}
	return nil
}

// intraBlock parses and dequantises intra block i (0..3 luma, 4 Cb, 5 Cr).
// The returned mask is the block's conservative AC occupancy (see ACMask).
func (d *SliceDecoder) intraBlock(i int, blk *[64]int32) (uint8, error) {
	r := d.r
	pic := d.ctx.Pic
	comp := 0
	table := dcSizeLumaTable
	if i >= 4 {
		comp = i - 3
		table = dcSizeChromaTable
	}
	size, ok := table.decode(r)
	if !ok {
		return 0, syntaxErrf("bad dct_dc_size at bit %d", r.BitPos())
	}
	var diff int32
	if size > 0 {
		v := int32(r.Read(size))
		if v < 1<<uint(size-1) {
			diff = v - (1 << uint(size)) + 1
		} else {
			diff = v
		}
	}
	d.state.DCPred[comp] += diff
	blk[0] = d.state.DCPred[comp]

	var mask uint8
	scan := d.ctx.scan
	n := 1
	for {
		run, level, eob, ok := d.ctx.intraDCT.decode(r)
		if !ok {
			return 0, syntaxErrf("bad intra DCT code at bit %d", r.BitPos())
		}
		if eob {
			break
		}
		n += run
		if n > 63 {
			return 0, syntaxErrf("intra DCT run past block end")
		}
		p := scan[n]
		blk[p] = int32(level)
		mask |= 1 << uint(p>>3) // n >= 1, so p != 0 (scan is a permutation)
		n++
	}
	if !d.parseOnly {
		DequantIntra(blk, &d.ctx.Seq.IntraQ, QuantiserScale(d.state.QuantCode, pic.QScaleType), pic.DCShift())
		// Mismatch control may have toggled qf[63] from zero to one.
		if blk[63] != 0 {
			mask |= 0x80
		}
	}
	return mask, streamErr(r.Err())
}

// nonIntraBlock parses and dequantises a non-intra block. The returned mask
// is the block's conservative AC occupancy (see ACMask).
func (d *SliceDecoder) nonIntraBlock(blk *[64]int32) (uint8, error) {
	r := d.r
	scan := d.ctx.scan
	var mask uint8
	n := 0
	first := true
	for {
		var run, level int
		var eob, ok bool
		if first {
			run, level, eob, ok = dctTableB14First.decode(r)
			first = false
		} else {
			run, level, eob, ok = dctTableB14.decode(r)
		}
		if !ok {
			return 0, syntaxErrf("bad DCT code at bit %d", r.BitPos())
		}
		if eob {
			break
		}
		n += run
		if n > 63 {
			return 0, syntaxErrf("DCT run past block end")
		}
		// Position 0 is the DC term, carried by blk[0] itself rather than the
		// AC mask (non-intra coefficient 0 lands there via scan[0]).
		p := scan[n]
		blk[p] = int32(level)
		if p != 0 {
			mask |= 1 << uint(p>>3)
		}
		n++
	}
	if !d.parseOnly {
		DequantNonIntra(blk, &d.ctx.Seq.NonIntraQ, QuantiserScale(d.state.QuantCode, d.ctx.Pic.QScaleType))
		// Mismatch control may have toggled qf[63] from zero to one.
		if blk[63] != 0 {
			mask |= 0x80
		}
	}
	return mask, streamErr(r.Err())
}
