package mpeg2

import (
	"errors"
	"fmt"

	"tiledwall/internal/bits"
)

// PictureType identifies the coding type of a picture.
type PictureType int

const (
	PictureI PictureType = 1
	PictureP PictureType = 2
	PictureB PictureType = 3
)

func (t PictureType) String() string {
	switch t {
	case PictureI:
		return "I"
	case PictureP:
		return "P"
	case PictureB:
		return "B"
	}
	return fmt.Sprintf("PictureType(%d)", int(t))
}

// Extension identifiers (§6.3.3 table 6-2).
const (
	extSequence      = 0x1
	extSequenceDisp  = 0x2
	extQuantMatrix   = 0x3
	extPictureCoding = 0x8
)

// FrameRate returns the frames-per-second value of a frame_rate_code.
func FrameRate(code int) float64 {
	switch code {
	case 1:
		return 24000.0 / 1001
	case 2:
		return 24
	case 3:
		return 25
	case 4:
		return 30000.0 / 1001
	case 5:
		return 30
	case 6:
		return 50
	case 7:
		return 60000.0 / 1001
	case 8:
		return 60
	}
	return 0
}

// SequenceHeader carries the sequence header plus sequence extension fields
// the decoder subset needs. Quant matrices are stored in raster order.
type SequenceHeader struct {
	Width, Height int // frame dimensions in pixels (luma)

	AspectRatio   int
	FrameRateCode int
	BitRate       int // units of 400 bit/s
	VBVBufferSize int

	IntraQ, NonIntraQ             [64]uint8
	CustomIntraQ, CustomNonIntraQ bool

	ProfileLevel int
	Progressive  bool
	ChromaFormat int // 1 = 4:2:0 (only supported value)
	LowDelay     bool
}

// MBWidth returns the picture width in macroblocks.
func (s *SequenceHeader) MBWidth() int { return (s.Width + 15) / 16 }

// MBHeight returns the picture height in macroblocks.
func (s *SequenceHeader) MBHeight() int { return (s.Height + 15) / 16 }

// PictureHeader carries the picture header and picture coding extension.
type PictureHeader struct {
	TemporalRef int
	PicType     PictureType
	VBVDelay    int

	// FCode[s][t]: s = 0 forward / 1 backward, t = 0 horizontal / 1 vertical.
	// The value 15 means "unused".
	FCode            [2][2]int
	IntraDCPrecision int
	PictureStructure int // 3 = frame picture (only supported value)
	TopFieldFirst    bool
	FramePredDCT     bool
	ConcealmentMV    bool
	QScaleType       bool
	IntraVLCFormat   bool
	AlternateScan    bool
	RepeatFirstField bool
	Chroma420Type    bool
	ProgressiveFrame bool
}

// DCShift returns 3 - intra_dc_precision, the left shift applied to intra DC.
func (p *PictureHeader) DCShift() uint { return uint(3 - p.IntraDCPrecision) }

// ErrCorruptStream is wrapped by every syntax-level decode failure: malformed
// VLC codes, out-of-range addresses, broken headers, motion vectors leaving
// the reference window. Corrupt bitstreams must surface as this error (or a
// concealed picture via ResilientDecoder), never as a panic; the fuzz targets
// and the conformance corruption injector enforce that contract.
var ErrCorruptStream = errors.New("mpeg2: corrupt stream")

// ErrUnsupported is wrapped by failures on syntax that is valid MPEG-2 but
// outside the decoder subset (field pictures, non-4:2:0 chroma, ...).
var ErrUnsupported = errors.New("mpeg2: unsupported feature")

var (
	errSyntax      = ErrCorruptStream
	errUnsupported = ErrUnsupported
)

func syntaxErrf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errSyntax}, args...)...)
}

// streamErr lifts a bit-reader failure (underflow from truncation, hostile
// read widths) into the package's typed corrupt-stream error so callers can
// classify every malformed-input failure with errors.Is(err, ErrCorruptStream).
func streamErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrCorruptStream, err)
}

// ParseSequenceHeader parses a sequence header; r must be positioned just
// after the 32-bit start code. A following sequence extension, if present in
// the stream, is parsed by ParseSequenceExtension.
func ParseSequenceHeader(r *bits.Reader) (*SequenceHeader, error) {
	s := &SequenceHeader{ChromaFormat: 1}
	s.Width = int(r.Read(12))
	s.Height = int(r.Read(12))
	s.AspectRatio = int(r.Read(4))
	s.FrameRateCode = int(r.Read(4))
	s.BitRate = int(r.Read(18))
	if r.ReadBit() != 1 {
		return nil, syntaxErrf("sequence header marker bit")
	}
	s.VBVBufferSize = int(r.Read(10))
	r.ReadBit() // constrained_parameters_flag
	if r.ReadBit() == 1 {
		s.CustomIntraQ = true
		for i := 0; i < 64; i++ {
			s.IntraQ[ZigZagScan[i]] = uint8(r.Read(8))
		}
	} else {
		s.IntraQ = DefaultIntraQuantMatrix
	}
	if r.ReadBit() == 1 {
		s.CustomNonIntraQ = true
		for i := 0; i < 64; i++ {
			s.NonIntraQ[ZigZagScan[i]] = uint8(r.Read(8))
		}
	} else {
		s.NonIntraQ = DefaultNonIntraQuantMatrix
	}
	if s.Width == 0 || s.Height == 0 {
		return nil, syntaxErrf("zero picture dimensions")
	}
	if err := r.Err(); err != nil {
		return nil, streamErr(err)
	}
	return s, nil
}

// ParseSequenceExtension parses a sequence extension into s; r must be
// positioned after the extension start code (the 4-bit identifier is still
// unread).
func ParseSequenceExtension(r *bits.Reader, s *SequenceHeader) error {
	if id := int(r.Read(4)); id != extSequence {
		return syntaxErrf("expected sequence extension, got id %d", id)
	}
	s.ProfileLevel = int(r.Read(8))
	s.Progressive = r.ReadBit() == 1
	s.ChromaFormat = int(r.Read(2))
	s.Width |= int(r.Read(2)) << 12
	s.Height |= int(r.Read(2)) << 12
	s.BitRate |= int(r.Read(12)) << 18
	if r.ReadBit() != 1 {
		return syntaxErrf("sequence extension marker bit")
	}
	s.VBVBufferSize |= int(r.Read(8)) << 10
	s.LowDelay = r.ReadBit() == 1
	r.Read(2) // frame_rate_extension_n
	r.Read(5) // frame_rate_extension_d
	if s.ChromaFormat != 1 {
		return fmt.Errorf("%w: chroma format %d (only 4:2:0)", errUnsupported, s.ChromaFormat)
	}
	return streamErr(r.Err())
}

// ParsePictureHeader parses a picture header; r must be positioned after the
// start code.
func ParsePictureHeader(r *bits.Reader) (*PictureHeader, error) {
	p := &PictureHeader{}
	if err := ParsePictureHeaderInto(r, p); err != nil {
		return nil, err
	}
	return p, nil
}

// ParsePictureHeaderInto is ParsePictureHeader into caller-owned storage,
// overwriting every field: the pooled decode and split paths keep one
// PictureHeader per goroutine across pictures.
func ParsePictureHeaderInto(r *bits.Reader, p *PictureHeader) error {
	*p = PictureHeader{}
	p.TemporalRef = int(r.Read(10))
	p.PicType = PictureType(r.Read(3))
	if p.PicType < PictureI || p.PicType > PictureB {
		return syntaxErrf("picture coding type %d", int(p.PicType))
	}
	p.VBVDelay = int(r.Read(16))
	if p.PicType == PictureP || p.PicType == PictureB {
		r.ReadBit() // full_pel_forward_vector (MPEG-1 only, 0 in MPEG-2)
		r.Read(3)   // forward_f_code (111 in MPEG-2)
	}
	if p.PicType == PictureB {
		r.ReadBit() // full_pel_backward_vector
		r.Read(3)   // backward_f_code
	}
	// extra_information_picture
	for r.ReadBit() == 1 {
		r.Read(8)
	}
	// Defaults in case no coding extension follows (MPEG-1-ish streams are
	// not supported; the caller is expected to parse the extension).
	p.FCode = [2][2]int{{15, 15}, {15, 15}}
	p.PictureStructure = 3
	p.FramePredDCT = true
	return streamErr(r.Err())
}

// ParsePictureCodingExtension parses a picture coding extension into p; r
// must be positioned after the extension start code.
func ParsePictureCodingExtension(r *bits.Reader, p *PictureHeader) error {
	if id := int(r.Read(4)); id != extPictureCoding {
		return syntaxErrf("expected picture coding extension, got id %d", id)
	}
	for s := 0; s < 2; s++ {
		for t := 0; t < 2; t++ {
			p.FCode[s][t] = int(r.Read(4))
		}
	}
	p.IntraDCPrecision = int(r.Read(2))
	p.PictureStructure = int(r.Read(2))
	p.TopFieldFirst = r.ReadBit() == 1
	p.FramePredDCT = r.ReadBit() == 1
	p.ConcealmentMV = r.ReadBit() == 1
	p.QScaleType = r.ReadBit() == 1
	p.IntraVLCFormat = r.ReadBit() == 1
	p.AlternateScan = r.ReadBit() == 1
	p.RepeatFirstField = r.ReadBit() == 1
	p.Chroma420Type = r.ReadBit() == 1
	p.ProgressiveFrame = r.ReadBit() == 1
	if r.ReadBit() == 1 { // composite_display_flag
		r.Read(20)
	}
	if p.PictureStructure != 3 {
		return fmt.Errorf("%w: field pictures", errUnsupported)
	}
	if !p.FramePredDCT {
		return fmt.Errorf("%w: field prediction in frame pictures", errUnsupported)
	}
	if p.ConcealmentMV {
		return fmt.Errorf("%w: concealment motion vectors", errUnsupported)
	}
	return streamErr(r.Err())
}

// GOPHeader carries a group-of-pictures header.
type GOPHeader struct {
	TimeCode   int // 25-bit SMPTE time code, opaque here
	ClosedGOP  bool
	BrokenLink bool
}

// ParseGOPHeader parses a GOP header; r must be positioned after the start
// code.
func ParseGOPHeader(r *bits.Reader) (*GOPHeader, error) {
	g := &GOPHeader{}
	g.TimeCode = int(r.Read(25))
	g.ClosedGOP = r.ReadBit() == 1
	g.BrokenLink = r.ReadBit() == 1
	return g, streamErr(r.Err())
}

// --- Writing (used by the encoder and by header round-trip tests) ----------

func writeStartCode(w *bits.Writer, code byte) {
	w.AlignZero()
	w.WriteBits(0x000001, 24)
	w.WriteBits(uint32(code), 8)
}

// WriteSequenceHeader emits the sequence header followed by the sequence
// extension (this package only produces MPEG-2 streams).
func (s *SequenceHeader) Write(w *bits.Writer) {
	writeStartCode(w, bits.SequenceHeaderCod)
	w.WriteBits(uint32(s.Width&0xFFF), 12)
	w.WriteBits(uint32(s.Height&0xFFF), 12)
	w.WriteBits(uint32(s.AspectRatio), 4)
	w.WriteBits(uint32(s.FrameRateCode), 4)
	w.WriteBits(uint32(s.BitRate&0x3FFFF), 18)
	w.WriteBit(1)
	w.WriteBits(uint32(s.VBVBufferSize&0x3FF), 10)
	w.WriteBit(0) // constrained_parameters_flag
	if s.CustomIntraQ {
		w.WriteBit(1)
		for i := 0; i < 64; i++ {
			w.WriteBits(uint32(s.IntraQ[ZigZagScan[i]]), 8)
		}
	} else {
		w.WriteBit(0)
	}
	if s.CustomNonIntraQ {
		w.WriteBit(1)
		for i := 0; i < 64; i++ {
			w.WriteBits(uint32(s.NonIntraQ[ZigZagScan[i]]), 8)
		}
	} else {
		w.WriteBit(0)
	}

	writeStartCode(w, bits.ExtensionStartCod)
	w.WriteBits(extSequence, 4)
	w.WriteBits(uint32(s.ProfileLevel), 8)
	if s.Progressive {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	w.WriteBits(uint32(s.ChromaFormat), 2)
	w.WriteBits(uint32(s.Width>>12), 2)
	w.WriteBits(uint32(s.Height>>12), 2)
	w.WriteBits(uint32(s.BitRate>>18), 12)
	w.WriteBit(1)
	w.WriteBits(uint32(s.VBVBufferSize>>10), 8)
	if s.LowDelay {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	w.WriteBits(0, 2)
	w.WriteBits(0, 5)
}

// Write emits the GOP header.
func (g *GOPHeader) Write(w *bits.Writer) {
	writeStartCode(w, bits.GroupStartCode)
	w.WriteBits(uint32(g.TimeCode), 25)
	b := func(f bool) {
		if f {
			w.WriteBit(1)
		} else {
			w.WriteBit(0)
		}
	}
	b(g.ClosedGOP)
	b(g.BrokenLink)
}

// Write emits the picture header followed by the picture coding extension.
func (p *PictureHeader) Write(w *bits.Writer) {
	writeStartCode(w, bits.PictureStartCode)
	w.WriteBits(uint32(p.TemporalRef), 10)
	w.WriteBits(uint32(p.PicType), 3)
	w.WriteBits(uint32(p.VBVDelay), 16)
	if p.PicType == PictureP || p.PicType == PictureB {
		w.WriteBit(0)
		w.WriteBits(7, 3)
	}
	if p.PicType == PictureB {
		w.WriteBit(0)
		w.WriteBits(7, 3)
	}
	w.WriteBit(0) // no extra information

	writeStartCode(w, bits.ExtensionStartCod)
	w.WriteBits(extPictureCoding, 4)
	for s := 0; s < 2; s++ {
		for t := 0; t < 2; t++ {
			w.WriteBits(uint32(p.FCode[s][t]), 4)
		}
	}
	w.WriteBits(uint32(p.IntraDCPrecision), 2)
	w.WriteBits(uint32(p.PictureStructure), 2)
	b := func(f bool) {
		if f {
			w.WriteBit(1)
		} else {
			w.WriteBit(0)
		}
	}
	b(p.TopFieldFirst)
	b(p.FramePredDCT)
	b(p.ConcealmentMV)
	b(p.QScaleType)
	b(p.IntraVLCFormat)
	b(p.AlternateScan)
	b(p.RepeatFirstField)
	b(p.Chroma420Type)
	b(p.ProgressiveFrame)
	w.WriteBit(0) // composite_display_flag
}

// WriteSequenceEnd emits the sequence end code.
func WriteSequenceEnd(w *bits.Writer) {
	writeStartCode(w, bits.SequenceEndCode)
}
