package service

import (
	"fmt"
	"sync"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/wall"
)

// collector gathers one session's per-tile outputs (display order per tile)
// and assembles them into full wall frames.
type collector struct {
	mu    sync.Mutex
	geo   *wall.Geometry
	tiles [][]*mpeg2.PixelBuf // [tile][emission index]
}

func newCollector(geo *wall.Geometry) *collector {
	return &collector{geo: geo, tiles: make([][]*mpeg2.PixelBuf, geo.NumTiles())}
}

func (c *collector) add(tile int, buf *mpeg2.PixelBuf) {
	c.mu.Lock()
	c.tiles[tile] = append(c.tiles[tile], buf)
	c.mu.Unlock()
}

// assemble joins per-tile emissions into wall frames. strict demands every
// tile emitted the same count (any mismatch is a protocol violation on a
// clean session); tolerant mode — degraded recovery sessions — assembles the
// frames every tile managed to emit and drops the ragged tail.
func (c *collector) assemble(strict bool) ([]*mpeg2.PixelBuf, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := -1
	for t, list := range c.tiles {
		if n == -1 || len(list) < n {
			if n != -1 && strict {
				return nil, fmt.Errorf("service: tile %d emitted %d frames, others %d", t, len(list), n)
			}
			n = len(list)
		} else if len(list) != n && strict {
			return nil, fmt.Errorf("service: tile %d emitted %d frames, others %d", t, len(list), n)
		}
	}
	var frames []*mpeg2.PixelBuf
	row := make([]*mpeg2.PixelBuf, len(c.tiles))
	for i := 0; i < n; i++ {
		for t := range c.tiles {
			row[t] = c.tiles[t][i]
		}
		f, err := c.geo.Assemble(row)
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}
