package wall

import (
	"testing"

	"tiledwall/internal/mpeg2"
)

func TestBlendRampPairsSumToUnity(t *testing.T) {
	for _, w := range []int{16, 40, 48} {
		ramp := BlendRamp(w)
		for i := 0; i < w; i++ {
			sum := ramp[i] + ramp[w-1-i]
			if sum < 254 || sum > 258 {
				t.Fatalf("width %d pos %d: opposing weights sum to %d", w, i, sum)
			}
		}
		if ramp[0] >= ramp[w-1] {
			t.Fatalf("width %d: ramp not increasing", w)
		}
	}
}

// TestBlendCompositeReconstructs: cut a picture into overlapping tiles,
// apply each tile's ramps, and add the light back up: the screen must show
// the original image within small rounding error.
func TestBlendCompositeReconstructs(t *testing.T) {
	g, err := NewGeometry(256, 128, 2, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	ref := mpeg2.NewPixelBuf(0, 0, 256, 128)
	for i := range ref.Y {
		ref.Y[i] = uint8(40 + (i*13)%160)
	}
	for i := range ref.Cb {
		ref.Cb[i] = uint8(100 + (i*7)%56)
		ref.Cr[i] = uint8(110 + (i*5)%40)
	}
	tiles := make([]*mpeg2.PixelBuf, g.NumTiles())
	for ti := range tiles {
		r := g.Tile(ti)
		buf := mpeg2.NewPixelBuf(r.X0, r.Y0, r.W(), r.H())
		buf.CopyRect(ref, r.X0, r.Y0, r.W(), r.H())
		g.ApplyBlend(ti, buf)
		tiles[ti] = buf
	}
	got, err := g.CompositeBlend(tiles)
	if err != nil {
		t.Fatal(err)
	}
	var worst int
	for i := range ref.Y {
		d := int(got.Y[i]) - int(ref.Y[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 6 {
		t.Errorf("composite luma deviates by up to %d", worst)
	}
	worstC := 0
	for i := range ref.Cb {
		for _, d := range []int{int(got.Cb[i]) - int(ref.Cb[i]), int(got.Cr[i]) - int(ref.Cr[i])} {
			if d < 0 {
				d = -d
			}
			if d > worstC {
				worstC = d
			}
		}
	}
	if worstC > 8 {
		t.Errorf("composite chroma deviates by up to %d", worstC)
	}
}

func TestBlendNoOverlapIsNoop(t *testing.T) {
	g, err := NewGeometry(128, 64, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := g.Tile(0)
	buf := mpeg2.NewPixelBuf(r.X0, r.Y0, r.W(), r.H())
	for i := range buf.Y {
		buf.Y[i] = 200
	}
	g.ApplyBlend(0, buf)
	for i, v := range buf.Y {
		if v != 200 {
			t.Fatalf("no-overlap blend modified pixel %d", i)
		}
	}
}

func TestCompositeBlendRejectsShortList(t *testing.T) {
	g, _ := NewGeometry(128, 64, 2, 1, 16)
	if _, err := g.CompositeBlend(nil); err == nil {
		t.Error("short tile list accepted")
	}
}
