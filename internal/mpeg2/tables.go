package mpeg2

// This file transcribes the Annex B variable-length code tables of
// ISO/IEC 13818-2. Each table is declared as (code string, value) pairs and
// compiled at init; buildVLC panics on any prefix collision, so the package
// fails loudly if a transcription error breaks the code space.

// --- Table B-1: macroblock_address_increment -------------------------------

// mbAddrIncEscape is the special "macroblock_escape" code adding 33 to the
// increment; it may repeat.
const (
	mbAddrIncEscapeVal = 34
	mbAddrIncEscape    = "0000 0001 000"
)

var mbAddrIncTable = buildVLC("B-1 macroblock_address_increment", []vlcSpec{
	{"1", 1},
	{"011", 2}, {"010", 3},
	{"0011", 4}, {"0010", 5},
	{"0001 1", 6}, {"0001 0", 7},
	{"0000 111", 8}, {"0000 110", 9},
	{"0000 1011", 10}, {"0000 1010", 11}, {"0000 1001", 12}, {"0000 1000", 13},
	{"0000 0111", 14}, {"0000 0110", 15},
	{"0000 0101 11", 16}, {"0000 0101 10", 17}, {"0000 0101 01", 18}, {"0000 0101 00", 19},
	{"0000 0100 11", 20}, {"0000 0100 10", 21},
	{"0000 0100 011", 22}, {"0000 0100 010", 23}, {"0000 0100 001", 24}, {"0000 0100 000", 25},
	{"0000 0011 111", 26}, {"0000 0011 110", 27}, {"0000 0011 101", 28}, {"0000 0011 100", 29},
	{"0000 0011 011", 30}, {"0000 0011 010", 31}, {"0000 0011 001", 32}, {"0000 0011 000", 33},
	{mbAddrIncEscape, mbAddrIncEscapeVal},
})

// --- Tables B-2/B-3/B-4: macroblock_type -----------------------------------

// Macroblock type flag bits, combined into the VLC value.
const (
	MBQuant     = 1 << 0 // macroblock_quant
	MBMotionFwd = 1 << 1 // macroblock_motion_forward
	MBMotionBwd = 1 << 2 // macroblock_motion_backward
	MBPattern   = 1 << 3 // macroblock_pattern (coded block pattern follows)
	MBIntra     = 1 << 4 // macroblock_intra
)

// Table B-2 (I-pictures).
var mbTypeITable = buildVLC("B-2 macroblock_type I", []vlcSpec{
	{"1", MBIntra},
	{"01", MBIntra | MBQuant},
})

// Table B-3 (P-pictures).
var mbTypePTable = buildVLC("B-3 macroblock_type P", []vlcSpec{
	{"1", MBMotionFwd | MBPattern},
	{"01", MBPattern},
	{"001", MBMotionFwd},
	{"0001 1", MBIntra},
	{"0001 0", MBMotionFwd | MBPattern | MBQuant},
	{"0000 1", MBPattern | MBQuant},
	{"0000 01", MBIntra | MBQuant},
})

// Table B-4 (B-pictures).
var mbTypeBTable = buildVLC("B-4 macroblock_type B", []vlcSpec{
	{"10", MBMotionFwd | MBMotionBwd},
	{"11", MBMotionFwd | MBMotionBwd | MBPattern},
	{"010", MBMotionBwd},
	{"011", MBMotionBwd | MBPattern},
	{"0010", MBMotionFwd},
	{"0011", MBMotionFwd | MBPattern},
	{"0001 1", MBIntra},
	{"0001 0", MBMotionFwd | MBMotionBwd | MBPattern | MBQuant},
	{"0000 11", MBMotionFwd | MBPattern | MBQuant},
	{"0000 10", MBMotionBwd | MBPattern | MBQuant},
	{"0000 01", MBIntra | MBQuant},
})

// --- Table B-9: coded_block_pattern (4:2:0) --------------------------------

var cbpTable = buildVLC("B-9 coded_block_pattern", []vlcSpec{
	{"111", 60},
	{"1101", 4}, {"1100", 8}, {"1011", 16}, {"1010", 32},
	{"1001 1", 12}, {"1001 0", 48}, {"1000 1", 20}, {"1000 0", 40},
	{"0111 1", 28}, {"0111 0", 44}, {"0110 1", 52}, {"0110 0", 56},
	{"0101 1", 1}, {"0101 0", 61}, {"0100 1", 2}, {"0100 0", 62},
	{"0011 11", 24}, {"0011 10", 36}, {"0011 01", 3}, {"0011 00", 63},
	{"0010 111", 5}, {"0010 110", 9}, {"0010 101", 17}, {"0010 100", 33},
	{"0010 011", 6}, {"0010 010", 10}, {"0010 001", 18}, {"0010 000", 34},
	{"0001 1111", 7}, {"0001 1110", 11}, {"0001 1101", 19}, {"0001 1100", 35},
	{"0001 1011", 13}, {"0001 1010", 49}, {"0001 1001", 21}, {"0001 1000", 41},
	{"0001 0111", 14}, {"0001 0110", 50}, {"0001 0101", 22}, {"0001 0100", 42},
	{"0001 0011", 15}, {"0001 0010", 51}, {"0001 0001", 23}, {"0001 0000", 43},
	{"0000 1111", 25}, {"0000 1110", 37}, {"0000 1101", 26}, {"0000 1100", 38},
	{"0000 1011", 29}, {"0000 1010", 45}, {"0000 1001", 53}, {"0000 1000", 57},
	{"0000 0111", 30}, {"0000 0110", 46}, {"0000 0101", 54}, {"0000 0100", 58},
	{"0000 0011 1", 31}, {"0000 0011 0", 47}, {"0000 0010 1", 55}, {"0000 0010 0", 59},
	{"0000 0001 1", 27}, {"0000 0001 0", 39},
	{"0000 0000 1", 0}, // cbp 0: only valid for 4:2:2/4:4:4; kept for completeness
})

// --- Table B-10: motion_code ------------------------------------------------

// Motion codes are stored as magnitude codes 0..16; a sign bit follows every
// non-zero magnitude (0 = positive, 1 = negative).
var motionCodeTable = buildVLC("B-10 motion_code magnitude", []vlcSpec{
	{"1", 0},
	{"01", 1},
	{"001", 2},
	{"0001", 3},
	{"0000 11", 4},
	{"0000 101", 5}, {"0000 100", 6}, {"0000 011", 7},
	{"0000 0101 1", 8}, {"0000 0101 0", 9}, {"0000 0100 1", 10},
	{"0000 0100 01", 11}, {"0000 0100 00", 12},
	{"0000 0011 11", 13}, {"0000 0011 10", 14}, {"0000 0011 01", 15}, {"0000 0011 00", 16},
})

// --- Tables B-12/B-13: dct_dc_size ------------------------------------------

var dcSizeLumaTable = buildVLC("B-12 dct_dc_size_luminance", []vlcSpec{
	{"100", 0},
	{"00", 1}, {"01", 2},
	{"101", 3}, {"110", 4},
	{"1110", 5}, {"1111 0", 6}, {"1111 10", 7}, {"1111 110", 8},
	{"1111 1110", 9}, {"1111 1111 0", 10}, {"1111 1111 1", 11},
})

var dcSizeChromaTable = buildVLC("B-13 dct_dc_size_chrominance", []vlcSpec{
	{"00", 0}, {"01", 1}, {"10", 2},
	{"110", 3}, {"1110", 4}, {"1111 0", 5}, {"1111 10", 6}, {"1111 110", 7},
	{"1111 1110", 8}, {"1111 1111 0", 9}, {"1111 1111 10", 10}, {"1111 1111 11", 11},
})
