// HDTV playback on a one-level system: the paper's §5.3 scenario. An
// HDTV-class fish-tank stream (catalogue stream 8) plays on 1-(m,n)
// configurations of increasing size; the run shows the single splitter
// saturating once it cannot parse macroblocks as fast as the decoders
// consume them.
//
//	go run ./examples/hdtv [-frames 48] [-scale 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"tiledwall/internal/catalog"
	"tiledwall/internal/system"
)

func main() {
	frames := flag.Int("frames", 48, "frames to encode")
	scale := flag.Int("scale", 2, "resolution divisor")
	flag.Parse()

	spec, err := catalog.ByID(8) // fish4: 1280x720 HDTV class
	if err != nil {
		log.Fatal(err)
	}
	w, h := spec.Dimensions(catalog.GenOptions{Frames: *frames, Scale: *scale})
	fmt.Printf("generating %s at %dx%d (%d frames)...\n", spec.Name, w, h, *frames)
	stream, err := spec.Generate(catalog.GenOptions{Frames: *frames, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\none-level 1-(m,n) frame rates (paper Table 5, dashed lines of Fig. 6):\n")
	for _, c := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {4, 2}, {4, 4}} {
		res, err := system.Run(stream, system.Config{K: 0, M: c[0], N: c[1]})
		if err != nil {
			log.Fatal(err)
		}
		// Is the splitter the pipeline bottleneck? Compare its per-picture
		// CPU cost against the slowest decoder's.
		mt := res.Modeled()
		sp := res.Splitters[0].Breakdown.Busy()
		var worst float64
		for _, d := range res.Decoders {
			if b := d.Breakdown.Busy().Seconds(); b > worst {
				worst = b
			}
		}
		who := "decoders"
		if sp.Seconds() > worst {
			who = "splitter"
		}
		fmt.Printf("  1-(%d,%d): %7.1f fps on %2d PCs   (bottleneck: %s)\n",
			c[0], c[1], mt.FPS(), res.Config.NumNodes(), who)
	}

	fmt.Printf("\ncompare with the calibration formula (§4.6):\n")
	cal, err := system.Calibrate(stream, 2, 2, 0, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ts=%v per picture, td=%v per sub-picture\n", cal.TS, cal.TD)
	fmt.Printf("  recommended k for full decoder utilisation: %d\n", cal.RecommendedK(0))
	for k := 0; k <= 4; k++ {
		fmt.Printf("  predicted fps with k=%d: %.1f\n", k, cal.PredictedFPS(k))
	}
}
