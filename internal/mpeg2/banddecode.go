package mpeg2

import (
	"fmt"

	"tiledwall/internal/bits"
)

// DecodePictureUnitBand decodes only the slices of a picture unit whose
// macroblock rows fall within [rowMin, rowMax] (inclusive). dst and the
// reference windows need only cover that band (plus, for the references,
// whatever halo the stream's motion vectors can reach). It is the decoding
// primitive of slice-level parallelism (Table 1), where each node owns a
// horizontal band of whole slices and no mid-slice state propagation is
// needed.
func DecodePictureUnitBand(seq *SequenceHeader, unit []byte, fwd, bwd, dst *PixelBuf, rowMin, rowMax int) (*PictureHeader, error) {
	ph, sliceOff, err := ParsePictureUnit(unit)
	if err != nil {
		return nil, err
	}
	ctx, err := NewPictureContext(seq, ph)
	if err != nil {
		return nil, err
	}
	rc := NewReconstructor(ph)
	r := bits.NewReader(unit)
	r.SeekBit(sliceOff)
	for bits.NextStartCodeReader(r) {
		pos := r.BitPos() / 8
		code := unit[pos+3]
		if !bits.IsSliceStartCode(code) {
			break
		}
		r.Skip(32)
		vpos := int(code)
		if seq.Height > 2800 {
			vpos = int(r.Read(3))<<7 + vpos
		}
		row := vpos - 1
		if row < rowMin || row > rowMax {
			continue // the scan loop advances to the next start code
		}
		if err := decodeSlice(ctx, rc, r, vpos, fwd, bwd, dst); err != nil {
			return nil, fmt.Errorf("band slice row %d: %w", row, err)
		}
	}
	return ph, nil
}

// IndexPictureUnits returns the byte ranges of the picture units inside data
// (which may be a GOP unit without a sequence header). Used by the GOP- and
// picture-level baseline splitters.
func IndexPictureUnits(data []byte) [][]byte {
	var units [][]byte
	picStart := -1
	flush := func(end int) {
		if picStart >= 0 {
			units = append(units, data[picStart:end])
			picStart = -1
		}
	}
	for off := bits.NextStartCode(data, 0); off >= 0; off = bits.NextStartCode(data, off+4) {
		switch c := data[off+3]; {
		case c == bits.PictureStartCode:
			flush(off)
			picStart = off
		case c == bits.GroupStartCode, c == bits.SequenceHeaderCod, c == bits.SequenceEndCode:
			flush(off)
		}
	}
	flush(len(data))
	return units
}
