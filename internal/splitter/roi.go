package splitter

import (
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/subpic"
	"tiledwall/internal/wall"
)

// This file implements the subscription (ROI) materialization rule of
// DESIGN.md §15. Given one split picture and a session's live tile set, it
// decides per tile what actually ships:
//
//   - anchors (I and P pictures) materialize on EVERY tile in normal mode.
//     Byte-exactness is transitive through the reference chain: a SEND source
//     must hold exact anchor pixels, whose own decode needed its halo's
//     anchors, and the closure fixpoints to the whole wall over a GOP. The
//     per-session saving therefore comes from B pictures (the majority of a
//     broadcast GOP) and from shipped bytes; anchors on unwatched tiles are
//     decoded but stamped NoEmit.
//   - B pictures materialize only on live tiles plus the tiles that are MEI
//     SEND sources for a live tile's motion vectors (the one-step halo
//     closure — exact for B because B pictures never feed references). A
//     source-only tile ships its SENDs with no pieces; everyone else gets a
//     ~20-byte skip marker so the decoder still acks and the nd-ack gate of
//     the ANID protocol is untouched.
//   - in I-only trick mode no shipped picture references another, so even
//     anchors materialize live-only.

// TrickMode selects the root's trick-play drop ladder.
type TrickMode uint8

const (
	// TrickNone ships every picture.
	TrickNone TrickMode = iota
	// TrickIOnly ships I pictures only (seek/scrub preview): every shipped
	// picture is self-contained, so subscription changes resume instantly.
	TrickIOnly
	// TrickDropB ships I and P pictures (fast forward at full reference
	// fidelity: the anchor chain is untouched, only disposable B pictures
	// are dropped).
	TrickDropB
)

func (m TrickMode) String() string {
	switch m {
	case TrickNone:
		return "none"
	case TrickIOnly:
		return "i-only"
	case TrickDropB:
		return "drop-b"
	}
	return "trick(?)"
}

// ROIScratch holds the per-tile shadow sub-pictures a splitter reuses when a
// partial subscription rewrites what ships. One per splitSession.
type ROIScratch struct {
	sps []subpic.SubPicture
	out []*subpic.SubPicture
	mei [][]subpic.MEIInstr
}

func (rs *ROIScratch) grow(nt int) {
	if len(rs.sps) < nt {
		rs.sps = make([]subpic.SubPicture, nt)
		rs.out = make([]*subpic.SubPicture, nt)
		rs.mei = make([][]subpic.MEIInstr, nt)
	}
}

// hasSendToLive reports whether the tile's MEI list sends to any live tile.
func hasSendToLive(mei []subpic.MEIInstr, live wall.TileSet) bool {
	for i := range mei {
		if mei[i].Kind == subpic.MEISend && live.Has(int(mei[i].Peer)) {
			return true
		}
	}
	return false
}

// filterMEI appends to dst the instructions that survive a partial
// subscription: every RECV (its source is materialized by construction) when
// keepRecv is set, and SENDs whose consumer is live.
func filterMEI(dst []subpic.MEIInstr, mei []subpic.MEIInstr, live wall.TileSet, keepRecv bool) []subpic.MEIInstr {
	for i := range mei {
		switch mei[i].Kind {
		case subpic.MEIRecv:
			if keepRecv {
				dst = append(dst, mei[i])
			}
		case subpic.MEISend:
			if live.Has(int(mei[i].Peer)) {
				dst = append(dst, mei[i])
			}
		}
	}
	return dst
}

// Apply rewrites one split picture's sub-pictures for a partial
// subscription, returning what to ship per tile and how many tiles were
// reduced to skip markers. The input sub-pictures are not modified; the
// returned pointers are valid until the next Apply on the same scratch.
// A full (zero-value) subscription returns the input untouched — the fast
// path costs one branch and ships byte-identical messages.
func (rs *ROIScratch) Apply(sps []*subpic.SubPicture, live wall.TileSet, iOnly bool) ([]*subpic.SubPicture, int) {
	if live.Full() || live.Count() == len(sps) {
		// Zero-value subscription, or an explicit set covering every tile:
		// nothing can be filtered, so ship the input untouched.
		return sps, 0
	}
	nt := len(sps)
	rs.grow(nt)
	picType := mpeg2.PictureType(sps[0].Pic.PicType)
	anchorsEverywhere := picType != mpeg2.PictureB && !iOnly
	skipped := 0
	for t := 0; t < nt; t++ {
		sp := &rs.sps[t]
		switch {
		case anchorsEverywhere:
			if live.Has(t) {
				rs.out[t] = sps[t]
				continue
			}
			// Materialized for reference exactness, but nobody is watching.
			*sp = *sps[t]
			sp.NoEmit = true
		case live.Has(t):
			*sp = *sps[t]
			rs.mei[t] = filterMEI(rs.mei[t][:0], sps[t].MEI, live, true)
			sp.MEI = rs.mei[t]
		case hasSendToLive(sps[t].MEI, live):
			// Source-only tile: ship the SENDs a live neighbour needs (they
			// read exact reference pixels), decode nothing, emit nothing.
			*sp = subpic.SubPicture{Pic: sps[t].Pic, NoEmit: true}
			rs.mei[t] = filterMEI(rs.mei[t][:0], sps[t].MEI, live, false)
			sp.MEI = rs.mei[t]
		default:
			*sp = subpic.SubPicture{Pic: sps[t].Pic, Skipped: true}
			skipped++
		}
		rs.out[t] = sp
	}
	return rs.out[:nt], skipped
}

// ParseSubscribe decodes a FlagSubscribe control payload: one trick-mode
// byte followed by the tile set's wire form (empty = full subscription).
func ParseSubscribe(payload []byte) (TrickMode, wall.TileSet, error) {
	if len(payload) < 1 {
		return TrickNone, wall.TileSet{}, nil
	}
	ts, err := wall.UnmarshalTileSet(payload[1:])
	if err != nil {
		return TrickNone, wall.TileSet{}, err
	}
	return TrickMode(payload[0]), ts, nil
}

// AppendSubscribe encodes a FlagSubscribe control payload.
func AppendSubscribe(dst []byte, trick TrickMode, tiles wall.TileSet) []byte {
	dst = append(dst, byte(trick))
	return tiles.Marshal(dst)
}
