package pdec

import (
	"fmt"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/recovery"
	"tiledwall/internal/wall"
)

// ServeConfig wires one resident tile-decoder node: a long-lived server that
// multiplexes any number of sessions, each an independent stream with its own
// sequence header, geometry and reference chain.
type ServeConfig struct {
	Tile          int
	M, N, Overlap int
	// MaxFCode sizes the halo windows of every session (HaloForFCode).
	MaxFCode int
	// TileNode maps a tile index to its fabric node id, RootNode is where
	// drain acks go when a session completes on this tile.
	TileNode func(tile int) int
	RootNode int

	UnbatchedSends bool
	Pooled         bool

	// OnFrame receives decoded tile frames in display order, per session
	// (nil when frames are not collected).
	OnFrame func(session, displayIdx, tile int, buf *mpeg2.PixelBuf)
	// OnResult receives the session's decode result when it completes on
	// this tile, before the drain ack is sent to the root.
	OnResult func(session, tile int, res *Result)

	// Recovery, when non-nil, switches the server to the fault-masking
	// protocol: per-session decoders run in recovery mode (gap and tail
	// concealment instead of ordering aborts), leases are renewed per
	// message, chaos kills surface as recovery.ErrKilled for the supervisor,
	// and a respawned incarnation re-joins its sessions from Resume.
	Recovery *ServeRecovery
}

// ServeRecovery wires fault masking into one resident decoder server
// incarnation.
type ServeRecovery struct {
	Cfg   recovery.Config
	Lease *recovery.Lease
	Chaos recovery.ChaosPlan
	// Rec returns the recovery counters to charge for a session's
	// interventions (must not return nil).
	Rec func(session int) *metrics.Recovery
	// OnOpen reports every session open this server sees, so the service
	// registry can snapshot it for future respawns.
	OnOpen func(session int, header []byte)
	// NumSplitters is how many session-final markers a session needs before
	// its tail can be concealed: one per second-level splitter (or one from
	// the combined root when K=0).
	NumSplitters int
	// Resume lists the sessions a respawned incarnation must re-join.
	Resume []ResumeSession
}

// ResumeSession re-opens one session on a respawned node server. NextPic is
// the emission frontier the dead incarnation reached (one past the highest
// emitted decode index): pictures below it were already displayed and stay
// displayed; the reference chain restarts untrusted and conceals until an I
// picture re-anchors it. Holes lists the decode indices below NextPic the
// dead incarnation never emitted — its held anchor, lost with it — which the
// respawned incarnation conceal-emits once so no tile skips a frame.
type ResumeSession struct {
	ID      int
	Header  []byte
	NextPic int
	Holes   []int
}

// server holds the node-level state shared by every session on one tile.
type server struct {
	cfg  ServeConfig
	port cluster.Port
	// sessions maps a live session id to its decoder instance.
	sessions map[int]*Decoder
	// pending buckets MsgBlocks bundles that arrived for a session other
	// than the one currently draining its RECVs (a peer one global picture
	// ahead may already be in the next session).
	pending map[int][]*cluster.Message
}

// sessionNet is the cluster.Net a per-session Decoder runs on: it stamps the
// session id on every send and filters MsgBlocks receives down to this
// session, parking other sessions' bundles in the server's pending buckets.
type sessionNet struct {
	srv     *server
	session int
}

func (s *sessionNet) ID() int { return s.srv.port.ID() }

func (s *sessionNet) Send(to int, msg *cluster.Message) {
	msg.Session = s.session
	s.srv.port.Send(to, msg)
}

func (s *sessionNet) Recv(kind cluster.MsgKind) *cluster.Message {
	if kind != cluster.MsgBlocks {
		// Sub-pictures are dispatched by the server loop, never received
		// through the shim; recovery kinds are unsupported in resident mode.
		return s.srv.port.Recv(kind)
	}
	if q := s.srv.pending[s.session]; len(q) > 0 {
		m := q[0]
		s.srv.pending[s.session] = q[1:]
		return m
	}
	for {
		m := s.srv.port.Recv(kind)
		if m == nil {
			return nil
		}
		if m.Session == s.session {
			return m
		}
		s.srv.pending[m.Session] = append(s.srv.pending[m.Session], m)
	}
}

func (s *sessionNet) TryRecv(kind cluster.MsgKind) (*cluster.Message, bool) {
	if kind != cluster.MsgBlocks {
		return s.srv.port.TryRecv(kind)
	}
	if q := s.srv.pending[s.session]; len(q) > 0 {
		m := q[0]
		s.srv.pending[s.session] = q[1:]
		return m, true
	}
	for {
		m, ok := s.srv.port.TryRecv(kind)
		if !ok || m == nil {
			return m, ok
		}
		if m.Session == s.session {
			return m, true
		}
		s.srv.pending[m.Session] = append(s.srv.pending[m.Session], m)
	}
}

func (s *sessionNet) RecvTimeout(kind cluster.MsgKind, d time.Duration) (*cluster.Message, bool) {
	if kind != cluster.MsgBlocks {
		return s.srv.port.RecvTimeout(kind, d)
	}
	if q := s.srv.pending[s.session]; len(q) > 0 {
		m := q[0]
		s.srv.pending[s.session] = q[1:]
		return m, false
	}
	deadline := time.Now().Add(d)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, true
		}
		m, timedOut := s.srv.port.RecvTimeout(kind, remain)
		if timedOut {
			return nil, true
		}
		if m == nil {
			return nil, false
		}
		if m.Session == s.session {
			return m, false
		}
		s.srv.pending[m.Session] = append(s.srv.pending[m.Session], m)
	}
}

func (s *sessionNet) Done() <-chan struct{} { return s.srv.port.Done() }

// Serve runs the resident tile-decoder loop until a FlagShutdown message
// arrives (clean exit) or the transport aborts. Per-session protocol state is
// exactly the batch decoder's — a fresh Decoder per session — so a single
// session through Serve is byte-identical to a batch Run.
func Serve(port cluster.Port, cfg ServeConfig) error {
	srv := &server{
		cfg:      cfg,
		port:     port,
		sessions: map[int]*Decoder{},
		pending:  map[int][]*cluster.Message{},
	}
	if cfg.Recovery != nil {
		srv.cfg.Recovery.Cfg = cfg.Recovery.Cfg.WithDefaults()
		return srv.serveRecover()
	}
	for {
		t0 := time.Now()
		msg := port.Recv(cluster.MsgSubPicture)
		wait := time.Since(t0)
		if msg == nil {
			return fmt.Errorf("tile %d: fabric aborted", cfg.Tile)
		}
		switch {
		case msg.Flags&cluster.FlagShutdown != 0:
			return nil
		case msg.Flags&cluster.FlagSessionOpen != 0:
			if err := srv.open(msg); err != nil {
				return err
			}
		default:
			d := srv.sessions[msg.Session]
			if d == nil {
				// A session completes on the first Final that finds no
				// pictures owed; the other splitters' Finals trail in after
				// the state is gone. (A Final cannot precede its session's
				// open: every splitter forwards the open before anything
				// else, and sender order is preserved.)
				if msg.Flags&cluster.FlagSessionFinal != 0 {
					if cfg.Pooled {
						// Final markers are marshalled per destination; this
						// tile is the payload's only consumer.
						cluster.PutSlab(msg.Payload)
					}
					continue
				}
				return fmt.Errorf("tile %d: picture for unknown session %d", cfg.Tile, msg.Session)
			}
			// The receive wait belongs to the session whose message ended it
			// (batch attribution, per stream).
			d.Breakdown().Add(metrics.PhaseReceive, wait)
			done, err := d.HandleSubPicture(msg)
			if err != nil {
				return err
			}
			if done {
				srv.finish(msg.Session, d)
			}
		}
	}
}

// open creates the per-session decoder from the header prefix carried by the
// session-open message. Each splitter forwards the open once, so duplicates
// past the first are skipped.
func (srv *server) open(msg *cluster.Message) error {
	if srv.sessions[msg.Session] != nil {
		return nil
	}
	seq, err := mpeg2.ParseSequenceHeaderBytes(msg.Payload)
	if err != nil {
		return fmt.Errorf("tile %d: session %d open: %w", srv.cfg.Tile, msg.Session, err)
	}
	geo, err := wall.NewGeometry(seq.MBWidth()*16, seq.MBHeight()*16, srv.cfg.M, srv.cfg.N, srv.cfg.Overlap)
	if err != nil {
		return fmt.Errorf("tile %d: session %d open: %w", srv.cfg.Tile, msg.Session, err)
	}
	var onFrame func(int, int, *mpeg2.PixelBuf)
	if srv.cfg.OnFrame != nil {
		sess := msg.Session
		onFrame = func(displayIdx, tile int, buf *mpeg2.PixelBuf) {
			srv.cfg.OnFrame(sess, displayIdx, tile, buf)
		}
	}
	dcfg := Config{
		Seq:            seq,
		Geo:            geo,
		Tile:           srv.cfg.Tile,
		HaloPx:         HaloForFCode(srv.cfg.MaxFCode),
		TileNode:       srv.cfg.TileNode,
		OnFrame:        onFrame,
		UnbatchedSends: srv.cfg.UnbatchedSends,
		Pooled:         srv.cfg.Pooled,
	}
	if rh := srv.cfg.Recovery; rh != nil {
		if rh.OnOpen != nil {
			rh.OnOpen(msg.Session, msg.Payload)
		}
		// The chaos plan stays with the serve loop (kills are injected before
		// dispatch); per-session decoders only need the tuning, the lease and
		// the session's intervention counters.
		dcfg.Recovery = &recovery.DecoderHooks{
			Hooks: recovery.Hooks{Cfg: rh.Cfg, Lease: rh.Lease, Rec: rh.Rec(msg.Session)},
		}
	}
	srv.sessions[msg.Session] = NewDecoder(&sessionNet{srv: srv, session: msg.Session}, dcfg)
	return nil
}

// serveRecover is the fault-masking serve loop: it re-joins resumed sessions,
// renews the incarnation's lease on every message, honours the chaos plan,
// and dispatches data through the tolerant HandleSubPictureRecover path.
// Unknown sessions and undecodable opens are skipped, never fatal — a broken
// session must not take the wall down.
func (srv *server) serveRecover() error {
	rh := srv.cfg.Recovery
	for _, rs := range rh.Resume {
		if err := srv.open(&cluster.Message{Session: rs.ID, Payload: rs.Header}); err != nil {
			continue // undecodable header: the session fails upstream
		}
		srv.sessions[rs.ID].ResumeAt(rs.NextPic, rs.Holes)
	}
	// Receive in deadline-granularity ticks so reorder holes are swept even
	// while the port is idle (the hole's successors may be the only traffic a
	// session will ever see again).
	tick := rh.Cfg.PictureDeadline / 2
	if tick <= 0 {
		tick = 50 * time.Millisecond
	}
	for {
		srv.sweepDeadlines()
		t0 := time.Now()
		msg, timedOut := srv.port.RecvTimeout(cluster.MsgSubPicture, tick)
		wait := time.Since(t0)
		if rh.Lease != nil {
			rh.Lease.Renew()
		}
		if timedOut {
			continue
		}
		if msg == nil {
			return fmt.Errorf("tile %d: fabric aborted", srv.cfg.Tile)
		}
		switch {
		case msg.Flags&cluster.FlagShutdown != 0:
			return nil
		case msg.Flags&cluster.FlagSessionOpen != 0:
			_ = srv.open(msg)
		default:
			d := srv.sessions[msg.Session]
			if d == nil {
				// Completed session's trailing finals, or state lost past the
				// restart budget; either way the payload — marshalled for this
				// tile alone — has no consumer left.
				if srv.cfg.Pooled {
					cluster.PutSlab(msg.Payload)
				}
				continue
			}
			// Injected crash before the dispatch (and thus before the ack):
			// the sub-picture is consumed but unacknowledged, the hardest
			// loss for the upstream credit ledger.
			if msg.Flags&(cluster.FlagSessionFinal|cluster.FlagReplay) == 0 &&
				rh.Chaos.DecoderDies(srv.cfg.Tile, msg.Seq) {
				return recovery.ErrKilled
			}
			d.Breakdown().Add(metrics.PhaseReceive, wait)
			done, err := d.HandleSubPictureRecover(msg, rh.NumSplitters)
			if err != nil {
				return err
			}
			if done {
				srv.finish(msg.Session, d)
			}
		}
	}
}

// sweepDeadlines runs the per-picture deadline over every session's reorder
// stash, finishing the sessions a sweep completes.
func (srv *server) sweepDeadlines() {
	deadline := srv.cfg.Recovery.Cfg.PictureDeadline
	for session, d := range srv.sessions {
		if d.SweepDeadline(deadline) {
			srv.finish(session, d)
		}
	}
}

// finish completes a session on this tile: flush the reorder tail, hand the
// result out, drop the state, and send the drain ack that lets the root
// close the session.
func (srv *server) finish(session int, d *Decoder) {
	d.releaseStash()
	res := d.Finish()
	delete(srv.sessions, session)
	delete(srv.pending, session)
	if srv.cfg.OnResult != nil {
		srv.cfg.OnResult(session, srv.cfg.Tile, res)
	}
	srv.port.Send(srv.cfg.RootNode, &cluster.Message{
		Kind:    cluster.MsgAck,
		Seq:     cluster.DrainAckSeq,
		Session: session,
	})
}
