package fleet

import (
	"errors"
	"testing"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/recovery"
	"tiledwall/internal/service"
)

func waitRecycled(t *testing.T, f *Fleet, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for f.Stats().Recycled < n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recycled %d walls (at %d)", n, f.Stats().Recycled)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRecycleWallDrains pins the ops path: RecycleWall on a wall with a live
// session drains it (waits for the session), respawns the wall, and the slot
// admits again on a fresh incarnation.
func TestRecycleWallDrains(t *testing.T) {
	f, err := New(Config{
		Walls: []service.Config{{K: 0, M: 1, N: 1, MaxSessions: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := f.Open("live", OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		// The drain holds until this close: release it shortly after the
		// recycle starts waiting.
		time.Sleep(50 * time.Millisecond)
		s.Close()
		close(closed)
	}()
	if err := f.RecycleWall(0); err != nil {
		t.Fatal(err)
	}
	<-closed
	waitRecycled(t, f, 1)
	st := f.Stats()
	if !st.Walls[0].Up || st.Walls[0].Recycles != 1 {
		t.Fatalf("slot 0 after recycle: %+v", st.Walls[0])
	}
	s2, err := f.Open("after", OpenOptions{})
	if err != nil {
		t.Fatalf("open after recycle: %v", err)
	}
	s2.Close()
}

// TestInjectWallFailureReroutes kills one of two walls under held sessions:
// the dead wall's session surfaces the injected typed cause, the surviving
// wall's session is untouched, queued opens land on the survivor, and the
// dead slot comes back recycled.
func TestInjectWallFailureReroutes(t *testing.T) {
	f, err := New(Config{
		Walls: []service.Config{
			{K: 0, M: 1, N: 1, MaxSessions: 1},
			{K: 0, M: 1, N: 1, MaxSessions: 1},
		},
		MaxQueue: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Occupy both walls so the next open queues.
	a, err := f.Open("a", OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Open("b", OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Wall() == b.Wall() {
		t.Fatalf("both sessions landed on wall %d", a.Wall())
	}
	queuedWall := make(chan int, 1)
	go func() {
		s, err := f.Open("queued", OpenOptions{Deadline: 30 * time.Second})
		if err != nil {
			queuedWall <- -1
			return
		}
		queuedWall <- s.Wall()
		s.Close()
	}()
	waitQueued(t, f, 1)

	victim, survivor := a, b
	if err := f.InjectWallFailure(victim.Wall(), cluster.ErrStalled); err != nil {
		t.Fatal(err)
	}
	// The victim's session surfaces the injected typed cause on Feed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Benign filler bytes: the scanner just buffers them, so the only
		// error Feed can surface here is the transport abort.
		err := victim.Feed([]byte{0, 0, 0, 0})
		if err != nil {
			if !errors.Is(err, cluster.ErrStalled) {
				t.Fatalf("victim feed error %v is not the injected cluster.ErrStalled", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim session never observed the wall failure")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := victim.Close(); err == nil {
		t.Fatal("victim close succeeded on a dead wall")
	}
	// The survivor's wall is untouched: its (empty) session still closes on
	// the normal path, freeing the slot the queued open is waiting for.
	if _, err := survivor.Close(); err == nil || errors.Is(err, cluster.ErrStalled) {
		t.Fatalf("survivor close: %v, want the empty-session error, not the injected fault", err)
	}
	if w := <-queuedWall; w == -1 {
		t.Fatal("queued open was not re-routed to a surviving wall")
	}
	waitRecycled(t, f, 1)
	st := f.Stats()
	if !st.Walls[0].Up || !st.Walls[1].Up {
		t.Fatalf("a slot stayed down after recycle: %+v", st.Walls)
	}
}

// TestDisableRecycle pins the escape hatch: with recycling off a killed wall
// stays down, capacity shrinks, and routing avoids the dead slot.
func TestDisableRecycle(t *testing.T) {
	f, err := New(Config{
		Walls: []service.Config{
			{K: 0, M: 1, N: 1, MaxSessions: 1},
			{K: 0, M: 1, N: 1, MaxSessions: 1},
		},
		DisableRecycle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.InjectWallFailure(0, cluster.ErrStalled); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Stats().Walls[0].Up {
		if time.Now().After(deadline) {
			t.Fatal("killed wall still marked up")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		s, err := f.Open("survivor", OpenOptions{})
		if err != nil {
			t.Fatalf("open %d after kill: %v", i, err)
		}
		if s.Wall() != 1 {
			t.Fatalf("open %d routed to the dead wall", i)
		}
		s.Close()
	}
	if got := f.Stats().Recycled; got != 0 {
		t.Fatalf("recycled %d walls with recycling disabled", got)
	}
}

// TestDegradedAutoRecycle drives the health poller: a recovery-enabled wall
// whose session closes dirty goes Degraded, and two consecutive degraded
// polls drain and respawn it without any explicit recycle call.
func TestDegradedAutoRecycle(t *testing.T) {
	f, err := New(Config{
		Walls: []service.Config{
			{K: 0, M: 1, N: 1, MaxSessions: 2, Recovery: recovery.Config{Enabled: true}},
		},
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := f.Open("dirty", OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A headerless close is a dirty session close: the recovery registry
	// marks the wall Degraded.
	if _, err := s.Close(); err == nil {
		t.Fatal("headerless close should fail")
	}
	waitRecycled(t, f, 1)
	st := f.Stats()
	if !st.Walls[0].Up {
		t.Fatalf("wall not back up after degraded recycle: %+v", st.Walls[0])
	}
	if st.Walls[0].Health != service.Healthy {
		t.Fatalf("recycled wall health = %v, want Healthy", st.Walls[0].Health)
	}
	s2, err := f.Open("clean", OpenOptions{})
	if err != nil {
		t.Fatalf("open after degraded recycle: %v", err)
	}
	s2.Close()
}
