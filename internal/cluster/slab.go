package cluster

import (
	"math/bits"
	"sync"
	"unsafe"
)

// Message slab pool. Every sub-picture and block bundle that crosses the
// fabric is serialised into a fresh []byte; at wall frame rates that is
// hundreds of multi-kilobyte allocations per second per node. The pool
// recycles payload slabs in power-of-two size classes.
//
// Ownership follows the fabric's zero-copy contract with reference counts:
// a slab leaves GetSlab holding one implicit reference; anything that keeps
// the payload alive past the consumer (a recovery retainer whose replay
// sends alias the retained bytes) acquires an extra reference with SlabRef.
// PutSlab releases one reference, and only the last release recycles the
// slab — the PR 3 rule "only the final consumer releases" generalised to
// "the last reference releases". Holders that vanish without releasing
// (a killed worker mid-picture) merely leak their slab to the garbage
// collector; a slab can never be pooled while a reference aliases it.
//
// The implementation is mutex-guarded per-class free stacks rather than
// sync.Pool: Put-ting a []byte into a sync.Pool boxes the slice header on
// every call, which would itself defeat the zero-allocation goal.

const (
	slabMinBits = 6  // 64 B — below this, pooling costs more than it saves
	slabMaxBits = 24 // 16 MiB — beyond this, hold no cache
	// slabMaxFree bounds each class's free stack so a burst cannot pin
	// unbounded memory.
	slabMaxFree = 64
)

var slabClasses [slabMaxBits + 1]struct {
	mu   sync.Mutex
	free [][]byte
}

// slabClass returns the size-class exponent for a payload of n bytes, or -1
// when n is outside the pooled range.
func slabClass(n int) int {
	if n <= 0 || n > 1<<slabMaxBits {
		return -1
	}
	c := bits.Len(uint(n - 1)) // smallest power of two >= n
	if c < slabMinBits {
		c = slabMinBits
	}
	return c
}

// GetSlab returns a zero-length slice with capacity >= n, drawn from the
// pool when a slab of the right class is free. Appending up to n bytes will
// not reallocate.
func GetSlab(n int) []byte {
	c := slabClass(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	cl := &slabClasses[c]
	cl.mu.Lock()
	if len(cl.free) > 0 {
		s := cl.free[len(cl.free)-1]
		cl.free[len(cl.free)-1] = nil
		cl.free = cl.free[:len(cl.free)-1]
		cl.mu.Unlock()
		return s[:0]
	}
	cl.mu.Unlock()
	return make([]byte, 0, 1<<c)
}

// slabRefs is the extra-reference side table, keyed by a slab's backing
// array. Entries exist only while a slab holds references beyond the
// implicit one, so the steady-state map is tiny (bounded by the recovery
// retain windows) and ref-free traffic never touches it beyond one lookup.
var slabRefs = struct {
	mu sync.Mutex
	n  map[*byte]int
}{n: map[*byte]int{}}

// isSlab reports whether b plausibly came from GetSlab: only exact
// class-sized capacities are pool property; anything else belongs to the
// garbage collector and is never counted or recycled.
func isSlab(b []byte) bool {
	c := slabClass(cap(b))
	return c >= 0 && cap(b) == 1<<c
}

// SlabRef acquires an extra reference on slab b: the next PutSlab releases
// the reference instead of recycling the slab. Call it when a second holder
// (a retainer entry, a replay send) starts aliasing a payload that a
// downstream consumer will PutSlab independently. Slices of foreign
// provenance and nil are ignored — PutSlab would not recycle them anyway.
func SlabRef(b []byte) {
	if cap(b) == 0 || !isSlab(b) {
		return
	}
	p := unsafe.SliceData(b[:1])
	slabRefs.mu.Lock()
	slabRefs.n[p]++
	slabRefs.mu.Unlock()
}

// PutSlab releases one reference on b; the last release returns the slab to
// the pool. Only slabs whose capacity is an exact class size are accepted
// (i.e. slabs that came from GetSlab); anything else — including slices of
// foreign provenance — is left to the garbage collector. The caller must
// not touch b after its own release.
func PutSlab(b []byte) {
	if cap(b) == 0 || !isSlab(b) {
		return
	}
	p := unsafe.SliceData(b[:1])
	slabRefs.mu.Lock()
	if n := slabRefs.n[p]; n > 0 {
		if n == 1 {
			delete(slabRefs.n, p)
		} else {
			slabRefs.n[p] = n - 1
		}
		slabRefs.mu.Unlock()
		return
	}
	slabRefs.mu.Unlock()
	c := slabClass(cap(b))
	cl := &slabClasses[c]
	cl.mu.Lock()
	if len(cl.free) < slabMaxFree {
		cl.free = append(cl.free, b[:0])
	}
	cl.mu.Unlock()
}
