package conformance

import (
	"fmt"
	"math/rand"
	"sort"

	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/recovery"
	"tiledwall/internal/system"
	"tiledwall/internal/wall"
)

// Chaos mode extends the conformance oracle to the recovery layer: the same
// serial-vs-parallel differ runs while (optionally) one random decoder is
// killed mid-stream and respawned by the supervisor. The contract under chaos
// is weaker than bit-exactness but still sharp:
//
//   - every configuration completes (no hang, no abort);
//   - every tile emits every picture index exactly once — restarts and
//     replays must neither lose nor duplicate a frame;
//   - when the recovery snapshot is Clean (no restarts, no concealment — the
//     fault-free sweep), the output must still be byte-identical with the
//     serial decode.

// ChaosOptions parameterises one chaos sweep.
type ChaosOptions struct {
	// Seed derives every per-configuration random stream (kill site), making
	// a sweep reproducible from one number.
	Seed int64
	// Kill arms one decoder crash per run, at a seeded random tile and
	// picture. Without it the sweep is fault-free: the recovery layer is on
	// but never intervenes, so the run must be Clean and bit-exact.
	Kill bool
	// Pooled arms buffer pooling, proving recovery composes with slab
	// reference counting.
	Pooled bool
	// StallTimeout bounds a hung run (watchdog backstop); 0 means 30s.
	StallTimeout time.Duration
}

// ChaosResult is the outcome of one configuration under chaos.
type ChaosResult struct {
	Config   system.Config
	Err      error
	Recovery metrics.RecoverySnapshot
	// ExactlyOnceViolation describes the first emission-log violation, or ""
	// when every tile emitted every picture exactly once.
	ExactlyOnceViolation string
	// Divergence is the serial diff, populated only for Clean runs (degraded
	// runs legitimately differ where concealment traded pixels for liveness).
	Divergence *Divergence
	// KilledTile and KilledAt record the armed kill site (-1 when none).
	KilledTile, KilledAt int
}

// Name renders the configuration in the paper's notation.
func (r ChaosResult) Name() string {
	return fmt.Sprintf("1-%d-(%d,%d)ov%d", r.Config.K, r.Config.M, r.Config.N, r.Config.Overlap)
}

// chaosRecoveryConfig is tuned so detection+replay comfortably outpaces both
// the per-picture deadline and the watchdog.
func chaosRecoveryConfig() recovery.Config {
	return recovery.Config{
		Enabled:         true,
		LeaseInterval:   3 * time.Millisecond,
		LeaseExpiry:     12 * time.Millisecond,
		PictureDeadline: 250 * time.Millisecond,
		MaxRestarts:     3,
	}
}

// emissionViolation checks the exactly-once property of a run's emission
// log; it returns "" when every tile emitted 0..pictures-1 exactly once.
func emissionViolation(emissions [][]int, pictures int) string {
	if len(emissions) == 0 {
		return "no emission log recorded"
	}
	for tile, idxs := range emissions {
		got := append([]int(nil), idxs...)
		sort.Ints(got)
		if len(got) != pictures {
			return fmt.Sprintf("tile %d emitted %d frames, want %d", tile, len(got), pictures)
		}
		for i, v := range got {
			if v != i {
				return fmt.Sprintf("tile %d emissions not exactly-once (sorted: %v)", tile, got)
			}
		}
	}
	return ""
}

// chaosRunner carries the serial reference across per-configuration runs.
type chaosRunner struct {
	stream     []byte
	ref        []mpeg2.DecodedPicture
	picW, picH int
	stall      time.Duration
	opt        ChaosOptions
}

func newChaosRunner(stream []byte, opt ChaosOptions) (*chaosRunner, error) {
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		return nil, fmt.Errorf("conformance: serial parse: %w", err)
	}
	ref, err := dec.DecodeAll()
	if err != nil {
		return nil, fmt.Errorf("conformance: serial decode: %w", err)
	}
	stall := opt.StallTimeout
	if stall <= 0 {
		stall = 30 * time.Second
	}
	return &chaosRunner{
		stream: stream,
		ref:    ref,
		picW:   dec.Seq().MBWidth() * 16,
		picH:   dec.Seq().MBHeight() * 16,
		stall:  stall,
		opt:    opt,
	}, nil
}

// run executes one configuration; ci seeds the kill site.
func (cr *chaosRunner) run(cfg system.Config, ci int) ChaosResult {
	rng := rand.New(rand.NewSource(cr.opt.Seed*1000003 + int64(ci)))
	cfg.CollectFrames = true
	cfg.Recovery = chaosRecoveryConfig()
	cfg.Pooled = cr.opt.Pooled
	cfg.Fabric = cluster.Config{StallTimeout: cr.stall}
	out := ChaosResult{Config: cfg, KilledTile: -1, KilledAt: -1}
	if cr.opt.Kill && len(cr.ref) > 2 {
		out.KilledTile = rng.Intn(cfg.M * cfg.N)
		out.KilledAt = 1 + rng.Intn(len(cr.ref)-2)
		cfg.Chaos = recovery.ChaosPlan{
			KillDecoder:   true,
			DecoderTile:   out.KilledTile,
			KillAtPicture: out.KilledAt,
		}
	}
	res, err := system.Run(cr.stream, cfg)
	if err != nil {
		out.Err = err
		return out
	}
	out.Recovery = res.Recovery
	out.ExactlyOnceViolation = emissionViolation(res.TileEmissions, len(cr.ref))
	if out.Recovery.Clean() {
		geo, gerr := wall.NewGeometry(cr.picW, cr.picH, cfg.M, cfg.N, cfg.Overlap)
		if gerr != nil {
			geo = nil
		}
		out.Divergence = Diff(cr.ref, res.Frames, geo)
	}
	return out
}

// RunChaosMatrix runs every configuration under seeded chaos and reports the
// per-configuration verdicts. The serial decode error, if any, is returned
// directly (no oracle value without a reference).
func RunChaosMatrix(stream []byte, configs []system.Config, opt ChaosOptions) ([]ChaosResult, error) {
	runner, err := newChaosRunner(stream, opt)
	if err != nil {
		return nil, err
	}
	out := make([]ChaosResult, 0, len(configs))
	for ci, cfg := range configs {
		out = append(out, runner.run(cfg, ci))
	}
	return out, nil
}
