package recovery

import (
	"sync"
	"sync/atomic"
	"time"

	"tiledwall/internal/mpeg2"
)

// Lease is one node's heartbeat: the worker renews it on every unit of
// progress (at least once per picture), the supervisor reads it. A lease
// that stops being renewed for Config.LeaseExpiry marks its node dead.
type Lease struct {
	last int64 // unix nanos of the latest renewal, atomic
}

// NewLease returns a freshly-renewed lease.
func NewLease() *Lease {
	l := &Lease{}
	l.Renew()
	return l
}

// Renew stamps the lease with the current time.
func (l *Lease) Renew() { atomic.StoreInt64(&l.last, time.Now().UnixNano()) }

// Expired reports whether the lease has not been renewed for at least d.
func (l *Lease) Expired(d time.Duration) bool {
	return time.Since(time.Unix(0, atomic.LoadInt64(&l.last))) >= d
}

// Checkpoint is the durable progress record of one tile decoder, written by
// the worker after every display emission and read by the supervisor when it
// respawns the node. It models the state that survives a decoder crash on a
// real wall: the supervisor's view of the node's progress reports, plus the
// projector's frame buffer (which keeps showing the last uploaded frame —
// the physical basis of freeze-last-frame concealment).
type Checkpoint struct {
	mu sync.Mutex

	// nextPic is the decode-order index of the next picture the tile owes.
	nextPic int
	// pendingAnchor is the decode index of a decoded anchor picture that has
	// not been emitted yet (display reordering holds one anchor back), or -1.
	pendingAnchor int
	// lastDisplay is the last frame handed to the projector, retained for
	// freeze concealment. Never written after handoff.
	lastDisplay *mpeg2.PixelBuf
	// finalTotal is the stream's total picture count once a Final marker has
	// been seen, else -1.
	finalTotal int
}

// NewCheckpoint returns the initial (no progress) checkpoint.
func NewCheckpoint() *Checkpoint {
	return &Checkpoint{pendingAnchor: -1, finalTotal: -1}
}

// Update records the decoder's progress after handling one picture.
func (c *Checkpoint) Update(nextPic, pendingAnchor int) {
	c.mu.Lock()
	c.nextPic = nextPic
	c.pendingAnchor = pendingAnchor
	c.mu.Unlock()
}

// SetDisplay records the frame most recently uploaded to the projector.
func (c *Checkpoint) SetDisplay(buf *mpeg2.PixelBuf) {
	c.mu.Lock()
	c.lastDisplay = buf
	c.mu.Unlock()
}

// SetFinalTotal records the stream's total picture count.
func (c *Checkpoint) SetFinalTotal(n int) {
	c.mu.Lock()
	c.finalTotal = n
	c.mu.Unlock()
}

// State returns the recorded progress.
func (c *Checkpoint) State() (nextPic, pendingAnchor int, lastDisplay *mpeg2.PixelBuf, finalTotal int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextPic, c.pendingAnchor, c.lastDisplay, c.finalTotal
}
