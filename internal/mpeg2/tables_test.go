package mpeg2

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tiledwall/internal/bits"
)

// kraftSum returns the Kraft sum numerator in units of 2^-maxLen: a complete
// prefix-free code sums to 1<<maxLen.
func kraftSum(t *vlcTable) int {
	sum := 0
	for _, c := range t.enc {
		sum += 1 << uint(t.maxLen-int(c.n))
	}
	return sum
}

func TestTableCompleteness(t *testing.T) {
	// buildVLC already panics on prefix collisions at package init; here we
	// additionally check the code space coverage of tables that are complete
	// in the standard.
	cases := []struct {
		name     string
		tab      *vlcTable
		complete bool
	}{
		{"dcSizeLuma", dcSizeLumaTable, true},
		{"dcSizeChroma", dcSizeChromaTable, true},
		{"mbTypeI", mbTypeITable, false},
		{"mbTypeP", mbTypePTable, false},
		{"mbTypeB", mbTypeBTable, false},
		{"mbAddrInc", mbAddrIncTable, false},
		{"cbp", cbpTable, false},
		{"motionCode", motionCodeTable, false},
	}
	for _, c := range cases {
		sum := kraftSum(c.tab)
		full := 1 << uint(c.tab.maxLen)
		if sum > full {
			t.Errorf("%s: Kraft sum %d exceeds %d", c.name, sum, full)
		}
		if c.complete && sum != full {
			t.Errorf("%s: expected complete code, Kraft %d of %d", c.name, sum, full)
		}
	}
}

func TestVLCRoundTrip(t *testing.T) {
	tables := map[string]*vlcTable{
		"mbAddrInc":    mbAddrIncTable,
		"mbTypeI":      mbTypeITable,
		"mbTypeP":      mbTypePTable,
		"mbTypeB":      mbTypeBTable,
		"cbp":          cbpTable,
		"motionCode":   motionCodeTable,
		"dcSizeLuma":   dcSizeLumaTable,
		"dcSizeChroma": dcSizeChromaTable,
	}
	for name, tab := range tables {
		for val := range tab.enc {
			w := bits.NewWriter(4)
			tab.encode(w, val)
			// Pad so the peek window is satisfied near the end.
			w.WriteBits(0xFFFF, 16)
			r := bits.NewReader(w.Bytes())
			got, ok := tab.decode(r)
			if !ok || got != val {
				t.Errorf("%s: value %d round-trips to %d (ok=%v)", name, val, got, ok)
			}
			if n, _ := tab.codeLen(val); r.BitPos() != n {
				t.Errorf("%s: value %d consumed %d bits, want %d", name, val, r.BitPos(), n)
			}
		}
	}
}

func TestDCTTableRoundTrip(t *testing.T) {
	for name, tab := range map[string]*dctTable{"B-14": dctTableB14, "B-14 first": dctTableB14First, "B-15": dctTableB15} {
		for key := range tab.enc {
			run, level := int(key>>8), int(key&0xFF)
			for _, sign := range []int{1, -1} {
				w := bits.NewWriter(4)
				c, ok := tab.code(run, level)
				if !ok {
					t.Fatalf("%s: enc map lies for %d/%d", name, run, level)
				}
				w.WriteBits(c.bits, int(c.n))
				if sign < 0 {
					w.WriteBit(1)
				} else {
					w.WriteBit(0)
				}
				w.WriteBits(0xFFFF, 16)
				r := bits.NewReader(w.Bytes())
				gr, gl, eob, ok := tab.decode(r)
				if !ok || eob || gr != run || gl != sign*level {
					t.Errorf("%s: %d/%d sign %d decoded as %d/%d eob=%v ok=%v", name, run, level, sign, gr, gl, eob, ok)
				}
			}
		}
	}
}

func TestDCTEscape(t *testing.T) {
	for _, tc := range []struct{ run, level int }{{0, 100}, {31, 2047}, {5, -2047}, {20, -3}} {
		w := bits.NewWriter(8)
		code, n := parseCode(dctEscape)
		w.WriteBits(code, n)
		w.WriteBits(uint32(tc.run), 6)
		w.WriteBits(uint32(tc.level)&0xFFF, 12)
		w.WriteBits(0xFFFF, 16)
		r := bits.NewReader(w.Bytes())
		run, level, eob, ok := dctTableB14.decode(r)
		if !ok || eob || run != tc.run || level != tc.level {
			t.Errorf("escape %d/%d decoded as %d/%d eob=%v ok=%v", tc.run, tc.level, run, level, eob, ok)
		}
	}
	// Forbidden level 0 and -2048.
	for _, lv := range []uint32{0, 0x800} {
		w := bits.NewWriter(8)
		code, n := parseCode(dctEscape)
		w.WriteBits(code, n)
		w.WriteBits(3, 6)
		w.WriteBits(lv, 12)
		w.WriteBits(0xFFFF, 16)
		r := bits.NewReader(w.Bytes())
		if _, _, _, ok := dctTableB14.decode(r); ok {
			t.Errorf("escape level %#x should be rejected", lv)
		}
	}
}

func TestDCTEOB(t *testing.T) {
	cases := []struct {
		tab  *dctTable
		code string
	}{
		{dctTableB14, "10"},
		{dctTableB15, "0110"},
	}
	for _, c := range cases {
		code, n := parseCode(c.code)
		w := bits.NewWriter(4)
		w.WriteBits(code, n)
		w.WriteBits(0xFFFFFF, 24)
		r := bits.NewReader(w.Bytes())
		_, _, eob, ok := c.tab.decode(r)
		if !ok || !eob {
			t.Errorf("EOB %q: eob=%v ok=%v", c.code, eob, ok)
		}
		if r.BitPos() != n {
			t.Errorf("EOB %q consumed %d bits, want %d", c.code, r.BitPos(), n)
		}
	}
}

func TestB14FirstCoefficient(t *testing.T) {
	// "1" + sign decodes as run 0 / level ±1 in the first-coefficient table.
	r := bits.NewReader([]byte{0b11000000, 0xFF, 0xFF})
	run, level, eob, ok := dctTableB14First.decode(r)
	if !ok || eob || run != 0 || level != -1 {
		t.Fatalf("first-coef '11' = %d/%d eob=%v ok=%v, want 0/-1", run, level, eob, ok)
	}
	r = bits.NewReader([]byte{0b10000000, 0xFF, 0xFF})
	run, level, _, ok = dctTableB14First.decode(r)
	if !ok || run != 0 || level != 1 {
		t.Fatalf("first-coef '10' = %d/%d, want 0/+1", run, level)
	}
}

func TestB15ContainsReplacements(t *testing.T) {
	for _, want := range []struct{ run, level int }{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {1, 1}} {
		if _, ok := dctTableB15.code(want.run, want.level); !ok {
			t.Errorf("B-15 missing short code for %d/%d", want.run, want.level)
		}
	}
	// Long codes shared with B-14 survive.
	for _, want := range []struct{ run, level int }{{0, 16}, {1, 18}, {27, 1}, {0, 40}} {
		if _, ok := dctTableB15.code(want.run, want.level); !ok {
			t.Errorf("B-15 missing inherited code for %d/%d", want.run, want.level)
		}
	}
}

func TestMotionCodeAllMagnitudes(t *testing.T) {
	for mag := 0; mag <= 16; mag++ {
		if _, ok := motionCodeTable.codeLen(mag); !ok {
			t.Errorf("motion magnitude %d has no code", mag)
		}
	}
}

func TestMBAddrIncAll(t *testing.T) {
	for v := 1; v <= 33; v++ {
		if _, ok := mbAddrIncTable.codeLen(v); !ok {
			t.Errorf("address increment %d has no code", v)
		}
	}
}

func TestCBPAll(t *testing.T) {
	for v := 0; v <= 63; v++ {
		if _, ok := cbpTable.codeLen(v); !ok {
			t.Errorf("cbp %d has no code", v)
		}
	}
}

// Property: any random bit suffix after a valid codeword still decodes that
// codeword (decode must only consume the code's own bits).
func TestVLCPrefixIsolationQuick(t *testing.T) {
	vals := make([]int, 0, len(mbAddrIncTable.enc))
	for v := range mbAddrIncTable.enc {
		vals = append(vals, v)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		val := vals[rng.Intn(len(vals))]
		w := bits.NewWriter(8)
		mbAddrIncTable.encode(w, val)
		w.WriteBits(rng.Uint32(), 32)
		r := bits.NewReader(w.Bytes())
		got, ok := mbAddrIncTable.decode(r)
		return ok && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
