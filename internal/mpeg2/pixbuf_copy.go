package mpeg2

import "fmt"

// checkBacking verifies that the plane slices actually hold a W×H 4:2:0
// window — i.e. that the implicit strides (W for luma, W/2 for chroma) match
// the backing lengths. The copy helpers index through those strides without
// per-row bounds proof, so a buffer whose planes were resliced or built with
// a foreign stride would otherwise read or write the wrong rows silently (or
// panic mid-copy with half the destination written).
func (b *PixelBuf) checkBacking(op string) {
	if len(b.Y) != b.W*b.H || len(b.Cb) != b.W*b.H/4 || len(b.Cr) != b.W*b.H/4 {
		panic(fmt.Sprintf("mpeg2: %s on PixelBuf with mismatched backing: window %dx%d needs Y=%d Cb=Cr=%d, have Y=%d Cb=%d Cr=%d",
			op, b.W, b.H, b.W*b.H, b.W*b.H/4, len(b.Y), len(b.Cb), len(b.Cr)))
	}
}

// CopyRect copies the luma rectangle (x, y, w, h) — and the corresponding
// chroma — from src into b, both addressed globally. All four values must be
// even. It is the primitive behind the display blit and frame assembly.
func (b *PixelBuf) CopyRect(src *PixelBuf, x, y, w, h int) {
	if x&1 != 0 || y&1 != 0 || w&1 != 0 || h&1 != 0 {
		panic(fmt.Sprintf("mpeg2: odd CopyRect %d,%d %dx%d", x, y, w, h))
	}
	if !src.Contains(x, y, w, h) || !b.Contains(x, y, w, h) {
		panic(fmt.Sprintf("mpeg2: CopyRect %d,%d %dx%d outside window", x, y, w, h))
	}
	src.checkBacking("CopyRect src")
	b.checkBacking("CopyRect dst")
	for r := 0; r < h; r++ {
		si := src.lumaIndex(x, y+r)
		di := b.lumaIndex(x, y+r)
		copy(b.Y[di:di+w], src.Y[si:si+w])
	}
	cx, cy, cw := x/2, y/2, w/2
	for r := 0; r < h/2; r++ {
		si := src.chromaIndex(cx, cy+r)
		di := b.chromaIndex(cx, cy+r)
		copy(b.Cb[di:di+cw], src.Cb[si:si+cw])
		copy(b.Cr[di:di+cw], src.Cr[si:si+cw])
	}
}
