package mpeg2

import (
	"fmt"

	"tiledwall/internal/bits"
)

// DCT coefficient tables (Annex B tables B-14 and B-15). A decoded symbol is
// a (run, level) pair; the level sign is a separate trailing bit. Two symbols
// are special:
//
//   - end of block (EOB), encoded here as run = eobRun;
//   - escape, a fixed 6-bit code followed by 6-bit run and 12-bit signed
//     level, handled outside the table.
//
// Table B-14 additionally gives run 0 / level 1 a 1-bit code ("1"+sign) when
// it is the first coefficient of a block, where EOB ("10") cannot occur.
const (
	eobRun       = -1
	dctEscape    = "0000 01"
	dctEscapeLen = 6
)

type dctSpec struct {
	run, level int
	code       string
}

type dctEntry struct {
	run   int8 // eobRun for EOB; -2 for invalid; -3 for escape
	level int8
	len   uint8
}

const (
	dctInvalid = -2
	dctEsc     = -3
)

type dctTable struct {
	maxLen int
	lut    []dctEntry
	enc    map[uint16]vlcCode // run<<8|level -> code (without sign bit)
	eob    vlcCode            // end-of-block code (zero for tables without one)
}

func buildDCT(name string, specs []dctSpec) *dctTable {
	maxLen := dctEscapeLen
	for _, s := range specs {
		if _, n := parseCode(s.code); n > maxLen {
			maxLen = n
		}
	}
	t := &dctTable{
		maxLen: maxLen,
		lut:    make([]dctEntry, 1<<uint(maxLen)),
		enc:    make(map[uint16]vlcCode, len(specs)),
	}
	for i := range t.lut {
		t.lut[i].run = dctInvalid
	}
	insert := func(code string, run, level int) {
		c, n := parseCode(code)
		base := c << uint(maxLen-n)
		span := 1 << uint(maxLen-n)
		for i := 0; i < span; i++ {
			slot := &t.lut[base+uint32(i)]
			if slot.run != dctInvalid {
				panic(fmt.Sprintf("mpeg2: DCT table %s not prefix-free at %q", name, code))
			}
			slot.run = int8(run)
			slot.level = int8(level)
			slot.len = uint8(n)
		}
	}
	for _, s := range specs {
		insert(s.code, s.run, s.level)
		if s.run == eobRun {
			c, n := parseCode(s.code)
			t.eob = vlcCode{bits: c, n: uint8(n)}
		}
		if s.run >= 0 {
			key := uint16(s.run)<<8 | uint16(s.level)
			if _, dup := t.enc[key]; dup {
				panic(fmt.Sprintf("mpeg2: DCT table %s duplicate run/level %d/%d", name, s.run, s.level))
			}
			c, n := parseCode(s.code)
			t.enc[key] = vlcCode{bits: c, n: uint8(n)}
		}
	}
	insert(dctEscape, dctEsc, 0)
	return t
}

// code returns the VLC (without sign) for run/level, or ok=false when the
// pair must be escape-coded.
func (t *dctTable) code(run, level int) (vlcCode, bool) {
	if level < 0 {
		level = -level
	}
	if run > 31 || level > 255 {
		return vlcCode{}, false
	}
	c, ok := t.enc[uint16(run)<<8|uint16(level)]
	return c, ok
}

// decode reads one DCT symbol. It returns:
//
//	eob=true                  — end of block
//	run, level (signed)       — a coefficient
//	ok=false                  — invalid code
func (t *dctTable) decode(r *bits.Reader) (run, level int, eob, ok bool) {
	e := t.lut[r.Peek(t.maxLen)]
	switch e.run {
	case dctInvalid:
		return 0, 0, false, false
	case int8(eobRun):
		r.Skip(int(e.len))
		return 0, 0, true, true
	case dctEsc:
		r.Skip(dctEscapeLen)
		run = int(r.Read(6))
		lv := int32(r.Read(12))
		if lv&0x800 != 0 {
			lv -= 0x1000
		}
		if lv == 0 || lv == -2048 {
			// Forbidden escape levels in MPEG-2.
			return 0, 0, false, false
		}
		return run, int(lv), false, true
	}
	r.Skip(int(e.len))
	run, level = int(e.run), int(e.level)
	if r.ReadBit() != 0 {
		level = -level
	}
	return run, level, false, true
}

// b14Specs is Table B-14 ("DCT coefficients table zero"). The first-
// coefficient special case for run 0 / level 1 is handled in the block
// parser. EOB is run=eobRun.
var b14Specs = []dctSpec{
	{eobRun, 0, "10"},
	{0, 1, "11"}, // subsequent-coefficient code for 0/±1
	{1, 1, "011"},
	{0, 2, "0100"}, {2, 1, "0101"},
	{0, 3, "0010 1"}, {4, 1, "0011 0"}, {3, 1, "0011 1"},
	{7, 1, "0001 00"}, {6, 1, "0001 01"}, {1, 2, "0001 10"}, {5, 1, "0001 11"},
	{2, 2, "0000 100"}, {9, 1, "0000 101"}, {0, 4, "0000 110"}, {8, 1, "0000 111"},
	{13, 1, "0010 0000"}, {0, 6, "0010 0001"}, {12, 1, "0010 0010"}, {11, 1, "0010 0011"},
	{3, 2, "0010 0100"}, {1, 3, "0010 0101"}, {0, 5, "0010 0110"}, {10, 1, "0010 0111"},
	{16, 1, "0000 0010 00"}, {5, 2, "0000 0010 01"}, {0, 7, "0000 0010 10"}, {2, 3, "0000 0010 11"},
	{1, 4, "0000 0011 00"}, {15, 1, "0000 0011 01"}, {14, 1, "0000 0011 10"}, {4, 2, "0000 0011 11"},
	{0, 11, "0000 0001 0000"}, {8, 2, "0000 0001 0001"}, {4, 3, "0000 0001 0010"}, {0, 10, "0000 0001 0011"},
	{2, 4, "0000 0001 0100"}, {7, 2, "0000 0001 0101"}, {21, 1, "0000 0001 0110"}, {20, 1, "0000 0001 0111"},
	{0, 9, "0000 0001 1000"}, {19, 1, "0000 0001 1001"}, {18, 1, "0000 0001 1010"}, {1, 5, "0000 0001 1011"},
	{3, 3, "0000 0001 1100"}, {0, 8, "0000 0001 1101"}, {6, 2, "0000 0001 1110"}, {17, 1, "0000 0001 1111"},
	{10, 2, "0000 0000 1000 0"}, {9, 2, "0000 0000 1000 1"}, {5, 3, "0000 0000 1001 0"}, {3, 4, "0000 0000 1001 1"},
	{2, 5, "0000 0000 1010 0"}, {1, 7, "0000 0000 1010 1"}, {1, 6, "0000 0000 1011 0"}, {0, 15, "0000 0000 1011 1"},
	{0, 14, "0000 0000 1100 0"}, {0, 13, "0000 0000 1100 1"}, {0, 12, "0000 0000 1101 0"}, {26, 1, "0000 0000 1101 1"},
	{25, 1, "0000 0000 1110 0"}, {24, 1, "0000 0000 1110 1"}, {23, 1, "0000 0000 1111 0"}, {22, 1, "0000 0000 1111 1"},
	{0, 31, "0000 0000 0100 00"}, {0, 30, "0000 0000 0100 01"}, {0, 29, "0000 0000 0100 10"}, {0, 28, "0000 0000 0100 11"},
	{0, 27, "0000 0000 0101 00"}, {0, 26, "0000 0000 0101 01"}, {0, 25, "0000 0000 0101 10"}, {0, 24, "0000 0000 0101 11"},
	{0, 23, "0000 0000 0110 00"}, {0, 22, "0000 0000 0110 01"}, {0, 21, "0000 0000 0110 10"}, {0, 20, "0000 0000 0110 11"},
	{0, 19, "0000 0000 0111 00"}, {0, 18, "0000 0000 0111 01"}, {0, 17, "0000 0000 0111 10"}, {0, 16, "0000 0000 0111 11"},
	{0, 40, "0000 0000 0010 000"}, {0, 39, "0000 0000 0010 001"}, {0, 38, "0000 0000 0010 010"}, {0, 37, "0000 0000 0010 011"},
	{0, 36, "0000 0000 0010 100"}, {0, 35, "0000 0000 0010 101"}, {0, 34, "0000 0000 0010 110"}, {0, 33, "0000 0000 0010 111"},
	{0, 32, "0000 0000 0011 000"}, {1, 14, "0000 0000 0011 001"}, {1, 13, "0000 0000 0011 010"}, {1, 12, "0000 0000 0011 011"},
	{1, 11, "0000 0000 0011 100"}, {1, 10, "0000 0000 0011 101"}, {1, 9, "0000 0000 0011 110"}, {1, 8, "0000 0000 0011 111"},
	{1, 18, "0000 0000 0001 0000"}, {1, 17, "0000 0000 0001 0001"}, {1, 16, "0000 0000 0001 0010"}, {1, 15, "0000 0000 0001 0011"},
	{6, 3, "0000 0000 0001 0100"}, {16, 2, "0000 0000 0001 0101"}, {15, 2, "0000 0000 0001 0110"}, {14, 2, "0000 0000 0001 0111"},
	{13, 2, "0000 0000 0001 1000"}, {12, 2, "0000 0000 0001 1001"}, {11, 2, "0000 0000 0001 1010"}, {31, 1, "0000 0000 0001 1011"},
	{30, 1, "0000 0000 0001 1100"}, {29, 1, "0000 0000 0001 1101"}, {28, 1, "0000 0000 0001 1110"}, {27, 1, "0000 0000 0001 1111"},
}

var dctTableB14 = buildDCT("B-14", b14Specs)

// dctTableB14First decodes the first coefficient of a non-intra block, where
// EOB cannot occur and run 0 / level 1 therefore takes the 1-bit code "1".
var dctTableB14First = buildDCT("B-14 first", b14First())

func b14First() []dctSpec {
	specs := make([]dctSpec, 0, len(b14Specs))
	for _, s := range b14Specs {
		switch {
		case s.run == eobRun:
			// EOB cannot be the first symbol.
		case s.run == 0 && s.level == 1:
			specs = append(specs, dctSpec{0, 1, "1"})
		default:
			specs = append(specs, s)
		}
	}
	return specs
}

// dctTableB15 is Table B-15 ("DCT coefficients table one"), selected by
// intra_vlc_format = 1 for intra blocks. The short codes that differ from
// B-14 are transcribed below; every B-14 entry whose code collides with a
// replacement is dropped, and the encoder escape-codes those pairs. This is
// a documented best-effort transcription (DESIGN.md §8): encoder and decoder
// share the table, so streams produced here always round-trip.
var dctTableB15 = buildDCT("B-15", b15Specs())

func b15Specs() []dctSpec {
	replacements := []dctSpec{
		{eobRun, 0, "0110"},
		{0, 1, "10"},
		{0, 2, "110"},
		{0, 3, "0111"},
		{1, 1, "010"},
		{0, 4, "1110 0"},
		{0, 5, "1110 1"},
	}
	replaced := map[[2]int]bool{}
	for _, r := range replacements {
		replaced[[2]int{r.run, r.level}] = true
	}
	conflicts := func(code string) bool {
		a, an := parseCode(code)
		for _, r := range replacements {
			b, bn := parseCode(r.code)
			n := an
			if bn < n {
				n = bn
			}
			if a>>uint(an-n) == b>>uint(bn-n) {
				return true
			}
		}
		return false
	}
	specs := append([]dctSpec(nil), replacements...)
	for _, s := range b14Specs {
		if replaced[[2]int{s.run, s.level}] || s.run == eobRun || conflicts(s.code) {
			continue
		}
		specs = append(specs, s)
	}
	return specs
}
