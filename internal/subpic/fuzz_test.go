package subpic_test

import (
	"bytes"
	"reflect"
	"testing"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/subpic"
)

// seedSubPicture builds a representative sub-picture covering every wire
// feature: SPH state, leading/trailing skips, payload bit offsets, both MEI
// directions and the final marker.
func seedSubPicture() *subpic.SubPicture {
	sp := &subpic.SubPicture{
		Pic: subpic.PicInfo{
			Index:       3,
			TemporalRef: 5,
			PicType:     uint8(mpeg2.PictureP),
			FCode:       [2][2]uint8{{2, 2}, {15, 15}},
			Flags:       0x3,
			DCPrecision: 1,
		},
		Pieces: []subpic.Piece{
			{
				SPH: subpic.SPH{
					SkipBits: 5, FirstAddr: 12, CodedCount: 4,
					LeadingSkip: 2, TrailingSkip: 1, QuantCode: 9,
					DCPred: [3]int32{1024, 512, 512},
					PMV:    [2][2][2]int32{{{8, -8}, {0, 0}}, {{0, 0}, {0, 0}}},
				},
				Payload: []byte{0xde, 0xad, 0xbe, 0xef, 0x10},
			},
			{
				SPH:     subpic.SPH{FirstAddr: 20, CodedCount: 1},
				Payload: []byte{0x42},
			},
		},
		MEI: []subpic.MEIInstr{
			{Kind: subpic.MEISend, Ref: subpic.RefFwd, MBX: 3, MBY: 1, Peer: 2},
			{Kind: subpic.MEIRecv, Ref: subpic.RefBwd, MBX: 0, MBY: 2, Peer: 1},
		},
	}
	return sp
}

// FuzzSubPictureUnmarshal feeds arbitrary bytes to the sub-picture codec.
// Any input that unmarshals must survive a marshal/unmarshal round trip
// unchanged (wire-format stability), and no input may panic or demand an
// allocation disproportionate to its length.
func FuzzSubPictureUnmarshal(f *testing.F) {
	f.Add(seedSubPicture().Marshal())
	f.Add((&subpic.SubPicture{Final: true}).Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := subpic.Unmarshal(data)
		if err != nil {
			return
		}
		wire := sp.Marshal()
		sp2, err := subpic.Unmarshal(wire)
		if err != nil {
			t.Fatalf("re-unmarshal of marshalled sub-picture failed: %v", err)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("sub-picture round trip changed value:\n first %+v\nsecond %+v", sp, sp2)
		}
		if !bytes.Equal(wire, sp2.Marshal()) {
			t.Fatal("marshal is not a fixed point after one round trip")
		}
	})
}

// FuzzBlockBundle does the same for the MEI block-exchange payload codec.
func FuzzBlockBundle(f *testing.F) {
	bb := &subpic.BlockBundle{
		PicIndex: 7,
		Cells: []subpic.BlockCell{
			{Ref: subpic.RefFwd, MBX: 1, MBY: 2},
			{Ref: subpic.RefBwd, MBX: 3, MBY: 0},
		},
		Pixels: bytes.Repeat([]byte{0x80}, 2*mpeg2.MacroblockBytes),
	}
	f.Add(bb.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := subpic.UnmarshalBlocks(data)
		if err != nil {
			return
		}
		wire := b.Marshal()
		b2, err := subpic.UnmarshalBlocks(wire)
		if err != nil {
			t.Fatalf("re-unmarshal of marshalled bundle failed: %v", err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("bundle round trip changed value:\n first %+v\nsecond %+v", b, b2)
		}
	})
}

// TestSeedRoundTrip pins the committed seed sub-picture's round trip outside
// the fuzzer so a codec regression fails fast in ordinary test runs.
func TestSeedRoundTrip(t *testing.T) {
	sp := seedSubPicture()
	got, err := subpic.Unmarshal(sp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, got) {
		t.Fatalf("round trip changed value:\nin  %+v\nout %+v", sp, got)
	}
}
