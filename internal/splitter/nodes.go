package splitter

import (
	"fmt"
	"time"

	"tiledwall/internal/bits"
	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/recovery"
	"tiledwall/internal/subpic"
	"tiledwall/internal/wall"
)

// RootConfig wires the root splitter node.
type RootConfig struct {
	Stream []byte
	// SplitterNodes lists the k second-level splitter node ids in
	// round-robin order.
	SplitterNodes []int
	// Dynamic enables credit-based splitter selection instead of strict
	// round-robin: each picture goes to the splitter with the most free
	// receive buffers, so a splitter stuck on an expensive picture is not
	// handed more work while an idle one waits. This implements the dynamic
	// load balancing the paper's §6 leaves as future work; the ANID/NSID
	// ordering protocol is unaffected because the root always announces the
	// actual next assignee.
	Dynamic bool

	// Recovery, when non-nil, makes the root fault-tolerant: sent pictures
	// are retained until the assignee's ack releases them (the supervisor
	// replays the rest to a respawned splitter), and credit waits give up
	// after the per-picture deadline instead of deadlocking on a dead
	// splitter's lost acks.
	Recovery *recovery.RootHooks
}

// RootResult reports the root splitter's run.
type RootResult struct {
	Pictures int
	ScanTime time.Duration
	CopyTime time.Duration
	WaitTime time.Duration
	SendTime time.Duration
}

// RunRoot scans the stream at picture level (start codes only — the cheap
// split of Table 1), copies each picture unit into a send buffer and
// round-robins it to the second-level splitters. Before every send except
// the first it waits for an ack from any splitter (two posted receive
// buffers at each splitter make the pipeline two pictures deep). The NSID —
// the splitter responsible for the next picture — rides along so splitters
// can fill in the ANID without knowing each other (§4.5, Table 3).
func RunRoot(node cluster.Net, cfg RootConfig) (*RootResult, error) {
	res := &RootResult{}
	k := len(cfg.SplitterNodes)
	if k == 0 {
		return nil, fmt.Errorf("splitter: root needs at least one second-level splitter")
	}
	data := cfg.Stream
	rh := cfg.Recovery
	if rh != nil {
		rh.Cfg = rh.Cfg.WithDefaults()
		if rh.Rec == nil {
			rh.Rec = &metrics.Recovery{}
		}
	}

	// The root's per-picture work is exactly the paper's: find the picture
	// boundaries by start-code scan and copy the bytes out. Flow control is
	// credit-based (two posted receive buffers per splitter); the assignee
	// of picture p+1 is fixed before p is sent so its id can ride along as
	// the NSID.
	credits := make([]int, k)
	nodeIdx := make(map[int]int, k)
	for i, id := range cfg.SplitterNodes {
		credits[i] = 2
		nodeIdx[id] = i
	}
	// Credits never exceed the two posted buffers: under recovery, replay
	// and synthetic credits can produce duplicate acks, which must not
	// inflate the window.
	credit := func(i int) {
		if credits[i] < 2 {
			credits[i]++
		}
	}
	onAck := func(m *cluster.Message) {
		i := nodeIdx[m.From]
		credit(i)
		if rh != nil && rh.Retainer != nil {
			rh.Retainer.Ack(0, i, m.Seq)
		}
	}
	// takeAck blocks for one splitter ack while waiting on assignee a's
	// credit. Under recovery it gives up after the per-picture deadline (a
	// dead splitter's ack is gone for good — its retained pictures are the
	// supervisor's to replay) and grants a synthetic credit so the pipeline
	// keeps moving.
	takeAck := func(a int) error {
		if rh != nil {
			m, timedOut := node.RecvTimeout(cluster.MsgAck, rh.Cfg.PictureDeadline)
			if timedOut {
				rh.Rec.AddAckTimeout()
				credit(a)
				return nil
			}
			if m == nil {
				return fmt.Errorf("splitter: root aborted while waiting for splitter ack")
			}
			onAck(m)
			return nil
		}
		m := node.Recv(cluster.MsgAck)
		if m == nil {
			return fmt.Errorf("splitter: root aborted while waiting for splitter ack")
		}
		onAck(m)
		return nil
	}
	// choose picks the next assignee: strict round-robin, or (Dynamic) the
	// splitter with the most free buffers, ties broken round-robin.
	rr := 0
	choose := func() int {
		if !cfg.Dynamic {
			c := rr
			rr = (rr + 1) % k
			return c
		}
		best := rr
		for off := 0; off < k; off++ {
			i := (rr + off) % k
			if credits[i] > credits[best] {
				best = i
			}
		}
		rr = (best + 1) % k
		return best
	}

	a := choose()
	pics := 0
	picStart := -1
	emit := func(end int) error {
		if picStart < 0 {
			return nil
		}
		t0 := time.Now()
		buf := make([]byte, end-picStart)
		copy(buf, data[picStart:end])
		res.CopyTime += time.Since(t0)
		picStart = -1

		t0 = time.Now()
		for credits[a] == 0 {
			if err := takeAck(a); err != nil {
				return err
			}
		}
		res.WaitTime += time.Since(t0)
		// Drain any further acks without blocking so Dynamic sees fresh
		// credit counts.
		for {
			m, ok := node.TryRecv(cluster.MsgAck)
			if !ok {
				break
			}
			onAck(m)
		}
		credits[a]--
		next := choose()

		t0 = time.Now()
		if rh != nil && rh.Retainer != nil {
			rh.Retainer.Retain(0, a, pics, cfg.SplitterNodes[next], 0, buf)
		}
		node.Send(cfg.SplitterNodes[a], &cluster.Message{
			Kind:    cluster.MsgPicture,
			Seq:     pics,
			Tag:     cfg.SplitterNodes[next], // NSID
			Payload: buf,
		})
		res.SendTime += time.Since(t0)
		a = next
		pics++
		return nil
	}

	scanStart := time.Now()
	for off := bits.NextStartCode(data, 0); off >= 0; off = bits.NextStartCode(data, off+4) {
		code := data[off+3]
		switch {
		case code == bits.PictureStartCode:
			res.ScanTime += time.Since(scanStart)
			if err := emit(off); err != nil {
				return res, err
			}
			picStart = off
			scanStart = time.Now()
		case code == bits.GroupStartCode, code == bits.SequenceHeaderCod, code == bits.SequenceEndCode:
			res.ScanTime += time.Since(scanStart)
			if err := emit(off); err != nil {
				return res, err
			}
			scanStart = time.Now()
		}
	}
	res.ScanTime += time.Since(scanStart)
	if err := emit(len(data)); err != nil {
		return res, err
	}
	res.Pictures = pics
	// Tell every splitter the stream has ended. The end marker carries the
	// total picture count (in Tag): a decoder may see a Final forwarded by a
	// splitter that finished early before the last pictures from the other
	// splitters arrive, so it exits only once it has decoded them all.
	for i := 0; i < k; i++ {
		node.Send(cfg.SplitterNodes[i], &cluster.Message{Kind: cluster.MsgPicture, Seq: -1, Tag: pics})
	}
	return res, nil
}

// SecondConfig wires one second-level splitter node.
type SecondConfig struct {
	Seq *mpeg2.SequenceHeader
	Geo *wall.Geometry
	// Index is this splitter's position in the round-robin order (0-based);
	// only the splitter with Index 0 skips the decoder-ack wait, and only
	// for the very first picture of the stream (Table 3).
	Index int
	// DecoderNodes maps tile index to decoder node id.
	DecoderNodes []int
	// RootNode is the root splitter's node id.
	RootNode int

	// Recovery, when non-nil, makes the splitter fault-tolerant: it renews
	// its lease per picture, retains every sub-picture it ships for replay to
	// respawned decoders, deduplicates pictures it receives twice (replay can
	// overlap the queue a dead incarnation left behind), and abandons credit
	// waits after the per-picture deadline.
	Recovery *recovery.SplitterHooks

	// Pooled serialises sub-pictures into recycled cluster slabs (the
	// receiving decoder releases them once decoded) and lets the splitter
	// reuse its sub-picture accumulators across pictures. Must be off under
	// Recovery: the retainer keeps payloads alive for replay, which a
	// recycled slab would corrupt. RunSecond forces it off when recovery
	// hooks are wired.
	Pooled bool

	// SplitWorkers is the slice-parallel fan-out inside the splitter
	// (SplitOptions.Workers): 0 selects GOMAXPROCS, 1 the serial path.
	SplitWorkers int
}

// SecondResult reports a second-level splitter's run.
type SecondResult struct {
	Pictures   int
	Breakdown  metrics.Breakdown      // PhaseWork = splitting, PhaseReceive = waiting for root, PhaseWaitMB = waiting for decoder acks
	Split      metrics.SplitBreakdown // PhaseWork resolved into scan/parse/sort, plus serialization from PhaseServe
	SPBytes    int64                  // serialised sub-picture bytes produced
	InputBytes int64                  // picture bytes received
	// SkippedSubPics counts tiles reduced to ROI skip markers (subscription
	// sessions only; zero on a full subscription).
	SkippedSubPics int64
}

// FoldSplit merges the splitter's phase breakdown into the result and models
// the node's PhaseWork as the splitting stage's critical path: the parse
// region's timeshared wall time is replaced by the slowest worker lane. This
// is the per-node busy methodology of Result.Modeled (EXPERIMENTS.md) applied
// one level down — each worker stands for a core of the splitter PC. On hosts
// with a core per worker wall and critical path coincide and the adjustment
// vanishes; ParseWall keeps the raw figure either way.
func (r *SecondResult) FoldSplit(ms *MBSplitter) {
	bd := ms.Breakdown()
	r.Split.Merge(bd)
	if over := bd.ParseWall - bd.Durations[metrics.SplitParse]; over > 0 {
		w := &r.Breakdown.Durations[metrics.PhaseWork]
		if *w -= over; *w < 0 {
			*w = 0
		}
	}
}

// RunSecond receives pictures from the root, splits them at macroblock
// level, and ships one sub-picture (with MEIs) to every decoder, gated on
// decoder acks addressed to this node by the ANID redirect.
func RunSecond(node cluster.Net, cfg SecondConfig) (*SecondResult, error) {
	res := &SecondResult{}
	b := &res.Breakdown
	rh := cfg.Recovery
	if rh != nil {
		rh.Cfg = rh.Cfg.WithDefaults()
		if rh.Rec == nil {
			rh.Rec = &metrics.Recovery{}
		}
		cfg.Pooled = false // retained payloads must never be recycled
	}
	// Pooled pipelines marshal every sub-picture before the next Split, so
	// they can also run the splitter in Reuse mode (splitter-owned output).
	ms := NewMBSplitterOpts(cfg.Seq, cfg.Geo, SplitOptions{Workers: cfg.SplitWorkers, Reuse: cfg.Pooled})
	defer ms.Close()
	defer func() { res.FoldSplit(ms) }()
	nd := len(cfg.DecoderNodes)
	marshal := func(sp *subpic.SubPicture) []byte {
		t0 := time.Now()
		var payload []byte
		if cfg.Pooled {
			payload = sp.AppendTo(cluster.GetSlab(sp.WireSize()))
		} else {
			payload = sp.Marshal()
		}
		res.Split.Add(metrics.SplitSerialize, time.Since(t0))
		return payload
	}
	// A respawned incarnation must not skip the decoder-ack wait: the "very
	// first picture" exemption belongs to the stream, not the incarnation.
	first := rh == nil || !rh.Resume
	// Pictures already split by this incarnation, for dedup when the
	// supervisor's replay overlaps the originals still queued on the node.
	// (Cross-incarnation duplicates are caught by the decoders' own dedup.)
	processed := map[int]bool{}

	for {
		if rh != nil {
			rh.Renew()
		}
		var msg *cluster.Message
		b.Timed(metrics.PhaseReceive, func() { msg = node.Recv(cluster.MsgPicture) })
		if msg == nil {
			return res, fmt.Errorf("splitter %d: fabric aborted", cfg.Index)
		}
		if msg.Seq < 0 { // end of stream: forward the marker and quit
			for t := 0; t < nd; t++ {
				sp := &subpic.SubPicture{Final: true}
				sp.Pic.Index = int32(msg.Tag) // total picture count
				node.Send(cfg.DecoderNodes[t], &cluster.Message{Kind: cluster.MsgSubPicture, Seq: -1, Tag: node.ID(), Payload: marshal(sp)})
			}
			return res, nil
		}
		// Injected crash: the picture is consumed but the root has not been
		// acked — the root's retained copy is what the supervisor replays.
		if rh != nil && rh.Chaos.SplitterDies(cfg.Index, msg.Seq) {
			return res, recovery.ErrKilled
		}
		replay := msg.Flags&cluster.FlagReplay != 0
		// Ack the root immediately: the posted buffer is recycled. Replays
		// are not acked (the root's credit was settled by timeout), but
		// duplicate originals are — the root expects its credit back.
		if !replay {
			b.Timed(metrics.PhaseAck, func() {
				node.Send(cfg.RootNode, &cluster.Message{Kind: cluster.MsgAck, Seq: msg.Seq})
			})
		}
		if processed[msg.Seq] {
			continue
		}
		processed[msg.Seq] = true
		res.InputBytes += int64(len(msg.Payload))

		var sps []*subpic.SubPicture
		var err error
		b.Timed(metrics.PhaseWork, func() { sps, err = ms.Split(msg.Payload, msg.Seq) })
		if err != nil {
			return res, fmt.Errorf("splitter %d: %w", cfg.Index, err)
		}

		// Wait for the go-ahead from every decoder (redirected acks), except
		// for the very first picture in the stream. Under recovery the wait
		// is bounded: a dead decoder's ack may never come.
		if !(first && msg.Seq == 0) {
			aborted := false
			b.Timed(metrics.PhaseWaitMB, func() {
				for i := 0; i < nd; i++ {
					if rh != nil {
						m, timedOut := node.RecvTimeout(cluster.MsgAck, rh.Cfg.PictureDeadline)
						if timedOut {
							rh.Rec.AddAckTimeout()
							return
						}
						if m == nil {
							aborted = true
							return
						}
						continue
					}
					if node.Recv(cluster.MsgAck) == nil {
						aborted = true
						return
					}
				}
			})
			if aborted {
				return res, fmt.Errorf("splitter %d: fabric aborted while waiting for decoder acks", cfg.Index)
			}
		}
		first = false

		anid := msg.Tag // root told us who handles the next picture
		b.Timed(metrics.PhaseServe, func() {
			for t := 0; t < nd; t++ {
				payload := marshal(sps[t])
				res.SPBytes += int64(len(payload))
				if rh != nil && rh.Retainer != nil {
					rh.Retainer.Retain(0, t, msg.Seq, anid, payload)
				}
				node.Send(cfg.DecoderNodes[t], &cluster.Message{
					Kind:    cluster.MsgSubPicture,
					Seq:     msg.Seq,
					Tag:     anid,
					Payload: payload,
				})
			}
		})
		res.Pictures++
		b.Pictures++
	}
}
