package mpeg2

import (
	"testing"

	"tiledwall/internal/bits"
)

// Edge cases of the macroblock syntax machinery.

// TestLongSkipRunEscapes: address increments beyond 33 use macroblock_escape
// codes; write a slice with a 75-macroblock gap and parse it back.
func TestLongSkipRunEscapes(t *testing.T) {
	seq := testSeq(80*16, 32) // 80 macroblocks per row
	pic := testPic(PictureP, false, false, false)
	ctx, err := NewPictureContext(seq, pic)
	if err != nil {
		t.Fatal(err)
	}
	w := bits.NewWriter(128)
	sw := NewSliceWriter(ctx, w, 0, 8)
	first := &MBCode{Addr: 0, Flags: MBMotionFwd, QuantCode: 8}
	if err := sw.WriteMB(first); err != nil {
		t.Fatal(err)
	}
	last := &MBCode{Addr: 76, SkipBefore: 75, Flags: MBMotionFwd, QuantCode: 8}
	if err := sw.WriteMB(last); err != nil {
		t.Fatal(err)
	}
	w.AlignZero()
	w.WriteBytes([]byte{0, 0, 1})

	r := bits.NewReader(w.Bytes())
	r.Skip(32)
	sd, err := NewSliceDecoder(ctx, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mb Macroblock
	if ok, err := sd.Next(&mb); !ok || err != nil || mb.Addr != 0 {
		t.Fatalf("first: ok=%v err=%v addr=%d", ok, err, mb.Addr)
	}
	if ok, err := sd.Next(&mb); !ok || err != nil {
		t.Fatalf("second: ok=%v err=%v", ok, err)
	}
	if mb.Addr != 76 || mb.SkippedBefore != 75 {
		t.Fatalf("second: addr=%d skipped=%d, want 76/75", mb.Addr, mb.SkippedBefore)
	}
	// Skipped run in P resets the motion predictors: state must be clean.
	if mb.StateBefore.PMV != ([2][2][2]int32{}) {
		t.Fatalf("PMVs not reset across skip run: %v", mb.StateBefore.PMV)
	}
}

// TestQuantChangeMidSlice: a macroblock-level quantiser change must stick
// for subsequent macroblocks and be visible in the parsed QuantCode.
func TestQuantChangeMidSlice(t *testing.T) {
	seq := testSeq(64, 32)
	pic := testPic(PictureI, false, false, false)
	ctx, err := NewPictureContext(seq, pic)
	if err != nil {
		t.Fatal(err)
	}
	w := bits.NewWriter(256)
	sw := NewSliceWriter(ctx, w, 0, 4)
	quants := []int{4, 20, 20, 7}
	for i, q := range quants {
		var blocks [6][64]int32
		for b := 0; b < 6; b++ {
			blocks[b][0] = 100
		}
		mb := &MBCode{Addr: i, Flags: MBIntra, QuantCode: q, CBP: 63, Blocks: &blocks}
		if err := sw.WriteMB(mb); err != nil {
			t.Fatal(err)
		}
	}
	w.AlignZero()
	w.WriteBytes([]byte{0, 0, 1})

	r := bits.NewReader(w.Bytes())
	r.Skip(32)
	sd, err := NewSliceDecoder(ctx, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mb Macroblock
	for i, want := range quants {
		if ok, err := sd.Next(&mb); !ok || err != nil {
			t.Fatalf("mb %d: ok=%v err=%v", i, ok, err)
		}
		if mb.QuantCode != want {
			t.Fatalf("mb %d quant %d, want %d", i, mb.QuantCode, want)
		}
		// MBQuant flag appears exactly when the code changes.
		changed := i == 0 && want != 4 || i > 0 && want != quants[i-1]
		if got := mb.Flags&MBQuant != 0; got != changed && i > 0 {
			t.Fatalf("mb %d MBQuant=%v, change=%v", i, got, changed)
		}
	}
}

// TestMotionVectorWraparound: deltas that exceed the f_code range wrap at
// the decoder; encode a vector far from its predictor and verify.
func TestMotionVectorWraparound(t *testing.T) {
	seq := testSeq(64, 32)
	pic := testPic(PictureP, false, false, false)
	pic.FCode[0][0], pic.FCode[0][1] = 2, 2 // range [-32, 31] half-samples
	ctx, err := NewPictureContext(seq, pic)
	if err != nil {
		t.Fatal(err)
	}
	w := bits.NewWriter(128)
	sw := NewSliceWriter(ctx, w, 0, 8)
	// First vector at +30, second at -30: the raw delta (-60) is outside the
	// [-32, 31] range and must be transmitted wrapped.
	for i, mv := range [][2]int32{{30, 0}, {-30, 0}} {
		mb := &MBCode{Addr: i, Flags: MBMotionFwd, QuantCode: 8, MVFwd: mv}
		if err := sw.WriteMB(mb); err != nil {
			t.Fatal(err)
		}
	}
	w.AlignZero()
	w.WriteBytes([]byte{0, 0, 1})

	r := bits.NewReader(w.Bytes())
	r.Skip(32)
	sd, err := NewSliceDecoder(ctx, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mb Macroblock
	for i, want := range [][2]int32{{30, 0}, {-30, 0}} {
		if ok, err := sd.Next(&mb); !ok || err != nil {
			t.Fatalf("mb %d: ok=%v err=%v", i, ok, err)
		}
		if mb.MVFwd != want {
			t.Fatalf("mb %d vector %v, want %v", i, mb.MVFwd, want)
		}
	}
}

// TestWriterRejectsIllegalMacroblocks covers SliceWriter validation.
func TestWriterRejectsIllegalMacroblocks(t *testing.T) {
	seq := testSeq(64, 32)
	pic := testPic(PictureP, false, false, false)
	ctx, err := NewPictureContext(seq, pic)
	if err != nil {
		t.Fatal(err)
	}
	w := bits.NewWriter(64)
	sw := NewSliceWriter(ctx, w, 0, 8)
	// Skips before the first macroblock of a slice.
	if err := sw.WriteMB(&MBCode{Addr: 2, SkipBefore: 2, Flags: MBMotionFwd}); err == nil {
		t.Error("leading skip accepted")
	}
	if err := sw.WriteMB(&MBCode{Addr: 0, Flags: MBMotionFwd}); err != nil {
		t.Fatal(err)
	}
	// Address going backwards.
	if err := sw.WriteMB(&MBCode{Addr: 0, Flags: MBMotionFwd}); err == nil {
		t.Error("non-increasing address accepted")
	}
	// Pattern flag with empty CBP.
	if err := sw.WriteMB(&MBCode{Addr: 1, Flags: MBMotionFwd | MBPattern}); err == nil {
		t.Error("MBPattern with empty CBP accepted")
	}
	// Vector outside the f_code range.
	if err := sw.WriteMB(&MBCode{Addr: 1, Flags: MBMotionFwd, MVFwd: [2]int32{4000, 0}}); err == nil {
		t.Error("out-of-range vector accepted")
	}
}

// TestIntraVLCFormatTables: the same intra block round-trips under both
// intra VLC formats (B-14 and B-15).
func TestIntraVLCFormatTables(t *testing.T) {
	for _, intraVLC := range []bool{false, true} {
		seq := testSeq(32, 32)
		pic := testPic(PictureI, intraVLC, false, false)
		ctx, err := NewPictureContext(seq, pic)
		if err != nil {
			t.Fatal(err)
		}
		var blocks [6][64]int32
		for b := 0; b < 6; b++ {
			blocks[b][0] = 80
			blocks[b][ZigZagScan[1]] = 3
			blocks[b][ZigZagScan[5]] = -2
			blocks[b][ZigZagScan[20]] = 1
		}
		w := bits.NewWriter(128)
		sw := NewSliceWriter(ctx, w, 0, 8)
		want := blocks
		if err := sw.WriteMB(&MBCode{Addr: 0, Flags: MBIntra, QuantCode: 8, CBP: 63, Blocks: &blocks}); err != nil {
			t.Fatal(err)
		}
		w.AlignZero()
		w.WriteBytes([]byte{0, 0, 1})

		r := bits.NewReader(w.Bytes())
		r.Skip(32)
		sd, err := NewSliceDecoder(ctx, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		var mb Macroblock
		if ok, err := sd.Next(&mb); !ok || err != nil {
			t.Fatalf("intraVLC=%v: ok=%v err=%v", intraVLC, ok, err)
		}
		// Compare against the dequantised original.
		qs := QuantiserScale(8, false)
		for b := 0; b < 6; b++ {
			ref := want[b]
			DequantIntra(&ref, &seq.IntraQ, qs, pic.DCShift())
			if ref != mb.Blocks[b] {
				t.Fatalf("intraVLC=%v block %d mismatch", intraVLC, b)
			}
		}
	}
}
