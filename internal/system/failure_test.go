package system

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tiledwall/internal/bits"
	"tiledwall/internal/cluster"
	"tiledwall/internal/video"
)

// Failure injection: the pipeline must fail loudly (with the abort
// mechanism unwinding every node) rather than hanging or producing silent
// corruption.

func TestCorruptSliceDataFailsCleanly(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 128, 96, 6)
	// Corrupt coefficient data inside the first picture's slices without
	// touching start codes: flip bits in the middle of the largest gap
	// between start codes.
	offs, _ := bits.ScanStartCodes(stream)
	best, bestGap := -1, 0
	for i := 0; i+1 < len(offs); i++ {
		if gap := offs[i+1] - offs[i]; gap > bestGap {
			best, bestGap = i, gap
		}
	}
	if best < 0 || bestGap < 32 {
		t.Fatal("no slice payload found to corrupt")
	}
	corrupt := append([]byte(nil), stream...)
	mid := offs[best] + bestGap/2
	for j := 0; j < 8; j++ {
		corrupt[mid+j] ^= 0xA5
	}
	// Guard: do not accidentally fabricate a start code.
	if n := len(mustScan(corrupt)); n != len(offs) {
		t.Skip("corruption changed start-code structure; pattern-specific")
	}

	_, err := Run(corrupt, Config{K: 2, M: 2, N: 2})
	if err == nil {
		// VLC corruption is not guaranteed to be syntactically invalid —
		// it can decode to different but legal macroblocks. What must never
		// happen is a hang; reaching here without one is acceptable.
		t.Log("corruption decoded as legal (different) data; no hang, no crash")
		return
	}
	if !strings.Contains(err.Error(), "") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

func mustScan(data []byte) []int {
	offs, _ := bits.ScanStartCodes(data)
	return offs
}

func TestTruncatedStreamFailsCleanly(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 128, 96, 6)
	truncated := stream[:len(stream)*2/3]
	// The parallel system must terminate (error or short output), not hang.
	res, err := Run(truncated, Config{K: 1, M: 2, N: 1, CollectFrames: true})
	if err != nil {
		return // clean failure
	}
	if len(res.Frames) >= 6 {
		t.Fatalf("truncated stream yielded %d full frames", len(res.Frames))
	}
}

func TestEmptyishStreamRejected(t *testing.T) {
	for _, data := range [][]byte{nil, {0, 0, 1}, make([]byte, 64)} {
		if _, err := Run(data, Config{K: 1, M: 1, N: 1}); err == nil {
			t.Error("degenerate stream accepted")
		}
	}
}

func TestBadGeometryRejected(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 64, 48, 3)
	if _, err := Run(stream, Config{K: 1, M: 40, N: 1}); err == nil {
		t.Error("wall wider than the picture accepted")
	}
	if _, err := Run(stream, Config{K: 1, M: 0, N: 1}); err == nil {
		t.Error("zero-tile wall accepted")
	}
}

// TestTinyHaloDetected: an undersized halo window must be reported as such
// (the RECV falls outside the reference window), not silently mis-decode.
func TestTinyHaloDetected(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 9)
	_, err := Run(stream, Config{K: 1, M: 2, N: 2, MaxFCode: -1})
	// MaxFCode -1 clamps to fcode 1 => 32 px halo, while the stream uses
	// fcode 3 vectors (up to 32 px reach + interpolation): boundary vectors
	// may or may not exceed the window depending on content. Either a clean
	// "increase HaloPx" error or success is acceptable; a hang or panic is
	// not. (The error path is deterministic for the fixed seed used here.)
	if err != nil && !strings.Contains(err.Error(), "HaloPx") && !strings.Contains(err.Error(), "reference window") {
		t.Fatalf("unexpected error kind: %v", err)
	}
}

func TestCalibration(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 12)
	cal, err := Calibrate(stream, 2, 2, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cal.TS <= 0 || cal.TD <= 0 {
		t.Fatalf("non-positive calibration: %+v", cal)
	}
	if cal.Pictures != 6 {
		t.Errorf("calibrated over %d pictures", cal.Pictures)
	}
	// The formula's basic sanity: more splitters never predict lower fps.
	prev := 0.0
	for k := 0; k <= 4; k++ {
		f := cal.PredictedFPS(k)
		if f < prev {
			t.Errorf("PredictedFPS(%d) = %f < PredictedFPS(%d) = %f", k, f, k-1, prev)
		}
		prev = f
	}
	// RecommendedK saturates the decoders: predicted fps at k_rec within a
	// hair of the decode bound.
	k := cal.RecommendedK(0)
	bound := 1 / cal.TD.Seconds()
	if got := cal.PredictedFPS(maxInt(k, 1)); got < bound*0.99 {
		t.Errorf("recommended k=%d gives %f fps, decode bound %f", k, got, bound)
	}
	// A modest target frame rate needs fewer splitters.
	if kLow := cal.RecommendedK(1.0); kLow > k {
		t.Errorf("low-target k=%d exceeds unconstrained k=%d", kLow, k)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- Property tests ----------------------------------------------------------
//
// Randomised (but seeded and logged) sweeps over configuration and fault
// space. They are part of the -race suite: the properties under test —
// in-order bit-exact delivery, no deadlock under dropped credits or torn
// streams — are exactly the ones data races break first.

// propertySeed is fixed so CI is deterministic; when a property fails, the
// log line carries everything needed to replay the trial.
const propertySeed = 1977

// TestPropertyRandomConfigs: for random k/m/n/overlap configurations the
// assembled output must be the serial decode, frame for frame, in display
// order. Ordering is asserted implicitly: any reordering, duplication or
// loss under the ANID ack-redirect protocol produces a frame mismatch.
func TestPropertyRandomConfigs(t *testing.T) {
	stream := makeStream(t, video.SceneFishTank, 160, 96, 8)
	ref := serialFrames(t, stream)
	rng := rand.New(rand.NewSource(propertySeed))
	for trial := 0; trial < 8; trial++ {
		cfg := Config{
			K:             rng.Intn(5),
			M:             1 + rng.Intn(3),
			N:             1 + rng.Intn(2),
			Overlap:       []int{0, 0, 8, 16}[rng.Intn(4)],
			CollectFrames: true,
		}
		if cfg.M*cfg.N == 1 {
			cfg.Overlap = 0
		}
		name := fmt.Sprintf("trial %d: seed %d, 1-%d-(%d,%d)ov%d", trial, propertySeed, cfg.K, cfg.M, cfg.N, cfg.Overlap)
		res, err := Run(stream, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Frames) != len(ref) {
			t.Fatalf("%s: %d frames, want %d", name, len(res.Frames), len(ref))
		}
		for i := range ref {
			if !video.Equal(ref[i].Buf, res.Frames[i]) {
				t.Fatalf("%s: frame %d differs from serial decode", name, i)
			}
		}
	}
}

// TestPropertyDroppedAcks: GM is reliable, so the credit protocol has no
// retransmit path — losing an ack is outside its contract and by design
// stalls the pipeline. The property: an ack dropped at a random point either
// does not matter (the run still completes bit-exactly) or surfaces as the
// watchdog's typed cluster.ErrStalled — never a hang, never corruption.
func TestPropertyDroppedAcks(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 128, 96, 6)
	ref := serialFrames(t, stream)
	rng := rand.New(rand.NewSource(propertySeed))
	stalled := 0
	for trial := 0; trial < 6; trial++ {
		dropAt := int64(1 + rng.Intn(40)) // which ack (1-based) to start losing
		var acks int64
		cfg := Config{
			K: 1 + rng.Intn(3), M: 2, N: 1 + rng.Intn(2),
			CollectFrames: true,
			Fabric: cluster.Config{
				StallTimeout: 500 * time.Millisecond,
				Drop: func(m *cluster.Message) bool {
					return m.Kind == cluster.MsgAck && atomic.AddInt64(&acks, 1) >= dropAt
				},
			},
		}
		name := fmt.Sprintf("trial %d: seed %d, 1-%d-(%d,%d), drop acks from #%d", trial, propertySeed, cfg.K, cfg.M, cfg.N, dropAt)
		res, err := Run(stream, cfg)
		if err != nil {
			if !errors.Is(err, cluster.ErrStalled) {
				t.Fatalf("%s: stall expected, got: %v", name, err)
			}
			stalled++
			continue
		}
		if len(res.Frames) != len(ref) {
			t.Fatalf("%s: completed with %d frames, want %d", name, len(res.Frames), len(ref))
		}
		for i := range ref {
			if !video.Equal(ref[i].Buf, res.Frames[i]) {
				t.Fatalf("%s: frame %d differs from serial decode", name, i)
			}
		}
	}
	// Dropping acks early in a multi-picture run must stall at least once;
	// if it never does, the Drop hook is not wired into the ack path.
	if stalled == 0 {
		t.Error("no trial stalled: ack drops are not reaching the credit protocol")
	}
}

// TestPropertyTruncatedPictures: streams torn at random byte offsets must
// terminate — cleanly rejected, partially decoded, or stalled-and-aborted —
// under every pipeline shape. The stall watchdog bounds the failure mode.
func TestPropertyTruncatedPictures(t *testing.T) {
	stream := makeStream(t, video.SceneBroadcast, 160, 96, 8)
	rng := rand.New(rand.NewSource(propertySeed))
	for trial := 0; trial < 8; trial++ {
		// Cut inside the picture data region (past the sequence header).
		cut := 64 + rng.Intn(len(stream)-64)
		cfg := Config{
			K: rng.Intn(3), M: 1 + rng.Intn(2), N: 1 + rng.Intn(2),
			CollectFrames: true,
			Fabric:        cluster.Config{StallTimeout: time.Second},
		}
		name := fmt.Sprintf("trial %d: seed %d, 1-%d-(%d,%d), cut at %d/%d", trial, propertySeed, cfg.K, cfg.M, cfg.N, cut, len(stream))
		res, err := Run(stream[:cut], cfg)
		if err != nil {
			continue // clean, typed failure
		}
		if len(res.Frames) > 8 {
			t.Fatalf("%s: truncated stream produced %d frames", name, len(res.Frames))
		}
	}
}

// TestModeledThroughput sanity: modelled fps is finite, positive, and not
// slower than the busiest node implies.
func TestModeledThroughput(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 9)
	res, err := Run(stream, Config{K: 2, M: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	mt := res.Modeled()
	if mt.FPS() <= 0 {
		t.Fatalf("modelled fps %f", mt.FPS())
	}
	if mt.Elapsed > res.Throughput.Elapsed {
		t.Errorf("modelled elapsed %v exceeds wall clock %v", mt.Elapsed, res.Throughput.Elapsed)
	}
}
