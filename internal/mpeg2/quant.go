package mpeg2

// Quantisation (ISO/IEC 13818-2 §7.4): quantiser-scale mapping, default
// weighting matrices, and inverse quantisation with saturation and mismatch
// control. The forward direction used by the encoder lives in
// internal/encoder; it inverts the exact arithmetic defined here.

// DefaultIntraQuantMatrix is the default intra weighting matrix, in raster
// order (§6.3.11).
var DefaultIntraQuantMatrix = [64]uint8{
	8, 16, 19, 22, 26, 27, 29, 34,
	16, 16, 22, 24, 27, 29, 34, 37,
	19, 22, 26, 27, 29, 34, 34, 38,
	22, 22, 26, 27, 29, 34, 37, 40,
	22, 26, 27, 29, 32, 35, 40, 48,
	26, 27, 29, 32, 35, 40, 48, 58,
	26, 27, 29, 34, 38, 46, 56, 69,
	27, 29, 35, 38, 46, 56, 69, 83,
}

// DefaultNonIntraQuantMatrix is the flat default non-intra matrix.
var DefaultNonIntraQuantMatrix = [64]uint8{
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
}

// nonLinearQuantScale is the q_scale_type = 1 mapping (table 7-6).
var nonLinearQuantScale = [32]int32{
	0, 1, 2, 3, 4, 5, 6, 7,
	8, 10, 12, 14, 16, 18, 20, 22,
	24, 28, 32, 36, 40, 44, 48, 52,
	56, 64, 72, 80, 88, 96, 104, 112,
}

// QuantiserScale maps quantiser_scale_code (1..31) to quantiser_scale for
// the given q_scale_type.
func QuantiserScale(code int, qScaleType bool) int32 {
	if code < 1 {
		code = 1
	} else if code > 31 {
		code = 31
	}
	if qScaleType {
		return nonLinearQuantScale[code]
	}
	return int32(code) * 2
}

func saturateCoeff(v int32) int32 {
	if v > 2047 {
		return 2047
	}
	if v < -2048 {
		return -2048
	}
	return v
}

// DequantIntra inverse-quantises an intra block in place. qf holds the
// quantised coefficients in raster order with qf[0] the (already
// size-decoded) differential-reconstructed DC. dcShift is
// 3 - intra_dc_precision, i.e. the DC multiplier is 1<<dcShift.
// Mismatch control (§7.4.4) toggles the LSB of coefficient 63 when the sum
// of all coefficients is even.
func DequantIntra(qf *[64]int32, w *[64]uint8, quantiserScale int32, dcShift uint) {
	var sum int32
	qf[0] <<= dcShift
	sum = qf[0]
	for i := 1; i < 64; i++ {
		v := (qf[i] * int32(w[i]) * quantiserScale * 2) / 32
		v = saturateCoeff(v)
		qf[i] = v
		sum += v
	}
	if sum&1 == 0 {
		qf[63] ^= 1
	}
}

// DequantNonIntra inverse-quantises a non-intra block in place.
func DequantNonIntra(qf *[64]int32, w *[64]uint8, quantiserScale int32) {
	var sum int32
	for i := 0; i < 64; i++ {
		q := qf[i]
		if q == 0 {
			continue
		}
		var v int32
		if q > 0 {
			v = ((2*q + 1) * int32(w[i]) * quantiserScale) / 32
		} else {
			v = ((2*q - 1) * int32(w[i]) * quantiserScale) / 32
		}
		v = saturateCoeff(v)
		qf[i] = v
		sum += v
	}
	if sum&1 == 0 {
		qf[63] ^= 1
	}
}
