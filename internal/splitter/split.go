// Package splitter implements the two splitter levels of the paper's
// hierarchical decoder: the root splitter that scans the stream at picture
// level (start codes only) and the second-level splitter that performs full
// variable-length parsing, sorts macroblocks into per-tile sub-pictures with
// State Propagation Headers, and pre-calculates the macroblock exchange
// instructions (MEI) that replace on-demand remote fetches (§4.2-§4.3).
// It also provides the coarse-granularity baseline splitters of Table 1.
package splitter

import (
	"fmt"

	"tiledwall/internal/bits"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/subpic"
	"tiledwall/internal/wall"
)

// MBSplitter splits picture units into per-tile sub-pictures.
type MBSplitter struct {
	seq *mpeg2.SequenceHeader
	geo *wall.Geometry

	// Per-call scratch, reused across pictures.
	open    []openPiece
	tileSet []int
	meiSeen map[uint64]bool
	outPcs  [][]subpic.Piece
	outMEI  [][]subpic.MEIInstr
}

type openPiece struct {
	active   bool
	sph      subpic.SPH
	startBit int
	endBit   int
	lastAddr int
}

// NewMBSplitter creates a splitter for one stream/geometry pair.
func NewMBSplitter(seq *mpeg2.SequenceHeader, geo *wall.Geometry) *MBSplitter {
	nt := geo.NumTiles()
	return &MBSplitter{
		seq:     seq,
		geo:     geo,
		open:    make([]openPiece, nt),
		meiSeen: make(map[uint64]bool),
		outPcs:  make([][]subpic.Piece, nt),
		outMEI:  make([][]subpic.MEIInstr, nt),
	}
}

// Split parses one picture unit and produces one sub-picture per tile.
// The returned sub-pictures alias unit's bytes (zero copy).
func (s *MBSplitter) Split(unit []byte, picIndex int) ([]*subpic.SubPicture, error) {
	ph, sliceOff, err := mpeg2.ParsePictureUnit(unit)
	if err != nil {
		return nil, err
	}
	ctx, err := mpeg2.NewPictureContext(s.seq, ph)
	if err != nil {
		return nil, err
	}
	nt := s.geo.NumTiles()
	for t := 0; t < nt; t++ {
		s.outPcs[t] = s.outPcs[t][:0]
		s.outMEI[t] = s.outMEI[t][:0]
	}
	for k := range s.meiSeen {
		delete(s.meiSeen, k)
	}

	r := bits.NewReader(unit)
	r.SeekBit(sliceOff)
	for bits.NextStartCodeReader(r) {
		pos := r.BitPos() / 8
		code := unit[pos+3]
		if !bits.IsSliceStartCode(code) {
			break
		}
		r.Skip(32)
		vpos := int(code)
		if s.seq.Height > 2800 {
			vpos = int(r.Read(3))<<7 + vpos
		}
		if err := s.splitSlice(ctx, r, unit, vpos); err != nil {
			return nil, fmt.Errorf("picture %d slice row %d: %w", picIndex, vpos, err)
		}
	}

	out := make([]*subpic.SubPicture, nt)
	for t := 0; t < nt; t++ {
		sp := &subpic.SubPicture{
			Pieces: append([]subpic.Piece(nil), s.outPcs[t]...),
			MEI:    append([]subpic.MEIInstr(nil), s.outMEI[t]...),
		}
		sp.Pic.FromHeader(picIndex, ph)
		out[t] = sp
	}
	return out, nil
}

// splitSlice parses one slice in parse-only mode, routing macroblocks to
// tiles and recording exchange instructions.
func (s *MBSplitter) splitSlice(ctx *mpeg2.PictureContext, r *bits.Reader, unit []byte, vpos int) error {
	sd, err := mpeg2.NewSliceDecoder(ctx, r, vpos)
	if err != nil {
		return err
	}
	sd.SetParseOnly(true)
	geo := s.geo
	picType := ctx.Pic.PicType

	var mb mpeg2.Macroblock
	for {
		ok, err := sd.Next(&mb)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		mbx, mby := mb.Addr%ctx.MBW, mb.Addr/ctx.MBW
		s.tileSet = geo.TilesForMB(mbx, mby, s.tileSet[:0])

		// Route the preceding skipped run. Tiles covering skipped
		// macroblocks but not this coded one get leading/trailing
		// bookkeeping; skipped B macroblocks also generate MEIs since they
		// inherit the previous macroblock's (possibly boundary-crossing)
		// motion.
		if mb.SkippedBefore > 0 {
			s.routeSkipped(ctx, &mb, mbx, mby)
		}

		for _, t := range s.tileSet {
			p := &s.open[t]
			if !p.active {
				p.active = true
				p.startBit = mb.BitStart
				p.sph = subpic.SPH{
					SkipBits:   uint8(mb.BitStart & 7),
					FirstAddr:  int32(mb.Addr),
					CodedCount: 0,
					Prev:       mb.PrevMotion,
				}
				p.sph.SetState(mb.StateBefore)
				// Leading skips covered by this tile (suffix of the run).
				if mb.SkippedBefore > 0 {
					p.sph.LeadingSkip = s.countSkipsIn(t, &mb, mbx, mby)
				}
			}
			p.sph.CodedCount++
			p.endBit = mb.BitEnd
			p.lastAddr = mb.Addr
		}
		// Close pieces of tiles whose run has ended (open but not covering
		// this coded macroblock): the part of the skipped run they cover
		// becomes their trailing count.
		for t := range s.open {
			p := &s.open[t]
			if !p.active || covers(s.tileSet, t) {
				continue
			}
			trailing := int32(0)
			if mb.SkippedBefore > 0 {
				trailing = s.countSkipsIn(t, &mb, mbx, mby)
			}
			s.closePiece(t, unit, trailing)
		}

		// Exchange instructions for this coded macroblock.
		if picType != mpeg2.PictureI && !mb.Intra() {
			s.addMEIForMB(ctx, mbx, mby, mb.Motion(), picType)
		}
	}
	// Slice end: close everything (a conformant slice ends with a coded
	// macroblock, so there are no trailing skips here).
	for t := range s.open {
		if s.open[t].active {
			s.closePiece(t, unit, 0)
		}
	}
	return nil
}

func covers(set []int, t int) bool {
	for _, v := range set {
		if v == t {
			return true
		}
	}
	return false
}

// countSkipsIn counts the skipped macroblocks before mb that tile t covers.
func (s *MBSplitter) countSkipsIn(t int, mb *mpeg2.Macroblock, mbx, mby int) int32 {
	var n int32
	for k := 1; k <= mb.SkippedBefore; k++ {
		if s.geo.TileHasMB(t, mbx-k, mby) {
			n++
		}
	}
	return n
}

// routeSkipped handles tiles that cover part of a skipped run:
//
//   - tiles that also cover the following coded macroblock count the skips
//     as LeadingSkip when their piece opens (done by the caller);
//   - tiles with an open piece count them as TrailingSkip when the run
//     leaves them (done by the caller's close path);
//   - tiles covering only skipped macroblocks of this slice get a
//     self-contained empty piece (CodedCount 0) carrying just the count.
//
// Skipped B macroblocks also generate MEIs, since they inherit the previous
// macroblock's possibly boundary-crossing motion; skipped P macroblocks are
// zero-vector co-located copies that never reference remote data.
func (s *MBSplitter) routeSkipped(ctx *mpeg2.PictureContext, mb *mpeg2.Macroblock, mbx, mby int) {
	geo := s.geo
	var set []int
	var orphans []int
	for k := 1; k <= mb.SkippedBefore; k++ {
		sx := mbx - k
		set = geo.TilesForMB(sx, mby, set[:0])
		for _, t := range set {
			if s.open[t].active || covers(s.tileSet, t) || covers(orphans, t) {
				continue
			}
			orphans = append(orphans, t)
		}
		if ctx.Pic.PicType == mpeg2.PictureB {
			s.addMEIForMB(ctx, sx, mby, mb.PrevMotion, mpeg2.PictureB)
		}
	}
	for _, t := range orphans {
		// Decoders reconstruct leading skips at [FirstAddr-LeadingSkip,
		// FirstAddr), so FirstAddr points one past the tile's last owned
		// skipped macroblock (the tile's coverage is a contiguous column
		// interval, so its owned skips are contiguous).
		lastOwned := -1
		for a := mb.Addr - mb.SkippedBefore; a < mb.Addr; a++ {
			if geo.TileHasMB(t, a%ctx.MBW, mby) {
				lastOwned = a
			}
		}
		sph := subpic.SPH{
			FirstAddr:   int32(lastOwned + 1),
			LeadingSkip: s.countSkipsIn(t, mb, mbx, mby),
			Prev:        mb.PrevMotion,
		}
		sph.SetState(mb.StateBefore)
		s.outPcs[t] = append(s.outPcs[t], subpic.Piece{SPH: sph})
	}
}

// closePiece finalises tile t's open piece, extracting the payload bytes.
func (s *MBSplitter) closePiece(t int, unit []byte, trailing int32) {
	p := &s.open[t]
	p.active = false
	p.sph.TrailingSkip = trailing
	var payload []byte
	if p.sph.CodedCount > 0 {
		start := p.startBit >> 3
		end := (p.endBit + 7) >> 3
		payload = unit[start:end:end]
	}
	piece := subpic.Piece{SPH: p.sph, Payload: payload}
	s.outPcs[t] = append(s.outPcs[t], piece)
}

// addMEIForMB computes the reference cells needed by the macroblock at
// (mbx, mby) with motion m, for every tile that will decode it, and appends
// SEND/RECV instructions for cells outside the tile.
func (s *MBSplitter) addMEIForMB(ctx *mpeg2.PictureContext, mbx, mby int, m mpeg2.MotionInfo, picType mpeg2.PictureType) {
	if !m.Fwd && !m.Bwd && picType == mpeg2.PictureP {
		// Parser guarantees P macroblocks always carry a forward prediction
		// ("no MC" becomes a zero vector), but be safe.
		m.Fwd = true
	}
	var tiles []int
	tiles = s.geo.TilesForMB(mbx, mby, tiles)
	if m.Fwd {
		s.addMEIForVector(ctx, mbx, mby, m.MVFwd, subpic.RefFwd, tiles)
	}
	if m.Bwd {
		s.addMEIForVector(ctx, mbx, mby, m.MVBwd, subpic.RefBwd, tiles)
	}
}

func (s *MBSplitter) addMEIForVector(ctx *mpeg2.PictureContext, mbx, mby int, mv [2]int32, ref subpic.RefSel, tiles []int) {
	// Luma reference footprint (the chroma footprint is contained within the
	// same macroblock cells; see recon.go).
	x0 := mbx*16 + int(mv[0]>>1)
	y0 := mby*16 + int(mv[1]>>1)
	x1 := x0 + 16 + int(mv[0]&1) - 1
	y1 := y0 + 16 + int(mv[1]&1) - 1
	cx0, cx1 := x0>>4, x1>>4
	cy0, cy1 := y0>>4, y1>>4
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	maxX, maxY := ctx.MBW-1, ctx.MBH-1
	if cx1 > maxX {
		cx1 = maxX
	}
	if cy1 > maxY {
		cy1 = maxY
	}
	for _, t := range tiles {
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				if s.geo.TileHasMB(t, cx, cy) {
					continue // available locally
				}
				owner := s.geo.Owner(cx, cy)
				key := meiKey(t, owner, cx, cy, ref)
				if s.meiSeen[key] {
					continue
				}
				s.meiSeen[key] = true
				s.outMEI[owner] = append(s.outMEI[owner], subpic.MEIInstr{
					Kind: subpic.MEISend, Ref: ref,
					MBX: uint16(cx), MBY: uint16(cy), Peer: uint16(t),
				})
				s.outMEI[t] = append(s.outMEI[t], subpic.MEIInstr{
					Kind: subpic.MEIRecv, Ref: ref,
					MBX: uint16(cx), MBY: uint16(cy), Peer: uint16(owner),
				})
			}
		}
	}
}

func meiKey(t, owner, cx, cy int, ref subpic.RefSel) uint64 {
	return uint64(t)<<40 | uint64(owner)<<28 | uint64(cx)<<14 | uint64(cy)<<1 | uint64(ref)
}
