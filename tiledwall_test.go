package tiledwall

import (
	"testing"

	"tiledwall/internal/mpegps"
	"tiledwall/internal/video"
)

// TestFacadeEndToEnd drives the public façade: generate a catalogue stream,
// calibrate, play it on the recommended configuration, and verify against
// the serial decoder.
func TestFacadeEndToEnd(t *testing.T) {
	stream, err := GenerateStream(5, GenOptions{Frames: 9, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(stream, 2, 2, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	k := cal.RecommendedK(0)
	if k == 0 {
		k = 1
	}
	res, err := Play(stream, WallConfig{K: k, M: 2, N: 2, CollectFrames: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(res.Frames) {
		t.Fatalf("%d parallel frames vs %d serial", len(res.Frames), len(ref))
	}
	for i := range ref {
		if !video.Equal(ref[i].Buf, res.Frames[i]) {
			t.Fatalf("frame %d differs", i)
		}
	}
	if res.Modeled().FPS() <= 0 {
		t.Error("no throughput reported")
	}
}

func TestStreamsCatalogue(t *testing.T) {
	if len(Streams()) != 16 {
		t.Fatalf("%d streams", len(Streams()))
	}
	if _, err := GenerateStream(99, GenOptions{}); err == nil {
		t.Error("unknown stream id accepted")
	}
}

// TestProgramStreamPlayback: a PS-wrapped catalogue stream demuxes and plays
// identically to the raw elementary stream.
func TestProgramStreamPlayback(t *testing.T) {
	es, err := GenerateStream(4, GenOptions{Frames: 6, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	ps := mpegps.Mux(es, mpegps.MuxOptions{})
	back, err := mpegps.Demux(ps)
	if err != nil {
		t.Fatal(err)
	}
	refA, err := Decode(es)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := Decode(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(refA) != len(refB) {
		t.Fatalf("picture counts differ: %d vs %d", len(refA), len(refB))
	}
	for i := range refA {
		if !video.Equal(refA[i].Buf, refB[i].Buf) {
			t.Fatalf("frame %d differs after PS round trip", i)
		}
	}
}
