// Package pdec implements the tile decoder of the parallel system: it
// receives sub-pictures from the splitters, executes pre-calculated
// macroblock exchange instructions (SEND before decoding, RECV into the halo
// of its reference windows), decodes the partial slices seeded from State
// Propagation Headers, and displays its tile. Acknowledgements are redirected
// to the splitter named by the message's ANID, which both grants flow-control
// credit and keeps pictures in order across splitters (paper §4.4-§4.5).
package pdec

import (
	"fmt"
	"time"

	"tiledwall/internal/bits"
	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/recovery"
	"tiledwall/internal/subpic"
	"tiledwall/internal/wall"
)

// Config wires one tile decoder.
type Config struct {
	Seq  *mpeg2.SequenceHeader
	Geo  *wall.Geometry
	Tile int
	// HaloPx is the reference-window margin in pixels, which must cover the
	// maximum motion vector reach (derive it with HaloForFCode).
	HaloPx int
	// TileNode maps a tile index to its fabric node id (for peer exchanges).
	TileNode func(tile int) int
	// OnFrame, when non-nil, receives a copy of the tile's decoded pixels in
	// display order (outside the measured path; used for verification).
	OnFrame func(displayIdx int, tile int, buf *mpeg2.PixelBuf)

	// UnbatchedSends ships every exchanged macroblock as its own message
	// instead of one bundle per peer per picture. Ablation knob: quantifies
	// how much the paper's batched pre-calculated exchange saves in message
	// count (per-message overhead dominated GM-era networks).
	UnbatchedSends bool

	// Pooled recycles decode state across pictures: message slabs return to
	// the cluster slab pool once fully consumed, outgoing bundles are
	// serialised into pooled slabs, and the picture context, reconstructor,
	// slice decoder and bit reader are reused in place, making steady-state
	// decoding allocation-free per macroblock. Composes with Recovery: every
	// holder that outlives the consumer (the reorder stash, upstream
	// retainers) carries its own slab reference, so the last release — not a
	// fixed "final consumer" — recycles the payload.
	Pooled bool

	// Recovery, when non-nil, switches the decoder from fail-stop to
	// fault-masking behaviour: sub-pictures may arrive out of order (reorder
	// stash), duplicated (dropped), or not at all (concealed after the
	// per-picture deadline); a respawned incarnation resumes at its emission
	// frontier (ResumeAt) in freeze-last-frame concealment until an I
	// picture re-anchors its reference chain.
	Recovery *recovery.DecoderHooks
}

// HaloForFCode returns a macroblock-aligned halo margin covering the reach
// of motion vectors with the given maximum f_code.
func HaloForFCode(fcode int) int {
	if fcode < 1 {
		fcode = 1
	}
	reach := (16 << uint(fcode-1)) / 2 // max |mv| in full pixels
	return (reach + 16 + 15) &^ 15     // + interpolation + alignment
}

// Result reports a decoder's run.
type Result struct {
	Breakdown metrics.Breakdown
	Pictures  int
	// Skipped counts sub-pictures that arrived as subscription skip markers:
	// acked and sequenced but neither decoded nor displayed. A decoder whose
	// tile nobody watches spends its session here, at near-zero cost.
	Skipped int
}

// Decoder is the per-tile decode engine, usable standalone (one-level
// system tests) or inside Run.
type Decoder struct {
	cfg  Config
	rect wall.Rect
	node cluster.Net

	bufs             []*mpeg2.PixelBuf // ring of 3 halo-extended windows
	cur, refA, refB  int               // indices into bufs (-1 = none)
	display          *mpeg2.PixelBuf
	pendingAnchor    bool
	pendingAnchorIdx int
	// pendingAnchorEmit is false when the held anchor was decoded for
	// reference exactness only (subscription NoEmit): it still gates the
	// reorder window but is discarded instead of displayed.
	pendingAnchorEmit bool
	displayCount      int

	// Out-of-order stash for block bundles from peers that run ahead.
	stash []*subpic.BlockBundle

	// Recovery mode state: out-of-order sub-pictures keyed by picture
	// index, the stream total once a Final marker has been seen (-1
	// before), and how many of refA/refB hold trustworthy pixels — a
	// respawned incarnation starts at 0 and conceals until I (1 anchor,
	// P decodable) then P (2, B decodable) restore the chain.
	spStash      map[int]stashedSubPic
	finalTotal   int
	validAnchors int
	// finalsFrom tracks which splitter nodes delivered this session's final
	// marker (resident recovery): only when every splitter's last message is
	// in can a missing tail be declared lost and concealed.
	finalsFrom map[int]bool
	// gapSince is when the resident reorder stash first stalled on the
	// current frontier hole; zero while delivery is in order. A hole older
	// than the per-picture deadline is declared lost and concealed.
	gapSince time.Time

	res     Result
	nextPic int

	// Reusable per-picture state for cfg.Pooled mode. The zero values work
	// unpooled too; pooling only changes who allocates.
	spScratch  subpic.SubPicture
	phScratch  mpeg2.PictureHeader
	ctxScratch mpeg2.PictureContext
	rcScratch  *mpeg2.Reconstructor
	sdScratch  mpeg2.SliceDecoder
	brScratch  bits.Reader
	bbScratch  subpic.BlockBundle
	xferPix    [mpeg2.MacroblockBytes]byte

	sendOrder   []int
	sendBundles map[int]*sendBundle
}

// sendBundle accumulates one outgoing per-peer exchange bundle; pooled mode
// keeps them across pictures so the cells and pixels grow once and stick.
type sendBundle struct {
	cells  []subpic.BlockCell
	pixels []byte
}

// NewDecoder allocates the decoder's buffers. A respawned incarnation is
// restored by the serving layer with ResumeAt, which starts it at the
// session's emission frontier in concealment.
func NewDecoder(node cluster.Net, cfg Config) *Decoder {
	rect := cfg.Geo.Tile(cfg.Tile)
	halo := cfg.HaloPx
	x0 := rect.X0 - halo
	y0 := rect.Y0 - halo
	x1 := rect.X1 + halo
	y1 := rect.Y1 + halo
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > cfg.Geo.PicW {
		x1 = cfg.Geo.PicW
	}
	if y1 > cfg.Geo.PicH {
		y1 = cfg.Geo.PicH
	}
	d := &Decoder{cfg: cfg, rect: rect, node: node, cur: 0, refA: -1, refB: -1, finalTotal: -1}
	d.rcScratch = mpeg2.NewReconstructor(nil)
	for i := 0; i < 3; i++ {
		d.bufs = append(d.bufs, mpeg2.NewPixelBuf(x0, y0, x1-x0, y1-y0))
	}
	d.display = mpeg2.NewPixelBuf(rect.X0, rect.Y0, rect.W(), rect.H())
	if rh := cfg.Recovery; rh != nil {
		rh.Cfg = rh.Cfg.WithDefaults()
		d.spStash = map[int]stashedSubPic{}
		// Recovery mode keeps all three windows live from the start so MEI
		// SEND/RECV stays structurally valid even while the reference chain
		// is untrusted; validAnchors gates what may actually be decoded.
		d.cur, d.refA, d.refB = 0, 1, 2
	}
	return d
}

// Finish flushes the display-reorder tail (the held anchor frame) and
// returns the accumulated result. Run calls it after the Final marker; a
// resident server calls it when the decoder's session completes.
func (d *Decoder) Finish() *Result {
	if d.pendingAnchor {
		if d.pendingAnchorEmit {
			d.emitFrame(d.pendingAnchorIdx, d.bufs[d.refB])
		}
		d.pendingAnchor = false
	}
	return &d.res
}

// Breakdown exposes the decoder's phase accounting so a resident server,
// which performs the fabric receive on the decoder's behalf, can attribute
// the receive wait to the session that the arriving message belongs to.
func (d *Decoder) Breakdown() *metrics.Breakdown { return &d.res.Breakdown }

// HandleSubPicture runs the strict fail-stop protocol on one already-received
// sub-picture message: ack to the ANID node, unmarshal, enforce ordering,
// decode, display. done=true reports stream (or session) completion — a
// Final marker with no pictures still owed.
func (d *Decoder) HandleSubPicture(msg *cluster.Message) (bool, error) {
	b := &d.res.Breakdown
	// Ack to the ANID node: grants the splitter holding the next picture
	// its go-ahead (credit) — the ordering protocol of §4.5. Session-final
	// control messages are never acked: in a resident wall the splitters
	// keep running, and a stray ack would inflate the go-ahead count of the
	// next session's pictures. (Unflagged Final markers — standalone
	// single-decoder tests — keep their harmless ack.)
	if msg.Flags&cluster.FlagSessionFinal == 0 {
		b.Timed(metrics.PhaseAck, func() {
			d.node.Send(msg.Tag, &cluster.Message{Kind: cluster.MsgAck, Seq: msg.Seq, Session: msg.Session})
		})
	}
	var sp *subpic.SubPicture
	if d.cfg.Pooled {
		sp = &d.spScratch
		if err := subpic.UnmarshalInto(sp, msg.Payload); err != nil {
			return false, fmt.Errorf("tile %d: %w", d.cfg.Tile, err)
		}
	} else {
		var err error
		sp, err = subpic.Unmarshal(msg.Payload)
		if err != nil {
			return false, fmt.Errorf("tile %d: %w", d.cfg.Tile, err)
		}
	}
	if sp.Final {
		if d.cfg.Pooled {
			cluster.PutSlab(msg.Payload)
		}
		// A splitter that ran out of pictures early may deliver its end
		// marker before the last pictures from the other splitters; only
		// exit once every picture has been decoded.
		if total := int(sp.Pic.Index); d.nextPic < total {
			return false, nil
		}
		return true, nil
	}
	if int(sp.Pic.Index) != d.nextPic {
		return false, fmt.Errorf("tile %d: picture %d arrived, expected %d (ordering protocol violated)",
			d.cfg.Tile, sp.Pic.Index, d.nextPic)
	}
	d.nextPic++
	if sp.Skipped {
		// Subscription skip marker: the ack above kept the go-ahead protocol
		// whole and the sequence check kept ordering honest; there is nothing
		// to decode, display, or rotate (the splitter only skips pictures
		// that feed no reference this tile will ever need).
		if d.cfg.Pooled {
			cluster.PutSlab(msg.Payload)
		}
		d.res.Skipped++
		return false, nil
	}
	if err := d.decodePicture(sp); err != nil {
		return false, err
	}
	if d.cfg.Pooled {
		// Every piece payload (which aliases the message) has been decoded
		// into pixels, so nothing references the slab anymore; a sender can
		// only obtain it again through the pool, i.e. after this call.
		cluster.PutSlab(msg.Payload)
	}
	d.res.Pictures++
	b.Pictures++
	return false, nil
}

// refFor maps a reference selector to a buffer index for the picture type.
func (d *Decoder) refFor(sel subpic.RefSel, picType mpeg2.PictureType) int {
	if picType == mpeg2.PictureB && sel == subpic.RefFwd {
		return d.refA
	}
	return d.refB
}

func (d *Decoder) decodePicture(sp *subpic.SubPicture) error {
	b := &d.res.Breakdown
	ph := &d.phScratch
	sp.Pic.HeaderInto(ph)
	ctx := &d.ctxScratch
	if err := ctx.Init(d.cfg.Seq, ph); err != nil {
		return err
	}

	// Serve: execute SEND instructions, batched into one bundle per peer.
	var serveErr error
	b.Timed(metrics.PhaseServe, func() { serveErr = d.executeSends(sp, ph.PicType) })
	if serveErr != nil {
		return serveErr
	}

	// Wait: drain expected RECVs into the halo of the reference windows.
	var waitErr error
	b.Timed(metrics.PhaseWaitMB, func() { waitErr = d.drainRecvs(sp, ph.PicType) })
	if waitErr != nil {
		return waitErr
	}

	// Work: decode every piece, then display.
	var workErr error
	b.Timed(metrics.PhaseWork, func() { workErr = d.decodePieces(ctx, sp) })
	if workErr != nil {
		return workErr
	}

	if !sp.NoEmit {
		b.Timed(metrics.PhaseWork, func() {
			// Display: blit the tile's visible rectangle (models the frame
			// buffer upload the paper counts inside Work). NoEmit pictures —
			// decoded for reference exactness on unwatched tiles — skip it.
			d.display.CopyRect(d.bufs[d.cur], d.rect.X0, d.rect.Y0, d.rect.W(), d.rect.H())
		})
	}

	// Reordering and reference management, as in the serial decoder.
	if ph.PicType == mpeg2.PictureB {
		if !sp.NoEmit {
			d.emitFrame(int(sp.Pic.Index), d.bufs[d.cur])
		}
	} else {
		if d.pendingAnchor && d.pendingAnchorEmit {
			d.emitFrame(d.pendingAnchorIdx, d.bufs[d.refB])
		}
		d.pendingAnchor = true
		d.pendingAnchorEmit = !sp.NoEmit
		d.pendingAnchorIdx = int(sp.Pic.Index)
		// Rotate: the old refA buffer becomes the next current buffer.
		old := d.refA
		d.refA = d.refB
		d.refB = d.cur
		if old >= 0 {
			d.cur = old
		} else {
			for i := 0; i < 3; i++ {
				if i != d.refA && i != d.refB {
					d.cur = i
				}
			}
		}
	}
	return nil
}

// emitFrame hands a copy of the tile pixels to the collector. In pooled mode
// the copy comes from the pixel-buffer pool; a collector done with a frame
// may Release it for reuse.
func (d *Decoder) emitFrame(picIndex int, buf *mpeg2.PixelBuf) {
	d.displayCount++
	if d.cfg.OnFrame == nil {
		return
	}
	var out *mpeg2.PixelBuf
	if d.cfg.Pooled {
		out = mpeg2.AcquirePixelBuf(d.rect.X0, d.rect.Y0, d.rect.W(), d.rect.H())
	} else {
		out = mpeg2.NewPixelBuf(d.rect.X0, d.rect.Y0, d.rect.W(), d.rect.H())
	}
	out.CopyRect(buf, d.rect.X0, d.rect.Y0, d.rect.W(), d.rect.H())
	d.cfg.OnFrame(picIndex, d.cfg.Tile, out)
}

// marshalBundle serialises bb into a fresh buffer, or a pooled slab when
// cfg.Pooled (the receiving tile releases it after injecting the pixels).
func (d *Decoder) marshalBundle(bb *subpic.BlockBundle) []byte {
	if d.cfg.Pooled {
		return bb.AppendTo(cluster.GetSlab(bb.WireSize()))
	}
	return bb.Marshal()
}

// executeSends ships owed reference macroblocks, one bundle per peer.
func (d *Decoder) executeSends(sp *subpic.SubPicture, picType mpeg2.PictureType) error {
	if d.sendBundles == nil {
		d.sendBundles = map[int]*sendBundle{}
	}
	d.sendOrder = d.sendOrder[:0]
	for _, in := range sp.MEI {
		if in.Kind != subpic.MEISend {
			continue
		}
		ref := d.refFor(in.Ref, picType)
		if ref < 0 {
			return fmt.Errorf("tile %d: SEND against missing reference (pic %d)", d.cfg.Tile, sp.Pic.Index)
		}
		if d.cfg.UnbatchedSends {
			d.bufs[ref].ExtractMacroblock(int(in.MBX), int(in.MBY), d.xferPix[:])
			bb := subpic.BlockBundle{
				PicIndex: sp.Pic.Index,
				Cells:    []subpic.BlockCell{{Ref: in.Ref, MBX: in.MBX, MBY: in.MBY}},
				Pixels:   d.xferPix[:],
			}
			d.node.Send(d.cfg.TileNode(int(in.Peer)), &cluster.Message{
				Kind:    cluster.MsgBlocks,
				Seq:     int(sp.Pic.Index),
				Payload: d.marshalBundle(&bb),
			})
			continue
		}
		peer := int(in.Peer)
		bu := d.sendBundles[peer]
		if bu == nil {
			bu = &sendBundle{}
			d.sendBundles[peer] = bu
		}
		if len(bu.cells) == 0 {
			d.sendOrder = append(d.sendOrder, peer)
		}
		bu.cells = append(bu.cells, subpic.BlockCell{Ref: in.Ref, MBX: in.MBX, MBY: in.MBY})
		off := len(bu.pixels)
		if n := off + mpeg2.MacroblockBytes; n <= cap(bu.pixels) {
			bu.pixels = bu.pixels[:n]
		} else {
			bu.pixels = append(bu.pixels, make([]byte, mpeg2.MacroblockBytes)...)
		}
		d.bufs[ref].ExtractMacroblock(int(in.MBX), int(in.MBY), bu.pixels[off:])
	}
	for _, peer := range d.sendOrder {
		bu := d.sendBundles[peer]
		bb := subpic.BlockBundle{PicIndex: sp.Pic.Index, Cells: bu.cells, Pixels: bu.pixels}
		d.node.Send(d.cfg.TileNode(peer), &cluster.Message{
			Kind:    cluster.MsgBlocks,
			Seq:     int(sp.Pic.Index),
			Payload: d.marshalBundle(&bb),
		})
		// The payload copy is on the wire; reset the accumulator for the
		// next picture, keeping its storage.
		bu.cells = bu.cells[:0]
		bu.pixels = bu.pixels[:0]
	}
	return nil
}

// drainRecvs waits for every expected macroblock, stashing bundles from
// decoders running one picture ahead.
func (d *Decoder) drainRecvs(sp *subpic.SubPicture, picType mpeg2.PictureType) error {
	expected := 0
	for _, in := range sp.MEI {
		if in.Kind == subpic.MEIRecv {
			expected++
		}
	}
	if expected == 0 {
		return nil
	}
	apply := func(bb *subpic.BlockBundle) error {
		if len(bb.Pixels) != len(bb.Cells)*mpeg2.MacroblockBytes {
			return fmt.Errorf("tile %d: malformed block bundle", d.cfg.Tile)
		}
		for i, c := range bb.Cells {
			ref := d.refFor(c.Ref, picType)
			if ref < 0 {
				return fmt.Errorf("tile %d: RECV into missing reference", d.cfg.Tile)
			}
			buf := d.bufs[ref]
			if !buf.Contains(int(c.MBX)*16, int(c.MBY)*16, 16, 16) {
				return fmt.Errorf("tile %d: RECV cell (%d,%d) outside halo window [%d,%d %dx%d] — increase HaloPx",
					d.cfg.Tile, c.MBX, c.MBY, buf.X0, buf.Y0, buf.W, buf.H)
			}
			buf.InjectMacroblock(int(c.MBX), int(c.MBY), bb.Pixels[i*mpeg2.MacroblockBytes:(i+1)*mpeg2.MacroblockBytes])
		}
		expected -= len(bb.Cells)
		return nil
	}
	// First serve the stash.
	keep := d.stash[:0]
	for _, bb := range d.stash {
		if int(bb.PicIndex) == int(sp.Pic.Index) {
			if err := apply(bb); err != nil {
				return err
			}
		} else {
			keep = append(keep, bb)
		}
	}
	d.stash = keep
	for expected > 0 {
		msg := d.node.Recv(cluster.MsgBlocks)
		if msg == nil {
			return fmt.Errorf("tile %d: fabric aborted while waiting for reference macroblocks", d.cfg.Tile)
		}
		var bb *subpic.BlockBundle
		if d.cfg.Pooled {
			bb = &d.bbScratch
			if err := subpic.UnmarshalBlocksInto(bb, msg.Payload); err != nil {
				return err
			}
		} else {
			var err error
			bb, err = subpic.UnmarshalBlocks(msg.Payload)
			if err != nil {
				return err
			}
		}
		switch {
		case int(bb.PicIndex) == int(sp.Pic.Index):
			if err := apply(bb); err != nil {
				return err
			}
			if d.cfg.Pooled {
				// Pixels were injected into the halo above; the payload they
				// alias can go back to the pool.
				cluster.PutSlab(msg.Payload)
			}
		case int(bb.PicIndex) == int(sp.Pic.Index)+1:
			if d.cfg.Pooled {
				// The stash outlives this call, so detach it from the scratch
				// bundle; its pixels keep aliasing the (unreleased) payload.
				clone := &subpic.BlockBundle{
					PicIndex: bb.PicIndex,
					Cells:    append([]subpic.BlockCell(nil), bb.Cells...),
					Pixels:   bb.Pixels,
				}
				d.stash = append(d.stash, clone)
			} else {
				d.stash = append(d.stash, bb)
			}
		default:
			return fmt.Errorf("tile %d: block bundle for picture %d while decoding %d (sync broken)",
				d.cfg.Tile, bb.PicIndex, sp.Pic.Index)
		}
	}
	return nil
}

// decodePieces decodes every partial slice of the sub-picture.
func (d *Decoder) decodePieces(ctx *mpeg2.PictureContext, sp *subpic.SubPicture) error {
	picType := ctx.Pic.PicType
	rc := d.rcScratch
	rc.Reset(ctx.Pic)
	cur := d.bufs[d.cur]
	var fwd, bwd *mpeg2.PixelBuf
	switch picType {
	case mpeg2.PictureP:
		if d.refB < 0 {
			return fmt.Errorf("tile %d: P picture before any anchor", d.cfg.Tile)
		}
		fwd = d.bufs[d.refB]
	case mpeg2.PictureB:
		if d.refA < 0 || d.refB < 0 {
			return fmt.Errorf("tile %d: B picture without two anchors", d.cfg.Tile)
		}
		fwd, bwd = d.bufs[d.refA], d.bufs[d.refB]
	}

	// Reconstruction writes into the window unchecked (the splitter only
	// routes owned macroblocks here), so a malformed SPH must be rejected
	// before its addresses index the tile buffer.
	inWindow := func(addr int) bool {
		if addr < 0 || addr >= ctx.MBW*ctx.MBH {
			return false
		}
		return cur.Contains(addr%ctx.MBW*16, addr/ctx.MBW*16, 16, 16)
	}
	skipped := func(addr int, prev mpeg2.MotionInfo) error {
		if !inWindow(addr) {
			return fmt.Errorf("tile %d: skipped macroblock %d outside tile window (corrupt SPH)", d.cfg.Tile, addr)
		}
		return rc.Skipped(cur, fwd, bwd, addr%ctx.MBW, addr/ctx.MBW, prev)
	}

	for pi := range sp.Pieces {
		p := &sp.Pieces[pi]
		if p.FirstAddr < 0 || int(p.LeadingSkip) > int(p.FirstAddr) || p.CodedCount < 0 {
			return fmt.Errorf("tile %d pic %d piece %d: malformed SPH (first %d, lead %d, coded %d)",
				d.cfg.Tile, sp.Pic.Index, pi, p.FirstAddr, p.LeadingSkip, p.CodedCount)
		}
		// Leading skipped macroblocks inherit the SPH's previous-macroblock
		// motion (the predecessor may live on another tile).
		for k := int(p.LeadingSkip); k > 0; k-- {
			if err := skipped(int(p.FirstAddr)-k, p.Prev); err != nil {
				return fmt.Errorf("tile %d pic %d: leading skip: %w", d.cfg.Tile, sp.Pic.Index, err)
			}
		}
		if p.CodedCount == 0 {
			continue
		}
		r := &d.brScratch
		r.Reset(p.Payload)
		r.Skip(int(p.SkipBits))
		sd := &d.sdScratch
		sd.ResetPartial(ctx, r, p.State(), p.Prev, int(p.FirstAddr), int(p.CodedCount))
		var mb mpeg2.Macroblock
		lastAddr := int(p.FirstAddr)
		for {
			ok, err := sd.Next(&mb)
			if err != nil {
				return fmt.Errorf("tile %d pic %d piece %d: %w", d.cfg.Tile, sp.Pic.Index, pi, err)
			}
			if !ok {
				break
			}
			for k := mb.Addr - mb.SkippedBefore; k < mb.Addr; k++ {
				if err := skipped(k, mb.PrevMotion); err != nil {
					return fmt.Errorf("tile %d pic %d: interior skip: %w", d.cfg.Tile, sp.Pic.Index, err)
				}
			}
			if !inWindow(mb.Addr) {
				return fmt.Errorf("tile %d pic %d: macroblock %d outside tile window (corrupt SPH)",
					d.cfg.Tile, sp.Pic.Index, mb.Addr)
			}
			if err := rc.Macroblock(cur, fwd, bwd, &mb, ctx.MBW); err != nil {
				return fmt.Errorf("tile %d pic %d addr %d: %w", d.cfg.Tile, sp.Pic.Index, mb.Addr, err)
			}
			lastAddr = mb.Addr
		}
		// Trailing skipped macroblocks inherit the last coded macroblock's
		// motion, which this decoder just parsed.
		for k := 1; k <= int(p.TrailingSkip); k++ {
			if err := skipped(lastAddr+k, sd.PrevMotion()); err != nil {
				return fmt.Errorf("tile %d pic %d: trailing skip: %w", d.cfg.Tile, sp.Pic.Index, err)
			}
		}
	}
	return nil
}
