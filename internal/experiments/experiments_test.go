package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tiledwall/internal/catalog"
	"tiledwall/internal/metrics"
)

// tiny returns options small enough for unit tests.
func tiny() Options { return Options{Frames: 8, Scale: 8} }

func TestTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all 16 streams")
	}
	rows, err := Table4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(catalog.Streams) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgFrameSize <= 0 {
			t.Errorf("stream %d: zero frame size", r.ID)
		}
		if r.BitsPerPixel <= 0.02 || r.BitsPerPixel > 4 {
			t.Errorf("stream %d: implausible bpp %.3f", r.ID, r.BitsPerPixel)
		}
	}
	// DVD-class streams carry more bits per pixel than the 0.3 bpp content.
	if rows[0].BitsPerPixel <= rows[12].BitsPerPixel {
		t.Logf("note: dvd bpp %.3f vs orion bpp %.3f (rate control at tiny scale is coarse)",
			rows[0].BitsPerPixel, rows[12].BitsPerPixel)
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "Table 4") {
		t.Error("printout missing title")
	}
}

func TestTable5SmallStream(t *testing.T) {
	// Stream 1 is 720x480; scale 2 keeps a 4x4 wall viable.
	o := Options{Frames: 6, Scale: 2}
	one, two, err := Table5(1, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(Table5Configs) || len(two) != len(Table5Configs) {
		t.Fatalf("row counts %d/%d", len(one), len(two))
	}
	for i := range one {
		if one[i].FPS <= 0 || two[i].FPS <= 0 {
			t.Errorf("config %d: zero fps", i)
		}
	}
	var buf bytes.Buffer
	PrintTable5(&buf, "stream 1", one, two)
	if !strings.Contains(buf.String(), "1-(4,4)") {
		t.Error("printout missing configs")
	}
}

func TestFig7(t *testing.T) {
	rows, err := Fig7(1, 2, 2, 2, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d decoders", len(rows))
	}
	for _, r := range rows {
		if r.Ms[metrics.PhaseWork] <= 0 {
			t.Errorf("decoder %d: no Work time", r.Decoder)
		}
	}
	var buf bytes.Buffer
	PrintFig7(&buf, "test", rows)
	if !strings.Contains(buf.String(), "avg") {
		t.Error("printout missing average row")
	}
}

func TestFig9(t *testing.T) {
	rows, err := Fig9(1, 2, 2, 2, tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 4 decoders + 2 splitters + root.
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Node == "root" && r.SendMBps <= 0 {
			t.Error("root sent nothing")
		}
	}
	var buf bytes.Buffer
	PrintFig9(&buf, "test", rows)
	if !strings.Contains(buf.String(), "D0") {
		t.Error("printout missing decoders")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(1, 2, 2, Options{Frames: 12, Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byLevel := map[string]Table1Row{}
	for _, r := range rows {
		byLevel[r.Level] = r
	}
	// Shape checks mirroring the paper's qualitative table.
	if byLevel["GOP"].InterDecoderKBPerPicture != 0 {
		t.Error("GOP level should have zero inter-decoder traffic")
	}
	if byLevel["picture"].InterDecoderKBPerPicture <= byLevel["slice"].InterDecoderKBPerPicture {
		t.Error("picture-level communication should exceed slice-level")
	}
	if byLevel["macroblock"].RedistributionKBPerPicture != 0 {
		t.Error("macroblock level should have no pixel redistribution")
	}
	if byLevel["macroblock"].SplitMsPerPicture <= byLevel["GOP"].SplitMsPerPicture {
		t.Error("macroblock splitting should cost more than GOP scanning")
	}
	var buf bytes.Buffer
	PrintTable1(&buf, "test", rows)
	if !strings.Contains(buf.String(), "macroblock") {
		t.Error("printout missing macroblock row")
	}
}

func TestStreamCache(t *testing.T) {
	a, _, err := Stream(1, tiny(), false)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Stream(1, tiny(), false)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("cache miss for identical request")
	}
}
