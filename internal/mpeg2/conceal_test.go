package mpeg2

import (
	"testing"

	"tiledwall/internal/bits"
)

// corruptOneSlice flips bits inside the payload of one slice of the first
// picture, preserving start-code structure.
func corruptOneSlice(t *testing.T, data []byte) []byte {
	t.Helper()
	offs, codes := bits.ScanStartCodes(data)
	for i, c := range codes {
		if !bits.IsSliceStartCode(c) {
			continue
		}
		end := len(data)
		if i+1 < len(offs) {
			end = offs[i+1]
		}
		if end-offs[i] < 16 {
			continue
		}
		out := append([]byte(nil), data...)
		mid := offs[i] + (end-offs[i])/2
		out[mid] ^= 0x55
		out[mid+1] ^= 0xAA
		if n, _ := bits.ScanStartCodes(out); len(n) != len(offs) {
			continue // fabricated/destroyed a start code; try the next slice
		}
		return out
	}
	t.Fatal("no corruptible slice found")
	return nil
}

func TestConcealCorruptSlice(t *testing.T) {
	// Hand-written two-picture stream (I then P copy).
	data := buildTinyStream(t, 64, 64, []uint8{90, 0}, []PictureType{PictureI, PictureP})
	clean, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := clean.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}

	corrupt := corruptOneSlice(t, data)
	// The strict decoder may fail or mis-decode; the resilient one must
	// return every picture.
	rd, err := NewResilientDecoder(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	pics, err := rd.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pics) != len(ref) {
		t.Fatalf("resilient decode returned %d pictures, want %d", len(pics), len(ref))
	}
	// Undamaged rows must still match the clean decode exactly; corruption
	// is confined (at worst the concealed rows differ).
	if rd.ConcealedSlices == 0 {
		// The corruption may decode as different-but-legal VLCs; that is
		// acceptable (no concealment needed). Nothing more to assert.
		t.Log("corruption decoded as legal data; no concealment triggered")
		return
	}
	differingRows := 0
	w := ref[0].Buf.W
	for row := 0; row < ref[0].Buf.H/16; row++ {
		same := true
		for y := row * 16; y < row*16+16 && same; y++ {
			for x := 0; x < w; x++ {
				if ref[0].Buf.Y[y*w+x] != pics[0].Buf.Y[y*w+x] {
					same = false
					break
				}
			}
		}
		if !same {
			differingRows++
		}
	}
	if differingRows > rd.ConcealedSlices {
		t.Errorf("%d rows differ but only %d slices were concealed", differingRows, rd.ConcealedSlices)
	}
}

func TestConcealGreyWithoutReference(t *testing.T) {
	seq := testSeq(64, 32)
	ph := testPic(PictureI, false, false, false)
	ctx, err := NewPictureContext(seq, ph)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewPixelBuf(0, 0, 64, 32)
	concealRow(ctx, NewReconstructor(ph), 1, nil, dst)
	for x := 0; x < 64; x++ {
		if dst.Y[16*64+x] != 128 {
			t.Fatalf("grey concealment missing at column %d", x)
		}
		if dst.Y[x] != 0 {
			t.Fatalf("concealment leaked into row 0")
		}
	}
}

func TestResilientMatchesStrictOnCleanStream(t *testing.T) {
	data := buildTinyStream(t, 64, 48, []uint8{33, 0, 0}, []PictureType{PictureI, PictureP, PictureB})
	strict, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := strict.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewResilientDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if rd.ConcealedSlices != 0 {
		t.Errorf("clean stream concealed %d slices", rd.ConcealedSlices)
	}
	if len(got) != len(want) {
		t.Fatalf("%d pictures vs %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i].Buf.Y {
			if want[i].Buf.Y[j] != got[i].Buf.Y[j] {
				t.Fatalf("picture %d differs at %d", i, j)
			}
		}
	}
}
