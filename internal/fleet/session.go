package fleet

import (
	"time"

	"tiledwall/internal/service"
)

// Session is one admitted stream, bound to the wall the router picked. Feed
// and Close have the same single-goroutine contract as service.Session;
// Close additionally releases the fleet-level slot and tenant budget and
// grants the freed capacity to a queued open.
type Session struct {
	f        *Fleet
	sl       *wallSlot
	inc      *incarnation
	s        *service.Session
	tenant   string
	reserve  int
	weight   float64 // subscribed-tile routing charge, released on Close
	openedAt time.Time
	closed   bool
}

// ID returns the session's id on its wall (unique per wall, not per fleet).
func (s *Session) ID() int { return s.s.ID() }

// Name returns the label given to Open.
func (s *Session) Name() string { return s.s.Name() }

// Wall returns the fleet slot index the session was routed to.
func (s *Session) Wall() int { return s.sl.idx }

// Feed hands the session the next chunk of the elementary stream.
func (s *Session) Feed(chunk []byte) error { return s.s.Feed(chunk) }

// Close drains the session on its wall, then returns its capacity to the
// fleet. The SessionResult is the wall's own (frames, throughput, recovery
// evidence); errors are the wall's typed session errors.
func (s *Session) Close() (*service.SessionResult, error) {
	if s.closed {
		return nil, service.ErrSessionClosed
	}
	s.closed = true
	res, err := s.s.Close()
	s.f.noteClosed(s)
	return res, err
}
