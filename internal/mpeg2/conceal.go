package mpeg2

import (
	"tiledwall/internal/bits"
)

// Error concealment: broadcast-grade decoders do not abort a picture on a
// corrupt slice; they conceal the damaged macroblock rows and resynchronise
// at the next start code. DecodePictureUnitConcealing decodes like
// DecodePictureUnit but recovers from slice-level syntax errors by
// concealing the slice's rows: co-located copy from the forward reference
// when one exists, mid-grey otherwise. The return value reports how many
// slices were concealed so callers can surface stream health.
func DecodePictureUnitConcealing(seq *SequenceHeader, unit []byte, fwd, bwd, dst *PixelBuf) (*PictureHeader, int, error) {
	ph, sliceOff, err := ParsePictureUnit(unit)
	if err != nil {
		return nil, 0, err
	}
	ctx, err := NewPictureContext(seq, ph)
	if err != nil {
		return nil, 0, err
	}
	rc := NewReconstructor(ph)
	concealed := 0
	r := bits.NewReader(unit)
	r.SeekBit(sliceOff)
	for bits.NextStartCodeReader(r) {
		pos := r.BitPos() / 8
		code := unit[pos+3]
		if !bits.IsSliceStartCode(code) {
			break
		}
		r.Skip(32)
		vpos := int(code)
		if seq.Height > 2800 {
			vpos = int(r.Read(3))<<7 + vpos
		}
		if err := decodeSlice(ctx, rc, r, vpos, fwd, bwd, dst); err != nil {
			concealRow(ctx, rc, vpos-1, fwd, dst)
			concealed++
			// Resynchronise: NextStartCodeReader aligns and scans forward,
			// skipping whatever corrupt bits remain in this slice.
		}
	}
	return ph, concealed, nil
}

// concealRow replaces macroblock row `row` with the co-located forward
// reference (temporal concealment) or mid-grey when no reference exists.
func concealRow(ctx *PictureContext, rc *Reconstructor, row int, fwd, dst *PixelBuf) {
	if row < 0 || row >= ctx.MBH {
		return
	}
	if fwd != nil {
		for col := 0; col < ctx.MBW; col++ {
			dst.CopyMacroblock(fwd, col, row)
		}
		return
	}
	y0 := row * 16
	for y := y0; y < y0+16; y++ {
		base := (y - dst.Y0) * dst.W
		for x := 0; x < dst.W; x++ {
			dst.Y[base+x] = 128
		}
	}
	cw := dst.W / 2
	for y := y0 / 2; y < y0/2+8; y++ {
		base := (y - dst.Y0/2) * cw
		for x := 0; x < cw; x++ {
			dst.Cb[base+x] = 128
			dst.Cr[base+x] = 128
		}
	}
}

// ResilientDecoder wraps the serial decoder with slice concealment: corrupt
// pictures degrade instead of failing. ConcealedSlices accumulates across
// the stream.
type ResilientDecoder struct {
	inner           *Decoder
	ConcealedSlices int
}

// NewResilientDecoder parses data and returns a concealment-enabled decoder.
func NewResilientDecoder(data []byte) (*ResilientDecoder, error) {
	d, err := NewDecoder(data)
	if err != nil {
		return nil, err
	}
	return &ResilientDecoder{inner: d}, nil
}

// DecodeAll decodes the stream in display order, concealing slice errors.
func (rd *ResilientDecoder) DecodeAll() ([]DecodedPicture, error) {
	d := rd.inner
	var out []DecodedPicture
	for d.next < len(d.stream.Pictures) {
		unit := d.stream.Pictures[d.next]
		idx := d.next
		d.next++
		picType, err := PeekPictureType(unit)
		if err != nil {
			// The picture header itself is damaged: skip the unit entirely
			// (a real decoder would wait for the next anchor; B/P chains
			// degrade but the stream keeps playing).
			rd.ConcealedSlices += d.stream.Seq.MBHeight()
			continue
		}
		w, h := codedSize(d.stream.Seq)
		dst := NewPixelBuf(0, 0, w, h)
		var fwd, bwd *PixelBuf
		switch picType {
		case PictureP:
			if d.refB == nil {
				continue
			}
			fwd = d.refB
		case PictureB:
			if d.refA == nil || d.refB == nil {
				continue
			}
			fwd, bwd = d.refA, d.refB
		}
		ph, concealed, err := DecodePictureUnitConcealing(d.stream.Seq, unit, fwd, bwd, dst)
		if err != nil {
			rd.ConcealedSlices += d.stream.Seq.MBHeight()
			continue
		}
		rd.ConcealedSlices += concealed
		if picType == PictureB {
			out = append(out, DecodedPicture{Buf: dst, Pic: ph, DecodeIndex: idx})
			continue
		}
		if d.havePendingAnchor {
			out = append(out, DecodedPicture{Buf: d.refB, Pic: d.refBPic, DecodeIndex: d.refBIdx})
		}
		d.refA, d.refB = d.refB, dst
		d.refBPic, d.refBIdx = ph, idx
		d.havePendingAnchor = true
	}
	if d.havePendingAnchor {
		out = append(out, DecodedPicture{Buf: d.refB, Pic: d.refBPic, DecodeIndex: d.refBIdx})
		d.havePendingAnchor = false
	}
	return out, nil
}
