package bits

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReaderBasic(t *testing.T) {
	r := NewReader([]byte{0b10110100, 0b01011111})
	if got := r.Read(1); got != 1 {
		t.Fatalf("bit0 = %d, want 1", got)
	}
	if got := r.Read(3); got != 0b011 {
		t.Fatalf("bits1-3 = %03b, want 011", got)
	}
	if got := r.Peek(4); got != 0b0100 {
		t.Fatalf("peek4 = %04b, want 0100", got)
	}
	if r.BitPos() != 4 {
		t.Fatalf("BitPos = %d, want 4", r.BitPos())
	}
	if got := r.Read(8); got != 0b01000101 {
		t.Fatalf("cross-byte read = %08b, want 01000101", got)
	}
	r.AlignByte()
	if r.BitPos() != 16 {
		t.Fatalf("after align BitPos = %d, want 16", r.BitPos())
	}
	if r.Err() != nil {
		t.Fatalf("unexpected err %v", r.Err())
	}
}

func TestReaderUnderflow(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if got := r.Read(8); got != 0xFF {
		t.Fatalf("read = %x", got)
	}
	if got := r.Read(4); got != 0 {
		t.Fatalf("underflow read = %x, want 0", got)
	}
	if r.Err() != ErrUnderflow {
		t.Fatalf("err = %v, want ErrUnderflow", r.Err())
	}
}

func TestPeekNearEnd(t *testing.T) {
	// Buffers shorter than 8 bytes exercise the slow path.
	r := NewReader([]byte{0xAB, 0xCD})
	if got := r.Peek(16); got != 0xABCD {
		t.Fatalf("peek16 = %04x, want abcd", got)
	}
	if got := r.Peek(32); got != 0xABCD0000 {
		t.Fatalf("peek32 = %08x, want abcd0000", got)
	}
	r.Skip(8)
	if got := r.Peek(8); got != 0xCD {
		t.Fatalf("peek8@8 = %02x, want cd", got)
	}
}

func TestReaderSeek(t *testing.T) {
	r := NewReader([]byte{0x12, 0x34, 0x56})
	r.SeekBit(12)
	if got := r.Read(8); got != 0x45 {
		t.Fatalf("read@12 = %02x, want 45", got)
	}
	r.SeekBit(999)
	if r.Err() == nil {
		t.Fatal("seek out of range should set Err")
	}
}

func TestWriterBasic(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b101, 3)
	w.WriteBits(0b10100, 5)
	w.WriteBits(0x5F, 8)
	got := w.Bytes()
	want := []byte{0b10110100, 0x5F}
	if !bytes.Equal(got, want) {
		t.Fatalf("bytes = %x, want %x", got, want)
	}
	if w.BitLen() != 16 {
		t.Fatalf("BitLen = %d, want 16", w.BitLen())
	}
}

func TestWriterAlign(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b1, 1)
	w.AlignZero()
	if !w.ByteAligned() || w.BitLen() != 8 {
		t.Fatalf("align failed: len=%d", w.BitLen())
	}
	if got := w.Bytes(); got[0] != 0b10000000 {
		t.Fatalf("byte = %08b", got[0])
	}
	w.WriteBits(0b11, 2)
	w.AlignOne()
	if got := w.Bytes(); got[1] != 0b11111111 {
		t.Fatalf("AlignOne byte = %08b", got[1])
	}
}

func TestWriterPartialByte(t *testing.T) {
	w := NewWriter(2)
	w.WriteBits(0b110, 3)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b11000000 {
		t.Fatalf("partial byte = %x", got)
	}
	// Bytes must not disturb the writer: keep writing afterwards.
	w.WriteBits(0b10111, 5)
	got = w.Bytes()
	if len(got) != 1 || got[0] != 0b11010111 {
		t.Fatalf("continued byte = %08b", got[0])
	}
}

func TestWriteBytes(t *testing.T) {
	w := NewWriter(8)
	w.WriteBytes([]byte{1, 2, 3})
	if !bytes.Equal(w.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("bytes = %x", w.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned WriteBytes should panic")
		}
	}()
	w.WriteBit(1)
	w.WriteBytes([]byte{4})
}

// Property: a sequence of (value,width) writes reads back identically.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		vals := make([]uint32, count)
		widths := make([]int, count)
		w := NewWriter(64)
		for i := range vals {
			widths[i] = rng.Intn(32) + 1
			vals[i] = rng.Uint32() & (1<<uint(widths[i]) - 1)
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			if got := r.Read(widths[i]); got != vals[i] {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Peek never advances and agrees with Read.
func TestPeekReadAgreeQuick(t *testing.T) {
	f := func(data []byte, skip uint16, n uint8) bool {
		r := NewReader(data)
		r.Skip(int(skip) % (len(data)*8 + 1))
		width := int(n%32) + 1
		pos := r.BitPos()
		p := r.Peek(width)
		if r.BitPos() != pos {
			return false
		}
		return r.Read(width) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNextStartCode(t *testing.T) {
	data := []byte{0xFF, 0x00, 0x00, 0x01, 0xB3, 0x00, 0x00, 0x00, 0x01, 0x00, 0xAA}
	off := NextStartCode(data, 0)
	if off != 1 {
		t.Fatalf("first start code at %d, want 1", off)
	}
	if code, ok := StartCodeAt(data, off); !ok || code != SequenceHeaderCod {
		t.Fatalf("code = %x ok=%v", code, ok)
	}
	off = NextStartCode(data, off+3)
	if off != 6 {
		// 00 00 00 01 contains a prefix starting at index 6 (00 00 01).
		t.Fatalf("second start code at %d, want 6", off)
	}
	if code, _ := StartCodeAt(data, off); code != PictureStartCode {
		t.Fatalf("code = %x, want picture", code)
	}
	if NextStartCode(data, off+3) != -1 {
		t.Fatal("expected no more start codes")
	}
}

func TestScanStartCodes(t *testing.T) {
	var buf []byte
	codes := []byte{SequenceHeaderCod, GroupStartCode, PictureStartCode, 0x01, SequenceEndCode}
	for _, c := range codes {
		buf = append(buf, 0, 0, 1, c, 0xDE, 0xAD)
	}
	offs, got := ScanStartCodes(buf)
	if len(offs) != len(codes) {
		t.Fatalf("found %d codes, want %d", len(offs), len(codes))
	}
	for i := range codes {
		if got[i] != codes[i] {
			t.Fatalf("code[%d] = %x, want %x", i, got[i], codes[i])
		}
		if offs[i] != i*6 {
			t.Fatalf("off[%d] = %d, want %d", i, offs[i], i*6)
		}
	}
}

func TestNextStartCodeReader(t *testing.T) {
	data := []byte{0xAB, 0x00, 0x00, 0x01, 0x42, 0xFF}
	r := NewReader(data)
	r.Skip(3) // unaligned
	if !NextStartCodeReader(r) {
		t.Fatal("expected a start code")
	}
	if r.BitPos() != 8 {
		t.Fatalf("pos = %d, want 8", r.BitPos())
	}
	if got := r.Read(32); got != 0x00000142 {
		t.Fatalf("start code word = %08x", got)
	}
	if NextStartCodeReader(r) {
		t.Fatal("expected no further start code")
	}
}

func TestIsSliceStartCode(t *testing.T) {
	for _, c := range []byte{0x01, 0x50, 0xAF} {
		if !IsSliceStartCode(c) {
			t.Errorf("%#x should be a slice start code", c)
		}
	}
	for _, c := range []byte{0x00, 0xB0, 0xB3, 0xB8, 0xFF} {
		if IsSliceStartCode(c) {
			t.Errorf("%#x should not be a slice start code", c)
		}
	}
}

func BenchmarkReaderRead8(b *testing.B) {
	data := make([]byte, 1<<16)
	rand.New(rand.NewSource(1)).Read(data)
	r := NewReader(data)
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 8 {
			r.Reset(data)
		}
		r.Read(8)
	}
}

func BenchmarkNextStartCode(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(data)
	copy(data[len(data)-4:], []byte{0, 0, 1, 0xB3})
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		NextStartCode(data, 0)
	}
}
