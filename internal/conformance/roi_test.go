package conformance

import (
	"testing"

	"tiledwall/internal/system"
)

// TestROIMatrix holds the subscription path to the oracle: every matrix
// configuration, on both transports, plays a session subscribing a random
// proper tile subset with a mid-stream re-subscription, and every subscribed
// tile must be byte-identical to the serial reference — the halo closure may
// skip work, never change pixels.
func TestROIMatrix(t *testing.T) {
	// fcode=1 seeds with B pictures: small motion reach means far tiles are
	// not halo sources, so the matrix must produce actual skip markers (the
	// aggregate assertion below) on top of per-tile byte-identity.
	for _, seed := range []int64{4, 14} {
		p := ParamsForSeed(seed)
		seed := seed
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			stream, err := p.Generate()
			if err != nil {
				t.Fatal(err)
			}
			results, err := RunROIMatrix(stream, DefaultMatrix(), seed)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 2*len(DefaultMatrix()) {
				t.Fatalf("ROI matrix ran %d axes, want %d", len(results), 2*len(DefaultMatrix()))
			}
			var skipped int64
			for _, r := range results {
				if err := r.Failure(); err != nil {
					t.Error(err)
				}
				skipped += r.SkippedSubPics
			}
			if skipped == 0 {
				t.Error("no configuration shipped a single skip marker — the partial-subscription path did not engage")
			}
		})
	}
}

// TestTrickOracle verifies trick play against the serial decode of the same
// picture subset: drop-B emits exactly the serial I/P frames, I-only exactly
// the serial I frames, with the dropped-picture accounting to match.
func TestTrickOracle(t *testing.T) {
	for _, seed := range []int64{4, 9} {
		p := ParamsForSeed(seed)
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			stream, err := p.Generate()
			if err != nil {
				t.Fatal(err)
			}
			cfgs := []system.Config{
				{K: 0, M: 2, N: 2},
				{K: 1, M: 2, N: 2},
				{K: 2, M: 2, N: 2},
				{K: 2, M: 3, N: 2},
				{K: 3, M: 2, N: 2, Overlap: 16},
			}
			results, err := RunTrickOracle(stream, cfgs)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				if err := r.Failure(); err != nil {
					t.Error(err)
				}
				if r.Err == nil && r.Skipped == 0 {
					t.Errorf("%s/%s: no pictures were dropped — trick mode did not engage", MatrixResult{Config: r.Config}.Name(), r.Mode)
				}
			}
		})
	}
}
