package recovery

import (
	"sync/atomic"
	"testing"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
)

func testCfg() Config {
	return Config{
		Enabled:         true,
		LeaseInterval:   2 * time.Millisecond,
		LeaseExpiry:     8 * time.Millisecond,
		RetryInterval:   3 * time.Millisecond,
		MaxBackoff:      20 * time.Millisecond,
		PictureDeadline: 100 * time.Millisecond,
		MaxRestarts:     2,
		RetainWindow:    4,
	}
}

// pair builds two endpoints on a fresh fabric with an optional drop hook.
func pair(t *testing.T, fcfg cluster.Config) (*Endpoint, *Endpoint, *metrics.Recovery, func()) {
	t.Helper()
	fab := cluster.New(2, fcfg)
	rec := &metrics.Recovery{}
	a := NewEndpoint(fab.Node(0), testCfg(), rec)
	b := NewEndpoint(fab.Node(1), testCfg(), rec)
	return a, b, rec, func() {
		a.Close()
		b.Close()
		fab.Shutdown()
	}
}

func TestEndpointInOrder(t *testing.T) {
	a, b, _, done := pair(t, cluster.Config{})
	defer done()
	for i := 0; i < 5; i++ {
		a.Send(1, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: i})
	}
	for i := 0; i < 5; i++ {
		m, timedOut := b.RecvTimeout(cluster.MsgSubPicture, time.Second)
		if timedOut || m == nil || m.Seq != i {
			t.Fatalf("message %d: got %+v timedOut=%v", i, m, timedOut)
		}
		if m.XSeq != int64(i+1) {
			t.Fatalf("message %d carries XSeq %d, want %d", i, m.XSeq, i+1)
		}
	}
	// Uncovered kinds pass through unsequenced.
	xm := &cluster.Message{Kind: cluster.MsgXport, Seq: 9, Payload: make([]byte, 1)}
	a.Send(1, xm)
	if xm.XSeq != 0 {
		t.Fatalf("transport control was sequenced: XSeq=%d", xm.XSeq)
	}
}

// TestEndpointRepairsLoss drops the first attempt of one mid-stream message:
// the gap is NACKed as soon as a later message exposes it, the retransmission
// passes, and delivery order is preserved with the duplicate counted.
func TestEndpointRepairsLoss(t *testing.T) {
	var dropped int32
	fcfg := cluster.Config{
		Drop: func(m *cluster.Message) bool {
			if m.Kind == cluster.MsgSubPicture && m.XSeq == 2 &&
				m.Flags&cluster.FlagRetransmit == 0 &&
				atomic.CompareAndSwapInt32(&dropped, 0, 1) {
				return true
			}
			return false
		},
	}
	a, b, rec, done := pair(t, fcfg)
	defer done()
	for i := 0; i < 4; i++ {
		a.Send(1, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: i})
	}
	for i := 0; i < 4; i++ {
		m, timedOut := b.RecvTimeout(cluster.MsgSubPicture, 2*time.Second)
		if timedOut || m == nil || m.Seq != i {
			t.Fatalf("message %d: got %+v timedOut=%v", i, m, timedOut)
		}
	}
	if s := rec.Snapshot(); s.Retransmits < 1 {
		t.Fatalf("loss repaired without a recorded retransmit: %s", s)
	}
}

// TestEndpointRepairsTailLoss drops the final message's first attempt: no
// later traffic exposes the gap, so only the sender's backoff timer can
// repair it.
func TestEndpointRepairsTailLoss(t *testing.T) {
	var dropped int32
	fcfg := cluster.Config{
		Drop: func(m *cluster.Message) bool {
			return m.Kind == cluster.MsgSubPicture && m.XSeq == 3 &&
				m.Flags&cluster.FlagRetransmit == 0 &&
				atomic.CompareAndSwapInt32(&dropped, 0, 1)
		},
	}
	a, b, _, done := pair(t, fcfg)
	defer done()
	for i := 0; i < 3; i++ {
		a.Send(1, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: i})
	}
	for i := 0; i < 3; i++ {
		m, timedOut := b.RecvTimeout(cluster.MsgSubPicture, 2*time.Second)
		if timedOut || m == nil || m.Seq != i {
			t.Fatalf("message %d: got %+v timedOut=%v", i, m, timedOut)
		}
	}
}

// TestEndpointCloseWithDeadPeer is the teardown-deadlock regression: a peer
// that stopped draining its queues (finished or crashed) must not wedge the
// sender's retransmit loop — and with it Close — once retransmissions have
// filled the peer's bounded queue.
func TestEndpointCloseWithDeadPeer(t *testing.T) {
	fab := cluster.New(2, cluster.Config{QueueDepth: 2})
	defer fab.Shutdown()
	cfg := testCfg()
	cfg.RetryInterval = time.Millisecond
	a := NewEndpoint(fab.Node(0), cfg, nil)
	// Two covered messages, never acked: node 1 has no process. Retransmits
	// fill its 2-deep queue almost immediately.
	a.Send(1, &cluster.Message{Kind: cluster.MsgAck, Seq: 1})
	a.Send(1, &cluster.Message{Kind: cluster.MsgAck, Seq: 2})
	time.Sleep(30 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		a.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind a dead peer's full queue")
	}
}

// TestEndpointSendNeverBlocks: covered first attempts must be non-blocking
// too — a worker acking to a peer that already finished (full queue, nobody
// draining) has to keep making progress, with the retained copy left to the
// NACK/timer path.
func TestEndpointSendNeverBlocks(t *testing.T) {
	fab := cluster.New(2, cluster.Config{QueueDepth: 1})
	defer fab.Shutdown()
	a := NewEndpoint(fab.Node(0), testCfg(), nil)
	defer a.Close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 8; i++ {
			a.Send(1, &cluster.Message{Kind: cluster.MsgAck, Seq: i})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Send blocked behind a dead peer's full queue")
	}
}

func TestSupervisorRespawnAndBudget(t *testing.T) {
	sup := NewSupervisor(testCfg(), nil)
	defer sup.Close()
	lease := NewLease()
	sup.Watch(7, lease)

	// An expired lease alone must NOT burn a restart: only a parked worker
	// (crashed and waiting in AwaitRespawn) is granted an incarnation, so a
	// slow-but-alive node can never be killed by the supervisor.
	time.Sleep(30 * time.Millisecond)
	if n := sup.Restarts(7); n != 0 {
		t.Fatalf("unparked worker restarted %d times", n)
	}

	abort := make(chan struct{})
	if n, ok := sup.AwaitRespawn(7, abort); !ok || n != 1 {
		t.Fatalf("first respawn: n=%d ok=%v", n, ok)
	}
	if n, ok := sup.AwaitRespawn(7, abort); !ok || n != 2 {
		t.Fatalf("second respawn: n=%d ok=%v", n, ok)
	}
	// MaxRestarts=2: the budget is now exhausted.
	if _, ok := sup.AwaitRespawn(7, abort); ok {
		t.Fatal("respawn granted beyond MaxRestarts")
	}
}

func TestSupervisorAbortUnparks(t *testing.T) {
	sup := NewSupervisor(testCfg(), nil)
	defer sup.Close()
	lease := NewLease()
	sup.Watch(3, lease)
	abort := make(chan struct{})
	res := make(chan bool, 1)
	go func() {
		// The lease stays renewed, so no grant can fire; only abort frees it.
		_, ok := sup.AwaitRespawn(3, abort)
		res <- ok
	}()
	go func() {
		for i := 0; i < 20; i++ {
			lease.Renew()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(abort)
	select {
	case ok := <-res:
		if ok {
			t.Fatal("aborted AwaitRespawn reported a grant")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AwaitRespawn did not unpark on abort")
	}
}

func TestLeaseExpiry(t *testing.T) {
	l := NewLease()
	if l.Expired(time.Second) {
		t.Fatal("fresh lease reported expired")
	}
	time.Sleep(15 * time.Millisecond)
	if !l.Expired(10 * time.Millisecond) {
		t.Fatal("stale lease reported live")
	}
	l.Renew()
	if l.Expired(10 * time.Millisecond) {
		t.Fatal("renewed lease reported expired")
	}
}

func TestSubPicRetainerWindow(t *testing.T) {
	r := NewSubPicRetainer(4)
	for pic := 0; pic <= 10; pic++ {
		r.Retain(0, 0, pic, 100+pic, []byte{byte(pic)})
	}
	got := r.Since(0, 0, 0)
	// Window 4 around maxPic 10: everything below 6 is pruned.
	if len(got) == 0 || got[0].Pic < 6 {
		t.Fatalf("window not pruned: %+v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Pic <= got[i-1].Pic {
			t.Fatalf("Since not ascending: %+v", got)
		}
	}
	if sub := r.Since(0, 0, 9); len(sub) != 2 || sub[0].Pic != 9 || sub[1].Pic != 10 {
		t.Fatalf("Since(9) = %+v", sub)
	}
	if other := r.Since(0, 1, 0); len(other) != 0 {
		t.Fatalf("unknown tile returned %+v", other)
	}
	// Session scoping: another session's window is independent, and dropping
	// it leaves the first session's entries intact.
	r.Retain(7, 0, 3, 103, []byte{3})
	if got := r.Since(7, 0, 0); len(got) != 1 || got[0].Pic != 3 {
		t.Fatalf("session 7 window: %+v", got)
	}
	r.Drop(7)
	if got := r.Since(7, 0, 0); len(got) != 0 {
		t.Fatalf("session 7 window survived Drop: %+v", got)
	}
	if got := r.Since(0, 0, 9); len(got) != 2 {
		t.Fatalf("session 0 window disturbed by Drop: %+v", got)
	}
}

func TestPictureRetainerAck(t *testing.T) {
	r := NewPictureRetainer()
	r.Retain(0, 0, 2, 20, 0, []byte{2})
	r.Retain(0, 0, 4, 40, 0, []byte{4})
	r.Retain(0, 1, 3, 30, 0, []byte{3})
	r.Ack(0, 0, 2)
	p := r.Pending(0, 0)
	if len(p) != 1 || p[0].Seq != 4 || p[0].Tag != 40 {
		t.Fatalf("pending after ack: %+v", p)
	}
	if p := r.Pending(0, 1); len(p) != 1 || p[0].Seq != 3 {
		t.Fatalf("splitter 1 pending: %+v", p)
	}
	r.Ack(0, 0, 4)
	if p := r.Pending(0, 0); len(p) != 0 {
		t.Fatalf("pending after full ack: %+v", p)
	}
	r.Ack(0, 2, 9) // unknown splitter: must not panic
}

func TestPictureRetainerSessions(t *testing.T) {
	r := NewPictureRetainer()
	// Interleaved sends of two sessions to the same splitter: replay order
	// must follow send order, not per-session seq order.
	r.Retain(1, 0, 0, 10, 0, []byte{1})
	r.Retain(2, 0, 0, 20, 0, []byte{2})
	r.Retain(1, 0, 1, 11, 0, []byte{3})
	all := r.PendingSplitter(0)
	if len(all) != 3 || all[0].Session != 1 || all[1].Session != 2 || all[2].Seq != 1 {
		t.Fatalf("PendingSplitter order: %+v", all)
	}
	if s, ok := r.OldestSession(0); !ok || s != 1 {
		t.Fatalf("OldestSession = %d, %v", s, ok)
	}
	// Acking session 1's oldest shifts the oldest pending to session 2.
	r.Ack(1, 0, 0)
	if s, ok := r.OldestSession(0); !ok || s != 2 {
		t.Fatalf("OldestSession after ack = %d, %v", s, ok)
	}
	// One session's entries ack and drop without disturbing the other.
	r.Drop(1)
	if p := r.Pending(1, 0); len(p) != 0 {
		t.Fatalf("session 1 survived Drop: %+v", p)
	}
	if p := r.Pending(2, 0); len(p) != 1 || p[0].Seq != 0 {
		t.Fatalf("session 2 disturbed: %+v", p)
	}
}

func TestCheckpointState(t *testing.T) {
	c := NewCheckpoint()
	if next, pending, buf, total := c.State(); next != 0 || pending != -1 || buf != nil || total != -1 {
		t.Fatalf("initial state: %d %d %v %d", next, pending, buf, total)
	}
	c.Update(5, 4)
	c.SetFinalTotal(12)
	if next, pending, _, total := c.State(); next != 5 || pending != 4 || total != 12 {
		t.Fatalf("updated state: %d %d %d", next, pending, total)
	}
}
