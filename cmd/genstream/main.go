// Command genstream generates the synthetic analogues of the paper's 16
// test streams (Table 4) as MPEG-2 video elementary stream files.
//
// Usage:
//
//	genstream -out dir [-stream N | -all] [-frames 240] [-scale 1] [-closed]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tiledwall/internal/catalog"
	"tiledwall/internal/mpegps"
)

func main() {
	var (
		out    = flag.String("out", "streams", "output directory")
		id     = flag.Int("stream", 0, "stream id 1..16 (0 with -all)")
		all    = flag.Bool("all", false, "generate every catalogue stream")
		frames = flag.Int("frames", 240, "frames per stream")
		scale  = flag.Int("scale", 1, "resolution divisor (1 = paper scale)")
		closed = flag.Bool("closed", false, "closed GOPs (for the GOP-level baseline)")
		ps     = flag.Bool("ps", false, "wrap the video in an MPEG-2 program stream (.mpg)")
		seed   = flag.Int64("seed", 1, "content seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	opts := catalog.GenOptions{Frames: *frames, Scale: *scale, ClosedGOP: *closed, Seed: *seed}

	var specs []catalog.StreamSpec
	switch {
	case *all:
		specs = catalog.Streams
	case *id >= 1:
		spec, err := catalog.ByID(*id)
		if err != nil {
			log.Fatal(err)
		}
		specs = []catalog.StreamSpec{spec}
	default:
		log.Fatal("genstream: pass -stream N or -all")
	}

	for _, spec := range specs {
		w, h := spec.Dimensions(opts)
		fmt.Printf("generating %2d %-8s %4dx%-4d %d frames...\n", spec.ID, spec.Name, w, h, *frames)
		data, err := spec.Generate(opts)
		if err != nil {
			log.Fatalf("stream %d: %v", spec.ID, err)
		}
		ext := "m2v"
		if *ps {
			data = mpegps.Mux(data, mpegps.MuxOptions{FrameRate: 30})
			ext = "mpg"
		}
		path := filepath.Join(*out, fmt.Sprintf("%02d_%s.%s", spec.ID, spec.Name, ext))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s (%d bytes, %.3f bit/pixel)\n", path, len(data),
			float64(len(data)*8)/float64(*frames)/float64(w*h))
	}
}
