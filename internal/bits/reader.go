// Package bits provides MSB-first bit-level readers and writers and the
// MPEG-2 start-code scanning primitives shared by the decoder, the encoder
// and the splitters.
//
// MPEG-2 video is a bit-oriented format: macroblocks start and end at
// arbitrary bit positions, while the higher-level syntactic elements
// (sequence, GOP, picture, slice) begin with 32-bit byte-aligned start codes.
// Reader therefore tracks an exact bit position so callers can record the
// [start,end) bit range of a parsed macroblock — the second-level splitter
// copies those raw bits into sub-pictures.
package bits

import (
	"errors"
	"fmt"
)

// ErrUnderflow is returned (via Reader.Err) when a read runs past the end of
// the buffer. Reads after underflow return zeros so parsing code can check
// the error once per syntactic element instead of on every field.
var ErrUnderflow = errors.New("bits: read past end of stream")

// ErrReadSize is returned (via Reader.Err) when a read is requested with a
// width outside [0, 32]. Widths are normally compile-time constants, but
// corrupt-input hardening must not rely on that: a reader fed a hostile size
// degrades to zeros plus a sticky error instead of shifting by a negative
// amount or walking the position backwards.
var ErrReadSize = errors.New("bits: read size out of range")

// Reader reads an in-memory buffer MSB first.
//
// The zero value is an empty reader; use NewReader. Reader is not safe for
// concurrent use.
type Reader struct {
	data []byte
	pos  int // absolute bit position from the start of data
	err  error
}

// NewReader returns a Reader over data. The Reader does not copy data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Reset re-points the reader at data and clears position and error state.
func (r *Reader) Reset(data []byte) {
	r.data = data
	r.pos = 0
	r.err = nil
}

// Err reports the first underflow encountered, if any.
func (r *Reader) Err() error { return r.err }

// BitPos returns the absolute bit position from the start of the buffer.
func (r *Reader) BitPos() int { return r.pos }

// SeekBit moves the read position to the absolute bit offset pos.
func (r *Reader) SeekBit(pos int) {
	if pos < 0 || pos > len(r.data)*8 {
		r.err = ErrUnderflow
		return
	}
	r.pos = pos
}

// Len returns the total length of the underlying buffer in bits.
func (r *Reader) Len() int { return len(r.data) * 8 }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.data)*8 - r.pos }

// Byte-aligned reports whether the read position is on a byte boundary.
func (r *Reader) ByteAligned() bool { return r.pos&7 == 0 }

// Peek returns the next n bits (0 <= n <= 32) without advancing. Bits past
// the end of the buffer read as zero; Err is not set by Peek so that VLC
// lookahead near the end of a buffer does not poison the reader.
func (r *Reader) Peek(n int) uint32 {
	if n <= 0 || n > 32 {
		return 0
	}
	byteIdx := r.pos >> 3
	bitOff := uint(r.pos & 7)
	// Fast path: the 8 bytes starting at byteIdx are in bounds, so a single
	// 64-bit load covers any (bitOff, n<=32) combination.
	if byteIdx+8 <= len(r.data) {
		b := r.data[byteIdx:]
		w := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
		return uint32(w << bitOff >> (64 - uint(n)))
	}
	// Slow path near the end of the buffer: missing bytes read as zero.
	var w uint64
	for i := 0; i < 8; i++ {
		w <<= 8
		if byteIdx+i < len(r.data) {
			w |= uint64(r.data[byteIdx+i])
		}
	}
	return uint32(w << bitOff >> (64 - uint(n)))
}

// Read returns the next n bits (0 <= n <= 32) and advances. On underflow it
// sets Err and returns zeros for the missing bits.
func (r *Reader) Read(n int) uint32 {
	if n < 0 || n > 32 {
		if r.err == nil {
			r.err = ErrReadSize
		}
		return 0
	}
	v := r.Peek(n)
	r.pos += n
	if r.pos > len(r.data)*8 {
		r.pos = len(r.data) * 8
		if r.err == nil {
			r.err = ErrUnderflow
		}
	}
	return v
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() uint32 { return r.Read(1) }

// Skip advances the position by n bits. Negative n is rejected with
// ErrReadSize; the position never moves backwards except through SeekBit.
func (r *Reader) Skip(n int) {
	if n < 0 {
		if r.err == nil {
			r.err = ErrReadSize
		}
		return
	}
	r.pos += n
	if r.pos > len(r.data)*8 {
		r.pos = len(r.data) * 8
		if r.err == nil {
			r.err = ErrUnderflow
		}
	}
}

// AlignByte advances to the next byte boundary (no-op when already aligned).
func (r *Reader) AlignByte() {
	if rem := r.pos & 7; rem != 0 {
		r.Skip(8 - rem)
	}
}

// String describes the reader state for debugging.
func (r *Reader) String() string {
	return fmt.Sprintf("bits.Reader{pos=%d/%d err=%v}", r.pos, len(r.data)*8, r.err)
}
