package recovery

import (
	"testing"
	"time"

	"tiledwall/internal/cluster"
)

func testCfg() Config {
	return Config{
		Enabled:         true,
		LeaseInterval:   2 * time.Millisecond,
		LeaseExpiry:     8 * time.Millisecond,
		PictureDeadline: 100 * time.Millisecond,
		MaxRestarts:     2,
	}
}

func TestSupervisorRespawnAndBudget(t *testing.T) {
	sup := NewSupervisor(testCfg(), nil)
	defer sup.Close()
	lease := NewLease()
	sup.Watch(7, lease)

	// An expired lease alone must NOT burn a restart: only a parked worker
	// (crashed and waiting in AwaitRespawn) is granted an incarnation, so a
	// slow-but-alive node can never be killed by the supervisor.
	time.Sleep(30 * time.Millisecond)
	if n := sup.Restarts(7); n != 0 {
		t.Fatalf("unparked worker restarted %d times", n)
	}

	abort := make(chan struct{})
	if n, ok := sup.AwaitRespawn(7, abort); !ok || n != 1 {
		t.Fatalf("first respawn: n=%d ok=%v", n, ok)
	}
	if n, ok := sup.AwaitRespawn(7, abort); !ok || n != 2 {
		t.Fatalf("second respawn: n=%d ok=%v", n, ok)
	}
	// MaxRestarts=2: the budget is now exhausted.
	if _, ok := sup.AwaitRespawn(7, abort); ok {
		t.Fatal("respawn granted beyond MaxRestarts")
	}
}

func TestSupervisorAbortUnparks(t *testing.T) {
	sup := NewSupervisor(testCfg(), nil)
	defer sup.Close()
	lease := NewLease()
	sup.Watch(3, lease)
	abort := make(chan struct{})
	res := make(chan bool, 1)
	go func() {
		// The lease stays renewed, so no grant can fire; only abort frees it.
		_, ok := sup.AwaitRespawn(3, abort)
		res <- ok
	}()
	go func() {
		for i := 0; i < 20; i++ {
			lease.Renew()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(abort)
	select {
	case ok := <-res:
		if ok {
			t.Fatal("aborted AwaitRespawn reported a grant")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AwaitRespawn did not unpark on abort")
	}
}

func TestLeaseExpiry(t *testing.T) {
	l := NewLease()
	if l.Expired(time.Second) {
		t.Fatal("fresh lease reported expired")
	}
	time.Sleep(15 * time.Millisecond)
	if !l.Expired(10 * time.Millisecond) {
		t.Fatal("stale lease reported live")
	}
	l.Renew()
	if l.Expired(10 * time.Millisecond) {
		t.Fatal("renewed lease reported expired")
	}
}

func TestPictureRetainerAck(t *testing.T) {
	r := NewPictureRetainer(false)
	r.Retain(0, 0, 2, 20, 0, []byte{2})
	r.Retain(0, 0, 4, 40, 0, []byte{4})
	r.Retain(0, 1, 3, 30, 0, []byte{3})
	r.Ack(0, 0, 2)
	p := r.Pending(0, 0)
	if len(p) != 1 || p[0].Seq != 4 || p[0].Tag != 40 {
		t.Fatalf("pending after ack: %+v", p)
	}
	if p := r.Pending(0, 1); len(p) != 1 || p[0].Seq != 3 {
		t.Fatalf("splitter 1 pending: %+v", p)
	}
	r.Ack(0, 0, 4)
	if p := r.Pending(0, 0); len(p) != 0 {
		t.Fatalf("pending after full ack: %+v", p)
	}
	r.Ack(0, 2, 9) // unknown splitter: must not panic
}

func TestPictureRetainerSessions(t *testing.T) {
	r := NewPictureRetainer(false)
	// Interleaved sends of two sessions to the same splitter: replay order
	// must follow send order, not per-session seq order.
	r.Retain(1, 0, 0, 10, 0, []byte{1})
	r.Retain(2, 0, 0, 20, 0, []byte{2})
	r.Retain(1, 0, 1, 11, 0, []byte{3})
	all := r.PendingSplitter(0)
	if len(all) != 3 || all[0].Session != 1 || all[1].Session != 2 || all[2].Seq != 1 {
		t.Fatalf("PendingSplitter order: %+v", all)
	}
	if s, ok := r.OldestSession(0); !ok || s != 1 {
		t.Fatalf("OldestSession = %d, %v", s, ok)
	}
	// Acking session 1's oldest shifts the oldest pending to session 2.
	r.Ack(1, 0, 0)
	if s, ok := r.OldestSession(0); !ok || s != 2 {
		t.Fatalf("OldestSession after ack = %d, %v", s, ok)
	}
	// One session's entries ack and drop without disturbing the other.
	r.Drop(1)
	if p := r.Pending(1, 0); len(p) != 0 {
		t.Fatalf("session 1 survived Drop: %+v", p)
	}
	if p := r.Pending(2, 0); len(p) != 1 || p[0].Seq != 0 {
		t.Fatalf("session 2 disturbed: %+v", p)
	}
}

// TestPictureRetainerPooledRefs proves the pooled retainer holds a slab
// reference per entry: the consumer's release cannot recycle a retained
// slab, the releasing ack can, and duplicate acks never double-release.
func TestPictureRetainerPooledRefs(t *testing.T) {
	r := NewPictureRetainer(true)
	payload := append(cluster.GetSlab(512), make([]byte, 400)...)
	r.Retain(0, 0, 0, 0, 0, payload)
	cluster.PutSlab(payload) // the consuming splitter's release
	if got := cluster.GetSlab(512); &got[:1][0] == &payload[:1][0] {
		t.Fatal("retained slab recycled by the consumer's release")
	}
	r.Ack(0, 0, 0) // releasing ack: the retainer's reference returns
	got := cluster.GetSlab(512)
	if &got[:1][0] != &payload[:1][0] {
		t.Fatal("slab not recycled after the retainer released it")
	}
	cluster.PutSlab(got)
	r.Ack(0, 0, 0) // duplicate ack: entry gone, must not double-release

	// Drop releases every retained reference of the session.
	p2 := append(cluster.GetSlab(512), make([]byte, 300)...)
	r.Retain(3, 0, 0, 0, 0, p2)
	cluster.PutSlab(p2)
	r.Drop(3)
	got2 := cluster.GetSlab(512)
	if &got2[:1][0] != &p2[:1][0] {
		t.Fatal("slab not recycled after Drop")
	}
	cluster.PutSlab(got2)
}
