// Allocation-regression tests: the hot-path overhaul (fast IDCT, row-wise
// motion compensation, buffer/slab pooling) promises a steady-state decode
// that stays off the heap. These tests pin that property with
// testing.AllocsPerRun so a regression fails CI rather than showing up as a
// slow drift in GC pressure.
package tiledwall

import (
	"io"
	"testing"

	"tiledwall/internal/experiments"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/service"
	"tiledwall/internal/system"
)

func allocStream(t testing.TB) *mpeg2.Stream {
	t.Helper()
	data, _, err := experiments.Stream(8, experiments.Options{Frames: 12, Scale: 4, Seed: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := mpeg2.ParseStream(data)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// decodeAllReleasing decodes the whole stream, releasing every emitted frame
// back to the pixel-buffer pool — the steady-state wall usage pattern, where
// a frame is scanned out and its buffer recycled.
func decodeAllReleasing(t testing.TB, s *mpeg2.Stream) int {
	d := mpeg2.NewStreamDecoder(s)
	n := 0
	for {
		p, err := d.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		p.Buf.Release()
	}
}

// TestDecodeSteadyStateAllocs bounds per-picture heap allocation of the
// serial decoder when the caller recycles frames. The budget is the picture
// header (which outlives the decode call in reference rotation) plus a small
// constant of amortised bookkeeping — not the megabytes per picture the
// unpooled decoder allocated.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	s := allocStream(t)
	pics := decodeAllReleasing(t, s) // warm the pixel-buffer pool
	if pics == 0 {
		t.Fatal("stream decoded to zero pictures")
	}

	allocs := testing.AllocsPerRun(8, func() {
		decodeAllReleasing(t, s)
	})
	perPicture := allocs / float64(pics)
	t.Logf("%d pictures, %.1f allocs per full decode, %.2f per picture", pics, allocs, perPicture)
	if perPicture > 4 {
		t.Fatalf("steady-state decode allocates %.2f objects per picture, budget is 4", perPicture)
	}
}

// TestPooledRecoveryWallAllocs pins the composition the refcounted slab
// ownership buys (DESIGN.md §9): a warm resident wall with pooling AND
// recovery armed must hold a bounded per-picture allocation rate in steady
// state. Retention shares the pooled payload slabs by reference, so arming
// the retainer must not clone pictures or bleed slabs out of the pool — a
// regression on either shows up here as a per-picture alloc jump.
func TestPooledRecoveryWallAllocs(t *testing.T) {
	data, _, err := experiments.Stream(8, experiments.Options{Frames: 36, Scale: 4, Seed: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := system.Config{K: 1, M: 2, N: 1, Pooled: true, SplitWorkers: 1}
	cfg.Recovery.Enabled = true
	w, err := system.NewResidentWall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Warm the slab classes and the session machinery before measuring.
	res, err := w.Play(data)
	if err != nil {
		t.Fatal(err)
	}
	pics := res.Throughput.Pictures
	if pics == 0 {
		t.Fatal("stream decoded to zero pictures")
	}
	allocs := testing.AllocsPerRun(4, func() {
		if _, err := w.Play(data); err != nil {
			t.Fatal(err)
		}
	})
	perPicture := allocs / float64(pics)
	t.Logf("%d pictures, %.1f allocs per session, %.2f per picture", pics, allocs, perPicture)
	// The per-session constant (open, channels, goroutines, result) amortises
	// over the pictures; the per-picture share is the retention + transport
	// bookkeeping. An unshared retainer copy alone would add the whole
	// payload-slab traffic back, blowing far past this budget.
	if perPicture > 60 {
		t.Fatalf("pooled+recovery wall allocates %.2f objects per picture, budget is 60", perPicture)
	}
}

// TestWallLoadAllocs pins the fleet router's admission-time read: Wall.Load
// is sampled on every routing decision across every open in the fleet, so it
// must allocate nothing — it reads three atomics off to the side of the
// session machinery instead of taking the open/close lock.
func TestWallLoadAllocs(t *testing.T) {
	w, err := service.New(service.Config{K: 0, M: 1, N: 1, MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Sample under live-session load, not on an idle wall, so a regression
	// that only bites with sessions registered still fails here.
	s, err := w.Open("load-alloc")
	if err != nil {
		t.Fatal(err)
	}
	var sink service.Load
	allocs := testing.AllocsPerRun(100, func() {
		sink = w.Load()
	})
	if allocs != 0 {
		t.Fatalf("Wall.Load allocates %.1f objects per call, budget is 0", allocs)
	}
	if sink.ActiveSessions != 1 || sink.MaxSessions != 2 {
		t.Fatalf("Load snapshot %+v, want 1/2 active sessions", sink)
	}
	s.Close()
}

// BenchmarkDecodeGOP is the headline hot-path benchmark: repeated
// steady-state GOP decoding with frames recycled through the pixel-buffer
// pool, the usage pattern of a wall node. allocs/op here is the whole-stream
// figure the continuous-benchmark guard watches.
func BenchmarkDecodeGOP(b *testing.B) {
	data, _, err := experiments.Stream(8, experiments.Options{Frames: 24, Scale: 2, Seed: 1}, false)
	if err != nil {
		b.Fatal(err)
	}
	s, err := mpeg2.ParseStream(data)
	if err != nil {
		b.Fatal(err)
	}
	pics := decodeAllReleasing(b, s) // warm the pool before measuring
	pixels := int64(s.Seq.Width) * int64(s.Seq.Height) * int64(pics)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decodeAllReleasing(b, s)
	}
	b.SetBytes(pixels)
	b.ReportMetric(float64(pics)*float64(b.N)/b.Elapsed().Seconds(), "fps")
}
