package fleet

import (
	"errors"
	"fmt"
	"testing"

	"tiledwall/internal/service"
)

// stickyCounts runs the skewed-arrival experiment from the splitter's
// rootbalance methodology one level up: waves of four opens, the first of
// each wave held for the rest of the run ("sticky"), the other three closed
// immediately. The skew resonates with a four-wall round-robin period — the
// sticky open always lands on the same rotation phase — so RR funnels every
// long-lived session onto one wall while least-loaded spreads them.
func stickyCounts(t *testing.T, route RoutePolicy, waves int) []int {
	t.Helper()
	f, err := New(Config{
		Route: route,
		Walls: []service.Config{
			{K: 0, M: 1, N: 1, MaxSessions: 64},
			{K: 0, M: 1, N: 1, MaxSessions: 64},
			{K: 0, M: 1, N: 1, MaxSessions: 64},
			{K: 0, M: 1, N: 1, MaxSessions: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var sticky []*Session
	for wv := 0; wv < waves; wv++ {
		for j := 0; j < 4; j++ {
			s, err := f.Open(fmt.Sprintf("w%d-%d", wv, j), OpenOptions{})
			if err != nil {
				t.Fatalf("wave %d open %d: %v", wv, j, err)
			}
			if j == 0 {
				sticky = append(sticky, s)
			} else {
				s.Close() // empty session: the error is expected, the slot frees
			}
		}
	}
	counts := make([]int, 4)
	for _, s := range sticky {
		counts[s.Wall()]++
	}
	for _, s := range sticky {
		s.Close()
	}
	return counts
}

func busiest(counts []int) int {
	b := 0
	for _, c := range counts {
		if c > b {
			b = c
		}
	}
	return b
}

// TestRouteLeastLoadedBeatsRoundRobin is the routing property test: on
// skewed arrivals at W=4 the least-loaded router's busiest wall holds
// strictly fewer sessions than round-robin's, and no wall starves.
func TestRouteLeastLoadedBeatsRoundRobin(t *testing.T) {
	const waves = 12
	rr := stickyCounts(t, RoundRobin, waves)
	ll := stickyCounts(t, LeastLoaded, waves)
	t.Logf("sticky sessions per wall: round-robin %v, least-loaded %v", rr, ll)

	if busiest(rr) != waves {
		t.Fatalf("round-robin should funnel all %d sticky sessions onto one wall, got %v", waves, rr)
	}
	if busiest(ll) >= busiest(rr) {
		t.Fatalf("least-loaded busiest wall (%d) not strictly lower than round-robin (%d)", busiest(ll), busiest(rr))
	}
	for i, c := range ll {
		if c == 0 {
			t.Fatalf("least-loaded starved wall %d: %v", i, ll)
		}
	}
}

// TestRouteMinTiles pins compatibility routing: an open demanding more tiles
// than any wall has fails fast with ErrNoCompatibleWall, and one demanding a
// big wall never lands on a small one even when the small wall is idle.
func TestRouteMinTiles(t *testing.T) {
	f, err := New(Config{
		Walls: []service.Config{
			{K: 0, M: 1, N: 1, MaxSessions: 4},
			{K: 0, M: 2, N: 2, MaxSessions: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Open("huge", OpenOptions{MinTiles: 9}); !errors.Is(err, ErrNoCompatibleWall) {
		t.Fatalf("MinTiles=9: got %v, want ErrNoCompatibleWall", err)
	}
	for i := 0; i < 4; i++ {
		s, err := f.Open(fmt.Sprintf("big-%d", i), OpenOptions{MinTiles: 4})
		if err != nil {
			t.Fatalf("big open %d: %v", i, err)
		}
		if s.Wall() != 1 {
			t.Fatalf("big open %d landed on wall %d (1 tile), want wall 1", i, s.Wall())
		}
		defer s.Close()
	}
}
