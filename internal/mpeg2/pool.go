package mpeg2

import "sync"

// Pixel-buffer pooling. Decoding a GOP churns through picture-sized buffers
// (display frames, reference rotation, halo exchange scratch); allocating
// them fresh costs both the allocation and the page-in of multi-megabyte
// zeroed planes. The pool recycles buffers by geometry so steady-state
// decoding allocates nothing per picture.

// pixBufKey identifies a pool of interchangeable buffers: position is
// rebindable, plane sizes are not.
type pixBufKey struct{ w, h int }

// pixBufPools maps pixBufKey to *sync.Pool of *PixelBuf.
var pixBufPools sync.Map

// AcquirePixelBuf returns a w×h window at (x0, y0), reusing a previously
// Released buffer of the same geometry when one is available. Unlike
// NewPixelBuf the planes are NOT zeroed on reuse: callers own every sample
// they read (decode paths write each macroblock exactly once; concealment
// seeds windows with Fill).
func AcquirePixelBuf(x0, y0, w, h int) *PixelBuf {
	key := pixBufKey{w, h}
	if p, ok := pixBufPools.Load(key); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			b := v.(*PixelBuf)
			b.X0, b.Y0 = x0, y0
			return b
		}
	}
	return NewPixelBuf(x0, y0, w, h)
}

// Release returns the buffer to the pool for its geometry. The caller must
// not touch the buffer afterwards. Release validates the plane backing
// against the window geometry first, so a corrupted buffer (resliced planes,
// mismatched strides) is rejected here rather than resurfacing later as
// silently wrong pixels in an unrelated decode.
func (b *PixelBuf) Release() {
	if b == nil {
		return
	}
	b.checkBacking("Release")
	key := pixBufKey{b.W, b.H}
	p, ok := pixBufPools.Load(key)
	if !ok {
		p, _ = pixBufPools.LoadOrStore(key, &sync.Pool{})
	}
	p.(*sync.Pool).Put(b)
}
