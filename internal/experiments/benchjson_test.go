package experiments

import (
	"bytes"
	"testing"
	"time"
)

func TestBenchJSONRoundtripAndGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full decodes")
	}
	rep, err := BenchJSON(Options{Frames: 8, Scale: 4, Seed: 1}, time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serial.FPS <= 0 || rep.Serial.Pictures == 0 {
		t.Fatalf("empty serial bench: %+v", rep.Serial)
	}
	if rep.Serial.AllocsPerPic > 4 {
		t.Fatalf("serial allocs/picture %.2f exceeds steady-state budget", rep.Serial.AllocsPerPic)
	}
	if len(rep.Kernels) != 3 || len(rep.Systems) != 7 {
		t.Fatalf("report shape: %d kernels %d systems", len(rep.Kernels), len(rep.Systems))
	}
	if rep.GoMaxProcs < 1 {
		t.Fatalf("gomaxprocs not recorded: %d", rep.GoMaxProcs)
	}
	tcp := 0
	for _, sys := range rep.Systems {
		if len(sys.SplitPhaseMsPP) == 0 {
			t.Fatalf("%s: no splitter phase breakdown", sys.Config)
		}
		if sys.Transport == "tcp" {
			tcp++
			if sys.FPS <= 0 {
				t.Fatalf("%s over tcp: no throughput measured", sys.Config)
			}
		}
	}
	if tcp != 2 {
		t.Fatalf("transport axis ran %d tcp systems, want 2", tcp)
	}
	if rep.Recovery == nil || rep.Recovery.BaselineFPS <= 0 || rep.Recovery.RecoveryFPS <= 0 {
		t.Fatalf("empty recovery bench: %+v", rep.Recovery)
	}
	if rep.Fleet == nil || rep.Fleet.AggregateFPS <= 0 || rep.Fleet.Walls != 4 {
		t.Fatalf("empty fleet bench: %+v", rep.Fleet)
	}
	if rep.Fleet.Shed != 0 {
		t.Fatalf("fleet bench shed %d sessions under a 60s deadline", rep.Fleet.Shed)
	}
	if rep.Fleet.P99OpenMs <= 0 {
		t.Fatalf("fleet bench recorded no open latency: %+v", rep.Fleet)
	}
	if rep.ROI == nil || len(rep.ROI.Fractions) != 3 || rep.ROI.BaselineFPS <= 0 {
		t.Fatalf("empty roi bench: %+v", rep.ROI)
	}
	for i, fr := range rep.ROI.Fractions {
		if fr.FPS <= 0 || fr.ShippedMB <= 0 {
			t.Fatalf("roi fraction %d tiles measured nothing: %+v", fr.Tiles, fr)
		}
		if i > 0 && fr.ShippedMB <= rep.ROI.Fractions[i-1].ShippedMB {
			t.Fatalf("roi shipped bytes not monotone with subscription: %+v", rep.ROI.Fractions)
		}
	}
	if rep.ROI.Fractions[0].SkippedSubPics == 0 {
		t.Fatalf("roi 1-tile fraction shipped no skip markers: %+v", rep.ROI.Fractions[0])
	}

	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Serial != rep.Serial || back.Date != rep.Date {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", back.Serial, rep.Serial)
	}

	// Identical reports pass the guard without warnings.
	if v, w := CompareBenchReports(rep, back, 0.10); len(v) != 0 || len(w) != 0 {
		t.Fatalf("self-comparison flagged: %v / %v", v, w)
	}
	// A halved frame rate fails it.
	worse := *back
	worse.Serial.FPS /= 2
	if v, _ := CompareBenchReports(rep, &worse, 0.10); len(v) == 0 {
		t.Fatal("50% fps regression not flagged")
	}
	// Returning heap allocation fails it.
	leaky := *back
	leaky.Serial.AllocsPerPic = rep.Serial.AllocsPerPic + 30
	if v, _ := CompareBenchReports(rep, &leaky, 0.10); len(v) == 0 {
		t.Fatal("allocation regression not flagged")
	}
	// Within-tolerance jitter passes.
	jitter := *back
	jitter.Serial.FPS *= 0.95
	if v, _ := CompareBenchReports(rep, &jitter, 0.10); len(v) != 0 {
		t.Fatalf("5%% jitter flagged: %v", v)
	}
	// Recovery overhead past the structural gate fails, baseline or not.
	heavy := *back
	heavyRec := *rep.Recovery
	heavyRec.RecoveryFPS = heavyRec.BaselineFPS * 0.8
	heavyRec.OverheadFrac = 0.2
	heavy.Recovery = &heavyRec
	if v, _ := CompareBenchReports(rep, &heavy, 0.10); len(v) == 0 {
		t.Fatal("20% fault-free recovery overhead not flagged")
	}
	// Fleet sheds gate structurally, baseline or not.
	shedding := *back
	shedFleet := *rep.Fleet
	shedFleet.Shed = 3
	shedding.Fleet = &shedFleet
	if v, _ := CompareBenchReports(rep, &shedding, 0.10); len(v) == 0 {
		t.Fatal("fleet sheds not flagged")
	}
	// A gross p99 open regression (over 3x baseline, above the noise floor)
	// fails; small absolute jitter below the floor never does.
	slowOpen := *back
	slowFleet := *rep.Fleet
	slowFleet.P99OpenMs = rep.Fleet.P99OpenMs*4 + 100
	slowOpen.Fleet = &slowFleet
	if v, _ := CompareBenchReports(rep, &slowOpen, 0.10); len(v) == 0 {
		t.Fatal("4x fleet p99 open regression not flagged")
	}
	noisy := *back
	noisyFleet := *rep.Fleet
	noisyFleet.P99OpenMs = 4 // under the 5ms floor, even if base was near zero
	noisy.Fleet = &noisyFleet
	if v, _ := CompareBenchReports(rep, &noisy, 0.10); len(v) != 0 {
		t.Fatalf("sub-floor fleet p99 jitter flagged: %v", v)
	}
	// An old baseline without the fleet section warns, never fails.
	noFleetBase := *rep
	noFleetBase.Fleet = nil
	v0, w0 := CompareBenchReports(&noFleetBase, back, 0.10)
	if len(v0) != 0 {
		t.Fatalf("fleet section gated against fleet-less baseline: %v", v0)
	}
	if len(w0) != 1 {
		t.Fatalf("want 1 fleet-missing-from-baseline warning, got %v", w0)
	}
	// A system the baseline does not know warns but never fails: growing the
	// suite must not require a new baseline in the same change.
	oldBase := *rep
	oldBase.Systems = rep.Systems[:len(rep.Systems)-1]
	v, w := CompareBenchReports(&oldBase, back, 0.10)
	if len(v) != 0 {
		t.Fatalf("new system gated against old baseline: %v", v)
	}
	if len(w) != 1 {
		t.Fatalf("want 1 missing-from-baseline warning, got %v", w)
	}
	// And the reverse: a system dropped from the current report warns too.
	v, w = CompareBenchReports(rep, &oldBase, 0.10)
	if len(v) != 0 || len(w) != 1 {
		t.Fatalf("dropped system: violations %v warnings %v", v, w)
	}
}
