// Package video generates deterministic synthetic test content reproducing
// the structure of the paper's 16 test streams (Table 4): DVD film clips,
// computer animation, HDTV fish-tank camera footage, broadcast recordings
// and the Orion Nebula visualisation flythroughs. The actual footage is not
// redistributable; what the experiments depend on is resolution, bits per
// pixel, motion structure and — for the flyby class — spatial locality of
// detail (paper §5.5), all of which these scenes control.
package video

import (
	"fmt"
	"math"

	"tiledwall/internal/mpeg2"
)

// SceneKind selects a generator.
type SceneKind int

const (
	// SceneFilm: camera pans over a textured scene with moving foreground
	// blobs and film grain; models the DVD movie clips (streams 1-3).
	SceneFilm SceneKind = iota
	// SceneAnimation: flat-shaded regions with hard edges in smooth motion;
	// models the rendered animation (streams 4, 12).
	SceneAnimation
	// SceneFishTank: static background, several independently moving
	// fish-like ellipses and a slow ripple; models streams 5-8.
	SceneFishTank
	// SceneBroadcast: studio-like static layout with a scrolling ticker and
	// a talking-head region of constant small motion; models streams 9-11.
	SceneBroadcast
	// SceneFlyby: star-field zoom whose visual detail and motion are
	// concentrated in one region of the frame, reproducing the localised
	// complexity of the Orion flybys (streams 13-16) that causes decoder
	// load imbalance in the paper's §5.5.
	SceneFlyby
)

func (k SceneKind) String() string {
	switch k {
	case SceneFilm:
		return "film"
	case SceneAnimation:
		return "animation"
	case SceneFishTank:
		return "fishtank"
	case SceneBroadcast:
		return "broadcast"
	case SceneFlyby:
		return "flyby"
	}
	return fmt.Sprintf("SceneKind(%d)", int(k))
}

// Source produces frames of a scene.
type Source struct {
	Kind SceneKind
	W, H int
	Seed int64

	// precomputed per-scene state
	blobs []blob
	noise []uint8
}

type blob struct {
	x, y, vx, vy, r float64
	shade           uint8
}

// NewSource creates a deterministic scene generator. w and h must be
// multiples of 16.
func NewSource(kind SceneKind, w, h int, seed int64) *Source {
	s := &Source{Kind: kind, W: w, H: h, Seed: seed}
	rng := newXorshift(uint64(seed)*2654435761 + 1)
	n := 6 + int(rng.next()%5)
	for i := 0; i < n; i++ {
		s.blobs = append(s.blobs, blob{
			x:     float64(rng.next() % uint64(w)),
			y:     float64(rng.next() % uint64(h)),
			vx:    float64(int(rng.next()%9)-4) / 2,
			vy:    float64(int(rng.next()%9)-4) / 2,
			r:     float64(16 + rng.next()%uint64(h/8+1)),
			shade: uint8(64 + rng.next()%128),
		})
	}
	// A tileable noise strip for texture/grain, cheap to index per pixel.
	s.noise = make([]uint8, 4096)
	for i := range s.noise {
		s.noise[i] = uint8(rng.next())
	}
	return s
}

// xorshift is a tiny deterministic RNG so scenes do not depend on
// math/rand's generator across Go versions.
type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

// Frame renders display-order frame i into a fresh buffer.
func (s *Source) Frame(i int) *mpeg2.PixelBuf {
	f := mpeg2.NewPixelBuf(0, 0, s.W, s.H)
	s.Render(i, f)
	return f
}

// Render renders frame i into dst, which must be a full-picture window.
func (s *Source) Render(i int, dst *mpeg2.PixelBuf) {
	switch s.Kind {
	case SceneFilm:
		s.renderFilm(i, dst)
	case SceneAnimation:
		s.renderAnimation(i, dst)
	case SceneFishTank:
		s.renderFishTank(i, dst)
	case SceneBroadcast:
		s.renderBroadcast(i, dst)
	case SceneFlyby:
		s.renderFlyby(i, dst)
	}
}

// fillChromaFromLuma derives smooth chroma planes from two phase-shifted
// low-frequency fields; content is what matters, not colour fidelity.
func (s *Source) fillChroma(dst *mpeg2.PixelBuf, t, scale int) {
	cw, ch := s.W/2, s.H/2
	for y := 0; y < ch; y++ {
		row := y * cw
		for x := 0; x < cw; x++ {
			dst.Cb[row+x] = uint8(128 + 40*iSin((x+t*scale)*360/(cw+1))/256)
			dst.Cr[row+x] = uint8(128 + 40*iSin((y-t*scale)*360/(ch+1))/256)
		}
	}
}

// iSin is a 256-scaled integer sine with degree argument.
func iSin(deg int) int {
	return int(256 * math.Sin(float64(deg)*math.Pi/180))
}

func (s *Source) renderFilm(i int, dst *mpeg2.PixelBuf) {
	panX, panY := i*2, i
	for y := 0; y < s.H; y++ {
		row := y * s.W
		ny := (y + panY) & 63
		for x := 0; x < s.W; x++ {
			nx := (x + panX) & 63
			base := 80 + ((x+panX)>>4+(y+panY)>>4)&31*3
			grain := int(s.noise[(ny*64+nx)&4095]) >> 4
			dst.Y[row+x] = uint8(base + grain)
		}
	}
	s.drawBlobs(i, dst, 1)
	s.fillChroma(dst, i, 2)
}

func (s *Source) renderAnimation(i int, dst *mpeg2.PixelBuf) {
	// Flat background bands.
	for y := 0; y < s.H; y++ {
		row := y * s.W
		shade := uint8(60 + (y*4/s.H)*40)
		for x := 0; x < s.W; x++ {
			dst.Y[row+x] = shade
		}
	}
	s.drawBlobs(i, dst, 2)
	s.fillChroma(dst, i, 1)
}

func (s *Source) renderFishTank(i int, dst *mpeg2.PixelBuf) {
	// Static gradient background with a slow vertical ripple.
	for y := 0; y < s.H; y++ {
		row := y * s.W
		ripple := iSin((y*6+i*10)%360) >> 6
		for x := 0; x < s.W; x++ {
			dst.Y[row+x] = uint8(96 + (x * 48 / s.W) + ripple + int(s.noise[(y*61+x)&4095])>>5)
		}
	}
	s.drawBlobs(i, dst, 1)
	s.fillChroma(dst, 0, 0) // static chroma: camera scene
}

func (s *Source) renderBroadcast(i int, dst *mpeg2.PixelBuf) {
	for y := 0; y < s.H; y++ {
		row := y * s.W
		for x := 0; x < s.W; x++ {
			// Studio: vertical colour bars.
			dst.Y[row+x] = uint8(64 + (x*8/s.W)*20)
		}
	}
	// Talking-head region: small oscillating motion in the centre.
	cx, cy := s.W/2, s.H/3
	off := iSin(i*25) >> 6
	for y := cy; y < cy+s.H/4 && y < s.H; y++ {
		row := y * s.W
		for x := cx - s.W/8; x < cx+s.W/8; x++ {
			dst.Y[row+x] = uint8(150 + int(s.noise[((y+off)*37+x)&4095])>>3)
		}
	}
	// Ticker: a band scrolling horizontally.
	ty := s.H - s.H/8
	for y := ty; y < ty+s.H/16 && y < s.H; y++ {
		row := y * s.W
		for x := 0; x < s.W; x++ {
			dst.Y[row+x] = uint8(32 + int(s.noise[(y*13+x+i*8)&4095])>>2)
		}
	}
	s.fillChroma(dst, 0, 0)
}

func (s *Source) renderFlyby(i int, dst *mpeg2.PixelBuf) {
	// A dim star field drifting slowly across the whole frame: every tile
	// sees some motion (the paper reports communication staying low and
	// *balanced* even for this content, §5.6), but the bulk of the bits
	// concentrate in the dense region below.
	drift := i
	for y := 0; y < s.H; y++ {
		row := y * s.W
		for x := 0; x < s.W; x++ {
			v := s.noise[((y)*53+x+drift)&4095]
			if v > 236 {
				dst.Y[row+x] = 16 + v>>2
			} else {
				dst.Y[row+x] = 16
			}
		}
	}
	// Detail concentrated toward the upper-left (roughly a quarter of the
	// screen carries most of it): a dense zooming turbulence field whose
	// bit-rate dominates the picture, reproducing the per-tile load
	// imbalance of the paper's highest-resolution streams (§5.5).
	rw, rh := s.W*5/8, s.H*5/8
	zoom := 1.0 + float64(i)*0.01
	for y := 0; y < rh; y++ {
		row := y * s.W
		sy := int(float64(y)/zoom) + i
		for x := 0; x < rw; x++ {
			sx := int(float64(x)/zoom) + i*2
			v := int(s.noise[(sy*97+sx)&4095])
			if v < 72 {
				v = 0 // sparsify: keep the region busy but compressible
			}
			v = v * (rw - x) / rw * (rh - y) / rh // fade toward region edge
			if v > 0 {
				dst.Y[row+x] = uint8(16 + v*3/4)
			}
		}
	}
	// A handful of bright moving stars crossing the whole frame.
	s.drawBlobs(i, dst, 3)
	s.fillChroma(dst, i, 1)
}

// drawBlobs renders the scene's moving objects; speed scales their motion.
func (s *Source) drawBlobs(i int, dst *mpeg2.PixelBuf, speed int) {
	t := float64(i * speed)
	for _, b := range s.blobs {
		cx := b.x + b.vx*t
		cy := b.y + b.vy*t
		// Wrap around the frame.
		cx = math.Mod(math.Mod(cx, float64(s.W))+float64(s.W), float64(s.W))
		cy = math.Mod(math.Mod(cy, float64(s.H))+float64(s.H), float64(s.H))
		r := b.r
		x0, x1 := int(cx-r), int(cx+r)
		y0, y1 := int(cy-r), int(cy+r)
		for y := y0; y <= y1; y++ {
			if y < 0 || y >= s.H {
				continue
			}
			row := y * s.W
			dy := float64(y) - cy
			for x := x0; x <= x1; x++ {
				if x < 0 || x >= s.W {
					continue
				}
				dx := float64(x) - cx
				if dx*dx+dy*dy <= r*r {
					dst.Y[row+x] = b.shade
				}
			}
		}
	}
}
