package encoder

import "tiledwall/internal/mpeg2"

// Forward quantisation, the inverse of mpeg2.DequantIntra/DequantNonIntra.
// Levels are clamped to ±2047 so every coefficient is expressible (at worst
// as a 12-bit escape).

func clampLevel(v int32) int32 {
	if v > 2047 {
		return 2047
	}
	if v < -2047 {
		return -2047
	}
	return v
}

// quantIntra quantises an intra block in place. blk holds FDCT coefficients;
// on return blk[0] is the quantised DC (before differential coding) and
// blk[1..] the quantised AC levels. Returns true if any AC level is nonzero
// (always true for intra coding purposes: the DC is always sent).
func quantIntra(blk *[64]int32, w *[64]uint8, quantiserScale int32, dcShift uint) {
	// DC: dequant multiplies by 1<<dcShift.
	half := int32(1) << dcShift >> 1
	dc := blk[0]
	if dc >= 0 {
		dc = (dc + half) >> dcShift
	} else {
		dc = -((-dc + half) >> dcShift)
	}
	// intra_dc_precision p gives the DC p+8 bits: clamp to [0, 2^(p+8)-1].
	maxDC := int32(1)<<(11-dcShift) - 1
	if dc < 0 {
		dc = 0
	} else if dc > maxDC {
		dc = maxDC
	}
	blk[0] = dc
	for i := 1; i < 64; i++ {
		f := blk[i]
		if f == 0 {
			continue
		}
		d := int32(w[i]) * quantiserScale // dequant scale numerator (×2/32)
		var q int32
		if f >= 0 {
			q = (16*f + d/2) / d
		} else {
			q = -((-16*f + d/2) / d)
		}
		blk[i] = clampLevel(q)
	}
}

// quantNonIntra quantises a non-intra (residual) block in place with a dead
// zone, returning true when any level is nonzero.
func quantNonIntra(blk *[64]int32, w *[64]uint8, quantiserScale int32) bool {
	any := false
	for i := 0; i < 64; i++ {
		f := blk[i]
		if f == 0 {
			continue
		}
		d := int32(w[i]) * quantiserScale
		var q int32
		if f >= 0 {
			q = 16 * f / d
		} else {
			q = -(16 * -f / d)
		}
		q = clampLevel(q)
		blk[i] = q
		if q != 0 {
			any = true
		}
	}
	return any
}

// dcSizeOf returns the dct_dc_size for a DC differential.
func dcSizeOf(diff int32) int {
	if diff < 0 {
		diff = -diff
	}
	size := 0
	for diff != 0 {
		diff >>= 1
		size++
	}
	return size
}

var _ = mpeg2.DequantIntra // quant.go mirrors the arithmetic defined there
