package encoder

import (
	"math"

	"tiledwall/internal/mpeg2"
)

// encodePicture encodes one picture, reconstructs it through the shared
// decoder path, updates rate control, and returns the reconstruction.
func (e *Encoder) encodePicture(src *mpeg2.PixelBuf, t mpeg2.PictureType, displayIdx int, fwd, bwd *mpeg2.PixelBuf) (*mpeg2.PixelBuf, error) {
	startBits := e.w.BitLen()

	picQ := int(math.Round(e.qByType[t]))
	if picQ < 1 {
		picQ = 1
	} else if picQ > 31 {
		picQ = 31
	}

	ph := &mpeg2.PictureHeader{
		TemporalRef:      displayIdx % 1024,
		PicType:          t,
		VBVDelay:         0xFFFF,
		FCode:            [2][2]int{{15, 15}, {15, 15}},
		IntraDCPrecision: e.cfg.IntraDCPrecision,
		PictureStructure: 3,
		FramePredDCT:     true,
		QScaleType:       e.cfg.QScaleType,
		IntraVLCFormat:   e.cfg.IntraVLCFormat,
		AlternateScan:    e.cfg.AlternateScan,
		ProgressiveFrame: true,
	}
	if t == mpeg2.PictureP || t == mpeg2.PictureB {
		ph.FCode[0][0], ph.FCode[0][1] = e.cfg.FCode, e.cfg.FCode
	}
	if t == mpeg2.PictureB {
		ph.FCode[1][0], ph.FCode[1][1] = e.cfg.FCode, e.cfg.FCode
	}
	ph.Write(e.w)

	ctx, err := mpeg2.NewPictureContext(e.seq, ph)
	if err != nil {
		return nil, err
	}
	recon := mpeg2.NewPixelBuf(0, 0, e.cfg.Width, e.cfg.Height)
	pe := &picEncoder{
		e: e, ctx: ctx, ph: ph, src: src, recon: recon,
		fwd: fwd, bwd: bwd,
		rc:   mpeg2.NewReconstructor(ph),
		picQ: picQ,
	}
	if fwd != nil {
		pe.estF = newEstimator(src, fwd, e.cfg.SearchRange, e.cfg.FCode)
	}
	if bwd != nil {
		pe.estB = newEstimator(src, bwd, e.cfg.SearchRange, e.cfg.FCode)
	}
	for row := 0; row < ctx.MBH; row++ {
		if err := pe.encodeRow(row); err != nil {
			return nil, err
		}
	}

	// Rate control and stats.
	bits := int64(e.w.BitLen() - startBits)
	e.stats.Pictures++
	e.stats.PicturesByType[t]++
	e.stats.BitsByType[t] += bits
	e.stats.TotalBits += bits
	if e.cfg.TargetBPP > 0 {
		e.updateRate(t, bits)
	}
	if pe.mbCount > 0 {
		e.avgAct = pe.actSum / float64(pe.mbCount)
		if e.avgAct < 1 {
			e.avgAct = 1
		}
	}
	return recon, nil
}

// updateRate nudges the per-type quantiser toward the per-picture bit
// target derived from TargetBPP and the GOP structure.
func (e *Encoder) updateRate(t mpeg2.PictureType, bits int64) {
	n := float64(e.cfg.GOPSize)
	nP := n/float64(e.cfg.BSpacing) - 1
	nB := n - nP - 1
	const wI, wP, wB = 3.0, 1.6, 1.0
	total := e.cfg.TargetBPP * float64(e.cfg.Width*e.cfg.Height) * n
	denom := wI + wP*nP + wB*nB
	var target float64
	switch t {
	case mpeg2.PictureI:
		target = total * wI / denom
	case mpeg2.PictureP:
		target = total * wP / denom
	default:
		target = total * wB / denom
	}
	if target < 1 {
		return
	}
	ratio := float64(bits) / target
	q := e.qByType[t] * math.Pow(ratio, 0.7)
	q = 0.5*q + 0.5*e.qByType[t]
	if q < 1 {
		q = 1
	} else if q > 31 {
		q = 31
	}
	e.qByType[t] = q
}

// picEncoder carries the per-picture encoding state.
type picEncoder struct {
	e          *Encoder
	ctx        *mpeg2.PictureContext
	ph         *mpeg2.PictureHeader
	src, recon *mpeg2.PixelBuf
	fwd, bwd   *mpeg2.PixelBuf
	rc         *mpeg2.Reconstructor
	estF, estB *estimator
	picQ       int

	lastMVF, lastMVB [2]int32
	prevMotion       mpeg2.MotionInfo
	prevIntra        bool

	actSum  float64
	mbCount int

	// Scratch buffers.
	pY, qY   [256]uint8
	pCb, pCr [64]uint8
	qCb, qCr [64]uint8
	blocks   [6][64]int32
}

// encodeRow emits one slice (one macroblock row).
func (pe *picEncoder) encodeRow(row int) error {
	e := pe.e
	sw := mpeg2.NewSliceWriter(pe.ctx, e.w, row, pe.picQ)
	pe.lastMVF, pe.lastMVB = [2]int32{}, [2]int32{}
	pe.prevMotion = mpeg2.MotionInfo{}
	pe.prevIntra = true // nothing to inherit at slice start

	skipRun := 0
	for col := 0; col < pe.ctx.MBW; col++ {
		mb, skip, err := pe.encodeMB(row, col, skipRun, sw.State())
		if err != nil {
			return err
		}
		if skip {
			skipRun++
			e.stats.SkippedMBs++
			continue
		}
		mb.SkipBefore = skipRun
		skipRun = 0
		if err := sw.WriteMB(mb); err != nil {
			return err
		}
	}
	return nil
}

// activity returns a SAD-style activity measure of the source macroblock.
func (pe *picEncoder) activity(x, y int) int32 {
	var sum int32
	var mean int32
	for r := 0; r < 16; r++ {
		i := (y+r-pe.src.Y0)*pe.src.W + x
		for _, v := range pe.src.Y[i : i+16] {
			mean += int32(v)
		}
	}
	mean /= 256
	for r := 0; r < 16; r++ {
		i := (y+r-pe.src.Y0)*pe.src.W + x
		for _, v := range pe.src.Y[i : i+16] {
			d := int32(v) - mean
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// encodeMB decides the mode for one macroblock. It either reconstructs a
// skipped macroblock and returns skip=true, or returns the MBCode to write
// (already reconstructed into pe.recon).
func (pe *picEncoder) encodeMB(row, col, skipRun int, st mpeg2.PredState) (*mpeg2.MBCode, bool, error) {
	e := pe.e
	ctx := pe.ctx
	x, y := col*16, row*16
	addr := row*ctx.MBW + col
	picType := pe.ph.PicType

	act := pe.activity(x, y)
	pe.actSum += float64(act)
	pe.mbCount++

	desiredQ := pe.picQ
	if e.cfg.AdaptiveQuant && e.avgAct > 0 {
		a := float64(act)
		f := (2*a + e.avgAct) / (a + 2*e.avgAct)
		q := int(math.Round(float64(pe.picQ) * f))
		if q < 1 {
			q = 1
		} else if q > 31 {
			q = 31
		}
		desiredQ = q
	}
	qs := mpeg2.QuantiserScale(desiredQ, pe.ph.QScaleType)

	// Motion search.
	var m mpeg2.MotionInfo
	var bestSAD int32 = 1 << 30
	if picType != mpeg2.PictureI {
		mvF, sadF := pe.estF.search(x, y, [][2]int32{pe.lastMVF})
		m = mpeg2.MotionInfo{Fwd: true, MVFwd: mvF}
		bestSAD = sadF
		if picType == mpeg2.PictureB {
			mvB, sadB := pe.estB.search(x, y, [][2]int32{pe.lastMVB})
			if sadB < bestSAD {
				m = mpeg2.MotionInfo{Bwd: true, MVBwd: mvB}
				bestSAD = sadB
			}
			// Bidirectional candidate.
			if err := mpeg2.PredictMacroblock(pe.fwd, x, y, mvF, &pe.pY, &pe.pCb, &pe.pCr); err == nil {
				if err := mpeg2.PredictMacroblock(pe.bwd, x, y, mvB, &pe.qY, &pe.qCb, &pe.qCr); err == nil {
					mpeg2.AveragePrediction(&pe.pY, &pe.pCb, &pe.pCr, &pe.qY, &pe.qCb, &pe.qCr)
					if s := pe.sadAgainst(x, y, &pe.pY); s < bestSAD {
						m = mpeg2.MotionInfo{Fwd: true, Bwd: true, MVFwd: mvF, MVBwd: mvB}
						bestSAD = s
					}
				}
			}
		}
	}

	intra := picType == mpeg2.PictureI || bestSAD > act+act/4+256

	firstInSlice := col == 0
	lastInSlice := col == ctx.MBW-1

	if intra {
		mb := pe.buildIntra(addr, x, y, desiredQ, qs)
		if err := pe.reconstruct(mb, desiredQ); err != nil {
			return nil, false, err
		}
		e.stats.IntraMBs++
		pe.prevIntra = true
		pe.prevMotion = mpeg2.MotionInfo{}
		return mb, false, nil
	}

	// Build the prediction actually used.
	if err := pe.buildPrediction(x, y, m); err != nil {
		return nil, false, err
	}
	cbp := pe.quantResidual(x, y, qs)

	// Skip decision.
	if cbp == 0 && !firstInSlice && !lastInSlice {
		skippable := false
		if picType == mpeg2.PictureP {
			skippable = m.Fwd && !m.Bwd && m.MVFwd == [2]int32{}
		} else if picType == mpeg2.PictureB && !pe.prevIntra {
			skippable = m == pe.prevMotion
		}
		if skippable {
			if err := pe.rc.Skipped(pe.recon, pe.fwd, pe.bwd, col, row, pe.prevMotion); err != nil {
				return nil, false, err
			}
			// Mirror decoder-side predictor resets for P skips so the
			// encoder's view matches; SliceWriter applies them when the next
			// coded macroblock is written.
			if picType == mpeg2.PictureP {
				pe.lastMVF = [2]int32{}
			}
			return nil, true, nil
		}
	}

	mb := &mpeg2.MBCode{Addr: addr, QuantCode: desiredQ, CBP: cbp}
	if m.Fwd {
		mb.Flags |= mpeg2.MBMotionFwd
		mb.MVFwd = m.MVFwd
		pe.lastMVF = m.MVFwd
	}
	if m.Bwd {
		mb.Flags |= mpeg2.MBMotionBwd
		mb.MVBwd = m.MVBwd
		pe.lastMVB = m.MVBwd
	}
	if cbp != 0 {
		mb.Flags |= mpeg2.MBPattern
	}
	if picType == mpeg2.PictureP && m.MVFwd == [2]int32{} && m.Fwd && cbp != 0 {
		// "No MC, coded" saves the vector bits; the writer resets PMVs the
		// same way the decoder does.
		mb.Flags &^= mpeg2.MBMotionFwd
		pe.lastMVF = [2]int32{}
	}
	blocks := pe.blocks
	mb.Blocks = &blocks
	if err := pe.reconstruct(mb, desiredQ); err != nil {
		return nil, false, err
	}
	e.stats.InterMBs++
	pe.prevIntra = false
	pe.prevMotion = m
	return mb, false, nil
}

// sadAgainst computes luma SAD between the source macroblock and a 16×16
// prediction buffer.
func (pe *picEncoder) sadAgainst(x, y int, pred *[256]uint8) int32 {
	var sum int32
	for r := 0; r < 16; r++ {
		i := (y+r-pe.src.Y0)*pe.src.W + x
		c := pe.src.Y[i : i+16]
		p := pred[r*16 : r*16+16]
		for k := 0; k < 16; k++ {
			d := int32(c[k]) - int32(p[k])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// buildPrediction fills pe.pY/pCb/pCr with the prediction for mode m.
func (pe *picEncoder) buildPrediction(x, y int, m mpeg2.MotionInfo) error {
	switch {
	case m.Fwd && m.Bwd:
		if err := mpeg2.PredictMacroblock(pe.fwd, x, y, m.MVFwd, &pe.pY, &pe.pCb, &pe.pCr); err != nil {
			return err
		}
		if err := mpeg2.PredictMacroblock(pe.bwd, x, y, m.MVBwd, &pe.qY, &pe.qCb, &pe.qCr); err != nil {
			return err
		}
		mpeg2.AveragePrediction(&pe.pY, &pe.pCb, &pe.pCr, &pe.qY, &pe.qCb, &pe.qCr)
		return nil
	case m.Fwd:
		return mpeg2.PredictMacroblock(pe.fwd, x, y, m.MVFwd, &pe.pY, &pe.pCb, &pe.pCr)
	case m.Bwd:
		return mpeg2.PredictMacroblock(pe.bwd, x, y, m.MVBwd, &pe.pY, &pe.pCb, &pe.pCr)
	}
	return nil
}

// quantResidual computes residual blocks source-minus-prediction, transforms
// and quantises them into pe.blocks, returning the coded block pattern.
func (pe *picEncoder) quantResidual(x, y int, qs int32) int {
	cbp := 0
	for i := 0; i < 4; i++ {
		bx, by := x+(i&1)*8, y+(i>>1)*8
		blk := &pe.blocks[i]
		for r := 0; r < 8; r++ {
			si := (by+r-pe.src.Y0)*pe.src.W + bx
			pi := ((i>>1)*8+r)*16 + (i&1)*8
			for c := 0; c < 8; c++ {
				blk[r*8+c] = int32(pe.src.Y[si+c]) - int32(pe.pY[pi+c])
			}
		}
		fdct(blk)
		if quantNonIntra(blk, &pe.e.seq.NonIntraQ, qs) {
			cbp |= 1 << uint(5-i)
		}
	}
	cx, cy := x/2, y/2
	cw := pe.src.W / 2
	for i := 4; i < 6; i++ {
		srcPlane, predPlane := pe.src.Cb, &pe.pCb
		if i == 5 {
			srcPlane, predPlane = pe.src.Cr, &pe.pCr
		}
		blk := &pe.blocks[i]
		for r := 0; r < 8; r++ {
			si := (cy+r-pe.src.Y0/2)*cw + cx
			for c := 0; c < 8; c++ {
				blk[r*8+c] = int32(srcPlane[si+c]) - int32(predPlane[r*8+c])
			}
		}
		fdct(blk)
		if quantNonIntra(blk, &pe.e.seq.NonIntraQ, qs) {
			cbp |= 1 << uint(5-i)
		}
	}
	return cbp
}

// buildIntra transforms and quantises the source macroblock as intra.
func (pe *picEncoder) buildIntra(addr, x, y, desiredQ int, qs int32) *mpeg2.MBCode {
	for i := 0; i < 4; i++ {
		bx, by := x+(i&1)*8, y+(i>>1)*8
		blk := &pe.blocks[i]
		for r := 0; r < 8; r++ {
			si := (by+r-pe.src.Y0)*pe.src.W + bx
			for c := 0; c < 8; c++ {
				blk[r*8+c] = int32(pe.src.Y[si+c])
			}
		}
		fdct(blk)
		quantIntra(blk, &pe.e.seq.IntraQ, qs, pe.ph.DCShift())
	}
	cx, cy := x/2, y/2
	cw := pe.src.W / 2
	for i := 4; i < 6; i++ {
		plane := pe.src.Cb
		if i == 5 {
			plane = pe.src.Cr
		}
		blk := &pe.blocks[i]
		for r := 0; r < 8; r++ {
			si := (cy+r-pe.src.Y0/2)*cw + cx
			for c := 0; c < 8; c++ {
				blk[r*8+c] = int32(plane[si+c])
			}
		}
		fdct(blk)
		quantIntra(blk, &pe.e.seq.IntraQ, qs, pe.ph.DCShift())
	}
	blocks := pe.blocks
	return &mpeg2.MBCode{Addr: addr, Flags: mpeg2.MBIntra, QuantCode: desiredQ, CBP: 63, Blocks: &blocks}
}

// reconstruct runs the shared decoder reconstruction on the macroblock so
// encoder and decoder reference pictures match bit for bit.
func (pe *picEncoder) reconstruct(mb *mpeg2.MBCode, actualQ int) error {
	qs := mpeg2.QuantiserScale(actualQ, pe.ph.QScaleType)
	var blocks [6][64]int32
	for i := 0; i < 6; i++ {
		coded := mb.CBP&(1<<uint(5-i)) != 0
		if !coded {
			continue
		}
		blocks[i] = mb.Blocks[i]
		if mb.Flags&mpeg2.MBIntra != 0 {
			mpeg2.DequantIntra(&blocks[i], &pe.e.seq.IntraQ, qs, pe.ph.DCShift())
		} else {
			mpeg2.DequantNonIntra(&blocks[i], &pe.e.seq.NonIntraQ, qs)
		}
	}
	dm := &mpeg2.Macroblock{
		Addr:   mb.Addr,
		Flags:  mb.Flags,
		CBP:    mb.CBP,
		MVFwd:  mb.MVFwd,
		MVBwd:  mb.MVBwd,
		Blocks: &blocks,
	}
	// These blocks did not come from the VLD, so compute the AC occupancy
	// masks the fast-IDCT dispatch relies on by inspection.
	for i := 0; i < 6; i++ {
		if mb.CBP&(1<<uint(5-i)) != 0 {
			dm.ACMask[i] = mpeg2.ACMaskOf(&blocks[i])
		}
	}
	if pe.ph.PicType == mpeg2.PictureP && mb.Flags&mpeg2.MBIntra == 0 && mb.Flags&mpeg2.MBMotionFwd == 0 {
		// "No MC": reconstruct with a zero forward vector, as the decoder
		// does.
		dm.Flags |= mpeg2.MBMotionFwd
	}
	return pe.rc.Macroblock(pe.recon, pe.fwd, pe.bwd, dm, pe.ctx.MBW)
}
