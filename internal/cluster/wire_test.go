package cluster

import (
	"bytes"
	"errors"
	"testing"
)

func mustEncodeMsg(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := AppendMessageFrame(nil, m)
	if err != nil {
		t.Fatalf("AppendMessageFrame: %v", err)
	}
	return b
}

func TestWireMessageRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Kind: MsgPicture, From: 0, To: 1, Seq: 0, Tag: 2, Session: 1, Payload: []byte("picture bits")},
		{Kind: MsgAck, From: 3, To: 0, Seq: DrainAckSeq, Session: 7},
		{Kind: MsgSubPicture, From: 1, To: 5, Seq: -1, Tag: -3, Flags: FlagSessionFinal, XSeq: 1 << 40, Payload: make([]byte, 100000)},
		{Kind: MsgBlocks, From: 65535, To: 65535, Seq: 1<<31 - 1, Tag: -(1 << 31), Session: 0xffffffff},
	}
	for _, m := range msgs {
		b := mustEncodeMsg(t, m)
		fr, n, err := DecodeFrame(b)
		if err != nil || n != len(b) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		got := fr.Msg
		if got.Kind != m.Kind || got.From != m.From || got.To != m.To || got.Seq != m.Seq ||
			got.Tag != m.Tag || got.Session != m.Session || got.XSeq != m.XSeq || got.Flags != m.Flags {
			t.Fatalf("header mismatch: got %+v want %+v", got, m)
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("payload mismatch: %d vs %d bytes", len(got.Payload), len(m.Payload))
		}
	}
}

func TestWireMessageRangeChecks(t *testing.T) {
	bad := []*Message{
		{Kind: numKinds},
		{Kind: MsgAck, From: -1},
		{Kind: MsgAck, To: 1 << 16},
		{Kind: MsgAck, Session: -1},
	}
	for _, m := range bad {
		if _, err := AppendMessageFrame(nil, m); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("%+v: err %v, want ErrFrameCorrupt", m, err)
		}
	}
	big := &Message{Kind: MsgAck, Payload: make([]byte, MaxWirePayload+1)}
	if _, err := AppendMessageFrame(nil, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize payload: err %v, want ErrFrameTooLarge", err)
	}
}

func TestWireHandshakeRoundTrip(t *testing.T) {
	h := Hello{Version: WireVersion, Node: 3, NumNodes: 10, Grid: Grid{K: 2, M: 2, N: 2, Overlap: 32}}
	fr, n, err := DecodeFrame(AppendHelloFrame(nil, h))
	if err != nil || fr.Hello == nil {
		t.Fatalf("hello decode: %v", err)
	}
	if *fr.Hello != h || n != frameLenBytes+1+helloBodyBytes {
		t.Fatalf("hello round trip: %+v (n=%d)", fr.Hello, n)
	}
	a := Accept{Version: WireVersion, NumNodes: 10}
	fr, _, err = DecodeFrame(AppendAcceptFrame(nil, a))
	if err != nil || fr.Accept == nil || *fr.Accept != a {
		t.Fatalf("accept round trip: %+v, %v", fr, err)
	}
}

func TestWireAbortRoundTrip(t *testing.T) {
	for _, cause := range []error{ErrStalled, ErrLinkLost, ErrHandshake, errors.New("custom failure")} {
		fr, _, err := DecodeFrame(AppendAbortFrame(nil, cause))
		if err != nil || fr.Abort == nil {
			t.Fatalf("abort decode: %v", err)
		}
		if fr.Abort.Error() != cause.Error() {
			t.Fatalf("abort message %q, want %q", fr.Abort.Error(), cause.Error())
		}
		for _, sentinel := range []error{ErrStalled, ErrLinkLost, ErrHandshake} {
			if errors.Is(fr.Abort, sentinel) != errors.Is(cause, sentinel) {
				t.Fatalf("abort class of %v lost %v matching across the wire", cause, sentinel)
			}
		}
	}
}

func TestWireTruncation(t *testing.T) {
	full := mustEncodeMsg(t, &Message{Kind: MsgSubPicture, To: 1, Seq: 5, Payload: []byte("0123456789")})
	for cut := 0; cut < len(full); cut++ {
		_, _, err := DecodeFrame(full[:cut])
		if !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut at %d: err %v, want ErrFrameTruncated", cut, err)
		}
	}
	if fr, _, err := DecodeFrame(append(append([]byte{}, full...), 0xEE)); err != nil || fr.Msg == nil {
		t.Fatalf("trailing garbage must not affect a complete frame: %v", err)
	}
}

func TestWireHostileLengths(t *testing.T) {
	// A length prefix beyond the bound is rejected before allocation.
	if _, _, err := DecodeFrame([]byte{0xff, 0xff, 0xff, 0xff, frameMessage}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("huge length: %v, want ErrFrameTooLarge", err)
	}
	if _, _, err := DecodeFrame([]byte{0, 0, 0, 0}); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("zero length: %v, want ErrFrameCorrupt", err)
	}
	if _, _, err := DecodeFrame([]byte{0, 0, 0, 2, 0x7F, 0x00}); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("unknown type: %v, want ErrFrameCorrupt", err)
	}
}

// FuzzFrameDecode is fuzz target #10: the frame decoder over hostile input.
// Contract under fuzzing: never panic, never allocate beyond the input-
// bounded frame size, fail only with typed errors, and decode successfully
// only frames that re-encode to the same bytes (messages, hello, accept) or
// the same semantics (abort).
func FuzzFrameDecode(f *testing.F) {
	f.Add(mustEncodeFuzz(&Message{Kind: MsgPicture, To: 1, Seq: 3, Tag: 2, Session: 9, Payload: []byte("payload")}))
	f.Add(mustEncodeFuzz(&Message{Kind: MsgAck, To: 0, Seq: DrainAckSeq, Session: 4}))
	f.Add(AppendHelloFrame(nil, Hello{Version: WireVersion, Node: 3, NumNodes: 10, Grid: Grid{K: 2, M: 2, N: 2, Overlap: 32}}))
	f.Add(AppendHelloFrame(nil, Hello{Version: WireVersion + 1, Node: 0, NumNodes: 2}))
	f.Add(AppendAcceptFrame(nil, Accept{Version: WireVersion, NumNodes: 5}))
	f.Add(AppendAbortFrame(nil, ErrStalled))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, frameMessage})
	f.Add([]byte{0, 0, 0, 2, frameHello, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			if !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, ErrFrameTooLarge) &&
				!errors.Is(err, ErrFrameTruncated) && !errors.Is(err, ErrHandshake) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n < frameLenBytes+1 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		switch fr.Type {
		case frameMessage:
			re, err := AppendMessageFrame(nil, fr.Msg)
			if err != nil {
				t.Fatalf("decoded message does not re-encode: %v", err)
			}
			if !bytes.Equal(re, b[:n]) {
				t.Fatalf("message frame not canonical: %x vs %x", re, b[:n])
			}
			if fr.Msg.Payload != nil {
				PutSlab(fr.Msg.Payload)
			}
		case frameHello:
			if !bytes.Equal(AppendHelloFrame(nil, *fr.Hello), b[:n]) {
				t.Fatal("hello frame not canonical")
			}
		case frameAccept:
			if !bytes.Equal(AppendAcceptFrame(nil, *fr.Accept), b[:n]) {
				t.Fatal("accept frame not canonical")
			}
		case frameAbort:
			if fr.Abort == nil || len(fr.Abort.Error()) > maxAbortMessage {
				t.Fatalf("abort frame decoded to %v", fr.Abort)
			}
			// Round-trip semantics: class and message survive re-encoding.
			fr2, _, err := DecodeFrame(AppendAbortFrame(nil, fr.Abort))
			if err != nil || fr2.Abort.Error() != fr.Abort.Error() {
				t.Fatalf("abort re-encode: %v / %v", fr2, err)
			}
			for _, sentinel := range []error{ErrStalled, ErrLinkLost, ErrHandshake} {
				if errors.Is(fr2.Abort, sentinel) != errors.Is(fr.Abort, sentinel) {
					t.Fatalf("abort class changed across re-encode for %v", sentinel)
				}
			}
		default:
			t.Fatalf("decoder accepted unknown frame type %#x", fr.Type)
		}
	})
}

func mustEncodeFuzz(m *Message) []byte {
	b, err := AppendMessageFrame(nil, m)
	if err != nil {
		panic(err)
	}
	return b
}
