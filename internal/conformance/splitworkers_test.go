package conformance

import (
	"bytes"
	"fmt"
	"testing"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/splitter"
	"tiledwall/internal/wall"
)

// TestSplitWorkersSubPictures holds the slice-parallel splitter to the serial
// oracle at the wire level: for every seeded stream, geometry and worker
// count, each picture's marshaled sub-pictures — SPH bit-skip offsets,
// macroblock addresses, piece payloads, MEI SEND/RECV lists — must be
// byte-identical to a serial split. This is a stronger check than the pixel
// matrix (which would also pass if decoders happened to tolerate a protocol
// difference), and under -race it exercises the worker pool across the full
// conformance stream sweep.
func TestSplitWorkersSubPictures(t *testing.T) {
	// The unique tile geometries of DefaultMatrix.
	geometries := []struct{ m, n, ov int }{{1, 1, 0}, {2, 1, 0}, {2, 2, 0}, {3, 2, 0}, {2, 2, 16}}
	for _, seed := range []int64{1, 8, 17} {
		p := ParamsForSeed(seed)
		seed := seed
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			stream, err := p.Generate()
			if err != nil {
				t.Fatal(err)
			}
			s, err := mpeg2.ParseStream(stream)
			if err != nil {
				t.Fatal(err)
			}
			picW, picH := s.Seq.MBWidth()*16, s.Seq.MBHeight()*16
			for _, g := range geometries {
				geo, err := wall.NewGeometry(picW, picH, g.m, g.n, g.ov)
				if err != nil {
					t.Fatal(err)
				}
				serial := splitter.NewMBSplitter(s.Seq, geo)
				for _, workers := range []int{2, 4} {
					par := splitter.NewMBSplitterOpts(s.Seq, geo, splitter.SplitOptions{Workers: workers})
					for pi, unit := range s.Pictures {
						want, err := serial.Split(unit, pi)
						if err != nil {
							t.Fatal(err)
						}
						got, err := par.Split(unit, pi)
						if err != nil {
							t.Fatalf("seed %d (%d,%d)ov%d sw%d pic %d: %v", seed, g.m, g.n, g.ov, workers, pi, err)
						}
						for tile := range want {
							wb, gb := want[tile].Marshal(), got[tile].Marshal()
							if !bytes.Equal(wb, gb) {
								t.Fatalf("seed %d (%d,%d)ov%d sw%d pic %d tile %d: sub-picture bytes diverge (serial %dB, parallel %dB)",
									seed, g.m, g.n, g.ov, workers, pi, tile, len(wb), len(gb))
							}
						}
					}
					par.Close()
				}
			}
		})
	}
}

// TestMatrixNamesSplitWorkers pins the split-workers axis into the committed
// matrix and its reporting: at least two configurations with SplitWorkers >=
// 2 must be present and visible in the configuration names.
func TestMatrixNamesSplitWorkers(t *testing.T) {
	parallel := 0
	for _, cfg := range DefaultMatrix() {
		if cfg.SplitWorkers >= 2 {
			parallel++
			name := MatrixResult{Config: cfg}.Name()
			if want := fmt.Sprintf("+sw%d", cfg.SplitWorkers); !bytes.Contains([]byte(name), []byte(want)) {
				t.Errorf("matrix name %q does not carry the split-workers axis (%s)", name, want)
			}
		}
	}
	if parallel < 2 {
		t.Fatalf("conformance matrix has %d split-parallel configurations, want >= 2", parallel)
	}
}
