package mpeg2

import "fmt"

// CopyRect copies the luma rectangle (x, y, w, h) — and the corresponding
// chroma — from src into b, both addressed globally. All four values must be
// even. It is the primitive behind the display blit and frame assembly.
func (b *PixelBuf) CopyRect(src *PixelBuf, x, y, w, h int) {
	if x&1 != 0 || y&1 != 0 || w&1 != 0 || h&1 != 0 {
		panic(fmt.Sprintf("mpeg2: odd CopyRect %d,%d %dx%d", x, y, w, h))
	}
	if !src.Contains(x, y, w, h) || !b.Contains(x, y, w, h) {
		panic(fmt.Sprintf("mpeg2: CopyRect %d,%d %dx%d outside window", x, y, w, h))
	}
	for r := 0; r < h; r++ {
		si := src.lumaIndex(x, y+r)
		di := b.lumaIndex(x, y+r)
		copy(b.Y[di:di+w], src.Y[si:si+w])
	}
	cx, cy, cw := x/2, y/2, w/2
	for r := 0; r < h/2; r++ {
		si := src.chromaIndex(cx, cy+r)
		di := b.chromaIndex(cx, cy+r)
		copy(b.Cb[di:di+cw], src.Cb[si:si+cw])
		copy(b.Cr[di:di+cw], src.Cr[si:si+cw])
	}
}
