package service

import (
	"fmt"
	"time"

	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/pdec"
	"tiledwall/internal/splitter"
	"tiledwall/internal/wall"
)

// Session is one stream flowing through a resident wall. Feed and Close must
// be called from a single goroutine; distinct sessions are independent and
// may run concurrently.
type Session struct {
	w        *Wall
	id       int
	name     string
	openedAt time.Time

	scanner unitScanner
	cbTime  time.Duration // time inside scan callbacks, excluded from ScanTime

	// tokens is the in-flight bound: one taken per picture at Feed, returned
	// by the root when a splitter acks receipt (K>0) or the picture ships
	// (K=0).
	tokens chan struct{}
	// drained is closed by the root once every tile has sent its drain ack.
	drained chan struct{}

	opened bool
	closed bool
	failed error
	pics   int

	seq       *mpeg2.SequenceHeader
	geo       *wall.Geometry
	collector *collector

	rootRes   splitter.RootResult
	splitters []*splitter.SecondResult
	decoders  []*pdec.Result

	drainAcks int // root-goroutine only
}

// ID returns the session's wall-unique id (the wire session key).
func (s *Session) ID() int { return s.id }

// Name returns the label given to Open.
func (s *Session) Name() string { return s.name }

// SessionResult is what a closed session decoded and how fast.
type SessionResult struct {
	Name     string
	Pictures int
	// Throughput measures wall-clock Open→drain, so it includes any time the
	// feeder idled between chunks.
	Throughput metrics.Throughput
	Root       *splitter.RootResult // nil on one-level walls (K=0)
	Splitters  []*splitter.SecondResult
	Decoders   []*pdec.Result
	// Frames holds assembled wall frames in display order when the wall
	// collects frames.
	Frames []*mpeg2.PixelBuf
	// WireBytes is the fabric traffic attributed to this session.
	WireBytes int64
}

// Modeled returns the pipeline-limit throughput: pictures over the busiest
// node's busy time, the batch Result.Modeled for one session.
func (r *SessionResult) Modeled() metrics.Throughput {
	var busiest time.Duration
	if r.Root != nil {
		busiest = r.Root.ScanTime + r.Root.CopyTime + r.Root.SendTime
	}
	for _, sr := range r.Splitters {
		if sr != nil && sr.Breakdown.Busy() > busiest {
			busiest = sr.Breakdown.Busy()
		}
	}
	for _, dr := range r.Decoders {
		if dr != nil && dr.Breakdown.Busy() > busiest {
			busiest = dr.Breakdown.Busy()
		}
	}
	return metrics.Throughput{
		Pictures:         r.Pictures,
		Elapsed:          busiest,
		PixelsPerPicture: r.Throughput.PixelsPerPicture,
	}
}

// Feed hands the session the next chunk of the elementary stream. Chunks may
// split anywhere — picture units are reassembled internally. Blocks when the
// session's in-flight picture bound is reached (backpressure).
func (s *Session) Feed(chunk []byte) error {
	if s.closed {
		return ErrSessionClosed
	}
	if s.failed != nil {
		return s.failed
	}
	if err := s.w.tr.AbortCause(); err != nil {
		s.failed = err
		return err
	}
	scanStart := time.Now()
	s.cbTime = 0
	err := s.scanner.feed(chunk, s.onHeader, s.onUnit)
	s.rootRes.ScanTime += time.Since(scanStart) - s.cbTime
	if err != nil {
		s.failed = err
	}
	return err
}

// Close flushes the trailing picture, sends the session final through the
// pipeline, and blocks until every tile has drained the session.
func (s *Session) Close() (*SessionResult, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.closed = true
	if s.failed == nil {
		scanStart := time.Now()
		s.cbTime = 0
		err := s.scanner.flush(s.onUnit)
		s.rootRes.ScanTime += time.Since(scanStart) - s.cbTime
		if err != nil {
			s.failed = err
		}
	}
	if s.failed == nil && !s.opened {
		s.failed = fmt.Errorf("service: session %q: no sequence header in stream", s.name)
	}
	if s.failed != nil {
		s.w.sessionDone(s)
		return nil, s.failed
	}
	if err := s.submit(workItem{sess: s, kind: workFinal, index: s.pics}); err != nil {
		s.w.sessionDone(s)
		return nil, err
	}
	select {
	case <-s.drained:
	case <-s.w.tr.Done():
		s.w.sessionDone(s)
		return nil, s.w.tr.AbortCause()
	}
	s.rootRes.Pictures = s.pics
	res := &SessionResult{
		Name:     s.name,
		Pictures: s.pics,
		Throughput: metrics.Throughput{
			Pictures:         s.pics,
			Elapsed:          time.Since(s.openedAt),
			PixelsPerPicture: int64(s.geo.PicW) * int64(s.geo.PicH),
		},
		Splitters: s.splitters,
		Decoders:  s.decoders,
		WireBytes: s.w.tr.SessionBytes(s.id),
	}
	if s.w.cfg.K > 0 {
		res.Root = &s.rootRes
	}
	var err error
	if s.collector != nil {
		res.Frames, err = s.collector.assemble()
	}
	s.w.sessionDone(s)
	return res, err
}

// onHeader parses the stream prefix, derives this session's geometry, and
// announces the session to the pipeline.
func (s *Session) onHeader(prefix []byte) error {
	t0 := time.Now()
	defer func() { s.cbTime += time.Since(t0) }()
	seq, err := mpeg2.ParseSequenceHeaderBytes(prefix)
	if err != nil {
		return fmt.Errorf("service: session %q: %w", s.name, err)
	}
	geo, err := wall.NewGeometry(seq.MBWidth()*16, seq.MBHeight()*16, s.w.cfg.M, s.w.cfg.N, s.w.cfg.Overlap)
	if err != nil {
		return fmt.Errorf("service: session %q: %w", s.name, err)
	}
	s.seq, s.geo = seq, geo
	if s.w.cfg.CollectFrames {
		s.collector = newCollector(geo)
	}
	s.opened = true
	hdr := make([]byte, len(prefix))
	copy(hdr, prefix)
	return s.submit(workItem{sess: s, kind: workOpen, payload: hdr})
}

// onUnit copies one complete picture unit out of the scanner, takes an
// in-flight token (backpressure), and queues the picture for the root.
func (s *Session) onUnit(u []byte) error {
	t0 := time.Now()
	defer func() { s.cbTime += time.Since(t0) }()
	buf := make([]byte, len(u))
	copy(buf, u)
	s.rootRes.CopyTime += time.Since(t0)
	select {
	case <-s.tokens:
	case <-s.w.tr.Done():
		return s.w.tr.AbortCause()
	}
	idx := s.pics
	s.pics++
	return s.submit(workItem{sess: s, kind: workPicture, payload: buf, index: idx})
}

func (s *Session) submit(it workItem) error {
	select {
	case s.w.work <- it:
		return nil
	case <-s.w.tr.Done():
		return s.w.tr.AbortCause()
	}
}

// releaseToken is called by the root goroutine when a picture's feed slot is
// free again.
func (s *Session) releaseToken() {
	select {
	case s.tokens <- struct{}{}:
	default:
	}
}
