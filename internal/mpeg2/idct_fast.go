package mpeg2

// Fast inverse-DCT paths selected by the nonzero-coefficient row mask the
// VLD accumulates while parsing a block (Macroblock.ACMask). After coarse
// quantisation most blocks are far from dense: DC-only blocks dominate flat
// regions and low-frequency blocks (all energy in the top rows) dominate
// everything else, so the generic two-pass butterfly wastes most of its
// multiplies on provably-zero terms.
//
// Every path here is BIT-EXACT with the generic IDCT: the specialised
// butterflies are the generic ones with multiplications by structurally-zero
// inputs folded away, never a re-derivation with different rounding. The
// golden-kernel suite (golden_idct_test.go) enforces equality — not
// closeness — over exhaustive coefficient classes, and the conformance
// oracle enforces it end to end against the serial reference decode.

// ACMask semantics: bit r (0..7) is set when any coefficient at raster
// positions 8r..8r+7, excluding position 0 (the DC term), may be nonzero.
// The mask is conservative — bits may be overset (claiming a zero row is
// occupied costs only speed), but a bit must never be clear while its row
// holds a nonzero AC coefficient.

// IDCTFast computes the 8x8 inverse DCT of block in place (raster order),
// dispatching on the AC occupancy mask. acMask == 0 means positions 1..63
// are all zero; acMask with only low nibble bits means rows 4..7 are zero.
func IDCTFast(block *[64]int32, acMask uint8) {
	switch {
	case acMask == 0:
		idctDCOnly(block)
	case acMask&0xF0 == 0:
		idctTopRows(block)
	default:
		IDCT(block)
	}
}

// idctDCOnly handles blocks whose only (possibly) nonzero coefficient is the
// DC term. The generic path's row shortcut turns row 0 into the constant
// dc<<3 and rows 1..7 into zeros; every column then trips the column DC
// shortcut, producing ((dc<<3)+32)>>6 at all 64 positions. Computing that
// constant directly is bit-exact by construction.
func idctDCOnly(b *[64]int32) {
	dc := b[0]
	if dc == 0 {
		// Positions 1..63 are zero by the ACMask contract and b[0] is zero:
		// the block already holds its transform.
		return
	}
	v := (dc<<3 + 32) >> 6
	for i := range b {
		b[i] = v
	}
}

// idctTopRows handles blocks whose nonzero coefficients all lie in rows
// 0..3 (raster positions 0..31). The row pass only needs the top four rows —
// the bottom four are zero and transform to zero — and the column pass runs
// a reduced butterfly with the four bottom-row taps folded out.
func idctTopRows(b *[64]int32) {
	for i := 0; i < 4; i++ {
		idctRow(b[8*i : 8*i+8])
	}
	for i := 0; i < 8; i++ {
		idctColTop(b[i:])
	}
}

// idctColTop is idctCol specialised for columns whose rows 4..7 are zero:
// the generic taps x1 (row 4), x2 (row 6), x5 (row 7) and x6 (row 5) are
// structurally zero, so every multiplication involving them is folded away.
// The surviving operations are identical to the generic column butterfly,
// keeping the output bit-exact.
func idctColTop(b []int32) {
	x3 := b[8*2]
	x4 := b[8*1]
	x7 := b[8*3]
	if x3|x4|x7 == 0 {
		v := (b[0] + 32) >> 6
		for i := 0; i < 8; i++ {
			b[8*i] = v
		}
		return
	}
	x0 := (b[0] << 8) + 8192

	x8 := idctW7*x4 + 4
	x4 = (x8 + (idctW1-idctW7)*x4) >> 3
	x5 := x8 >> 3
	x8 = idctW3*x7 + 4
	x6 := x8 >> 3
	x7 = (x8 - (idctW3+idctW5)*x7) >> 3

	x8 = x0
	x1 := idctW6*x3 + 4
	x2 := x1 >> 3
	x3 = (x1 + (idctW2-idctW6)*x3) >> 3
	x1 = x4 + x6
	x4 -= x6
	x6 = x5 + x7
	x5 -= x7

	x7 = x8 + x3
	x8 -= x3
	x3 = x0 + x2
	x0 -= x2
	x2 = (181*(x4+x5) + 128) >> 8
	x4 = (181*(x4-x5) + 128) >> 8

	b[8*0] = (x7 + x1) >> 14
	b[8*1] = (x3 + x2) >> 14
	b[8*2] = (x0 + x4) >> 14
	b[8*3] = (x8 + x6) >> 14
	b[8*4] = (x8 - x6) >> 14
	b[8*5] = (x0 - x4) >> 14
	b[8*6] = (x3 - x2) >> 14
	b[8*7] = (x7 - x1) >> 14
}

// ACMaskOf computes the exact AC occupancy mask of a block by inspection:
// bit r set iff some coefficient at raster positions 8r..8r+7 (excluding
// position 0) is nonzero. The VLD tracks masks incrementally while parsing;
// this is the reference for tests and for callers holding blocks of unknown
// provenance (concealment, band decoding).
func ACMaskOf(b *[64]int32) uint8 {
	var m uint8
	if b[1]|b[2]|b[3]|b[4]|b[5]|b[6]|b[7] != 0 {
		m |= 1
	}
	for r := 1; r < 8; r++ {
		p := b[8*r : 8*r+8]
		if p[0]|p[1]|p[2]|p[3]|p[4]|p[5]|p[6]|p[7] != 0 {
			m |= 1 << uint(r)
		}
	}
	return m
}
