// Package metrics instruments the pipeline nodes: the per-decoder runtime
// breakdown of Figure 7 (Work / Serve / Receive / Wait / Ack) and derived
// throughput figures.
package metrics

import (
	"fmt"
	"time"
)

// Phase identifies one component of a decoder's runtime (paper §5.4).
type Phase int

const (
	// PhaseWork is time decoding and displaying pictures.
	PhaseWork Phase = iota
	// PhaseServe is time preparing and sending reference macroblocks for
	// remote decoders (MEI SEND execution).
	PhaseServe
	// PhaseReceive is time waiting for sub-pictures from splitters.
	PhaseReceive
	// PhaseWaitMB is time waiting for remote reference macroblocks.
	PhaseWaitMB
	// PhaseAck is time spent sending ack/go-ahead messages.
	PhaseAck
	numPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseWork:
		return "Work"
	case PhaseServe:
		return "Serve"
	case PhaseReceive:
		return "Receive"
	case PhaseWaitMB:
		return "WaitMB"
	case PhaseAck:
		return "Ack"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Phases lists all phases in display order.
func Phases() []Phase {
	return []Phase{PhaseWork, PhaseServe, PhaseReceive, PhaseWaitMB, PhaseAck}
}

// Breakdown accumulates time per phase for one node. It is written by the
// node's own goroutine and read after the pipeline finishes; no locking.
type Breakdown struct {
	Durations [numPhases]time.Duration
	Pictures  int
}

// Add accrues d into phase p.
func (b *Breakdown) Add(p Phase, d time.Duration) { b.Durations[p] += d }

// Timed runs fn and accrues its duration into phase p.
func (b *Breakdown) Timed(p Phase, fn func()) {
	start := time.Now()
	fn()
	b.Durations[p] += time.Since(start)
}

// Total returns the sum over phases.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.Durations {
		t += d
	}
	return t
}

// Busy returns the node's CPU time: Work + Serve + Ack. Receive and WaitMB
// are idle waits on other nodes and do not consume the node's processor.
// On a single-core host the simulation's goroutines timeshare, so pipeline
// throughput is modelled from per-node busy times rather than wall clock
// (see Throughput and EXPERIMENTS.md).
func (b *Breakdown) Busy() time.Duration {
	return b.Durations[PhaseWork] + b.Durations[PhaseServe] + b.Durations[PhaseAck]
}

// Fraction returns phase p's share of the total (0 when idle).
func (b *Breakdown) Fraction(p Phase) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Durations[p]) / float64(t)
}

// PerPicture returns the mean time per picture in phase p, in milliseconds.
func (b *Breakdown) PerPicture(p Phase) float64 {
	if b.Pictures == 0 {
		return 0
	}
	return b.Durations[p].Seconds() * 1000 / float64(b.Pictures)
}

func (b *Breakdown) String() string {
	s := ""
	for _, p := range Phases() {
		s += fmt.Sprintf("%s=%.1fms ", p, b.PerPicture(p))
	}
	return s
}

// Throughput summarises a pipeline run.
type Throughput struct {
	Pictures         int
	Elapsed          time.Duration
	PixelsPerPicture int64
}

// FPS returns decoded pictures per second.
func (t Throughput) FPS() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Pictures) / t.Elapsed.Seconds()
}

// PixelRate returns decoded pixels per second (Mpixel/s), the resolution-
// scalability metric of Figure 8.
func (t Throughput) PixelRate() float64 {
	return t.FPS() * float64(t.PixelsPerPicture) / 1e6
}

// EquivalentBitRate returns the consumed stream bit rate in Mbit/s given the
// stream size, the figure the paper quotes alongside fps (§1: 130 Mbps).
func (t Throughput) EquivalentBitRate(streamBytes int64) float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(streamBytes) * 8 / t.Elapsed.Seconds() / 1e6
}
