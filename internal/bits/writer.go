package bits

import "fmt"

// Writer accumulates bits MSB first into a growing byte buffer.
//
// The zero value is ready to use. Writer is not safe for concurrent use.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, left-justified at bit 63
	nacc uint   // number of valid pending bits (0..7 after flushAcc)
}

// NewWriter returns a Writer with capacity pre-allocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Reset discards all written bits, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nacc = 0
}

// WriteBits appends the low n bits of v (0 <= n <= 32), MSB first.
func (w *Writer) WriteBits(v uint32, n int) {
	if n == 0 {
		return
	}
	if n < 32 {
		v &= 1<<uint(n) - 1
	}
	w.acc |= uint64(v) << (64 - w.nacc - uint(n))
	w.nacc += uint(n)
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc>>56))
		w.acc <<= 8
		w.nacc -= 8
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(v uint32) { w.WriteBits(v, 1) }

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nacc) }

// ByteAligned reports whether the write position is on a byte boundary.
func (w *Writer) ByteAligned() bool { return w.nacc == 0 }

// AlignZero pads with zero bits to the next byte boundary.
func (w *Writer) AlignZero() {
	if w.nacc != 0 {
		w.WriteBits(0, int(8-w.nacc))
	}
}

// AlignOne pads with one bits to the next byte boundary (MPEG-2 slice
// stuffing uses zero padding; AlignOne exists for container formats).
func (w *Writer) AlignOne() {
	for w.nacc != 0 {
		w.WriteBit(1)
	}
}

// WriteBytes appends whole bytes. The writer must be byte-aligned.
func (w *Writer) WriteBytes(p []byte) {
	if w.nacc != 0 {
		panic("bits: WriteBytes on unaligned writer")
	}
	w.buf = append(w.buf, p...)
}

// Bytes returns the written bytes. Any trailing partial byte is padded with
// zero bits. The returned slice aliases the writer's buffer; it is valid
// until the next Write or Reset.
func (w *Writer) Bytes() []byte {
	if w.nacc == 0 {
		return w.buf
	}
	return append(w.buf[:len(w.buf):len(w.buf)], byte(w.acc>>56))
}

// String describes the writer state for debugging.
func (w *Writer) String() string {
	return fmt.Sprintf("bits.Writer{bits=%d}", w.BitLen())
}
