// Ultra-high-resolution playback on the full hierarchy: the paper's
// headline 1-4-(4,4) system (21 PCs) playing an Orion-flyby-class stream
// with spatially localised detail, reporting frame rate, the per-decoder
// runtime breakdown (Fig. 7) and per-node bandwidth (Fig. 9).
//
//	go run ./examples/ultrahd [-frames 24] [-scale 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"tiledwall/internal/catalog"
	"tiledwall/internal/metrics"
	"tiledwall/internal/system"
)

func main() {
	frames := flag.Int("frames", 24, "frames to encode")
	scale := flag.Int("scale", 4, "resolution divisor (1 = the paper's 3840x2800)")
	overlap := flag.Int("overlap", 16, "projector overlap in pixels")
	flag.Parse()

	spec, err := catalog.ByID(16) // orion4
	if err != nil {
		log.Fatal(err)
	}
	w, h := spec.Dimensions(catalog.GenOptions{Frames: *frames, Scale: *scale})
	fmt.Printf("generating %s at %dx%d (%d frames)...\n", spec.Name, w, h, *frames)
	stream, err := spec.Generate(catalog.GenOptions{Frames: *frames, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}

	cfg := system.Config{K: 4, M: 4, N: 4, Overlap: *overlap}
	res, err := system.Run(stream, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tp := res.Throughput
	fmt.Printf("\n1-4-(4,4) on %d PCs: %.1f fps, %.1f Mpixel/s, %.1f Mbit/s equivalent\n",
		cfg.NumNodes(), tp.FPS(), tp.PixelRate(), tp.EquivalentBitRate(res.StreamBytes))

	fmt.Printf("\ndecoder runtime breakdown, ms/picture (Fig. 7):\n%-8s", "decoder")
	for _, p := range metrics.Phases() {
		fmt.Printf("%9s", p)
	}
	fmt.Println()
	for i, d := range res.Decoders {
		fmt.Printf("%-8d", i)
		for _, p := range metrics.Phases() {
			fmt.Printf("%9.2f", d.Breakdown.PerPicture(p))
		}
		fmt.Println()
	}

	// The flyby content concentrates detail in one corner; decoders for
	// those tiles work hardest and, being synchronised, set the pace (§5.5).
	var minW, maxW float64
	for i, d := range res.Decoders {
		w := d.Breakdown.PerPicture(metrics.PhaseWork)
		if i == 0 || w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	fmt.Printf("\nload imbalance from localised detail: busiest tile %.2f ms vs lightest %.2f ms (x%.1f)\n",
		maxW, minW, maxW/minW)

	secs := tp.Elapsed.Seconds()
	fmt.Printf("\nper-node bandwidth, MB/s (Fig. 9):\n")
	for i, id := range res.DecoderNodeIDs {
		st := res.NodeStats[id]
		fmt.Printf("  D%-3d recv %7.2f  send %7.2f\n", i, float64(st.BytesRecv)/secs/1e6, float64(st.BytesSent)/secs/1e6)
	}
	for i, id := range res.SplitterNodeIDs {
		st := res.NodeStats[id]
		fmt.Printf("  S%-3d recv %7.2f  send %7.2f\n", i, float64(st.BytesRecv)/secs/1e6, float64(st.BytesSent)/secs/1e6)
	}
}
