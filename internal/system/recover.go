package system

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/pdec"
	"tiledwall/internal/recovery"
	"tiledwall/internal/splitter"
	"tiledwall/internal/subpic"
	"tiledwall/internal/wall"
)

// This file wires the supervised pipeline (DESIGN.md §6). Layout is the
// strict pipeline's — root, k splitters, m*n decoders — plus one extra
// fabric node for the supervisor, which replays retained pictures to
// respawned workers. Every node is wrapped in a reliable endpoint; the
// second-level splitters and the tile decoders are supervised (the root is
// the console PC — a single point the paper's architecture accepts).

// emissionLog records each tile's emitted decode-order indices, the evidence
// for the exactly-once guarantee chaos tests assert.
type emissionLog struct {
	mu     sync.Mutex
	byTile [][]int
}

func newEmissionLog(tiles int) *emissionLog {
	return &emissionLog{byTile: make([][]int, tiles)}
}

func (l *emissionLog) record(idx, tile int) {
	l.mu.Lock()
	l.byTile[tile] = append(l.byTile[tile], idx)
	l.mu.Unlock()
}

func runRecovery(stream []byte, s *mpeg2.Stream, geo *wall.Geometry, cfg Config) (*Result, error) {
	nTiles := geo.NumTiles()
	supID := 1 + cfg.K + nTiles
	fab := cluster.New(supID+1, cfg.Fabric)
	defer fab.Shutdown()

	rcfg := cfg.Recovery.WithDefaults()
	rec := &metrics.Recovery{}

	res := &Result{Config: cfg, StreamBytes: int64(len(stream)), RootNodeID: 0, transport: fab}
	for i := 0; i < cfg.K; i++ {
		res.SplitterNodeIDs = append(res.SplitterNodeIDs, 1+i)
	}
	for t := 0; t < nTiles; t++ {
		res.DecoderNodeIDs = append(res.DecoderNodeIDs, 1+cfg.K+t)
	}
	tileNode := func(t int) int { return res.DecoderNodeIDs[t] }

	eps := make([]*recovery.Endpoint, supID+1)
	for i := range eps {
		eps[i] = recovery.NewEndpoint(fab.Node(i), rcfg, rec)
	}
	sup := recovery.NewSupervisor(rcfg, rec)
	picRet := recovery.NewPictureRetainer()
	subRet := recovery.NewSubPicRetainer(rcfg.RetainWindow)

	var collector *frameCollector
	if cfg.CollectFrames {
		collector = newFrameCollector(geo)
	}
	emlog := newEmissionLog(nTiles)
	onFrame := func(idx, tile int, buf *mpeg2.PixelBuf) {
		emlog.record(idx, tile)
		if collector != nil {
			collector.onFrame(idx, tile, buf)
		}
	}

	nSplit := cfg.K
	if nSplit == 0 {
		nSplit = 1 // combined splitter's result slot
	}
	res.Splitters = make([]*splitter.SecondResult, nSplit)
	res.Decoders = make([]*pdec.Result, nTiles)
	errs := make([]error, 1+cfg.K+nTiles)

	start := time.Now()
	var wg sync.WaitGroup

	// Console node: root splitter (two-level) or combined splitter
	// (one-level), fault-tolerant but unsupervised.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		if cfg.K > 0 {
			res.Root, err = splitter.RunRoot(eps[0], splitter.RootConfig{
				Stream:        stream,
				SplitterNodes: res.SplitterNodeIDs,
				Dynamic:       cfg.DynamicBalance,
				Recovery:      &recovery.RootHooks{Cfg: rcfg, Rec: rec, Retainer: picRet},
			})
		} else {
			res.Splitters[0], err = runCombinedRecovery(eps[0], s, geo, res.DecoderNodeIDs, cfg, rcfg, rec, subRet)
		}
		if err != nil {
			errs[0] = err
			fab.Abort(err)
		}
	}()

	// Second-level splitter slots: each goroutine owns one fabric node and
	// runs incarnations of its splitter until the stream ends, a fatal error
	// aborts the run, or the restart budget is exhausted.
	for i := 0; i < cfg.K; i++ {
		i := i
		id := res.SplitterNodeIDs[i]
		lease := recovery.NewLease()
		sup.Watch(id, lease)
		wg.Add(1)
		go func() {
			defer wg.Done()
			chaos := cfg.Chaos
			resume := false
			for {
				r, err := splitter.RunSecond(eps[id], splitter.SecondConfig{
					Seq:          s.Seq,
					Geo:          geo,
					Index:        i,
					DecoderNodes: res.DecoderNodeIDs,
					RootNode:     0,
					SplitWorkers: cfg.SplitWorkers,
					Recovery: &recovery.SplitterHooks{
						Hooks:    recovery.Hooks{Cfg: rcfg, Lease: lease, Rec: rec, Chaos: chaos},
						Retainer: subRet,
						Resume:   resume,
					},
				})
				if err == nil {
					res.Splitters[i] = r
					return
				}
				if !errors.Is(err, recovery.ErrKilled) {
					errs[1+i] = err
					fab.Abort(err)
					return
				}
				if _, ok := sup.AwaitRespawn(id, eps[id].Done()); !ok {
					return // budget exhausted or run unwinding
				}
				// Replay the root's unacked pictures (original NSID tags) so
				// the new incarnation sees everything its predecessor
				// consumed without finishing.
				for _, p := range picRet.Pending(0, i) {
					rec.AddReplayed(1)
					eps[supID].Send(id, &cluster.Message{
						Kind:    cluster.MsgPicture,
						Seq:     p.Seq,
						Tag:     p.Tag,
						Flags:   cluster.FlagReplay,
						Payload: p.Payload,
					})
				}
				chaos = recovery.ChaosPlan{} // each kill fires once
				resume = true
			}
		}()
	}

	// Decoder slots, same incarnation loop. The checkpoint carries the
	// emission frontier across incarnations.
	for t := 0; t < nTiles; t++ {
		t := t
		id := res.DecoderNodeIDs[t]
		lease := recovery.NewLease()
		checkpoint := recovery.NewCheckpoint()
		sup.Watch(id, lease)
		wg.Add(1)
		go func() {
			defer wg.Done()
			chaos := cfg.Chaos
			resume := false
			for {
				d := pdec.NewDecoder(eps[id], pdec.Config{
					Seq:            s.Seq,
					Geo:            geo,
					Tile:           t,
					HaloPx:         pdec.HaloForFCode(cfg.MaxFCode),
					TileNode:       tileNode,
					OnFrame:        onFrame,
					UnbatchedSends: cfg.UnbatchedExchange,
					Recovery: &recovery.DecoderHooks{
						Hooks:      recovery.Hooks{Cfg: rcfg, Lease: lease, Rec: rec, Chaos: chaos},
						Checkpoint: checkpoint,
						Resume:     resume,
					},
				})
				r, err := d.Run()
				if err == nil {
					res.Decoders[t] = r
					return
				}
				if !errors.Is(err, recovery.ErrKilled) {
					errs[1+cfg.K+t] = err
					fab.Abort(err)
					return
				}
				if _, ok := sup.AwaitRespawn(id, eps[id].Done()); !ok {
					return
				}
				// Replay every retained sub-picture the new incarnation still
				// owes, from the supervisor's node; the decoder's reorder
				// stash restores picture order. Replays are never acked.
				next, _, _, _ := checkpoint.State()
				rp := subRet.Since(0, t, next)
				rec.AddReplayed(len(rp))
				for _, sp := range rp {
					eps[supID].Send(id, &cluster.Message{
						Kind:    cluster.MsgSubPicture,
						Seq:     sp.Pic,
						Tag:     sp.Tag,
						Flags:   cluster.FlagReplay,
						Payload: sp.Payload,
					})
				}
				chaos = recovery.ChaosPlan{}
				resume = true
			}
		}()
	}

	wg.Wait()
	elapsed := time.Since(start)
	for _, e := range eps {
		e.Close()
	}
	sup.Close()
	res.Recovery = rec.Snapshot()
	res.TileEmissions = emlog.byTile

	if cause := fab.AbortCause(); cause != nil {
		return res, cause
	}
	for _, e := range errs {
		if e != nil {
			return res, e
		}
	}
	res.Throughput = metrics.Throughput{
		Pictures:         len(s.Pictures),
		Elapsed:          elapsed,
		PixelsPerPicture: int64(geo.PicW) * int64(geo.PicH),
	}
	res.NodeStats = fab.Stats()
	if collector != nil {
		frames, err := collector.assemble()
		if err != nil {
			return res, err
		}
		res.Frames = frames
	}
	return res, nil
}

// runCombinedRecovery is runCombinedSplitter with bounded credit waits and
// sub-picture retention, for the one-level system under recovery. The
// console is not supervised (its loss ends the show on a real wall too), but
// it must survive its decoders dying: a dead decoder's acks never come.
func runCombinedRecovery(node cluster.Net, s *mpeg2.Stream, geo *wall.Geometry, decoderNodes []int,
	cfg Config, rcfg recovery.Config, rec *metrics.Recovery, retainer *recovery.SubPicRetainer) (*splitter.SecondResult, error) {
	res := &splitter.SecondResult{}
	b := &res.Breakdown
	// Reuse stays off: Marshal copies below feed the retainer, but the
	// recovery path keeps the allocating splitter for simplicity.
	ms := splitter.NewMBSplitterOpts(s.Seq, geo, splitter.SplitOptions{Workers: cfg.SplitWorkers})
	defer ms.Close()
	defer func() { res.FoldSplit(ms) }()
	nd := len(decoderNodes)

	for seq, unit := range s.Pictures {
		res.InputBytes += int64(len(unit))
		var sps []*subpic.SubPicture
		var err error
		b.Timed(metrics.PhaseWork, func() { sps, err = ms.Split(unit, seq) })
		if err != nil {
			return res, err
		}
		if seq > 0 {
			aborted := false
			b.Timed(metrics.PhaseWaitMB, func() {
				for i := 0; i < nd; i++ {
					m, timedOut := node.RecvTimeout(cluster.MsgAck, rcfg.PictureDeadline)
					if timedOut {
						rec.AddAckTimeout()
						return
					}
					if m == nil {
						aborted = true
						return
					}
				}
			})
			if aborted {
				return res, fmt.Errorf("system: fabric aborted while waiting for decoder acks")
			}
		}
		b.Timed(metrics.PhaseServe, func() {
			for t := 0; t < nd; t++ {
				payload := sps[t].Marshal()
				res.SPBytes += int64(len(payload))
				retainer.Retain(0, t, seq, node.ID(), payload)
				node.Send(decoderNodes[t], &cluster.Message{
					Kind:    cluster.MsgSubPicture,
					Seq:     seq,
					Tag:     node.ID(),
					Payload: payload,
				})
			}
		})
		res.Pictures++
		b.Pictures++
	}
	for t := 0; t < nd; t++ {
		sp := &subpic.SubPicture{Final: true}
		sp.Pic.Index = int32(len(s.Pictures))
		node.Send(decoderNodes[t], &cluster.Message{Kind: cluster.MsgSubPicture, Seq: -1, Tag: node.ID(), Payload: sp.Marshal()})
	}
	return res, nil
}
