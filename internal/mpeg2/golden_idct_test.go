package mpeg2

import (
	"math/rand"
	"testing"
)

// The golden-kernel IDCT suite: IDCTFast must be bit-exact — not close —
// against the generic IDCT for every coefficient class it can be dispatched
// on, under both the exact mask (ACMaskOf) and conservatively overset masks.

func requireSameBlock(t *testing.T, name string, in *[64]int32, mask uint8) {
	t.Helper()
	ref := *in
	fast := *in
	IDCT(&ref)
	IDCTFast(&fast, mask)
	if fast != ref {
		for i := range ref {
			if ref[i] != fast[i] {
				t.Fatalf("%s (mask %08b): first divergence at position %d: ref %d fast %d\ninput %v",
					name, mask, i, ref[i], fast[i], *in)
			}
		}
	}
}

func TestGoldenIDCTAllZero(t *testing.T) {
	var blk [64]int32
	requireSameBlock(t, "all-zero", &blk, 0)
}

func TestGoldenIDCTDCOnlySweep(t *testing.T) {
	// Every representable DC value after dequantisation sign/saturation.
	for dc := int32(-2048); dc <= 2047; dc++ {
		var blk [64]int32
		blk[0] = dc
		requireSameBlock(t, "dc-only", &blk, 0)
	}
}

func TestGoldenIDCTSingleAC(t *testing.T) {
	levels := []int32{-2048, -256, -7, -1, 1, 3, 255, 2047}
	for pos := 1; pos < 64; pos++ {
		for _, lv := range levels {
			var blk [64]int32
			blk[pos] = lv
			requireSameBlock(t, "single-ac", &blk, ACMaskOf(&blk))
			// An overset mask must not change the result.
			requireSameBlock(t, "single-ac-overset", &blk, ACMaskOf(&blk)|0x0f)
			requireSameBlock(t, "single-ac-dense-mask", &blk, 0xff)
		}
	}
}

func TestGoldenIDCTSingleACWithDC(t *testing.T) {
	for pos := 1; pos < 64; pos++ {
		for _, dc := range []int32{-2048, -1, 1, 64, 2047} {
			var blk [64]int32
			blk[0] = dc
			blk[pos] = 17
			requireSameBlock(t, "dc+single-ac", &blk, ACMaskOf(&blk))
		}
	}
}

func TestGoldenIDCTTopRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4801))
	for trial := 0; trial < 5000; trial++ {
		var blk [64]int32
		// Random occupancy confined to rows 0..3.
		n := 1 + rng.Intn(32)
		for k := 0; k < n; k++ {
			blk[rng.Intn(32)] = int32(rng.Intn(4096) - 2048)
		}
		requireSameBlock(t, "top-rows", &blk, ACMaskOf(&blk))
		requireSameBlock(t, "top-rows-overset", &blk, 0x0f)
	}
}

func TestGoldenIDCTDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4802))
	for trial := 0; trial < 5000; trial++ {
		var blk [64]int32
		for i := range blk {
			blk[i] = int32(rng.Intn(4096) - 2048)
		}
		requireSameBlock(t, "dense", &blk, ACMaskOf(&blk))
	}
}

func TestGoldenIDCTSaturationExtremes(t *testing.T) {
	patterns := []int32{-2048, 2047}
	for _, a := range patterns {
		for _, b := range patterns {
			var blk [64]int32
			for i := range blk {
				if i%2 == 0 {
					blk[i] = a
				} else {
					blk[i] = b
				}
			}
			requireSameBlock(t, "saturation", &blk, ACMaskOf(&blk))

			var top [64]int32
			copy(top[:32], blk[:32])
			requireSameBlock(t, "saturation-top", &top, ACMaskOf(&top))
		}
	}
}

// TestGoldenIDCTMaskContract verifies the VLD-facing contract: for random
// sparse blocks, any mask that covers ACMaskOf (bitwise superset) yields the
// reference transform.
func TestGoldenIDCTMaskContract(t *testing.T) {
	rng := rand.New(rand.NewSource(4803))
	for trial := 0; trial < 2000; trial++ {
		var blk [64]int32
		n := rng.Intn(8)
		for k := 0; k < n; k++ {
			blk[rng.Intn(64)] = int32(rng.Intn(512) - 256)
		}
		exact := ACMaskOf(&blk)
		over := exact | uint8(rng.Intn(256))
		requireSameBlock(t, "mask-contract", &blk, over)
	}
}
