package mpeg2

import "fmt"

// PixelBuf is a rectangular window of a 4:2:0 picture addressed in global
// picture coordinates. The serial decoder uses one window covering the whole
// picture; a tile decoder uses a window covering its tile plus a halo margin
// that receives boundary macroblocks from peers.
//
// X0, Y0, W and H are luma quantities and must be even so that the chroma
// planes align; in practice they are multiples of 16.
type PixelBuf struct {
	X0, Y0 int // global coordinates of the top-left luma sample
	W, H   int // window size in luma samples

	Y      []uint8 // stride W
	Cb, Cr []uint8 // stride W/2
}

// NewPixelBuf allocates a window at (x0, y0) of size w×h.
func NewPixelBuf(x0, y0, w, h int) *PixelBuf {
	if x0&1 != 0 || y0&1 != 0 || w&1 != 0 || h&1 != 0 {
		panic(fmt.Sprintf("mpeg2: odd PixelBuf geometry %d,%d %dx%d", x0, y0, w, h))
	}
	return &PixelBuf{
		X0: x0, Y0: y0, W: w, H: h,
		Y:  make([]uint8, w*h),
		Cb: make([]uint8, w*h/4),
		Cr: make([]uint8, w*h/4),
	}
}

// Fill sets every sample to the given YCbCr value. Concealment uses it to
// seed untrusted windows (mid-grey 128,128,128 matches the serial resilient
// decoder's conceal pattern).
func (b *PixelBuf) Fill(y, cb, cr uint8) {
	for i := range b.Y {
		b.Y[i] = y
	}
	for i := range b.Cb {
		b.Cb[i] = cb
		b.Cr[i] = cr
	}
}

// Contains reports whether the luma rectangle (x, y, w, h) in global
// coordinates lies fully inside the window.
func (b *PixelBuf) Contains(x, y, w, h int) bool {
	return x >= b.X0 && y >= b.Y0 && x+w <= b.X0+b.W && y+h <= b.Y0+b.H
}

// lumaIndex returns the index of global luma sample (gx, gy).
func (b *PixelBuf) lumaIndex(gx, gy int) int {
	return (gy-b.Y0)*b.W + (gx - b.X0)
}

// chromaIndex returns the index of global chroma sample (cx, cy), where
// chroma coordinates are luma coordinates divided by two.
func (b *PixelBuf) chromaIndex(cx, cy int) int {
	return (cy-b.Y0/2)*(b.W/2) + (cx - b.X0/2)
}

// CopyMacroblock copies the 16×16 luma and 8×8 chroma samples of the
// macroblock at (mbx, mby) from src (global addressing on both sides). It is
// the primitive behind MEI SEND execution and wall assembly.
func (b *PixelBuf) CopyMacroblock(src *PixelBuf, mbx, mby int) {
	x, y := mbx*16, mby*16
	if !src.Contains(x, y, 16, 16) || !b.Contains(x, y, 16, 16) {
		panic(fmt.Sprintf("mpeg2: CopyMacroblock (%d,%d) outside window", mbx, mby))
	}
	src.checkBacking("CopyMacroblock src")
	b.checkBacking("CopyMacroblock dst")
	for r := 0; r < 16; r++ {
		si := src.lumaIndex(x, y+r)
		di := b.lumaIndex(x, y+r)
		copy(b.Y[di:di+16], src.Y[si:si+16])
	}
	cx, cy := x/2, y/2
	for r := 0; r < 8; r++ {
		si := src.chromaIndex(cx, cy+r)
		di := b.chromaIndex(cx, cy+r)
		copy(b.Cb[di:di+8], src.Cb[si:si+8])
		copy(b.Cr[di:di+8], src.Cr[si:si+8])
	}
}

// ExtractMacroblock serialises the macroblock at (mbx, mby) into dst, which
// must hold MacroblockBytes bytes: 256 luma + 64 Cb + 64 Cr.
func (b *PixelBuf) ExtractMacroblock(mbx, mby int, dst []byte) {
	x, y := mbx*16, mby*16
	if !b.Contains(x, y, 16, 16) {
		panic(fmt.Sprintf("mpeg2: ExtractMacroblock (%d,%d) outside window", mbx, mby))
	}
	o := 0
	for r := 0; r < 16; r++ {
		i := b.lumaIndex(x, y+r)
		copy(dst[o:o+16], b.Y[i:i+16])
		o += 16
	}
	cx, cy := x/2, y/2
	for r := 0; r < 8; r++ {
		i := b.chromaIndex(cx, cy+r)
		copy(dst[o:o+8], b.Cb[i:i+8])
		o += 8
	}
	for r := 0; r < 8; r++ {
		i := b.chromaIndex(cx, cy+r)
		copy(dst[o:o+8], b.Cr[i:i+8])
		o += 8
	}
}

// InjectMacroblock writes a serialised macroblock (from ExtractMacroblock)
// at (mbx, mby).
func (b *PixelBuf) InjectMacroblock(mbx, mby int, src []byte) {
	x, y := mbx*16, mby*16
	if !b.Contains(x, y, 16, 16) {
		panic(fmt.Sprintf("mpeg2: InjectMacroblock (%d,%d) outside window", mbx, mby))
	}
	o := 0
	for r := 0; r < 16; r++ {
		i := b.lumaIndex(x, y+r)
		copy(b.Y[i:i+16], src[o:o+16])
		o += 16
	}
	cx, cy := x/2, y/2
	for r := 0; r < 8; r++ {
		i := b.chromaIndex(cx, cy+r)
		copy(b.Cb[i:i+8], src[o:o+8])
		o += 8
	}
	for r := 0; r < 8; r++ {
		i := b.chromaIndex(cx, cy+r)
		copy(b.Cr[i:i+8], src[o:o+8])
		o += 8
	}
}

// MacroblockBytes is the serialised size of one macroblock's pixels.
const MacroblockBytes = 256 + 64 + 64
