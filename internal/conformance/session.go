package conformance

import (
	"fmt"
	"sync"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/service"
	"tiledwall/internal/system"
	"tiledwall/internal/wall"
)

// RunSessionMatrix is the resident-service conformance axis: for every
// configuration it builds ONE wall and plays `sessions` concurrent copies of
// the stream through it as separate sessions, each fed incrementally in
// ragged chunks (exercising picture reassembly across arbitrary split
// points). Every session's output must be byte-identical to the serial
// reference — the same oracle RunMatrix holds the one-shot path to.
func RunSessionMatrix(stream []byte, configs []system.Config, sessions int) ([]MatrixResult, error) {
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		return nil, fmt.Errorf("conformance: serial parse: %w", err)
	}
	ref, err := dec.DecodeAll()
	if err != nil {
		return nil, fmt.Errorf("conformance: serial decode: %w", err)
	}
	picW, picH := dec.Seq().MBWidth()*16, dec.Seq().MBHeight()*16

	out := make([]MatrixResult, 0, len(configs))
	for _, cfg := range configs {
		cfg.CollectFrames = true
		if cfg.MaxSessions < sessions {
			cfg.MaxSessions = sessions
		}
		mr := MatrixResult{Config: cfg}
		frames, err := playSessions(stream, cfg, sessions)
		if err != nil {
			mr.Err = err
			out = append(out, mr)
			continue
		}
		geo, gerr := wall.NewGeometry(picW, picH, cfg.M, cfg.N, cfg.Overlap)
		if gerr != nil {
			geo = nil
		}
		for _, got := range frames {
			if d := Diff(ref, got, geo); d != nil {
				mr.Divergence = d
				break
			}
		}
		out = append(out, mr)
	}
	return out, nil
}

// playSessions opens one resident wall and feeds `sessions` concurrent
// copies of the stream, each in a different chunking pattern.
func playSessions(stream []byte, cfg system.Config, sessions int) ([][]*mpeg2.PixelBuf, error) {
	w, err := system.NewResidentWall(cfg)
	if err != nil {
		return nil, err
	}
	frames := make([][]*mpeg2.PixelBuf, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			frames[i], errs[i] = playChunked(w, stream, i)
		}()
	}
	wg.Wait()
	if cerr := w.Close(); cerr != nil {
		return nil, cerr
	}
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("session %d: %w", i, e)
		}
	}
	return frames, nil
}

// playChunked feeds one session in deterministic ragged chunks whose sizes
// depend on the session index, so concurrent sessions hit the scanner with
// different split points (including mid-start-code splits).
func playChunked(w *system.ResidentWall, stream []byte, idx int) ([]*mpeg2.PixelBuf, error) {
	res, err := playChunkedResult(w, stream, idx)
	if err != nil {
		return nil, err
	}
	return res.Frames, nil
}

// playChunkedResult is playChunked returning the full session result (the
// chaos axes read Recovery and TileEmissions, not just frames).
func playChunkedResult(w *system.ResidentWall, stream []byte, idx int) (*service.SessionResult, error) {
	sess, err := w.Open(fmt.Sprintf("conformance-%d", idx))
	if err != nil {
		return nil, err
	}
	size := 64<<(idx%5) + 7*idx + 1
	for off := 0; off < len(stream); off += size {
		end := off + size
		if end > len(stream) {
			end = len(stream)
		}
		if err := sess.Feed(stream[off:end]); err != nil {
			sess.Close()
			return nil, err
		}
	}
	return sess.Close()
}
