package fleet

import (
	"errors"
	"fmt"
	"testing"

	"tiledwall/internal/service"
	"tiledwall/internal/wall"
)

// stickyCounts runs the skewed-arrival experiment from the splitter's
// rootbalance methodology one level up: waves of four opens, the first of
// each wave held for the rest of the run ("sticky"), the other three closed
// immediately. The skew resonates with a four-wall round-robin period — the
// sticky open always lands on the same rotation phase — so RR funnels every
// long-lived session onto one wall while least-loaded spreads them.
func stickyCounts(t *testing.T, route RoutePolicy, waves int) []int {
	t.Helper()
	f, err := New(Config{
		Route: route,
		Walls: []service.Config{
			{K: 0, M: 1, N: 1, MaxSessions: 64},
			{K: 0, M: 1, N: 1, MaxSessions: 64},
			{K: 0, M: 1, N: 1, MaxSessions: 64},
			{K: 0, M: 1, N: 1, MaxSessions: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var sticky []*Session
	for wv := 0; wv < waves; wv++ {
		for j := 0; j < 4; j++ {
			s, err := f.Open(fmt.Sprintf("w%d-%d", wv, j), OpenOptions{})
			if err != nil {
				t.Fatalf("wave %d open %d: %v", wv, j, err)
			}
			if j == 0 {
				sticky = append(sticky, s)
			} else {
				s.Close() // empty session: the error is expected, the slot frees
			}
		}
	}
	counts := make([]int, 4)
	for _, s := range sticky {
		counts[s.Wall()]++
	}
	for _, s := range sticky {
		s.Close()
	}
	return counts
}

func busiest(counts []int) int {
	b := 0
	for _, c := range counts {
		if c > b {
			b = c
		}
	}
	return b
}

// TestRouteLeastLoadedBeatsRoundRobin is the routing property test: on
// skewed arrivals at W=4 the least-loaded router's busiest wall holds
// strictly fewer sessions than round-robin's, and no wall starves.
func TestRouteLeastLoadedBeatsRoundRobin(t *testing.T) {
	const waves = 12
	rr := stickyCounts(t, RoundRobin, waves)
	ll := stickyCounts(t, LeastLoaded, waves)
	t.Logf("sticky sessions per wall: round-robin %v, least-loaded %v", rr, ll)

	if busiest(rr) != waves {
		t.Fatalf("round-robin should funnel all %d sticky sessions onto one wall, got %v", waves, rr)
	}
	if busiest(ll) >= busiest(rr) {
		t.Fatalf("least-loaded busiest wall (%d) not strictly lower than round-robin (%d)", busiest(ll), busiest(rr))
	}
	for i, c := range ll {
		if c == 0 {
			t.Fatalf("least-loaded starved wall %d: %v", i, ll)
		}
	}
}

// TestRouteMinTiles pins compatibility routing: an open demanding more tiles
// than any wall has fails fast with ErrNoCompatibleWall, and one demanding a
// big wall never lands on a small one even when the small wall is idle.
func TestRouteMinTiles(t *testing.T) {
	f, err := New(Config{
		Walls: []service.Config{
			{K: 0, M: 1, N: 1, MaxSessions: 4},
			{K: 0, M: 2, N: 2, MaxSessions: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Open("huge", OpenOptions{MinTiles: 9}); !errors.Is(err, ErrNoCompatibleWall) {
		t.Fatalf("MinTiles=9: got %v, want ErrNoCompatibleWall", err)
	}
	for i := 0; i < 4; i++ {
		s, err := f.Open(fmt.Sprintf("big-%d", i), OpenOptions{MinTiles: 4})
		if err != nil {
			t.Fatalf("big open %d: %v", i, err)
		}
		if s.Wall() != 1 {
			t.Fatalf("big open %d landed on wall %d (1 tile), want wall 1", i, s.Wall())
		}
		defer s.Close()
	}
}

// oneTile builds a subscription to a single tile of an n-tile wall.
func oneTile(t *testing.T, n, tile int) wall.TileSet {
	t.Helper()
	ts := wall.NewTileSet(n)
	ts.Add(tile)
	return ts
}

// TestRouteSubscription pins subscription-aware routing: a partial
// subscription binds the open to walls of the geometry the set was built for,
// MinTiles constrains the subscribed tile count rather than the wall shape,
// and the router charges a windowed session only its subscribed fraction, so
// partial sessions pack onto a wall that session counting would call busier.
func TestRouteSubscription(t *testing.T) {
	f, err := New(Config{
		Walls: []service.Config{
			{K: 0, M: 1, N: 1, MaxSessions: 8},
			{K: 0, M: 2, N: 2, MaxSessions: 8},
			{K: 0, M: 2, N: 2, MaxSessions: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Geometry binding: a set sized for a wall shape the fleet lacks can
	// never be placed, regardless of load.
	if _, err := f.Open("nine", OpenOptions{Subscribe: oneTile(t, 9, 0)}); !errors.Is(err, ErrNoCompatibleWall) {
		t.Fatalf("9-tile subscription: got %v, want ErrNoCompatibleWall", err)
	}
	// MinTiles constrains the subscription, not the wall: watching 1 tile
	// cannot satisfy a 2-tile demand even though 4-tile walls exist.
	if _, err := f.Open("narrow", OpenOptions{Subscribe: oneTile(t, 4, 0), MinTiles: 2}); !errors.Is(err, ErrNoCompatibleWall) {
		t.Fatalf("1-tile subscription with MinTiles=2: got %v, want ErrNoCompatibleWall", err)
	}

	// A full-wall session pins one 2x2 wall at load 1.
	full, err := f.Open("full", OpenOptions{MinTiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if full.Wall() == 0 {
		t.Fatalf("full 4-tile session landed on wall 0 (1 tile)")
	}
	other := 1
	if full.Wall() == 1 {
		other = 2
	}
	// Three 1-of-4-tile windows: each costs 0.25, so all three must pack
	// onto the other 2x2 wall (0.25 → 0.5 → 0.75, all below the full
	// session's 1.0). Session-count scoring would have sent the second and
	// third back to the full session's wall (1 session vs 2). They must also
	// never land on the 1-tile wall: the set is sized for 4 tiles.
	for i := 0; i < 3; i++ {
		s, err := f.Open(fmt.Sprintf("win-%d", i), OpenOptions{Subscribe: oneTile(t, 4, i)})
		if err != nil {
			t.Fatalf("window open %d: %v", i, err)
		}
		defer s.Close()
		if s.Wall() != other {
			t.Fatalf("window open %d landed on wall %d, want wall %d (tile-weighted load)", i, s.Wall(), other)
		}
	}
}
