package conformance

import (
	"fmt"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/system"
	"tiledwall/internal/wall"
)

// TransportResult is the outcome of one configuration in RunTransportMatrix:
// the same stream decoded over the in-process fabric, over the TCP socket
// transport on loopback, and (when sessions > 1) as concurrent chunk-fed
// sessions on a TCP wall. Every axis is held to the serial reference with the
// oracle's first-divergence minimiser, so byte-identity between the
// transports follows from byte-identity with the reference — and a failure
// names the transport AND the first divergent picture/macroblock/tile.
type TransportResult struct {
	Config system.Config

	FabricErr        error
	FabricDivergence *Divergence

	TCPErr        error
	TCPDivergence *Divergence

	// Session axis: sessions concurrent ragged-chunk feeds through one
	// resident TCP wall (zero values when RunTransportMatrix ran with
	// sessions <= 1).
	SessionErr        error
	SessionDivergence *Divergence
}

// Name renders the configuration in the matrix's 1-k-(m,n) notation.
func (r TransportResult) Name() string { return MatrixResult{Config: r.Config}.Name() }

// Failure returns a descriptive error for the first failing axis, or nil when
// fabric and TCP agree with the serial reference on every axis.
func (r TransportResult) Failure() error {
	switch {
	case r.FabricErr != nil:
		return fmt.Errorf("%s fabric: pipeline failed: %w", r.Name(), r.FabricErr)
	case r.FabricDivergence != nil:
		return fmt.Errorf("%s fabric: %s", r.Name(), r.FabricDivergence)
	case r.TCPErr != nil:
		return fmt.Errorf("%s tcp: pipeline failed: %w", r.Name(), r.TCPErr)
	case r.TCPDivergence != nil:
		return fmt.Errorf("%s tcp: %s", r.Name(), r.TCPDivergence)
	case r.SessionErr != nil:
		return fmt.Errorf("%s tcp sessions: pipeline failed: %w", r.Name(), r.SessionErr)
	case r.SessionDivergence != nil:
		return fmt.Errorf("%s tcp sessions: %s", r.Name(), r.SessionDivergence)
	}
	return nil
}

// RunTransportMatrix is the cross-transport conformance axis: every
// configuration decodes the stream over the in-process fabric and over the
// TCP transport on loopback (every node in this process, every hop crossing
// real sockets through the hub), and both must be byte-identical to the
// serial reference. With sessions > 1 each configuration additionally plays
// that many concurrent ragged-chunk sessions through one resident TCP wall —
// the wire framing, write batching and receive slab reuse under the same
// oracle the fabric has been held to since PR 1.
func RunTransportMatrix(stream []byte, configs []system.Config, sessions int) ([]TransportResult, error) {
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		return nil, fmt.Errorf("conformance: serial parse: %w", err)
	}
	ref, err := dec.DecodeAll()
	if err != nil {
		return nil, fmt.Errorf("conformance: serial decode: %w", err)
	}
	picW, picH := dec.Seq().MBWidth()*16, dec.Seq().MBHeight()*16

	out := make([]TransportResult, 0, len(configs))
	for _, cfg := range configs {
		cfg.CollectFrames = true
		geo, gerr := wall.NewGeometry(picW, picH, cfg.M, cfg.N, cfg.Overlap)
		if gerr != nil {
			geo = nil
		}
		tr := TransportResult{Config: cfg}

		fcfg := cfg
		fcfg.Transport = "fabric"
		if res, err := system.Run(stream, fcfg); err != nil {
			tr.FabricErr = err
		} else {
			tr.FabricDivergence = Diff(ref, res.Frames, geo)
		}

		tcfg := cfg
		tcfg.Transport = "tcp"
		if res, err := system.Run(stream, tcfg); err != nil {
			tr.TCPErr = err
		} else {
			tr.TCPDivergence = Diff(ref, res.Frames, geo)
		}

		if sessions > 1 {
			scfg := tcfg
			if scfg.MaxSessions < sessions {
				scfg.MaxSessions = sessions
			}
			frames, err := playSessions(stream, scfg, sessions)
			if err != nil {
				tr.SessionErr = err
			} else {
				for _, got := range frames {
					if d := Diff(ref, got, geo); d != nil {
						tr.SessionDivergence = d
						break
					}
				}
			}
		}
		out = append(out, tr)
	}
	return out, nil
}
