// Granularity comparison: runs the same content through all four
// parallelisation levels the paper weighs in Table 1 — GOP, picture, slice
// and macroblock — and prints the measured splitting cost, inter-decoder
// communication and pixel redistribution per picture.
//
//	go run ./examples/granularity [-frames 24] [-scale 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tiledwall/internal/experiments"
)

func main() {
	frames := flag.Int("frames", 24, "frames to encode")
	scale := flag.Int("scale", 2, "resolution divisor")
	flag.Parse()

	o := experiments.Options{Frames: *frames, Scale: *scale, Log: os.Stderr}
	rows, err := experiments.Table1(8, 2, 2, o)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintTable1(os.Stdout, "stream 8 (HDTV class), 2x2 wall", rows)

	fmt.Println(`
Reading the table against the paper's qualitative Table 1:
  - GOP and picture level split almost for free (start codes) but ship
    (mn-1)/mn of every decoded frame to the display nodes;
  - picture level additionally moves whole reference frames between
    decoders for motion compensation;
  - slice level cuts both costs but still redistributes most pixels;
  - macroblock level pays a real parsing cost in the splitter — the
    bottleneck the two-level hierarchy removes — and in exchange sends
    no decoded pixels anywhere: each macroblock is decoded where it is
    displayed, with only boundary reference blocks exchanged (MEI).`)
}
