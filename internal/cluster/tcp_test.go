package cluster

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// Fault injection for the socket path: every failure mode must surface as a
// typed, errors.Is-matchable abort through the single abort domain — never a
// hang.

func newLoopbackTransport(t *testing.T, n int, stall time.Duration) *TCPTransport {
	t.Helper()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	tr, err := ListenTCP("127.0.0.1:0", TCPConfig{NumNodes: n, LocalNodes: ids, StallTimeout: stall})
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	t.Cleanup(tr.Shutdown)
	return tr
}

func waitAbort(t *testing.T, tr *TCPTransport, within time.Duration) error {
	t.Helper()
	select {
	case <-tr.Done():
		return tr.AbortCause()
	case <-time.After(within):
		t.Fatal("transport did not abort within deadline")
		return nil
	}
}

// TestTCPMultiProcess wires three transports — a hub plus two dialers — the
// way three OS processes would, and runs traffic across real process-style
// boundaries (every hop crosses the hub).
func TestTCPMultiProcess(t *testing.T) {
	hub, err := ListenTCP("127.0.0.1:0", TCPConfig{NumNodes: 3, LocalNodes: []int{0}})
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	defer hub.Shutdown()
	mk := func(id int) *TCPTransport {
		tr, err := DialTCP(hub.Addr(), TCPConfig{NumNodes: 3, LocalNodes: []int{id}})
		if err != nil {
			t.Fatalf("DialTCP node %d: %v", id, err)
		}
		return tr
	}
	w1, w2 := mk(1), mk(2)
	defer w1.Shutdown()
	defer w2.Shutdown()

	const rounds = 50
	go func() {
		for i := 0; i < rounds; i++ {
			w1.Port(1).Send(2, &Message{Kind: MsgBlocks, Seq: i, Session: 5, Payload: []byte{byte(i), 1, 2}})
			w1.Port(1).Send(0, &Message{Kind: MsgAck, Seq: i})
		}
	}()
	for i := 0; i < rounds; i++ {
		m := w2.Port(2).Recv(MsgBlocks)
		if m == nil {
			t.Fatalf("w2 aborted: %v", w2.AbortCause())
		}
		if m.Seq != i || m.From != 1 || m.Payload[0] != byte(i) {
			t.Fatalf("round %d: got seq %d from %d payload %v", i, m.Seq, m.From, m.Payload)
		}
		if m2 := hub.Port(0).Recv(MsgAck); m2 == nil || m2.Seq != i {
			t.Fatalf("round %d: hub ack %+v (cause %v)", i, m2, hub.AbortCause())
		}
	}
	// Remote-origin traffic is accounted at the receiving process.
	if got := w2.PairBytes(1, 2); got != rounds*(3+messageHeaderBytes) {
		t.Fatalf("w2 PairBytes(1,2) = %d, want %d", got, rounds*(3+messageHeaderBytes))
	}
	if got := w2.SessionBytes(5); got != rounds*(3+messageHeaderBytes) {
		t.Fatalf("w2 SessionBytes(5) = %d, want %d", got, rounds*(3+messageHeaderBytes))
	}
}

// TestTCPMidStreamDrop: hard-killing a link (RST) aborts the transport with
// ErrLinkLost, unblocking a pending receive.
func TestTCPMidStreamDrop(t *testing.T) {
	tr := newLoopbackTransport(t, 3, 0)
	got := make(chan *Message, 1)
	go func() { got <- tr.Port(2).Recv(MsgPicture) }()
	tr.Port(0).Send(2, &Message{Kind: MsgPicture, Payload: make([]byte, 1024)})
	if m := <-got; m == nil {
		t.Fatalf("pre-fault delivery failed: %v", tr.AbortCause())
	}
	tr.InjectLinkFailure(1)
	cause := waitAbort(t, tr, 10*time.Second)
	if !errors.Is(cause, ErrLinkLost) && !errors.Is(cause, ErrStalled) {
		t.Fatalf("abort cause %v, want ErrLinkLost (or ErrStalled)", cause)
	}
	if m := tr.Port(2).Recv(MsgPicture); m != nil {
		t.Fatalf("Recv after link loss returned %+v", m)
	}
}

// TestTCPHalfOpenPeer: a peer that handshakes and then goes silent while the
// wall expects traffic is caught by the stall watchdog, not a hang.
func TestTCPHalfOpenPeer(t *testing.T) {
	tr, err := ListenTCP("127.0.0.1:0", TCPConfig{NumNodes: 2, LocalNodes: []int{0}, StallTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	defer tr.Shutdown()
	// Handshake as node 1 by hand, then never send another byte.
	c, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write(AppendHelloFrame(nil, Hello{Version: WireVersion, Node: 1, NumNodes: 2})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	blocked := make(chan *Message, 1)
	go func() { blocked <- tr.Port(0).Recv(MsgAck) }()
	cause := waitAbort(t, tr, 10*time.Second)
	if !errors.Is(cause, ErrStalled) {
		t.Fatalf("abort cause %v, want ErrStalled", cause)
	}
	if m := <-blocked; m != nil {
		t.Fatalf("Recv returned %+v after stall abort", m)
	}
}

// TestTCPHandshakeVersionMismatch: the hub answers a wrong-version hello
// with an ErrHandshake-classed abort frame and keeps the wall alive.
func TestTCPHandshakeVersionMismatch(t *testing.T) {
	tr := newLoopbackTransport(t, 2, 0)
	c, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write(AppendHelloFrame(nil, Hello{Version: WireVersion + 9, Node: 1, NumNodes: 2})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr, err := readFrame(c)
	if err != nil {
		t.Fatalf("expected abort frame, read error %v", err)
	}
	if fr.Abort == nil || !errors.Is(fr.Abort, ErrHandshake) {
		t.Fatalf("expected ErrHandshake abort frame, got %+v", fr)
	}
	if tr.AbortCause() != nil {
		t.Fatalf("stray dialer aborted the wall: %v", tr.AbortCause())
	}
	// The wall still works afterwards.
	tr.Port(0).Send(1, &Message{Kind: MsgAck, Seq: 1})
	if m := tr.Port(1).Recv(MsgAck); m == nil || m.Seq != 1 {
		t.Fatalf("wall broken after rejected dialer: %+v (cause %v)", m, tr.AbortCause())
	}
}

// TestTCPHandshakeGeometryMismatch: a dialing process configured for a
// different wall shape is rejected with ErrHandshake at DialTCP.
func TestTCPHandshakeGeometryMismatch(t *testing.T) {
	hub, err := ListenTCP("127.0.0.1:0", TCPConfig{NumNodes: 4, LocalNodes: []int{0}, Grid: Grid{K: 1, M: 1, N: 2}})
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	defer hub.Shutdown()
	_, err = DialTCP(hub.Addr(), TCPConfig{NumNodes: 4, LocalNodes: []int{1}, Grid: Grid{K: 1, M: 2, N: 1}})
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("geometry mismatch: err %v, want ErrHandshake", err)
	}
	_, err = DialTCP(hub.Addr(), TCPConfig{NumNodes: 5, LocalNodes: []int{1}, Grid: Grid{K: 1, M: 1, N: 2}})
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("node-count mismatch: err %v, want ErrHandshake", err)
	}
}

// TestTCPDuplicateNode: a second claim on an already-connected node id is
// rejected without disturbing the first.
func TestTCPDuplicateNode(t *testing.T) {
	tr := newLoopbackTransport(t, 2, 0)
	_, err := DialTCP(tr.Addr(), TCPConfig{NumNodes: 2, LocalNodes: []int{1}})
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("duplicate node: err %v, want ErrHandshake", err)
	}
	if tr.AbortCause() != nil {
		t.Fatalf("duplicate claim aborted the wall: %v", tr.AbortCause())
	}
}

// TestTCPHandshakeTimeout: a connection that never completes the handshake
// is cut by the hub's deadline instead of holding a slot forever.
func TestTCPHandshakeTimeout(t *testing.T) {
	tr, err := ListenTCP("127.0.0.1:0", TCPConfig{NumNodes: 2, LocalNodes: []int{0}, HandshakeTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	defer tr.Shutdown()
	c, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		// An abort frame is also acceptable; what matters is the connection
		// dies promptly rather than lingering half-open.
		io.Copy(io.Discard, c)
	}
	if tr.AbortCause() != nil {
		t.Fatalf("silent dialer aborted the wall: %v", tr.AbortCause())
	}
}

// TestTCPAbortPropagation: an abort in one process propagates its cause
// class across the wire so every process reports the same errors.Is result.
func TestTCPAbortPropagation(t *testing.T) {
	hub, err := ListenTCP("127.0.0.1:0", TCPConfig{NumNodes: 2, LocalNodes: []int{0}})
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	defer hub.Shutdown()
	worker, err := DialTCP(hub.Addr(), TCPConfig{NumNodes: 2, LocalNodes: []int{1}})
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	defer worker.Shutdown()
	worker.Abort(ErrStalled)
	cause := waitAbort(t, hub, 10*time.Second)
	if !errors.Is(cause, ErrStalled) {
		t.Fatalf("hub abort cause %v, want ErrStalled across the wire", cause)
	}
	if cause.Error() != ErrStalled.Error() {
		t.Fatalf("abort message %q lost fidelity, want %q", cause.Error(), ErrStalled.Error())
	}
}

// TestTCPCleanShutdownDeliversTail: everything sent before Shutdown reaches
// a remote process that is still draining — the flush-then-FIN ordering.
func TestTCPCleanShutdownDeliversTail(t *testing.T) {
	hub, err := ListenTCP("127.0.0.1:0", TCPConfig{NumNodes: 2, LocalNodes: []int{0}})
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	worker, err := DialTCP(hub.Addr(), TCPConfig{NumNodes: 2, LocalNodes: []int{1}})
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	defer worker.Shutdown()
	const tail = 200
	for i := 0; i < tail; i++ {
		hub.Port(0).Send(1, &Message{Kind: MsgPixels, Seq: i, Payload: make([]byte, 512)})
	}
	hub.Shutdown()
	for i := 0; i < tail; i++ {
		m := worker.Port(1).Recv(MsgPixels)
		if m == nil {
			t.Fatalf("tail message %d lost: %v", i, worker.AbortCause())
		}
		if m.Seq != i {
			t.Fatalf("tail reordered: got %d want %d", m.Seq, i)
		}
	}
	if worker.AbortCause() != nil {
		t.Fatalf("clean shutdown aborted the worker: %v", worker.AbortCause())
	}
}

// TestTCPDialRetryLateRoot: a worker process often races the root process to
// the rendezvous address. The capped-exponential dial retry must keep trying
// until the root's listener appears, and join well within DialTimeout.
func TestTCPDialRetryLateRoot(t *testing.T) {
	// Reserve an address, then free it so the first dial attempts miss.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	type dialRes struct {
		tr  *TCPTransport
		err error
	}
	ch := make(chan dialRes, 1)
	start := time.Now()
	go func() {
		tr, err := DialTCP(addr, TCPConfig{
			NumNodes: 2, LocalNodes: []int{1},
			DialTimeout:   5 * time.Second,
			DialRetryBase: 10 * time.Millisecond,
			DialRetryMax:  100 * time.Millisecond,
		})
		ch <- dialRes{tr, err}
	}()
	time.Sleep(300 * time.Millisecond)
	hub, err := ListenTCP(addr, TCPConfig{NumNodes: 2, LocalNodes: []int{0}})
	if err != nil {
		t.Fatalf("late ListenTCP: %v", err)
	}
	defer hub.Shutdown()
	res := <-ch
	if res.err != nil {
		t.Fatalf("DialTCP did not survive the late root: %v", res.err)
	}
	defer res.tr.Shutdown()
	if took := time.Since(start); took >= 5*time.Second {
		t.Fatalf("late join took %v, want well under the 5s DialTimeout", took)
	}
	res.tr.Port(1).Send(0, &Message{Kind: MsgAck, Seq: 7})
	if m := hub.Port(0).Recv(MsgAck); m == nil || m.Seq != 7 {
		t.Fatalf("no traffic after late join: %+v (cause %v)", m, hub.AbortCause())
	}
}

// TestTCPRecoverableReconnect: on a Recoverable transport a hard link kill
// (RST) must not abort the wall — the victim redials the hub, the link-state
// hook observes down then up, and traffic resumes (batch re-send may
// duplicate the tail, which downstream protocols tolerate).
func TestTCPRecoverableReconnect(t *testing.T) {
	var mu sync.Mutex
	var transitions []bool
	hub, err := ListenTCP("127.0.0.1:0", TCPConfig{
		NumNodes: 2, LocalNodes: []int{0}, Recoverable: true,
	})
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	defer hub.Shutdown()
	w1, err := DialTCP(hub.Addr(), TCPConfig{
		NumNodes: 2, LocalNodes: []int{1}, Recoverable: true,
		RedialTimeout: 5 * time.Second,
		DialRetryBase: 5 * time.Millisecond,
		OnLinkState: func(node int, up bool) {
			mu.Lock()
			transitions = append(transitions, up)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	defer w1.Shutdown()

	w1.Port(1).Send(0, &Message{Kind: MsgAck, Seq: 1})
	if m := hub.Port(0).Recv(MsgAck); m == nil || m.Seq != 1 {
		t.Fatalf("pre-failure message lost: %+v (cause %v)", m, hub.AbortCause())
	}

	w1.InjectLinkFailure(1)
	time.Sleep(50 * time.Millisecond) // let the RST land on both ends
	w1.Port(1).Send(0, &Message{Kind: MsgAck, Seq: 2})

	deadline := time.Now().Add(5 * time.Second)
	for {
		m, timedOut := hub.Port(0).RecvTimeout(MsgAck, time.Until(deadline))
		if timedOut {
			t.Fatal("post-failure message never arrived; link did not recover")
		}
		if m == nil {
			t.Fatalf("hub aborted instead of recovering: %v", hub.AbortCause())
		}
		if m.Seq == 2 {
			break // Seq 1 may be redelivered by the batch re-send
		}
	}
	mu.Lock()
	got := append([]bool(nil), transitions...)
	mu.Unlock()
	sawDown, sawUpAfterDown := false, false
	for _, up := range got {
		if !up {
			sawDown = true
		} else if sawDown {
			sawUpAfterDown = true
		}
	}
	if !sawDown || !sawUpAfterDown {
		t.Fatalf("link-state transitions %v, want down followed by up", got)
	}
}
