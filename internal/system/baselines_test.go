package system

import (
	"testing"

	"tiledwall/internal/encoder"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/video"
)

// makeClosedStream encodes a clip with self-contained GOPs (required by the
// GOP-level baseline).
func makeClosedStream(t testing.TB, kind video.SceneKind, w, h, frames int) []byte {
	t.Helper()
	cfg := encoder.Config{Width: w, Height: h, GOPSize: 6, BSpacing: 3, InitialQScale: 6, ClosedGOP: true}
	src := video.NewSource(kind, w, h, 11)
	e, err := encoder.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if err := e.Push(src.Frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e.Bytes()
}

func checkAgainstSerial(t *testing.T, stream []byte, frames []*mpeg2.PixelBuf) {
	t.Helper()
	ref := serialFrames(t, stream)
	if len(frames) != len(ref) {
		t.Fatalf("baseline produced %d frames, serial %d", len(frames), len(ref))
	}
	for i := range ref {
		if !video.Equal(ref[i].Buf, frames[i]) {
			l, c := video.MaxAbsDiff(ref[i].Buf, frames[i])
			t.Fatalf("frame %d differs from serial (max luma %d chroma %d)", i, l, c)
		}
	}
}

func TestGOPLevelBaseline(t *testing.T) {
	stream := makeClosedStream(t, video.SceneFilm, 192, 128, 18)
	res, err := RunBaseline(stream, BaselineConfig{Level: LevelGOP, M: 2, N: 2, CollectFrames: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstSerial(t, stream, res.Frames)
	if res.InterDecoderBytes != 0 {
		t.Errorf("GOP level should have no inter-decoder traffic, got %d", res.InterDecoderBytes)
	}
	if res.RedistributionBytes == 0 {
		t.Error("GOP level must redistribute pixels")
	}
	// Redistribution ships (mn-1)/mn of every picture (Table 1 "very high").
	perPic := float64(res.RedistributionBytes) / float64(res.Throughput.Pictures)
	frameBytes := float64(192*128) * 1.5
	if perPic < frameBytes*0.5 {
		t.Errorf("redistribution %.0f bytes/picture implausibly low (frame is %.0f)", perPic, frameBytes)
	}
}

func TestPictureLevelBaseline(t *testing.T) {
	// Picture-level works with ordinary (open-GOP) streams.
	stream := makeStream(t, video.SceneFilm, 192, 128, 12)
	res, err := RunBaseline(stream, BaselineConfig{Level: LevelPicture, M: 2, N: 2, CollectFrames: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstSerial(t, stream, res.Frames)
	if res.InterDecoderBytes == 0 {
		t.Error("picture level must ship reference frames between decoders")
	}
	// Inter-decoder traffic is whole frames: "very high" (Table 1).
	if res.InterDecoderBytes < res.RedistributionBytes {
		t.Errorf("picture-level reference traffic (%d) expected to rival redistribution (%d)",
			res.InterDecoderBytes, res.RedistributionBytes)
	}
}

func TestSliceLevelBaseline(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 256, 12) // 16 MB rows: 4 bands of 4
	res, err := RunBaseline(stream, BaselineConfig{Level: LevelSlice, M: 2, N: 2, CollectFrames: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstSerial(t, stream, res.Frames)
	if res.InterDecoderBytes == 0 {
		t.Error("slice level must exchange halo strips")
	}
	// Halo strips are far smaller than the picture-level whole frames.
	picRes, err := RunBaseline(stream, BaselineConfig{Level: LevelPicture, M: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.InterDecoderBytes >= picRes.InterDecoderBytes {
		t.Errorf("slice-level comm (%d) should undercut picture-level (%d)",
			res.InterDecoderBytes, picRes.InterDecoderBytes)
	}
}

func TestSliceLevelRejectsThinBands(t *testing.T) {
	stream := makeStream(t, video.SceneFilm, 192, 128, 6) // 8 rows, 4 bands of 2 < halo 3
	if _, err := RunBaseline(stream, BaselineConfig{Level: LevelSlice, M: 2, N: 2}); err == nil {
		t.Error("thin bands should be rejected")
	}
}

func TestMacroblockLevelHasNoRedistribution(t *testing.T) {
	// The contrast Table 1 draws: the hierarchical system sends no decoded
	// pixels at all between nodes except MEI reference macroblocks.
	stream := makeStream(t, video.SceneFilm, 192, 128, 9)
	res, err := Run(stream, Config{K: 1, M: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Decoder-to-decoder traffic exists (MEI) but is far below one frame per
	// picture.
	var interDecoder int64
	for _, a := range res.DecoderNodeIDs {
		for _, b := range res.DecoderNodeIDs {
			interDecoder += res.PairBytes(a, b)
		}
	}
	frameBytes := int64(192*128) * 3 / 2
	if interDecoder > frameBytes*int64(res.Throughput.Pictures)/2 {
		t.Errorf("macroblock-level inter-decoder traffic %d too high vs frames %d",
			interDecoder, frameBytes*int64(res.Throughput.Pictures))
	}
}

func TestDisplayOrder(t *testing.T) {
	I, P, B := mpeg2.PictureI, mpeg2.PictureP, mpeg2.PictureB
	// Decode order I P B B P B B -> display I B B P B B P
	types := []mpeg2.PictureType{I, P, B, B, P, B, B}
	got := displayOrder(types)
	want := []int{0, 3, 1, 2, 6, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("display order %v, want %v", got, want)
		}
	}
	// All-intra: identity.
	types = []mpeg2.PictureType{I, I, I}
	got = displayOrder(types)
	for i, v := range got {
		if v != i {
			t.Fatalf("all-I order %v", got)
		}
	}
}
