package recovery

import (
	"sync"
	"time"

	"tiledwall/internal/metrics"
)

// Supervisor watches the leases of the pipeline's supervised workers
// (second-level splitters and tile decoders) and authorises respawns. A
// worker that crashes stops renewing its lease and parks in AwaitRespawn;
// the monitor notices the expired lease after LeaseExpiry — the detection
// latency a heartbeat protocol pays — and grants a new incarnation, up to
// MaxRestarts per node. The respawn itself (rebuilding state on the same
// fabric node and replaying retained pictures) is the caller's job; the
// supervisor owns only detection and the restart budget.
type Supervisor struct {
	cfg Config
	rec *metrics.Recovery

	mu      sync.Mutex
	workers map[int]*supWorker

	stop  chan struct{}
	stop1 sync.Once
	done  chan struct{}
}

type supWorker struct {
	lease    *Lease
	restarts int
	waiting  bool
	grant    chan int
}

// NewSupervisor starts the monitor. Close must be called when the run ends.
func NewSupervisor(cfg Config, rec *metrics.Recovery) *Supervisor {
	if rec == nil {
		rec = &metrics.Recovery{}
	}
	s := &Supervisor{
		cfg:     cfg.WithDefaults(),
		rec:     rec,
		workers: map[int]*supWorker{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.monitor()
	return s
}

// Close stops the monitor and fails any parked AwaitRespawn. Idempotent.
func (s *Supervisor) Close() {
	s.stop1.Do(func() { close(s.stop) })
	<-s.done
}

// Watch registers a worker's lease under its fabric node id.
func (s *Supervisor) Watch(id int, lease *Lease) {
	s.mu.Lock()
	s.workers[id] = &supWorker{lease: lease}
	s.mu.Unlock()
}

// Restarts returns how many times node id has been respawned.
func (s *Supervisor) Restarts(id int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w := s.workers[id]; w != nil {
		return w.restarts
	}
	return 0
}

// AwaitRespawn parks a crashed worker's slot until the monitor declares the
// lease dead and authorises a new incarnation. It returns the incarnation
// number (1 for the first respawn) and ok=false when the restart budget is
// exhausted, the supervisor closed, or abort fired (pass the fabric's Done
// channel so a failing run unwinds parked slots).
func (s *Supervisor) AwaitRespawn(id int, abort <-chan struct{}) (int, bool) {
	s.mu.Lock()
	w := s.workers[id]
	if w == nil || w.restarts >= s.cfg.MaxRestarts {
		s.mu.Unlock()
		return 0, false
	}
	w.grant = make(chan int, 1)
	w.waiting = true
	grant := w.grant
	s.mu.Unlock()

	select {
	case n := <-grant:
		return n, true
	case <-s.stop:
		return 0, false
	case <-abort:
		return 0, false
	}
}

func (s *Supervisor) monitor() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.LeaseInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		s.mu.Lock()
		for _, w := range s.workers {
			if !w.waiting || !w.lease.Expired(s.cfg.LeaseExpiry) {
				continue
			}
			w.waiting = false
			w.restarts++
			w.lease.Renew() // the new incarnation starts with a fresh lease
			s.rec.AddRestart()
			w.grant <- w.restarts
		}
		s.mu.Unlock()
	}
}
