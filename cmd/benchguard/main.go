// Command benchguard compares two continuous-benchmark reports produced by
// benchwall -json and exits non-zero when the current report regresses from
// the baseline: a frame-rate drop or an allocation increase beyond the
// tolerance. CI runs it against the committed BENCH_baseline.json on every
// push, so a hot-path regression fails the build instead of landing silently.
//
// Usage:
//
//	benchguard -base BENCH_baseline.json -cur BENCH_2026-08-05.json [-tol 0.10]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tiledwall/internal/experiments"
)

func main() {
	var (
		base = flag.String("base", "BENCH_baseline.json", "baseline report")
		cur  = flag.String("cur", "", "current report to check (required)")
		tol  = flag.Float64("tol", 0.10, "fractional regression tolerance")
	)
	flag.Parse()
	if *cur == "" {
		flag.Usage()
		os.Exit(2)
	}

	read := func(path string) *experiments.BenchReport {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		rep, err := experiments.ReadBenchJSON(f)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		return rep
	}
	b, c := read(*base), read(*cur)

	fmt.Printf("baseline %s: serial %.1f fps, %.2f allocs/picture (gomaxprocs %d)\n", b.Date, b.Serial.FPS, b.Serial.AllocsPerPic, b.GoMaxProcs)
	fmt.Printf("current  %s: serial %.1f fps, %.2f allocs/picture (gomaxprocs %d)\n", c.Date, c.Serial.FPS, c.Serial.AllocsPerPic, c.GoMaxProcs)
	violations, warnings := experiments.CompareBenchReports(b, c, *tol)
	// Warnings never fail the build: a metric the baseline does not know is
	// reported, not gated, so growing the suite does not require landing a
	// new baseline in the same change.
	for _, w := range warnings {
		fmt.Fprintf(os.Stderr, "benchguard: warning: %s\n", w)
	}
	if len(violations) == 0 {
		fmt.Println("benchguard: OK")
		return
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "benchguard: %s\n", v)
	}
	os.Exit(1)
}
