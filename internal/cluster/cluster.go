// Package cluster provides the in-process message-passing fabric standing in
// for the paper's Myrinet/GM user-level network (DESIGN.md §2). It preserves
// the properties the algorithms depend on:
//
//   - addressed, reliable messages with per-sender FIFO order but NO global
//     ordering across senders (GM's semantics — the reason the paper needs
//     the ANID ack-redirect protocol);
//   - zero-copy transfer (payload slices are handed over, never copied);
//   - receive into posted buffers, modelled by per-kind receive queues with
//     bounded depth;
//   - per-link byte accounting for the bandwidth experiments (Fig. 9) and
//     optional bandwidth/latency throttling.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// MsgKind tags a message with its protocol role.
type MsgKind uint8

const (
	// MsgPicture is a picture unit from the root splitter to a second-level
	// splitter (paper Fig. 5: root -> splitter).
	MsgPicture MsgKind = iota
	// MsgSubPicture is an SP+MEI bundle from a splitter to a decoder.
	MsgSubPicture
	// MsgBlocks carries exchanged reference macroblocks between decoders.
	MsgBlocks
	// MsgAck is the credit/go-ahead message of the flow-control protocol.
	MsgAck
	// MsgHalo carries band-edge reference strips between neighbours in the
	// slice-level baseline pipeline.
	MsgHalo
	// MsgPixels carries decoded pixels redistributed to display nodes in
	// the coarse-granularity baseline pipelines (Table 1).
	MsgPixels
	// MsgXport carries transport-level control traffic (cumulative acks and
	// NACKs) for the recovery layer's retransmission protocol. It is never
	// seen by the pipeline protocols.
	MsgXport
	numKinds
)

func (k MsgKind) String() string {
	switch k {
	case MsgPicture:
		return "picture"
	case MsgSubPicture:
		return "subpicture"
	case MsgBlocks:
		return "blocks"
	case MsgAck:
		return "ack"
	case MsgHalo:
		return "halo"
	case MsgPixels:
		return "pixels"
	case MsgXport:
		return "xport"
	}
	return fmt.Sprintf("MsgKind(%d)", int(k))
}

// messageHeaderBytes approximates the per-message wire overhead counted in
// the bandwidth statistics (GM header + our tags).
const messageHeaderBytes = 16

// Message flag bits (recovery layer and resident-service control plane).
const (
	// FlagRetransmit marks a message re-sent by the retransmission layer;
	// receivers deduplicate by XSeq, so the flag is informational.
	FlagRetransmit uint8 = 1 << iota
	// FlagReplay marks a sub-picture or picture replayed from a retained
	// window after a node restart. Replays must not generate protocol acks
	// (the original delivery already did, or the credit was written off).
	FlagReplay
	// FlagSessionOpen announces a new stream to a resident node; the payload
	// is the stream's header prefix (sequence header + extension). Control
	// messages are never acked and consume no flow-control credit.
	FlagSessionOpen
	// FlagSessionFinal is the end-of-stream control message of a session
	// (the resident equivalent of the batch end marker). Like every control
	// message it must not be acked: in a long-lived wall the splitters keep
	// running, and a stray ack would inflate the next picture's go-ahead
	// count.
	FlagSessionFinal
	// FlagShutdown tells a resident node loop to exit cleanly (graceful wall
	// teardown, after every session has drained).
	FlagShutdown
	// FlagFirstPicture marks the globally first data picture a resident wall
	// ships. The Table 3 exemption — the very first picture needs no decoder
	// go-ahead — belongs to the wall's lifetime, not to any one session, so
	// the root pins it to a flag instead of `Seq == 0`.
	FlagFirstPicture
	// FlagSubscribe is the subscription/trick-play control message the root
	// broadcasts to its splitters when a session's ROI or trick mode changes
	// (DESIGN.md §15). The payload is one trick-mode byte followed by the
	// wall.TileSet wire form (empty = full subscription). Like every control
	// message it is never acked and consumes no flow-control credit; per-
	// sender FIFO delivery makes every splitter apply it at the same picture
	// boundary.
	FlagSubscribe
)

// DrainAckSeq is the Seq sentinel of the drain acknowledgement a resident
// decoder sends the root when a session completes on its tile. It keeps
// drain acks distinguishable from go-ahead/credit acks (picture index >= 0)
// in the root's single ack stream.
const DrainAckSeq = -2

// SessionFailSeq is the Seq sentinel of the failure notice a recovery-enabled
// resident splitter sends the root when one session's stream is undecodable
// (corrupt unit, geometry mismatch). The payload carries the cause text. The
// root fails that session alone; the splitter keeps serving the others.
const SessionFailSeq = -3

// Message is one fabric message.
type Message struct {
	From, To int
	Kind     MsgKind
	// Seq carries a protocol sequence number (picture index for data
	// messages, acked index for acks).
	Seq int
	// Tag carries protocol-specific routing info (NSID for pictures, ANID
	// for sub-pictures, reference selector for block messages).
	Tag int
	// Session identifies the resident-service stream this message belongs to
	// (0 = the single implicit stream of a batch run). Long-lived nodes key
	// their per-stream state off it, and the fabric accounts bytes per
	// session under it.
	Session int
	// XSeq is the per-link transport sequence number assigned by the
	// recovery layer's reliable endpoint (0 when reliability is off).
	XSeq int64
	// Flags carries FlagRetransmit/FlagReplay.
	Flags uint8
	// Payload is handed over without copying.
	Payload []byte
}

// Net is the messaging surface the pipeline nodes program against. It is
// satisfied by *Node directly (raw GM-like fabric, PR 1 behaviour) and by
// the recovery layer's reliable endpoint, which adds sequence tracking,
// NACK/retransmission and dedup on top of the same methods.
type Net interface {
	ID() int
	Send(to int, msg *Message)
	Recv(kind MsgKind) *Message
	// RecvTimeout waits up to d for a message. msg != nil means delivered;
	// msg == nil with timedOut=true means the deadline passed; msg == nil
	// with timedOut=false means the fabric aborted.
	RecvTimeout(kind MsgKind, d time.Duration) (msg *Message, timedOut bool)
	TryRecv(kind MsgKind) (*Message, bool)
	Done() <-chan struct{}
}

func (m *Message) wireBytes() int64 { return int64(len(m.Payload) + messageHeaderBytes) }

// LinkStats counts traffic of one node.
type LinkStats struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
}

// Config tunes the fabric.
type Config struct {
	// BandwidthBps throttles each sender's links (bytes per second);
	// 0 disables throttling. The paper's Myrinet delivered on the order of
	// 100 MB/s per link.
	BandwidthBps float64
	// Latency is added per message when throttling is enabled.
	Latency time.Duration
	// QueueDepth bounds each node's receive queue (posted buffers per
	// sender-role); sends block when the receiver's queue for that kind is
	// full. Defaults to 64: deep enough that the paper's credit protocol,
	// not the transport, is what limits the pipeline.
	QueueDepth int

	// Drop, when non-nil, is consulted on every Send; returning true
	// silently discards the message before delivery or accounting. Fault
	// injection for protocol tests (GM itself is reliable, so the protocols
	// have no retransmit path — a dropped credit message stalls the
	// pipeline, which the StallTimeout watchdog must then catch). Drop is
	// called concurrently from every sending node and must be thread-safe.
	Drop func(m *Message) bool
	// StallTimeout, when positive, arms a watchdog that aborts the fabric
	// with ErrStalled if no message is sent or received for the given
	// duration. It turns a protocol deadlock into a clean, attributable
	// error instead of a hung pipeline. Callers that set it should also
	// call Fabric.Shutdown when the run completes.
	StallTimeout time.Duration
}

// ErrStalled is the abort cause recorded by the StallTimeout watchdog when
// fabric traffic dries up while nodes are still blocked.
var ErrStalled = errors.New("cluster: fabric stalled (no traffic within StallTimeout)")

// Fabric connects a fixed set of nodes.
type Fabric struct {
	cfg   Config
	nodes []*Node
	stats []LinkStats // indexed by node id; atomic access
	pair  []int64     // bytes sent per (from*n + to), atomic

	sessMu    sync.Mutex
	sessBytes map[int]int64 // bytes sent per session id (session != 0 only)

	done     chan struct{}
	abortErr error
	abort1   sync.Once

	activity int64 // bumped on every send/receive; watchdog food
	stop     chan struct{}
	stop1    sync.Once
}

// New creates a fabric with n nodes.
func New(n int, cfg Config) *Fabric {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	f := &Fabric{
		cfg:   cfg,
		nodes: make([]*Node, n),
		stats: make([]LinkStats, n),
		pair:  make([]int64, n*n),
		done:  make(chan struct{}),
		stop:  make(chan struct{}),
	}
	for i := range f.nodes {
		node := &Node{id: i, fabric: f}
		for k := range node.queues {
			node.queues[k] = make(chan *Message, cfg.QueueDepth)
		}
		f.nodes[i] = node
	}
	if cfg.StallTimeout > 0 {
		go f.watchdog(cfg.StallTimeout)
	}
	return f
}

// watchdog aborts the fabric when a full timeout period passes with no
// traffic. One quiet period can be an artefact of tick phase, so it requires
// two consecutive quiet checks at half the timeout each.
func (f *Fabric) watchdog(timeout time.Duration) {
	tick := time.NewTicker(timeout / 2)
	defer tick.Stop()
	last := atomic.LoadInt64(&f.activity)
	quiet := 0
	for {
		select {
		case <-tick.C:
			now := atomic.LoadInt64(&f.activity)
			if now == last {
				quiet++
				if quiet >= 2 {
					f.Abort(ErrStalled)
					return
				}
			} else {
				quiet = 0
				last = now
			}
		case <-f.done:
			return
		case <-f.stop:
			return
		}
	}
}

// Shutdown stops the watchdog goroutine, if one is armed. It is safe to call
// multiple times and on fabrics without a watchdog; pipeline drivers call it
// when their run completes so an idle-but-finished fabric is not aborted.
func (f *Fabric) Shutdown() {
	f.stop1.Do(func() { close(f.stop) })
}

// Node returns node id.
func (f *Fabric) Node(id int) *Node { return f.nodes[id] }

// NumNodes returns the node count.
func (f *Fabric) NumNodes() int { return len(f.nodes) }

// Stats returns a snapshot of per-node traffic counters.
func (f *Fabric) Stats() []LinkStats {
	out := make([]LinkStats, len(f.stats))
	for i := range f.stats {
		out[i] = LinkStats{
			BytesSent: atomic.LoadInt64(&f.stats[i].BytesSent),
			BytesRecv: atomic.LoadInt64(&f.stats[i].BytesRecv),
			MsgsSent:  atomic.LoadInt64(&f.stats[i].MsgsSent),
			MsgsRecv:  atomic.LoadInt64(&f.stats[i].MsgsRecv),
		}
	}
	return out
}

// PairBytes returns bytes sent from node a to node b.
func (f *Fabric) PairBytes(a, b int) int64 {
	return atomic.LoadInt64(&f.pair[a*len(f.nodes)+b])
}

// addSessionBytes accounts wire bytes to a resident-service session. Batch
// traffic (session 0) skips the lock entirely, so the hot path of one-shot
// runs is unchanged.
func (f *Fabric) addSessionBytes(session int, n int64) {
	f.sessMu.Lock()
	if f.sessBytes == nil {
		f.sessBytes = map[int]int64{}
	}
	f.sessBytes[session] += n
	f.sessMu.Unlock()
}

// SessionBytes returns the wire bytes sent so far on behalf of one session
// (0 for unknown sessions and for batch traffic, which is not keyed).
func (f *Fabric) SessionBytes(session int) int64 {
	f.sessMu.Lock()
	defer f.sessMu.Unlock()
	return f.sessBytes[session]
}

// Node is one cluster endpoint. A node's receive methods must be called from
// a single goroutine (the node's process), matching one PC per role.
type Node struct {
	id     int
	fabric *Fabric
	queues [numKinds]chan *Message
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// Send delivers msg to node `to`. It blocks only when the receiver's queue
// for this kind is full (transport backpressure; the protocols are designed
// so their own credit scheme keeps queues shallow).
func (n *Node) Send(to int, msg *Message) {
	f := n.fabric
	msg.From = n.id
	msg.To = to
	if f.cfg.Drop != nil && f.cfg.Drop(msg) {
		return // lost on the wire: no delivery, no accounting
	}
	atomic.AddInt64(&f.activity, 1)
	bytes := msg.wireBytes()
	if f.cfg.BandwidthBps > 0 {
		d := time.Duration(float64(bytes)/f.cfg.BandwidthBps*1e9) + f.cfg.Latency
		time.Sleep(d)
	}
	atomic.AddInt64(&f.stats[n.id].BytesSent, bytes)
	atomic.AddInt64(&f.stats[n.id].MsgsSent, 1)
	atomic.AddInt64(&f.stats[to].BytesRecv, bytes)
	atomic.AddInt64(&f.stats[to].MsgsRecv, 1)
	atomic.AddInt64(&f.pair[n.id*len(f.nodes)+to], bytes)
	if msg.Session != 0 {
		f.addSessionBytes(msg.Session, bytes)
	}
	select {
	case f.nodes[to].queues[msg.Kind] <- msg:
	case <-f.done:
	}
}

// TrySend is Send without backpressure: when the receiver's queue for this
// kind is full (or the fabric is aborted) the message is discarded and false
// is returned. Transport background traffic — retransmissions, control acks
// — uses it so a dead or departed peer whose queue nobody drains can never
// wedge the sender's transport loop; the caller's retry timer covers the
// loss.
func (n *Node) TrySend(to int, msg *Message) bool {
	f := n.fabric
	msg.From = n.id
	msg.To = to
	if f.cfg.Drop != nil && f.cfg.Drop(msg) {
		return true // lost on the wire, same as Send
	}
	select {
	case <-f.done:
		return false
	default:
	}
	select {
	case f.nodes[to].queues[msg.Kind] <- msg:
	default:
		return false
	}
	atomic.AddInt64(&f.activity, 1)
	bytes := msg.wireBytes()
	atomic.AddInt64(&f.stats[n.id].BytesSent, bytes)
	atomic.AddInt64(&f.stats[n.id].MsgsSent, 1)
	atomic.AddInt64(&f.stats[to].BytesRecv, bytes)
	atomic.AddInt64(&f.stats[to].MsgsRecv, 1)
	atomic.AddInt64(&f.pair[n.id*len(f.nodes)+to], bytes)
	if msg.Session != 0 {
		f.addSessionBytes(msg.Session, bytes)
	}
	return true
}

// Abort unblocks every pending Recv/Send with a nil result so node loops
// can unwind after a peer failed. The first recorded cause wins.
func (f *Fabric) Abort(cause error) {
	f.abort1.Do(func() {
		f.abortErr = cause
		close(f.done)
	})
}

// AbortCause returns the error passed to Abort, if any.
func (f *Fabric) AbortCause() error {
	select {
	case <-f.done:
		return f.abortErr
	default:
		return nil
	}
}

// Recv blocks until a message of the given kind arrives. It returns nil
// when the fabric has been aborted.
func (n *Node) Recv(kind MsgKind) *Message {
	select {
	case m := <-n.queues[kind]:
		atomic.AddInt64(&n.fabric.activity, 1)
		return m
	case <-n.fabric.done:
		return nil
	}
}

// Queue exposes the receive channel for one kind so a node process can
// select across kinds (e.g. a display goroutine multiplexing fabric traffic
// with local hand-offs). Combine with Done for abort handling.
func (n *Node) Queue(kind MsgKind) <-chan *Message { return n.queues[kind] }

// Done is closed when the fabric aborts.
func (n *Node) Done() <-chan struct{} { return n.fabric.done }

// TryRecv returns a message of the given kind if one is queued.
func (n *Node) TryRecv(kind MsgKind) (*Message, bool) {
	select {
	case m := <-n.queues[kind]:
		return m, true
	default:
		return nil, false
	}
}

// RecvTimeout waits up to d for a message of the given kind; see Net.
func (n *Node) RecvTimeout(kind MsgKind, d time.Duration) (*Message, bool) {
	// Fast path avoids a timer allocation when a message is already queued.
	if m, ok := n.TryRecv(kind); ok {
		atomic.AddInt64(&n.fabric.activity, 1)
		return m, false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case m := <-n.queues[kind]:
		atomic.AddInt64(&n.fabric.activity, 1)
		return m, false
	case <-t.C:
		return nil, true
	case <-n.fabric.done:
		return nil, false
	}
}
