package mpeg2

import (
	"strings"
	"testing"

	"tiledwall/internal/bits"
)

func TestSequenceHeaderRoundTrip(t *testing.T) {
	orig := &SequenceHeader{
		Width: 1920, Height: 1088,
		AspectRatio:   3,
		FrameRateCode: 4,
		BitRate:       200000,
		VBVBufferSize: 500,
		IntraQ:        DefaultIntraQuantMatrix,
		NonIntraQ:     DefaultNonIntraQuantMatrix,
		ProfileLevel:  0x44,
		Progressive:   true,
		ChromaFormat:  1,
	}
	w := bits.NewWriter(256)
	orig.Write(w)
	data := w.Bytes()

	r := bits.NewReader(data)
	if !bits.NextStartCodeReader(r) {
		t.Fatal("no start code")
	}
	r.Skip(32)
	got, err := ParseSequenceHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.NextStartCodeReader(r) {
		t.Fatal("no extension start code")
	}
	r.Skip(32)
	if err := ParseSequenceExtension(r, got); err != nil {
		t.Fatal(err)
	}
	if got.Width != orig.Width || got.Height != orig.Height {
		t.Errorf("size %dx%d, want %dx%d", got.Width, got.Height, orig.Width, orig.Height)
	}
	if got.BitRate != orig.BitRate {
		t.Errorf("bitrate %d, want %d", got.BitRate, orig.BitRate)
	}
	if got.VBVBufferSize != orig.VBVBufferSize {
		t.Errorf("vbv %d, want %d", got.VBVBufferSize, orig.VBVBufferSize)
	}
	if got.FrameRateCode != orig.FrameRateCode || got.AspectRatio != orig.AspectRatio {
		t.Errorf("rate/aspect %d/%d", got.FrameRateCode, got.AspectRatio)
	}
	if !got.Progressive || got.ChromaFormat != 1 || got.ProfileLevel != 0x44 {
		t.Errorf("extension fields: %+v", got)
	}
	if got.IntraQ != DefaultIntraQuantMatrix || got.NonIntraQ != DefaultNonIntraQuantMatrix {
		t.Error("default matrices not restored")
	}
}

func TestSequenceHeaderCustomMatrices(t *testing.T) {
	orig := &SequenceHeader{
		Width: 64, Height: 48, AspectRatio: 1, FrameRateCode: 5,
		BitRate: 1000, VBVBufferSize: 100, ChromaFormat: 1,
		CustomIntraQ: true, CustomNonIntraQ: true,
	}
	for i := range orig.IntraQ {
		orig.IntraQ[i] = uint8(8 + i%32)
		orig.NonIntraQ[i] = uint8(16 + i%16)
	}
	orig.IntraQ[0] = 8 // the intra DC weight is conventionally 8
	w := bits.NewWriter(256)
	orig.Write(w)
	r := bits.NewReader(w.Bytes())
	r.Skip(32)
	got, err := ParseSequenceHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.IntraQ != orig.IntraQ || got.NonIntraQ != orig.NonIntraQ {
		t.Error("custom matrices did not round-trip")
	}
}

func TestPictureHeaderRoundTrip(t *testing.T) {
	for _, picType := range []PictureType{PictureI, PictureP, PictureB} {
		orig := testPic(picType, true, true, true)
		orig.TemporalRef = 519
		orig.IntraDCPrecision = 2
		w := bits.NewWriter(64)
		orig.Write(w)

		r := bits.NewReader(w.Bytes())
		r.Skip(32)
		got, err := ParsePictureHeader(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bits.NextStartCodeReader(r) {
			t.Fatal("no extension")
		}
		r.Skip(32)
		if err := ParsePictureCodingExtension(r, got); err != nil {
			t.Fatal(err)
		}
		if got.TemporalRef != orig.TemporalRef || got.PicType != picType {
			t.Errorf("%s: tref/type %d/%s", picType, got.TemporalRef, got.PicType)
		}
		if got.FCode != orig.FCode {
			t.Errorf("%s: fcode %v, want %v", picType, got.FCode, orig.FCode)
		}
		if got.IntraDCPrecision != 2 || !got.QScaleType || !got.IntraVLCFormat || !got.AlternateScan {
			t.Errorf("%s: coding flags lost: %+v", picType, got)
		}
	}
}

func TestGOPHeaderRoundTrip(t *testing.T) {
	orig := &GOPHeader{TimeCode: 12345, ClosedGOP: true, BrokenLink: false}
	w := bits.NewWriter(16)
	orig.Write(w)
	r := bits.NewReader(w.Bytes())
	r.Skip(32)
	got, err := ParseGOPHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *orig {
		t.Errorf("got %+v, want %+v", got, orig)
	}
}

func TestParsePictureCodingExtensionRejectsUnsupported(t *testing.T) {
	p := testPic(PictureP, false, false, false)
	p.PictureStructure = 1 // field picture
	w := bits.NewWriter(64)
	p.Write(w)
	r := bits.NewReader(w.Bytes())
	// Skip picture header to the extension.
	r.Skip(32)
	if _, err := ParsePictureHeader(r); err != nil {
		t.Fatal(err)
	}
	bits.NextStartCodeReader(r)
	r.Skip(32)
	got := &PictureHeader{PicType: PictureP}
	err := ParsePictureCodingExtension(r, got)
	if err == nil || !strings.Contains(err.Error(), "field pictures") {
		t.Errorf("field pictures not rejected: %v", err)
	}
}

func TestFrameRate(t *testing.T) {
	if FrameRate(5) != 30 || FrameRate(3) != 25 || FrameRate(8) != 60 {
		t.Error("frame rate table broken")
	}
	if FrameRate(0) != 0 || FrameRate(9) != 0 {
		t.Error("invalid codes should map to 0")
	}
	if r := FrameRate(4); r < 29.96 || r > 29.98 {
		t.Errorf("29.97 = %f", r)
	}
}

func TestParseStreamErrors(t *testing.T) {
	if _, err := ParseStream(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ParseStream([]byte{0, 0, 1, 0xB8, 0, 0, 0, 0}); err == nil {
		t.Error("stream without sequence header accepted")
	}
	// A sequence header with no pictures.
	seq := testSeq(64, 48)
	w := bits.NewWriter(64)
	seq.Write(w)
	WriteSequenceEnd(w)
	if _, err := ParseStream(w.Bytes()); err == nil {
		t.Error("pictureless stream accepted")
	}
}

func TestDecoderRejectsTruncatedStream(t *testing.T) {
	seq := testSeq(64, 48)
	pic := testPic(PictureI, false, false, false)
	w := bits.NewWriter(256)
	seq.Write(w)
	pic.Write(w)
	// A slice header followed by garbage that dies mid-macroblock.
	w.AlignZero()
	w.WriteBits(0x000001, 24)
	w.WriteBits(1, 8)
	w.WriteBits(8, 5)  // quantiser
	w.WriteBit(0)      // extra_bit
	w.WriteBits(1, 1)  // address increment 1
	w.WriteBits(1, 1)  // macroblock_type: intra
	w.WriteBits(0, 10) // invalid: dct_dc_size luma '00'=1, then truncation
	dec, err := NewDecoder(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.DecodeAll(); err == nil {
		t.Error("truncated stream decoded without error")
	}
}

func TestPictureTypeString(t *testing.T) {
	if PictureI.String() != "I" || PictureP.String() != "P" || PictureB.String() != "B" {
		t.Error("PictureType.String broken")
	}
	if PictureType(9).String() == "" {
		t.Error("unknown type should still format")
	}
}
