package encoder

import (
	"errors"
	"fmt"

	"tiledwall/internal/bits"
	"tiledwall/internal/mpeg2"
)

// Config selects the stream parameters. The zero value is not usable; call
// (*Config).setDefaults via New, or fill every field.
type Config struct {
	Width, Height int     // must be multiples of 16
	FrameRateCode int     // table 6-4 code (5 = 30 fps)
	GOPSize       int     // N: display frames per GOP
	BSpacing      int     // M: anchor distance; 1 disables B pictures
	TargetBPP     float64 // average bits per pixel; 0 fixes the quantiser
	InitialQScale int     // starting quantiser_scale_code

	IntraDCPrecision int
	QScaleType       bool // nonlinear quantiser scale
	IntraVLCFormat   bool // use table B-15 for intra blocks
	AlternateScan    bool
	FCode            int // used for all f_code[s][t], 1..9
	SearchRange      int // full-pel motion search range
	AdaptiveQuant    bool

	// ClosedGOP makes every GOP self-contained: the B pictures that would
	// reference the next GOP's I picture are coded as P instead, and the GOP
	// headers set closed_gop. Required by GOP-level parallel decoding
	// (Table 1 baseline), where whole GOPs go to different nodes.
	ClosedGOP bool

	// IntraQMatrix / NonIntraQMatrix override the default quantisation
	// matrices (raster order); nil keeps the standard defaults. Custom
	// matrices are signalled in the sequence header.
	IntraQMatrix    *[64]uint8
	NonIntraQMatrix *[64]uint8
}

func (c *Config) setDefaults() error {
	if c.Width <= 0 || c.Height <= 0 || c.Width%16 != 0 || c.Height%16 != 0 {
		return fmt.Errorf("encoder: dimensions %dx%d must be positive multiples of 16", c.Width, c.Height)
	}
	if c.FrameRateCode == 0 {
		c.FrameRateCode = 5
	}
	if c.GOPSize == 0 {
		c.GOPSize = 12
	}
	if c.BSpacing == 0 {
		c.BSpacing = 3
	}
	if c.GOPSize%c.BSpacing != 0 {
		return fmt.Errorf("encoder: GOP size %d must be a multiple of B spacing %d", c.GOPSize, c.BSpacing)
	}
	if c.InitialQScale == 0 {
		c.InitialQScale = 8
	}
	if c.FCode == 0 {
		c.FCode = 3 // ±32 px
	}
	if c.FCode < 1 || c.FCode > 9 {
		return fmt.Errorf("encoder: f_code %d out of range", c.FCode)
	}
	if c.SearchRange == 0 {
		c.SearchRange = 15
	}
	if c.IntraDCPrecision < 0 || c.IntraDCPrecision > 3 {
		return fmt.Errorf("encoder: intra_dc_precision %d out of range", c.IntraDCPrecision)
	}
	return nil
}

// Stats accumulates encoding statistics.
type Stats struct {
	Pictures       int
	PicturesByType [4]int // indexed by mpeg2.PictureType
	BitsByType     [4]int64
	TotalBits      int64
	SkippedMBs     int64
	IntraMBs       int64
	InterMBs       int64
}

// Encoder encodes frames pushed in display order into an MPEG-2 elementary
// stream. Frames are *mpeg2.PixelBuf windows covering the full picture.
type Encoder struct {
	cfg Config
	seq *mpeg2.SequenceHeader
	w   *bits.Writer

	refA, refB *mpeg2.PixelBuf // reconstructed anchors, older/newer
	pendingB   []*mpeg2.PixelBuf
	pendingIdx []int

	displayIdx int
	qByType    [4]float64 // adaptive quantiser per picture type
	avgAct     float64    // average macroblock activity of the last picture
	stats      Stats
	flushed    bool
}

// New creates an Encoder and emits the sequence header.
func New(cfg Config) (*Encoder, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	bitRate := int(cfg.TargetBPP * float64(cfg.Width*cfg.Height) * mpeg2.FrameRate(cfg.FrameRateCode) / 400)
	if bitRate <= 0 {
		bitRate = 0x3FFFF
	}
	seq := &mpeg2.SequenceHeader{
		Width:         cfg.Width,
		Height:        cfg.Height,
		AspectRatio:   1,
		FrameRateCode: cfg.FrameRateCode,
		BitRate:       bitRate,
		VBVBufferSize: 112,
		IntraQ:        mpeg2.DefaultIntraQuantMatrix,
		NonIntraQ:     mpeg2.DefaultNonIntraQuantMatrix,
		ProfileLevel:  0x44, // Main Profile @ High Level
		Progressive:   true,
		ChromaFormat:  1,
	}
	if cfg.IntraQMatrix != nil {
		seq.IntraQ = *cfg.IntraQMatrix
		seq.CustomIntraQ = true
	}
	if cfg.NonIntraQMatrix != nil {
		seq.NonIntraQ = *cfg.NonIntraQMatrix
		seq.CustomNonIntraQ = true
	}
	e := &Encoder{cfg: cfg, seq: seq, w: bits.NewWriter(1 << 16)}
	for i := range e.qByType {
		e.qByType[i] = float64(cfg.InitialQScale)
	}
	seq.Write(e.w)
	return e, nil
}

// Seq returns the sequence header being emitted.
func (e *Encoder) Seq() *mpeg2.SequenceHeader { return e.seq }

// Stats returns accumulated statistics.
func (e *Encoder) Stats() Stats { return e.stats }

// Push encodes the next display-order frame.
func (e *Encoder) Push(f *mpeg2.PixelBuf) error {
	if e.flushed {
		return errors.New("encoder: Push after Flush")
	}
	if f.W != e.cfg.Width || f.H != e.cfg.Height || f.X0 != 0 || f.Y0 != 0 {
		return fmt.Errorf("encoder: frame geometry %d,%d %dx%d does not match config", f.X0, f.Y0, f.W, f.H)
	}
	i := e.displayIdx
	e.displayIdx++
	inGOP := i % e.cfg.GOPSize
	tailB := e.cfg.ClosedGOP && inGOP > e.cfg.GOPSize-e.cfg.BSpacing
	switch {
	case inGOP == 0:
		g := &mpeg2.GOPHeader{ClosedGOP: i == 0 || e.cfg.ClosedGOP}
		// Encode the anchor first (decode order), then the buffered B
		// pictures that display before it.
		if err := e.encodeAnchor(f, mpeg2.PictureI, i, g); err != nil {
			return err
		}
	case inGOP%e.cfg.BSpacing == 0 || tailB:
		// In closed-GOP mode the pictures that would be the GOP's trailing
		// B pictures (referencing the next GOP's I) are coded as P.
		if err := e.encodeAnchor(f, mpeg2.PictureP, i, nil); err != nil {
			return err
		}
	default:
		e.pendingB = append(e.pendingB, f)
		e.pendingIdx = append(e.pendingIdx, i)
	}
	return nil
}

func (e *Encoder) encodeAnchor(f *mpeg2.PixelBuf, t mpeg2.PictureType, displayIdx int, gop *mpeg2.GOPHeader) error {
	if gop != nil {
		gop.Write(e.w)
	}
	recon, err := e.encodePicture(f, t, displayIdx, e.refB, nil)
	if err != nil {
		return err
	}
	e.refA, e.refB = e.refB, recon
	// Now the buffered B pictures (they reference refA and refB).
	for k, bf := range e.pendingB {
		if _, err := e.encodePicture(bf, mpeg2.PictureB, e.pendingIdx[k], e.refA, e.refB); err != nil {
			return err
		}
	}
	e.pendingB = e.pendingB[:0]
	e.pendingIdx = e.pendingIdx[:0]
	return nil
}

// Flush encodes any trailing buffered B pictures (as P pictures, since no
// future anchor exists) and emits the sequence end code.
func (e *Encoder) Flush() error {
	if e.flushed {
		return nil
	}
	for k, bf := range e.pendingB {
		recon, err := e.encodePicture(bf, mpeg2.PictureP, e.pendingIdx[k], e.refB, nil)
		if err != nil {
			return err
		}
		e.refA, e.refB = e.refB, recon
	}
	e.pendingB = nil
	e.pendingIdx = nil
	mpeg2.WriteSequenceEnd(e.w)
	e.flushed = true
	return nil
}

// Bytes returns the encoded stream; call after Flush.
func (e *Encoder) Bytes() []byte { return e.w.Bytes() }

// EncodeFrames is a convenience wrapping New/Push/Flush for in-memory frame
// slices.
func EncodeFrames(cfg Config, frames []*mpeg2.PixelBuf) ([]byte, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, f := range frames {
		if err := e.Push(f); err != nil {
			return nil, err
		}
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}
