package conformance

import (
	"errors"
	"testing"

	"tiledwall/internal/service"
	"tiledwall/internal/system"
)

// TestResidentChaosSoak is the resident-service chaos oracle on both
// transports: one warm recovery-enabled wall per configuration, concurrent
// ragged-chunk sessions, a seeded decoder kill and splitter kill per wall,
// and (TCP) seeded hard link resets mid-flight. Every session must return
// with success or a typed error, successful sessions must be exactly-once,
// clean sessions must stay bit-exact with the serial decode, and the wall
// must close cleanly afterwards.
func TestResidentChaosSoak(t *testing.T) {
	seed := chaosSeed(t)
	p := ParamsForSeed(seed)
	stream, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opt  ResidentChaosOptions
	}{
		{"fabric-kills", ResidentChaosOptions{
			Seed: seed, Transport: "fabric", Sessions: 4,
			KillDecoder: true, KillSplitter: true,
		}},
		{"tcp-kills-and-links", ResidentChaosOptions{
			Seed: seed, Transport: "tcp", Sessions: 4,
			KillDecoder: true, KillSplitter: true, LinkFailures: 2,
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			results, err := RunResidentChaos(stream, ResidentChaosConfigs(), tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				succeeded, clean := 0, 0
				for _, s := range r.Sessions {
					if s.Err != nil {
						if !TypedSessionError(s.Err) {
							t.Errorf("%s %s: untyped session error: %v", r.Name(), s.Name, s.Err)
						}
						continue
					}
					succeeded++
					if s.ExactlyOnceViolation != "" {
						t.Errorf("%s %s: %s (recovery: %s)", r.Name(), s.Name, s.ExactlyOnceViolation, s.Recovery)
					}
					if s.Recovery.Clean() {
						clean++
						if s.Divergence != nil {
							t.Errorf("%s %s: clean session diverged from serial: %s", r.Name(), s.Name, s.Divergence)
						}
					}
				}
				if succeeded == 0 {
					t.Errorf("%s: no session succeeded (wall recovery: %s)", r.Name(), r.WallRecovery)
				}
				if r.CloseErr != nil {
					t.Errorf("%s: wall close failed after chaos: %v", r.Name(), r.CloseErr)
				}
				t.Logf("%s: %d/%d sessions ok (%d clean), wall recovery %s, health %s",
					r.Name(), succeeded, len(r.Sessions), clean, r.WallRecovery, r.Health)
			}
		})
	}
}

// TestResidentCorruptIsolation pins failure isolation: one corrupt stream fed
// concurrently with good sessions on a recovery-enabled wall must fail (or
// degrade) alone — the good sessions stay clean and bit-exact, and the wall
// outlives the poison.
func TestResidentCorruptIsolation(t *testing.T) {
	seed := chaosSeed(t)
	p := ParamsForSeed(seed)
	stream, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, transport := range []string{"fabric", "tcp"} {
		transport := transport
		t.Run(transport, func(t *testing.T) {
			t.Parallel()
			for _, kind := range CorruptionKinds() {
				base := ResidentChaosConfigs()[0]
				corruptErr, goodErrs, divs, closeErr, err := RunCorruptIsolation(stream, base, transport, kind, seed)
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				// The corrupt session may fail typed, or — when the damage
				// happens to survive syntax checks — decode to different
				// pixels; it must never fail untyped or take the wall down.
				if corruptErr != nil && !TypedSessionError(corruptErr) {
					t.Errorf("%s: corrupt session failed untyped: %v", kind, corruptErr)
				}
				for i, gerr := range goodErrs {
					if gerr != nil {
						t.Errorf("%s: good session %d hurt by sibling corruption: %v", kind, i, gerr)
					} else if divs[i] != nil {
						t.Errorf("%s: good session %d diverged: %s", kind, i, divs[i])
					}
				}
				if closeErr != nil {
					t.Errorf("%s: wall close failed: %v", kind, closeErr)
				}
				t.Logf("%s/%s: corrupt session: %v", transport, kind, corruptErr)
			}
		})
	}
}

// TestWallHealthAndRetryAfter pins the health state machine's default and the
// admission error's retry contract without faults: a recovery-enabled wall is
// Healthy at rest, Open past MaxSessions returns *TooManySessionsError with a
// positive RetryAfter hint, and errors.Is still matches ErrTooManySessions.
func TestWallHealthAndRetryAfter(t *testing.T) {
	p := ParamsForSeed(1)
	stream, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := recoveryForIsolation(ResidentChaosConfigs()[0], "fabric", 1)
	cfg.MaxSessions = 1
	w, err := system.NewResidentWall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if h := w.Health(); h != service.Healthy {
		t.Fatalf("idle wall health = %s, want healthy", h)
	}
	sess, err := w.Open("only")
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Open("overflow")
	if err == nil {
		t.Fatal("Open past MaxSessions succeeded")
	}
	if !errors.Is(err, service.ErrTooManySessions) {
		t.Fatalf("overflow error does not match ErrTooManySessions: %v", err)
	}
	var tme *service.TooManySessionsError
	if !errors.As(err, &tme) {
		t.Fatalf("overflow error is not *TooManySessionsError: %T", err)
	}
	if tme.RetryAfter <= 0 {
		t.Fatalf("RetryAfter hint not positive: %v", tme.RetryAfter)
	}
	if tme.Active != 1 || tme.Max != 1 {
		t.Fatalf("admission counts = %d/%d, want 1/1", tme.Active, tme.Max)
	}
	if err := sess.Feed(stream); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if h := w.Health(); h != service.Healthy {
		t.Fatalf("health after clean session = %s, want healthy", h)
	}
}
