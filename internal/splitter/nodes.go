package splitter

import (
	"fmt"
	"time"

	"tiledwall/internal/bits"
	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
)

// RootConfig wires the root splitter node.
type RootConfig struct {
	Stream []byte
	// SplitterNodes lists the k second-level splitter node ids in
	// round-robin order.
	SplitterNodes []int
	// Dynamic enables credit-based splitter selection instead of strict
	// round-robin: each picture goes to the splitter with the most free
	// receive buffers, so a splitter stuck on an expensive picture is not
	// handed more work while an idle one waits. This implements the dynamic
	// load balancing the paper's §6 leaves as future work; the ANID/NSID
	// ordering protocol is unaffected because the root always announces the
	// actual next assignee.
	Dynamic bool
}

// RootResult reports the root splitter's run.
type RootResult struct {
	Pictures int
	ScanTime time.Duration
	CopyTime time.Duration
	WaitTime time.Duration
	SendTime time.Duration
}

// RunRoot scans the stream at picture level (start codes only — the cheap
// split of Table 1), copies each picture unit into a send buffer and
// round-robins it to the second-level splitters. Before every send except
// the first it waits for an ack from any splitter (two posted receive
// buffers at each splitter make the pipeline two pictures deep). The NSID —
// the splitter responsible for the next picture — rides along so splitters
// can fill in the ANID without knowing each other (§4.5, Table 3).
//
// RunRoot is the bare batch protocol driver (benchmarks and load-balance
// tests); the resident wall's root — sessions, retention, recovery — lives
// in internal/service.
func RunRoot(node cluster.Net, cfg RootConfig) (*RootResult, error) {
	res := &RootResult{}
	k := len(cfg.SplitterNodes)
	if k == 0 {
		return nil, fmt.Errorf("splitter: root needs at least one second-level splitter")
	}
	data := cfg.Stream

	// The root's per-picture work is exactly the paper's: find the picture
	// boundaries by start-code scan and copy the bytes out. Flow control is
	// credit-based (two posted receive buffers per splitter); the assignee
	// of picture p+1 is fixed before p is sent so its id can ride along as
	// the NSID.
	credits := make([]int, k)
	nodeIdx := make(map[int]int, k)
	for i, id := range cfg.SplitterNodes {
		credits[i] = 2
		nodeIdx[id] = i
	}
	onAck := func(m *cluster.Message) {
		credits[nodeIdx[m.From]]++
	}
	takeAck := func() error {
		m := node.Recv(cluster.MsgAck)
		if m == nil {
			return fmt.Errorf("splitter: root aborted while waiting for splitter ack")
		}
		onAck(m)
		return nil
	}
	// choose picks the next assignee: strict round-robin, or (Dynamic) the
	// splitter with the most free buffers, ties broken round-robin.
	rr := 0
	choose := func() int {
		if !cfg.Dynamic {
			c := rr
			rr = (rr + 1) % k
			return c
		}
		best := rr
		for off := 0; off < k; off++ {
			i := (rr + off) % k
			if credits[i] > credits[best] {
				best = i
			}
		}
		rr = (best + 1) % k
		return best
	}

	a := choose()
	pics := 0
	picStart := -1
	emit := func(end int) error {
		if picStart < 0 {
			return nil
		}
		t0 := time.Now()
		buf := make([]byte, end-picStart)
		copy(buf, data[picStart:end])
		res.CopyTime += time.Since(t0)
		picStart = -1

		t0 = time.Now()
		for credits[a] == 0 {
			if err := takeAck(); err != nil {
				return err
			}
		}
		res.WaitTime += time.Since(t0)
		// Drain any further acks without blocking so Dynamic sees fresh
		// credit counts.
		for {
			m, ok := node.TryRecv(cluster.MsgAck)
			if !ok {
				break
			}
			onAck(m)
		}
		credits[a]--
		next := choose()

		t0 = time.Now()
		node.Send(cfg.SplitterNodes[a], &cluster.Message{
			Kind:    cluster.MsgPicture,
			Seq:     pics,
			Tag:     cfg.SplitterNodes[next], // NSID
			Payload: buf,
		})
		res.SendTime += time.Since(t0)
		a = next
		pics++
		return nil
	}

	scanStart := time.Now()
	for off := bits.NextStartCode(data, 0); off >= 0; off = bits.NextStartCode(data, off+4) {
		code := data[off+3]
		switch {
		case code == bits.PictureStartCode:
			res.ScanTime += time.Since(scanStart)
			if err := emit(off); err != nil {
				return res, err
			}
			picStart = off
			scanStart = time.Now()
		case code == bits.GroupStartCode, code == bits.SequenceHeaderCod, code == bits.SequenceEndCode:
			res.ScanTime += time.Since(scanStart)
			if err := emit(off); err != nil {
				return res, err
			}
			scanStart = time.Now()
		}
	}
	res.ScanTime += time.Since(scanStart)
	if err := emit(len(data)); err != nil {
		return res, err
	}
	res.Pictures = pics
	// Tell every splitter the stream has ended. The end marker carries the
	// total picture count (in Tag): a decoder may see a Final forwarded by a
	// splitter that finished early before the last pictures from the other
	// splitters arrive, so it exits only once it has decoded them all.
	for i := 0; i < k; i++ {
		node.Send(cfg.SplitterNodes[i], &cluster.Message{Kind: cluster.MsgPicture, Seq: -1, Tag: pics})
	}
	return res, nil
}

// SecondResult reports a second-level splitter's run (one session on a
// resident splitter server).
type SecondResult struct {
	Pictures   int
	Breakdown  metrics.Breakdown      // PhaseWork = splitting, PhaseReceive = waiting for root, PhaseWaitMB = waiting for decoder acks
	Split      metrics.SplitBreakdown // PhaseWork resolved into scan/parse/sort, plus serialization from PhaseServe
	SPBytes    int64                  // serialised sub-picture bytes produced
	InputBytes int64                  // picture bytes received
	// SkippedSubPics counts tiles reduced to ROI skip markers (subscription
	// sessions only; zero on a full subscription).
	SkippedSubPics int64
}

// FoldSplit merges the splitter's phase breakdown into the result and models
// the node's PhaseWork as the splitting stage's critical path: the parse
// region's timeshared wall time is replaced by the slowest worker lane. This
// is the per-node busy methodology of Result.Modeled (EXPERIMENTS.md) applied
// one level down — each worker stands for a core of the splitter PC. On hosts
// with a core per worker wall and critical path coincide and the adjustment
// vanishes; ParseWall keeps the raw figure either way.
func (r *SecondResult) FoldSplit(ms *MBSplitter) {
	bd := ms.Breakdown()
	r.Split.Merge(bd)
	if over := bd.ParseWall - bd.Durations[metrics.SplitParse]; over > 0 {
		w := &r.Breakdown.Durations[metrics.PhaseWork]
		if *w -= over; *w < 0 {
			*w = 0
		}
	}
}
