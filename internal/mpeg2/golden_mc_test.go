package mpeg2

import (
	"bytes"
	"math/rand"
	"testing"
)

// Golden motion-compensation suite: every specialised half-pel kernel must
// be bit-exact against samplePlaneRef, the original scalar implementation,
// across both block geometries (16×16 luma, 8×8 chroma), all four phases,
// and randomised strides, offsets and pixel content.

func TestGoldenSamplePlane(t *testing.T) {
	rng := rand.New(rand.NewSource(9301))
	for trial := 0; trial < 2000; trial++ {
		w := 8
		if rng.Intn(2) == 0 {
			w = 16
		}
		h := w
		stride := w + 1 + rng.Intn(64)
		rows := h + 1 + rng.Intn(8)
		src := make([]uint8, stride*rows+w+1)
		for i := range src {
			src[i] = uint8(rng.Intn(256))
		}
		maxSI := len(src) - ((h)*stride + w + 1)
		si := rng.Intn(maxSI + 1)
		for hy := 0; hy <= 1; hy++ {
			for hx := 0; hx <= 1; hx++ {
				want := make([]uint8, w*h)
				got := make([]uint8, w*h)
				samplePlaneRef(want, w, h, src, stride, si, hx, hy)
				samplePlane(got, w, h, src, stride, si, hx, hy)
				if !bytes.Equal(want, got) {
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("phase (hx=%d,hy=%d) w=%d stride=%d si=%d: first divergence at %d: ref %d fast %d",
								hx, hy, w, stride, si, i, want[i], got[i])
						}
					}
				}
			}
		}
	}
}

// TestGoldenSamplePlaneExtremes drives the SWAR averages through all-0x00,
// all-0xff and alternating patterns where inter-lane carry bugs surface.
func TestGoldenSamplePlaneExtremes(t *testing.T) {
	const w, h, stride = 16, 16, 24
	patterns := [][2]uint8{{0, 0}, {255, 255}, {0, 255}, {255, 0}, {1, 254}, {127, 128}}
	for _, p := range patterns {
		src := make([]uint8, stride*(h+1)+w+1)
		for i := range src {
			src[i] = p[i%2]
		}
		for hy := 0; hy <= 1; hy++ {
			for hx := 0; hx <= 1; hx++ {
				want := make([]uint8, w*h)
				got := make([]uint8, w*h)
				samplePlaneRef(want, w, h, src, stride, 0, hx, hy)
				samplePlane(got, w, h, src, stride, 0, hx, hy)
				if !bytes.Equal(want, got) {
					t.Fatalf("pattern %v phase (hx=%d,hy=%d): kernels diverge", p, hx, hy)
				}
			}
		}
	}
}

func TestGoldenAvgBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(9302))
	for trial := 0; trial < 2000; trial++ {
		n := 8 * (1 + rng.Intn(32))
		a := make([]uint8, n)
		b := make([]uint8, n)
		for i := range a {
			a[i] = uint8(rng.Intn(256))
			b[i] = uint8(rng.Intn(256))
		}
		want := make([]uint8, n)
		for i := range want {
			want[i] = uint8((int32(a[i]) + int32(b[i]) + 1) >> 1)
		}
		got := append([]uint8(nil), a...)
		avgBytes(got, b)
		if !bytes.Equal(want, got) {
			t.Fatalf("avgBytes diverges from scalar rounding average (n=%d)", n)
		}
	}
}
