package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/pdec"
	"tiledwall/internal/recovery"
	"tiledwall/internal/splitter"
)

// Config describes a resident wall. The grid fields mirror the batch
// system.Config; the service-only fields bound admission.
type Config struct {
	// K is the number of second-level splitters (0 = combined root+splitter).
	K int
	// M, N is the decoder grid; Overlap the projector blend band in pixels.
	M, N, Overlap int
	// MaxFCode sizes decoder halos for the whole wall lifetime (default 3);
	// every session's motion vectors must fit it.
	MaxFCode int

	DynamicBalance    bool
	SplitWorkers      int
	UnbatchedExchange bool
	Pooled            bool
	CollectFrames     bool

	// Fabric configures the in-process transport built by New when Transport
	// is nil.
	Fabric cluster.Config
	// Transport, when set, supplies the wiring instead (e.g. a
	// cluster.TCPTransport spanning processes). It must have exactly
	// NumNodes() nodes and is not shut down by Wall.Close.
	Transport cluster.Transport
	// LocalNodes restricts which node loops this process runs (nil = all).
	// A multi-process wall gives each process the same grid and transport
	// topology but a disjoint LocalNodes subset; only the process hosting
	// node 0 (the root) can open sessions, the others Wait.
	LocalNodes []int

	// OnTileFrame, when set, receives every decoded tile frame hosted by
	// this process (display order per tile per session) — the display-server
	// hook of a multi-process wall, independent of CollectFrames.
	OnTileFrame func(session, displayIdx, tile int, buf *mpeg2.PixelBuf)

	// MaxSessions bounds concurrently open sessions (default 8); Open fails
	// with a *TooManySessionsError (wrapping ErrTooManySessions) beyond it.
	MaxSessions int
	// MaxInFlightPictures bounds pictures per session between Feed and the
	// splitter's receipt ack; Feed blocks when the bound is reached
	// (default 8).
	MaxInFlightPictures int

	// Recovery, when Enabled, makes the resident wall fault-tolerant: the
	// local splitter and decoder loops run supervised (heartbeat leases,
	// respawn with in-band session re-join), the root retains and replays
	// unacked pictures, credit waits are deadline-bounded, decoders conceal
	// lost pictures, and a broken session fails alone with a typed error.
	// Composes with Pooled: retained payloads carry slab references, so
	// replay and recycling share buffers safely (DESIGN.md §9).
	Recovery recovery.Config
	// Chaos injects crashes for tests and soaks; each kill fires on the
	// named node's first incarnation only.
	Chaos recovery.ChaosPlan
}

func (c *Config) defaults() {
	if c.MaxFCode == 0 {
		c.MaxFCode = 3
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.MaxInFlightPictures <= 0 {
		c.MaxInFlightPictures = 8
	}
}

// NumNodes returns the node count the wall's transport must provide:
// root, k splitters, m×n decoders.
func (c Config) NumNodes() int { return 1 + c.K + c.M*c.N }

var (
	// ErrTooManySessions is returned by Open when MaxSessions sessions are
	// already active.
	ErrTooManySessions = errors.New("service: too many open sessions")
	// ErrWallClosed is returned by Open after Close has begun.
	ErrWallClosed = errors.New("service: wall closed")
	// ErrSessionClosed is returned by Feed/Close on an already-closed session.
	ErrSessionClosed = errors.New("service: session closed")
	// ErrNoLocalRoot is returned by Open on a wall whose LocalNodes subset
	// does not include the root; sessions are fed from the root process.
	ErrNoLocalRoot = errors.New("service: root node is not local to this process")
)

// workKind tags items on the feed→root work queue.
type workKind uint8

const (
	workOpen workKind = iota
	workPicture
	workFinal
	workShutdown
	// workSubscribe carries a subscription/trick-play change (payload is the
	// FlagSubscribe control encoding). The root holds it until the next I
	// picture it ships for the session, then broadcasts it to the splitters.
	workSubscribe
)

type workItem struct {
	sess    *Session
	kind    workKind
	payload []byte // header prefix (open) or picture unit (picture)
	index   int    // per-session picture index, or the total for a final
}

// Wall is a resident decoding pipeline: transport, root, splitters and tile
// decoders built once by New and alive until Close.
type Wall struct {
	cfg   Config
	tr    cluster.Transport
	ownTr bool

	splitterIDs []int
	decoderIDs  []int
	hasRoot     bool

	work chan workItem
	quit chan struct{}
	wg   sync.WaitGroup

	mu         sync.Mutex
	idle       *sync.Cond
	sessions   map[int]*Session
	nextID     int
	active     int
	closed     bool
	closeOnce  sync.Once
	closeErr   error
	avgSession time.Duration // EWMA of completed session durations (RetryAfter)

	// rv is the recovery state; nil unless Config.Recovery.Enabled.
	rv *wallRecovery

	// Load-snapshot counters, maintained with atomics so Load never touches
	// w.mu and the feed hot path never touches a lock: loadAct mirrors
	// active, loadPics counts feed tokens held (pictures between Feed and
	// the splitter's receipt ack), loadBytes counts picture bytes queued
	// between Feed and the root's dequeue.
	loadAct   atomic.Int64
	loadPics  atomic.Int64
	loadBytes atomic.Int64
}

// Load is a cheap point-in-time load snapshot of a wall, read by fleet
// routers on every admission decision. It is maintained with atomic counters
// off to the side of the session machinery: taking it contends with neither
// the open/close lock nor the feed hot path, and allocates nothing.
type Load struct {
	// ActiveSessions and MaxSessions are the admission occupancy.
	ActiveSessions int
	MaxSessions    int
	// InFlightPictures counts pictures between Session.Feed and the
	// splitter's receipt ack (the feed tokens currently held), summed over
	// all sessions — the backlog the pipeline is chewing on.
	InFlightPictures int
	// QueuedBytes counts picture bytes accepted by Feed but not yet
	// dequeued by the root — the feed queue depth in bytes.
	QueuedBytes int64
}

// Load snapshots the wall's current load without taking the open/close lock.
// The three counters are read independently, so a snapshot taken mid-update
// may be momentarily inconsistent between fields; each field is exact.
func (w *Wall) Load() Load {
	return Load{
		ActiveSessions:   int(w.loadAct.Load()),
		MaxSessions:      w.cfg.MaxSessions,
		InFlightPictures: int(w.loadPics.Load()),
		QueuedBytes:      w.loadBytes.Load(),
	}
}

// New builds the wall and starts every node server. The caller must Close it.
func New(cfg Config) (*Wall, error) {
	cfg.defaults()
	if cfg.M < 1 || cfg.N < 1 || cfg.K < 0 {
		return nil, fmt.Errorf("service: invalid grid 1-%d-(%d,%d)", cfg.K, cfg.M, cfg.N)
	}
	tr := cfg.Transport
	own := false
	if tr == nil {
		tr = cluster.New(cfg.NumNodes(), cfg.Fabric)
		own = true
	} else if tr.NumNodes() != cfg.NumNodes() {
		return nil, fmt.Errorf("service: transport has %d nodes, grid 1-%d-(%d,%d) needs %d",
			tr.NumNodes(), cfg.K, cfg.M, cfg.N, cfg.NumNodes())
	}
	local := func(int) bool { return true }
	if cfg.LocalNodes != nil {
		set := map[int]bool{}
		for _, id := range cfg.LocalNodes {
			if id < 0 || id >= cfg.NumNodes() {
				return nil, fmt.Errorf("service: local node %d out of range [0,%d)", id, cfg.NumNodes())
			}
			set[id] = true
		}
		local = func(id int) bool { return set[id] }
	}
	nTiles := cfg.M * cfg.N
	w := &Wall{
		cfg:      cfg,
		tr:       tr,
		ownTr:    own,
		hasRoot:  local(0),
		work:     make(chan workItem, cfg.MaxSessions*cfg.MaxInFlightPictures),
		quit:     make(chan struct{}),
		sessions: map[int]*Session{},
	}
	w.idle = sync.NewCond(&w.mu)
	for i := 0; i < cfg.K; i++ {
		w.splitterIDs = append(w.splitterIDs, 1+i)
	}
	for t := 0; t < nTiles; t++ {
		w.decoderIDs = append(w.decoderIDs, 1+cfg.K+t)
	}
	if cfg.Recovery.Enabled {
		w.rv = newWallRecovery(cfg.Recovery, cfg.Chaos, cfg.K, nTiles, cfg.Pooled)
	}

	// Wake a Close blocked on active sessions if the transport aborts.
	go func() {
		select {
		case <-tr.Done():
			w.mu.Lock()
			w.idle.Broadcast()
			w.mu.Unlock()
		case <-w.quit:
		}
	}()

	for i := 0; i < cfg.K; i++ {
		if !local(w.splitterIDs[i]) {
			continue
		}
		i := i
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			if w.rv != nil {
				w.runSplitterSupervised(i)
				return
			}
			err := splitter.ServeSecond(tr.Port(w.splitterIDs[i]), splitter.ServeConfig{
				Index:        i,
				M:            cfg.M,
				N:            cfg.N,
				Overlap:      cfg.Overlap,
				DecoderNodes: w.decoderIDs,
				RootNode:     0,
				Pooled:       cfg.Pooled,
				SplitWorkers: cfg.SplitWorkers,
				OnResult:     w.onSecondResult,
			})
			if err != nil {
				tr.Abort(err)
			}
		}()
	}
	for t := 0; t < nTiles; t++ {
		if !local(w.decoderIDs[t]) {
			continue
		}
		t := t
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			if w.rv != nil {
				w.runDecoderSupervised(t)
				return
			}
			if err := pdec.Serve(tr.Port(w.decoderIDs[t]), w.decoderServeCfg(t)); err != nil {
				tr.Abort(err)
			}
		}()
	}
	if w.hasRoot {
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			if err := w.runRoot(); err != nil {
				tr.Abort(err)
			}
		}()
	}
	return w, nil
}

// decoderServeCfg builds one local tile decoder's serve configuration;
// supervised incarnations add their Recovery wiring on top.
func (w *Wall) decoderServeCfg(t int) pdec.ServeConfig {
	scfg := pdec.ServeConfig{
		Tile:           t,
		M:              w.cfg.M,
		N:              w.cfg.N,
		Overlap:        w.cfg.Overlap,
		MaxFCode:       w.cfg.MaxFCode,
		TileNode:       func(tile int) int { return w.decoderIDs[tile] },
		RootNode:       0,
		UnbatchedSends: w.cfg.UnbatchedExchange,
		Pooled:         w.cfg.Pooled,
		OnResult:       w.onDecoderResult,
	}
	// Recovery always observes emissions: the registry's per-tile frontier
	// is what a respawned decoder resumes from.
	if w.cfg.CollectFrames || w.cfg.OnTileFrame != nil || w.rv != nil {
		scfg.OnFrame = w.onFrame
	}
	return scfg
}

// Wait blocks until this process's node loops exit — a clean shutdown
// broadcast from the (possibly remote) root, or a transport abort, whose
// cause is returned. Worker processes of a multi-process wall call Wait;
// the root process drives sessions and calls Close.
func (w *Wall) Wait() error {
	w.wg.Wait()
	return w.tr.AbortCause()
}

// Transport exposes the wall's transport (stats, per-pair and per-session
// byte counters).
func (w *Wall) Transport() cluster.Transport { return w.tr }

// Open admits a new session. The name is informational (results, errors).
func (w *Wall) Open(name string) (*Session, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.tr.AbortCause(); err != nil {
		return nil, err
	}
	if !w.hasRoot {
		return nil, ErrNoLocalRoot
	}
	if w.closed {
		return nil, ErrWallClosed
	}
	if w.active >= w.cfg.MaxSessions {
		return nil, &TooManySessionsError{
			Active:     w.active,
			Max:        w.cfg.MaxSessions,
			RetryAfter: w.retryAfterLocked(),
		}
	}
	w.nextID++
	s := &Session{
		w:         w,
		id:        w.nextID,
		name:      name,
		openedAt:  time.Now(),
		scanner:   newUnitScanner(),
		tokens:    make(chan struct{}, w.cfg.MaxInFlightPictures),
		drained:   make(chan struct{}),
		failedCh:  make(chan struct{}),
		splitters: make([]*splitter.SecondResult, maxInt(1, w.cfg.K)),
		decoders:  make([]*pdec.Result, w.cfg.M*w.cfg.N),
	}
	for i := 0; i < cap(s.tokens); i++ {
		s.tokens <- struct{}{}
	}
	w.active++
	w.loadAct.Store(int64(w.active))
	w.sessions[s.id] = s
	return s, nil
}

// retryAfterLocked estimates how long a rejected Open should back off: the
// wall's average session duration minus the progress of the oldest in-flight
// session — an optimistic guess at when the next admission slot drains.
// Callers hold w.mu.
func (w *Wall) retryAfterLocked() time.Duration {
	const floor = 10 * time.Millisecond
	avg := w.avgSession
	if avg <= 0 {
		return 100 * time.Millisecond // no history yet
	}
	var oldest time.Duration
	for _, s := range w.sessions {
		if el := time.Since(s.openedAt); el > oldest {
			oldest = el
		}
	}
	if hint := avg - oldest; hint > floor {
		return hint
	}
	return floor
}

// Close drains the wall: it waits for every open session to close, shuts the
// node servers down, and (when the transport is owned) releases it. Returns
// the abort cause if the pipeline failed.
func (w *Wall) Close() error {
	w.closeOnce.Do(func() {
		w.mu.Lock()
		w.closed = true
		for w.active > 0 && w.tr.AbortCause() == nil {
			w.idle.Wait()
		}
		w.mu.Unlock()
		if w.hasRoot && w.tr.AbortCause() == nil {
			select {
			case w.work <- workItem{kind: workShutdown}:
			case <-w.tr.Done():
			}
		}
		w.wg.Wait()
		close(w.quit)
		if w.rv != nil {
			w.rv.sup.Close()
		}
		if w.ownTr {
			w.tr.Shutdown()
		}
		w.closeErr = w.tr.AbortCause()
	})
	return w.closeErr
}

// sessionDone releases a session's admission slot and folds its duration
// into the EWMA behind Open's RetryAfter hint.
func (w *Wall) sessionDone(s *Session) {
	w.mu.Lock()
	delete(w.sessions, s.id)
	w.active--
	w.loadAct.Store(int64(w.active))
	dur := time.Since(s.openedAt)
	if w.avgSession == 0 {
		w.avgSession = dur
	} else {
		w.avgSession = (3*w.avgSession + dur) / 4
	}
	w.idle.Broadcast()
	w.mu.Unlock()
}

func (w *Wall) onSecondResult(session, idx int, res *splitter.SecondResult) {
	w.mu.Lock()
	if s := w.sessions[session]; s != nil {
		s.splitters[idx] = res
	}
	w.mu.Unlock()
}

func (w *Wall) onFrame(session, displayIdx, tile int, buf *mpeg2.PixelBuf) {
	if w.rv != nil {
		w.rv.noteFrame(session, displayIdx, tile)
	}
	if w.cfg.OnTileFrame != nil {
		w.cfg.OnTileFrame(session, displayIdx, tile, buf)
	}
	if !w.cfg.CollectFrames {
		return
	}
	w.mu.Lock()
	s := w.sessions[session]
	w.mu.Unlock()
	if s != nil && s.collector != nil {
		s.collector.add(tile, buf)
	}
}

func (w *Wall) onDecoderResult(session, tile int, res *pdec.Result) {
	w.mu.Lock()
	if s := w.sessions[session]; s != nil {
		s.decoders[tile] = res
	}
	w.mu.Unlock()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
