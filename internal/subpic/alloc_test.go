package subpic

import (
	"testing"

	"tiledwall/internal/mpeg2"
)

// sampleSubPicture builds a representative sub-picture: a few pieces with
// non-trivial SPH state and an MEI list, the shape a 2x2 wall produces every
// picture.
func sampleSubPicture() *SubPicture {
	sp := &SubPicture{}
	sp.Pic = PicInfo{Index: 7, TemporalRef: 3, PicType: 2, Flags: flagQScaleType | flagAltScan, DCPrecision: 1}
	sp.Pic.FCode = [2][2]uint8{{2, 2}, {3, 3}}
	for i := 0; i < 4; i++ {
		p := Piece{Payload: make([]byte, 96+i*17)}
		p.SPH = SPH{
			SkipBits:   uint8(i % 8),
			FirstAddr:  int32(11 * i),
			CodedCount: int32(5 + i),
			QuantCode:  uint8(8 + i),
			DCPred:     [3]int32{128, 64, 64},
		}
		p.SPH.PMV[0][0] = [2]int32{int32(-4 * i), int32(2 * i)}
		p.SPH.Prev = mpeg2.MotionInfo{Fwd: true, MVFwd: [2]int32{3, -5}}
		for j := range p.Payload {
			p.Payload[j] = byte(i*31 + j)
		}
		sp.Pieces = append(sp.Pieces, p)
	}
	for i := 0; i < 6; i++ {
		sp.MEI = append(sp.MEI, MEIInstr{
			Kind: MEIKind(i % 2), Ref: RefSel(i % 2),
			MBX: uint16(i), MBY: uint16(i * 2), Peer: uint16(i % 4),
		})
	}
	return sp
}

// TestSubPictureRoundtripNoAlloc pins the zero-allocation contract of the
// pooled marshal path: AppendTo into a right-sized slab plus UnmarshalInto a
// reused value must not touch the heap once warm.
func TestSubPictureRoundtripNoAlloc(t *testing.T) {
	sp := sampleSubPicture()
	slab := make([]byte, 0, sp.WireSize())

	var dst SubPicture
	wire := sp.AppendTo(slab)
	if len(wire) != sp.WireSize() {
		t.Fatalf("AppendTo produced %d bytes, WireSize says %d", len(wire), sp.WireSize())
	}
	if err := UnmarshalInto(&dst, wire); err != nil { // warm dst's slices
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(200, func() {
		wire := sp.AppendTo(slab[:0])
		if err := UnmarshalInto(&dst, wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm sub-picture roundtrip allocates %v per run, want 0", allocs)
	}
	if len(dst.Pieces) != len(sp.Pieces) || len(dst.MEI) != len(sp.MEI) {
		t.Fatalf("roundtrip lost structure: %d pieces %d MEI", len(dst.Pieces), len(dst.MEI))
	}
}

// TestBlockBundleRoundtripNoAlloc is the same contract for the
// decoder-to-decoder macroblock exchange payload.
func TestBlockBundleRoundtripNoAlloc(t *testing.T) {
	bb := &BlockBundle{PicIndex: 5}
	for i := 0; i < 9; i++ {
		bb.Cells = append(bb.Cells, BlockCell{Ref: RefSel(i % 2), MBX: uint16(i), MBY: uint16(i / 3)})
	}
	bb.Pixels = make([]byte, len(bb.Cells)*mpeg2.MacroblockBytes)
	for i := range bb.Pixels {
		bb.Pixels[i] = byte(i)
	}
	slab := make([]byte, 0, bb.WireSize())

	var dst BlockBundle
	if err := UnmarshalBlocksInto(&dst, bb.AppendTo(slab)); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(200, func() {
		wire := bb.AppendTo(slab[:0])
		if err := UnmarshalBlocksInto(&dst, wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm block-bundle roundtrip allocates %v per run, want 0", allocs)
	}
	if len(dst.Cells) != len(bb.Cells) || len(dst.Pixels) != len(bb.Pixels) {
		t.Fatalf("roundtrip lost structure: %d cells %d pixel bytes", len(dst.Cells), len(dst.Pixels))
	}
}

// BenchmarkSubpicRoundtrip times the pooled serialise/parse cycle every
// sub-picture crosses the fabric with.
func BenchmarkSubpicRoundtrip(b *testing.B) {
	sp := sampleSubPicture()
	slab := make([]byte, 0, sp.WireSize())
	var dst SubPicture
	b.SetBytes(int64(sp.WireSize()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire := sp.AppendTo(slab[:0])
		if err := UnmarshalInto(&dst, wire); err != nil {
			b.Fatal(err)
		}
	}
}
